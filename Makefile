# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint test race cover bench experiments experiments-md csv examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific determinism & safety analyzers (internal/analysis).
# Exit 0 clean, 1 on any diagnostic, 2 on load failure.
lint:
	$(GO) run ./cmd/itm-lint ./...

test:
	$(GO) test -vet=all ./...

race:
	$(GO) test -race ./...

# Coverage gate for the fault-injection, resilience, and analyzer layers:
# the rest of the repo is exercised end-to-end by the experiments, but these
# packages are the safety net for every measurement client (and for the
# determinism contract itself), so they carry an explicit floor.
COVER_PKGS = ./internal/faults/ ./internal/resilience/ ./internal/analysis/
COVER_FLOOR ?= 85
cover:
	$(GO) test -cover $(COVER_PKGS)
	@$(GO) test -coverprofile=cover.out $(COVER_PKGS) >/dev/null; \
	total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "faults+resilience+analysis coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(COVER_FLOOR))}" || \
		{ echo "coverage $$total% below floor $(COVER_FLOOR)%"; exit 1; }

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure at full scale (exit code reflects PASS/FAIL).
experiments:
	$(GO) run ./cmd/itm-experiments -scale default -seed 42

# Rebuild EXPERIMENTS.md's body (prepend the hand-written preamble yourself).
experiments-md:
	$(GO) run ./cmd/itm-experiments -scale default -seed 42 -markdown

# Figure series as CSV for plotting.
csv:
	$(GO) run ./cmd/itm-experiments -scale default -seed 42 -csv figures/ >/dev/null

examples:
	@for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d | head -20; echo; done

clean:
	rm -rf figures/ test_output.txt bench_output.txt cover.out
