# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet lint lint-selftest test race cover bench bench-all serve-smoke obs-smoke loadgen-smoke crash-smoke mesh-smoke slo-smoke experiments experiments-md csv examples clean

all: build vet lint lint-selftest test crash-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific determinism & safety analyzers (internal/analysis).
# Exit 0 clean, 1 on any diagnostic, 2 on load failure. `-json` emits the
# same findings as a sorted JSON array (see cmd/itm-lint doc).
lint:
	$(GO) run ./cmd/itm-lint ./...

# Prove the analyzers still fire: plant one violation per analyzer (all
# nine) in a throwaway module and assert itm-lint exits 1 with each
# expected diagnostic. A green `make lint` means nothing if an analyzer
# silently stopped matching.
lint-selftest:
	GO="$(GO)" sh scripts/lint-selftest.sh

test:
	$(GO) test -vet=all ./...

race:
	$(GO) test -race ./...

# Coverage gate for the fault-injection, resilience, and analyzer layers:
# the rest of the repo is exercised end-to-end by the experiments, but these
# packages are the safety net for every measurement client (and for the
# determinism contract itself), so they carry an explicit floor.
COVER_PKGS = ./internal/faults/ ./internal/resilience/ ./internal/analysis/
COVER_FLOOR ?= 85
cover:
	$(GO) test -cover $(COVER_PKGS)
	@$(GO) test -coverprofile=cover.out $(COVER_PKGS) >/dev/null; \
	total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "faults+resilience+analysis coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(COVER_FLOOR))}" || \
		{ echo "coverage $$total% below floor $(COVER_FLOOR)%"; exit 1; }

# Deterministic performance counters for the serving layer (codec, store,
# queries) plus the matrix/BGP hot paths. Fixed -benchtime keeps iteration
# counts reproducible; itm-bench drops wall-clock metrics, so the committed
# BENCH_serve.json only changes when allocation behavior or the codec's
# output actually change.
bench:
	@{ $(GO) test -run '^$$' -bench . -benchmem -benchtime 8x ./internal/mapstore/ && \
	   $(GO) test -run '^$$' -bench 'BenchmarkBuildMatrix$$|BenchmarkBuildMatrixSerial$$|BenchmarkComputeAll$$' -benchmem -benchtime 4x . ; } \
	| tee bench_serve.out
	$(GO) run ./cmd/itm-bench -campaign -loadgen -overload -mesh -slo -o BENCH_serve.json < bench_serve.out
	@rm -f bench_serve.out

# The full benchmark suite (every paper artifact + substrate + ablations).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# End-to-end smoke: export a tiny-world snapshot, serve it, and check the
# health endpoint plus one deterministic query answer.
serve-smoke:
	@rm -rf smoke && mkdir -p smoke
	$(GO) build -o smoke/itm-serve ./cmd/itm-serve
	$(GO) run ./cmd/itm -scale tiny -seed 42 export -o smoke/snapshot.json
	@smoke/itm-serve -addr 127.0.0.1:8411 -snapshot smoke/snapshot.json & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:8411/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	set -e; \
	curl -sf http://127.0.0.1:8411/healthz | grep -q '"status": "ok"'; \
	curl -sf 'http://127.0.0.1:8411/v1/top?k=1' > smoke/top.json; \
	grep -q '"asn": 3000' smoke/top.json; \
	grep -q '"activity": 867355232.4158412' smoke/top.json; \
	curl -sf 'http://127.0.0.1:8411/v1/map/0?format=binary' > smoke/epoch0.itmb; \
	curl -sf 'http://127.0.0.1:8411/v1/map/0?format=binary' > smoke/epoch0b.itmb; \
	cmp -s smoke/epoch0.itmb smoke/epoch0b.itmb; \
	echo "serve-smoke: OK (healthz + deterministic top-1 + stable binary export)"
	@rm -rf smoke

# Observability smoke: run a real 2-epoch campaign under itm-serve, then
# check the operational surface — /metrics exposes a broad family set,
# traces export well-formed span trees, and wrong-method hits are 405.
obs-smoke:
	@rm -rf obs-smoke && mkdir -p obs-smoke
	$(GO) build -o obs-smoke/itm-serve ./cmd/itm-serve
	@obs-smoke/itm-serve -addr 127.0.0.1:8412 -scale tiny -epochs 2 2>obs-smoke/events.log & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 150); do \
		curl -sf http://127.0.0.1:8412/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	set -e; \
	curl -sf http://127.0.0.1:8412/metrics > obs-smoke/metrics.txt; \
	families=$$(grep -c '^# TYPE ' obs-smoke/metrics.txt); \
	echo "obs-smoke: $$families metric families"; \
	test "$$families" -ge 20 || { echo "obs-smoke: expected >= 20 families"; exit 1; }; \
	grep -q '^itm_http_requests_total{' obs-smoke/metrics.txt; \
	grep -q '^itm_mapstore_epochs_total 2' obs-smoke/metrics.txt; \
	curl -sf http://127.0.0.1:8412/v1/traces | grep -q '"epoch-0"'; \
	curl -sf http://127.0.0.1:8412/v1/trace/epoch-0 > obs-smoke/trace.json; \
	grep -q '"name": "traffic.build_matrix"' obs-smoke/trace.json; \
	grep -q '"name": "mapstore.append"' obs-smoke/trace.json; \
	grep -q '^# TYPE itm_cache_hits_total counter' obs-smoke/metrics.txt; \
	grep -q '^# TYPE itm_cache_not_modified_total counter' obs-smoke/metrics.txt; \
	grep -q '^itm_cache_prebaked_total 3' obs-smoke/metrics.txt; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' -X POST http://127.0.0.1:8412/v1/top); \
	test "$$code" = 405 || { echo "obs-smoke: POST /v1/top gave $$code, want 405"; exit 1; }; \
	grep -q 'event=serve.listening' obs-smoke/events.log; \
	echo "obs-smoke: OK (metrics families + cache families + trace export + 405 + structured events)"
	@rm -rf obs-smoke

# Loadgen smoke: serve a tiny snapshot, replay a short deterministic mix
# over HTTP twice — against a fresh server each time, since response caches
# warm as a replay runs — then assert the deterministic counters are
# byte-identical, the cache actually hit, and the server drained cleanly on
# SIGTERM.
loadgen-smoke:
	@rm -rf lg-smoke && mkdir -p lg-smoke
	$(GO) build -o lg-smoke/itm-serve ./cmd/itm-serve
	$(GO) build -o lg-smoke/itm-loadgen ./cmd/itm-loadgen
	$(GO) run ./cmd/itm -scale tiny -seed 42 export -o lg-smoke/snapshot.json
	@set -e; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for run in 1 2; do \
		lg-smoke/itm-serve -addr 127.0.0.1:8413 -snapshot lg-smoke/snapshot.json 2>/dev/null & \
		pid=$$!; \
		for i in $$(seq 1 50); do \
			curl -sf http://127.0.0.1:8413/healthz >/dev/null 2>&1 && break; sleep 0.2; \
		done; \
		lg-smoke/itm-loadgen -addr http://127.0.0.1:8413 -seed 7 -n 800 -workers 4 \
			-counters lg-smoke/counters$$run.json > lg-smoke/summary$$run.txt; \
		cat lg-smoke/summary$$run.txt; \
		kill $$pid; \
		wait $$pid || { echo "loadgen-smoke: itm-serve did not shut down cleanly"; exit 1; }; \
	done; \
	cmp -s lg-smoke/counters1.json lg-smoke/counters2.json || \
		{ echo "loadgen-smoke: deterministic counters differ between runs"; exit 1; }; \
	ratio=$$(sed -n 's/.*hit_ratio=\([0-9.]*\).*/\1/p' lg-smoke/summary1.txt); \
	awk "BEGIN {exit !($$ratio > 0)}" || { echo "loadgen-smoke: hit ratio $$ratio not > 0"; exit 1; }; \
	echo "loadgen-smoke: OK (hit_ratio=$$ratio, byte-identical counters, clean shutdown)"
	@rm -rf lg-smoke

# Crash smoke: boot itm-serve with a WAL, capture the served surface, SIGKILL
# it, smash a torn tail onto the journal as a power cut would, and verify the
# restarted server recovers from the journal alone — no world rebuild — with
# byte-identical epoch listings, map bodies, and ETags. Then saturate the
# recovered server (1 slot, no queue) with an unpaced loadgen burst to prove
# the admission valve sheds visibly, SIGTERM it, and confirm a third boot
# finds a journal ending exactly on a record boundary.
crash-smoke:
	@rm -rf crash-smoke && mkdir -p crash-smoke
	$(GO) build -o crash-smoke/itm-serve ./cmd/itm-serve
	$(GO) build -o crash-smoke/itm-loadgen ./cmd/itm-loadgen
	@set -e; \
	trap 'kill -9 $$pid 2>/dev/null || true' EXIT; \
	crash-smoke/itm-serve -addr 127.0.0.1:8414 -scale tiny -epochs 2 -wal crash-smoke/wal 2>crash-smoke/events1.log & \
	pid=$$!; \
	for i in $$(seq 1 150); do curl -sf http://127.0.0.1:8414/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	curl -sf http://127.0.0.1:8414/v1/epochs > crash-smoke/epochs1.json; \
	curl -sf -D crash-smoke/h0a.txt http://127.0.0.1:8414/v1/map/0 -o crash-smoke/map0a.json; \
	curl -sf -D crash-smoke/h1a.txt 'http://127.0.0.1:8414/v1/map/1?format=binary' -o crash-smoke/map1a.itmb; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	printf 'TORNTAIL' >> crash-smoke/wal/journal.itwl; \
	crash-smoke/itm-serve -addr 127.0.0.1:8414 -wal crash-smoke/wal -max-inflight 1 -max-queue 0 2>crash-smoke/events2.log & \
	pid=$$!; \
	for i in $$(seq 1 150); do curl -sf http://127.0.0.1:8414/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	grep -q 'event=serve.recovered' crash-smoke/events2.log; \
	grep -q 'truncated_tail_bytes=8' crash-smoke/events2.log; \
	! grep -q 'event=serve.building' crash-smoke/events2.log; \
	curl -sf http://127.0.0.1:8414/v1/epochs > crash-smoke/epochs2.json; \
	cmp -s crash-smoke/epochs1.json crash-smoke/epochs2.json || { echo "crash-smoke: /v1/epochs diverged after recovery"; exit 1; }; \
	curl -sf -D crash-smoke/h0b.txt http://127.0.0.1:8414/v1/map/0 -o crash-smoke/map0b.json; \
	curl -sf -D crash-smoke/h1b.txt 'http://127.0.0.1:8414/v1/map/1?format=binary' -o crash-smoke/map1b.itmb; \
	cmp -s crash-smoke/map0a.json crash-smoke/map0b.json || { echo "crash-smoke: /v1/map/0 body diverged"; exit 1; }; \
	cmp -s crash-smoke/map1a.itmb crash-smoke/map1b.itmb || { echo "crash-smoke: binary epoch diverged"; exit 1; }; \
	for ep in 0 1; do \
		ea=$$(grep -i '^etag:' crash-smoke/h$${ep}a.txt); eb=$$(grep -i '^etag:' crash-smoke/h$${ep}b.txt); \
		test -n "$$ea" && test "$$ea" = "$$eb" || { echo "crash-smoke: epoch $$ep ETag diverged ($$ea vs $$eb)"; exit 1; }; \
	done; \
	crash-smoke/itm-loadgen -addr http://127.0.0.1:8414 -overload -n 400 -workers 8 -seed 3 > crash-smoke/overload.txt; \
	cat crash-smoke/overload.txt; \
	shed=$$(sed -n 's/.* shed=\([0-9]*\) .*/\1/p' crash-smoke/overload.txt); \
	test "$$shed" -gt 0 || { echo "crash-smoke: overload shed $$shed, want > 0"; exit 1; }; \
	kill $$pid; \
	wait $$pid || { echo "crash-smoke: itm-serve did not drain cleanly on SIGTERM"; exit 1; }; \
	crash-smoke/itm-serve -addr 127.0.0.1:8414 -wal crash-smoke/wal 2>crash-smoke/events3.log & \
	pid=$$!; \
	for i in $$(seq 1 150); do curl -sf http://127.0.0.1:8414/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	grep -q 'truncated_tail_bytes=0' crash-smoke/events3.log || { echo "crash-smoke: journal did not end on a record boundary after drain"; exit 1; }; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	echo "crash-smoke: OK (torn-tail recovery identity + overload shed=$$shed + record-boundary shutdown)"
	@rm -rf crash-smoke

# Mesh smoke: prove the vantage-fleet mesh is worker-count-invariant at the
# byte level (itm-mesh -workers 1 vs 4 → identical ITMB v2 sections), then
# boot a mesh-enabled itm-serve, discover the worst pair from
# /v1/latency/top, and query both user↔user routes — stable bodies on
# re-fetch, and a 304 when revalidating with the served ETag.
mesh-smoke:
	@rm -rf mesh-smoke && mkdir -p mesh-smoke
	$(GO) build -o mesh-smoke/itm-mesh ./cmd/itm-mesh
	$(GO) build -o mesh-smoke/itm-serve ./cmd/itm-serve
	mesh-smoke/itm-mesh -scale tiny -seed 42 -agents 24 -rounds 2 -profile lossy -workers 1 -o mesh-smoke/mesh-w1.itmb > /dev/null
	mesh-smoke/itm-mesh -scale tiny -seed 42 -agents 24 -rounds 2 -profile lossy -workers 4 -o mesh-smoke/mesh-w4.itmb > /dev/null
	@cmp -s mesh-smoke/mesh-w1.itmb mesh-smoke/mesh-w4.itmb || \
		{ echo "mesh-smoke: mesh sections differ between workers 1 and 4"; exit 1; }
	@set -e; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	mesh-smoke/itm-serve -addr 127.0.0.1:8415 -scale tiny -epochs 2 -mesh-agents 24 -mesh-profile calm 2>mesh-smoke/events.log & \
	pid=$$!; \
	for i in $$(seq 1 150); do curl -sf http://127.0.0.1:8415/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	curl -sf 'http://127.0.0.1:8415/v1/latency/top?k=1' > mesh-smoke/top.json; \
	a=$$(sed -n 's/.*"a": \([0-9]*\).*/\1/p' mesh-smoke/top.json | head -1); \
	b=$$(sed -n 's/.*"b": \([0-9]*\).*/\1/p' mesh-smoke/top.json | head -1); \
	test -n "$$a" && test -n "$$b" || { echo "mesh-smoke: no ranked pair in /v1/latency/top"; exit 1; }; \
	curl -sf -D mesh-smoke/path-h.txt "http://127.0.0.1:8415/v1/path/$$a/$$b" > mesh-smoke/path.json; \
	grep -q '"path"' mesh-smoke/path.json; \
	curl -sf "http://127.0.0.1:8415/v1/path/$$a/$$b" > mesh-smoke/path2.json; \
	cmp -s mesh-smoke/path.json mesh-smoke/path2.json || { echo "mesh-smoke: /v1/path body unstable"; exit 1; }; \
	curl -sf "http://127.0.0.1:8415/v1/latency/$$a/$$b" > mesh-smoke/lat.json; \
	grep -q '"mean_rtt_ms"' mesh-smoke/lat.json; \
	etag=$$(sed -n 's/^[Ee][Tt][Aa][Gg]: \(.*\)/\1/p' mesh-smoke/path-h.txt | tr -d '\r'); \
	code=$$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $$etag" "http://127.0.0.1:8415/v1/path/$$a/$$b"); \
	test "$$code" = 304 || { echo "mesh-smoke: revalidation gave $$code, want 304"; exit 1; }; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	echo "mesh-smoke: OK (worker-invariant mesh bytes + AS$$a<->AS$$b path/latency + 304 revalidation)"
	@rm -rf mesh-smoke

# SLO smoke: boot a mesh-enabled multi-epoch itm-serve twice (matrix workers
# 1 then 4) and assert the telemetry history body is byte-identical — the
# obs v2 determinism contract, end to end over HTTP. Then replay a seeded
# loadgen mix against the workers-4 server and check the judgment surface:
# /v1/slo reports every objective met, /healthz carries per-objective
# statuses, and itm-top -once renders a full dashboard frame from the live
# endpoints.
slo-smoke:
	@rm -rf slo-smoke && mkdir -p slo-smoke
	$(GO) build -o slo-smoke/itm-serve ./cmd/itm-serve
	$(GO) build -o slo-smoke/itm-loadgen ./cmd/itm-loadgen
	$(GO) build -o slo-smoke/itm-top ./cmd/itm-top
	@set -e; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	slo-smoke/itm-serve -addr 127.0.0.1:8416 -scale tiny -epochs 3 -workers 1 -mesh-agents 24 -mesh-profile calm 2>slo-smoke/events1.log & \
	pid=$$!; \
	for i in $$(seq 1 150); do curl -sf http://127.0.0.1:8416/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	curl -sf http://127.0.0.1:8416/v1/obs/history > slo-smoke/history-w1.json; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	slo-smoke/itm-serve -addr 127.0.0.1:8416 -scale tiny -epochs 3 -workers 4 -mesh-agents 24 -mesh-profile calm 2>slo-smoke/events2.log & \
	pid=$$!; \
	for i in $$(seq 1 150); do curl -sf http://127.0.0.1:8416/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	curl -sf http://127.0.0.1:8416/v1/obs/history > slo-smoke/history-w4.json; \
	cmp -s slo-smoke/history-w1.json slo-smoke/history-w4.json || \
		{ echo "slo-smoke: history body differs between workers 1 and 4"; exit 1; }; \
	curl -sf http://127.0.0.1:8416/v1/obs/history/itm_mapstore_epochs_total | grep -q '"family": "itm_mapstore_epochs_total"'; \
	slo-smoke/itm-loadgen -addr http://127.0.0.1:8416 -seed 7 -n 600 -workers 4 > slo-smoke/loadgen.txt; \
	curl -sf http://127.0.0.1:8416/v1/slo > slo-smoke/slo.json; \
	grep -q '"all_met": true' slo-smoke/slo.json || { echo "slo-smoke: objectives not all met"; cat slo-smoke/slo.json; exit 1; }; \
	grep -q '"name": "availability"' slo-smoke/slo.json; \
	grep -q '"name": "mesh_path_completeness"' slo-smoke/slo.json; \
	curl -sf http://127.0.0.1:8416/healthz > slo-smoke/healthz.json; \
	grep -q '"status": "ok"' slo-smoke/healthz.json; \
	grep -q '"slo"' slo-smoke/healthz.json; \
	slo-smoke/itm-top -addr http://127.0.0.1:8416 -once > slo-smoke/top.txt; \
	grep -q 'SLO objectives' slo-smoke/top.txt; \
	grep -q 'History ring' slo-smoke/top.txt; \
	grep -q 'availability' slo-smoke/top.txt; \
	grep -q 'Worst traces' slo-smoke/top.txt; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	echo "slo-smoke: OK (worker-invariant history + all objectives met + healthz SLO detail + itm-top frame)"
	@rm -rf slo-smoke

# Regenerate every table/figure at full scale (exit code reflects PASS/FAIL).
experiments:
	$(GO) run ./cmd/itm-experiments -scale default -seed 42

# Rebuild EXPERIMENTS.md's body (prepend the hand-written preamble yourself).
experiments-md:
	$(GO) run ./cmd/itm-experiments -scale default -seed 42 -markdown

# Figure series as CSV for plotting.
csv:
	$(GO) run ./cmd/itm-experiments -scale default -seed 42 -csv figures/ >/dev/null

examples:
	@for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d | head -20; echo; done

clean:
	rm -rf figures/ test_output.txt bench_output.txt cover.out
