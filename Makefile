# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench experiments experiments-md csv examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure at full scale (exit code reflects PASS/FAIL).
experiments:
	$(GO) run ./cmd/itm-experiments -scale default -seed 42

# Rebuild EXPERIMENTS.md's body (prepend the hand-written preamble yourself).
experiments-md:
	$(GO) run ./cmd/itm-experiments -scale default -seed 42 -markdown

# Figure series as CSV for plotting.
csv:
	$(GO) run ./cmd/itm-experiments -scale default -seed 42 -csv figures/ >/dev/null

examples:
	@for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d | head -20; echo; done

clean:
	rm -rf figures/ test_output.txt bench_output.txt
