// Package itm builds Internet traffic maps: the locations of users and
// popular services, the mapping between them, the routes connecting them,
// and relative activity levels — constructed purely from public measurement
// techniques, as envisioned in "Towards a traffic map of the Internet"
// (HotNets 2021).
//
// Because the real inputs (public-resolver caches, root DNS logs, CDN
// server logs) are proprietary or rate-limited, the library ships a
// high-fidelity simulated Internet exposing exactly the public interfaces
// the techniques need: DNS queries (recursive and RD=0 cache probes with
// EDNS0 Client Subnet), TLS/SNI handshakes, pings (IP-ID sampling),
// traceroutes, BGP route-collector feeds, and a PeeringDB-like registry.
// The simulator also knows the ground truth, so every estimate the map
// makes can be scored — the role Microsoft's CDN logs play in the paper.
//
// Typical use:
//
//	inet := itm.NewInternet(itm.SmallConfig(42))
//	session := itm.NewSession(inet)
//	tmap := session.Map()                  // assembled traffic map
//	report := tmap.OutageImpact(asn)       // §2.1 use case
//	results := session.RunAll()            // regenerate the paper's tables & figures
//
// The heavy lifting lives in internal packages: internal/topology and
// internal/bgp (the synthetic Internet and its routing), internal/services,
// internal/dnssim, internal/traffic and internal/users (services, DNS and
// ground-truth demand), internal/measure/* (the measurement toolkit),
// internal/core (map assembly and analyses) and internal/experiments
// (paper-artifact reproduction). This package re-exports the surface a
// downstream user needs.
package itm

import (
	"itmap/internal/apnic"
	"itmap/internal/bgp"
	"itmap/internal/core"
	"itmap/internal/experiments"
	"itmap/internal/peering"
	"itmap/internal/randx"
	"itmap/internal/stats"
	"itmap/internal/topology"
	"itmap/internal/traffic"
	"itmap/internal/world"
)

// Re-exported core types. Aliases keep the public API thin while the
// implementations stay in internal packages.
type (
	// Internet is a fully wired simulated Internet: topology, routing,
	// users, services, DNS, and ground-truth traffic.
	Internet = world.World
	// Config selects world scale and seed.
	Config = world.Config
	// Session runs and caches measurement campaigns over an Internet
	// and assembles them into a TrafficMap.
	Session = experiments.Env
	// TrafficMap is the assembled Internet traffic map.
	TrafficMap = core.TrafficMap
	// OutageReport is the map's impact assessment for one AS.
	OutageReport = core.OutageReport
	// UsersValidation scores the map's users component against ground
	// truth.
	UsersValidation = core.UsersValidation
	// Result is one reproduced table/figure/claim with paper-vs-measured
	// values.
	Result = experiments.Result
	// Matrix is the ground-truth traffic matrix.
	Matrix = traffic.Matrix
	// ASN identifies an autonomous system.
	ASN = topology.ASN
	// PrefixID identifies one /24 of address space.
	PrefixID = topology.PrefixID
	// WeightedCDF supports the traffic-weighted statistics the map is
	// built to enable.
	WeightedCDF = stats.WeightedCDF
	// MapDiff summarizes how the users component changed between two
	// map builds.
	MapDiff = core.MapDiff
	// WeightingReport contrasts unweighted and traffic-weighted versions
	// of the metrics researchers habitually compute.
	WeightingReport = core.WeightingReport
)

// DefaultConfig returns the full-scale world (~1.7k ASes, ~45k /24s).
func DefaultConfig(seed int64) Config { return world.Default(seed) }

// SmallConfig returns the example/integration scale world.
func SmallConfig(seed int64) Config { return world.Small(seed) }

// TinyConfig returns the unit-test scale world.
func TinyConfig(seed int64) Config { return world.Tiny(seed) }

// NewInternet builds a simulated Internet.
func NewInternet(cfg Config) *Internet { return world.Build(cfg) }

// NewSession prepares a measurement session over an Internet. Campaign
// results (cache-probing sweeps, root-log crawls, TLS scans, collector
// feeds) are computed lazily and cached.
func NewSession(inet *Internet) *Session { return experiments.NewEnvFromWorld(inet) }

// BuildMap runs the full measurement pipeline and assembles the traffic
// map: cache-probing discovery + hit rates (users component), root-log
// crawling (activity), TLS/SNI scans (services component), ECS mapping
// (users→hosts), and collector-derived route topology.
func BuildMap(inet *Internet) *TrafficMap {
	return NewSession(inet).Map()
}

// ValidateMap scores a map built on inet against the simulator's ground
// truth, reproducing the paper's §3.1.2 validation against CDN logs.
func ValidateMap(inet *Internet, m *TrafficMap) UsersValidation {
	mx := inet.Traffic.BuildMatrix()
	est := apnic.Estimate(inet.Top, inet.Users, apnic.DefaultConfig(), randx.New(inet.Cfg.Seed+101))
	return core.ValidateUsers(m, mx, est)
}

// RunAllExperiments reproduces every table, figure, and quantitative claim
// of the paper on the given Internet.
func RunAllExperiments(inet *Internet) []*Result {
	return NewSession(inet).RunAll()
}

// FormatResults renders experiment results as a plain-text report.
func FormatResults(rs []*Result) string { return experiments.Format(rs) }

// MarkdownResults renders experiment results as Markdown (EXPERIMENTS.md).
func MarkdownResults(rs []*Result) string { return experiments.Markdown(rs) }

// WriteSeriesCSV writes every result's figure series as CSV files under dir.
func WriteSeriesCSV(rs []*Result, dir string) ([]string, error) {
	return experiments.WriteSeriesCSV(rs, dir)
}

// BuildWeightingReport computes the unweighted-vs-weighted contrast report
// over a traffic matrix — the paper's thesis as a reusable analysis.
func BuildWeightingReport(inet *Internet, mx *Matrix) WeightingReport {
	return core.BuildWeightingReport(inet.Top, mx)
}

// DiffMaps compares two maps' users components: prefix churn and activity
// shifts above minShift.
func DiffMaps(before, after *TrafficMap, minShift float64) *MapDiff {
	return core.DiffMaps(before, after, minShift)
}

// CollectorFor returns the default route-collector vantage over inet (the
// peers RouteViews-style collectors would have).
func CollectorFor(inet *Internet) *bgp.Collector {
	return &bgp.Collector{Peers: bgp.DefaultCollectorPeers(inet.Top, randx.New(inet.Cfg.Seed+202))}
}

// PeeringCandidates runs the §3.3.3 peering-link recommender over the
// public (route-collector) view of inet and returns the top candidates.
func PeeringCandidates(inet *Internet, limit int) []peering.Candidate {
	session := NewSession(inet)
	est := apnic.Estimate(inet.Top, inet.Users, apnic.DefaultConfig(), randx.New(inet.Cfg.Seed+101))
	reg := peering.BuildRegistry(inet.Top, est)
	rec := peering.NewRecommender(inet.Top, reg, session.ObservedLinks())
	return rec.Recommend(limit)
}
