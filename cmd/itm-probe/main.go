// Command itm-probe demonstrates the cache-probing technique at the packet
// level: it starts a UDP front end of the simulated public resolver's PoP 0
// on a loopback port, then probes it with real RFC 1035 + EDNS0 Client
// Subnet packets — the same bytes a prober aims at 8.8.8.8 — and prints
// which prefixes show client activity.
//
// Usage:
//
//	itm-probe [-scale tiny|small] [-seed N] [-domain D] [-n N]
//	          [-faults none|calm|lossy|hostile] [-budget B]
package main

import (
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sort"
	"time"

	"itmap"
	"itmap/internal/dnssim"
	"itmap/internal/faults"
	"itmap/internal/obs"
	"itmap/internal/resilience"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

func main() {
	scale := flag.String("scale", "tiny", "world scale: tiny or small")
	seed := flag.Int64("seed", 1, "world seed")
	domain := flag.String("domain", "", "domain to probe (default: most popular ECS service)")
	n := flag.Int("n", 12, "how many prefixes to probe")
	profile := flag.String("faults", "none", "fault profile on the resolver: none, calm, lossy, hostile")
	budget := flag.Int("budget", 4, "attempts per probe before giving up")
	metricsOut := flag.String("metrics-out", "", "write the stable metrics dump to this file on exit")
	traceOut := flag.String("trace-out", "", "write the span-trace export to this file on exit")
	flag.Parse()

	if err := run(*scale, *seed, *domain, *n, *profile, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "itm-probe:", err)
		os.Exit(1)
	}
	if err := writeDumps(*metricsOut, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "itm-probe:", err)
		os.Exit(1)
	}
}

func writeDumps(metricsOut, traceOut string) error {
	if metricsOut != "" {
		if err := obs.WriteMetricsFile(metricsOut); err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := obs.WriteTraceFile(traceOut); err != nil {
			return err
		}
	}
	return nil
}

func run(scale string, seed int64, domain string, n int, profile string, budget int) error {
	var cfg itm.Config
	switch scale {
	case "tiny":
		cfg = itm.TinyConfig(seed)
	case "small":
		cfg = itm.SmallConfig(seed)
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	inet := itm.NewInternet(cfg)
	if domain == "" {
		domain = inet.Cat.ECSDomains()[0]
	}
	prof, ok := faults.ByName(profile)
	if !ok {
		return fmt.Errorf("unknown fault profile %q", profile)
	}
	inet.PR.SetFaultPlan(faults.NewPlan(prof, seed))

	// Serve PoP 0 on loopback.
	fe := &dnssim.WireFrontend{PR: inet.PR, Auth: inet.Auth, PoP: 0}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer conn.Close()
	go fe.ServeUDP(conn, func() simtime.Time { return 12 }) // noon UTC
	fmt.Printf("resolver PoP %q serving on %s\n", inet.PR.PoPs[0].Name, conn.LocalAddr())

	client, err := dnssim.DialWireClient(conn.LocalAddr().String())
	if err != nil {
		return err
	}
	defer client.Close()
	// A read deadline turns fault-plan drops into faults.ErrTimeout
	// instead of a hung exchange; the retryer then re-sends (each retry is
	// a fresh datagram with a fresh ID, re-rolling per-packet faults).
	client.Timeout = 250 * time.Millisecond
	retry := resilience.Retryer{
		Budget: budget,
		Backoff: resilience.Backoff{
			Base:   simtime.Minute,
			Factor: 2,
			Jitter: 0.3,
			Seed:   uint64(seed),
		},
		Retryable: faults.IsTransient,
	}
	// 1 simulated minute of backoff ≈ 60ms of wall clock.
	const perHour = 0.001

	// Probe a mix of prefixes homed at PoP 0: busy eyeballs, small
	// offices, and infrastructure.
	var candidates []topology.PrefixID
	for _, asn := range inet.Top.ASNs() {
		for _, p := range inet.Top.ASes[asn].Prefixes {
			if inet.PR.HomePoP(p).ID == 0 {
				candidates = append(candidates, p)
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		return inet.Users.UsersIn(candidates[i]) > inet.Users.UsersIn(candidates[j])
	})
	if len(candidates) == 0 {
		return fmt.Errorf("no prefixes homed at PoP 0")
	}
	// Take a spread: the busiest, some middle, some empty.
	var picks []topology.PrefixID
	for i := 0; i < n && i*len(candidates)/n < len(candidates); i++ {
		picks = append(picks, candidates[i*len(candidates)/n])
	}

	fmt.Printf("probing %q with RD=0 ECS queries (faults=%s, budget=%d):\n", domain, prof.Name, budget)
	fmt.Printf("%-20s %12s %8s %9s\n", "PREFIX", "USERS", "CACHED", "ATTEMPTS")
	retries := 0
	for _, p := range picks {
		netPrefix := netip.PrefixFrom(p.Addr(0), 24)
		var hit bool
		attempts, err := retry.DoSleep(uint64(p), perHour, func(int) error {
			var perr error
			hit, perr = client.Probe(domain, netPrefix)
			return perr
		})
		retries += attempts - 1
		if err != nil {
			if faults.IsTransient(err) {
				return fmt.Errorf("probe %s: retry budget of %d spent: %w", p, budget, err)
			}
			return err
		}
		fmt.Printf("%-20s %12.0f %8v %9d\n", p, inet.Users.UsersIn(p), hit, attempts)
	}
	if retries > 0 {
		fmt.Printf("(%d datagrams re-sent after transient faults)\n", retries)
	}

	// One recursive lookup for contrast.
	var addrs []netip.Addr
	_, err = retry.DoSleep(uint64(picks[0]), perHour, func(int) error {
		var rerr error
		addrs, rerr = client.Resolve(domain, netip.PrefixFrom(picks[0].Addr(0), 24))
		return rerr
	})
	if err != nil {
		if faults.IsTransient(err) {
			return fmt.Errorf("resolve %s: retry budget of %d spent: %w", domain, budget, err)
		}
		return err
	}
	fmt.Printf("recursive answer for %s from %v: %v\n", domain, picks[0], addrs)
	return nil
}
