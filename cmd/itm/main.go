// Command itm builds an Internet traffic map over the simulated Internet
// and answers questions with it.
//
// Usage:
//
//	itm [flags] summary          world and ground-truth overview
//	itm [flags] map              build the map, print coverage and validation
//	itm [flags] activity [-n N]  top ASes by estimated relative activity
//	itm [flags] servers -owner NAME   serving footprint of an owner (TLS scans)
//	itm [flags] outage -as ASN   impact assessment for an AS outage
//	itm [flags] peering [-n N]   top recommended (hidden) peering links
//	itm [flags] export [-o F]    write the map's measured components as JSON
//	itm [flags] topo [-format dot|json] [-o F]   dump the world topology
//	itm [flags] diff             compare maps built on consecutive days
//	itm [flags] mrt -o F         export the route collector's MRT table dump
//
// Flags: -scale tiny|small|default, -seed N.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"itmap"
	"itmap/internal/topology"
)

func main() {
	scale := flag.String("scale", "small", "world scale: tiny, small, or default")
	seed := flag.Int64("seed", 1, "world seed")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	var cfg itm.Config
	switch *scale {
	case "tiny":
		cfg = itm.TinyConfig(*seed)
	case "small":
		cfg = itm.SmallConfig(*seed)
	case "default":
		cfg = itm.DefaultConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	inet := itm.NewInternet(cfg)
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	var err error
	switch cmd {
	case "summary":
		err = runSummary(inet)
	case "map":
		err = runMap(inet)
	case "activity":
		err = runActivity(inet, args)
	case "servers":
		err = runServers(inet, args)
	case "outage":
		err = runOutage(inet, args)
	case "peering":
		err = runPeering(inet, args)
	case "export":
		err = runExport(inet, args)
	case "topo":
		err = runTopo(inet, args)
	case "diff":
		err = runDiff(inet, args)
	case "mrt":
		err = runMRT(inet, args)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "itm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: itm [-scale tiny|small|default] [-seed N] <summary|map|activity|servers|outage|peering|export|topo|diff|mrt> [args]")
	flag.PrintDefaults()
}

func runSummary(inet *itm.Internet) error {
	top := inet.Top
	fmt.Printf("world: %d ASes, %d links, %d /24 prefixes, %d facilities, %d IXPs\n",
		top.NumASes(), top.NumLinks(), len(top.PrefixOwner), len(top.Facilities), len(top.IXPs))
	fmt.Printf("users: %.1fM across %d user prefixes\n",
		inet.Users.TotalUsers()/1e6, len(inet.Users.UserPrefixes()))
	fmt.Printf("services: %d in catalog; public resolver has %d PoPs\n",
		len(inet.Cat.Services), len(inet.PR.PoPs))
	mx := inet.Traffic.BuildMatrix()
	fmt.Printf("ground truth: %.3g bytes/day; top-5 owners carry %.0f%%\n",
		mx.TotalBytes, 100*mx.CumulativeTopShare(5))
	owners := mx.TopOwners()
	for i, o := range owners {
		if i >= 5 {
			break
		}
		fmt.Printf("  #%d %-12s AS%-6d %5.1f%%\n", i+1, top.ASes[o.ASN].Name, o.ASN, o.Share*100)
	}
	return nil
}

func runMap(inet *itm.Internet) error {
	m := itm.BuildMap(inet)
	fmt.Printf("map: %d active prefixes, %d ASes with activity signals\n",
		len(m.Users.ActivePrefixes), len(m.Users.Sources))
	v := itm.ValidateMap(inet, m)
	fmt.Printf("validation vs ground truth (reference-CDN logs):\n")
	fmt.Printf("  traffic in discovered prefixes:   %5.1f%%  (paper: 95%%)\n", v.PrefixTrafficRecall*100)
	fmt.Printf("  traffic in root-log ASes:         %5.1f%%  (paper: 60%%)\n", v.ASTrafficRecallRoots*100)
	fmt.Printf("  traffic in combined ASes:         %5.1f%%  (paper: 99%%)\n", v.ASTrafficRecallCombined*100)
	fmt.Printf("  false-discovery prefixes:         %5.2f%%  (paper: <1%%)\n", v.FalseDiscoveryFrac*100)
	fmt.Printf("  APNIC users covered:              %5.1f%%  (paper: 98%%)\n", v.APNICUserCoverage*100)
	fmt.Printf("  activity rank correlation:        %5.2f\n", v.ActivityRankCorr)
	return nil
}

func runActivity(inet *itm.Internet, args []string) error {
	fs := flag.NewFlagSet("activity", flag.ContinueOnError)
	n := fs.Int("n", 15, "how many ASes to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m := itm.BuildMap(inet)
	type row struct {
		asn itm.ASN
		act float64
	}
	var rows []row
	for asn, act := range m.Users.ASActivity {
		rows = append(rows, row{asn, act})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].act != rows[j].act {
			return rows[i].act > rows[j].act
		}
		return rows[i].asn < rows[j].asn
	})
	fmt.Printf("%-8s %-16s %-3s %10s %8s\n", "ASN", "NAME", "CC", "ACTIVITY", "SHARE")
	for i, r := range rows {
		if i >= *n {
			break
		}
		a := inet.Top.ASes[r.asn]
		fmt.Printf("%-8d %-16s %-3s %10.3g %7.2f%%\n",
			r.asn, a.Name, a.Country, r.act, 100*m.ActivityShare(r.asn))
	}
	return nil
}

func runServers(inet *itm.Internet, args []string) error {
	fs := flag.NewFlagSet("servers", flag.ContinueOnError)
	ownerName := fs.String("owner", "", "owner name (e.g. MegaCDN); empty = reference CDN")
	if err := fs.Parse(args); err != nil {
		return err
	}
	owner := inet.Cat.ReferenceCDN
	if *ownerName != "" {
		found := false
		for _, asn := range inet.Top.ASNs() {
			if inet.Top.ASes[asn].Name == *ownerName {
				owner, found = asn, true
				break
			}
		}
		if !found {
			return fmt.Errorf("no AS named %q", *ownerName)
		}
	}
	s := itm.NewSession(inet)
	scan := s.Scan()
	servers := scan.ByOwner[owner]
	fmt.Printf("%s (AS%d): %d serving prefixes, %d cities, %d off-net host networks\n",
		inet.Top.ASes[owner].Name, owner, len(servers),
		len(scan.Locations(owner)), len(scan.OffNetHosts(owner)))
	for _, c := range scan.Locations(owner) {
		fmt.Printf("  site: %-16s %s\n", c.Name, c.Country)
	}
	return nil
}

func runOutage(inet *itm.Internet, args []string) error {
	fs := flag.NewFlagSet("outage", flag.ContinueOnError)
	asn := fs.Uint("as", 0, "ASN to fail (0 = the largest eyeball)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	target := itm.ASN(*asn)
	if target == 0 {
		best := 0.0
		for _, cand := range inet.Top.ASesOfType(topology.Eyeball) {
			if u := inet.Users.ASUsers(cand); u > best {
				best, target = u, cand
			}
		}
	}
	if _, ok := inet.Top.ASes[target]; !ok {
		return fmt.Errorf("unknown AS %d", target)
	}
	m := itm.BuildMap(inet)
	rep := m.OutageImpact(target)
	fmt.Printf("outage of AS%d (%s, %s):\n", rep.AS, rep.Name, rep.Country)
	fmt.Printf("  estimated activity share: %.2f%%\n", rep.ActivityShare*100)
	fmt.Printf("  active client prefixes:   %d\n", rep.ActivePrefixes)
	fmt.Printf("  serving prefixes lost:    %d\n", rep.HostedServers)
	fmt.Printf("  affected services:        %d\n", len(rep.AffectedServices))
	for _, dom := range rep.AffectedServices {
		if fb, ok := rep.Fallbacks[dom]; ok {
			fmt.Printf("    %-28s -> fallback %v\n", dom, fb)
		} else {
			fmt.Printf("    %-28s (no fallback found)\n", dom)
		}
	}
	return nil
}

func runPeering(inet *itm.Internet, args []string) error {
	fs := flag.NewFlagSet("peering", flag.ContinueOnError)
	n := fs.Int("n", 15, "how many candidates to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cands := itm.PeeringCandidates(inet, *n)
	fmt.Printf("%-28s %-28s %8s %6s %s\n", "A", "B", "SCORE", "FACS", "ACTUALLY LINKED")
	for _, c := range cands {
		linked := inet.Top.HasLink(c.A, c.B)
		fmt.Printf("%-28s %-28s %8.2f %6d %v\n",
			fmt.Sprintf("%s (AS%d)", inet.Top.ASes[c.A].Name, c.A),
			fmt.Sprintf("%s (AS%d)", inet.Top.ASes[c.B].Name, c.B),
			c.Score, c.SharedFacilities, linked)
	}
	return nil
}

func runExport(inet *itm.Internet, args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m := itm.BuildMap(inet)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return m.Export(w)
}

func runTopo(inet *itm.Internet, args []string) error {
	fs := flag.NewFlagSet("topo", flag.ContinueOnError)
	format := fs.String("format", "dot", "output format: dot or json")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "dot":
		return inet.Top.ExportDOT(w)
	case "json":
		return inet.Top.ExportJSON(w)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func runDiff(inet *itm.Internet, args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	minShift := fs.Float64("min-shift", 0.002, "minimum activity-share change to report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	day0 := itm.NewSession(inet)
	day1 := itm.NewSession(inet)
	day1.DiscoveryStart = 24
	before := day0.Map()
	after := day1.Map()
	d := itm.DiffMaps(before, after, *minShift)
	fmt.Printf("day-over-day map diff:\n")
	fmt.Printf("  stable /24s:    %d (Jaccard %.3f)\n", d.StablePrefixes, d.Jaccard())
	fmt.Printf("  appeared /24s:  %d\n", len(d.PrefixesAppeared))
	fmt.Printf("  vanished /24s:  %d\n", len(d.PrefixesVanished))
	fmt.Printf("  activity shifts over %.2f%%: %d\n", *minShift*100, len(d.ActivityShifts))
	for i, sft := range d.ActivityShifts {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(d.ActivityShifts)-10)
			break
		}
		a := inet.Top.ASes[sft.ASN]
		fmt.Printf("    %-16s AS%-6d %+.3f%% (%.3f%% -> %.3f%%)\n",
			a.Name, sft.ASN, sft.Delta()*100, sft.Before*100, sft.After*100)
	}
	return nil
}

func runMRT(inet *itm.Internet, args []string) error {
	fs := flag.NewFlagSet("mrt", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	col := itm.CollectorFor(inet)
	return col.ExportMRT(w, inet.Paths, 0)
}
