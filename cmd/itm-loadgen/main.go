// Command itm-loadgen replays a seeded, deterministic query mix against an
// itm-serve instance and reports two ledgers: deterministic counters
// (requests by route, statuses, cache outcomes, body bytes — byte-identical
// across same-seed runs and worker counts) and a wall-clock performance
// summary (QPS, p50/p99 latency). Every planned request carries a seeded
// W3C traceparent header, so the server's "http" trace, access events, and
// histogram exemplars point back at exact plan entries (DESIGN.md §15).
//
// Two targets:
//
//	itm-loadgen -addr http://localhost:8411        replay over HTTP
//	itm-loadgen -self                              build a world in-process
//	                                               and replay against the
//	                                               same handler stack
//
// With -overload the paced replay is replaced by an unpaced burst against
// an admission-controlled server: 503s are counted instead of fatal, and
// the run fails unless admitted + shed == issued and every shed response
// carries Retry-After.
//
// Usage:
//
//	itm-loadgen [-addr URL | -self] [-seed N] [-n N] [-workers N]
//	            [-alpha F] [-as-pool N] [-reval F] [-counters out.json]
//	            [-scale tiny|small|default] [-world-seed N] [-epochs N]
//	            [-overload] [-mix map|mesh] [-mesh-agents N]
//
// With -mix mesh the replay targets the user↔user routes (/v1/path,
// /v1/latency, /v1/latency/top), drawing AS pairs zipf-weighted from the
// store's worst-latency ranking; the target store must have been built
// with mesh sections. In -self mode -mesh-agents sizes the in-process
// vantage fleet (it defaults on when the mesh mix is selected).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"itmap/internal/experiments"
	"itmap/internal/loadgen"
	"itmap/internal/mapstore"
	"itmap/internal/world"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running itm-serve (e.g. http://localhost:8411)")
	self := flag.Bool("self", false, "build a simulated world in-process and replay against its handler")
	seed := flag.Int64("seed", 1, "replay plan seed")
	n := flag.Int("n", 2000, "total requests to replay")
	workers := flag.Int("workers", 4, "closed-loop client concurrency")
	alpha := flag.Float64("alpha", 1.1, "zipf exponent for AS popularity")
	asPool := flag.Int("as-pool", 64, "top-ranked AS pool the zipf draws from")
	reval := flag.Float64("reval", 0.8, "probability a revisit sends If-None-Match")
	countersOut := flag.String("counters", "", "write the deterministic counters JSON here")
	scale := flag.String("scale", "tiny", "-self world scale: tiny, small, or default")
	worldSeed := flag.Int64("world-seed", 42, "-self world seed")
	epochs := flag.Int("epochs", 3, "-self simulated days (one epoch per day)")
	overload := flag.Bool("overload", false, "unpaced burst mode: count 503 sheds and assert the overload contract")
	mix := flag.String("mix", "map", "request mix: map (rankings, AS views, map fetches) or mesh (user↔user path/latency)")
	meshAgents := flag.Int("mesh-agents", 0, "-self vantage fleet size (0 = 48 when -mix mesh, else no mesh)")
	flag.Parse()

	if *meshAgents == 0 && *mix == "mesh" {
		*meshAgents = 48
	}
	if err := run(*addr, *self, *overload, *scale, *worldSeed, *epochs, *meshAgents, loadgen.Config{
		Base:       *addr,
		Seed:       *seed,
		Requests:   *n,
		Workers:    *workers,
		Alpha:      *alpha,
		ASPool:     *asPool,
		Revalidate: *reval,
		Mix:        *mix,
	}, *countersOut); err != nil {
		fmt.Fprintln(os.Stderr, "itm-loadgen:", err)
		os.Exit(1)
	}
}

func run(addr string, self, overload bool, scale string, worldSeed int64, epochs, meshAgents int, cfg loadgen.Config, countersOut string) error {
	var doer loadgen.Doer
	switch {
	case self && addr != "":
		return fmt.Errorf("-self and -addr are mutually exclusive")
	case self:
		var wc world.Config
		switch scale {
		case "tiny":
			wc = world.Tiny(worldSeed)
		case "small":
			wc = world.Small(worldSeed)
		case "default":
			wc = world.Default(worldSeed)
		default:
			return fmt.Errorf("unknown scale %q", scale)
		}
		fmt.Fprintf(os.Stderr, "itm-loadgen: building %s world (seed %d, %d epochs, mesh agents %d)\n", scale, worldSeed, epochs, meshAgents)
		var st *mapstore.Store
		var err error
		if meshAgents > 0 {
			st = mapstore.NewStore()
			err = experiments.BuildEpochStoreMeshInto(st, world.Build(wc), epochs, 0,
				experiments.MeshSpec{Agents: meshAgents, Rounds: 2})
		} else {
			st, err = experiments.BuildEpochStore(world.Build(wc), epochs, 0)
		}
		if err != nil {
			return err
		}
		doer = loadgen.HandlerDoer{Handler: mapstore.NewHandler(st)}
	case addr != "":
		doer = &http.Client{}
	default:
		return fmt.Errorf("need -addr or -self")
	}

	if overload {
		c, err := loadgen.RunOverload(loadgen.OverloadConfig{
			Base:     cfg.Base,
			Seed:     cfg.Seed,
			Requests: cfg.Requests,
			Workers:  cfg.Workers,
		}, doer)
		if err != nil {
			return err
		}
		fmt.Printf("itm-loadgen: overload n=%d workers=%d seed=%d admitted=%d shed=%d (admitted+shed==issued, all 503s carried Retry-After)\n",
			c.Issued, cfg.Workers, cfg.Seed, c.Admitted, c.Shed)
		if countersOut != "" {
			blob, err := json.MarshalIndent(c, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(countersOut, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "itm-loadgen: wrote overload ledger to %s\n", countersOut)
		}
		return nil
	}

	res, err := loadgen.Run(cfg, doer)
	if err != nil {
		return err
	}
	c := res.Counters
	fmt.Printf("itm-loadgen: n=%d workers=%d seed=%d traced=%d hit_ratio=%.3f not_modified=%d body_bytes=%d\n",
		c.Total(), cfg.Workers, cfg.Seed, c.Traced, c.HitRatio(), c.NotModified, c.BodyBytes)
	fmt.Printf("itm-loadgen: wall qps=%.0f p50_ms=%.3f p99_ms=%.3f (machine-dependent, not part of the deterministic ledger)\n",
		res.Perf.QPS, res.Perf.P50ms, res.Perf.P99ms)
	if countersOut != "" {
		blob, err := c.MarshalSorted()
		if err != nil {
			return err
		}
		if err := os.WriteFile(countersOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "itm-loadgen: wrote deterministic counters to %s\n", countersOut)
	}
	return nil
}
