// Command itm-top is a plain-text dashboard for a running itm-serve: the
// "watching the map" companion to itm-loadgen's "pushing on it".
//
// Each refresh it pulls three read-only surfaces —
//
//	GET /v1/slo          burn-rate judgment per serving objective
//	GET /v1/obs/history  the deterministic telemetry history ring
//	GET /metrics         text exposition, mined for latency exemplars
//
// — and renders four panes: the SLO table (status, max burn rate, and the
// widest window's SLI per objective), the most recent history samples, the
// largest counter families in the newest sample, and the worst-offending
// traces (highest-bucket exemplars of itm_http_request_seconds, the
// trace_id handles you can chase through the trace export).
//
// With -once it renders a single frame and exits — scriptable, and what
// `make slo-smoke` asserts on. Without it, the terminal is redrawn every
// -interval until interrupted. itm-top is a pure consumer: it holds no
// state between frames and mutates nothing on the server.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

type sloWindow struct {
	Samples  int     `json:"samples"`
	SLI      float64 `json:"sli"`
	BurnRate float64 `json:"burn_rate"`
}

type sloObjective struct {
	Name        string      `json:"name"`
	Target      float64     `json:"target"`
	Status      string      `json:"status"`
	MaxBurnRate float64     `json:"max_burn_rate"`
	Windows     []sloWindow `json:"windows"`
}

type sloReport struct {
	Generation int            `json:"generation"`
	AllMet     bool           `json:"all_met"`
	Objectives []sloObjective `json:"objectives"`
}

type historyKV struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

type historySample struct {
	Index  int         `json:"index"`
	Source string      `json:"source"`
	Label  string      `json:"label"`
	AtH    float64     `json:"at_h"`
	Values []historyKV `json:"values"`
}

type historyBody struct {
	Generation int              `json:"generation"`
	Dropped    int              `json:"dropped"`
	Samples    []*historySample `json:"samples"`
}

// exemplarRow is one histogram bucket's retained exemplar: the trace that
// observed it, mined from `... # {trace_id="..."} <value>` suffixes in the
// text exposition.
type exemplarRow struct {
	route   string
	le      float64
	traceID string
	value   float64
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8411", "base URL of a running itm-serve")
		interval = flag.Duration("interval", 2*time.Second, "refresh period in watch mode")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
	)
	flag.Parse()

	base := strings.TrimSuffix(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}

	for {
		frame, err := render(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itm-top: %v\n", err)
			if *once {
				os.Exit(1)
			}
		} else {
			if !*once {
				// Clear screen + home cursor between frames.
				fmt.Print("\x1b[2J\x1b[H")
			}
			fmt.Print(frame)
		}
		if *once {
			return
		}
		time.Sleep(*interval) //itmlint:allow nodeterm interactive dashboard refresh pacing
	}
}

// render fetches all three surfaces and lays out one frame. Any one
// surface failing fails the frame: a partial dashboard over a flapping
// server is worse than an error line.
func render(client *http.Client, base string) (string, error) {
	var slo sloReport
	if err := fetchJSON(client, base+"/v1/slo", &slo); err != nil {
		return "", err
	}
	var hist historyBody
	if err := fetchJSON(client, base+"/v1/obs/history", &hist); err != nil {
		return "", err
	}
	metrics, err := fetchText(client, base+"/metrics")
	if err != nil {
		return "", err
	}

	var b strings.Builder
	now := time.Now().Format(time.RFC3339) //itmlint:allow nodeterm frame timestamp is display-only
	overall := "ALL MET"
	if !slo.AllMet {
		overall = "DEGRADED"
	}
	fmt.Fprintf(&b, "itm-top  %s  %s  [%s, gen %d]\n\n", base, now, overall, slo.Generation)

	writeSLOPane(&b, slo)
	writeHistoryPane(&b, hist)
	writeFamilyPane(&b, hist)
	writeTracePane(&b, parseExemplars(metrics, "itm_http_request_seconds_bucket"))
	return b.String(), nil
}

func writeSLOPane(b *strings.Builder, slo sloReport) {
	fmt.Fprintf(b, "SLO objectives\n")
	fmt.Fprintf(b, "  %-26s %-10s %8s %10s %10s\n", "OBJECTIVE", "STATUS", "TARGET", "SLI", "MAX BURN")
	for _, o := range slo.Objectives {
		sli := "-"
		if n := len(o.Windows); n > 0 {
			// The last window is the widest ("since start"): the
			// steadiest SLI to read at a glance.
			w := o.Windows[n-1]
			if w.Samples > 0 {
				sli = fmt.Sprintf("%.5f", w.SLI)
			}
		}
		fmt.Fprintf(b, "  %-26s %-10s %8.3f %10s %10.2f\n",
			o.Name, o.Status, o.Target, sli, o.MaxBurnRate)
	}
	b.WriteByte('\n')
}

func writeHistoryPane(b *strings.Builder, hist historyBody) {
	fmt.Fprintf(b, "History ring  (%d samples retained, %d dropped)\n",
		len(hist.Samples), hist.Dropped)
	const keep = 6
	samples := hist.Samples
	if len(samples) > keep {
		samples = samples[len(samples)-keep:]
	}
	for _, s := range samples {
		fmt.Fprintf(b, "  #%-4d %-6s %-18s at %6.1fh  %d series\n",
			s.Index, s.Source, s.Label, s.AtH, len(s.Values))
	}
	if len(hist.Samples) == 0 {
		fmt.Fprintf(b, "  (no samples yet — serve an epoch or run a campaign)\n")
	}
	b.WriteByte('\n')
}

func writeFamilyPane(b *strings.Builder, hist historyBody) {
	fmt.Fprintf(b, "Top families  (latest sample, by value)\n")
	if len(hist.Samples) == 0 {
		fmt.Fprintf(b, "  (none)\n\n")
		return
	}
	last := hist.Samples[len(hist.Samples)-1]
	rows := make([]historyKV, len(last.Values))
	copy(rows, last.Values)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value > rows[j].Value
		}
		return rows[i].Key < rows[j].Key
	})
	const keep = 8
	if len(rows) > keep {
		rows = rows[:keep]
	}
	for _, kv := range rows {
		fmt.Fprintf(b, "  %14.6g  %s\n", kv.Value, kv.Key)
	}
	b.WriteByte('\n')
}

func writeTracePane(b *strings.Builder, rows []exemplarRow) {
	fmt.Fprintf(b, "Worst traces  (itm_http_request_seconds exemplars)\n")
	if len(rows) == 0 {
		fmt.Fprintf(b, "  (no exemplars yet — send traced requests, e.g. itm-loadgen)\n")
		return
	}
	// Rows arrive sorted highest value first: the requests most worth
	// chasing lead.
	const keep = 5
	if len(rows) > keep {
		rows = rows[:keep]
	}
	for _, r := range rows {
		fmt.Fprintf(b, "  %10.6fs  le=%-8g %-28s trace=%s\n", r.value, r.le, r.route, r.traceID)
	}
}

// parseExemplars mines bucket exemplars for one histogram family out of a
// text exposition. Lines look like:
//
//	itm_http_request_seconds_bucket{route="/v1/top",le="0.01"} 4 # {trace_id="ab..."} 0.0042
func parseExemplars(exposition, family string) []exemplarRow {
	var rows []exemplarRow
	seen := make(map[string]exemplarRow) // best (highest-le) bucket per trace
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		hash := strings.Index(line, " # {trace_id=\"")
		if hash < 0 {
			continue
		}
		rest := line[hash+len(" # {trace_id=\""):]
		q := strings.Index(rest, "\"")
		if q < 0 {
			continue
		}
		traceID := rest[:q]
		rest = strings.TrimPrefix(rest[q:], "\"} ")
		value, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			continue
		}
		row := exemplarRow{
			route:   labelValue(line, "route"),
			le:      leValue(line),
			traceID: traceID,
			value:   value,
		}
		// Each bucket retains at most one exemplar; if the same trace
		// won several buckets, keep its tightest (smallest-le) sighting.
		if prev, ok := seen[traceID+"|"+row.route]; !ok || row.le < prev.le {
			seen[traceID+"|"+row.route] = row
		}
	}
	for _, r := range seen {
		rows = append(rows, r)
	}
	// Map iteration order is random; restore a deterministic order before
	// anything downstream reads the slice.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].value != rows[j].value {
			return rows[i].value > rows[j].value
		}
		return rows[i].traceID < rows[j].traceID
	})
	return rows
}

func labelValue(line, key string) string {
	marker := key + "=\""
	i := strings.Index(line, marker)
	if i < 0 {
		return ""
	}
	rest := line[i+len(marker):]
	if j := strings.Index(rest, "\""); j >= 0 {
		return rest[:j]
	}
	return ""
}

func leValue(line string) float64 {
	s := labelValue(line, "le")
	if s == "+Inf" {
		return float64(99e99)
	}
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func fetchJSON(client *http.Client, url string, into any) error {
	body, err := fetchText(client, url)
	if err != nil {
		return err
	}
	if err := json.Unmarshal([]byte(body), into); err != nil {
		return fmt.Errorf("%s: decode: %w", url, err)
	}
	return nil
}

func fetchText(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("%s: read: %w", url, err)
	}
	return string(raw), nil
}
