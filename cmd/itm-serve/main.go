// Command itm-serve exposes an epoch-versioned Internet traffic map over
// HTTP. It either runs a multi-day measurement campaign on a simulated
// Internet (one epoch per day) or loads a previously exported map snapshot,
// then serves the query API until interrupted:
//
//	GET /healthz                  liveness + epoch count
//	GET /v1/epochs                epoch metadata
//	GET /v1/map/{epoch}           map document (?format=binary → ITMB)
//	GET /v1/top?epoch=&k=         top-K ASes by activity
//	GET /v1/as/{asn}?epoch=&k=    per-AS view + activity series
//	GET /v1/diff/{a}/{b}          epoch-to-epoch diff
//	GET /v1/link/{a}/{b}?epoch=   ground-truth link load (simulation mode)
//	GET /metrics                  Prometheus text exposition (0.0.4)
//	GET /v1/traces                recorded trace names
//	GET /v1/trace/{campaign}      one campaign's span tree
//
// Usage:
//
//	itm-serve [-addr :8411] [-scale tiny|small|default] [-seed N]
//	          [-epochs N] [-workers N] [-snapshot map.json] [-pprof]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"itmap/internal/core"
	"itmap/internal/experiments"
	"itmap/internal/faults"
	"itmap/internal/mapstore"
	"itmap/internal/obs"
	"itmap/internal/world"
)

func main() {
	addr := flag.String("addr", ":8411", "listen address")
	scale := flag.String("scale", "tiny", "world scale: tiny, small, or default")
	seed := flag.Int64("seed", 42, "world seed")
	epochs := flag.Int("epochs", 3, "simulated days to measure (one epoch per day)")
	workers := flag.Int("workers", 0, "matrix build workers (0 = one per CPU)")
	snapshot := flag.String("snapshot", "", "serve this exported map JSON instead of simulating")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	obs.Events().SetOutput(os.Stderr)
	if err := run(*addr, *scale, *seed, *epochs, *workers, *snapshot, *pprofOn); err != nil {
		obs.Event(obs.Error, "serve.exit", "reason", err.Error())
		os.Exit(1)
	}
}

func buildStore(scale string, seed int64, epochs, workers int, snapshot string) (*mapstore.Store, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		doc, err := core.ImportDocument(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", snapshot, err)
		}
		st := mapstore.NewStore()
		if _, err := st.Append(0, doc); err != nil {
			return nil, fmt.Errorf("%s: %w", snapshot, err)
		}
		return st, nil
	}

	var cfg world.Config
	switch scale {
	case "tiny":
		cfg = world.Tiny(seed)
	case "small":
		cfg = world.Small(seed)
	case "default":
		cfg = world.Default(seed)
	default:
		return nil, fmt.Errorf("unknown scale %q", scale)
	}
	obs.Event(obs.Info, "serve.building", "scale", scale, "seed", seed, "epochs", epochs)
	return experiments.BuildEpochStore(world.Build(cfg), epochs, workers)
}

// newMux layers the operational endpoints over the store's query API.
func newMux(st *mapstore.Store, pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", mapstore.NewHandler(st))
	mux.Handle("GET /metrics", obs.MetricsHandler(obs.Metrics()))
	mux.Handle("GET /v1/traces", obs.InstrumentHandler("GET /v1/traces",
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\n  \"traces\": [")
			for i, n := range obs.Tracing().Names() {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprintf(w, "%q", n)
			}
			fmt.Fprint(w, "]\n}\n")
		})))
	mux.Handle("GET /v1/trace/{campaign}", obs.InstrumentHandler("GET /v1/trace/{campaign}",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			name := r.PathValue("campaign")
			tr, ok := obs.Tracing().Lookup(name)
			if !ok {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusNotFound)
				fmt.Fprintf(w, "{\"error\": %q}\n", "no trace "+name)
				return
			}
			b, err := tr.ExportJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(b)
		})))
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func run(addr, scale string, seed int64, epochs, workers int, snapshot string, pprofOn bool) error {
	faults.RegisterMetrics()
	st, err := buildStore(scale, seed, epochs, workers, snapshot)
	if err != nil {
		return err
	}
	obs.G("itm_serve_epochs_loaded", "Epochs available in the serving store.").Set(float64(st.Len()))
	for _, info := range st.Infos() {
		obs.Event(obs.Info, "serve.epoch", "id", info.ID, "at_h", float64(info.At),
			"prefixes", info.ActivePrefixes, "ases", info.ASes, "servers", info.Servers,
			"mappings", info.Mappings, "encoded_bytes", info.EncodedBytes)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newMux(st, pprofOn)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	obs.Event(obs.Info, "serve.listening", "addr", ln.Addr().String(),
		"epochs", st.Len(), "pprof", pprofOn)

	reason := "signal"
	select {
	case err := <-errc:
		obs.Event(obs.Error, "serve.shutdown", "reason", err.Error())
		return err
	case <-ctx.Done():
	}
	stop()
	obs.Event(obs.Info, "serve.shutdown", "reason", reason)
	// Graceful drain: in-flight requests finish; new connections are
	// refused. No deadline — a second signal kills the process anyway.
	return srv.Shutdown(context.Background())
}
