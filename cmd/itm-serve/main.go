// Command itm-serve exposes an epoch-versioned Internet traffic map over
// HTTP. It either runs a multi-day measurement campaign on a simulated
// Internet (one epoch per day) or loads a previously exported map snapshot,
// then serves the query API until interrupted:
//
//	GET /healthz                  liveness + epoch count
//	GET /v1/epochs                epoch metadata
//	GET /v1/map/{epoch}           map document (?format=binary → ITMB)
//	GET /v1/top?epoch=&k=         top-K ASes by activity
//	GET /v1/as/{asn}?epoch=&k=    per-AS view + activity series
//	GET /v1/diff/{a}/{b}          epoch-to-epoch diff
//	GET /v1/link/{a}/{b}?epoch=   ground-truth link load (simulation mode)
//	GET /v1/path/{a}/{b}?epoch=   user↔user AS path (-mesh-agents > 0)
//	GET /v1/latency/{a}/{b}?epoch= user↔user RTT summary (-mesh-agents > 0)
//	GET /v1/latency/top?epoch=&k= worst mesh pairs by mean RTT
//	GET /v1/obs/history           telemetry history ring (per-epoch samples)
//	GET /v1/obs/history/{family}  one metric family's series over the ring
//	GET /v1/slo                   SLO burn-rate report (see itm-top)
//	GET /metrics                  Prometheus text exposition (0.0.4)
//	GET /v1/traces                recorded trace names
//	GET /v1/trace/{campaign}      one campaign's span tree
//
// With -wal DIR every ingested epoch is journaled (fsync-on-append) before
// it is served, and a restart replays the journal instead of rebuilding the
// world — including after a SIGKILL mid-append, whose torn record is
// truncated on recovery. All non-operator routes pass through an admission
// valve (bounded concurrency + bounded wait queue) that sheds with 503 +
// Retry-After when saturated; SIGTERM drains in-flight requests before the
// WAL is closed.
//
// Usage:
//
//	itm-serve [-addr :8411] [-scale tiny|small|default] [-seed N]
//	          [-epochs N] [-workers N] [-snapshot map.json] [-pprof]
//	          [-wal DIR] [-compact-every N] [-max-inflight N] [-max-queue N]
//	          [-mesh-agents N] [-mesh-rounds N] [-mesh-profile NAME]
//
// With -mesh-agents > 0 each simulated day also runs a vantage-fleet mesh
// campaign (agents seeded into eyeball ASes probing each other) and the
// epoch carries user↔user path/latency sections served at /v1/path and
// /v1/latency. Mesh sections are not WAL-journaled: a recovered store
// serves the map routes only.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"itmap/internal/core"
	"itmap/internal/experiments"
	"itmap/internal/faults"
	"itmap/internal/mapstore"
	"itmap/internal/mapstore/wal"
	"itmap/internal/obs"
	"itmap/internal/world"
)

// options carries every flag; one struct keeps run()'s signature sane.
type options struct {
	addr         string
	scale        string
	seed         int64
	epochs       int
	workers      int
	snapshot     string
	pprofOn      bool
	walDir       string
	compactEvery int
	maxInflight  int
	maxQueue     int
	meshAgents   int
	meshRounds   int
	meshProfile  string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8411", "listen address")
	flag.StringVar(&o.scale, "scale", "tiny", "world scale: tiny, small, or default")
	flag.Int64Var(&o.seed, "seed", 42, "world seed")
	flag.IntVar(&o.epochs, "epochs", 3, "simulated days to measure (one epoch per day)")
	flag.IntVar(&o.workers, "workers", 0, "matrix build workers (0 = one per CPU)")
	flag.StringVar(&o.snapshot, "snapshot", "", "serve this exported map JSON instead of simulating")
	flag.BoolVar(&o.pprofOn, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.StringVar(&o.walDir, "wal", "", "journal epochs under this directory; replay it on boot instead of rebuilding")
	flag.IntVar(&o.compactEvery, "compact-every", 0, "fold the WAL journal into a snapshot every N epochs (0 = default, <0 = never)")
	flag.IntVar(&o.maxInflight, "max-inflight", 0, "admission: concurrent request slots (0 = default)")
	flag.IntVar(&o.maxQueue, "max-queue", -1, "admission: wait-queue capacity (-1 = default, 0 = shed immediately when slots are full)")
	flag.IntVar(&o.meshAgents, "mesh-agents", 0, "vantage fleet size for per-epoch mesh campaigns (0 = no mesh)")
	flag.IntVar(&o.meshRounds, "mesh-rounds", 2, "mesh campaign rounds per epoch")
	flag.StringVar(&o.meshProfile, "mesh-profile", "none", "fault preset the mesh fleet probes under")
	flag.Parse()

	obs.Events().SetOutput(os.Stderr)
	if err := run(o); err != nil {
		obs.Event(obs.Error, "serve.exit", "reason", err.Error())
		os.Exit(1)
	}
}

// fillStore populates an empty store — from a snapshot export or by running
// the measurement campaign. The store may already have a WAL attached, in
// which case every append lands in the journal before it is served.
func fillStore(st *mapstore.Store, o options) error {
	if o.snapshot != "" {
		f, err := os.Open(o.snapshot)
		if err != nil {
			return err
		}
		defer f.Close()
		doc, err := core.ImportDocument(f)
		if err != nil {
			return fmt.Errorf("%s: %w", o.snapshot, err)
		}
		if _, err := st.Append(0, doc); err != nil {
			return fmt.Errorf("%s: %w", o.snapshot, err)
		}
		return nil
	}

	var cfg world.Config
	switch o.scale {
	case "tiny":
		cfg = world.Tiny(o.seed)
	case "small":
		cfg = world.Small(o.seed)
	case "default":
		cfg = world.Default(o.seed)
	default:
		return fmt.Errorf("unknown scale %q", o.scale)
	}
	obs.Event(obs.Info, "serve.building", "scale", o.scale, "seed", o.seed, "epochs", o.epochs)
	if o.meshAgents > 0 {
		prof, ok := faults.ByName(o.meshProfile)
		if !ok {
			return fmt.Errorf("unknown mesh profile %q", o.meshProfile)
		}
		obs.Event(obs.Info, "serve.mesh", "agents", o.meshAgents, "rounds", o.meshRounds, "profile", o.meshProfile)
		return experiments.BuildEpochStoreMeshInto(st, world.Build(cfg), o.epochs, o.workers,
			experiments.MeshSpec{Agents: o.meshAgents, Rounds: o.meshRounds, Profile: prof})
	}
	return experiments.BuildEpochStoreInto(st, world.Build(cfg), o.epochs, o.workers)
}

// openStore assembles the serving store. With -wal and a non-empty journal
// the world rebuild is skipped entirely: the store is replayed from disk,
// torn tail repaired, and the WAL stays attached for future appends.
func openStore(o options) (*mapstore.Store, *wal.WAL, error) {
	if o.walDir == "" {
		st := mapstore.NewStore()
		return st, nil, fillStore(st, o)
	}
	w, rec, err := wal.Open(wal.Options{Dir: o.walDir, CompactEvery: o.compactEvery})
	if err != nil {
		return nil, nil, err
	}
	if len(rec.Records) > 0 {
		st, err := mapstore.RecoverStore(w, rec)
		if err != nil {
			return nil, nil, err
		}
		obs.Event(obs.Info, "serve.recovered", "wal", o.walDir,
			"epochs", len(rec.Records), "snapshot_epochs", rec.SnapshotRecords,
			"journal_epochs", rec.JournalRecords, "truncated_tail_bytes", rec.TruncatedBytes)
		return st, w, nil
	}
	st := mapstore.NewStore()
	st.AttachWAL(w)
	if err := fillStore(st, o); err != nil {
		return nil, nil, err
	}
	return st, w, nil
}

// newMux layers the operational endpoints over the store's query API.
func newMux(st *mapstore.Store, pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", mapstore.NewHandler(st))
	mux.Handle("GET /metrics", obs.MetricsHandler(obs.Metrics()))
	mux.Handle("GET /v1/traces", obs.InstrumentHandler("GET /v1/traces",
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\n  \"traces\": [")
			for i, n := range obs.Tracing().Names() {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprintf(w, "%q", n)
			}
			fmt.Fprint(w, "]\n}\n")
		})))
	mux.Handle("GET /v1/trace/{campaign}", obs.InstrumentHandler("GET /v1/trace/{campaign}",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			name := r.PathValue("campaign")
			tr, ok := obs.Tracing().Lookup(name)
			if !ok {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusNotFound)
				fmt.Fprintf(w, "{\"error\": %q}\n", "no trace "+name)
				return
			}
			b, err := tr.ExportJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(b)
		})))
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func run(o options) error {
	faults.RegisterMetrics()
	st, w, err := openStore(o)
	if err != nil {
		return err
	}
	obs.G("itm_serve_epochs_loaded", "Epochs available in the serving store.").Set(float64(st.Len()))
	for _, info := range st.Infos() {
		obs.Event(obs.Info, "serve.epoch", "id", info.ID, "at_h", float64(info.At),
			"prefixes", info.ActivePrefixes, "ases", info.ASes, "servers", info.Servers,
			"mappings", info.Mappings, "encoded_bytes", info.EncodedBytes)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	adm := mapstore.NewAdmission(mapstore.AdmissionConfig{
		MaxInFlight: o.maxInflight,
		MaxQueue:    o.maxQueue,
	})
	srv := &http.Server{Handler: adm.Wrap(newMux(st, o.pprofOn))}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	obs.Event(obs.Info, "serve.listening", "addr", ln.Addr().String(),
		"epochs", st.Len(), "wal", o.walDir != "", "pprof", o.pprofOn)

	reason := "signal"
	select {
	case err := <-errc:
		obs.Event(obs.Error, "serve.shutdown", "reason", err.Error())
		return err
	case <-ctx.Done():
	}
	stop()
	obs.Event(obs.Info, "serve.shutdown", "reason", reason)
	// Graceful drain, in order: stop admitting (queued waiters shed, new
	// arrivals 503), let in-flight requests finish, then close the journal —
	// which therefore always ends on a record boundary.
	adm.BeginDrain()
	if err := srv.Shutdown(context.Background()); err != nil {
		return err
	}
	if w != nil {
		if err := w.Close(); err != nil {
			return fmt.Errorf("closing wal: %w", err)
		}
		obs.Event(obs.Info, "serve.wal_closed", "dir", o.walDir)
	}
	return nil
}
