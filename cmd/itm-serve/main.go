// Command itm-serve exposes an epoch-versioned Internet traffic map over
// HTTP. It either runs a multi-day measurement campaign on a simulated
// Internet (one epoch per day) or loads a previously exported map snapshot,
// then serves the query API until interrupted:
//
//	GET /healthz                  liveness + epoch count
//	GET /v1/epochs                epoch metadata
//	GET /v1/map/{epoch}           map document (?format=binary → ITMB)
//	GET /v1/top?epoch=&k=         top-K ASes by activity
//	GET /v1/as/{asn}?epoch=&k=    per-AS view + activity series
//	GET /v1/diff/{a}/{b}          epoch-to-epoch diff
//	GET /v1/link/{a}/{b}?epoch=   ground-truth link load (simulation mode)
//
// Usage:
//
//	itm-serve [-addr :8411] [-scale tiny|small|default] [-seed N]
//	          [-epochs N] [-workers N] [-snapshot map.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"itmap/internal/core"
	"itmap/internal/experiments"
	"itmap/internal/mapstore"
	"itmap/internal/world"
)

func main() {
	addr := flag.String("addr", ":8411", "listen address")
	scale := flag.String("scale", "tiny", "world scale: tiny, small, or default")
	seed := flag.Int64("seed", 42, "world seed")
	epochs := flag.Int("epochs", 3, "simulated days to measure (one epoch per day)")
	workers := flag.Int("workers", 0, "matrix build workers (0 = one per CPU)")
	snapshot := flag.String("snapshot", "", "serve this exported map JSON instead of simulating")
	flag.Parse()

	if err := run(*addr, *scale, *seed, *epochs, *workers, *snapshot); err != nil {
		fmt.Fprintln(os.Stderr, "itm-serve:", err)
		os.Exit(1)
	}
}

func buildStore(scale string, seed int64, epochs, workers int, snapshot string) (*mapstore.Store, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		doc, err := core.ImportDocument(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", snapshot, err)
		}
		st := mapstore.NewStore()
		if _, err := st.Append(0, doc); err != nil {
			return nil, fmt.Errorf("%s: %w", snapshot, err)
		}
		return st, nil
	}

	var cfg world.Config
	switch scale {
	case "tiny":
		cfg = world.Tiny(seed)
	case "small":
		cfg = world.Small(seed)
	case "default":
		cfg = world.Default(seed)
	default:
		return nil, fmt.Errorf("unknown scale %q", scale)
	}
	fmt.Fprintf(os.Stderr, "itm-serve: building %s world (seed %d) and measuring %d epoch(s)...\n",
		scale, seed, epochs)
	return experiments.BuildEpochStore(world.Build(cfg), epochs, workers)
}

func run(addr, scale string, seed int64, epochs, workers int, snapshot string) error {
	st, err := buildStore(scale, seed, epochs, workers, snapshot)
	if err != nil {
		return err
	}
	for _, info := range st.Infos() {
		fmt.Fprintf(os.Stderr, "itm-serve: epoch %d at %vh: %d prefixes, %d ASes, %d servers, %d mappings, %d bytes encoded\n",
			info.ID, info.At, info.ActivePrefixes, info.ASes, info.Servers, info.Mappings, info.EncodedBytes)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mapstore.NewHandler(st)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "itm-serve: listening on %s\n", ln.Addr())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "itm-serve: shutting down")
	// Graceful drain: in-flight requests finish; new connections are
	// refused. No deadline — a second signal kills the process anyway.
	return srv.Shutdown(context.Background())
}
