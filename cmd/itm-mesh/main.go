// Command itm-mesh runs one vantage-fleet mesh campaign and prints the
// user↔user connectivity it measured: agents seeded into eyeball ASes
// traceroute and ping each other through the fault substrate, and the
// resulting MeshMatrix is summarised (coverage, loss, worst pairs) or
// written as ITMB v2 mesh sections with -o.
//
// The output is deterministic: the same scale, seed, agents, rounds, and
// profile produce byte-identical mesh sections for every -workers setting.
//
// Usage:
//
//	itm-mesh [-scale tiny|small|default] [-seed N] [-agents N] [-rounds N]
//	         [-workers N] [-profile none|calm|lossy|hostile] [-o mesh.itmb]
package main

import (
	"flag"
	"fmt"
	"os"

	"itmap/internal/experiments"
	"itmap/internal/faults"
	"itmap/internal/mapstore"
	"itmap/internal/vantage"
	"itmap/internal/world"
)

func main() {
	scale := flag.String("scale", "tiny", "world scale: tiny, small, or default")
	seed := flag.Int64("seed", 42, "world seed")
	agents := flag.Int("agents", 48, "vantage fleet size")
	rounds := flag.Int("rounds", 2, "campaign rounds")
	workers := flag.Int("workers", 0, "campaign workers (0 = one per CPU)")
	profile := flag.String("profile", "none", "fault preset: none, calm, lossy, hostile")
	out := flag.String("o", "", "write ITMB v2 mesh sections to this file")
	top := flag.Int("top", 5, "worst pairs to print")
	flag.Parse()

	if err := run(*scale, *seed, *agents, *rounds, *workers, *profile, *out, *top); err != nil {
		fmt.Fprintln(os.Stderr, "itm-mesh:", err)
		os.Exit(1)
	}
}

func run(scale string, seed int64, agents, rounds, workers int, profile, out string, topK int) error {
	var cfg world.Config
	switch scale {
	case "tiny":
		cfg = world.Tiny(seed)
	case "small":
		cfg = world.Small(seed)
	case "default":
		cfg = world.Default(seed)
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	prof, ok := faults.ByName(profile)
	if !ok {
		return fmt.Errorf("unknown fault profile %q", profile)
	}
	vantage.RegisterMetrics()
	w := world.Build(cfg)
	doc, stats := experiments.RunMeshCampaign(w, experiments.MeshSpec{
		Agents: agents, Rounds: rounds, Profile: prof,
	}, 0, workers)

	probes, lost, complete := 0, 0, 0
	for i := range doc.Pairs {
		p := &doc.Pairs[i]
		probes += p.Probes
		lost += p.Lost
		if p.Complete {
			complete++
		}
	}
	fmt.Printf("mesh campaign: %d agents × %d rounds, profile %s\n", doc.Agents, doc.Rounds, doc.Profile)
	fmt.Printf("  scheduled %d, completed %d, skipped %d (budget) + %d (same AS)\n",
		stats.Scheduled, stats.Completed, stats.SkippedBudget, stats.SkippedSameAS)
	fmt.Printf("  %d pairs measured: %d complete paths, %d/%d pings lost (%.1f%%)\n",
		len(doc.Pairs), complete, lost, probes, 100*lossRate(lost, probes))
	fmt.Printf("  %d traceroutes (%d retries), %d incomplete\n",
		stats.Traceroutes, stats.TraceRetries, stats.Incomplete)

	if topK > 0 && len(doc.Pairs) > 0 {
		fmt.Printf("  worst pairs by mean RTT:\n")
		for _, r := range mapstore.RankMeshPairs(doc, topK) {
			fmt.Printf("    AS%-6d ↔ AS%-6d  mean %7.2fms  min %7.2fms  loss %.2f  complete=%v\n",
				r.A, r.B, r.MeanRTTms, r.MinRTTms, r.Loss, r.Complete)
		}
	}

	if out != "" {
		enc, err := mapstore.EncodeMeshDocument(doc)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %d bytes of ITMB v2 mesh sections to %s\n", len(enc), out)
	}
	return nil
}

func lossRate(lost, probes int) float64 {
	if probes == 0 {
		return 0
	}
	return float64(lost) / float64(probes)
}
