// Command itm-lint runs the project's determinism and safety analyzer
// suite (internal/analysis) over the module, using only the Go standard
// library. Diagnostics print as "file:line:col: analyzer: message"; the
// exit code is 0 when clean, 1 on any diagnostic, 2 on load failure.
//
// Usage:
//
//	itm-lint [-C dir] [-json] [packages...]
//
// With no arguments (or "./..."), every package in the module is checked.
// Arguments are directories relative to the module root.
//
// With -json, diagnostics are emitted to stdout as one JSON array sorted
// by (file, line, col, analyzer, message) — byte-identical across runs on
// the same tree. Each element has exactly these fields:
//
//	{
//	  "file": "internal/foo/bar.go",  // module-root-relative path
//	  "line": 42,                     // 1-based
//	  "col": 7,                       // 1-based byte column
//	  "analyzer": "lockguard",        // or "suppress" for allow hygiene
//	  "message": "..."
//	}
//
// A clean run emits [] (never null). Load errors still go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"itmap/internal/analysis"
)

func main() {
	chdir := flag.String("C", ".", "directory inside the module to lint (module root is found via go.mod)")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a sorted JSON array on stdout")
	flag.Parse()

	if *list {
		for _, an := range analysis.All() {
			fmt.Printf("%-10s %s\n", an.Name, an.Doc)
		}
		return
	}

	root, err := analysis.FindModuleRoot(*chdir)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	var pkgs []*analysis.Package
	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fatal(err)
		}
	} else {
		for _, arg := range args {
			pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash(arg)))
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	loadErrs := 0
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			fmt.Fprintf(os.Stderr, "itm-lint: load %s: %v\n", pkg.PkgPath, e)
			loadErrs++
		}
		for _, d := range analysis.Run(pkg, analysis.All()) {
			d.Pos.Filename = relPath(root, d.Pos.Filename)
			diags = append(diags, d)
		}
	}
	// One global order regardless of package load order: the JSON schema
	// promises byte-identical output for the same tree, and the text mode
	// benefits from the same stability.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	if *jsonOut {
		emitJSON(diags)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	switch {
	case loadErrs > 0:
		os.Exit(2)
	case len(diags) > 0:
		fmt.Fprintf(os.Stderr, "itm-lint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the documented -json element shape.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emitJSON(diags []analysis.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "itm-lint:", err)
	os.Exit(2)
}
