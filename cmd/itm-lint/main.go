// Command itm-lint runs the project's determinism and safety analyzer
// suite (internal/analysis) over the module, using only the Go standard
// library. Diagnostics print as "file:line:col: analyzer: message"; the
// exit code is 0 when clean, 1 on any diagnostic, 2 on load failure.
//
// Usage:
//
//	itm-lint [-C dir] [packages...]
//
// With no arguments (or "./..."), every package in the module is checked.
// Arguments are directories relative to the module root.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"itmap/internal/analysis"
)

func main() {
	chdir := flag.String("C", ".", "directory inside the module to lint (module root is found via go.mod)")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, an := range analysis.All() {
			fmt.Printf("%-10s %s\n", an.Name, an.Doc)
		}
		return
	}

	root, err := analysis.FindModuleRoot(*chdir)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	var pkgs []*analysis.Package
	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fatal(err)
		}
	} else {
		for _, arg := range args {
			pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash(arg)))
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	loadErrs := 0
	total := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			fmt.Fprintf(os.Stderr, "itm-lint: load %s: %v\n", pkg.PkgPath, e)
			loadErrs++
		}
		for _, d := range analysis.Run(pkg, analysis.All()) {
			d.Pos.Filename = relPath(root, d.Pos.Filename)
			fmt.Println(d)
			total++
		}
	}
	switch {
	case loadErrs > 0:
		os.Exit(2)
	case total > 0:
		fmt.Fprintf(os.Stderr, "itm-lint: %d diagnostic(s)\n", total)
		os.Exit(1)
	}
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "itm-lint:", err)
	os.Exit(2)
}
