// Command itm-bench distills `go test -bench` output into a JSON file of
// deterministic performance counters. Wall-clock metrics (ns/op, MB/s)
// depend on the machine and are dropped; allocation counts, bytes per
// operation, iteration counts, and custom b.ReportMetric counters (e.g.
// encoded_bytes) are pure functions of the code and the fixed -benchtime,
// so CI can diff the file against the committed baseline.
//
// With -campaign it additionally runs a tiny seeded measurement campaign
// in-process against a fresh observability set and distills the stable
// (non-volatile) metric families — probe outcomes, shard counts, sections
// shared — into a "Campaign/obs" entry. Those counters are pure functions
// of (seed, campaign shape), so they diff cleanly across machines too.
//
// With -loadgen it also replays a seeded itm-loadgen mix in-process against
// a freshly built store and records the client-side deterministic ledger
// ("Loadgen/counters") plus the server-side response-cache families
// ("Loadgen/obs", the itm_cache_* counters). The replay's wall-clock ledger
// (QPS, p50/p99) lands under "Perf/loadgen" — machine-dependent by nature,
// excluded from CI's byte-identity diff (see the 0_header block).
//
// With -mesh it builds a mesh-enabled store (vantage fleet campaigns per
// epoch), replays the user↔user mesh mix against /v1/path + /v1/latency,
// and records the client ledger ("Mesh/counters") plus the stable mesh and
// cache families ("Mesh/obs").
//
// With -overload it drives the phased admission-control scenario
// (mapstore.OverloadScenario) against a fresh obs set and records the
// shed/admit ledger plus the itm_admission_* families ("Overload/obs").
// The phased orchestration makes the counts exact — admitted ==
// capacity + queue, shed == extra — independent of scheduling, so they
// diff cleanly.
//
// With -slo it builds a mesh-enabled store, replays the consumer mix, and
// records the SLO engine's burn-rate judgment ("SLO/obs"): per-objective
// status ordinals, max burn rates, and per-window SLI/bad/total — the
// regression trip-wire for "fast and reliable under load".
//
// Usage:
//
//	go test -bench ... -benchmem -benchtime 8x ./... | itm-bench -o BENCH_serve.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"

	"itmap/internal/experiments"
	"itmap/internal/loadgen"
	"itmap/internal/mapstore"
	"itmap/internal/obs"
	"itmap/internal/obs/history"
	"itmap/internal/obs/slo"
	"itmap/internal/world"
)

// benchHeader documents the file's determinism contract. The "0_" prefix
// makes it sort first under encoding/json's byte-wise key ordering, so the
// contract reads as a header comment.
var benchHeader = map[string]string{
	"_1": "Deterministic bench counters distilled by cmd/itm-bench. Every section except Perf/*",
	"_2": "is a pure function of (code, seeds, -benchtime): allocation counts, campaign/serving/SLO",
	"_3": "counters, client ledgers. CI regenerates the file and diffs it against this baseline.",
	"_4": "Perf/* sections are the machine-dependent wall-clock ledgers (QPS, p50/p99 latency) —",
	"_5": "recorded for trend-watching, explicitly excluded from the CI byte-identity diff.",
}

// swapFresh isolates one in-process scenario: a fresh observability set and
// a fresh telemetry history ring, restored on return, so sections never
// leak counters (or history samples) into each other.
func swapFresh() func() {
	prevObs := obs.Swap(obs.NewSet())
	prevRing := history.Swap(history.NewRing(0))
	return func() {
		obs.Swap(prevObs)
		history.Swap(prevRing)
	}
}

// gomaxprocsSuffix strips the trailing -N parallelism tag from a benchmark
// name: the same bench on a different machine keeps the same key.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// volatile units vary run-to-run or machine-to-machine and are excluded.
var volatile = map[string]bool{"ns/op": true, "MB/s": true}

// fuzzy units are deterministic to a fraction of a percent but jitter in
// the low digits (sync.Pool reuse, map growth thresholds, goroutine
// bookkeeping), so they are rounded to 2 significant digits; a real
// regression still moves them.
var fuzzy = map[string]bool{"B/op": true, "allocs/op": true}

func sigRound(v float64) float64 {
	if v == 0 {
		return 0
	}
	scale := math.Pow(10, math.Floor(math.Log10(math.Abs(v)))-1)
	return math.Round(v/scale) * scale
}

func parse(lines *bufio.Scanner) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	for lines.Scan() {
		fields := strings.Fields(lines.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		ops, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue // e.g. a verbose-mode "BenchmarkX" progress line
		}
		m := map[string]float64{"ops": ops}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			unit := fields[i+1]
			if volatile[unit] {
				continue
			}
			if fuzzy[unit] {
				v = sigRound(v)
			}
			m[unit] = v
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate benchmark %s", name)
		}
		out[name] = m
	}
	return out, lines.Err()
}

// campaignCounters runs a 2-epoch tiny-world campaign against a fresh
// observability set and returns every stable metric series as one flat
// counter map. Swapping the set in (and back out) keeps the numbers
// independent of whatever else the process has already counted.
func campaignCounters(seed int64) (map[string]float64, error) {
	defer swapFresh()()
	if _, err := experiments.BuildEpochStore(world.Build(world.Tiny(seed)), 2, 0); err != nil {
		return nil, err
	}
	vals := map[string]float64{}
	obs.Metrics().Visit(func(name string, labels []obs.Label, value float64) {
		key := name
		for _, l := range labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		vals[key] = value
	})
	return vals, nil
}

// loadgenCounters replays a seeded query mix in-process against a fresh
// tiny-world store and returns the client-side deterministic ledger plus
// the server-side itm_cache_* families. Both are pure functions of (world
// seed, plan seed, request count): key-affinity sharding keeps them
// worker-count-invariant.
func loadgenCounters(seed int64) (client, server map[string]float64, perf loadgen.Perf, err error) {
	defer swapFresh()()
	st, err := experiments.BuildEpochStore(world.Build(world.Tiny(seed)), 3, 0)
	if err != nil {
		return nil, nil, perf, err
	}
	res, err := loadgen.Run(loadgen.Config{Seed: seed, Requests: 2000, Workers: 4},
		loadgen.HandlerDoer{Handler: mapstore.NewHandler(st)})
	if err != nil {
		return nil, nil, perf, err
	}
	server = map[string]float64{}
	obs.Metrics().Visit(func(name string, labels []obs.Label, value float64) {
		if !strings.HasPrefix(name, "itm_cache_") {
			return
		}
		key := name
		for _, l := range labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		server[key] = value
	})
	return res.Counters.Flat(), server, res.Perf, nil
}

// meshCounters builds a mesh-enabled store in-process, replays the mesh
// request mix against it, and returns the client ledger plus the stable
// mesh-relevant obs families (itm_mesh_* from the vantage campaign,
// itm_mapstore_mesh_* from ingestion, itm_cache_* from serving). All pure
// functions of (world seed, plan seed), worker-count-invariant.
func meshCounters(seed int64) (client, server map[string]float64, err error) {
	defer swapFresh()()
	st := mapstore.NewStore()
	if err := experiments.BuildEpochStoreMeshInto(st, world.Build(world.Tiny(seed)), 2, 0,
		experiments.MeshSpec{Agents: 48, Rounds: 2}); err != nil {
		return nil, nil, err
	}
	res, err := loadgen.Run(loadgen.Config{Seed: seed, Requests: 1000, Workers: 4, Mix: "mesh"},
		loadgen.HandlerDoer{Handler: mapstore.NewHandler(st)})
	if err != nil {
		return nil, nil, err
	}
	server = map[string]float64{}
	obs.Metrics().Visit(func(name string, labels []obs.Label, value float64) {
		if !strings.HasPrefix(name, "itm_mesh_") &&
			!strings.HasPrefix(name, "itm_mapstore_mesh_") &&
			!strings.HasPrefix(name, "itm_cache_") {
			return
		}
		key := name
		for _, l := range labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		server[key] = value
	})
	return res.Counters.Flat(), server, nil
}

// overloadCounters runs the deterministic overload scenario against a
// fresh obs set: a gated handler holds `capacity` slots and a full queue
// while `extra` arrivals shed, so every number below is exact.
func overloadCounters() map[string]float64 {
	defer swapFresh()()
	res := mapstore.OverloadScenario(4, 8, 16)
	vals := map[string]float64{
		"issued":   float64(res.Issued),
		"admitted": float64(res.Admitted),
		"shed":     float64(res.Shed),
	}
	obs.Metrics().Visit(func(name string, labels []obs.Label, value float64) {
		if !strings.HasPrefix(name, "itm_admission_") {
			return
		}
		key := name
		for _, l := range labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		vals[key] = value
	})
	return vals
}

// sloStatusCode encodes an objective status as a small ordinal so the SLO
// section diffs numerically: 0 met, 1 no_data, 2 at_risk, 3 violated.
func sloStatusCode(status string) float64 {
	switch status {
	case slo.StatusMet:
		return 0
	case slo.StatusNoData:
		return 1
	case slo.StatusAtRisk:
		return 2
	case slo.StatusViolated:
		return 3
	}
	return -1
}

// sloCounters builds a mesh-enabled store, replays the consumer mix, and
// distills the SLO engine's burn-rate judgment into flat counters. Every
// input is a deterministic counter and windows are history samples, so the
// section is a pure function of (world seed, plan seed).
func sloCounters(seed int64) (map[string]float64, error) {
	defer swapFresh()()
	st := mapstore.NewStore()
	if err := experiments.BuildEpochStoreMeshInto(st, world.Build(world.Tiny(seed)), 3, 0,
		experiments.MeshSpec{Agents: 48, Rounds: 2}); err != nil {
		return nil, err
	}
	if _, err := loadgen.Run(loadgen.Config{Seed: seed, Requests: 1500, Workers: 4},
		loadgen.HandlerDoer{Handler: mapstore.NewHandler(st)}); err != nil {
		return nil, err
	}
	rep := (&slo.Engine{Objectives: slo.ServingObjectives()}).Evaluate()
	vals := map[string]float64{
		"generation": float64(rep.Generation),
		"all_met":    0,
	}
	if rep.AllMet {
		vals["all_met"] = 1
	}
	for _, o := range rep.Objectives {
		p := "objective{name=" + o.Name + "}"
		vals[p+" status"] = sloStatusCode(o.Status)
		vals[p+" max_burn_rate"] = o.MaxBurnRate
		for i, w := range o.Windows {
			wp := fmt.Sprintf("%s window{idx=%d,samples=%d}", p, i, w.Samples)
			vals[wp+" sli"] = w.SLI
			vals[wp+" bad"] = w.Bad
			vals[wp+" total"] = w.Total
		}
	}
	return vals, nil
}

func main() {
	outPath := flag.String("o", "BENCH_serve.json", "output file")
	campaign := flag.Bool("campaign", false, "also run a tiny seeded campaign and record its stable obs counters")
	campaignSeed := flag.Int64("campaign-seed", 42, "seed for the -campaign run")
	loadgenRun := flag.Bool("loadgen", false, "also replay a seeded itm-loadgen mix and record its deterministic counters")
	loadgenSeed := flag.Int64("loadgen-seed", 7, "seed for the -loadgen replay (world and plan)")
	overloadRun := flag.Bool("overload", false, "also run the deterministic admission-control overload scenario")
	meshRun := flag.Bool("mesh", false, "also build a mesh-enabled store, replay the mesh mix, and record its deterministic counters")
	meshSeed := flag.Int64("mesh-seed", 9, "seed for the -mesh run (world and plan)")
	sloRun := flag.Bool("slo", false, "also evaluate the serving SLOs over a seeded campaign and record the burn-rate judgment")
	sloSeed := flag.Int64("slo-seed", 11, "seed for the -slo run (world and plan)")
	flag.Parse()

	parsed, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "itm-bench:", err)
		os.Exit(1)
	}
	results := map[string]any{}
	for k, v := range parsed {
		results[k] = v
	}
	if *campaign {
		vals, err := campaignCounters(*campaignSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itm-bench:", err)
			os.Exit(1)
		}
		results["Campaign/obs"] = vals
	}
	if *loadgenRun {
		client, server, perf, err := loadgenCounters(*loadgenSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itm-bench:", err)
			os.Exit(1)
		}
		results["Loadgen/counters"] = client
		results["Loadgen/obs"] = server
		// Wall-clock ledger: machine-dependent, excluded from the CI diff.
		results["Perf/loadgen"] = map[string]float64{
			"seconds": perf.Seconds,
			"qps":     perf.QPS,
			"p50_ms":  perf.P50ms,
			"p99_ms":  perf.P99ms,
		}
	}
	if *overloadRun {
		results["Overload/obs"] = overloadCounters()
	}
	if *meshRun {
		client, server, err := meshCounters(*meshSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itm-bench:", err)
			os.Exit(1)
		}
		results["Mesh/counters"] = client
		results["Mesh/obs"] = server
	}
	if *sloRun {
		vals, err := sloCounters(*sloSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itm-bench:", err)
			os.Exit(1)
		}
		results["SLO/obs"] = vals
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "itm-bench: no benchmark lines on stdin")
		os.Exit(1)
	}
	results["0_header"] = benchHeader
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "itm-bench:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "itm-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "itm-bench: wrote %d benchmarks to %s\n", len(results), *outPath)
}
