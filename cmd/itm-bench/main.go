// Command itm-bench distills `go test -bench` output into a JSON file of
// deterministic performance counters. Wall-clock metrics (ns/op, MB/s)
// depend on the machine and are dropped; allocation counts, bytes per
// operation, iteration counts, and custom b.ReportMetric counters (e.g.
// encoded_bytes) are pure functions of the code and the fixed -benchtime,
// so CI can diff the file against the committed baseline.
//
// With -campaign it additionally runs a tiny seeded measurement campaign
// in-process against a fresh observability set and distills the stable
// (non-volatile) metric families — probe outcomes, shard counts, sections
// shared — into a "Campaign/obs" entry. Those counters are pure functions
// of (seed, campaign shape), so they diff cleanly across machines too.
//
// With -loadgen it also replays a seeded itm-loadgen mix in-process against
// a freshly built store and records the client-side deterministic ledger
// ("Loadgen/counters") plus the server-side response-cache families
// ("Loadgen/obs", the itm_cache_* counters). Wall-clock QPS/latency never
// enter the file.
//
// With -mesh it builds a mesh-enabled store (vantage fleet campaigns per
// epoch), replays the user↔user mesh mix against /v1/path + /v1/latency,
// and records the client ledger ("Mesh/counters") plus the stable mesh and
// cache families ("Mesh/obs").
//
// With -overload it drives the phased admission-control scenario
// (mapstore.OverloadScenario) against a fresh obs set and records the
// shed/admit ledger plus the itm_admission_* families ("Overload/obs").
// The phased orchestration makes the counts exact — admitted ==
// capacity + queue, shed == extra — independent of scheduling, so they
// diff cleanly.
//
// Usage:
//
//	go test -bench ... -benchmem -benchtime 8x ./... | itm-bench -o BENCH_serve.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"

	"itmap/internal/experiments"
	"itmap/internal/loadgen"
	"itmap/internal/mapstore"
	"itmap/internal/obs"
	"itmap/internal/world"
)

// gomaxprocsSuffix strips the trailing -N parallelism tag from a benchmark
// name: the same bench on a different machine keeps the same key.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// volatile units vary run-to-run or machine-to-machine and are excluded.
var volatile = map[string]bool{"ns/op": true, "MB/s": true}

// fuzzy units are deterministic to a fraction of a percent but jitter in
// the low digits (sync.Pool reuse, map growth thresholds, goroutine
// bookkeeping), so they are rounded to 2 significant digits; a real
// regression still moves them.
var fuzzy = map[string]bool{"B/op": true, "allocs/op": true}

func sigRound(v float64) float64 {
	if v == 0 {
		return 0
	}
	scale := math.Pow(10, math.Floor(math.Log10(math.Abs(v)))-1)
	return math.Round(v/scale) * scale
}

func parse(lines *bufio.Scanner) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	for lines.Scan() {
		fields := strings.Fields(lines.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		ops, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue // e.g. a verbose-mode "BenchmarkX" progress line
		}
		m := map[string]float64{"ops": ops}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			unit := fields[i+1]
			if volatile[unit] {
				continue
			}
			if fuzzy[unit] {
				v = sigRound(v)
			}
			m[unit] = v
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate benchmark %s", name)
		}
		out[name] = m
	}
	return out, lines.Err()
}

// campaignCounters runs a 2-epoch tiny-world campaign against a fresh
// observability set and returns every stable metric series as one flat
// counter map. Swapping the set in (and back out) keeps the numbers
// independent of whatever else the process has already counted.
func campaignCounters(seed int64) (map[string]float64, error) {
	prev := obs.Swap(obs.NewSet())
	defer obs.Swap(prev)
	if _, err := experiments.BuildEpochStore(world.Build(world.Tiny(seed)), 2, 0); err != nil {
		return nil, err
	}
	vals := map[string]float64{}
	obs.Metrics().Visit(func(name string, labels []obs.Label, value float64) {
		key := name
		for _, l := range labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		vals[key] = value
	})
	return vals, nil
}

// loadgenCounters replays a seeded query mix in-process against a fresh
// tiny-world store and returns the client-side deterministic ledger plus
// the server-side itm_cache_* families. Both are pure functions of (world
// seed, plan seed, request count): key-affinity sharding keeps them
// worker-count-invariant.
func loadgenCounters(seed int64) (client, server map[string]float64, err error) {
	prev := obs.Swap(obs.NewSet())
	defer obs.Swap(prev)
	st, err := experiments.BuildEpochStore(world.Build(world.Tiny(seed)), 3, 0)
	if err != nil {
		return nil, nil, err
	}
	res, err := loadgen.Run(loadgen.Config{Seed: seed, Requests: 2000, Workers: 4},
		loadgen.HandlerDoer{Handler: mapstore.NewHandler(st)})
	if err != nil {
		return nil, nil, err
	}
	server = map[string]float64{}
	obs.Metrics().Visit(func(name string, labels []obs.Label, value float64) {
		if !strings.HasPrefix(name, "itm_cache_") {
			return
		}
		key := name
		for _, l := range labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		server[key] = value
	})
	return res.Counters.Flat(), server, nil
}

// meshCounters builds a mesh-enabled store in-process, replays the mesh
// request mix against it, and returns the client ledger plus the stable
// mesh-relevant obs families (itm_mesh_* from the vantage campaign,
// itm_mapstore_mesh_* from ingestion, itm_cache_* from serving). All pure
// functions of (world seed, plan seed), worker-count-invariant.
func meshCounters(seed int64) (client, server map[string]float64, err error) {
	prev := obs.Swap(obs.NewSet())
	defer obs.Swap(prev)
	st := mapstore.NewStore()
	if err := experiments.BuildEpochStoreMeshInto(st, world.Build(world.Tiny(seed)), 2, 0,
		experiments.MeshSpec{Agents: 48, Rounds: 2}); err != nil {
		return nil, nil, err
	}
	res, err := loadgen.Run(loadgen.Config{Seed: seed, Requests: 1000, Workers: 4, Mix: "mesh"},
		loadgen.HandlerDoer{Handler: mapstore.NewHandler(st)})
	if err != nil {
		return nil, nil, err
	}
	server = map[string]float64{}
	obs.Metrics().Visit(func(name string, labels []obs.Label, value float64) {
		if !strings.HasPrefix(name, "itm_mesh_") &&
			!strings.HasPrefix(name, "itm_mapstore_mesh_") &&
			!strings.HasPrefix(name, "itm_cache_") {
			return
		}
		key := name
		for _, l := range labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		server[key] = value
	})
	return res.Counters.Flat(), server, nil
}

// overloadCounters runs the deterministic overload scenario against a
// fresh obs set: a gated handler holds `capacity` slots and a full queue
// while `extra` arrivals shed, so every number below is exact.
func overloadCounters() map[string]float64 {
	prev := obs.Swap(obs.NewSet())
	defer obs.Swap(prev)
	res := mapstore.OverloadScenario(4, 8, 16)
	vals := map[string]float64{
		"issued":   float64(res.Issued),
		"admitted": float64(res.Admitted),
		"shed":     float64(res.Shed),
	}
	obs.Metrics().Visit(func(name string, labels []obs.Label, value float64) {
		if !strings.HasPrefix(name, "itm_admission_") {
			return
		}
		key := name
		for _, l := range labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		vals[key] = value
	})
	return vals
}

func main() {
	outPath := flag.String("o", "BENCH_serve.json", "output file")
	campaign := flag.Bool("campaign", false, "also run a tiny seeded campaign and record its stable obs counters")
	campaignSeed := flag.Int64("campaign-seed", 42, "seed for the -campaign run")
	loadgenRun := flag.Bool("loadgen", false, "also replay a seeded itm-loadgen mix and record its deterministic counters")
	loadgenSeed := flag.Int64("loadgen-seed", 7, "seed for the -loadgen replay (world and plan)")
	overloadRun := flag.Bool("overload", false, "also run the deterministic admission-control overload scenario")
	meshRun := flag.Bool("mesh", false, "also build a mesh-enabled store, replay the mesh mix, and record its deterministic counters")
	meshSeed := flag.Int64("mesh-seed", 9, "seed for the -mesh run (world and plan)")
	flag.Parse()

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "itm-bench:", err)
		os.Exit(1)
	}
	if *campaign {
		vals, err := campaignCounters(*campaignSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itm-bench:", err)
			os.Exit(1)
		}
		results["Campaign/obs"] = vals
	}
	if *loadgenRun {
		client, server, err := loadgenCounters(*loadgenSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itm-bench:", err)
			os.Exit(1)
		}
		results["Loadgen/counters"] = client
		results["Loadgen/obs"] = server
	}
	if *overloadRun {
		results["Overload/obs"] = overloadCounters()
	}
	if *meshRun {
		client, server, err := meshCounters(*meshSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itm-bench:", err)
			os.Exit(1)
		}
		results["Mesh/counters"] = client
		results["Mesh/obs"] = server
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "itm-bench: no benchmark lines on stdin")
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "itm-bench:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "itm-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "itm-bench: wrote %d benchmarks to %s\n", len(results), *outPath)
}
