// Command itm-experiments regenerates every table and figure of the paper:
// Table 1, Figures 1a/1b/2, and the in-text quantitative claims E1-E9
// (see DESIGN.md for the index). For each artifact it prints the paper's
// reported value next to the value measured on the simulated Internet and
// whether the qualitative shape holds.
//
// Usage:
//
//	itm-experiments [-scale tiny|small|default] [-seed N] [-markdown] [-only ID]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"itmap"
	"itmap/internal/obs"
)

func main() {
	scale := flag.String("scale", "default", "world scale: tiny, small, or default")
	seed := flag.Int64("seed", 42, "world seed")
	markdown := flag.Bool("markdown", false, "emit Markdown (EXPERIMENTS.md body)")
	only := flag.String("only", "", "run only these comma-separated experiment IDs (e.g. F2,E5)")
	csvDir := flag.String("csv", "", "also write each figure's series as CSV files into this directory")
	metricsOut := flag.String("metrics-out", "", "write the stable metrics dump to this file on exit")
	traceOut := flag.String("trace-out", "", "write the span-trace export to this file on exit")
	flag.Parse()

	var cfg itm.Config
	switch *scale {
	case "tiny":
		cfg = itm.TinyConfig(*seed)
	case "small":
		cfg = itm.SmallConfig(*seed)
	case "default":
		cfg = itm.DefaultConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	inet := itm.NewInternet(cfg)
	results := itm.RunAllExperiments(inet)
	if *only != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
		var filtered []*itm.Result
		for _, r := range results {
			if want[r.ID] {
				filtered = append(filtered, r)
			}
		}
		results = filtered
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "itm-experiments:", err)
			os.Exit(1)
		}
		files, err := itm.WriteSeriesCSV(results, *csvDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itm-experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d CSV files to %s\n", len(files), *csvDir)
	}
	if *metricsOut != "" {
		if err := obs.WriteMetricsFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "itm-experiments:", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "itm-experiments:", err)
			os.Exit(1)
		}
	}
	if *markdown {
		fmt.Print(itm.MarkdownResults(results))
	} else {
		fmt.Print(itm.FormatResults(results))
	}
	for _, r := range results {
		if !r.Pass() {
			os.Exit(1)
		}
	}
}
