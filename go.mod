module itmap

go 1.22
