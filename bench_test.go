package itm

// Benchmark harness: one benchmark per paper artifact (Table 1, Figures
// 1a/1b/2, claims E1-E9 — see DESIGN.md's per-experiment index), plus
// substrate micro-benchmarks and the ablations DESIGN.md calls out.
// Campaign artifacts are cached in a shared session, so the per-artifact
// benchmarks measure the analysis cost; the campaign benchmarks measure the
// measurement sweeps themselves.

import (
	"sync"
	"testing"

	"itmap/internal/bgp"
	"itmap/internal/measure/cacheprobe"
	"itmap/internal/measure/catchment"
	"itmap/internal/services"
	"itmap/internal/simtime"
	"itmap/internal/stats"
	"itmap/internal/topology"
	"itmap/internal/world"
)

var (
	benchOnce    sync.Once
	benchSession *Session
)

func sharedSession(b *testing.B) *Session {
	b.Helper()
	benchOnce.Do(func() {
		s := NewSession(NewInternet(SmallConfig(42)))
		// Pre-run the campaigns so per-artifact benches measure
		// analysis, not the (separately benchmarked) sweeps.
		s.Discovery()
		s.HitRates()
		s.Crawl()
		s.Scan()
		s.ObservedLinks()
		s.Map()
		s.Matrix()
		benchSession = s
	})
	return benchSession
}

func requirePass(b *testing.B, r *Result) {
	b.Helper()
	if !r.Pass() {
		b.Fatalf("%s failed during benchmark:\n%s", r.ID, FormatResults([]*Result{r}))
	}
}

// --- One benchmark per paper artifact --------------------------------------

func BenchmarkTable1Components(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunTable1())
	}
}

func BenchmarkFigure1aCacheProbePoPs(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunFigure1a())
	}
}

func BenchmarkFigure1bCountryCoverage(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunFigure1b())
	}
}

func BenchmarkFigure2HitRateVsSubscribers(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunFigure2())
	}
}

func BenchmarkE1TrafficConcentration(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE1())
	}
}

func BenchmarkE2WeightedPathLengths(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE2())
	}
}

func BenchmarkE3AnycastOptimality(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE3())
	}
}

func BenchmarkE4PathPrediction(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE4())
	}
}

func BenchmarkE5ClientDiscoveryRecall(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE5())
	}
}

func BenchmarkE6IPIDVelocity(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE6())
	}
}

func BenchmarkE7ECSAdoption(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE7())
	}
}

func BenchmarkE8PeeringRecommendation(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE8())
	}
}

func BenchmarkE9PublicDNSShare(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE9())
	}
}

func BenchmarkE10ResolverAssociation(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE10())
	}
}

func BenchmarkE11TrafficEstimationBaseline(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE11())
	}
}

func BenchmarkE12CacheEfficacy(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE12())
	}
}

func BenchmarkE13HourlyActivity(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE13())
	}
}

func BenchmarkE14ServerGeolocation(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE14())
	}
}

func BenchmarkE15MatrixCompletion(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE15())
	}
}

func BenchmarkE16DailyStability(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE16())
	}
}

func BenchmarkE17OutageReroutes(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE17())
	}
}

func BenchmarkE18OffNetGrowth(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE18())
	}
}

func BenchmarkE19TopLists(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE19())
	}
}

func BenchmarkE20VolumeCalibration(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE20())
	}
}

func BenchmarkE21AdoptionDebias(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE21())
	}
}

func BenchmarkE22CustomURLOptimality(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE22())
	}
}

func BenchmarkE23BotFiltering(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE23())
	}
}

func BenchmarkE24FaultResilience(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE24())
	}
}

func BenchmarkE25EpochStore(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE25())
	}
}

func BenchmarkE26MeshCoverage(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requirePass(b, s.RunE26())
	}
}

// --- Campaign and substrate benchmarks -------------------------------------

func BenchmarkWorldBuildSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		world.Build(world.Small(int64(i)))
	}
}

func BenchmarkGroundTruthMatrix(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.W.Traffic.BuildMatrix()
	}
}

// BenchmarkBuildMatrix measures the parallel shard-and-merge ground-truth
// build at SmallConfig; BenchmarkBuildMatrixSerial pins one worker so the
// parallel speedup and the per-op allocation budget are both visible in
// one -bench run.
func BenchmarkBuildMatrix(b *testing.B) {
	s := sharedSession(b)
	s.W.Traffic.BuildMatrix() // warm the assignment memo once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.W.Traffic.BuildMatrix()
	}
}

func BenchmarkBuildMatrixSerial(b *testing.B) {
	s := sharedSession(b)
	s.W.Traffic.BuildMatrix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.W.Traffic.BuildMatrixWorkers(1)
	}
}

// BenchmarkComputeAll measures the full-origin BGP sweep (atomic-counter
// worker pool + pooled dense scratch) on the SmallConfig topology.
func BenchmarkComputeAll(b *testing.B) {
	s := sharedSession(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bgp.ComputeAll(s.W.Top)
	}
}

func BenchmarkCacheProbeDiscovery(b *testing.B) {
	s := sharedSession(b)
	pb := &cacheprobe.Prober{PR: s.W.PR, Domains: s.W.Cat.ECSDomains()[:8]}
	prefixes := s.W.Top.AllPrefixes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pb.DiscoverPrefixes(s.W.Top, prefixes, 0, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHitRateCampaign(b *testing.B) {
	s := sharedSession(b)
	pb := &cacheprobe.Prober{PR: s.W.PR}
	domains := s.W.Cat.ECSDomains()
	prefixes := s.W.Top.AllPrefixes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pb.MeasureHitRates(s.W.Top, prefixes, domains[len(domains)/2], 0, 15*simtime.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBGPAllPaths(b *testing.B) {
	top := topology.Generate(topology.TinyGenConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bgp.ComputeAll(top)
	}
}

func BenchmarkBuildTrafficMap(b *testing.B) {
	s := sharedSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-assembles the map from cached campaign outputs.
		fresh := NewSession(s.W)
		fresh.Map()
	}
}

// --- Ablations (design decisions DESIGN.md stars) ---------------------------

// BenchmarkAblationNoOffNets disables off-net caches: the 2%-vs-73%
// weighting contrast (E2) must collapse, demonstrating that the contrast is
// carried by in-network serving, not an artifact of the harness.
func BenchmarkAblationNoOffNets(b *testing.B) {
	cfg := SmallConfig(42)
	cfg.Services.OffNetProb = 0
	inet := NewInternet(cfg)
	mx := inet.Traffic.BuildMatrix()
	topOwner := mx.TopOwners()[0].ASN
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var weighted stats.WeightedCDF
		var zeroHop float64
		for _, f := range mx.Flows {
			svc := inet.Cat.Services[f.Svc]
			if svc.Owner != topOwner || f.Hops < 0 {
				continue
			}
			weighted.Add(float64(f.Hops), f.Bytes/svc.BytesPerQuery)
			if f.Hops == 0 {
				zeroHop += f.Bytes
			}
		}
		if zeroHop > 0 {
			b.Fatal("off-nets disabled but zero-hop traffic remains")
		}
		if weighted.FracAtMost(0) > 0.01 {
			b.Fatalf("ablation failed: %.2f of traffic still served in-network", weighted.FracAtMost(0))
		}
	}
}

// BenchmarkAblationNoGiantPNIs removes hypergiant-eyeball private peering:
// collectors then see a larger share of the (remaining) giant links, and
// weighted path lengths stretch — the flattening is what hides the map.
func BenchmarkAblationNoGiantPNIs(b *testing.B) {
	cfg := SmallConfig(43)
	cfg.Topology.HypergiantEyeballPeering = 0
	inet := NewInternet(cfg)
	mx := inet.Traffic.BuildMatrix()
	topOwner := mx.TopOwners()[0].ASN
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var weighted stats.WeightedCDF
		for _, f := range mx.Flows {
			svc := inet.Cat.Services[f.Svc]
			if svc.Owner != topOwner || f.Hops < 0 {
				continue
			}
			weighted.Add(float64(f.Hops), f.Bytes/svc.BytesPerQuery)
		}
		oneHop := weighted.FracAtMost(1) - weighted.FracAtMost(0)
		if oneHop > 0.35 {
			b.Fatalf("ablation failed: %.2f of non-off-net traffic still one hop", oneHop)
		}
	}
}

// BenchmarkAblationAnycastEverywhere announces anycast from every on-net
// site instead of the hub sites: catchments become near-perfectly optimal,
// washing out the E3 route-vs-user gap.
func BenchmarkAblationAnycastEverywhere(b *testing.B) {
	inet := NewInternet(SmallConfig(44))
	var owner ASN
	for _, s := range inet.Cat.Services {
		if s.Kind == services.Anycast {
			owner = s.Owner
			break
		}
	}
	if owner == 0 {
		b.Skip("no anycast service")
	}
	d := inet.Cat.Deployments[owner]
	d.AnycastSites = d.OnNetSites() // the ablation
	clients := inet.Top.ASesOfType(topology.Eyeball)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := catchment.Measure(inet.Cat, inet.Paths, owner, clients)
		an := catchment.Analyze(m, inet.Cat, inet.Top, inet.Users)
		if an.UserOptimalFrac < 0.9 {
			b.Fatalf("dense anycast should be near-optimal, got %.2f", an.UserOptimalFrac)
		}
	}
}
