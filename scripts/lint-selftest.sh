#!/bin/sh
# lint-selftest proves the itm-lint suite actually fires: a green lint run
# means nothing if the analyzers silently stopped matching. The script
# builds a throwaway module with exactly one planted violation per
# analyzer (all nine), runs itm-lint over it, and asserts the exit code
# is 1 and every expected diagnostic is present — so a regression in any
# analyzer (or in the loader's foreign-module handling) turns CI red.
set -u

GO="${GO:-go}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

mkdir -p "$TMP/internal/randx" "$TMP/internal/measure/checks" "$TMP/internal/mapstore/wal"

cat > "$TMP/go.mod" <<'EOF'
module lintcheck

go 1.22
EOF

# Stand-in for the repo's seeded substrate: seedflow keys on the
# "internal/randx" package-path suffix and the New name, so the planted
# module needs its own copy — no import of the real repo.
cat > "$TMP/internal/randx/randx.go" <<'EOF'
// Package randx is a minimal seeded source for the lint selftest.
package randx

type Source struct{ state uint64 }

func New(seed int64) *Source {
	return &Source{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (s *Source) Next() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

func (s *Source) Fork() *Source { return New(int64(s.Next())) }
EOF

# The package path lands inside internal/measure so errdrop patrols it;
# everything else here is path-independent.
cat > "$TMP/internal/measure/checks/checks.go" <<'EOF'
// Package checks plants one violation per portable analyzer.
package checks

import (
	"sync"
	"sync/atomic"
	"time"

	"lintcheck/internal/randx"
)

// nodeterm: wall-clock read.
func Stamp() int64 { return time.Now().Unix() }

// maporder: map-iteration order leaks into a slice, never sorted.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// floatfold: order-dependent float accumulation over a map.
func Total(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}

func touch() error { return nil }

// errdrop: bare call statement discards the error.
func Touch() { touch() }

// seedflow: a fresh source per iteration instead of forking a parent.
func Jitter(n int) uint64 {
	var acc uint64
	for i := 0; i < n; i++ {
		acc ^= randx.New(int64(i)).Next()
	}
	return acc
}

// lockguard: guarded field written without the mutex.
type counter struct {
	mu sync.Mutex
	//itm:guardedby mu
	n int
}

func Bump(c *counter) { c.n++ }

// pubfreeze: mutation after the pointer was published.
type snap struct{ total int }

func Publish(p *atomic.Pointer[snap]) {
	s := &snap{}
	p.Store(s)
	s.total = 1
}

// oncefill: the write-once field is rewritten outside the Do closure.
type entry struct {
	once sync.Once
	body []byte
}

func Fill(e *entry, b []byte) {
	e.once.Do(func() { e.body = b })
}

func Clobber(e *entry) { e.body = nil }
EOF

# syncack patrols internal/mapstore/wal: a journal write acked with a nil
# error and no intervening Sync.
cat > "$TMP/internal/mapstore/wal/wal.go" <<'EOF'
// Package wal plants the unsynced-ack violation.
package wal

type file struct{ n int }

func (f *file) Write(p []byte) (int, error) { f.n += len(p); return len(p), nil }
func (f *file) Sync() error                 { return nil }

func Append(f *file, rec []byte) error {
	if _, err := f.Write(rec); err != nil {
		return err
	}
	return nil
}
EOF

cd "$REPO_ROOT"
out="$($GO run ./cmd/itm-lint -C "$TMP" 2>&1)"
status=$?

fail() {
	echo "lint-selftest: $1" >&2
	echo "--- itm-lint output ---" >&2
	echo "$out" >&2
	exit 1
}

[ "$status" -eq 1 ] || fail "expected exit 1 on the planted module, got $status"

expect() {
	echo "$out" | grep -q "$1" || fail "missing expected diagnostic: $1"
}

expect 'checks.go:.*: nodeterm: time.Now reads the wall clock'
expect 'checks.go:.*: maporder: append to out inside map iteration without a later sort'
expect 'checks.go:.*: floatfold: float fold += inside map iteration is order-dependent'
expect 'checks.go:.*: errdrop: error result of touch discarded'
expect 'checks.go:.*: seedflow: randx.New inside a loop re-seeds per iteration'
expect 'checks.go:.*: lockguard: c.n is written without holding c.mu'
expect 'checks.go:.*: pubfreeze: s was published via atomic.Pointer and is frozen'
expect 'checks.go:.*: oncefill: body is filled inside sync.Once.Do'
expect 'wal.go:.*: syncack: nil-error return reachable from the journal write'

# Exactly the nine planted findings — an unexpected tenth means an
# analyzer started over-matching.
expect 'itm-lint: 9 diagnostic(s)'

echo "lint-selftest: all nine analyzers fired as expected"
