// Community cache study: the §3.2.3 proposal that research networks host
// caches "to measure the cache hit rate under normal operation and during
// flash events". The example sweeps cache capacity against the catalog,
// validates the LRU simulator against the Che approximation, and shows what
// a flash crowd does to hit rates.
package main

import (
	"fmt"

	"itmap/internal/cachesim"
	"itmap/internal/randx"
)

func main() {
	const catalog = 50000
	rng := randx.New(42)
	base := cachesim.NewZipfWorkload(catalog, 0.9)

	fmt.Println("edge cache hit rate vs capacity (Zipf 0.9 over 50k objects):")
	fmt.Printf("%-12s %10s %10s\n", "CAPACITY", "SIMULATED", "CHE")
	for _, capacity := range []int{100, 500, 2500, 10000, 50000} {
		sim := cachesim.MeasureHitRate(cachesim.NewLRU(capacity), base, rng, 100000, 400000)
		che := cachesim.CheHitRate(capacity, base.Weights())
		fmt.Printf("%-12d %9.1f%% %9.1f%%\n", capacity, sim*100, che*100)
	}

	fmt.Println("\nflash event (share of requests going to one live object):")
	fmt.Printf("%-12s %10s\n", "HOT SHARE", "HIT RATE")
	for _, share := range []float64{0, 0.2, 0.5, 0.8} {
		var w cachesim.Workload = base
		if share > 0 {
			w = &cachesim.FlashWorkload{Base: base, HotKey: catalog + 1, HotShare: share}
		}
		hr := cachesim.MeasureHitRate(cachesim.NewLRU(2500), w, rng, 100000, 400000)
		fmt.Printf("%-12.0f%% %9.1f%%\n", share*100, hr*100)
	}
	fmt.Println("\nflash crowds cache beautifully: one hot object turns an edge cache")
	fmt.Println("into a near-perfect shield, which is why off-nets absorb live events.")
}
