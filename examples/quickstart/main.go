// Quickstart: build a simulated Internet, construct a traffic map from
// public measurements only, and check the map against ground truth.
package main

import (
	"fmt"

	"itmap"
)

func main() {
	// A small world builds in about a second; use itm.DefaultConfig for
	// the full-scale one.
	inet := itm.NewInternet(itm.SmallConfig(7))
	fmt.Printf("simulated Internet: %d ASes, %d /24s, %.0fM users\n",
		inet.Top.NumASes(), len(inet.Top.PrefixOwner), inet.Users.TotalUsers()/1e6)

	// Build the map. Under the hood this runs the paper's techniques:
	// ECS cache probing against the public resolver, root-DNS-log
	// crawling, Internet-wide TLS scans, ECS user→host mapping, and a
	// route-collector topology.
	tmap := itm.BuildMap(inet)
	fmt.Printf("traffic map: %d active /24s, %d ASes with activity estimates\n",
		len(tmap.Users.ActivePrefixes), len(tmap.Users.ASActivity))

	// The simulator knows the truth, so the map can be scored — the
	// validation Microsoft's CDN logs provide in the paper.
	v := itm.ValidateMap(inet, tmap)
	fmt.Printf("validation: %.1f%% of reference-CDN traffic in discovered prefixes (paper: 95%%)\n",
		v.PrefixTrafficRecall*100)
	fmt.Printf("            %.1f%% in ASes found by either technique (paper: 99%%)\n",
		v.ASTrafficRecallCombined*100)
	fmt.Printf("            activity-vs-truth rank correlation %.2f\n", v.ActivityRankCorr)

	// Weighted statistics are the point of the map: here, the share of
	// estimated activity by country.
	for _, code := range []string{"US", "IN", "FR"} {
		ci := tmap.CountryImpactOf(code)
		fmt.Printf("country %s: %.1f%% of estimated activity across %d active ASes\n",
			code, ci.ActivityShare*100, ci.ActiveASes)
	}
}
