// Peering discovery: the §3.3 pipeline. Route collectors see almost none of
// the hypergiants' peering links; cloud-VM traceroute campaigns recover the
// cloud side; a recommendation system over public peering profiles predicts
// the rest. Each stage is scored against the (normally unknowable) truth.
package main

import (
	"fmt"

	"itmap"
	"itmap/internal/bgp"
	"itmap/internal/measure/tracer"
	"itmap/internal/peering"
	"itmap/internal/topology"
)

func main() {
	inet := itm.NewInternet(itm.SmallConfig(13))
	session := itm.NewSession(inet)

	// Stage 1: what the public view (route collectors) sees.
	obs := session.ObservedLinks()
	vis := bgp.MeasureVisibility(inet.Top, obs)
	fmt.Printf("route collectors: %d/%d links visible (%.0f%%); giant peerings %.1f%% visible\n",
		vis.VisibleLinks, vis.TotalLinks, vis.FracVisible()*100,
		vis.FracGiantPeeringsVisible()*100)

	// Stage 2: measure out from cloud/hypergiant VMs (forward + reverse
	// traceroute) — the Arnold et al. technique.
	giants := append(inet.Top.ASesOfType(topology.Cloud), inet.Top.ASesOfType(topology.Hypergiant)...)
	cloudLinks := tracer.CloudCampaign(inet.Paths, giants, inet.Top.ASNs())
	after := bgp.MeasureVisibility(inet.Top, tracer.Union(obs, cloudLinks))
	fmt.Printf("after cloud campaigns: giant peerings %.1f%% visible\n",
		after.FracGiantPeeringsVisible()*100)

	// Stage 3: recommend the links no vantage point can measure.
	cands := itm.PeeringCandidates(inet, 25)
	ev := peering.Evaluate(inet.Top, obs, cands, len(cands))
	fmt.Printf("\nrecommender: top %d candidates, precision %.0f%% (%d links still hidden)\n",
		ev.K, ev.PrecisionK*100, ev.HiddenLinks)
	fmt.Printf("%-26s %-26s %7s %s\n", "A", "B", "SCORE", "REAL?")
	for _, c := range cands {
		fmt.Printf("%-26s %-26s %7.2f %v\n",
			inet.Top.ASes[c.A].Name, inet.Top.ASes[c.B].Name,
			c.Score, inet.Top.HasLink(c.A, c.B))
	}
}
