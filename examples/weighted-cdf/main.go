// Weighted CDFs: the paper's opening argument. An unweighted CDF over
// academic-topology paths says the Internet is many hops deep; weighting by
// actual query volume to a hypergiant says most activity crosses at most
// one AS boundary. Same Internet, opposite conclusions.
package main

import (
	"fmt"

	"itmap"
	"itmap/internal/topology"
)

func main() {
	inet := itm.NewInternet(itm.SmallConfig(5))
	mx := inet.Traffic.BuildMatrix()

	// Unweighted: every (academic VP, destination AS) path counts once —
	// the classic iPlane/PlanetLab view.
	var unweighted itm.WeightedCDF
	for _, vp := range inet.Top.ASesOfType(topology.Academic) {
		if inet.Top.ASes[vp].RootOperator {
			continue
		}
		for _, dst := range inet.Top.ASNs() {
			if dst == vp {
				continue
			}
			if h := inet.Paths.Hops(vp, dst); h >= 0 {
				unweighted.Add(float64(h), 1)
			}
		}
	}

	// Weighted: each path counts by the query volume it actually carries
	// toward the largest content owner.
	topOwner := mx.TopOwners()[0]
	var weighted itm.WeightedCDF
	for _, f := range mx.Flows {
		svc := inet.Cat.Services[f.Svc]
		if svc.Owner != topOwner.ASN || f.Hops < 0 {
			continue
		}
		weighted.Add(float64(f.Hops), f.Bytes/svc.BytesPerQuery)
	}

	fmt.Printf("top content owner: %s (AS%d), %.0f%% of ground-truth traffic\n\n",
		inet.Top.ASes[topOwner.ASN].Name, topOwner.ASN, topOwner.Share*100)
	fmt.Printf("%-10s %22s %22s\n", "hops <=", "unweighted paths", "query-weighted")
	for h := 0; h <= 4; h++ {
		fmt.Printf("%-10d %21.1f%% %21.1f%%\n", h,
			unweighted.FracAtMost(float64(h))*100,
			weighted.FracAtMost(float64(h))*100)
	}
	fmt.Printf("\nunweighted median path: %.0f hops; query-weighted median: %.0f hops\n",
		unweighted.Quantile(0.5), weighted.Quantile(0.5))
	fmt.Println("(the paper: 2% of iPlane paths were short, yet 73% of Google queries were)")

	// The same contrast, packaged: how every habitual metric changes
	// once weighted by the traffic it carries.
	fmt.Println()
	fmt.Print(itm.BuildWeightingReport(inet, mx).String())
}
