// Outage impact: the §2.1 use case. Fail a large eyeball ISP and ask the
// traffic map — built from public measurements only — which services its
// users lose, what share of activity is affected, and where the traffic
// would be served from instead.
package main

import (
	"fmt"

	"itmap"
	"itmap/internal/topology"
)

func main() {
	inet := itm.NewInternet(itm.SmallConfig(11))
	tmap := itm.BuildMap(inet)

	// Fail France's largest ISP (the generator names the big French
	// eyeballs after the paper's Figure 2 case study).
	var orange itm.ASN
	for _, asn := range inet.Top.EyeballsInCountry("FR") {
		if inet.Top.ASes[asn].Name == "Orange" {
			orange = asn
			break
		}
	}
	if orange == 0 {
		fmt.Println("no Orange in this world; using the largest eyeball instead")
		best := 0.0
		for _, asn := range inet.Top.ASesOfType(topology.Eyeball) {
			if u := inet.Users.ASUsers(asn); u > best {
				best, orange = u, asn
			}
		}
	}

	rep := tmap.OutageImpact(orange)
	fmt.Printf("outage scenario: AS%d (%s, %s)\n", rep.AS, rep.Name, rep.Country)
	fmt.Printf("  share of estimated global activity: %.2f%%\n", rep.ActivityShare*100)
	fmt.Printf("  active client /24s inside the AS:   %d\n", rep.ActivePrefixes)
	fmt.Printf("  serving prefixes lost (off-nets):   %d\n", rep.HostedServers)
	fmt.Printf("  services whose mapping serves these users: %d\n", len(rep.AffectedServices))
	for i, dom := range rep.AffectedServices {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(rep.AffectedServices)-5)
			break
		}
		if fb, ok := rep.Fallbacks[dom]; ok {
			fmt.Printf("    %-28s -> would fall back to %v\n", dom, fb)
		} else {
			fmt.Printf("    %-28s (no surviving server found)\n", dom)
		}
	}

	// Country-level view: how much of the country's activity this is.
	ci := tmap.CountryImpactOf(rep.Country)
	if ci.ActivityShare > 0 {
		fmt.Printf("  for scale, country %s holds %.2f%% of estimated activity in %d ASes\n",
			rep.Country, ci.ActivityShare*100, ci.ActiveASes)
	}
}
