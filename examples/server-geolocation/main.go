// Server geolocation: §3.2.3 approach 3. TLS scans find a CDN's serving
// prefixes; RTT constraints from distributed vantage points locate them;
// in-facility vantage points sharpen the estimates.
package main

import (
	"fmt"

	"itmap"
	"itmap/internal/geo"
	"itmap/internal/latency"
	"itmap/internal/measure/geoloc"
	"itmap/internal/measure/tlsscan"
	"itmap/internal/topology"
)

func main() {
	inet := itm.NewInternet(itm.SmallConfig(21))
	lm := latency.New(inet.Top, inet.Paths, 21)

	// Step 1: find the reference CDN's servers with a TLS scan.
	scan := tlsscan.ScanAll(inet.Top, inet.Cat, inet.Top.AllPrefixes())
	owner := inet.Cat.ReferenceCDN
	servers := scan.ByOwner[owner]
	fmt.Printf("TLS scan: %d serving prefixes for %s\n", len(servers), inet.Top.ASes[owner].Name)

	// Step 2: localize each server with Atlas vantage points; accuracy
	// grows with vantage diversity.
	atlas := geoloc.AtlasVPSet(inet.Top)
	fmt.Println("accuracy vs vantage-point count:")
	for _, nvp := range []int{1, 3, 5, 10, len(atlas)} {
		var errs []float64
		for _, srv := range servers {
			if est, ok := geoloc.Localize(lm, atlas[:nvp], srv.Prefix, 5); ok {
				errs = append(errs, est.ErrorKm(srv.City.Coord))
			}
		}
		s := geoloc.Summarize(errs)
		fmt.Printf("  %2d VPs: median error %5.0f km, p90 %5.0f km\n", nvp, s.MedianKm, s.P90Km)
	}
	var atlasErrs []float64
	for _, srv := range servers {
		if est, ok := geoloc.Localize(lm, atlas, srv.Prefix, 5); ok {
			atlasErrs = append(atlasErrs, est.ErrorKm(srv.City.Coord))
		}
	}
	a := geoloc.Summarize(atlasErrs)
	fmt.Printf("all Atlas VPs (%d):        median error %5.0f km, p90 %5.0f km\n",
		len(atlas), a.MedianKm, a.P90Km)

	// Step 3: add in-facility vantage points (another giant's on-net
	// sites, whose facility coordinates are public).
	var other topology.ASN
	for _, hg := range inet.Top.ASesOfType(topology.Hypergiant) {
		if hg != owner {
			other = hg
			break
		}
	}
	facTargets := map[topology.PrefixID]geo.City{}
	for _, s := range inet.Cat.Deployments[other].OnNetSites() {
		facTargets[s.Prefix] = s.City
	}
	facility := geoloc.FacilityVPSet(inet.Top, facTargets)
	combined := append(append([]geoloc.VantagePoint{}, atlas...), facility...)
	var combErrs []float64
	for _, srv := range servers {
		if est, ok := geoloc.Localize(lm, combined, srv.Prefix, 5); ok {
			combErrs = append(combErrs, est.ErrorKm(srv.City.Coord))
		}
	}
	c := geoloc.Summarize(combErrs)
	fmt.Printf("+ in-facility VPs (%d):    median error %5.0f km, p90 %5.0f km\n",
		len(facility), c.MedianKm, c.P90Km)

	// A concrete case: the farthest-off estimate.
	worst, worstErr := topology.PrefixID(0), -1.0
	for _, srv := range servers {
		if est, ok := geoloc.Localize(lm, combined, srv.Prefix, 5); ok {
			if e := est.ErrorKm(srv.City.Coord); e > worstErr {
				worst, worstErr = srv.Prefix, e
			}
		}
	}
	for _, srv := range servers {
		if srv.Prefix == worst {
			fmt.Printf("hardest target: %v actually in %s (off-net=%v), error %.0f km\n",
				worst, srv.City.Name, srv.OffNet(), worstErr)
		}
	}
}
