// Anycast efficiency: reproduce the "tale of two weightings" for anycast
// catchments (§2.1/§3.2.3). Route-weighted optimality looks mediocre;
// user-weighted optimality looks much better, because the networks hosting
// most users peer directly with the anycast operator near those users.
package main

import (
	"fmt"

	"itmap"
	"itmap/internal/measure/catchment"
	"itmap/internal/order"
	"itmap/internal/services"
	"itmap/internal/topology"
)

func main() {
	inet := itm.NewInternet(itm.SmallConfig(9))

	// Find an anycast service and its owner.
	var svc *services.Service
	for _, s := range inet.Cat.Services {
		if s.Kind == services.Anycast {
			svc = s
			break
		}
	}
	if svc == nil {
		fmt.Println("no anycast service in this world")
		return
	}
	d := inet.Cat.Deployments[svc.Owner]
	fmt.Printf("anycast service %q by %s: prefix %v announced from %d sites\n",
		svc.Name, inet.Top.ASes[svc.Owner].Name, d.AnycastPrefix, len(d.AnycastSites))

	// Verfploeter-style catchment measurement over every client network.
	var clients []itm.ASN
	clients = append(clients, inet.Top.ASesOfType(topology.Eyeball)...)
	clients = append(clients, inet.Top.ASesOfType(topology.Enterprise)...)
	cmap := catchment.Measure(inet.Cat, inet.Paths, svc.Owner, clients)
	an := catchment.Analyze(cmap, inet.Cat, inet.Top, inet.Users)

	fmt.Printf("\ncatchment optimality over %d client networks:\n", len(an.Results))
	fmt.Printf("  routes landing at their closest site: %5.1f%%   (paper: 31%%)\n", an.RouteOptimalFrac*100)
	fmt.Printf("  users  landing at their closest site: %5.1f%%   (paper: 60%%)\n", an.UserOptimalFrac*100)
	fmt.Printf("  users within 500 km of closest site:  %5.1f%%   (paper: 80%%)\n", an.UserFracWithinKm(500)*100)
	fmt.Printf("  user-weighted median distance inflation: %.0f km\n", an.MedianInflationKm())

	fmt.Println("\nproximity CDF (user-weighted | route-weighted):")
	for _, km := range []float64{0, 250, 500, 1000, 2500, 5000} {
		fmt.Printf("  <= %5.0f km: %5.1f%% | %5.1f%%\n",
			km, an.UserFracWithinKm(km)*100, an.RouteFracWithinKm(km)*100)
	}

	// Per-site catchment sizes.
	bySite := map[string]float64{}
	for _, asn := range order.Keys(cmap.Landing) {
		bySite[cmap.Landing[asn].City.Name] += inet.Users.ASUsers(asn)
	}
	fmt.Println("\nusers per landing site:")
	for _, site := range d.AnycastSites {
		if u := bySite[site.City.Name]; u > 0 {
			fmt.Printf("  %-16s %8.1fM users\n", site.City.Name, u/1e6)
		}
	}
}
