package dnswire

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"testing"
)

// withRawOpt appends an OPT additional record with the given rdata to an
// encoded query and bumps ARCOUNT — the way a buggy client emits a
// malformed EDNS0 option after a perfectly good question section.
func withRawOpt(base, rdata []byte) []byte {
	out := append([]byte(nil), base...)
	binary.BigEndian.PutUint16(out[10:], binary.BigEndian.Uint16(out[10:])+1)
	out = append(out, 0)                   // root owner name
	out = append(out, 0, 41, 0x10, 0, 0, 0, 0, 0) // TYPE=OPT, class/ttl
	out = append(out, byte(len(rdata)>>8), byte(len(rdata)))
	return append(out, rdata...)
}

// badECSOptions returns ECS options real fuzzers find in the wild: an
// option length running past the rdata, and an address bit count larger
// than the family allows.
func badECSOptions() [][]byte {
	return [][]byte{
		{0, 8, 0, 10, 0, 1},               // truncated: olen 10, 2 bytes present
		{0, 8, 0, 8, 0, 1, 132, 0, 1, 2, 3, 4}, // oversized: 132 bits of IPv4
	}
}

// FuzzDecode exercises the wire decoder with arbitrary bytes: it must never
// panic, anything it accepts must re-encode and re-decode to an equivalent
// question section, and a malformed EDNS0 option after a parseable question
// must surface a partial message (so servers can answer FORMERR instead of
// dropping).
func FuzzDecode(f *testing.F) {
	seed, _ := NewQuery(7, "svc.example", false).
		WithECS(netip.MustParsePrefix("203.0.113.0/24")).Encode()
	f.Add(seed)
	resp := &Message{ID: 9, QR: true, QName: "a.example", QType: TypeA, QClass: ClassIN,
		Answers: []netip.Addr{netip.MustParseAddr("192.0.2.7")}, AnswerTTL: 30}
	seed2, _ := resp.Encode()
	f.Add(seed2)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	plain, _ := NewQuery(8, "svc.example", false).Encode()
	for _, opt := range badECSOptions() {
		f.Add(withRawOpt(plain, opt))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if errors.Is(err, ErrBadOption) && m == nil {
				t.Fatal("bad-option error without the partial message")
			}
			return
		}
		out, err := m.Encode()
		if err != nil {
			// Decoder accepted a name the encoder refuses (e.g. an
			// empty label sequence artifact) — acceptable only if
			// the name is genuinely unencodable; never a panic.
			return
		}
		m2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.QName != m.QName || m2.QType != m.QType || m2.ID != m.ID {
			t.Fatalf("round trip changed question: %+v vs %+v", m, m2)
		}
	})
}

// TestDecodeBadECSReturnsPartial pins the FORMERR contract: a malformed
// EDNS0 option after a valid question yields ErrBadOption plus the decoded
// question, never a bare error.
func TestDecodeBadECSReturnsPartial(t *testing.T) {
	base, err := NewQuery(77, "svc.example", false).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i, opt := range badECSOptions() {
		m, err := Decode(withRawOpt(base, opt))
		if !errors.Is(err, ErrBadOption) {
			t.Fatalf("option %d: err = %v, want ErrBadOption", i, err)
		}
		if m == nil {
			t.Fatalf("option %d: no partial message", i)
		}
		if m.ID != 77 || m.QName != "svc.example" || m.QR {
			t.Fatalf("option %d: partial question mangled: %+v", i, m)
		}
	}
}
