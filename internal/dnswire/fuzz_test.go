package dnswire

import (
	"net/netip"
	"testing"
)

// FuzzDecode exercises the wire decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode and re-decode to an
// equivalent question section.
func FuzzDecode(f *testing.F) {
	seed, _ := NewQuery(7, "svc.example", false).
		WithECS(netip.MustParsePrefix("203.0.113.0/24")).Encode()
	f.Add(seed)
	resp := &Message{ID: 9, QR: true, QName: "a.example", QType: TypeA, QClass: ClassIN,
		Answers: []netip.Addr{netip.MustParseAddr("192.0.2.7")}, AnswerTTL: 30}
	seed2, _ := resp.Encode()
	f.Add(seed2)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		out, err := m.Encode()
		if err != nil {
			// Decoder accepted a name the encoder refuses (e.g. an
			// empty label sequence artifact) — acceptable only if
			// the name is genuinely unencodable; never a panic.
			return
		}
		m2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.QName != m.QName || m2.QType != m.QType || m2.ID != m.ID {
			t.Fatalf("round trip changed question: %+v vs %+v", m, m2)
		}
	})
}
