package dnswire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0xBEEF, "search.vortex.example", false).
		WithECS(netip.MustParsePrefix("203.0.113.0/24"))
	b, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0xBEEF || got.QR || got.RD {
		t.Errorf("header lost: %+v", got)
	}
	if got.QName != "search.vortex.example" || got.QType != TypeA || got.QClass != ClassIN {
		t.Errorf("question lost: %+v", got)
	}
	if got.ECS == nil || got.ECS.Prefix != netip.MustParsePrefix("203.0.113.0/24") {
		t.Errorf("ECS lost: %+v", got.ECS)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	m := &Message{
		ID: 7, QR: true, RA: true, Rcode: RcodeNoError,
		QName: "edge.megacdn.example", QType: TypeA, QClass: ClassIN,
		Answers:   []netip.Addr{netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.2")},
		AnswerTTL: 60,
		ECS: &ClientSubnet{
			Prefix:         netip.MustParsePrefix("198.51.100.0/24"),
			ScopePrefixLen: 24,
		},
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.QR || !got.RA || got.Rcode != RcodeNoError {
		t.Errorf("flags lost: %+v", got)
	}
	if len(got.Answers) != 2 || got.Answers[0] != m.Answers[0] || got.AnswerTTL != 60 {
		t.Errorf("answers lost: %+v", got)
	}
	if got.ECS == nil || got.ECS.ScopePrefixLen != 24 {
		t.Errorf("ECS scope lost: %+v", got.ECS)
	}
}

func TestHeaderGoldenBytes(t *testing.T) {
	q := NewQuery(0x0102, "a.example", true)
	b, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// ID 0x0102; flags: RD only = 0x0100; QDCOUNT 1.
	want := []byte{0x01, 0x02, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}
	if !bytes.Equal(b[:12], want) {
		t.Errorf("header = % x, want % x", b[:12], want)
	}
	// Question: 1"a" 7"example" 0, type A, class IN.
	wantQ := append([]byte{1, 'a', 7}, []byte("example")...)
	wantQ = append(wantQ, 0, 0, 1, 0, 1)
	if !bytes.Equal(b[12:], wantQ) {
		t.Errorf("question = % x, want % x", b[12:], wantQ)
	}
}

func TestECSGoldenOption(t *testing.T) {
	q := NewQuery(1, "x.example", false).WithECS(netip.MustParsePrefix("10.20.30.0/24"))
	b, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The OPT record sits at the end: find OPTION-CODE 8 and verify the
	// payload: family 1, source 24, scope 0, 3 address bytes.
	idx := bytes.Index(b, []byte{0x00, 0x08, 0x00, 0x07})
	if idx < 0 {
		t.Fatalf("ECS option not found in % x", b)
	}
	opt := b[idx+4 : idx+4+7]
	want := []byte{0x00, 0x01, 24, 0, 10, 20, 30}
	if !bytes.Equal(opt, want) {
		t.Errorf("ECS payload = % x, want % x", opt, want)
	}
}

func TestIPv6ECS(t *testing.T) {
	q := NewQuery(2, "x.example", false).WithECS(netip.MustParsePrefix("2001:db8::/48"))
	b, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ECS == nil || got.ECS.Prefix.String() != "2001:db8::/48" {
		t.Errorf("v6 ECS lost: %+v", got.ECS)
	}
}

func TestRejectBadNames(t *testing.T) {
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'a'
	}
	q := NewQuery(1, string(long)+".example", false)
	if _, err := q.Encode(); !errors.Is(err, ErrBadName) {
		t.Errorf("64-byte label accepted: %v", err)
	}
	q = NewQuery(1, "a..example", false)
	if _, err := q.Encode(); !errors.Is(err, ErrBadName) {
		t.Errorf("empty label accepted: %v", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	q := NewQuery(9, "probe.example", false).WithECS(netip.MustParsePrefix("1.2.3.0/24"))
	b, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := Decode(b[:cut]); err == nil {
			// Some prefixes may parse as a smaller valid message
			// only if counts allow; with QDCOUNT=1 they cannot.
			t.Fatalf("truncated to %d bytes still decoded", cut)
		}
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncatedMessage) {
		t.Error("nil input accepted")
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	f := func(raw []byte) bool {
		// Must never panic, whatever the input.
		_, _ = Decode(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(id uint16, a, b, c byte, bits uint8, recurse bool) bool {
		p, err := netip.MustParseAddr("0.0.0.0").Prefix(0)
		_ = p
		prefix, err := netip.AddrFrom4([4]byte{a, b, c, 0}).Prefix(int(bits%25) + 8)
		if err != nil {
			return false
		}
		q := NewQuery(id, "svc.example", recurse).WithECS(prefix)
		raw, err := q.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil {
			return false
		}
		return got.ID == id && got.RD == recurse && got.ECS != nil &&
			got.ECS.Prefix == prefix && got.QName == "svc.example"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRcodeEncoding(t *testing.T) {
	m := &Message{ID: 1, QR: true, Rcode: RcodeNXDomain, QName: "no.example", QType: TypeA, QClass: ClassIN}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if flags := binary.BigEndian.Uint16(b[2:]); flags&0x0f != uint16(RcodeNXDomain) {
		t.Errorf("rcode bits = %x", flags&0x0f)
	}
	got, err := Decode(b)
	if err != nil || got.Rcode != RcodeNXDomain {
		t.Errorf("rcode lost: %+v, %v", got, err)
	}
}
