// Package dnswire encodes and decodes the DNS wire format the measurement
// tools speak: RFC 1035 messages with EDNS0 (RFC 6891) and the Client
// Subnet option (RFC 7871). Cache probing is, on the wire, nothing more
// than an A query with RD=0 and an ECS option; this package produces and
// parses exactly those bytes, so the simulator's resolver front end handles
// the same packets a real prober would send.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Error values returned by the decoder.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrBadName          = errors.New("dnswire: malformed name")
	ErrBadOption        = errors.New("dnswire: malformed EDNS option")
)

// Record types and classes used by the tools.
const (
	TypeA    uint16 = 1
	TypeTXT  uint16 = 16
	TypeOPT  uint16 = 41
	TypeAAAA uint16 = 28

	ClassIN uint16 = 1
)

// Response codes.
const (
	RcodeNoError  uint8 = 0
	RcodeFormErr  uint8 = 1
	RcodeServfail uint8 = 2
	RcodeNXDomain uint8 = 3
	RcodeRefused  uint8 = 5
)

// Header flag bits (in the second 16-bit word).
const (
	flagQR uint16 = 1 << 15
	flagRD uint16 = 1 << 8
	flagRA uint16 = 1 << 7
)

// ClientSubnet is the RFC 7871 EDNS0 option payload.
type ClientSubnet struct {
	// Prefix is the client subnet (family derived from the address).
	Prefix netip.Prefix
	// ScopePrefixLen is the scope the responder applied (0 in queries).
	ScopePrefixLen uint8
}

// Message is a DNS message restricted to what the tools need: one question,
// A-record answers, and an optional ECS option.
type Message struct {
	ID uint16
	// QR is true for responses.
	QR bool
	// RD is the recursion-desired flag; cache probes clear it.
	RD bool
	// RA mirrors the server's recursion-available flag.
	RA    bool
	Rcode uint8

	QName  string
	QType  uint16
	QClass uint16

	// Answers holds A-record addresses with a shared TTL.
	Answers   []netip.Addr
	AnswerTTL uint32

	// ECS carries the client-subnet option if present.
	ECS *ClientSubnet
}

// NewQuery builds a query message for an A record.
func NewQuery(id uint16, name string, recurse bool) *Message {
	return &Message{ID: id, RD: recurse, QName: name, QType: TypeA, QClass: ClassIN}
}

// WithECS attaches a client-subnet option.
func (m *Message) WithECS(prefix netip.Prefix) *Message {
	m.ECS = &ClientSubnet{Prefix: prefix}
	return m
}

// appendName encodes a domain name in uncompressed wire format.
func appendName(b []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

// Encode serializes the message.
func (m *Message) Encode() ([]byte, error) {
	b := make([]byte, 12, 64+len(m.QName))
	binary.BigEndian.PutUint16(b[0:], m.ID)
	var flags uint16
	if m.QR {
		flags |= flagQR
	}
	if m.RD {
		flags |= flagRD
	}
	if m.RA {
		flags |= flagRA
	}
	flags |= uint16(m.Rcode & 0x0f)
	binary.BigEndian.PutUint16(b[2:], flags)
	binary.BigEndian.PutUint16(b[4:], 1) // QDCOUNT
	binary.BigEndian.PutUint16(b[6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(b[8:], 0) // NSCOUNT
	arcount := 0
	if m.ECS != nil {
		arcount = 1
	}
	binary.BigEndian.PutUint16(b[10:], uint16(arcount))

	var err error
	b, err = appendName(b, m.QName)
	if err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint16(b, m.QType)
	b = binary.BigEndian.AppendUint16(b, m.QClass)

	for _, addr := range m.Answers {
		b, err = appendName(b, m.QName)
		if err != nil {
			return nil, err
		}
		typ := TypeA
		raw := addr.AsSlice()
		if addr.Is6() {
			typ = TypeAAAA
		}
		b = binary.BigEndian.AppendUint16(b, typ)
		b = binary.BigEndian.AppendUint16(b, ClassIN)
		b = binary.BigEndian.AppendUint32(b, m.AnswerTTL)
		b = binary.BigEndian.AppendUint16(b, uint16(len(raw)))
		b = append(b, raw...)
	}

	if m.ECS != nil {
		b, err = appendOPT(b, m.ECS)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// appendOPT writes the OPT pseudo-record carrying the ECS option.
func appendOPT(b []byte, ecs *ClientSubnet) ([]byte, error) {
	b = append(b, 0)                              // root name
	b = binary.BigEndian.AppendUint16(b, TypeOPT) // TYPE
	b = binary.BigEndian.AppendUint16(b, 4096)    // UDP payload size
	b = binary.BigEndian.AppendUint32(b, 0)       // extended RCODE+flags

	addr := ecs.Prefix.Addr()
	family := uint16(1)
	if addr.Is6() {
		family = 2
	}
	bits := ecs.Prefix.Bits()
	if bits < 0 {
		return nil, fmt.Errorf("%w: invalid prefix", ErrBadOption)
	}
	nBytes := (bits + 7) / 8
	raw := addr.AsSlice()[:nBytes]

	optData := make([]byte, 0, 8+nBytes)
	optData = binary.BigEndian.AppendUint16(optData, family)
	optData = append(optData, byte(bits), ecs.ScopePrefixLen)
	optData = append(optData, raw...)

	rdata := make([]byte, 0, 4+len(optData))
	rdata = binary.BigEndian.AppendUint16(rdata, 8) // OPTION-CODE: ECS
	rdata = binary.BigEndian.AppendUint16(rdata, uint16(len(optData)))
	rdata = append(rdata, optData...)

	b = binary.BigEndian.AppendUint16(b, uint16(len(rdata)))
	return append(b, rdata...), nil
}

// Decode parses a message produced by Encode (no name compression, as is
// standard for queries and the responses our resolver emits).
func Decode(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrTruncatedMessage
	}
	m := &Message{}
	m.ID = binary.BigEndian.Uint16(b[0:])
	flags := binary.BigEndian.Uint16(b[2:])
	m.QR = flags&flagQR != 0
	m.RD = flags&flagRD != 0
	m.RA = flags&flagRA != 0
	m.Rcode = uint8(flags & 0x0f)
	qd := binary.BigEndian.Uint16(b[4:])
	an := binary.BigEndian.Uint16(b[6:])
	ar := binary.BigEndian.Uint16(b[10:])
	if qd != 1 {
		return nil, fmt.Errorf("dnswire: unsupported QDCOUNT %d", qd)
	}
	off := 12
	var err error
	m.QName, off, err = readName(b, off)
	if err != nil {
		return nil, err
	}
	if off+4 > len(b) {
		return nil, ErrTruncatedMessage
	}
	m.QType = binary.BigEndian.Uint16(b[off:])
	m.QClass = binary.BigEndian.Uint16(b[off+2:])
	off += 4

	for i := 0; i < int(an); i++ {
		_, noff, err := readName(b, off)
		if err != nil {
			return nil, err
		}
		off = noff
		if off+10 > len(b) {
			return nil, ErrTruncatedMessage
		}
		typ := binary.BigEndian.Uint16(b[off:])
		m.AnswerTTL = binary.BigEndian.Uint32(b[off+4:])
		rdlen := int(binary.BigEndian.Uint16(b[off+8:]))
		off += 10
		if off+rdlen > len(b) {
			return nil, ErrTruncatedMessage
		}
		if typ == TypeA || typ == TypeAAAA {
			addr, ok := netip.AddrFromSlice(b[off : off+rdlen])
			if !ok {
				return nil, fmt.Errorf("dnswire: bad address rdata length %d", rdlen)
			}
			m.Answers = append(m.Answers, addr)
		}
		off += rdlen
	}

	for i := 0; i < int(ar); i++ {
		_, noff, err := readName(b, off)
		if err != nil {
			return nil, err
		}
		off = noff
		if off+10 > len(b) {
			return nil, ErrTruncatedMessage
		}
		typ := binary.BigEndian.Uint16(b[off:])
		rdlen := int(binary.BigEndian.Uint16(b[off+8:]))
		off += 10
		if off+rdlen > len(b) {
			return nil, ErrTruncatedMessage
		}
		if typ == TypeOPT {
			ecs, err := parseECS(b[off : off+rdlen])
			if err != nil {
				// The question section already parsed, so return the
				// partial message alongside the error: servers answer
				// FORMERR to a malformed option rather than dropping
				// the query silently.
				return m, err
			}
			m.ECS = ecs
		}
		off += rdlen
	}
	return m, nil
}

// readName decodes an uncompressed name starting at off.
func readName(b []byte, off int) (string, int, error) {
	var labels []string
	for {
		if off >= len(b) {
			return "", 0, ErrTruncatedMessage
		}
		l := int(b[off])
		off++
		if l == 0 {
			break
		}
		if l > 63 {
			return "", 0, fmt.Errorf("%w: compression unsupported", ErrBadName)
		}
		if off+l > len(b) {
			return "", 0, ErrTruncatedMessage
		}
		labels = append(labels, string(b[off:off+l]))
		off += l
	}
	return strings.Join(labels, "."), off, nil
}

// parseECS extracts the first ECS option from OPT rdata.
func parseECS(rdata []byte) (*ClientSubnet, error) {
	off := 0
	for off+4 <= len(rdata) {
		code := binary.BigEndian.Uint16(rdata[off:])
		olen := int(binary.BigEndian.Uint16(rdata[off+2:]))
		off += 4
		if off+olen > len(rdata) {
			return nil, ErrBadOption
		}
		if code != 8 {
			off += olen
			continue
		}
		opt := rdata[off : off+olen]
		if len(opt) < 4 {
			return nil, ErrBadOption
		}
		family := binary.BigEndian.Uint16(opt[0:])
		bits := int(opt[2])
		scope := opt[3]
		addrLen := 4
		if family == 2 {
			addrLen = 16
		} else if family != 1 {
			return nil, fmt.Errorf("%w: family %d", ErrBadOption, family)
		}
		nBytes := (bits + 7) / 8
		if nBytes > addrLen || len(opt) < 4+nBytes {
			return nil, ErrBadOption
		}
		raw := make([]byte, addrLen)
		copy(raw, opt[4:4+nBytes])
		addr, ok := netip.AddrFromSlice(raw)
		if !ok {
			return nil, ErrBadOption
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadOption, err)
		}
		return &ClientSubnet{Prefix: p, ScopePrefixLen: scope}, nil
	}
	return nil, nil
}
