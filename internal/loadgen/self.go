package loadgen

import (
	"net/http"
	"net/http/httptest"
)

// HandlerDoer adapts an http.Handler into a Doer, so a replay can run
// in-process against the exact handler stack itm-serve mounts — no
// sockets, no ports, deterministic teardown. Used by -self mode and the
// loadgen smoke test.
type HandlerDoer struct {
	Handler http.Handler
}

// Do serves the request straight through the handler.
func (d HandlerDoer) Do(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	d.Handler.ServeHTTP(rec, req)
	return rec.Result(), nil
}
