// Package loadgen replays a seeded, deterministic query mix against the
// map store's HTTP API and keeps two ledgers: a deterministic counter set
// (requests by route, statuses, cache outcomes, body bytes) that is a pure
// function of (store content, seed, request count) — byte-identical across
// runs and worker counts — and a wall-clock performance summary (QPS,
// p50/p99 latency) that is not and is reported separately.
//
// Determinism across worker counts comes from key-affinity sharding: the
// plan is generated once from the seed, then every request for a given URL
// is routed to the worker that owns hash(URL). Each URL's request sequence
// is therefore totally ordered no matter how many workers run, so the
// per-URL conditional-request state machine (first visit fetches, later
// visits revalidate with If-None-Match) observes the same outcomes, and
// order-independent counter sums make worker interleaving invisible.
package loadgen

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"itmap/internal/obs"
	"itmap/internal/order"
	"itmap/internal/randx"
)

// Doer issues one HTTP request (an *http.Client, or an in-process handler
// bridge). Implementations must be safe for concurrent use.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// Config shapes one replay.
type Config struct {
	// Base is the URL prefix requests are issued against (e.g.
	// "http://localhost:8411"). May be empty for in-process Doers.
	Base string
	// Seed drives the whole plan; same seed, same plan, same counters.
	Seed int64
	// Requests is the total number of requests to replay.
	Requests int
	// Workers is the closed-loop concurrency (default 1).
	Workers int
	// Alpha is the zipf exponent for AS popularity (default 1.1): a few
	// hot ASes absorb most /v1/as traffic, like real consumers would.
	Alpha float64
	// ASPool caps how many top-ranked ASes the zipf draws from
	// (default 64, clamped to the store's ranking).
	ASPool int
	// Revalidate is the probability a revisit to an already-seen URL
	// carries If-None-Match (default 0.8); the rest re-fetch the body, so
	// the replay exercises both the 304 path and the warm cache path.
	Revalidate float64
	// Mix selects the request profile: "map" (default) replays the
	// consumer mix over the map routes; "mesh" replays a user↔user mix
	// over /v1/path, /v1/latency, and /v1/latency/top, drawing AS pairs
	// zipf-weighted from the store's worst-latency ranking.
	Mix string
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Alpha == 0 {
		c.Alpha = 1.1
	}
	if c.ASPool <= 0 {
		c.ASPool = 64
	}
	if c.Revalidate == 0 {
		c.Revalidate = 0.8
	}
	if c.Mix == "" {
		c.Mix = "map"
	}
}

// Counters is the deterministic ledger. All maps are keyed by small
// bounded sets (route patterns, status codes, X-Cache values), and
// marshaling sorts map keys, so the JSON is byte-identical across runs.
type Counters struct {
	// Requests counts issued requests by route pattern.
	Requests map[string]uint64 `json:"requests"`
	// Status counts responses by status code.
	Status map[string]uint64 `json:"status"`
	// Results counts 200 responses by the server's X-Cache verdict
	// (hit, miss, bypass, store).
	Results map[string]uint64 `json:"results"`
	// Traced counts requests issued with a minted traceparent header.
	Traced uint64 `json:"traced"`
	// NotModified counts 304 revalidations (no body transferred).
	NotModified uint64 `json:"not_modified"`
	// BodyBytes sums the body bytes of full responses.
	BodyBytes uint64 `json:"body_bytes"`
	// ETagChanges counts full responses whose ETag differed from the one
	// previously seen for the same URL (zero against a static store).
	ETagChanges uint64 `json:"etag_changes"`
}

func newCounters() *Counters {
	return &Counters{
		Requests: map[string]uint64{},
		Status:   map[string]uint64{},
		Results:  map[string]uint64{},
	}
}

func (c *Counters) merge(o *Counters) {
	for _, k := range order.Keys(o.Requests) {
		c.Requests[k] += o.Requests[k]
	}
	for _, k := range order.Keys(o.Status) {
		c.Status[k] += o.Status[k]
	}
	for _, k := range order.Keys(o.Results) {
		c.Results[k] += o.Results[k]
	}
	c.Traced += o.Traced
	c.NotModified += o.NotModified
	c.BodyBytes += o.BodyBytes
	c.ETagChanges += o.ETagChanges
}

// Total is the number of requests replayed.
func (c *Counters) Total() uint64 {
	var n uint64
	for _, k := range order.Keys(c.Requests) {
		n += c.Requests[k]
	}
	return n
}

// HitRatio is the fraction of requests answered without encoding a body:
// warm cache hits, zero-copy binary serves, and 304 revalidations.
func (c *Counters) HitRatio() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(c.Results["hit"]+c.Results["store"]+c.NotModified) / float64(total)
}

// Flat returns the counters as one flat name→value map, the shape
// itm-bench folds into BENCH_serve.json.
func (c *Counters) Flat() map[string]float64 {
	out := map[string]float64{
		"traced":       float64(c.Traced),
		"not_modified": float64(c.NotModified),
		"body_bytes":   float64(c.BodyBytes),
		"etag_changes": float64(c.ETagChanges),
	}
	for _, k := range order.Keys(c.Requests) {
		out["requests{route="+k+"}"] = float64(c.Requests[k])
	}
	for _, k := range order.Keys(c.Status) {
		out["status{code="+k+"}"] = float64(c.Status[k])
	}
	for _, k := range order.Keys(c.Results) {
		out["results{x_cache="+k+"}"] = float64(c.Results[k])
	}
	return out
}

// MarshalSorted renders the counters as indented JSON (map keys sorted by
// encoding/json), the byte-identity surface the smoke test diffs.
func (c *Counters) MarshalSorted() ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Perf is the wall-clock summary. Machine-dependent by nature; never folded
// into deterministic artifacts.
type Perf struct {
	Seconds float64 `json:"seconds"`
	QPS     float64 `json:"qps"`
	P50ms   float64 `json:"p50_ms"`
	P99ms   float64 `json:"p99_ms"`
}

// Result bundles one replay's two ledgers.
type Result struct {
	Counters *Counters `json:"counters"`
	Perf     Perf      `json:"perf"`
}

// request is one planned probe: a URL, whether a revisit should revalidate
// (send If-None-Match) instead of re-fetching the body, and the W3C
// traceparent the request propagates.
type request struct {
	url         string
	route       string
	revalidate  bool
	traceparent string
}

// tagTrace namespaces the trace-ID hash stream ("trace" in ASCII), keeping
// it disjoint from every other consumer of the seed.
const tagTrace = 0x7472616365

// mintTraceparent derives request i's traceparent from the plan seed: a
// 128-bit trace ID and 64-bit parent span ID via the identity hash. Same
// seed, same request index → same header, so the server-side trace corpus
// is byte-identical across runs and worker counts.
func mintTraceparent(seed int64, i int) string {
	return obs.FormatTraceparent(
		randx.Hash64(uint64(seed), tagTrace, uint64(i), 0),
		randx.Hash64(uint64(seed), tagTrace, uint64(i), 1),
		randx.Hash64(uint64(seed), tagTrace, uint64(i), 2),
	)
}

// storeShape is what the plan generator needs to know about the target:
// how many epochs exist, which ASes are worth querying, and — for the
// mesh mix — which AS pairs the mesh actually measured.
type storeShape struct {
	Epochs int
	ASes   []uint32
	Pairs  [][2]uint32
}

// discover bootstraps the store shape from the API itself: the epoch
// listing for the epoch count, the latest top-K ranking for the AS pool,
// and (mesh mix only) the worst-latency ranking for the pair pool.
func discover(d Doer, base string, pool int, mix string) (storeShape, error) {
	var sh storeShape
	var listing struct {
		Epochs []struct {
			ID int `json:"id"`
		} `json:"epochs"`
	}
	if err := getJSON(d, base+"/v1/epochs", &listing); err != nil {
		return sh, err
	}
	sh.Epochs = len(listing.Epochs)
	if sh.Epochs == 0 {
		return sh, fmt.Errorf("loadgen: store has no epochs")
	}
	var top struct {
		Top []struct {
			ASN uint32 `json:"asn"`
		} `json:"top"`
	}
	if err := getJSON(d, base+"/v1/top?k="+strconv.Itoa(pool), &top); err != nil {
		return sh, err
	}
	for _, r := range top.Top {
		sh.ASes = append(sh.ASes, r.ASN)
	}
	if len(sh.ASes) == 0 {
		return sh, fmt.Errorf("loadgen: store ranks no ASes")
	}
	if mix == "mesh" {
		var worst struct {
			Top []struct {
				A uint32 `json:"a"`
				B uint32 `json:"b"`
			} `json:"top"`
		}
		if err := getJSON(d, base+"/v1/latency/top?k="+strconv.Itoa(pool), &worst); err != nil {
			return sh, err
		}
		for _, r := range worst.Top {
			sh.Pairs = append(sh.Pairs, [2]uint32{r.A, r.B})
		}
		if len(sh.Pairs) == 0 {
			return sh, fmt.Errorf("loadgen: store ranks no mesh pairs (was it built with a mesh?)")
		}
	}
	return sh, nil
}

func getJSON(d Doer, url string, v any) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := d.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// plan generates the full deterministic request sequence for the
// configured mix, every request carrying a seeded traceparent.
func plan(cfg Config, sh storeShape) []request {
	var reqs []request
	if cfg.Mix == "mesh" {
		reqs = planMesh(cfg, sh)
	} else {
		reqs = planMap(cfg, sh)
	}
	for i := range reqs {
		reqs[i].traceparent = mintTraceparent(cfg.Seed, i)
	}
	return reqs
}

// planMap is the consumer profile the paper's map targets: rankings and
// per-AS views dominate, full map fetches (some binary) and diffs fill in.
func planMap(cfg Config, sh storeShape) []request {
	src := randx.New(cfg.Seed)
	zipf := randx.NewZipf(len(sh.ASes), cfg.Alpha)
	topKs := []int{10, 10, 10, 5, 20}
	reqs := make([]request, 0, cfg.Requests)
	for len(reqs) < cfg.Requests {
		var r request
		switch roll := src.Float64(); {
		case roll < 0.35:
			r.route = "/v1/top"
			r.url = "/v1/top?k=" + strconv.Itoa(topKs[src.Intn(len(topKs))])
		case roll < 0.65:
			r.route = "/v1/as/{asn}"
			asn := sh.ASes[zipf.Sample(src)-1]
			r.url = "/v1/as/" + strconv.FormatUint(uint64(asn), 10)
		case roll < 0.85:
			r.route = "/v1/map/{epoch}"
			r.url = "/v1/map/" + strconv.Itoa(src.Intn(sh.Epochs))
			if src.Bool(0.25) {
				r.url += "?format=binary"
			}
		default:
			if sh.Epochs < 2 {
				r.route = "/v1/top"
				r.url = "/v1/top?k=" + strconv.Itoa(topKs[src.Intn(len(topKs))])
				break
			}
			r.route = "/v1/diff/{a}/{b}"
			a := src.Intn(sh.Epochs - 1)
			r.url = "/v1/diff/" + strconv.Itoa(a) + "/" + strconv.Itoa(a+1)
		}
		r.revalidate = src.Bool(cfg.Revalidate)
		reqs = append(reqs, r)
	}
	return reqs
}

// planMesh is the user↔user profile: path lookups and latency summaries
// over a zipf-skewed pair population (hot pairs get rechecked, like a
// dashboard polling its worst links), with worst-pair rankings filling in.
// Pairs are queried in both argument orders so the replay exercises the
// server's canonicalization.
func planMesh(cfg Config, sh storeShape) []request {
	src := randx.New(cfg.Seed)
	zipf := randx.NewZipf(len(sh.Pairs), cfg.Alpha)
	topKs := []int{10, 10, 5, 20}
	reqs := make([]request, 0, cfg.Requests)
	for len(reqs) < cfg.Requests {
		var r request
		roll := src.Float64()
		if roll < 0.90 {
			p := sh.Pairs[zipf.Sample(src)-1]
			a, b := p[0], p[1]
			if src.Bool(0.5) {
				a, b = b, a
			}
			suffix := strconv.FormatUint(uint64(a), 10) + "/" + strconv.FormatUint(uint64(b), 10)
			if roll < 0.45 {
				r.route = "/v1/path/{a}/{b}"
				r.url = "/v1/path/" + suffix
			} else {
				r.route = "/v1/latency/{a}/{b}"
				r.url = "/v1/latency/" + suffix
			}
		} else {
			r.route = "/v1/latency/top"
			r.url = "/v1/latency/top?k=" + strconv.Itoa(topKs[src.Intn(len(topKs))])
		}
		r.revalidate = src.Bool(cfg.Revalidate)
		reqs = append(reqs, r)
	}
	return reqs
}

// shardOf routes a URL to its owning worker: all requests for one URL run
// in one worker, in plan order.
func shardOf(url string, workers int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(url))
	return int(h.Sum32() % uint32(workers))
}

// Run replays the configured mix and returns both ledgers. Any transport
// error aborts the replay.
func Run(cfg Config, d Doer) (*Result, error) {
	cfg.fill()
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: Requests must be positive")
	}
	if cfg.Mix != "map" && cfg.Mix != "mesh" {
		return nil, fmt.Errorf("loadgen: unknown mix %q", cfg.Mix)
	}
	sh, err := discover(d, cfg.Base, cfg.ASPool, cfg.Mix)
	if err != nil {
		return nil, err
	}
	reqs := plan(cfg, sh)

	shards := make([][]request, cfg.Workers)
	for _, r := range reqs {
		w := shardOf(r.url, cfg.Workers)
		shards[w] = append(shards[w], r)
	}

	counters := make([]*Counters, cfg.Workers)
	lats := make([][]time.Duration, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	//itmlint:allow nodeterm loadgen measures real serving wall time (Perf ledger only)
	start := time.Now()
	for w := range shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counters[w], lats[w], errs[w] = runWorker(cfg.Base, d, shards[w])
		}(w)
	}
	wg.Wait()
	//itmlint:allow nodeterm loadgen measures real serving wall time (Perf ledger only)
	elapsed := time.Since(start)

	res := &Result{Counters: newCounters()}
	var all []time.Duration
	for w := range shards {
		if errs[w] != nil {
			return nil, errs[w]
		}
		res.Counters.merge(counters[w])
		all = append(all, lats[w]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.Perf.Seconds = elapsed.Seconds()
	if res.Perf.Seconds > 0 {
		res.Perf.QPS = float64(len(reqs)) / res.Perf.Seconds
	}
	if len(all) > 0 {
		res.Perf.P50ms = float64(all[len(all)/2].Microseconds()) / 1e3
		res.Perf.P99ms = float64(all[len(all)*99/100].Microseconds()) / 1e3
	}
	return res, nil
}

// runWorker drives one shard's closed loop, tracking per-URL ETags so
// revisits can revalidate.
func runWorker(base string, d Doer, reqs []request) (*Counters, []time.Duration, error) {
	c := newCounters()
	lats := make([]time.Duration, 0, len(reqs))
	etags := map[string]string{}
	for _, r := range reqs {
		req, err := http.NewRequest(http.MethodGet, base+r.url, nil)
		if err != nil {
			return nil, nil, err
		}
		seen := etags[r.url]
		if r.revalidate && seen != "" {
			req.Header.Set("If-None-Match", seen)
		}
		if r.traceparent != "" {
			req.Header.Set("traceparent", r.traceparent)
			c.Traced++
		}
		//itmlint:allow nodeterm loadgen measures real serving wall time (Perf ledger only)
		t0 := time.Now()
		resp, err := d.Do(req)
		if err != nil {
			return nil, nil, err
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		//itmlint:allow nodeterm loadgen measures real serving wall time (Perf ledger only)
		lats = append(lats, time.Since(t0))

		c.Requests[r.route]++
		c.Status[strconv.Itoa(resp.StatusCode)]++
		switch resp.StatusCode {
		case http.StatusOK:
			c.BodyBytes += uint64(len(body))
			if x := resp.Header.Get("X-Cache"); x != "" {
				c.Results[x]++
			}
			if tag := resp.Header.Get("ETag"); tag != "" {
				if seen != "" && tag != seen {
					c.ETagChanges++
				}
				etags[r.url] = tag
			}
		case http.StatusNotModified:
			c.NotModified++
		default:
			return nil, nil, fmt.Errorf("loadgen: GET %s: status %d: %s", r.url, resp.StatusCode, body)
		}
	}
	return c, lats, nil
}
