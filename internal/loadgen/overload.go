package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// OverloadConfig shapes one unpaced burst against an admission-controlled
// server. Unlike the paced replay, the point is to saturate: every worker
// fires its next request the moment the previous one returns, and 503s are
// outcomes to count, not errors to abort on.
type OverloadConfig struct {
	// Base is the URL prefix requests are issued against.
	Base string
	// Seed drives the URL plan (same seed, same URLs in the same order).
	Seed int64
	// Requests is the total number of burst requests.
	Requests int
	// Workers is the burst concurrency (default 4).
	Workers int
}

// OverloadCounters is the burst ledger. The exact admitted/shed split over
// real HTTP depends on timing, but two properties are invariant and
// asserted by RunOverload itself: conservation (admitted + shed == issued)
// and that every shed response carried Retry-After. For exact,
// worker-count-invariant shed counts, see mapstore.OverloadScenario — the
// in-process phased variant itm-bench folds into BENCH_serve.json.
type OverloadCounters struct {
	Issued   uint64            `json:"issued"`
	Admitted uint64            `json:"admitted"`
	Shed     uint64            `json:"shed"`
	Status   map[string]uint64 `json:"status"`
	// RetryAfterMissing counts 503s without a Retry-After header; RunOverload
	// fails the run when it is nonzero, so a reported ledger always has 0.
	RetryAfterMissing uint64 `json:"retry_after_missing"`
}

// RunOverload blasts the planned mix unpaced and verifies the overload
// contract: nothing but 2xx/304/503 comes back, admitted + shed == issued,
// and every shed carries Retry-After.
func RunOverload(cfg OverloadConfig, d Doer) (*OverloadCounters, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: Requests must be positive")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	pcfg := Config{Base: cfg.Base, Seed: cfg.Seed, Requests: cfg.Requests}
	pcfg.fill()
	sh, err := discover(d, cfg.Base, pcfg.ASPool, pcfg.Mix)
	if err != nil {
		return nil, err
	}
	reqs := plan(pcfg, sh)

	// Burst sharding is plain round-robin: there is no per-URL conditional
	// state to keep ordered, and the ledger only promises order-independent
	// sums.
	shards := make([][]request, cfg.Workers)
	for i, r := range reqs {
		shards[i%cfg.Workers] = append(shards[i%cfg.Workers], r)
	}

	counters := make([]*OverloadCounters, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := range shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counters[w], errs[w] = burstWorker(cfg.Base, d, shards[w])
		}(w)
	}
	wg.Wait()

	total := &OverloadCounters{Status: map[string]uint64{}}
	for w := range shards {
		if errs[w] != nil {
			return nil, errs[w]
		}
		c := counters[w]
		total.Issued += c.Issued
		total.Admitted += c.Admitted
		total.Shed += c.Shed
		total.RetryAfterMissing += c.RetryAfterMissing
		for code, n := range c.Status {
			total.Status[code] += n
		}
	}
	if total.Admitted+total.Shed != total.Issued {
		return nil, fmt.Errorf("loadgen: overload conservation violated: admitted %d + shed %d != issued %d",
			total.Admitted, total.Shed, total.Issued)
	}
	if total.RetryAfterMissing > 0 {
		return nil, fmt.Errorf("loadgen: %d shed responses missing Retry-After", total.RetryAfterMissing)
	}
	return total, nil
}

func burstWorker(base string, d Doer, reqs []request) (*OverloadCounters, error) {
	c := &OverloadCounters{Status: map[string]uint64{}}
	for _, r := range reqs {
		req, err := http.NewRequest(http.MethodGet, base+r.url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := d.Do(req)
		if err != nil {
			return nil, err
		}
		_, err = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, err
		}
		c.Issued++
		c.Status[strconv.Itoa(resp.StatusCode)]++
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			c.Shed++
			if resp.Header.Get("Retry-After") == "" {
				c.RetryAfterMissing++
			}
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotModified:
			c.Admitted++
		default:
			return nil, fmt.Errorf("loadgen: GET %s: unexpected status %d under overload", r.url, resp.StatusCode)
		}
	}
	return c, nil
}
