package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"itmap/internal/mapstore"
	"itmap/internal/obs"
)

// shedEveryNth wraps a Doer and overrides every Nth burst response with a
// synthetic 503 + Retry-After. Shedding by call count makes the totals a
// pure function of the request count — the worker-count-invariance surface
// for the burst ledger.
type shedEveryNth struct {
	inner Doer
	n     int
	skip  int // leading requests passed through untouched (discovery)

	mu    sync.Mutex
	calls int
}

func (s *shedEveryNth) Do(req *http.Request) (*http.Response, error) {
	s.mu.Lock()
	s.calls++
	call := s.calls
	s.mu.Unlock()
	if call > s.skip && (call-s.skip)%s.n == 0 {
		rec := httptest.NewRecorder()
		rec.Header().Set("Retry-After", "1")
		rec.WriteHeader(http.StatusServiceUnavailable)
		return rec.Result(), nil
	}
	return s.inner.Do(req)
}

func TestOverloadLedgerWorkerCountInvariant(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	run := func(workers int) *OverloadCounters {
		t.Helper()
		d := &shedEveryNth{
			inner: HandlerDoer{Handler: mapstore.NewHandler(replayStore(t))},
			n:     3,
			skip:  2, // discovery: /v1/epochs + /v1/top
		}
		c, err := RunOverload(OverloadConfig{Seed: 11, Requests: 300, Workers: workers}, d)
		if err != nil {
			t.Fatalf("RunOverload(workers=%d): %v", workers, err)
		}
		return c
	}
	one := run(1)
	four := run(4)
	if one.Issued != 300 || one.Shed != 100 || one.Admitted != 200 {
		t.Fatalf("workers=1 ledger: %+v, want 300 issued / 100 shed / 200 admitted", one)
	}
	if four.Issued != one.Issued || four.Shed != one.Shed || four.Admitted != one.Admitted {
		t.Fatalf("burst ledger varies with worker count: 1 worker %+v, 4 workers %+v", one, four)
	}
	if one.Status["503"] != one.Shed {
		t.Fatalf("status map inconsistent with shed count: %+v", one)
	}
}

// TestOverloadAgainstRealAdmission runs the burst through an actual
// admission-wrapped handler: conservation and Retry-After are verified by
// RunOverload itself, so the test only needs a clean return and sane sums.
func TestOverloadAgainstRealAdmission(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	adm := mapstore.NewAdmission(mapstore.AdmissionConfig{MaxInFlight: 2, MaxQueue: 2})
	h := adm.Wrap(mapstore.NewHandler(replayStore(t)))
	c, err := RunOverload(OverloadConfig{Seed: 5, Requests: 400, Workers: 8}, HandlerDoer{Handler: h})
	if err != nil {
		t.Fatalf("RunOverload: %v", err)
	}
	if c.Issued != 400 || c.Admitted == 0 {
		t.Fatalf("ledger: %+v", c)
	}
	if c.Admitted+c.Shed != c.Issued {
		t.Fatalf("conservation: %+v", c)
	}
}

// TestOverloadRejectsBareServiceUnavailable: a 503 without Retry-After is
// a contract violation the run must fail on, not a counted outcome.
func TestOverloadRejectsBareServiceUnavailable(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	bare := &shedEveryNth{
		inner: HandlerDoer{Handler: mapstore.NewHandler(replayStore(t))},
		n:     5,
		skip:  2,
	}
	d := stripRetryAfter{bare}
	_, err := RunOverload(OverloadConfig{Seed: 3, Requests: 100, Workers: 2}, d)
	if err == nil || !strings.Contains(err.Error(), "Retry-After") {
		t.Fatalf("RunOverload over bare 503s = %v, want Retry-After contract error", err)
	}
}

type stripRetryAfter struct{ inner Doer }

func (s stripRetryAfter) Do(req *http.Request) (*http.Response, error) {
	resp, err := s.inner.Do(req)
	if err == nil && resp.StatusCode == http.StatusServiceUnavailable {
		resp.Header.Del("Retry-After")
	}
	return resp, err
}
