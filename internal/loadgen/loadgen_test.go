package loadgen

import (
	"bytes"
	"testing"

	"itmap/internal/experiments"
	"itmap/internal/mapstore"
	"itmap/internal/obs"
	"itmap/internal/world"
)

// replayStore builds a small static store. Each replay gets a fresh one:
// the deterministic-ledger contract is per (initial store state, seed),
// and response caches warm as a replay runs.
func replayStore(t *testing.T) *mapstore.Store {
	t.Helper()
	s, err := experiments.BuildEpochStore(world.Build(world.Tiny(7)), 3, 0)
	if err != nil {
		t.Fatalf("BuildEpochStore: %v", err)
	}
	return s
}

func replay(t *testing.T, seed int64, workers int) *Counters {
	t.Helper()
	res, err := Run(Config{Seed: seed, Requests: 600, Workers: workers},
		HandlerDoer{Handler: mapstore.NewHandler(replayStore(t))})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Counters
}

func TestSameSeedSameCounters(t *testing.T) {
	a, err := replay(t, 1, 4).MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	b, err := replay(t, 1, 4).MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed replays diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// Key-affinity sharding makes the deterministic ledger independent of
	// concurrency: 1 worker and 4 workers must observe identical counters.
	one, err := replay(t, 2, 1).MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	four, err := replay(t, 2, 4).MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, four) {
		t.Errorf("worker counts changed the deterministic ledger:\nworkers=1:\n%s\nworkers=4:\n%s", one, four)
	}
}

func TestReplayExercisesCache(t *testing.T) {
	c := replay(t, 3, 2)
	if got := c.Total(); got != 600 {
		t.Fatalf("Total = %d, want 600", got)
	}
	if c.HitRatio() == 0 {
		t.Error("HitRatio = 0: replay never hit the cache or revalidated")
	}
	if c.NotModified == 0 {
		t.Error("replay produced no 304s: If-None-Match path untested")
	}
	if c.Results["store"] == 0 {
		t.Error("replay produced no zero-copy binary serves")
	}
	if c.ETagChanges != 0 {
		t.Errorf("ETagChanges = %d against a static store, want 0", c.ETagChanges)
	}
	for _, route := range []string{"/v1/top", "/v1/as/{asn}", "/v1/map/{epoch}", "/v1/diff/{a}/{b}"} {
		if c.Requests[route] == 0 {
			t.Errorf("route %s never requested", route)
		}
	}
}

// TestServerCountersDeterministic pins the *server-side* cache counters:
// replaying the same plan against a fresh store must produce identical
// itm_cache_* totals regardless of worker count, because each URL's
// request sequence is serialized by key affinity.
func TestServerCountersDeterministic(t *testing.T) {
	dump := func(workers int) string {
		prev := obs.Swap(obs.NewSet())
		defer obs.Swap(prev)
		s, err := experiments.BuildEpochStore(world.Build(world.Tiny(7)), 3, 0)
		if err != nil {
			t.Fatalf("BuildEpochStore: %v", err)
		}
		if _, err := Run(Config{Seed: 5, Requests: 600, Workers: workers},
			HandlerDoer{Handler: mapstore.NewHandler(s)}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := obs.Metrics().WritePrometheus(&buf, false); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		return buf.String()
	}
	one := dump(1)
	four := dump(4)
	if one != four {
		t.Errorf("server counters differ between worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", one, four)
	}
}

// meshReplayStore builds a store whose epochs carry mesh sections, so the
// mesh mix has pairs to discover.
func meshReplayStore(t *testing.T) *mapstore.Store {
	t.Helper()
	s := mapstore.NewStore()
	err := experiments.BuildEpochStoreMeshInto(s, world.Build(world.Tiny(7)), 2, 0,
		experiments.MeshSpec{Agents: 24, Rounds: 1})
	if err != nil {
		t.Fatalf("BuildEpochStoreMeshInto: %v", err)
	}
	return s
}

func meshReplay(t *testing.T, seed int64, workers int) *Counters {
	t.Helper()
	res, err := Run(Config{Seed: seed, Requests: 400, Workers: workers, Mix: "mesh"},
		HandlerDoer{Handler: mapstore.NewHandler(meshReplayStore(t))})
	if err != nil {
		t.Fatalf("Run(mesh): %v", err)
	}
	return res.Counters
}

// TestMeshMixWorkerInvariance: the mesh mix obeys the same determinism
// contract as the map mix — key-affinity sharding keeps the ledger
// identical across worker counts.
func TestMeshMixWorkerInvariance(t *testing.T) {
	one, err := meshReplay(t, 11, 1).MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	four, err := meshReplay(t, 11, 4).MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, four) {
		t.Errorf("mesh mix ledger depends on workers:\nworkers=1:\n%s\nworkers=4:\n%s", one, four)
	}
}

// TestMeshMixExercisesRoutes: every mesh route appears, only mesh routes
// appear, and both the revalidation and warm-cache paths fire.
func TestMeshMixExercisesRoutes(t *testing.T) {
	c := meshReplay(t, 12, 2)
	if got := c.Total(); got != 400 {
		t.Fatalf("Total = %d, want 400", got)
	}
	for _, route := range []string{"/v1/path/{a}/{b}", "/v1/latency/{a}/{b}", "/v1/latency/top"} {
		if c.Requests[route] == 0 {
			t.Errorf("route %s never requested", route)
		}
	}
	if len(c.Requests) != 3 {
		t.Errorf("mesh mix hit non-mesh routes: %v", c.Requests)
	}
	if c.NotModified == 0 {
		t.Error("mesh replay produced no 304s: If-None-Match path untested")
	}
	if c.Results["hit"] == 0 {
		t.Error("mesh replay never hit the response cache")
	}
	if c.ETagChanges != 0 {
		t.Errorf("ETagChanges = %d against a static store, want 0", c.ETagChanges)
	}
}

// TestMeshMixNeedsMesh: against a store built without mesh sections the
// mesh mix fails fast at discovery instead of replaying 404s.
func TestMeshMixNeedsMesh(t *testing.T) {
	_, err := Run(Config{Seed: 1, Requests: 10, Mix: "mesh"},
		HandlerDoer{Handler: mapstore.NewHandler(replayStore(t))})
	if err == nil {
		t.Fatal("mesh mix against a meshless store succeeded")
	}
	if _, err := Run(Config{Seed: 1, Requests: 10, Mix: "bogus"},
		HandlerDoer{Handler: mapstore.NewHandler(replayStore(t))}); err == nil {
		t.Fatal("unknown mix accepted")
	}
}
