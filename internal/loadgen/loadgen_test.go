package loadgen

import (
	"bytes"
	"testing"

	"itmap/internal/experiments"
	"itmap/internal/mapstore"
	"itmap/internal/obs"
	"itmap/internal/world"
)

// replayStore builds a small static store. Each replay gets a fresh one:
// the deterministic-ledger contract is per (initial store state, seed),
// and response caches warm as a replay runs.
func replayStore(t *testing.T) *mapstore.Store {
	t.Helper()
	s, err := experiments.BuildEpochStore(world.Build(world.Tiny(7)), 3, 0)
	if err != nil {
		t.Fatalf("BuildEpochStore: %v", err)
	}
	return s
}

func replay(t *testing.T, seed int64, workers int) *Counters {
	t.Helper()
	res, err := Run(Config{Seed: seed, Requests: 600, Workers: workers},
		HandlerDoer{Handler: mapstore.NewHandler(replayStore(t))})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Counters
}

func TestSameSeedSameCounters(t *testing.T) {
	a, err := replay(t, 1, 4).MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	b, err := replay(t, 1, 4).MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed replays diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// Key-affinity sharding makes the deterministic ledger independent of
	// concurrency: 1 worker and 4 workers must observe identical counters.
	one, err := replay(t, 2, 1).MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	four, err := replay(t, 2, 4).MarshalSorted()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, four) {
		t.Errorf("worker counts changed the deterministic ledger:\nworkers=1:\n%s\nworkers=4:\n%s", one, four)
	}
}

func TestReplayExercisesCache(t *testing.T) {
	c := replay(t, 3, 2)
	if got := c.Total(); got != 600 {
		t.Fatalf("Total = %d, want 600", got)
	}
	if c.HitRatio() == 0 {
		t.Error("HitRatio = 0: replay never hit the cache or revalidated")
	}
	if c.NotModified == 0 {
		t.Error("replay produced no 304s: If-None-Match path untested")
	}
	if c.Results["store"] == 0 {
		t.Error("replay produced no zero-copy binary serves")
	}
	if c.ETagChanges != 0 {
		t.Errorf("ETagChanges = %d against a static store, want 0", c.ETagChanges)
	}
	for _, route := range []string{"/v1/top", "/v1/as/{asn}", "/v1/map/{epoch}", "/v1/diff/{a}/{b}"} {
		if c.Requests[route] == 0 {
			t.Errorf("route %s never requested", route)
		}
	}
}

// TestServerCountersDeterministic pins the *server-side* cache counters:
// replaying the same plan against a fresh store must produce identical
// itm_cache_* totals regardless of worker count, because each URL's
// request sequence is serialized by key affinity.
func TestServerCountersDeterministic(t *testing.T) {
	dump := func(workers int) string {
		prev := obs.Swap(obs.NewSet())
		defer obs.Swap(prev)
		s, err := experiments.BuildEpochStore(world.Build(world.Tiny(7)), 3, 0)
		if err != nil {
			t.Fatalf("BuildEpochStore: %v", err)
		}
		if _, err := Run(Config{Seed: 5, Requests: 600, Workers: workers},
			HandlerDoer{Handler: mapstore.NewHandler(s)}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := obs.Metrics().WritePrometheus(&buf, false); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		return buf.String()
	}
	one := dump(1)
	four := dump(4)
	if one != four {
		t.Errorf("server counters differ between worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", one, four)
	}
}
