package mapstore

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"itmap/internal/obs"
	"itmap/internal/simtime"
)

// getFull issues a GET with optional If-None-Match and returns the whole
// response (the plain get helper discards headers).
func getFull(t *testing.T, srv *httptest.Server, path, inm string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return resp
}

func TestETagMatch(t *testing.T) {
	for _, tc := range []struct {
		header, etag string
		want         bool
	}{
		{"", `"a"`, false},
		{`"a"`, `"a"`, true},
		{`"b"`, `"a"`, false},
		{"*", `"a"`, true},
		{`"x", "a"`, `"a"`, true},
		{` "a" `, `"a"`, true},
		{`W/"a"`, `"a"`, false},
	} {
		if got := etagMatch(tc.header, tc.etag); got != tc.want {
			t.Errorf("etagMatch(%q, %q) = %v, want %v", tc.header, tc.etag, got, tc.want)
		}
	}
}

// TestBinaryHeadersAndByteIdentity pins the zero-copy contract on
// /v1/map/{epoch}?format=binary: explicit Content-Length, no-transform,
// a strong ETag, and a body byte-identical to the codec's output.
func TestBinaryHeadersAndByteIdentity(t *testing.T) {
	s := storeWith(t, 1)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp := getFull(t, srv, "/v1/map/0?format=binary", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeDocument(s.Latest().Doc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Error("binary body differs from EncodeDocument output")
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(want)) {
		t.Errorf("Content-Length = %q, want %d", got, len(want))
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-transform" {
		t.Errorf("Cache-Control = %q, want no-transform", got)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Errorf("Content-Type = %q", got)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || etag != s.Latest().ETag {
		t.Errorf("ETag = %q, want the epoch's %q", etag, s.Latest().ETag)
	}

	// Revalidation: If-None-Match on the strong tag answers 304, no body.
	resp304 := getFull(t, srv, "/v1/map/0?format=binary", etag)
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidate status %d, want 304", resp304.StatusCode)
	}
	if b, _ := io.ReadAll(resp304.Body); len(b) != 0 {
		t.Errorf("304 carried %d body bytes", len(b))
	}
	if got := resp304.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}
}

// TestETagSemantics covers the conditional-request lifecycle: 304 on
// match, a full body under a new tag once an append bumps the store
// generation, and stable per-epoch tags across appends.
func TestETagSemantics(t *testing.T) {
	s := storeWith(t, 2)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// Store-scoped route: the epoch listing revalidates against the store
	// generation.
	resp := getFull(t, srv, "/v1/epochs", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	listTag := resp.Header.Get("ETag")
	if listTag == "" {
		t.Fatal("no ETag on /v1/epochs")
	}
	body1, _ := io.ReadAll(resp.Body)
	if resp := getFull(t, srv, "/v1/epochs", listTag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: status %d, want 304", resp.StatusCode)
	}

	// Epoch-scoped route: tag from the epoch's canonical encoding.
	mapTag := getFull(t, srv, "/v1/map/0", "").Header.Get("ETag")
	if mapTag == "" || mapTag == listTag {
		t.Fatalf("map ETag %q should be set and distinct from store tag %q", mapTag, listTag)
	}

	// Append a new epoch: the generation bumps.
	if _, err := s.Append(2*simtime.Day, docAt(2)); err != nil {
		t.Fatal(err)
	}

	// The stale store tag no longer matches: full body, new tag, new
	// content.
	resp = getFull(t, srv, "/v1/epochs", listTag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after append: status %d, want 200", resp.StatusCode)
	}
	newTag := resp.Header.Get("ETag")
	if newTag == listTag {
		t.Error("store ETag did not change after append")
	}
	body2, _ := io.ReadAll(resp.Body)
	if bytes.Equal(body1, body2) {
		t.Error("epoch listing unchanged after append")
	}

	// Epoch 0 is immutable: its tag (and 304 behavior) survives appends.
	resp = getFull(t, srv, "/v1/map/0", mapTag)
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("epoch-scoped revalidation after append: status %d, want 304", resp.StatusCode)
	}
}

// TestCacheCounters pins the deterministic ledger for a known request
// sequence: first touch is a miss + fill, repeats are hits, revalidations
// are 304s, and every body byte is accounted.
func TestCacheCounters(t *testing.T) {
	prev := obs.Swap(obs.NewSet())
	defer obs.Swap(prev)
	s := storeWith(t, 1)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	counter := func(name, route string) uint64 {
		return obs.Metrics().Counter(name, "", obs.L("route", route)).Value()
	}

	resp := getFull(t, srv, "/v1/map/0", "")
	body, _ := io.ReadAll(resp.Body)
	getFull(t, srv, "/v1/map/0", "")
	getFull(t, srv, "/v1/map/0", resp.Header.Get("ETag"))

	if got := counter("itm_cache_misses_total", "/v1/map/{epoch}"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := counter("itm_cache_fills_total", "/v1/map/{epoch}"); got != 1 {
		t.Errorf("fills = %d, want 1", got)
	}
	if got := counter("itm_cache_hits_total", "/v1/map/{epoch}"); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := counter("itm_cache_not_modified_total", "/v1/map/{epoch}"); got != 1 {
		t.Errorf("304s = %d, want 1", got)
	}
	if got := counter("itm_cache_bytes_served_total", "/v1/map/{epoch}"); got != uint64(2*len(body)) {
		t.Errorf("bytes = %d, want %d", got, 2*len(body))
	}

	// X-Cache mirrors the ledger for clients.
	if x := resp.Header.Get("X-Cache"); x != "miss" {
		t.Errorf("first X-Cache = %q, want miss", x)
	}
	if x := getFull(t, srv, "/v1/map/0", "").Header.Get("X-Cache"); x != "hit" {
		t.Errorf("repeat X-Cache = %q, want hit", x)
	}
}

// TestPrebakedResponses: the default top-K and the adjacent diff are baked
// at append time, so their very first request is already a cache hit.
func TestPrebakedResponses(t *testing.T) {
	s := storeWith(t, 2)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	if x := getFull(t, srv, "/v1/top", "").Header.Get("X-Cache"); x != "hit" {
		t.Errorf("first /v1/top X-Cache = %q, want hit (prebaked)", x)
	}
	if x := getFull(t, srv, "/v1/top?k=10", "").Header.Get("X-Cache"); x != "hit" {
		t.Errorf("first /v1/top?k=10 X-Cache = %q, want hit (same shape as prebake)", x)
	}
	if x := getFull(t, srv, "/v1/diff/0/1", "").Header.Get("X-Cache"); x != "hit" {
		t.Errorf("first adjacent diff X-Cache = %q, want hit (prebaked)", x)
	}
	// A non-default shape still misses, then hits.
	if x := getFull(t, srv, "/v1/top?k=3", "").Header.Get("X-Cache"); x != "miss" {
		t.Errorf("first /v1/top?k=3 X-Cache = %q, want miss", x)
	}
	if x := getFull(t, srv, "/v1/top?k=3", "").Header.Get("X-Cache"); x != "hit" {
		t.Errorf("second /v1/top?k=3 X-Cache = %q, want hit", x)
	}
}

// TestSingleFlightFill hammers one cold key concurrently and asserts the
// body rendered exactly once.
func TestSingleFlightFill(t *testing.T) {
	prev := obs.Swap(obs.NewSet())
	defer obs.Swap(prev)
	s := storeWith(t, 1)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	const n = 16
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := srv.Client().Get(srv.URL + "/v1/map/0")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	if got := obs.Metrics().Counter("itm_cache_fills_total", "", obs.L("route", "/v1/map/{epoch}")).Value(); got != 1 {
		t.Errorf("fills = %d, want 1 (single flight)", got)
	}
}

// TestCacheMetricFamiliesDeclared freezes the itm_cache_* families in the
// stable exposition: NewStore declares every family up front, so a
// campaign's metrics dump carries their HELP/TYPE headers (and the prebake
// series) even before any serving-time traffic.
func TestCacheMetricFamiliesDeclared(t *testing.T) {
	prevSet := obs.Swap(obs.NewSet())
	defer obs.Swap(prevSet)
	s := storeWith(t, 2)
	_ = s
	dump := obs.Metrics().StableExposition()
	for _, family := range []string{
		"itm_cache_hits_total",
		"itm_cache_misses_total",
		"itm_cache_fills_total",
		"itm_cache_not_modified_total",
		"itm_cache_bypass_total",
		"itm_cache_bytes_served_total",
		"itm_cache_prebaked_total",
	} {
		if !strings.Contains(dump, "# TYPE "+family+" counter") {
			t.Errorf("stable exposition missing family %s", family)
		}
	}
	// Two epochs bake the default top-K twice plus one adjacent diff.
	if !strings.Contains(dump, "itm_cache_prebaked_total 3") {
		t.Errorf("prebake series wrong; dump:\n%s", dump)
	}
}

// TestCachedJSONMatchesStreaming pins the byte-identity between the cached
// render (json.MarshalIndent) and the streaming writeJSON path the error
// responses still use — the serve smoke greps exact values from these
// bodies.
func TestCachedJSONMatchesStreaming(t *testing.T) {
	s := storeWith(t, 1)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	_, body := get(t, srv, "/v1/top?k=2")
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, topResponse{Epoch: 0, Top: s.Latest().TopASes(2)})
	if !bytes.Equal(body, rec.Body.Bytes()) {
		t.Errorf("cached body differs from streaming writeJSON:\n%s\nvs\n%s", body, rec.Body.Bytes())
	}
}
