package mapstore

import (
	"bytes"
	"errors"
	"testing"

	"itmap/internal/core"
)

// sampleMesh builds a small canonical mesh document exercising every wire
// feature: complete and holed paths, unreachable pairs, lossy probes.
func sampleMesh() *core.MeshDocument {
	return &core.MeshDocument{
		Version: 1,
		Agents:  8,
		Rounds:  2,
		Profile: "lossy",
		Pairs: []core.MeshPairDocument{
			{Lo: 3000, Hi: 3001, Path: []uint32{3000, 10, 3001}, Complete: true,
				Probes: 8, Lost: 1, MinRTT: 12.5, MeanRTT: 14.25, MaxRTT: 19, Confidence: 0.875},
			{Lo: 3000, Hi: 3005, Path: []uint32{3000, 0, 3005}, Complete: false,
				Probes: 4, Lost: 2, MinRTT: 40, MeanRTT: 41, MaxRTT: 42, Confidence: 0.25},
			{Lo: 3002, Hi: 3007, Probes: 4, Lost: 4}, // unreachable, all pings lost
		},
	}
}

func TestMeshCodecRoundTrip(t *testing.T) {
	doc := sampleMesh()
	enc, err := EncodeMeshDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMeshDocument(enc)
	if err != nil {
		t.Fatal(err)
	}
	re, err := EncodeMeshDocument(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("decode→re-encode not byte-identical")
	}
	if len(got.Pairs) != len(doc.Pairs) || got.Profile != doc.Profile ||
		got.Agents != doc.Agents || got.Rounds != doc.Rounds {
		t.Fatalf("round trip lost content: %+v", got)
	}
	for i := range doc.Pairs {
		a, b := &doc.Pairs[i], &got.Pairs[i]
		if a.Key() != b.Key() || a.Probes != b.Probes || a.Lost != b.Lost ||
			a.Complete != b.Complete || a.MeanRTT != b.MeanRTT || len(a.Path) != len(b.Path) {
			t.Fatalf("pair %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestMeshCodecSortsUnsortedInput(t *testing.T) {
	doc := sampleMesh()
	shuffled := &core.MeshDocument{Version: doc.Version, Agents: doc.Agents,
		Rounds: doc.Rounds, Profile: doc.Profile,
		Pairs: []core.MeshPairDocument{doc.Pairs[2], doc.Pairs[0], doc.Pairs[1]}}
	a, err := EncodeMeshDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeMeshDocument(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("pair order leaked into encoding")
	}
	if shuffled.Pairs[0].Key() != doc.Pairs[2].Key() {
		t.Fatal("encoder mutated its input")
	}
}

func TestMeshCodecRejectsMapDocBytes(t *testing.T) {
	enc, err := EncodeDocument(sampleDoc())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMeshDocument(enc); !errors.Is(err, ErrVersion) {
		t.Fatalf("v1 map bytes decoded as mesh: %v", err)
	}
	mesh, err := EncodeMeshDocument(sampleMesh())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDocument(mesh); !errors.Is(err, ErrVersion) {
		t.Fatalf("v2 mesh bytes decoded as map: %v", err)
	}
}

func TestMeshEncodeRejectsBadDocuments(t *testing.T) {
	cases := map[string]*core.MeshDocument{
		"nil":             nil,
		"negative header": {Version: -1},
		"equal pair":      {Pairs: []core.MeshPairDocument{{Lo: 7, Hi: 7}}},
		"zero lo":         {Pairs: []core.MeshPairDocument{{Lo: 0, Hi: 7}}},
		"swapped pair":    {Pairs: []core.MeshPairDocument{{Lo: 9, Hi: 7}}},
		"duplicate pair": {Pairs: []core.MeshPairDocument{
			{Lo: 3, Hi: 7, Probes: 1}, {Lo: 3, Hi: 7, Probes: 2}}},
		"lost exceeds probes": {Pairs: []core.MeshPairDocument{{Lo: 3, Hi: 7, Probes: 2, Lost: 3}}},
		"path too long":       {Pairs: []core.MeshPairDocument{{Lo: 3, Hi: 7, Path: make([]uint32, maxMeshPathLen+1)}}},
	}
	for name, doc := range cases {
		if _, err := EncodeMeshDocument(doc); !errors.Is(err, ErrEncode) {
			t.Errorf("%s: want ErrEncode, got %v", name, err)
		}
	}
}

// meshCorruptions are the mesh-specific wire mutations the fuzz seed
// corpus pins: truncated tails, non-ascending pair keys, bad varints, and
// out-of-range fields.
func meshCorruptions(t *testing.T) [][]byte {
	t.Helper()
	enc, err := EncodeMeshDocument(sampleMesh())
	if err != nil {
		t.Fatal(err)
	}
	out := corruptions(enc)
	// Duplicate key: second pair's key delta zeroed. Find it by re-encoding
	// a two-pair doc and flipping the delta byte after the first pair.
	two, err := EncodeMeshDocument(&core.MeshDocument{Pairs: []core.MeshPairDocument{
		{Lo: 1, Hi: 2}, {Lo: 1, Hi: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	// Each zero-stat pair is 37 bytes; the second one trails the buffer, so
	// its key delta sits at len-37 and its flags byte at len-36.
	dup := append([]byte(nil), two...)
	dup[len(dup)-37] = 0 // second pair's key delta → not ascending
	out = append(out, dup)
	// Flags with undefined bits set.
	flags := append([]byte(nil), two...)
	flags[len(flags)-36] = 0x80
	out = append(out, flags)
	return out
}

func TestDecodeMeshSectionsTypedErrors(t *testing.T) {
	for i, data := range meshCorruptions(t) {
		doc, err := DecodeMeshDocument(data)
		if err == nil {
			// A mutation can land in a free-form header field and still be a
			// document; the contract then is canonical round-trip.
			re, reErr := EncodeMeshDocument(doc)
			if reErr != nil || !bytes.Equal(re, data) {
				t.Errorf("corruption %d accepted but not canonical", i)
			}
			continue
		}
		if !errors.Is(err, ErrMagic) && !errors.Is(err, ErrVersion) &&
			!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Errorf("corruption %d: untyped error %v", i, err)
		}
	}
}

// FuzzDecodeMeshSections pins the mesh codec's safety contract, mirroring
// FuzzDecodeMapDocument: arbitrary bytes never panic the decoder, and
// anything accepted is canonical — re-encoding reproduces the input.
func FuzzDecodeMeshSections(f *testing.F) {
	full, err := EncodeMeshDocument(sampleMesh())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	empty, err := EncodeMeshDocument(&core.MeshDocument{Version: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	for _, c := range corruptions(full) {
		f.Add(c)
	}
	// Non-ascending pair keys and bad varints, hand-rolled on the header.
	hdr := append([]byte(nil), Magic[:]...)
	hdr = append(hdr, MeshCodecVersion, 1, 8, 2, 0) // no profile
	f.Add(append(append([]byte(nil), hdr...), 0xff, 0xff, 0xff, 0xff, 0x7f))
	f.Add(append(append([]byte(nil), hdr...), 2, 5, 0x80)) // dangling varint

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := DecodeMeshDocument(data)
		if err != nil {
			if !errors.Is(err, ErrMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re, err := EncodeMeshDocument(doc)
		if err != nil {
			t.Fatalf("accepted mesh fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode→re-encode not byte-identical: %d vs %d bytes", len(re), len(data))
		}
	})
}
