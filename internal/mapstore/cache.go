package mapstore

import (
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"itmap/internal/obs"
)

// The epoch-keyed response cache. Epochs are immutable after Append, so a
// response derived from one epoch (a top-K ranking, a map document render,
// an epoch-to-epoch diff) can be encoded once and served as bytes forever;
// responses that span the whole store (activity series, the epoch listing)
// are valid only until the next append. The cache layout mirrors that split:
//
//   - every *Epoch carries its own responseCache, keyed by query shape
//     ("top?k=10", "map.json", "diff?a=0&b=1&min_shift=0.01"). Appends never
//     touch existing epochs, so these entries survive ingestion untouched —
//     invalidation is scoped to exactly the epochs an append changes (none).
//   - the store's epochList snapshot carries a second responseCache for
//     cross-epoch responses. Append publishes a fresh list (the existing
//     copy-on-write swap), which replaces that cache wholesale: store-scoped
//     entries invalidate by construction, with no locks on the read path.
//
// Entries fill single-flight: concurrent misses on one key encode once and
// share the bytes. Strong ETags derived from the epochs' canonical ITMB
// encodings let clients revalidate with If-None-Match and get 304s with
// zero body work.

// cacheMaxEntries bounds one responseCache's key count. Beyond it, requests
// are served uncached (counted as bypasses) rather than evicting: eviction
// order would make hit/miss counters scheduling-dependent, and a bounded
// query-shape space (k values, ASNs, epoch pairs) rarely reaches the cap.
const cacheMaxEntries = 1 << 16

// cacheEntry is one cached response body, filled exactly once.
type cacheEntry struct {
	once  sync.Once
	body  []byte
	ctype string
	err   error
}

// responseCache is a keyed set of single-flight response entries.
type responseCache struct {
	mu sync.Mutex
	//itm:guardedby mu
	entries map[string]*cacheEntry
}

func newResponseCache() *responseCache {
	return &responseCache{entries: map[string]*cacheEntry{}}
}

// lookup returns the entry for key, creating it when absent. created
// reports whether this call inserted it (a miss); ok is false when the
// cache is at capacity and the key absent, in which case the caller serves
// the request uncached.
func (c *responseCache) lookup(key string) (e *cacheEntry, created, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		return e, false, true
	}
	if len(c.entries) >= cacheMaxEntries {
		return nil, false, false
	}
	e = &cacheEntry{}
	c.entries[key] = e
	return e, true, true
}

// fill resolves the entry's body, encoding via render on first touch;
// concurrent callers block until the single flight completes.
func (e *cacheEntry) fill(route string, render func() ([]byte, string, error)) {
	e.once.Do(func() {
		e.body, e.ctype, e.err = render()
		if e.err == nil {
			cacheFills(route).Inc()
		}
	})
}

// len reports the number of cached entries (tests and store stats).
func (c *responseCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// --- metrics ----------------------------------------------------------------

// Cache metric families. Declared by NewStore so the HELP/TYPE headers are
// present in the stable exposition (and the obs smoke) before any request.
func declareCacheMetrics() {
	reg := obs.Metrics()
	reg.Declare(obs.KindCounter, "itm_cache_hits_total",
		"Response-cache hits (body served from cached bytes), by route pattern.", "route")
	reg.Declare(obs.KindCounter, "itm_cache_misses_total",
		"Response-cache misses (entry created by this request), by route pattern.", "route")
	reg.Declare(obs.KindCounter, "itm_cache_fills_total",
		"Response-cache single-flight fills (bodies encoded), by route pattern.", "route")
	reg.Declare(obs.KindCounter, "itm_cache_not_modified_total",
		"Conditional requests answered 304 via ETag match, by route pattern.", "route")
	reg.Declare(obs.KindCounter, "itm_cache_bypass_total",
		"Requests served uncached because the cache was at capacity, by route pattern.", "route")
	reg.Declare(obs.KindCounter, "itm_cache_bytes_served_total",
		"Response body bytes served through the caching path, by route pattern.", "route")
	// Bare counter: create the series so a campaign's stable dump carries it
	// even before any serving-time traffic.
	obs.C("itm_cache_prebaked_total", "Responses pre-baked into epoch caches at append time.").Add(0)
}

func cacheHits(route string) *obs.Counter {
	return obs.C("itm_cache_hits_total",
		"Response-cache hits (body served from cached bytes), by route pattern.", obs.L("route", route))
}

func cacheMisses(route string) *obs.Counter {
	return obs.C("itm_cache_misses_total",
		"Response-cache misses (entry created by this request), by route pattern.", obs.L("route", route))
}

func cacheFills(route string) *obs.Counter {
	return obs.C("itm_cache_fills_total",
		"Response-cache single-flight fills (bodies encoded), by route pattern.", obs.L("route", route))
}

func cacheNotModified(route string) *obs.Counter {
	return obs.C("itm_cache_not_modified_total",
		"Conditional requests answered 304 via ETag match, by route pattern.", obs.L("route", route))
}

func cacheBypass(route string) *obs.Counter {
	return obs.C("itm_cache_bypass_total",
		"Requests served uncached because the cache was at capacity, by route pattern.", obs.L("route", route))
}

func cacheBytes(route string) *obs.Counter {
	return obs.C("itm_cache_bytes_served_total",
		"Response body bytes served through the caching path, by route pattern.", obs.L("route", route))
}

// --- ETags ------------------------------------------------------------------

// fingerprint is the FNV-1a hash backing the store's strong ETags. The
// input is the epoch's canonical ITMB encoding, which is byte-identical
// across runs and worker counts, so ETags are too.
func fingerprint(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}

// epochETag derives the strong ETag for responses scoped to one epoch.
func epochETag(id int, encoded []byte) string {
	return `"itm-e` + strconv.Itoa(id) + `-` + strconv.FormatUint(fingerprint(encoded), 16) + `"`
}

// storeETag derives the strong ETag for responses that span the store: it
// advances on every append (the generation bump), so cross-epoch responses
// revalidate as soon as a new epoch lands.
func storeETag(gen int, lastEpochTag string) string {
	return `"itm-s` + strconv.Itoa(gen) + `-` + strconv.FormatUint(fingerprint([]byte(lastEpochTag)), 16) + `"`
}

// pairETag derives the strong ETag for an epoch-pair response (diffs). The
// pair's content is immutable, so the tag never changes.
func pairETag(a, b *Epoch) string {
	return `"itm-d` + strconv.Itoa(a.ID) + `-` + strconv.Itoa(b.ID) + `-` +
		strconv.FormatUint(fingerprint([]byte(a.ETag+b.ETag)), 16) + `"`
}

// etagMatch implements the If-None-Match comparison for the strong ETags
// this package issues: a comma-separated candidate list or "*". Weak tags
// (W/ prefix) never match — we only ever emit strong ones.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for len(header) > 0 {
		var tok string
		if i := strings.IndexByte(header, ','); i >= 0 {
			tok, header = header[:i], header[i+1:]
		} else {
			tok, header = header, ""
		}
		if strings.TrimSpace(tok) == etag {
			return true
		}
	}
	return false
}

// statusErr lets a render func report a client-visible status (a cached
// 404, say) instead of the generic 500; the outcome caches like a body —
// correct, since the inputs it was derived from are immutable.
type statusErr struct {
	code int
	msg  string
}

func (e *statusErr) Error() string { return e.msg }

func writeRenderErr(w http.ResponseWriter, err error) {
	if se, ok := err.(*statusErr); ok {
		writeErr(w, se.code, "%s", se.msg)
		return
	}
	writeErr(w, http.StatusInternalServerError, "%v", err)
}

// serveCached is the caching serve path: answer If-None-Match with 304 and
// zero body work, otherwise serve the cached bytes (single-flight filling
// them on first touch) with ETag, Content-Length, and an X-Cache header
// clients can fold into deterministic hit/miss ledgers.
func serveCached(w http.ResponseWriter, r *http.Request, route string, c *responseCache,
	key, etag string, render func() ([]byte, string, error)) {
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		cacheNotModified(route).Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	entry, created, ok := c.lookup(key)
	if !ok {
		body, ctype, err := render()
		if err != nil {
			writeRenderErr(w, err)
			return
		}
		cacheBypass(route).Inc()
		writeCachedBody(w, route, etag, ctype, "bypass", body)
		return
	}
	if created {
		cacheMisses(route).Inc()
	} else {
		cacheHits(route).Inc()
	}
	entry.fill(route, render)
	if entry.err != nil {
		writeRenderErr(w, entry.err)
		return
	}
	result := "hit"
	if created {
		result = "miss"
	}
	writeCachedBody(w, route, etag, entry.ctype, result, entry.body)
}

// serveBinary is the zero-copy path for ?format=binary: the epoch's stored
// canonical ITMB encoding goes straight to the wire — no decode, no
// re-encode, no copy. no-transform guards the byte-identity contract
// (clients may hash the body against the codec's output).
func serveBinary(w http.ResponseWriter, r *http.Request, route string, e *Epoch) {
	if etagMatch(r.Header.Get("If-None-Match"), e.ETag) {
		w.Header().Set("ETag", e.ETag)
		cacheNotModified(route).Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(e.Encoded)))
	h.Set("Cache-Control", "no-transform")
	h.Set("ETag", e.ETag)
	h.Set("X-Cache", "store")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.Encoded)
	cacheHits(route).Inc()
	cacheBytes(route).Add(uint64(len(e.Encoded)))
}

// writeCachedBody emits a fully-materialized response body with the strong
// validator and explicit length.
func writeCachedBody(w http.ResponseWriter, route, etag, ctype, xcache string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", ctype)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	h.Set("ETag", etag)
	h.Set("X-Cache", xcache)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	cacheBytes(route).Add(uint64(len(body)))
}
