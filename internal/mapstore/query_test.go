package mapstore

import (
	"testing"

	"itmap/internal/simtime"
)

func storeWith(t *testing.T, days int) *Store {
	t.Helper()
	s := NewStore()
	for d := 0; d < days; d++ {
		if _, err := s.Append(simtime.Time(d)*simtime.Day, docAt(d)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestTopASesRanking(t *testing.T) {
	s := storeWith(t, 1)
	e := s.Latest()
	top := e.TopASes(10)
	// sampleDoc activity: 64500=123.5, 64501=7, 65000=0.25.
	if len(top) != 3 {
		t.Fatalf("top %v", top)
	}
	if top[0].ASN != 64500 || top[1].ASN != 64501 || top[2].ASN != 65000 {
		t.Errorf("ranking wrong: %v", top)
	}
	total := 123.5 + 7 + 0.25
	if got, want := top[0].Share, 123.5/total; got != want {
		t.Errorf("share %f, want %f", got, want)
	}
	if got := e.TopASes(1); len(got) != 1 || got[0].ASN != 64500 {
		t.Errorf("top-1 %v", got)
	}
	if got := e.TopASes(-1); len(got) != 0 {
		t.Errorf("top(-1) %v", got)
	}
}

func TestASView(t *testing.T) {
	s := storeWith(t, 1)
	e := s.Latest()
	v, ok := e.ASView(64500, 10)
	if !ok {
		t.Fatal("AS 64500 missing")
	}
	if v.Activity != 123.5 || v.Source != "cache-probe" {
		t.Errorf("view %+v", v)
	}
	if v.Confidence == nil || *v.Confidence != 1 {
		t.Errorf("confidence %+v", v.Confidence)
	}
	// 64500 maps two domains; both serving prefixes resolve to scan
	// servers, and ranking is by host popularity then domain.
	if v.TotalServices != 2 || len(v.Services) != 2 {
		t.Fatalf("services %+v", v.Services)
	}
	// Host 64500 serves 2 client mappings (cdn+video via 9.9.9.0/24),
	// host 64501 serves 1.
	if v.Services[0].HostClients < v.Services[1].HostClients {
		t.Errorf("services not ranked by host popularity: %+v", v.Services)
	}
	if v.Services[0].Org != "HyperGiant" {
		t.Errorf("org not joined from scan: %+v", v.Services[0])
	}

	// Top-k truncation.
	v, _ = e.ASView(64500, 1)
	if len(v.Services) != 1 || v.TotalServices != 2 {
		t.Errorf("k=1 view %+v", v)
	}

	// An AS with a source but no activity still resolves.
	if _, ok := e.ASView(65000, 0); !ok {
		t.Error("AS 65000 missing")
	}
	if _, ok := e.ASView(4242, 0); ok {
		t.Error("unknown AS resolved")
	}
}

func TestASActivitySeries(t *testing.T) {
	s := storeWith(t, 3)
	series := s.ASActivitySeries(64500)
	if len(series) != 3 {
		t.Fatalf("series %v", series)
	}
	// docAt adds +10/day to 64500.
	if series[0].Activity != 123.5 || series[1].Activity != 133.5 || series[2].Activity != 143.5 {
		t.Errorf("series values %v", series)
	}
	if series[2].At != 2*simtime.Day {
		t.Errorf("series time %v", series[2].At)
	}
	empty := s.ASActivitySeries(4242)
	for _, v := range empty {
		if v.Activity != 0 {
			t.Errorf("unknown AS has activity %v", v)
		}
	}
}

func TestStoreDiff(t *testing.T) {
	s := storeWith(t, 3)
	d, err := s.Diff(0, 2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if d.EpochA != 0 || d.EpochB != 2 || d.AtB != 2*simtime.Day {
		t.Errorf("diff header %+v", d)
	}
	// Day 2 added 10.0.1.0/24 and 10.0.2.0/24.
	if len(d.Appeared) != 2 || d.Appeared[0] != "10.0.1.0/24" {
		t.Errorf("appeared %v", d.Appeared)
	}
	if len(d.Vanished) != 0 || d.StablePrefixes != 3 {
		t.Errorf("vanished %v stable %d", d.Vanished, d.StablePrefixes)
	}
	if d.Jaccard != 3.0/5.0 {
		t.Errorf("jaccard %f", d.Jaccard)
	}
	// 64500 gained share, so the others lost some.
	if len(d.Shifts) == 0 || d.Shifts[0].ASN != 64500 || d.Shifts[0].Delta <= 0 {
		t.Errorf("shifts %+v", d.Shifts)
	}

	// Self-diff is empty.
	self, err := s.Diff(1, 1, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if self.Jaccard != 1 || len(self.Appeared)+len(self.Vanished)+len(self.Shifts) != 0 {
		t.Errorf("self diff %+v", self)
	}

	if _, err := s.Diff(0, 9, 0.1); err == nil {
		t.Error("diff against missing epoch succeeded")
	}
}

func TestLinkLoadWithoutMatrix(t *testing.T) {
	s := storeWith(t, 1)
	if _, ok := s.Latest().LinkLoad(1, 2); ok {
		t.Error("link load resolved without a matrix snapshot")
	}
}
