package mapstore

import (
	"fmt"
	"net/http"
	"strconv"

	"itmap/internal/core"
	"itmap/internal/simtime"
)

// The user↔user mesh routes:
//
//	GET /v1/path/{a}/{b}?epoch=        observed AS path between two ASes
//	GET /v1/latency/{a}/{b}?epoch=     RTT distribution summary for the pair
//	GET /v1/latency/top?epoch=&k=      worst pairs by mean RTT
//
// All three resolve the epoch like every other route (?epoch=, default
// latest), carry the mesh-scoped strong ETag, and flow through the epoch's
// response cache — including cached 404s for pairs the campaign never
// measured, which are immutable facts of the epoch.

// meshTopKey is the normalized cache key for the worst-pairs ranking.
func meshTopKey(k int) string { return "latency/top?k=" + strconv.Itoa(k) }

func meshPairKey(kind string, a, b uint32) string {
	return kind + "?pair=" + strconv.FormatUint(core.MeshKey(a, b), 16)
}

// meshEpoch resolves the request's epoch and requires it to carry a mesh.
func (h *handler) meshEpoch(w http.ResponseWriter, r *http.Request, v *epochList) (*Epoch, bool) {
	e, err := epochIn(v, r)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return nil, false
	}
	if e.MeshDoc == nil {
		writeErr(w, http.StatusNotFound, "epoch %d has no mesh sections", e.ID)
		return nil, false
	}
	return e, true
}

// meshPairIn parses the {a}/{b} path ASNs and looks the pair up, reporting
// render-layer errors so negative results cache with the epoch.
func meshPairIn(e *Epoch, a, b uint32) (*core.MeshPairDocument, error) {
	p, ok := e.MeshPair(a, b)
	if !ok {
		return nil, &statusErr{http.StatusNotFound,
			fmt.Sprintf("no mesh measurement for AS pair %d/%d in epoch %d", a, b, e.ID)}
	}
	return p, nil
}

type meshPathResponse struct {
	Epoch    int          `json:"epoch"`
	At       simtime.Time `json:"at_hours"`
	A        uint32       `json:"a"`
	B        uint32       `json:"b"`
	Path     []uint32     `json:"path,omitempty"`
	Complete bool         `json:"complete"`
	// Confidence is the pair's coverage score (see core.MeshPairDocument).
	Confidence float64 `json:"confidence"`
}

func (h *handler) meshPath(w http.ResponseWriter, r *http.Request) {
	a, errA := pathASN(r, "a")
	b, errB := pathASN(r, "b")
	if errA != nil || errB != nil {
		writeErr(w, http.StatusBadRequest, "bad AS pair %q/%q", r.PathValue("a"), r.PathValue("b"))
		return
	}
	v := h.view()
	e, ok := h.meshEpoch(w, r, v)
	if !ok {
		return
	}
	serveCached(w, r, "/v1/path/{a}/{b}", e.cache, meshPairKey("path", a, b), e.MeshETag,
		func() ([]byte, string, error) {
			p, err := meshPairIn(e, a, b)
			if err != nil {
				return nil, "", err
			}
			return jsonBody(meshPathResponse{
				Epoch: e.ID, At: e.At, A: p.Lo, B: p.Hi,
				Path: p.Path, Complete: p.Complete, Confidence: p.Confidence,
			})
		})
}

type meshLatencyResponse struct {
	Epoch      int          `json:"epoch"`
	At         simtime.Time `json:"at_hours"`
	A          uint32       `json:"a"`
	B          uint32       `json:"b"`
	Probes     int          `json:"probes"`
	Lost       int          `json:"lost"`
	Loss       float64      `json:"loss"`
	MinRTTms   float64      `json:"min_rtt_ms"`
	MeanRTTms  float64      `json:"mean_rtt_ms"`
	MaxRTTms   float64      `json:"max_rtt_ms"`
	Complete   bool         `json:"complete"`
	Confidence float64      `json:"confidence"`
}

func (h *handler) meshLatency(w http.ResponseWriter, r *http.Request) {
	a, errA := pathASN(r, "a")
	b, errB := pathASN(r, "b")
	if errA != nil || errB != nil {
		writeErr(w, http.StatusBadRequest, "bad AS pair %q/%q", r.PathValue("a"), r.PathValue("b"))
		return
	}
	v := h.view()
	e, ok := h.meshEpoch(w, r, v)
	if !ok {
		return
	}
	serveCached(w, r, "/v1/latency/{a}/{b}", e.cache, meshPairKey("latency", a, b), e.MeshETag,
		func() ([]byte, string, error) {
			p, err := meshPairIn(e, a, b)
			if err != nil {
				return nil, "", err
			}
			return jsonBody(meshLatencyResponse{
				Epoch: e.ID, At: e.At, A: p.Lo, B: p.Hi,
				Probes: p.Probes, Lost: p.Lost, Loss: p.LossRate(),
				MinRTTms: p.MinRTT, MeanRTTms: p.MeanRTT, MaxRTTms: p.MaxRTT,
				Complete: p.Complete, Confidence: p.Confidence,
			})
		})
}

type meshTopResponse struct {
	Epoch int        `json:"epoch"`
	Top   []MeshRank `json:"top"`
}

func (h *handler) meshLatencyTop(w http.ResponseWriter, r *http.Request) {
	v := h.view()
	e, ok := h.meshEpoch(w, r, v)
	if !ok {
		return
	}
	k, err := intParam(r, "k", defaultTopK)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	serveCached(w, r, "/v1/latency/top", e.cache, meshTopKey(k), e.MeshETag,
		func() ([]byte, string, error) {
			return jsonBody(meshTopResponse{Epoch: e.ID, Top: e.WorstMeshPairs(k)})
		})
}
