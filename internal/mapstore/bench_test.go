package mapstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"itmap/internal/core"
	"itmap/internal/simtime"
)

// benchDoc synthesizes a map document with n active prefixes and the
// proportions a real campaign produces (≈1 AS per 100 prefixes, a server
// per 200, a few mappings per AS). Everything is index-derived, so the
// document — and every measurement below — is deterministic.
func benchDoc(n int) *core.MapDocument {
	doc := &core.MapDocument{
		Version:        1,
		PrefixHitRates: map[string]float64{},
		ASActivity:     map[string]float64{},
		Sources:        map[string]string{},
	}
	prefix := func(i int) string {
		return fmt.Sprintf("%d.%d.%d.0/24", 10+i/65536, (i/256)%256, i%256)
	}
	for i := 0; i < n; i++ {
		p := prefix(i)
		doc.ActivePrefixes = append(doc.ActivePrefixes, p)
		doc.PrefixHitRates[p] = float64(i%97) / 97
	}
	ases := n/100 + 2
	for a := 0; a < ases; a++ {
		asn := fmt.Sprintf("%d", 64500+a)
		doc.ASActivity[asn] = float64((a*7919)%1000) + 0.5
		doc.Sources[asn] = "cache-probe"
	}
	for s := 0; s < n/200+2; s++ {
		doc.Servers = append(doc.Servers, core.ServerDocument{
			Prefix:  prefix(s * 191 % n),
			HostAS:  uint32(64500 + s%ases),
			OwnerAS: uint32(64500 + (s+1)%ases),
			Org:     fmt.Sprintf("org-%d", s%7),
			City:    "frankfurt",
			Country: "DE",
		})
	}
	for a := 0; a < ases; a++ {
		for d := 0; d < 3; d++ {
			doc.Mappings = append(doc.Mappings, core.MappingDocument{
				Domain:   fmt.Sprintf("svc-%d.example", d),
				ClientAS: uint32(64500 + a),
				Serving:  prefix((a*3 + d) * 53 % n),
			})
		}
	}
	doc.Normalize()
	return doc
}

const benchPrefixes = 20000

func BenchmarkEncodeDocument(b *testing.B) {
	doc := benchDoc(benchPrefixes)
	enc, err := EncodeDocument(doc)
	if err != nil {
		b.Fatal(err)
	}
	var jsonBuf bytes.Buffer
	if err := doc.Export(&jsonBuf); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeDocument(doc); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(enc)), "encoded_bytes")
	b.ReportMetric(float64(jsonBuf.Len())/float64(len(enc)), "json_ratio")
}

func BenchmarkDecodeDocument(b *testing.B) {
	enc, err := EncodeDocument(benchDoc(benchPrefixes))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDocument(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreAppend(b *testing.B) {
	doc := benchDoc(benchPrefixes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore()
		if _, err := s.Append(0, doc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchStore(b *testing.B) *Store {
	b.Helper()
	s := NewStore()
	for d := 0; d < 3; d++ {
		doc := benchDoc(benchPrefixes)
		doc.ASActivity["64500"] += float64(d)
		if _, err := s.Append(simtime.Time(d)*simtime.Day, doc); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkTopASes(b *testing.B) {
	s := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Latest().TopASes(10); len(got) != 10 {
			b.Fatal("short ranking")
		}
	}
}

func BenchmarkASView(b *testing.B) {
	s := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Latest().ASView(64510, 5); !ok {
			b.Fatal("AS missing")
		}
	}
}

func BenchmarkStoreDiff(b *testing.B) {
	s := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Diff(0, 2, 0.001); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentReaders measures epoch ingestion under concurrent
// read load — the copy-on-write contract's cost. Each iteration ingests
// one fresh epoch while 4 reader goroutines run a fixed query volume
// against the store, so the per-op numbers are deterministic.
func BenchmarkConcurrentReaders(b *testing.B) {
	s := NewStore()
	if _, err := s.Append(0, benchDoc(benchPrefixes)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		doc := benchDoc(benchPrefixes)
		doc.ASActivity["64500"] += float64(i + 1)
		b.StartTimer()
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := 0; q < 64; q++ {
					e := s.Latest()
					if got := e.TopASes(10); len(got) == 0 {
						b.Error("lost ranking")
						return
					}
					if _, ok := e.ASView(64510, 5); !ok {
						b.Error("AS missing")
						return
					}
				}
			}()
		}
		if _, err := s.Append(simtime.Time(i+1)*simtime.Day, doc); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
	}
}
