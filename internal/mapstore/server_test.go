package mapstore

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"itmap/internal/obs"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, body
}

func getJSON(t *testing.T, srv *httptest.Server, path string, into any) {
	t.Helper()
	code, body := get(t, srv, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, code, body)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: %v in %s", path, err, body)
	}
}

func TestServerEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewHandler(storeWith(t, 3)))
	defer srv.Close()

	var health struct {
		Status string `json:"status"`
		Epochs int    `json:"epochs"`
	}
	getJSON(t, srv, "/healthz", &health)
	if health.Status != "ok" || health.Epochs != 3 {
		t.Errorf("healthz %+v", health)
	}

	var epochs struct {
		Epochs []Info `json:"epochs"`
	}
	getJSON(t, srv, "/v1/epochs", &epochs)
	if len(epochs.Epochs) != 3 || epochs.Epochs[2].ID != 2 {
		t.Errorf("epochs %+v", epochs)
	}

	var top struct {
		Epoch int      `json:"epoch"`
		Top   []ASRank `json:"top"`
	}
	getJSON(t, srv, "/v1/top?k=2", &top)
	if top.Epoch != 2 || len(top.Top) != 2 || top.Top[0].ASN != 64500 {
		t.Errorf("top %+v", top)
	}
	getJSON(t, srv, "/v1/top?epoch=0&k=1", &top)
	if top.Epoch != 0 || len(top.Top) != 1 {
		t.Errorf("top@0 %+v", top)
	}

	var view struct {
		ASView
		Series []EpochValue `json:"series"`
	}
	getJSON(t, srv, "/v1/as/64500?k=1", &view)
	if view.ASN != 64500 || view.TotalServices != 2 || len(view.Services) != 1 {
		t.Errorf("as view %+v", view)
	}
	if len(view.Series) != 3 || view.Series[2].Activity != 143.5 {
		t.Errorf("as series %+v", view.Series)
	}

	var diff DiffDocument
	getJSON(t, srv, "/v1/diff/0/2?min_shift=0.001", &diff)
	if diff.EpochA != 0 || diff.EpochB != 2 || len(diff.Appeared) != 2 {
		t.Errorf("diff %+v", diff)
	}
}

func TestServerMapFormats(t *testing.T) {
	s := storeWith(t, 1)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	var doc struct {
		ActivePrefixes []string `json:"active_prefixes"`
	}
	getJSON(t, srv, "/v1/map/0", &doc)
	if len(doc.ActivePrefixes) != 3 {
		t.Errorf("map doc %+v", doc)
	}

	code, bin := get(t, srv, "/v1/map/0?format=binary")
	if code != http.StatusOK {
		t.Fatalf("binary status %d", code)
	}
	if !bytes.Equal(bin, s.Latest().Encoded) {
		t.Error("binary body differs from the epoch's encoding")
	}
	if _, err := DecodeDocument(bin); err != nil {
		t.Errorf("binary body does not decode: %v", err)
	}

	// Responses are deterministic: the same query twice yields the same
	// bytes (the smoke test in CI relies on this).
	_, a := get(t, srv, "/v1/map/0")
	_, b := get(t, srv, "/v1/map/0")
	if !bytes.Equal(a, b) {
		t.Error("JSON map response not deterministic")
	}
}

func TestServerErrors(t *testing.T) {
	srv := httptest.NewServer(NewHandler(storeWith(t, 1)))
	defer srv.Close()

	for path, want := range map[string]int{
		"/v1/map/9":              http.StatusNotFound,
		"/v1/map/x":              http.StatusBadRequest,
		"/v1/map/0?format=xml":   http.StatusBadRequest,
		"/v1/as/4242":            http.StatusNotFound,
		"/v1/as/zzz":             http.StatusBadRequest,
		"/v1/as/64500?k=x":       http.StatusBadRequest,
		"/v1/as/64500?epoch=9":   http.StatusNotFound,
		"/v1/top?epoch=nine":     http.StatusNotFound,
		"/v1/diff/0/9":           http.StatusNotFound,
		"/v1/diff/a/b":           http.StatusBadRequest,
		"/v1/diff/0/0?min_shift": http.StatusOK,
		"/v1/link/1/2":           http.StatusNotFound,
		"/v1/nope":               http.StatusNotFound,
	} {
		code, body := get(t, srv, path)
		if code != want {
			t.Errorf("GET %s: status %d, want %d (%s)", path, code, want, body)
		}
		if code != http.StatusOK && path != "/v1/nope" {
			var e errorBody
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("GET %s: error body %q not structured", path, body)
			}
		}
	}
}

func TestServerEmptyStore(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewStore()))
	defer srv.Close()
	code, _ := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Errorf("healthz on empty store: %d", code)
	}
	code, _ = get(t, srv, "/v1/top")
	if code != http.StatusNotFound {
		t.Errorf("top on empty store: %d", code)
	}
}

// TestServerWrongMethodIs405 locks the routing contract: a wrong-method hit
// on a registered route is 405 Method Not Allowed (with Allow set), never a
// 404 — clients distinguish "no such resource" from "wrong verb".
func TestServerWrongMethodIs405(t *testing.T) {
	srv := httptest.NewServer(NewHandler(storeWith(t, 1)))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/v1/epochs", "/v1/top", "/v1/map/0", "/v1/as/3000", "/v1/diff/0/0"} {
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(nil))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
			t.Errorf("POST %s: Allow = %q, want \"GET, HEAD\"", path, allow)
		}
	}
	// An unregistered path stays a plain 404.
	resp, err := srv.Client().Post(srv.URL+"/v1/nope", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /v1/nope: status %d, want 404", resp.StatusCode)
	}
}

// TestHandlerInstrumentation checks every route reports into the metrics
// registry under its pattern label.
func TestHandlerInstrumentation(t *testing.T) {
	prev := obs.Swap(obs.NewSet())
	defer obs.Swap(prev)
	srv := httptest.NewServer(NewHandler(storeWith(t, 1)))
	defer srv.Close()
	get(t, srv, "/healthz")
	get(t, srv, "/v1/top?k=1")
	get(t, srv, "/v1/top?epoch=99") // 404 → 4xx class
	reg := obs.Metrics()
	if got := reg.Counter("itm_http_requests_total", "HTTP requests served, by route pattern and status class.",
		obs.L("route", "GET /v1/top"), obs.L("class", "2xx")).Value(); got != 1 {
		t.Errorf("GET /v1/top 2xx = %d, want 1", got)
	}
	if got := reg.Counter("itm_http_requests_total", "HTTP requests served, by route pattern and status class.",
		obs.L("route", "GET /v1/top"), obs.L("class", "4xx")).Value(); got != 1 {
		t.Errorf("GET /v1/top 4xx = %d, want 1", got)
	}
	if got := reg.Counter("itm_http_requests_total", "HTTP requests served, by route pattern and status class.",
		obs.L("route", "GET /healthz"), obs.L("class", "2xx")).Value(); got != 1 {
		t.Errorf("GET /healthz 2xx = %d, want 1", got)
	}
}
