package mapstore

import (
	"bytes"
	"fmt"

	"itmap/internal/mapstore/wal"
	"itmap/internal/obs"
)

// This file glues the store to its write-ahead log. The coupling is thin
// because the WAL journals exactly the store's canonical epoch encoding:
// replay decodes each record and re-ingests it through the ordinary Append
// path, and the codec's decode→re-encode byte-identity guarantees the
// recovered store's Encoded bytes — and therefore every ETag derived from
// them — match the pre-crash store bit for bit.

// AttachWAL journals every future append through w. Append only returns
// success after the epoch is fsynced; a journaling failure fails the append
// and the epoch is not published. Attach before the first append (or right
// after RecoverStore, which does it for you).
func (s *Store) AttachWAL(w *wal.WAL) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = w
}

// RecoverStore rebuilds a store from what wal.Open replayed, verifies the
// canonical-bytes identity for every epoch, and attaches the WAL so new
// appends journal after the recovered tail.
func RecoverStore(w *wal.WAL, rec *wal.Recovery) (*Store, error) {
	s := NewStore()
	for _, r := range rec.Records {
		doc, err := DecodeDocument(r.Payload)
		if err != nil {
			return nil, fmt.Errorf("mapstore: recover epoch %d: %w", r.ID, err)
		}
		e, err := s.Append(r.At, doc)
		if err != nil {
			return nil, fmt.Errorf("mapstore: recover epoch %d: %w", r.ID, err)
		}
		// The replayed epoch must be indistinguishable from the journaled
		// one: same dense ID, same canonical bytes. A mismatch means the
		// codec round-trip broke, which would silently fork ETags — refuse.
		if e.ID != r.ID {
			return nil, fmt.Errorf("mapstore: recover epoch %d: store assigned ID %d", r.ID, e.ID)
		}
		if !bytes.Equal(e.Encoded, r.Payload) {
			return nil, fmt.Errorf("mapstore: recover epoch %d: canonical encoding diverged (%d vs %d journaled bytes)",
				r.ID, len(e.Encoded), len(r.Payload))
		}
	}
	obs.C("itm_wal_replayed_epochs_total", "Epochs rebuilt from the WAL at recovery.").
		Add(uint64(len(rec.Records)))
	s.AttachWAL(w)
	return s, nil
}
