// Package wal is the map store's durability layer: an append-only journal
// of ITMB-encoded epochs with CRC-checksummed, length-prefixed records,
// fsync-on-append, torn-tail repair, and atomic snapshot compaction.
//
// On-disk layout (two files under one directory, same record stream format):
//
//	snapshot.itwl   compacted prefix, replaced atomically (write temp + rename)
//	journal.itwl    records appended since the last compaction
//
// File format:
//
//	header    magic "ITWL" | format version (1)
//	record    u32 LE payload length | u32 LE CRC-32C of payload | payload
//	payload   uvarint epoch ID | u64 LE simtime bits | ITMB document bytes
//
// Recovery replays snapshot then journal. A crash mid-append leaves a torn
// record at the journal's tail; replay detects it (short header, short
// payload, or checksum mismatch at the cut) and truncates the file back to
// the last whole record — every fully-fsynced epoch survives, the torn one
// never existed. Journal records whose epoch ID is already covered by the
// snapshot are skipped, which makes the compaction sequence crash-safe at
// every intermediate step: the rename is atomic, and a stale journal tail
// is inert.
//
// The payload bytes are exactly the store's canonical epoch encoding, so a
// recovered store rebuilds byte-identical epochs and ETags (mapstore
// verifies this on replay).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"sync"

	"itmap/internal/obs"
	"itmap/internal/simtime"
)

// Magic identifies a WAL file (snapshot or journal).
var Magic = [4]byte{'I', 'T', 'W', 'L'}

// FormatVersion is the file format this package reads and writes.
const FormatVersion = 1

// headerSize is the file header: magic + version byte.
const headerSize = len(Magic) + 1

// recordHeaderSize prefixes every record: payload length + CRC-32C.
const recordHeaderSize = 8

// maxRecordBytes bounds a single record (a full-scale epoch is ~1 MB; this
// leaves three orders of magnitude of headroom). Larger length fields are
// corruption, not data.
const maxRecordBytes = 1 << 30

// Typed scan errors. Scanning never panics: arbitrary bytes yield a valid
// record prefix plus exactly one of these (see FuzzReplayWAL).
var (
	// ErrBadHeader: the file does not start with the ITWL magic + version.
	ErrBadHeader = errors.New("wal: bad file header")
	// ErrTornRecord: the file ends mid-record — the torn tail an append
	// interrupted by a crash leaves. Recoverable by truncating to the last
	// whole record.
	ErrTornRecord = errors.New("wal: torn record")
	// ErrBadChecksum: a record's payload does not match its CRC — a partial
	// flush whose length field survived, or bit rot.
	ErrBadChecksum = errors.New("wal: record checksum mismatch")
	// ErrBadRecord: a record frames correctly but its payload is malformed
	// (impossible length, short epoch header).
	ErrBadRecord = errors.New("wal: malformed record payload")
	// ErrClosed: the WAL has been closed (or poisoned by an unrepairable
	// I/O failure) and accepts no further appends.
	ErrClosed = errors.New("wal: closed")
)

// crcTable is the Castagnoli polynomial, the standard journal checksum.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled epoch: its dense ID, the simulated time of its
// sweep, and the canonical ITMB encoding of its document.
type Record struct {
	ID      int
	At      simtime.Time
	Payload []byte
}

// appendRecord encodes r onto dst.
func appendRecord(dst []byte, r Record) []byte {
	payload := make([]byte, 0, binary.MaxVarintLen64+8+len(r.Payload))
	payload = binary.AppendUvarint(payload, uint64(r.ID))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(float64(r.At)))
	payload = append(payload, r.Payload...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// ScanRecords parses a WAL file image. It returns every whole, checksummed
// record in order, the byte offset the valid prefix ends at, and nil if the
// file parsed completely — otherwise exactly one of ErrBadHeader,
// ErrTornRecord, ErrBadChecksum, or ErrBadRecord describing why the scan
// stopped. Re-scanning data[:valid] always parses cleanly: valid is the
// truncation point torn-tail repair uses.
func ScanRecords(data []byte) (recs []Record, valid int, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < headerSize {
		// A crash during file creation can leave a partial header.
		return nil, 0, ErrTornRecord
	}
	if [4]byte(data[:4]) != Magic || data[4] != FormatVersion {
		return nil, 0, ErrBadHeader
	}
	off := headerSize
	for off < len(data) {
		rest := data[off:]
		if len(rest) < recordHeaderSize {
			return recs, off, ErrTornRecord
		}
		length := int(binary.LittleEndian.Uint32(rest))
		sum := binary.LittleEndian.Uint32(rest[4:])
		if length < 9 || length > maxRecordBytes {
			// A payload can't be shorter than uvarint ID + 8 time bytes,
			// and an absurd length field is corruption, not data.
			return recs, off, ErrBadRecord
		}
		if len(rest) < recordHeaderSize+length {
			return recs, off, ErrTornRecord
		}
		payload := rest[recordHeaderSize : recordHeaderSize+length]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, ErrBadChecksum
		}
		id, n := binary.Uvarint(payload)
		if n <= 0 || len(payload) < n+8 || id > math.MaxInt32 {
			return recs, off, ErrBadRecord
		}
		at := math.Float64frombits(binary.LittleEndian.Uint64(payload[n:]))
		recs = append(recs, Record{ID: int(id), At: simtime.Time(at), Payload: payload[n+8:]})
		off += recordHeaderSize + length
	}
	return recs, off, nil
}

// Options configures Open.
type Options struct {
	// Dir is the WAL directory (created if absent).
	Dir string
	// FS overrides the file system (nil = real files).
	FS FS
	// CompactEvery folds the journal into a fresh snapshot once it holds
	// this many records (0 = default 64, negative = never compact).
	CompactEvery int
}

// DefaultCompactEvery is the journal length that triggers compaction when
// Options.CompactEvery is zero.
const DefaultCompactEvery = 64

// Recovery reports what Open found.
type Recovery struct {
	// Records is the full recovered epoch sequence, snapshot then journal.
	Records []Record
	// SnapshotRecords and JournalRecords split Records by origin (journal
	// records shadowed by the snapshot count for neither).
	SnapshotRecords int
	JournalRecords  int
	// TruncatedBytes is how many torn-tail bytes replay cut off the
	// journal (0 after a clean shutdown).
	TruncatedBytes int64
}

// WAL is an open write-ahead log. Appends are serialized by the caller's
// write path (the store's append mutex); the WAL adds its own lock so
// misuse degrades to blocking, not corruption.
type WAL struct {
	fs           FS
	dir          string
	snapPath     string
	journalPath  string
	compactEvery int

	mu sync.Mutex
	//itm:guardedby mu
	journal File
	//itm:guardedby mu
	journalSize int64 // bytes known good (header + whole records)
	//itm:guardedby mu
	journalRecords int
	//itm:guardedby mu
	records []Record // every live epoch, for compaction
	//itm:guardedby mu
	nextID int
	//itm:guardedby mu
	failed error
}

func path(dir, name string) string {
	if dir == "" {
		return name
	}
	return dir + "/" + name
}

// declareMetrics registers the WAL families so a fresh process exposes
// their HELP/TYPE headers before any append or replay.
func declareMetrics() {
	m := obs.Metrics()
	m.Declare(obs.KindCounter, "itm_wal_appends_total", "Epoch records appended (and fsynced) to the journal.")
	m.Declare(obs.KindCounter, "itm_wal_append_bytes_total", "Bytes appended to the journal, record framing included.")
	m.Declare(obs.KindCounter, "itm_wal_compactions_total", "Journal-into-snapshot compactions completed.")
	m.Declare(obs.KindCounter, "itm_wal_repairs_total", "Failed appends rolled back by truncating the journal to the last good record.")
	m.Declare(obs.KindCounter, "itm_wal_replayed_epochs_total", "Epochs rebuilt from the WAL at recovery.")
	m.Declare(obs.KindCounter, "itm_wal_truncated_bytes_total", "Torn-tail bytes cut from the journal during replay.")
}

// Open replays the WAL under dir (snapshot, then journal), repairs a torn
// journal tail by truncating to the last whole record, and returns the WAL
// ready for appends plus what it recovered. A corrupt snapshot is fatal —
// snapshots are written atomically, so damage there is not a crash
// artifact.
func Open(opts Options) (*WAL, *Recovery, error) {
	declareMetrics()
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	compact := opts.CompactEvery
	if compact == 0 {
		compact = DefaultCompactEvery
	}
	w := &WAL{
		fs:           fsys,
		dir:          opts.Dir,
		snapPath:     path(opts.Dir, "snapshot.itwl"),
		journalPath:  path(opts.Dir, "journal.itwl"),
		compactEvery: compact,
	}
	if err := fsys.MkdirAll(opts.Dir); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	// A temp snapshot left by a crash mid-compaction is garbage by
	// construction (the rename never happened).
	_ = fsys.Remove(w.snapPath + ".tmp")

	rec := &Recovery{}

	// Snapshot: must parse completely or not exist.
	if data, err := fsys.ReadFile(w.snapPath); err == nil {
		recs, _, serr := ScanRecords(data)
		if serr != nil {
			return nil, nil, fmt.Errorf("wal: snapshot %s: %w", w.snapPath, serr)
		}
		for i, r := range recs {
			if r.ID != i {
				return nil, nil, fmt.Errorf("wal: snapshot %s: epoch %d at position %d: %w", w.snapPath, r.ID, i, ErrBadRecord)
			}
		}
		w.records = recs
		rec.SnapshotRecords = len(recs)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}

	// Journal: torn tails are expected crash artifacts — truncate and go on.
	jdata, err := fsys.ReadFile(w.journalPath)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		jdata = nil
	case err != nil:
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	jrecs, valid, serr := ScanRecords(jdata)
	if serr != nil {
		if errors.Is(serr, ErrBadHeader) {
			// Not a WAL journal at all: refuse to repair over foreign data.
			return nil, nil, fmt.Errorf("wal: journal %s: %w", w.journalPath, serr)
		}
		rec.TruncatedBytes = int64(len(jdata) - valid)
		if err := fsys.Truncate(w.journalPath, int64(valid)); err != nil {
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		obs.C("itm_wal_truncated_bytes_total", "Torn-tail bytes cut from the journal during replay.").
			Add(uint64(rec.TruncatedBytes))
	}
	w.journalSize = int64(valid)
	for _, r := range jrecs {
		if r.ID < len(w.records) {
			// Stale pre-compaction tail, already covered by the snapshot.
			continue
		}
		if r.ID != len(w.records) {
			return nil, nil, fmt.Errorf("wal: journal %s: epoch %d after %d epochs: %w",
				w.journalPath, r.ID, len(w.records), ErrBadRecord)
		}
		w.records = append(w.records, r)
		rec.JournalRecords++
		w.journalRecords++
	}
	w.nextID = len(w.records)
	rec.Records = w.records

	if err := w.openJournal(valid < headerSize); err != nil {
		return nil, nil, err
	}
	return w, rec, nil
}

// openJournal (re)opens the append handle, writing the file header when the
// journal is empty (or was truncated below a whole header). The caller
// guarantees exclusive access: Open owns the still-unshared WAL.
//itm:locked mu
func (w *WAL) openJournal(needHeader bool) error {
	if needHeader && w.journalSize < int64(headerSize) {
		// A torn header was truncated to < headerSize; start the file over.
		if w.journalSize > 0 {
			if err := w.fs.Truncate(w.journalPath, 0); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
		f, err := w.fs.OpenAppend(w.journalPath)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		hdr := append(append([]byte(nil), Magic[:]...), FormatVersion)
		if _, err := f.Write(hdr); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		w.journal = f
		w.journalSize = int64(headerSize)
		return nil
	}
	f, err := w.fs.OpenAppend(w.journalPath)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.journal = f
	return nil
}

// Len returns the number of live epochs the WAL holds.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.records)
}

// JournalRecords returns how many records sit in the journal since the last
// compaction (tests and compaction diagnostics).
func (w *WAL) JournalRecords() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.journalRecords
}

// Append journals one epoch's canonical encoding and fsyncs before
// returning, so a successful Append survives any later crash. On a write
// or fsync failure the journal is rolled back to the last whole record and
// the error returned — the caller's epoch was NOT made durable, but the
// WAL stays usable and the same append may be retried. Only a failed
// rollback poisons the WAL.
func (w *WAL) Append(at simtime.Time, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	rec := Record{ID: w.nextID, At: at, Payload: payload}
	buf := appendRecord(nil, rec)
	if _, err := w.journal.Write(buf); err != nil {
		return w.rollback(err)
	}
	if err := w.journal.Sync(); err != nil {
		return w.rollback(err)
	}
	w.journalSize += int64(len(buf))
	w.journalRecords++
	w.records = append(w.records, rec)
	w.nextID++
	obs.C("itm_wal_appends_total", "Epoch records appended (and fsynced) to the journal.").Inc()
	obs.C("itm_wal_append_bytes_total", "Bytes appended to the journal, record framing included.").
		Add(uint64(len(buf)))
	if w.compactEvery > 0 && w.journalRecords >= w.compactEvery {
		// Compaction failure is not data loss — the journal still holds
		// everything — so it degrades to a longer journal, not an error.
		_ = w.compactLocked()
	}
	return nil
}

// rollback undoes a failed append: the journal is truncated back to the
// last whole record and the handle reopened, so the torn bytes the failed
// write may have landed can never replay. An unrepairable rollback poisons
// the WAL — better no appends than silent divergence.
//itm:locked mu
func (w *WAL) rollback(cause error) error {
	_ = w.journal.Close()
	if err := w.fs.Truncate(w.journalPath, w.journalSize); err != nil {
		w.failed = fmt.Errorf("wal: append failed (%v) and rollback failed: %w", cause, err)
		return w.failed
	}
	f, err := w.fs.OpenAppend(w.journalPath)
	if err != nil {
		w.failed = fmt.Errorf("wal: append failed (%v) and reopen failed: %w", cause, err)
		return w.failed
	}
	w.journal = f
	obs.C("itm_wal_repairs_total", "Failed appends rolled back by truncating the journal to the last good record.").Inc()
	return fmt.Errorf("wal: append: %w", cause)
}

// Compact folds every live epoch into a fresh snapshot and empties the
// journal. Crash-safe at every step: the snapshot replaces atomically
// (write temp, fsync, rename, fsync dir), and until the journal truncate
// lands its now-stale records are skipped on replay by epoch ID.
func (w *WAL) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	return w.compactLocked()
}

//itm:locked mu
func (w *WAL) compactLocked() error {
	tmp := w.snapPath + ".tmp"
	f, err := w.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	buf := append(append([]byte(nil), Magic[:]...), FormatVersion)
	for _, r := range w.records {
		buf = appendRecord(buf, r)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := w.fs.Rename(tmp, w.snapPath); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	// The snapshot now covers everything; reset the journal to bare header.
	_ = w.journal.Close()
	if err := w.fs.Truncate(w.journalPath, int64(headerSize)); err != nil {
		// Snapshot landed; a stale journal only costs replay skips. Reopen
		// and carry on appending after the stale tail.
		f, ferr := w.fs.OpenAppend(w.journalPath)
		if ferr != nil {
			w.failed = fmt.Errorf("wal: compact: journal reopen: %w", ferr)
			return w.failed
		}
		w.journal = f
		return fmt.Errorf("wal: compact: journal reset: %w", err)
	}
	f2, err := w.fs.OpenAppend(w.journalPath)
	if err != nil {
		w.failed = fmt.Errorf("wal: compact: journal reopen: %w", err)
		return w.failed
	}
	w.journal = f2
	w.journalSize = int64(headerSize)
	w.journalRecords = 0
	obs.C("itm_wal_compactions_total", "Journal-into-snapshot compactions completed.").Inc()
	return nil
}

// Close fsyncs and closes the journal. The WAL accepts no appends
// afterwards; the files always end on a record boundary.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		if errors.Is(w.failed, ErrClosed) {
			return nil
		}
		return w.failed
	}
	err := w.journal.Sync()
	if cerr := w.journal.Close(); err == nil {
		err = cerr
	}
	w.failed = ErrClosed
	return err
}
