package wal

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The WAL talks to storage through a narrow file-system interface so crash
// safety is provable: production runs on OSFS (real files, real fsync),
// tests run on MemFS, and the recovery invariants are swept under FaultFS —
// a seeded fault plan that cuts writes short, fails fsyncs, and "crashes
// the machine" after a chosen number of durable bytes. Every fault decision
// is a pure function of the plan, so a failing seed replays exactly.

// File is the writable handle the WAL appends through.
type File interface {
	io.Writer
	// Sync flushes the file's written bytes to durable storage.
	Sync() error
	Close() error
}

// FS is the file-system surface the WAL needs. Paths are plain strings;
// implementations may interpret them relative to any root.
type FS interface {
	MkdirAll(dir string) error
	// ReadFile returns the file's full contents; a missing file surfaces
	// fs.ErrNotExist.
	ReadFile(name string) ([]byte, error)
	// OpenAppend opens name for appending, creating it when absent.
	OpenAppend(name string) (File, error)
	// Create opens name truncated to empty, creating it when absent.
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	Truncate(name string, size int64) error
	Remove(name string) error
	// SyncDir flushes directory metadata (the rename durability barrier).
	SyncDir(dir string) error
}

// --- OSFS -------------------------------------------------------------------

// OSFS is the production file system.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (OSFS) Rename(oldname, newname string) error     { return os.Rename(oldname, newname) }
func (OSFS) Truncate(name string, size int64) error   { return os.Truncate(name, size) }
func (OSFS) Remove(name string) error                 { return os.Remove(name) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Best effort: some filesystems refuse directory fsync; rename itself
	// is already atomic, the dir sync only narrows the post-crash window.
	_ = d.Sync()
	return d.Close()
}

// --- MemFS ------------------------------------------------------------------

// MemFS is an in-memory FS for deterministic tests. It models the page
// cache / durable-storage split: Write lands in the file's data, Sync marks
// it durable, and DurableImage returns what a crash would preserve.
type MemFS struct {
	mu sync.Mutex
	//itm:guardedby mu
	files map[string]*memFile
}

type memFile struct {
	data    []byte
	durable int // prefix of data known flushed (advanced by Sync)
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS { return &MemFS{files: map[string]*memFile{}} }

func (m *MemFS) MkdirAll(string) error { return nil }

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil, fmt.Errorf("memfs: %s: %w", name, fs.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

// file returns (creating on demand) the named file's record.
//itm:locked mu
func (m *MemFS) file(name string, truncate bool) *memFile {
	f := m.files[name]
	if f == nil {
		f = &memFile{}
		m.files[name] = f
	}
	if truncate {
		f.data = f.data[:0]
		f.durable = 0
	}
	return f
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.file(name, true)
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[oldname]
	if f == nil {
		return fmt.Errorf("memfs: %s: %w", oldname, fs.ErrNotExist)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return fmt.Errorf("memfs: %s: %w", name, fs.ErrNotExist)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("memfs: truncate %s to %d (have %d)", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.durable > int(size) {
		f.durable = int(size)
	}
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.files[name] == nil {
		return fmt.Errorf("memfs: %s: %w", name, fs.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) SyncDir(string) error { return nil }

// Files returns the stored file names, sorted (tests).
func (m *MemFS) Files() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type memHandle struct {
	fs   *MemFS
	name string
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f := h.fs.file(h.name, false)
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f := h.fs.file(h.name, false)
	f.durable = len(f.data)
	return nil
}

func (h *memHandle) Close() error { return nil }

// --- FaultFS ----------------------------------------------------------------

// Injected fault errors. ErrCrash poisons the FS: once a crash fires, every
// later operation fails with it, like a process whose machine went down.
var (
	ErrCrash      = errors.New("walfs: simulated crash")
	ErrShortWrite = errors.New("walfs: injected short write")
	ErrSyncFailed = errors.New("walfs: injected fsync failure")
)

// FaultPlan is a deterministic fault schedule for one FaultFS. The zero
// plan injects nothing.
type FaultPlan struct {
	// CrashAfterBytes crashes the FS once this many total bytes have been
	// written across all files; the write that crosses the boundary lands
	// only its prefix (the torn tail a real power cut leaves). 0 = never.
	CrashAfterBytes int64
	// ShortWriteEvery cuts every Nth write in half, landing the prefix and
	// returning ErrShortWrite. 0 = never.
	ShortWriteEvery int
	// FailSyncEvery fails every Nth Sync with ErrSyncFailed (the bytes stay
	// in the "page cache", not durable). 0 = never.
	FailSyncEvery int
}

// FaultFS wraps a MemFS with a FaultPlan. All fault decisions are counts
// against the plan — no randomness inside the FS, so a scenario replays
// identically; tests derive the plan itself from a seed.
type FaultFS struct {
	mem  *MemFS
	plan FaultPlan

	mu sync.Mutex
	//itm:guardedby mu
	written int64
	//itm:guardedby mu
	writes int
	//itm:guardedby mu
	syncs int
	//itm:guardedby mu
	crashed bool
}

// NewFaultFS wraps mem with plan.
func NewFaultFS(mem *MemFS, plan FaultPlan) *FaultFS {
	return &FaultFS{mem: mem, plan: plan}
}

// Crashed reports whether the simulated crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// CrashImage returns the file system a reboot would find: everything
// written up to the crash (fsynced bytes are durable for sure; the torn
// in-flight write survives as the partial tail it left on the device).
func (f *FaultFS) CrashImage() *MemFS {
	f.mem.mu.Lock()
	defer f.mem.mu.Unlock()
	files := make(map[string]*memFile, len(f.mem.files))
	for name, file := range f.mem.files {
		files[name] = &memFile{data: append([]byte(nil), file.data...), durable: len(file.data)}
	}
	return &MemFS{files: files}
}

func (f *FaultFS) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrash
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.mem.MkdirAll(dir)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.mem.ReadFile(name)
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	h, err := f.mem.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	h, err := f.mem.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h}, nil
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.mem.Rename(oldname, newname)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.mem.Truncate(name, size)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.mem.Remove(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.mem.SyncDir(dir)
}

type faultHandle struct {
	fs    *FaultFS
	inner File
}

func (h *faultHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	if h.fs.crashed {
		h.fs.mu.Unlock()
		return 0, ErrCrash
	}
	h.fs.writes++
	// Crash boundary: land only the prefix that fit before the power cut.
	if c := h.fs.plan.CrashAfterBytes; c > 0 && h.fs.written+int64(len(p)) > c {
		keep := int(c - h.fs.written)
		if keep < 0 {
			keep = 0
		}
		h.fs.written = c
		h.fs.crashed = true
		h.fs.mu.Unlock()
		if keep > 0 {
			_, _ = h.inner.Write(p[:keep])
		}
		return keep, ErrCrash
	}
	if n := h.fs.plan.ShortWriteEvery; n > 0 && h.fs.writes%n == 0 && len(p) > 1 {
		keep := len(p) / 2
		h.fs.written += int64(keep)
		h.fs.mu.Unlock()
		_, _ = h.inner.Write(p[:keep])
		return keep, ErrShortWrite
	}
	h.fs.written += int64(len(p))
	h.fs.mu.Unlock()
	return h.inner.Write(p)
}

func (h *faultHandle) Sync() error {
	h.fs.mu.Lock()
	if h.fs.crashed {
		h.fs.mu.Unlock()
		return ErrCrash
	}
	h.fs.syncs++
	if n := h.fs.plan.FailSyncEvery; n > 0 && h.fs.syncs%n == 0 {
		h.fs.mu.Unlock()
		return ErrSyncFailed
	}
	h.fs.mu.Unlock()
	return h.inner.Sync()
}

func (h *faultHandle) Close() error {
	if err := h.fs.check(); err != nil {
		return err
	}
	return h.inner.Close()
}
