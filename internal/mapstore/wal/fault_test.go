package wal

import (
	"bytes"
	"errors"
	"testing"

	"itmap/internal/obs"
	"itmap/internal/randx"
	"itmap/internal/simtime"
)

// TestCrashRecoverySweep is the deterministic crash proof: for a spread of
// seeds, a FaultFS cuts the power after a seed-chosen number of written
// bytes while the WAL appends (and auto-compacts). Rebooting from the
// crash image must recover exactly the appends that returned nil —
// byte-identical, nothing extra — and the recovered WAL must keep working.
func TestCrashRecoverySweep(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	for seed := int64(1); seed <= 40; seed++ {
		rng := randx.New(seed)
		plan := FaultPlan{CrashAfterBytes: 5 + int64(rng.Intn(4000))}
		compactEvery := 2 + rng.Intn(5)
		ffs := NewFaultFS(NewMemFS(), plan)

		w, _, err := Open(Options{Dir: "wal", FS: ffs, CompactEvery: compactEvery})
		if err != nil {
			// Crash during the very first header write: nothing durable yet.
			if !errors.Is(err, ErrCrash) {
				t.Fatalf("seed %d: Open: %v", seed, err)
			}
			continue
		}
		var acked [][]byte
		for i := 0; i < 200; i++ {
			p := testPayload(i)
			if err := w.Append(simtime.Time(i), p); err != nil {
				break
			}
			acked = append(acked, p)
		}
		if !ffs.Crashed() {
			t.Fatalf("seed %d: plan %+v never crashed in 200 appends", seed, plan)
		}

		// Reboot: replay whatever the device kept, torn tail and all.
		img := ffs.CrashImage()
		w2, rec, err := Open(Options{Dir: "wal", FS: img, CompactEvery: compactEvery})
		if err != nil {
			t.Fatalf("seed %d: recovery open: %v", seed, err)
		}
		if len(rec.Records) != len(acked) {
			t.Fatalf("seed %d (crash after %d bytes): recovered %d epochs, acked %d (snapshot %d, journal %d, truncated %d)",
				seed, plan.CrashAfterBytes, len(rec.Records), len(acked),
				rec.SnapshotRecords, rec.JournalRecords, rec.TruncatedBytes)
		}
		for i, r := range rec.Records {
			if r.ID != i || !bytes.Equal(r.Payload, acked[i]) {
				t.Fatalf("seed %d: recovered record %d diverges from acked append", seed, i)
			}
		}
		// Recovery is not read-only: the store must append onward.
		if err := w2.Append(simtime.Time(len(acked)), testPayload(len(acked))); err != nil {
			t.Fatalf("seed %d: append after recovery: %v", seed, err)
		}
		if w2.Len() != len(acked)+1 {
			t.Fatalf("seed %d: Len after recovery append = %d", seed, w2.Len())
		}
	}
}

// TestSyncFailureSweep: fsync failures are reported, rolled back, and never
// corrupt the journal — after any mix of failed and retried appends, a
// replay sees a clean file holding exactly the acknowledged records.
func TestSyncFailureSweep(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	for seed := int64(1); seed <= 10; seed++ {
		rng := randx.New(seed)
		mem := NewMemFS()
		ffs := NewFaultFS(mem, FaultPlan{
			FailSyncEvery:   2 + rng.Intn(4),
			ShortWriteEvery: 3 + rng.Intn(5),
		})
		w, _, err := Open(Options{Dir: "wal", FS: ffs, CompactEvery: -1})
		if err != nil {
			t.Fatalf("seed %d: Open: %v", seed, err)
		}
		var acked int
		for i := 0; i < 50; i++ {
			err := w.Append(simtime.Time(acked), testPayload(acked))
			switch {
			case err == nil:
				acked++
			case errors.Is(err, ErrSyncFailed) || errors.Is(err, ErrShortWrite):
				// Rolled back; the same epoch retries on the next loop turn.
			default:
				t.Fatalf("seed %d: append %d: %v", seed, i, err)
			}
		}
		_ = w.Close()
		data, err := mem.ReadFile("wal/journal.itwl")
		if err != nil {
			t.Fatalf("seed %d: ReadFile: %v", seed, err)
		}
		recs, valid, serr := ScanRecords(data)
		if serr != nil || valid != len(data) {
			t.Fatalf("seed %d: journal not clean after rollbacks: %v (valid %d/%d)",
				seed, serr, valid, len(data))
		}
		if len(recs) != acked {
			t.Fatalf("seed %d: journal holds %d records, acked %d", seed, len(recs), acked)
		}
	}
}
