package wal

import (
	"errors"
	"testing"

	"itmap/internal/obs"
	"itmap/internal/simtime"
)

// FuzzReplayWAL mirrors FuzzDecodeMapDocument for the durability layer:
// arbitrary journal bytes must never panic the scanner or Open — they
// either replay a valid prefix of epochs or fail with one of the typed
// errors, and the valid prefix always re-scans cleanly (the torn-tail
// repair invariant).
func FuzzReplayWAL(f *testing.F) {
	// Seed corpus: a real journal, its truncations, and corruptions.
	mem := NewMemFS()
	w, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		f.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(simtime.Time(i), testPayload(i)); err != nil {
			f.Fatalf("Append: %v", err)
		}
	}
	_ = w.Close()
	obs.Swap(obs.NewSet())
	good, err := mem.ReadFile("wal/journal.itwl")
	if err != nil {
		f.Fatalf("ReadFile: %v", err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("ITWL"))
	f.Add([]byte("not a journal at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := ScanRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d out of range [0,%d]", valid, len(data))
		}
		if err != nil {
			if !errors.Is(err, ErrBadHeader) && !errors.Is(err, ErrTornRecord) &&
				!errors.Is(err, ErrBadChecksum) && !errors.Is(err, ErrBadRecord) {
				t.Fatalf("untyped scan error: %v", err)
			}
		} else if valid != len(data) {
			t.Fatalf("clean scan stopped at %d of %d bytes", valid, len(data))
		}
		again, validAgain, errAgain := ScanRecords(data[:valid])
		if errAgain != nil || validAgain != valid || len(again) != len(recs) {
			t.Fatalf("valid prefix does not re-scan cleanly: err=%v valid=%d/%d recs=%d/%d",
				errAgain, validAgain, valid, len(again), len(recs))
		}

		// Open over the same bytes as a journal must repair or reject, never
		// panic; non-dense epoch IDs are a typed rejection.
		fs := NewMemFS()
		h, _ := fs.Create("wal/journal.itwl")
		_, _ = h.Write(data)
		w, rec, err := Open(Options{Dir: "wal", FS: fs, CompactEvery: -1})
		obs.Swap(obs.NewSet())
		if err != nil {
			if !errors.Is(err, ErrBadHeader) && !errors.Is(err, ErrBadRecord) {
				t.Fatalf("Open: untyped error: %v", err)
			}
			return
		}
		if len(rec.Records) > len(recs) {
			t.Fatalf("Open recovered %d epochs from %d scannable records", len(rec.Records), len(recs))
		}
		_ = w.Close()
	})
}
