package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"itmap/internal/obs"
	"itmap/internal/simtime"
)

func testPayload(i int) []byte {
	return []byte(fmt.Sprintf("epoch-%d canonical bytes %032d", i, i*i))
}

// appendN appends n test records and fails the test on any error.
func appendN(t *testing.T, w *WAL, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := w.Append(simtime.Time(i), testPayload(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

// wantRecords asserts recs is exactly the first n test records.
func wantRecords(t *testing.T, recs []Record, n int) {
	t.Helper()
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.ID != i {
			t.Fatalf("record %d: ID = %d", i, r.ID)
		}
		if r.At != simtime.Time(i) {
			t.Fatalf("record %d: At = %v, want %v", i, r.At, simtime.Time(i))
		}
		if !bytes.Equal(r.Payload, testPayload(i)) {
			t.Fatalf("record %d: payload %q, want %q", i, r.Payload, testPayload(i))
		}
	}
}

func TestAppendReopenRoundtrip(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	mem := NewMemFS()
	w, rec, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rec.Records) != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fresh open recovered %+v", rec)
	}
	appendN(t, w, 7)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Append(simtime.Time(99), testPayload(99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}

	w2, rec2, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	wantRecords(t, rec2.Records, 7)
	if rec2.TruncatedBytes != 0 {
		t.Fatalf("clean reopen truncated %d bytes", rec2.TruncatedBytes)
	}
	if rec2.JournalRecords != 7 || rec2.SnapshotRecords != 0 {
		t.Fatalf("recovery split = %+v", rec2)
	}
	// The reopened WAL keeps appending where the first left off.
	if err := w2.Append(simtime.Time(7), testPayload(7)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	_, rec3, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	wantRecords(t, rec3.Records, 8)
}

func TestTornTailTruncatedOnReplay(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	mem := NewMemFS()
	w, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendN(t, w, 4)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-append: junk bytes after the last whole record.
	h, err := mem.OpenAppend("wal/journal.itwl")
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	torn := []byte("TORNTAIL")
	if _, err := h.Write(torn); err != nil {
		t.Fatalf("write junk: %v", err)
	}

	_, rec, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	wantRecords(t, rec.Records, 4)
	if rec.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, len(torn))
	}
	// The repair is durable: a second replay sees a clean journal.
	_, rec2, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	if rec2.TruncatedBytes != 0 {
		t.Fatalf("second replay still truncated %d bytes", rec2.TruncatedBytes)
	}
	wantRecords(t, rec2.Records, 4)
}

func TestTornRecordMidPayloadTruncated(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	mem := NewMemFS()
	w, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendN(t, w, 3)
	_ = w.Close()
	// Cut into the last record's payload: framing says more bytes than exist.
	data, err := mem.ReadFile("wal/journal.itwl")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := mem.Truncate("wal/journal.itwl", int64(len(data)-7)); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	_, rec, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	wantRecords(t, rec.Records, 2)
	if rec.TruncatedBytes == 0 {
		t.Fatal("expected torn-tail truncation")
	}
}

func TestCompactionAndReplay(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	mem := NewMemFS()
	w, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendN(t, w, 10) // compacts at 3, 6, 9; one record left in the journal
	if jr := w.JournalRecords(); jr != 1 {
		t.Fatalf("journal holds %d records after auto-compaction, want 1", jr)
	}
	if w.Len() != 10 {
		t.Fatalf("Len = %d, want 10", w.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snap, err := mem.ReadFile("wal/snapshot.itwl")
	if err != nil {
		t.Fatalf("snapshot missing after compaction: %v", err)
	}
	srecs, _, serr := ScanRecords(snap)
	if serr != nil || len(srecs) != 9 {
		t.Fatalf("snapshot scan: %d records, err %v; want 9, nil", len(srecs), serr)
	}

	_, rec, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: 3})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	wantRecords(t, rec.Records, 10)
	if rec.SnapshotRecords != 9 || rec.JournalRecords != 1 {
		t.Fatalf("recovery split %+v, want 9 snapshot + 1 journal", rec)
	}
}

// TestStaleJournalSkippedAfterCompactionCrash covers the one compaction
// crash window a byte-count fault can't reach: the snapshot rename landed
// but the journal truncate did not, so the journal still holds records the
// snapshot already covers. Replay must skip them by epoch ID.
func TestStaleJournalSkippedAfterCompactionCrash(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	mem := NewMemFS()
	w, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendN(t, w, 5)
	_ = w.Close()
	journal, err := mem.ReadFile("wal/journal.itwl")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	// Compact (via a fresh handle), then restore the pre-compaction journal
	// bytes to fake the crash-before-truncate state.
	w2, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := w2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	_ = w2.Close()
	h, err := mem.Create("wal/journal.itwl")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := h.Write(journal); err != nil {
		t.Fatalf("restore journal: %v", err)
	}

	w3, rec, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("open with stale journal: %v", err)
	}
	wantRecords(t, rec.Records, 5)
	if rec.SnapshotRecords != 5 || rec.JournalRecords != 0 {
		t.Fatalf("recovery split %+v, want all 5 from snapshot, 0 live journal", rec)
	}
	// Appending continues after the stale tail without colliding.
	if err := w3.Append(simtime.Time(5), testPayload(5)); err != nil {
		t.Fatalf("append after stale-tail recovery: %v", err)
	}
	_, rec2, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("final open: %v", err)
	}
	wantRecords(t, rec2.Records, 6)
}

func TestFailedFsyncRollsBackAndRetries(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	mem := NewMemFS()
	// Sync #1 is the journal header at Open; fail sync #2 (first append).
	ffs := NewFaultFS(mem, FaultPlan{FailSyncEvery: 2})
	w, _, err := Open(Options{Dir: "wal", FS: ffs, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := w.Append(simtime.Time(0), testPayload(0)); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("append under failed fsync = %v, want ErrSyncFailed", err)
	}
	// The failed append rolled back: the write landed in the page cache but
	// the rollback truncated it, so nothing of record 0 can ever replay.
	if err := w.Append(simtime.Time(0), testPayload(0)); err != nil {
		t.Fatalf("retry append: %v", err)
	}
	_ = w.Close()

	_, rec, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	wantRecords(t, rec.Records, 1)
}

func TestShortWriteRollsBackAndRetries(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	mem := NewMemFS()
	// Write #1 is the journal header; cut write #2 (first append) in half.
	ffs := NewFaultFS(mem, FaultPlan{ShortWriteEvery: 2})
	w, _, err := Open(Options{Dir: "wal", FS: ffs, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := w.Append(simtime.Time(0), testPayload(0)); !errors.Is(err, ErrShortWrite) {
		t.Fatalf("append under short write = %v, want ErrShortWrite", err)
	}
	if err := w.Append(simtime.Time(0), testPayload(0)); err != nil {
		t.Fatalf("retry append: %v", err)
	}
	_ = w.Close()

	data, err := mem.ReadFile("wal/journal.itwl")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	recs, _, serr := ScanRecords(data)
	if serr != nil {
		t.Fatalf("journal not clean after rollback: %v", serr)
	}
	wantRecords(t, recs, 1)
}

func TestCloseEndsOnRecordBoundary(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	mem := NewMemFS()
	w, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendN(t, w, 3)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := mem.ReadFile("wal/journal.itwl")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	recs, valid, serr := ScanRecords(data)
	if serr != nil {
		t.Fatalf("journal after Close does not end on a record boundary: %v", serr)
	}
	if valid != len(data) {
		t.Fatalf("valid prefix %d != file size %d", valid, len(data))
	}
	wantRecords(t, recs, 3)
}

func TestCorruptSnapshotIsFatal(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	mem := NewMemFS()
	w, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendN(t, w, 4)
	if err := w.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	_ = w.Close()
	// Flip a payload byte inside the snapshot: checksum mismatch, and since
	// snapshots are written atomically this is damage, not a crash artifact.
	data, _ := mem.ReadFile("wal/snapshot.itwl")
	h, _ := mem.Create("wal/snapshot.itwl")
	data[len(data)-2] ^= 0xFF
	if _, err := h.Write(data); err != nil {
		t.Fatalf("write corrupted snapshot: %v", err)
	}
	if _, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1}); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("Open over corrupt snapshot = %v, want ErrBadChecksum", err)
	}
}

func TestForeignJournalIsFatal(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	mem := NewMemFS()
	h, _ := mem.Create("wal/journal.itwl")
	if _, err := h.Write([]byte("definitely not a WAL file, more than five bytes")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1}); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("Open over foreign journal = %v, want ErrBadHeader", err)
	}
}

func TestScanRecordsValidPrefixProperty(t *testing.T) {
	mem := NewMemFS()
	defer obs.Swap(obs.NewSet())
	w, _, err := Open(Options{Dir: "wal", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendN(t, w, 5)
	_ = w.Close()
	data, _ := mem.ReadFile("wal/journal.itwl")
	// Every possible cut point yields a clean valid prefix.
	for cut := 0; cut <= len(data); cut++ {
		recs, valid, serr := ScanRecords(data[:cut])
		if valid > cut {
			t.Fatalf("cut %d: valid %d beyond data", cut, valid)
		}
		again, validAgain, errAgain := ScanRecords(data[:valid])
		if errAgain != nil {
			t.Fatalf("cut %d: rescan of valid prefix failed: %v", cut, errAgain)
		}
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("cut %d: rescan mismatch (%d/%d records, %d/%d valid)",
				cut, len(again), len(recs), validAgain, valid)
		}
		if serr == nil && cut != valid {
			t.Fatalf("cut %d: clean scan but valid %d", cut, valid)
		}
	}
}
