package mapstore

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"itmap/internal/mapstore/wal"
	"itmap/internal/obs"
	"itmap/internal/simtime"
)

// driveFixedRequests replays the same deterministic request mix against a
// store's handler and captures everything identity-relevant: status, body,
// and ETag per request. Used on both sides of a crash so the comparison
// covers the full serving surface, not just raw epoch bytes.
func driveFixedRequests(t *testing.T, s *Store) map[string]string {
	t.Helper()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	out := map[string]string{}
	paths := []string{
		"/v1/epochs",
		"/v1/map/0",
		"/v1/map/1?format=binary",
		"/v1/map/2",
		"/v1/top?k=2",
		"/v1/diff/0/2",
		"/v1/activity/64500",
	}
	for _, p := range paths {
		resp := getFull(t, srv, p, "")
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		out[p] = resp.Header.Get("ETag") + "|" + string(body)
		// Revalidate with the returned ETag: must be a 304 on both sides.
		if et := resp.Header.Get("ETag"); et != "" {
			re := getFull(t, srv, p, et)
			if re.StatusCode != http.StatusNotModified {
				t.Fatalf("GET %s with If-None-Match %s: %d, want 304", p, et, re.StatusCode)
			}
		}
	}
	return out
}

// stripWALLines removes the replay-only families from a stable exposition.
// They are the legitimate divergences across a crash: the original process
// counted journal appends where the recovered one counts replays, and
// replay decodes each journaled document where the original encoded them.
// Everything else — mapstore, cache, admission, HTTP counters — must match
// exactly.
func stripWALLines(exposition string) string {
	var b strings.Builder
	for _, line := range strings.Split(exposition, "\n") {
		if strings.Contains(line, "itm_wal_") || strings.Contains(line, "itm_codec_decoded_bytes_total") {
			continue
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// TestETagIdentityAcrossRecovery extends the PR 6 ETag-identity contract
// over a crash: a store rebuilt from the WAL (with a torn tail to repair)
// serves byte-identical bodies, identical strong ETags, honors them with
// 304s, and reproduces the same stable metric exposition as the pre-crash
// process under the same request mix.
func TestETagIdentityAcrossRecovery(t *testing.T) {
	mem := wal.NewMemFS()

	// --- original process: journal three epochs, serve, then "crash".
	obs.Swap(obs.NewSet())
	w1, _, err := wal.Open(wal.Options{Dir: "wal", FS: mem, CompactEvery: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s1 := NewStore()
	s1.AttachWAL(w1)
	for d := 0; d < 3; d++ {
		if _, err := s1.Append(simtime.Time(d)*simtime.Day, docAt(d)); err != nil {
			t.Fatalf("append day %d: %v", d, err)
		}
	}
	before := driveFixedRequests(t, s1)
	stableBefore := stripWALLines(obs.Metrics().StableExposition())
	var etagsBefore []string
	for _, e := range s1.Snapshot() {
		etagsBefore = append(etagsBefore, e.ETag)
	}
	// Crash: no Close. The journal additionally gets a torn half-record, as
	// if the power died mid-append.
	h, err := mem.OpenAppend("wal/journal.itwl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte{0xFF, 0xEE, 0xDD, 0x00, 0x10}); err != nil {
		t.Fatal(err)
	}

	// --- recovered process: fresh obs, fresh store, same WAL dir.
	obs.Swap(obs.NewSet())
	w2, rec, err := wal.Open(wal.Options{Dir: "wal", FS: mem, CompactEvery: 2})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	if rec.TruncatedBytes != 5 {
		t.Fatalf("TruncatedBytes = %d, want 5", rec.TruncatedBytes)
	}
	s2, err := RecoverStore(w2, rec)
	if err != nil {
		t.Fatalf("RecoverStore: %v", err)
	}
	defer obs.Swap(obs.NewSet())

	if s2.Len() != s1.Len() {
		t.Fatalf("recovered %d epochs, want %d", s2.Len(), s1.Len())
	}
	for i, e := range s2.Snapshot() {
		if e.ETag != etagsBefore[i] {
			t.Errorf("epoch %d ETag %q != pre-crash %q", i, e.ETag, etagsBefore[i])
		}
		orig, _ := s1.Epoch(i)
		if string(e.Encoded) != string(orig.Encoded) {
			t.Errorf("epoch %d canonical bytes diverged after recovery", i)
		}
	}
	after := driveFixedRequests(t, s2)
	for p, want := range before {
		if after[p] != want {
			t.Errorf("response identity broken for %s:\n pre-crash: %.120q\n recovered: %.120q", p, want, after[p])
		}
	}
	stableAfter := stripWALLines(obs.Metrics().StableExposition())
	if stableAfter != stableBefore {
		t.Errorf("stable exposition diverged across recovery:\n--- before ---\n%s\n--- after ---\n%s",
			stableBefore, stableAfter)
	}

	// Recovery is live, not read-only: the next append journals after the
	// repaired tail and keeps the ID sequence dense.
	e, err := s2.Append(3*simtime.Day, docAt(3))
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if e.ID != 3 || w2.Len() != 4 {
		t.Fatalf("post-recovery append: epoch ID %d, WAL len %d; want 3, 4", e.ID, w2.Len())
	}
}

// TestJournalFailureBlocksPublish pins the write-ahead ordering: if the
// fsync fails, Append must return the error and the epoch must NOT be
// served — the WAL can never lag the visible store.
func TestJournalFailureBlocksPublish(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	// Sync #1 is the journal header; sync #2 (the first epoch) fails.
	ffs := wal.NewFaultFS(wal.NewMemFS(), wal.FaultPlan{FailSyncEvery: 2})
	w, _, err := wal.Open(wal.Options{Dir: "wal", FS: ffs, CompactEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s := NewStore()
	s.AttachWAL(w)
	if _, err := s.Append(0, docAt(0)); !errors.Is(err, wal.ErrSyncFailed) {
		t.Fatalf("Append under failed fsync = %v, want ErrSyncFailed", err)
	}
	if s.Len() != 0 {
		t.Fatalf("unjournaled epoch was published (Len = %d)", s.Len())
	}
	// The failure rolled back cleanly; the retry both journals and publishes.
	if _, err := s.Append(0, docAt(0)); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if s.Len() != 1 || w.Len() != 1 {
		t.Fatalf("after retry: store %d epochs, WAL %d; want 1, 1", s.Len(), w.Len())
	}
}
