package mapstore

import (
	"net/http"
	"strconv"
	"sync"

	"itmap/internal/obs"
)

// Admission is the serving layer's overload valve: a bounded pool of
// in-flight request slots plus a bounded FIFO wait queue. When both are
// full — or the server is draining toward shutdown — new work is shed
// immediately with 503 + Retry-After instead of piling onto a saturated
// process. Two deliberate asymmetries:
//
//   - /healthz and /metrics bypass admission entirely: an overloaded
//     server must still answer its operators.
//   - Conditional requests (If-None-Match) queue at high priority, plain
//     requests at low: a revalidation is almost always a cached 304 costing
//     microseconds, so under pressure cached reads drain before cold fills.
//
// The valve holds no clocks. Waiters are bounded by queue *capacity*, not
// wall-time deadlines, and the Retry-After hint is a fixed configured
// value — so shed counts are a pure function of arrival order, which is
// what lets the overload tests assert exact, worker-count-invariant
// numbers (see OverloadScenario). A queued request still abandons its slot
// if the client disconnects (request context cancellation).
type Admission struct {
	maxInFlight int
	maxQueue    int
	retryAfter  string // prebaked header value, seconds

	mu sync.Mutex
	//itm:guardedby mu
	inFlight int
	//itm:guardedby mu
	queue [2][]*waiter // [priority high, low], FIFO each
	//itm:guardedby mu
	queued int // live (non-abandoned) waiters across both lanes
	//itm:guardedby mu
	draining bool
}

// Queue lanes: conditional revalidations ahead of cold reads.
const (
	laneHigh = 0
	laneLow  = 1
)

// waiter is one queued request. decided flips exactly once, under the
// Admission lock, to whichever of admit/shed/abandon wins the race.
type waiter struct {
	ch        chan bool // receives admit (true) or shed (false)
	decided   bool
	abandoned bool
}

// AdmissionConfig sizes the valve.
type AdmissionConfig struct {
	// MaxInFlight is how many requests may execute concurrently
	// (<= 0 takes the default).
	MaxInFlight int
	// MaxQueue is how many more may wait for a slot before shedding
	// starts. 0 disables queueing — shed the moment every slot is busy;
	// negative takes the default.
	MaxQueue int
	// RetryAfterSeconds is the fixed backoff hint shed responses carry
	// (<= 0 takes the default).
	RetryAfterSeconds int
}

// Defaults for AdmissionConfig: sized so a tiny-world smoke never sheds
// but a deliberate burst (loadgen -overload) reliably does.
const (
	DefaultMaxInFlight       = 64
	DefaultMaxQueue          = 256
	DefaultRetryAfterSeconds = 1
)

// NewAdmission builds the valve and declares its metric families.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = DefaultRetryAfterSeconds
	}
	declareAdmissionMetrics()
	return &Admission{
		maxInFlight: cfg.MaxInFlight,
		maxQueue:    cfg.MaxQueue,
		retryAfter:  strconv.Itoa(cfg.RetryAfterSeconds),
	}
}

func declareAdmissionMetrics() {
	m := obs.Metrics()
	m.Declare(obs.KindCounter, "itm_admission_admitted_total", "Requests granted an execution slot (immediately or after queueing).")
	m.Declare(obs.KindCounter, "itm_admission_queued_total", "Requests that waited in the admission queue before a decision.")
	m.Declare(obs.KindCounter, "itm_admission_shed_total", "Requests shed with 503 (queue full or draining).")
	m.Declare(obs.KindCounter, "itm_admission_bypass_total", "Requests on always-admitted operator routes (/healthz, /metrics).")
	m.Declare(obs.KindGauge, "itm_admission_inflight", "Requests currently holding an execution slot.")
}

// alwaysAdmit lists the operator routes that bypass the valve.
func alwaysAdmit(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// Wrap applies admission control to next.
func (a *Admission) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if alwaysAdmit(r.URL.Path) {
			obs.C("itm_admission_bypass_total", "Requests on always-admitted operator routes (/healthz, /metrics).").Inc()
			next.ServeHTTP(w, r)
			return
		}
		lane := laneLow
		if r.Header.Get("If-None-Match") != "" {
			lane = laneHigh
		}
		switch a.acquire(lane, r.Context().Done()) {
		case decisionShed:
			obs.C("itm_admission_shed_total", "Requests shed with 503 (queue full or draining).").Inc()
			w.Header().Set("Retry-After", a.retryAfter)
			writeErr(w, http.StatusServiceUnavailable, "overloaded: retry after %ss", a.retryAfter)
			return
		case decisionAbandoned:
			// Client gone; nothing to write, nothing held.
			return
		}
		obs.C("itm_admission_admitted_total", "Requests granted an execution slot (immediately or after queueing).").Inc()
		obs.G("itm_admission_inflight", "Requests currently holding an execution slot.").Set(float64(a.InFlight()))
		defer func() {
			a.release()
			obs.G("itm_admission_inflight", "Requests currently holding an execution slot.").Set(float64(a.InFlight()))
		}()
		next.ServeHTTP(w, r)
	})
}

type decision int

const (
	decisionAdmit decision = iota
	decisionShed
	decisionAbandoned
)

// acquire claims an execution slot, queueing when the pool is full. It
// returns Shed when the queue is full or the valve is draining, and
// Abandoned when cancel fires before a slot frees up.
func (a *Admission) acquire(lane int, cancel <-chan struct{}) decision {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return decisionShed
	}
	if a.inFlight < a.maxInFlight {
		a.inFlight++
		a.mu.Unlock()
		return decisionAdmit
	}
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return decisionShed
	}
	wt := &waiter{ch: make(chan bool, 1)}
	a.queue[lane] = append(a.queue[lane], wt)
	a.queued++
	a.mu.Unlock()
	obs.C("itm_admission_queued_total", "Requests that waited in the admission queue before a decision.").Inc()

	select {
	case admit := <-wt.ch:
		if admit {
			return decisionAdmit
		}
		return decisionShed
	case <-cancel:
		a.mu.Lock()
		if wt.decided {
			// release() or drain already handed us an answer; honor it so a
			// directly-handed-off slot is never leaked.
			a.mu.Unlock()
			if <-wt.ch {
				a.release()
			}
			return decisionAbandoned
		}
		wt.decided = true
		wt.abandoned = true
		a.queued--
		a.mu.Unlock()
		return decisionAbandoned
	}
}

// release frees a slot: the longest-waiting high-lane request gets it by
// direct handoff (the slot never returns to the pool, so arrival order is
// the only thing that decides who runs), then the low lane, then inFlight
// drops.
func (a *Admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for lane := laneHigh; lane <= laneLow; lane++ {
		for len(a.queue[lane]) > 0 {
			wt := a.queue[lane][0]
			a.queue[lane] = a.queue[lane][1:]
			if wt.abandoned {
				continue
			}
			wt.decided = true
			a.queued--
			wt.ch <- true
			return
		}
	}
	a.inFlight--
}

// BeginDrain flips the valve into shutdown mode: every queued waiter is
// shed immediately, and every future arrival (outside the operator routes)
// sheds on sight. In-flight requests keep their slots — http.Server's
// Shutdown waits for them — so SIGTERM means "finish what you started,
// take nothing new".
func (a *Admission) BeginDrain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return
	}
	a.draining = true
	for lane := range a.queue {
		for _, wt := range a.queue[lane] {
			if wt.abandoned || wt.decided {
				continue
			}
			wt.decided = true
			a.queued--
			wt.ch <- false
		}
		a.queue[lane] = nil
	}
}

// InFlight returns how many requests currently hold slots.
func (a *Admission) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight
}

// QueueDepth returns how many requests are waiting for a slot.
func (a *Admission) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}
