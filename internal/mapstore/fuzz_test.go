package mapstore

import (
	"bytes"
	"errors"
	"testing"

	"itmap/internal/core"
)

// corruptions returns the wire-level mutations real fuzzers find first:
// truncations inside each section, bit flips in counts and deltas, and an
// oversized count that must be rejected before allocation.
func corruptions(enc []byte) [][]byte {
	out := [][]byte{
		enc[:0],
		enc[:3],                                // shorter than magic
		enc[:len(Magic)],                       // magic only
		enc[:len(enc)/2],                       // mid-section truncation
		enc[:len(enc)-1],                       // lost final byte
		append(append([]byte(nil), enc...), 0), // trailing byte
	}
	flipped := append([]byte(nil), enc...)
	flipped[len(Magic)+2] ^= 0x40 // string-table count
	out = append(out, flipped)
	huge := append([]byte(nil), Magic[:]...)
	huge = append(huge, 1, 1, 0)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f) // absurd section count
	return append(out, huge)
}

// FuzzDecodeMapDocument pins the codec's safety contract: arbitrary bytes
// must never panic the decoder; anything it accepts must be a canonical
// document, so re-encoding reproduces the input byte-for-byte.
func FuzzDecodeMapDocument(f *testing.F) {
	full, err := EncodeDocument(sampleDoc())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	empty, err := EncodeDocument(&core.MapDocument{Version: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	for _, c := range corruptions(full) {
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := DecodeDocument(data)
		if err != nil {
			if !errors.Is(err, ErrMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re, err := EncodeDocument(doc)
		if err != nil {
			t.Fatalf("accepted document fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode→re-encode not byte-identical: %d vs %d bytes", len(re), len(data))
		}
	})
}
