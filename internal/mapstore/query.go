package mapstore

import (
	"fmt"
	"sort"
	"strconv"

	"itmap/internal/core"
	"itmap/internal/order"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

// buildIndexes derives the query-side structures from the canonical
// document. Called once at ingest; everything it builds is immutable, so
// when a document section is structurally shared with the previous epoch
// (per the shared bitmask), the index built from it is reused outright.
func (e *Epoch) buildIndexes(prev *Epoch, shared uint) error {
	doc := e.Doc
	if prev != nil && shared&secActivity != 0 {
		e.activity, e.totalAct, e.ranked = prev.activity, prev.totalAct, prev.ranked
	} else {
		e.activity = make(map[uint32]float64, len(doc.ASActivity))
		for _, s := range order.Keys(doc.ASActivity) {
			asn, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return fmt.Errorf("mapstore: bad ASN key %q: %w", s, err)
			}
			v := doc.ASActivity[s]
			e.activity[uint32(asn)] = v
			e.totalAct += v
		}
		e.ranked = make([]ASRank, 0, len(e.activity))
		for _, asn := range order.Keys(e.activity) {
			r := ASRank{ASN: asn, Activity: e.activity[asn]}
			if e.totalAct > 0 {
				r.Share = r.Activity / e.totalAct
			}
			e.ranked = append(e.ranked, r)
		}
		sort.SliceStable(e.ranked, func(i, j int) bool {
			if e.ranked[i].Activity != e.ranked[j].Activity {
				return e.ranked[i].Activity > e.ranked[j].Activity
			}
			return e.ranked[i].ASN < e.ranked[j].ASN
		})
	}

	if prev != nil && shared&secSources != 0 {
		e.sources = prev.sources
	} else {
		e.sources = make(map[uint32]string, len(doc.Sources))
		for _, s := range order.Keys(doc.Sources) {
			asn, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return fmt.Errorf("mapstore: bad ASN key %q: %w", s, err)
			}
			e.sources[uint32(asn)] = doc.Sources[s]
		}
	}
	if prev != nil && shared&secConfidence != 0 {
		e.confidence = prev.confidence
	} else {
		e.confidence = make(map[uint32]float64, len(doc.ASConfidence))
		for _, s := range order.Keys(doc.ASConfidence) {
			asn, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return fmt.Errorf("mapstore: bad ASN key %q: %w", s, err)
			}
			e.confidence[uint32(asn)] = doc.ASConfidence[s]
		}
	}

	if prev != nil && shared&secServers != 0 {
		e.serverAt = prev.serverAt
	} else {
		e.serverAt = make(map[string]int, len(doc.Servers))
		for i := range doc.Servers {
			// First entry wins on (theoretical) duplicate prefixes; servers
			// are sorted, so "first" is canonical.
			if _, ok := e.serverAt[doc.Servers[i].Prefix]; !ok {
				e.serverAt[doc.Servers[i].Prefix] = i
			}
		}
	}
	// The mapping indexes read both sections: only reuse when neither moved.
	if prev != nil && shared&(secServers|secMappings) == secServers|secMappings {
		e.mappingsBy, e.hostPop = prev.mappingsBy, prev.hostPop
	} else {
		e.mappingsBy = make(map[uint32][]int)
		e.hostPop = map[uint32]int{}
		for i := range doc.Mappings {
			m := &doc.Mappings[i]
			e.mappingsBy[m.ClientAS] = append(e.mappingsBy[m.ClientAS], i)
			if si, ok := e.serverAt[m.Serving]; ok {
				e.hostPop[doc.Servers[si].HostAS]++
			}
		}
	}
	return nil
}

// Info is one epoch's metadata line.
type Info struct {
	ID             int          `json:"id"`
	At             simtime.Time `json:"at_hours"`
	ActivePrefixes int          `json:"active_prefixes"`
	ASes           int          `json:"ases"`
	Servers        int          `json:"servers"`
	Mappings       int          `json:"mappings"`
	EncodedBytes   int          `json:"encoded_bytes"`
	SharedSections int          `json:"shared_sections"`
	MeshPairs      int          `json:"mesh_pairs,omitempty"`
}

// Info summarizes the epoch.
func (e *Epoch) Info() Info {
	return Info{
		ID:             e.ID,
		At:             e.At,
		ActivePrefixes: len(e.Doc.ActivePrefixes),
		ASes:           len(e.Doc.ASActivity),
		Servers:        len(e.Doc.Servers),
		Mappings:       len(e.Doc.Mappings),
		EncodedBytes:   len(e.Encoded),
		SharedSections: e.SharedSections,
		MeshPairs:      e.meshPairCount(),
	}
}

func (e *Epoch) meshPairCount() int {
	if e.MeshDoc == nil {
		return 0
	}
	return len(e.MeshDoc.Pairs)
}

// Infos lists every epoch's metadata, oldest first.
func (s *Store) Infos() []Info { return infosIn(s.Snapshot()) }

func infosIn(es []*Epoch) []Info {
	out := make([]Info, len(es))
	for i, e := range es {
		out[i] = e.Info()
	}
	return out
}

// TopASes returns the k most active ASes of the epoch (activity
// descending, ASN ascending on ties).
func (e *Epoch) TopASes(k int) []ASRank {
	if k < 0 {
		k = 0
	}
	if k > len(e.ranked) {
		k = len(e.ranked)
	}
	return e.ranked[:k:k]
}

// ServiceMapping is one user→host mapping entry enriched with the serving
// side's scan metadata and a popularity proxy.
type ServiceMapping struct {
	Domain        string `json:"domain"`
	ServingPrefix string `json:"serving_prefix"`
	HostAS        uint32 `json:"host_as,omitempty"`
	Org           string `json:"org,omitempty"`
	// HostClients counts how many client ASes across the whole map are
	// served by the same host AS — the ranking signal for top-K.
	HostClients int `json:"host_clients"`
}

// ASView is the per-AS answer: activity, provenance, and the AS's top
// service mappings.
type ASView struct {
	ASN           uint32           `json:"asn"`
	Epoch         int              `json:"epoch"`
	Activity      float64          `json:"activity"`
	Share         float64          `json:"share"`
	Source        string           `json:"source,omitempty"`
	Confidence    *float64         `json:"confidence,omitempty"`
	Services      []ServiceMapping `json:"services,omitempty"`
	TotalServices int              `json:"total_services"`
}

// ASView assembles the per-AS view with the AS's top-k service mappings,
// ranked by how many client ASes the serving host covers (most popular
// first; domain name breaks ties).
func (e *Epoch) ASView(asn uint32, k int) (ASView, bool) {
	act, hasAct := e.activity[asn]
	src, hasSrc := e.sources[asn]
	idxs := e.mappingsBy[asn]
	if !hasAct && !hasSrc && len(idxs) == 0 {
		return ASView{}, false
	}
	v := ASView{ASN: asn, Epoch: e.ID, Activity: act, Source: src, TotalServices: len(idxs)}
	if e.totalAct > 0 {
		v.Share = act / e.totalAct
	}
	if c, ok := e.confidence[asn]; ok {
		v.Confidence = &c
	}
	svcs := make([]ServiceMapping, 0, len(idxs))
	for _, i := range idxs {
		m := &e.Doc.Mappings[i]
		sm := ServiceMapping{Domain: m.Domain, ServingPrefix: m.Serving}
		if si, ok := e.serverAt[m.Serving]; ok {
			sm.HostAS = e.Doc.Servers[si].HostAS
			sm.Org = e.Doc.Servers[si].Org
			sm.HostClients = e.hostPop[sm.HostAS]
		}
		svcs = append(svcs, sm)
	}
	sort.SliceStable(svcs, func(i, j int) bool {
		if svcs[i].HostClients != svcs[j].HostClients {
			return svcs[i].HostClients > svcs[j].HostClients
		}
		return svcs[i].Domain < svcs[j].Domain
	})
	if k >= 0 && k < len(svcs) {
		svcs = svcs[:k:k]
	}
	v.Services = svcs
	return v, true
}

// EpochValue is one epoch's scalar in a longitudinal series.
type EpochValue struct {
	Epoch    int          `json:"epoch"`
	At       simtime.Time `json:"at_hours"`
	Activity float64      `json:"activity"`
	Share    float64      `json:"share"`
}

// ASActivitySeries tracks one AS's activity across every epoch — the
// longitudinal view the paper's "Daily" refresh target implies.
func (s *Store) ASActivitySeries(asn uint32) []EpochValue {
	return seriesIn(s.Snapshot(), asn)
}

// seriesIn is ASActivitySeries over an explicit epoch view, so a handler
// can keep one snapshot consistent across a whole response.
func seriesIn(es []*Epoch, asn uint32) []EpochValue {
	out := make([]EpochValue, len(es))
	for i, e := range es {
		out[i] = EpochValue{Epoch: e.ID, At: e.At, Activity: e.activity[asn]}
		if e.totalAct > 0 {
			out[i].Share = out[i].Activity / e.totalAct
		}
	}
	return out
}

// LinkLoad returns the epoch's ground-truth daily bytes over the a–b
// inter-AS link, preferring the dense matrix views. ok is false when the
// epoch carries no matrix snapshot or the link is unknown.
func (e *Epoch) LinkLoad(a, b uint32) (float64, bool) {
	if e.mx == nil {
		return 0, false
	}
	ka, kb := topology.ASN(a), topology.ASN(b)
	if e.mx.Links != nil && e.mx.LinkLoadDense != nil && e.top != nil {
		ia, oka := e.top.Index(ka)
		ib, okb := e.top.Index(kb)
		if oka && okb {
			if id := e.mx.Links.IDBetween(ia, ib); id >= 0 {
				return e.mx.LinkLoadDense[id], true
			}
		}
		return 0, false
	}
	v, ok := e.mx.LinkLoad[topology.MakeLinkKey(ka, kb)]
	return v, ok
}

// DiffDocument is the serializable epoch-to-epoch diff, derived via
// core.DiffMaps over the two epochs' users components. All slices are
// sorted, so marshaling it is deterministic.
type DiffDocument struct {
	EpochA         int          `json:"epoch_a"`
	EpochB         int          `json:"epoch_b"`
	AtA            simtime.Time `json:"at_a_hours"`
	AtB            simtime.Time `json:"at_b_hours"`
	StablePrefixes int          `json:"stable_prefixes"`
	Appeared       []string     `json:"appeared"`
	Vanished       []string     `json:"vanished"`
	Jaccard        float64      `json:"jaccard"`
	Shifts         []ShiftEntry `json:"shifts"`
}

// ShiftEntry is one AS's activity-share change.
type ShiftEntry struct {
	ASN    uint32  `json:"asn"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
	Delta  float64 `json:"delta"`
}

// Diff compares two epochs' users components. minShift filters the
// activity shifts worth reporting (absolute share change).
func (s *Store) Diff(a, b int, minShift float64) (*DiffDocument, error) {
	ea, ok := s.Epoch(a)
	if !ok {
		return nil, fmt.Errorf("mapstore: no epoch %d", a)
	}
	eb, ok := s.Epoch(b)
	if !ok {
		return nil, fmt.Errorf("mapstore: no epoch %d", b)
	}
	return diffEpochs(ea, eb, minShift), nil
}

// diffEpochs compares two resolved epochs (the cacheable inner form: the
// pair is immutable, so the result never changes).
func diffEpochs(ea, eb *Epoch, minShift float64) *DiffDocument {
	ma := &core.TrafficMap{Users: ea.users}
	mb := &core.TrafficMap{Users: eb.users}
	d := core.DiffMaps(ma, mb, minShift)
	out := &DiffDocument{
		EpochA:         ea.ID,
		EpochB:         eb.ID,
		AtA:            ea.At,
		AtB:            eb.At,
		StablePrefixes: d.StablePrefixes,
		Jaccard:        d.Jaccard(),
		Appeared:       make([]string, 0, len(d.PrefixesAppeared)),
		Vanished:       make([]string, 0, len(d.PrefixesVanished)),
		Shifts:         make([]ShiftEntry, 0, len(d.ActivityShifts)),
	}
	for _, p := range d.PrefixesAppeared {
		out.Appeared = append(out.Appeared, p.String())
	}
	for _, p := range d.PrefixesVanished {
		out.Vanished = append(out.Vanished, p.String())
	}
	for _, sh := range d.ActivityShifts {
		out.Shifts = append(out.Shifts, ShiftEntry{
			ASN: uint32(sh.ASN), Before: sh.Before, After: sh.After, Delta: sh.Delta(),
		})
	}
	return out
}
