package mapstore

import (
	"fmt"
	"math"
	"sort"

	"itmap/internal/core"
	"itmap/internal/obs"
)

// Mesh wire format (ITMB codec version 2; same primitives as version 1):
//
//	header  magic "ITMB" | codec version (2) | document version |
//	        agents | rounds | profile (len | raw bytes)
//	pairs   count | count × pair, sorted by canonical key with the key
//	        delta-encoded (first absolute, then strictly positive deltas)
//
//	pair    key delta | flags byte (bit0 = complete) | probes | lost |
//	        min/mean/max RTT + confidence (4 × float bits) |
//	        path len | path len × hop ASN (0 = hole)
//
// Like the map codec, every section is sorted and every integer minimal,
// so the encoding is a pure function of the document: decode followed by
// re-encode is byte-identical, which epoch-level structural sharing and
// the E26 worker-parity check rely on.

// MeshCodecVersion is the ITMB wire version carrying mesh sections.
const MeshCodecVersion = 2

// maxMeshPathLen bounds one pair's AS path on the wire. Simulated paths
// are a handful of hops; anything longer is corruption.
const maxMeshPathLen = 255

// meshPairMinBytes is the smallest possible encoded pair: four 1-byte
// varints (key delta, probes, lost, path len), the flags byte, and the
// four 8-byte floats.
const meshPairMinBytes = 4 + 1 + 32

// EncodeMeshDocument serializes a mesh document into ITMB v2 bytes. The
// input is not mutated; pairs are sorted into canonical key order during
// encoding, so the output is a pure function of the document's content.
func EncodeMeshDocument(doc *core.MeshDocument) ([]byte, error) {
	if doc == nil {
		return nil, fmt.Errorf("%w: nil mesh document", ErrEncode)
	}
	if doc.Version < 0 || doc.Agents < 0 || doc.Rounds < 0 {
		return nil, fmt.Errorf("%w: negative mesh header field", ErrEncode)
	}
	e := encPool.Get().(*encoder)
	defer encPool.Put(e)
	e.reset()
	e.raw(Magic[:])
	e.uvarint(MeshCodecVersion)
	e.uvarint(uint64(doc.Version))
	e.uvarint(uint64(doc.Agents))
	e.uvarint(uint64(doc.Rounds))
	e.uvarint(uint64(len(doc.Profile)))
	e.raw([]byte(doc.Profile))

	pairs := make([]core.MeshPairDocument, len(doc.Pairs))
	copy(pairs, doc.Pairs)
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key() < pairs[j].Key() })
	e.uvarint(uint64(len(pairs)))
	var prev uint64
	for i := range pairs {
		p := &pairs[i]
		if p.Lo == 0 || p.Lo >= p.Hi {
			return nil, fmt.Errorf("%w: mesh pair (%d, %d) not canonical", ErrEncode, p.Lo, p.Hi)
		}
		key := p.Key()
		if i > 0 && key == prev {
			return nil, fmt.Errorf("%w: duplicate mesh pair (%d, %d)", ErrEncode, p.Lo, p.Hi)
		}
		if i == 0 {
			e.uvarint(key)
		} else {
			e.uvarint(key - prev)
		}
		prev = key
		var flags byte
		if p.Complete {
			flags |= 1
		}
		e.byte(flags)
		if p.Probes < 0 || p.Lost < 0 || p.Lost > p.Probes {
			return nil, fmt.Errorf("%w: mesh pair (%d, %d) probe counts %d/%d", ErrEncode, p.Lo, p.Hi, p.Lost, p.Probes)
		}
		e.uvarint(uint64(p.Probes))
		e.uvarint(uint64(p.Lost))
		e.float(p.MinRTT)
		e.float(p.MeanRTT)
		e.float(p.MaxRTT)
		e.float(p.Confidence)
		if len(p.Path) > maxMeshPathLen {
			return nil, fmt.Errorf("%w: mesh pair (%d, %d) path length %d", ErrEncode, p.Lo, p.Hi, len(p.Path))
		}
		e.uvarint(uint64(len(p.Path)))
		for _, hop := range p.Path {
			e.uvarint(uint64(hop))
		}
	}
	obs.C("itm_codec_encoded_bytes_total", "ITMB bytes produced by document encodes.").Add(uint64(len(e.buf)))
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out, nil
}

// DecodeMeshDocument parses ITMB v2 bytes back into a mesh document. The
// result is canonical (sorted pairs, nil empty path slices), so re-encoding
// reproduces the input exactly. Corrupted, truncated, or oversized inputs
// return a typed error; decoding never panics.
func DecodeMeshDocument(data []byte) (*core.MeshDocument, error) {
	d := &decoder{buf: data}
	if d.remaining() < len(Magic) {
		return nil, fmt.Errorf("%w: input shorter than magic", ErrTruncated)
	}
	if string(d.buf[:len(Magic)]) != string(Magic[:]) {
		return nil, ErrMagic
	}
	d.pos = len(Magic)
	cv, err := d.uvarint("codec version")
	if err != nil {
		return nil, err
	}
	if cv != MeshCodecVersion {
		return nil, fmt.Errorf("%w: codec version %d", ErrVersion, cv)
	}
	doc := &core.MeshDocument{}
	for _, h := range []struct {
		what string
		dst  *int
	}{{"document version", &doc.Version}, {"mesh agents", &doc.Agents}, {"mesh rounds", &doc.Rounds}} {
		v, err := d.uvarint(h.what)
		if err != nil {
			return nil, err
		}
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("%w: %s %d out of range", ErrCorrupt, h.what, v)
		}
		*h.dst = int(v)
	}
	if doc.Profile, err = d.str("mesh profile"); err != nil {
		return nil, err
	}

	n, err := d.count("mesh pairs", meshPairMinBytes)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		doc.Pairs = make([]core.MeshPairDocument, 0, n)
	}
	var prev uint64
	for i := 0; i < n; i++ {
		v, err := d.uvarint("mesh pair key")
		if err != nil {
			return nil, err
		}
		key := v
		if i > 0 {
			key = prev + v
			// v == 0 is a duplicate; wrap-around lands below prev. Either
			// way the sequence is not strictly ascending.
			if key <= prev {
				return nil, fmt.Errorf("%w: mesh pair keys not strictly ascending", ErrCorrupt)
			}
		}
		prev = key
		p := core.MeshPairDocument{Lo: uint32(key >> 32), Hi: uint32(key & 0xffffffff)}
		if p.Lo == 0 || p.Lo >= p.Hi {
			return nil, fmt.Errorf("%w: mesh pair key %#x not canonical", ErrCorrupt, key)
		}
		flags, err := d.byteVal("mesh pair flags")
		if err != nil {
			return nil, err
		}
		if flags > 1 {
			return nil, fmt.Errorf("%w: mesh pair flags %#x", ErrCorrupt, flags)
		}
		p.Complete = flags&1 != 0
		probes, err := d.uvarint("mesh pair probes")
		if err != nil {
			return nil, err
		}
		lost, err := d.uvarint("mesh pair lost")
		if err != nil {
			return nil, err
		}
		if probes > math.MaxInt32 || lost > probes {
			return nil, fmt.Errorf("%w: mesh pair probe counts %d/%d", ErrCorrupt, lost, probes)
		}
		p.Probes, p.Lost = int(probes), int(lost)
		for _, f := range []struct {
			what string
			dst  *float64
		}{{"mesh min RTT", &p.MinRTT}, {"mesh mean RTT", &p.MeanRTT}, {"mesh max RTT", &p.MaxRTT}, {"mesh confidence", &p.Confidence}} {
			if *f.dst, err = d.float(f.what); err != nil {
				return nil, err
			}
		}
		hops, err := d.uvarint("mesh path length")
		if err != nil {
			return nil, err
		}
		if hops > maxMeshPathLen {
			return nil, fmt.Errorf("%w: mesh path length %d", ErrCorrupt, hops)
		}
		if hops > 0 {
			p.Path = make([]uint32, hops)
			for j := range p.Path {
				hop, err := d.uvarint("mesh path hop")
				if err != nil {
					return nil, err
				}
				if hop > math.MaxUint32 {
					return nil, fmt.Errorf("%w: mesh path hop %d out of range", ErrCorrupt, hop)
				}
				p.Path[j] = uint32(hop)
			}
		}
		doc.Pairs = append(doc.Pairs, p)
	}

	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	obs.C("itm_codec_decoded_bytes_total", "ITMB bytes consumed by successful document decodes.").Add(uint64(len(data)))
	return doc, nil
}
