package mapstore

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"itmap/internal/obs"
)

// gatedHandler blocks every non-operator request on gate, so tests control
// exactly when slots free up.
func gatedHandler(gate chan struct{}, order *[]string, mu *sync.Mutex) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mark := r.Header.Get("X-Test-Mark"); mark != "" {
			mu.Lock()
			*order = append(*order, mark)
			mu.Unlock()
			w.WriteHeader(http.StatusOK)
			return
		}
		<-gate
		w.WriteHeader(http.StatusOK)
	})
}

func TestOverloadScenarioDeterministic(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	for run := 0; run < 5; run++ {
		res := OverloadScenario(3, 5, 7)
		if res.Admitted != 8 || res.Shed != 7 || res.Issued != 15 {
			t.Fatalf("run %d: admitted=%d shed=%d issued=%d, want 8/7/15",
				run, res.Admitted, res.Shed, res.Issued)
		}
		if res.Admitted+res.Shed != res.Issued {
			t.Fatalf("run %d: conservation violated: %+v", run, res)
		}
		if !res.RetryAfterOK {
			t.Fatalf("run %d: shed responses missing Retry-After", run)
		}
	}
}

// TestAdmissionPriorityHandoff: when a slot frees up, the queued
// revalidation (If-None-Match) runs before the queued cold read even
// though it arrived later — cached reads before cold fills.
func TestAdmissionPriorityHandoff(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	adm := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4})
	gate := make(chan struct{})
	var order []string
	var mu sync.Mutex
	h := adm.Wrap(gatedHandler(gate, &order, &mu))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the only slot
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/top", nil))
	}()
	for adm.InFlight() < 1 {
		runtime.Gosched()
	}
	enqueue := func(mark string, conditional bool) {
		wg.Add(1)
		depth := adm.QueueDepth()
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/v1/top", nil)
			req.Header.Set("X-Test-Mark", mark)
			if conditional {
				req.Header.Set("If-None-Match", `"itm-e0-whatever"`)
			}
			h.ServeHTTP(httptest.NewRecorder(), req)
		}()
		for adm.QueueDepth() <= depth {
			runtime.Gosched()
		}
	}
	enqueue("cold", false)       // arrives first, low lane
	enqueue("revalidation", true) // arrives second, high lane

	close(gate) // slot holder finishes; handoff begins
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "revalidation" || order[1] != "cold" {
		t.Fatalf("execution order = %v, want [revalidation cold]", order)
	}
}

// TestAdmissionDrain is the SIGTERM contract: the in-flight slow request
// completes with 200, queued and new arrivals get 503 + Retry-After.
func TestAdmissionDrain(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	adm := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4})
	gate := make(chan struct{})
	var order []string
	var mu sync.Mutex
	h := adm.Wrap(gatedHandler(gate, &order, &mu))

	slow := httptest.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the in-flight slow request
		defer wg.Done()
		h.ServeHTTP(slow, httptest.NewRequest("GET", "/v1/map/0", nil))
	}()
	for adm.InFlight() < 1 {
		runtime.Gosched()
	}
	queued := httptest.NewRecorder()
	wg.Add(1)
	go func() { // parked in the wait queue behind the slow request
		defer wg.Done()
		h.ServeHTTP(queued, httptest.NewRequest("GET", "/v1/top", nil))
	}()
	for adm.QueueDepth() < 1 {
		runtime.Gosched()
	}

	adm.BeginDrain()

	// New arrival during drain: shed on sight.
	fresh := httptest.NewRecorder()
	h.ServeHTTP(fresh, httptest.NewRequest("GET", "/v1/top", nil))
	if fresh.Code != http.StatusServiceUnavailable {
		t.Fatalf("arrival during drain: %d, want 503", fresh.Code)
	}
	if fresh.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// Operator routes still answer during drain.
	hz := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Test-Mark", "healthz")
	h.ServeHTTP(hz, req)
	if hz.Code != http.StatusOK {
		t.Fatalf("/healthz during drain: %d, want 200", hz.Code)
	}

	close(gate) // let the slow request finish
	wg.Wait()
	if slow.Code != http.StatusOK {
		t.Fatalf("in-flight request during drain: %d, want 200", slow.Code)
	}
	if queued.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued request at drain: %d, want 503", queued.Code)
	}
	if adm.InFlight() != 0 {
		t.Fatalf("inflight after drain = %d, want 0", adm.InFlight())
	}
}

// TestAdmissionAbandonedWaiter: a queued client that disconnects gives up
// its queue spot, and the freed slot passes over it without leaking.
func TestAdmissionAbandonedWaiter(t *testing.T) {
	defer obs.Swap(obs.NewSet())
	adm := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4})
	gate := make(chan struct{})
	var order []string
	var mu sync.Mutex
	h := adm.Wrap(gatedHandler(gate, &order, &mu))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/top", nil))
	}()
	for adm.InFlight() < 1 {
		runtime.Gosched()
	}

	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest("GET", "/v1/top", nil).WithContext(ctx)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	for adm.QueueDepth() < 1 {
		runtime.Gosched()
	}
	cancel()
	for adm.QueueDepth() > 0 {
		runtime.Gosched()
	}

	close(gate)
	wg.Wait()
	if got := adm.InFlight(); got != 0 {
		t.Fatalf("inflight after abandoned waiter = %d, want 0 (slot leaked)", got)
	}
	// The valve still works: a fresh request is admitted immediately.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/top", nil)
	req.Header.Set("X-Test-Mark", "after")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("request after abandoned waiter: %d, want 200", rec.Code)
	}
}
