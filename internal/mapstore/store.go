package mapstore

import (
	"fmt"
	"maps"
	"math/bits"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"

	"itmap/internal/core"
	"itmap/internal/mapstore/wal"
	"itmap/internal/obs"
	"itmap/internal/obs/history"
	"itmap/internal/simtime"
	"itmap/internal/topology"
	"itmap/internal/traffic"
)

// Epoch is one immutable version of the traffic map: a measurement sweep's
// document plus the derived indexes queries need. Nothing in an Epoch is
// mutated after Append returns, so readers share it freely.
type Epoch struct {
	// ID is the epoch's position in the store (0-based, dense).
	ID int
	// At is the simulated time the sweep behind this epoch ran.
	At simtime.Time
	// Doc is the canonical document. Sections equal to the previous
	// epoch's are shared structurally (same backing arrays), so a stable
	// infrastructure costs nothing per epoch.
	Doc *core.MapDocument
	// Encoded is the document in the ITMB binary format. The binary API
	// route serves this slice directly — zero copies, zero re-encodes.
	Encoded []byte
	// ETag is the strong entity tag for responses scoped to this epoch,
	// derived from the canonical encoding (so it is byte-identical across
	// runs and worker counts).
	ETag string
	// SharedSections counts how many of the document's sections were
	// reused from the previous epoch at ingest.
	SharedSections int

	// MeshDoc, when present, is the epoch's user↔user mesh matrix;
	// MeshEncoded its canonical ITMB v2 encoding and MeshETag the strong
	// validator for mesh-scoped responses. MeshShared reports that the
	// encoding was byte-equal to the previous epoch's, so document, bytes,
	// tag, and indexes are all structurally shared with it. The mesh is not
	// WAL-journaled (only map encodings are; see walstore.go), so recovery
	// restores a store without mesh sections.
	MeshDoc     *core.MeshDocument
	MeshEncoded []byte
	MeshETag    string
	MeshShared  bool

	// mx optionally carries the ground-truth matrix snapshot for
	// link-load queries (dense views preferred), and top the topology
	// whose dense AS index mx's link index is aligned with. Both nil for
	// stores fed from serialized documents only.
	mx  *traffic.Matrix
	top *topology.Topology

	// Derived query indexes, built once at ingest.
	activity   map[uint32]float64 // ASN → activity
	totalAct   float64
	ranked     []ASRank           // by activity desc, ASN asc
	mappingsBy map[uint32][]int   // client ASN → indexes into Doc.Mappings
	hostPop    map[uint32]int     // serving host AS → #client ASes mapped to it
	serverAt   map[string]int     // serving prefix → index into Doc.Servers
	confidence map[uint32]float64 // ASN → confidence (only if doc carries it)
	sources    map[uint32]string  // ASN → source label
	users      core.UsersComponent
	meshWorst  []MeshRank // mesh pairs by mean RTT desc, key asc

	// cache holds encoded response bodies scoped to this epoch. Epochs are
	// immutable, so entries never invalidate; appends leave them untouched.
	cache *responseCache
}

// ASRank is one AS's position in an epoch's activity ranking.
type ASRank struct {
	ASN      uint32  `json:"asn"`
	Activity float64 `json:"activity"`
	Share    float64 `json:"share"`
}

// sectionCount is how many shareable sections a document has (active
// prefixes, hit rates, activity, sources, coverage, confidence, servers,
// mappings).
const sectionCount = 8

// Section bits name the shareable sections, so ingest can reuse exactly the
// derived indexes whose inputs an append left untouched.
const (
	secActives = 1 << iota
	secHitRates
	secActivity
	secSources
	secCoverage
	secConfidence
	secServers
	secMappings

	secAll = 1<<sectionCount - 1
	// secUsers covers every section core.ImportUsers reads.
	secUsers = secActives | secHitRates | secActivity | secSources | secCoverage | secConfidence
)

// epochList is the store's immutable snapshot: a prefix-stable slice of
// epochs. Append publishes a fresh list; readers keep using the one they
// loaded. The list also carries the store-scoped response cache and its
// generation ETag: responses that span epochs (activity series, the epoch
// listing) cache here, and because Append publishes a fresh list, those
// entries invalidate by construction — no locks, no invalidation scan.
type epochList struct {
	epochs []*Epoch
	etag   string
	cache  *responseCache
}

// Store is the in-memory, epoch-versioned map store. Ingestion is
// copy-on-write: Append builds a new immutable epoch plus a new epoch list
// and atomically swaps it in, so concurrent readers never take a lock and
// never observe a half-ingested epoch. Writers serialize among themselves.
type Store struct {
	mu  sync.Mutex // serializes Append
	cur atomic.Pointer[epochList]

	// wal, when attached, journals every epoch's canonical encoding before
	// it is published (see walstore.go).
	//itm:guardedby mu
	wal *wal.WAL
}

// NewStore returns an empty store.
func NewStore() *Store {
	declareCacheMetrics()
	declareStoreMetrics()
	s := &Store{}
	s.cur.Store(&epochList{etag: storeETag(0, ""), cache: newResponseCache()})
	return s
}

// declareStoreMetrics registers HELP/TYPE for every family the ingest and
// codec paths touch, so a fresh store's stable exposition (and the
// declared-families audit test) carries them before the first append.
func declareStoreMetrics() {
	m := obs.Metrics()
	m.Declare(obs.KindCounter, "itm_mapstore_epochs_total", "Epochs ingested into the map store.")
	m.Declare(obs.KindCounter, "itm_mapstore_sections_shared_total", "Document sections structurally shared with the previous epoch.")
	m.Declare(obs.KindCounter, "itm_mapstore_sections_copied_total", "Document sections that changed and so kept their own storage.")
	m.DeclareHistogram("itm_mapstore_epoch_bytes", "Encoded (ITMB) size of ingested epochs, in bytes.", epochBytesBuckets)
	m.Declare(obs.KindCounter, "itm_mapstore_mesh_epochs_total", "Epochs ingested carrying a fresh mesh matrix.")
	m.Declare(obs.KindCounter, "itm_mapstore_mesh_shared_total", "Mesh sections structurally shared with the previous epoch.")
	m.DeclareHistogram("itm_mapstore_mesh_bytes", "Encoded (ITMB v2) size of ingested mesh matrices, in bytes.", epochBytesBuckets)
	m.Declare(obs.KindCounter, "itm_codec_encoded_bytes_total", "ITMB bytes produced by document encodes.")
	m.Declare(obs.KindCounter, "itm_codec_decoded_bytes_total", "ITMB bytes consumed by successful document decodes.")
	obs.DeclareHTTPMetrics(m)
	history.DeclareMetrics(m)
}

// Len returns the number of epochs.
func (s *Store) Len() int { return len(s.cur.Load().epochs) }

// Snapshot returns the current epoch list. The slice is immutable — the
// store never mutates a published list — so callers may iterate it without
// holding any lock while writers keep appending.
func (s *Store) Snapshot() []*Epoch { return s.cur.Load().epochs }

// Epoch returns one epoch by ID.
func (s *Store) Epoch(id int) (*Epoch, bool) {
	es := s.Snapshot()
	if id < 0 || id >= len(es) {
		return nil, false
	}
	return es[id], true
}

// Latest returns the newest epoch, or nil for an empty store.
func (s *Store) Latest() *Epoch {
	es := s.Snapshot()
	if len(es) == 0 {
		return nil
	}
	return es[len(es)-1]
}

// AppendMap ingests a traffic map built by core.BuildMap, optionally with
// the ground-truth matrix snapshot enabling link-load queries (the matrix's
// link index must come from m.Top's dense AS index).
func (s *Store) AppendMap(at simtime.Time, m *core.TrafficMap, mx *traffic.Matrix) (*Epoch, error) {
	return s.append(at, m.Document(), mx, m.Top, nil)
}

// AppendMapMesh is AppendMap plus the epoch's user↔user mesh matrix, as
// produced by a vantage campaign. The mesh is normalized; the caller must
// not mutate it afterwards.
func (s *Store) AppendMapMesh(at simtime.Time, m *core.TrafficMap, mx *traffic.Matrix, mesh *core.MeshDocument) (*Epoch, error) {
	return s.append(at, m.Document(), mx, m.Top, mesh)
}

// Append ingests a serialized map document (e.g. an imported JSON export or
// a decoded ITMB blob). The document is normalized; the caller must not
// mutate it afterwards.
func (s *Store) Append(at simtime.Time, doc *core.MapDocument) (*Epoch, error) {
	return s.append(at, doc, nil, nil, nil)
}

// AppendMesh ingests a serialized map document together with a mesh matrix
// (decoded ITMB blobs, tests).
func (s *Store) AppendMesh(at simtime.Time, doc *core.MapDocument, mesh *core.MeshDocument) (*Epoch, error) {
	return s.append(at, doc, nil, nil, mesh)
}

func (s *Store) append(at simtime.Time, doc *core.MapDocument, mx *traffic.Matrix, top *topology.Topology, mesh *core.MeshDocument) (*Epoch, error) {
	if doc == nil {
		return nil, fmt.Errorf("mapstore: nil document")
	}
	doc.Normalize()

	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	e := &Epoch{ID: len(old.epochs), At: at, Doc: doc, mx: mx, top: top, cache: newResponseCache()}
	var prev *Epoch
	var shared uint
	if len(old.epochs) > 0 {
		// Epoch times must advance strictly: a sweep re-ingested at the
		// same simulated time is a caller bug, not a new epoch.
		prev = old.epochs[len(old.epochs)-1]
		if !prev.At.Before(at) {
			return nil, fmt.Errorf("mapstore: epoch time %v does not advance past %v", at, prev.At)
		}
		shared = shareSections(doc, prev.Doc)
		e.SharedSections = bits.OnesCount(shared)
	}
	if shared == secAll {
		// Identical re-ingest: the canonical encoding is a pure function of
		// the document, so the previous epoch's bytes serve verbatim.
		e.Encoded = prev.Encoded
	} else {
		enc, err := EncodeDocument(doc)
		if err != nil {
			return nil, err
		}
		e.Encoded = enc
	}
	e.ETag = epochETag(e.ID, e.Encoded)
	if shared&secUsers == secUsers {
		e.users = prev.users
	} else {
		users, err := core.ImportUsers(doc)
		if err != nil {
			return nil, err
		}
		e.users = users
	}
	if err := e.buildIndexes(prev, shared); err != nil {
		return nil, err
	}
	if err := e.ingestMesh(prev, mesh); err != nil {
		return nil, err
	}

	// Write-ahead point: everything that can fail has succeeded, nothing is
	// visible yet. Journal + fsync the canonical bytes; if that fails the
	// epoch is not published, so the WAL never lags the served store.
	if s.wal != nil {
		if err := s.wal.Append(at, e.Encoded); err != nil {
			return nil, fmt.Errorf("mapstore: journal epoch %d: %w", e.ID, err)
		}
	}

	// Copy-on-write publish: readers holding the old list are untouched.
	// The fresh list carries a fresh store-scoped cache and a bumped ETag,
	// which is the whole invalidation story for cross-epoch responses.
	next := &epochList{
		epochs: make([]*Epoch, len(old.epochs)+1),
		etag:   storeETag(len(old.epochs)+1, e.ETag),
		cache:  newResponseCache(),
	}
	copy(next.epochs, old.epochs)
	next.epochs[len(old.epochs)] = e
	s.cur.Store(next)

	e.prebake(prev)

	sp := obs.StartSpan("mapstore.append", at).SetAttrInt("epoch", int64(e.ID))
	sp.SetAttrInt("shared_sections", int64(e.SharedSections)).
		SetAttrInt("encoded_bytes", int64(len(e.Encoded))).
		End(at)
	obs.C("itm_mapstore_epochs_total", "Epochs ingested into the map store.").Inc()
	obs.C("itm_mapstore_sections_shared_total", "Document sections structurally shared with the previous epoch.").Add(uint64(e.SharedSections))
	if e.ID > 0 {
		obs.C("itm_mapstore_sections_copied_total", "Document sections that changed and so kept their own storage.").Add(uint64(sectionCount - e.SharedSections))
	}
	obs.H("itm_mapstore_epoch_bytes", "Encoded (ITMB) size of ingested epochs, in bytes.", epochBytesBuckets).Observe(float64(len(e.Encoded)))
	// Telemetry history sample: one capture per append, taken here — a
	// serial point under the ingest lock — so the sample sequence (and the
	// history API's bytes) is a pure function of the campaign.
	history.Observe("epoch", "epoch-"+strconv.Itoa(e.ID), at)
	return e, nil
}

// prebake fills the responses an interactive consumer asks for first —
// the default top-K ranking and the diff against the previous epoch — so
// the very first request after an append already hits cached bytes.
func (e *Epoch) prebake(prev *Epoch) {
	bake := func(c *responseCache, key, route string, render func() ([]byte, string, error)) {
		entry, created, ok := c.lookup(key)
		if !ok || !created {
			return
		}
		entry.fill(route, render)
		obs.C("itm_cache_prebaked_total", "Responses pre-baked into epoch caches at append time.").Inc()
	}
	bake(e.cache, topKey(defaultTopK), "/v1/top", func() ([]byte, string, error) {
		return jsonBody(topResponse{Epoch: e.ID, Top: e.TopASes(defaultTopK)})
	})
	if prev != nil {
		bake(e.cache, diffKey(prev.ID, e.ID, defaultMinShift), "/v1/diff/{a}/{b}",
			func() ([]byte, string, error) {
				return jsonBody(diffEpochs(prev, e, defaultMinShift))
			})
	}
	if e.MeshDoc != nil && !e.MeshShared {
		bake(e.cache, meshTopKey(defaultTopK), "/v1/latency/top", func() ([]byte, string, error) {
			return jsonBody(meshTopResponse{Epoch: e.ID, Top: e.WorstMeshPairs(defaultTopK)})
		})
	}
}

// epochBytesBuckets spans tiny test worlds through full-scale documents.
var epochBytesBuckets = []float64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}

// shareSections replaces sections of doc that are equal to prev's with
// prev's backing arrays/maps, so consecutive epochs of a stable map share
// storage. Returns the bitmask of shared sections; ingest uses it to reuse
// the derived indexes whose inputs did not change.
func shareSections(doc, prev *core.MapDocument) uint {
	var shared uint
	if slices.Equal(doc.ActivePrefixes, prev.ActivePrefixes) {
		doc.ActivePrefixes = prev.ActivePrefixes
		shared |= secActives
	}
	if maps.Equal(doc.PrefixHitRates, prev.PrefixHitRates) {
		doc.PrefixHitRates = prev.PrefixHitRates
		shared |= secHitRates
	}
	if maps.Equal(doc.ASActivity, prev.ASActivity) {
		doc.ASActivity = prev.ASActivity
		shared |= secActivity
	}
	if maps.Equal(doc.Sources, prev.Sources) {
		doc.Sources = prev.Sources
		shared |= secSources
	}
	if maps.Equal(doc.Coverage, prev.Coverage) {
		doc.Coverage = prev.Coverage
		shared |= secCoverage
	}
	if maps.Equal(doc.ASConfidence, prev.ASConfidence) {
		doc.ASConfidence = prev.ASConfidence
		shared |= secConfidence
	}
	if slices.Equal(doc.Servers, prev.Servers) {
		doc.Servers = prev.Servers
		shared |= secServers
	}
	if slices.Equal(doc.Mappings, prev.Mappings) {
		doc.Mappings = prev.Mappings
		shared |= secMappings
	}
	return shared
}
