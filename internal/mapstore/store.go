package mapstore

import (
	"fmt"
	"maps"
	"slices"
	"sync"
	"sync/atomic"

	"itmap/internal/core"
	"itmap/internal/obs"
	"itmap/internal/simtime"
	"itmap/internal/topology"
	"itmap/internal/traffic"
)

// Epoch is one immutable version of the traffic map: a measurement sweep's
// document plus the derived indexes queries need. Nothing in an Epoch is
// mutated after Append returns, so readers share it freely.
type Epoch struct {
	// ID is the epoch's position in the store (0-based, dense).
	ID int
	// At is the simulated time the sweep behind this epoch ran.
	At simtime.Time
	// Doc is the canonical document. Sections equal to the previous
	// epoch's are shared structurally (same backing arrays), so a stable
	// infrastructure costs nothing per epoch.
	Doc *core.MapDocument
	// Encoded is the document in the ITMB binary format.
	Encoded []byte
	// SharedSections counts how many of the document's sections were
	// reused from the previous epoch at ingest.
	SharedSections int

	// mx optionally carries the ground-truth matrix snapshot for
	// link-load queries (dense views preferred), and top the topology
	// whose dense AS index mx's link index is aligned with. Both nil for
	// stores fed from serialized documents only.
	mx  *traffic.Matrix
	top *topology.Topology

	// Derived query indexes, built once at ingest.
	activity   map[uint32]float64 // ASN → activity
	totalAct   float64
	ranked     []ASRank           // by activity desc, ASN asc
	mappingsBy map[uint32][]int   // client ASN → indexes into Doc.Mappings
	hostPop    map[uint32]int     // serving host AS → #client ASes mapped to it
	serverAt   map[string]int     // serving prefix → index into Doc.Servers
	confidence map[uint32]float64 // ASN → confidence (only if doc carries it)
	sources    map[uint32]string  // ASN → source label
	users      core.UsersComponent
}

// ASRank is one AS's position in an epoch's activity ranking.
type ASRank struct {
	ASN      uint32  `json:"asn"`
	Activity float64 `json:"activity"`
	Share    float64 `json:"share"`
}

// sectionCount is how many shareable sections a document has (active
// prefixes, hit rates, activity, sources, coverage, confidence, servers,
// mappings).
const sectionCount = 8

// epochList is the store's immutable snapshot: a prefix-stable slice of
// epochs. Append publishes a fresh list; readers keep using the one they
// loaded.
type epochList struct {
	epochs []*Epoch
}

// Store is the in-memory, epoch-versioned map store. Ingestion is
// copy-on-write: Append builds a new immutable epoch plus a new epoch list
// and atomically swaps it in, so concurrent readers never take a lock and
// never observe a half-ingested epoch. Writers serialize among themselves.
type Store struct {
	mu  sync.Mutex // serializes Append
	cur atomic.Pointer[epochList]
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	s.cur.Store(&epochList{})
	return s
}

// Len returns the number of epochs.
func (s *Store) Len() int { return len(s.cur.Load().epochs) }

// Snapshot returns the current epoch list. The slice is immutable — the
// store never mutates a published list — so callers may iterate it without
// holding any lock while writers keep appending.
func (s *Store) Snapshot() []*Epoch { return s.cur.Load().epochs }

// Epoch returns one epoch by ID.
func (s *Store) Epoch(id int) (*Epoch, bool) {
	es := s.Snapshot()
	if id < 0 || id >= len(es) {
		return nil, false
	}
	return es[id], true
}

// Latest returns the newest epoch, or nil for an empty store.
func (s *Store) Latest() *Epoch {
	es := s.Snapshot()
	if len(es) == 0 {
		return nil
	}
	return es[len(es)-1]
}

// AppendMap ingests a traffic map built by core.BuildMap, optionally with
// the ground-truth matrix snapshot enabling link-load queries (the matrix's
// link index must come from m.Top's dense AS index).
func (s *Store) AppendMap(at simtime.Time, m *core.TrafficMap, mx *traffic.Matrix) (*Epoch, error) {
	return s.append(at, m.Document(), mx, m.Top)
}

// Append ingests a serialized map document (e.g. an imported JSON export or
// a decoded ITMB blob). The document is normalized; the caller must not
// mutate it afterwards.
func (s *Store) Append(at simtime.Time, doc *core.MapDocument) (*Epoch, error) {
	return s.append(at, doc, nil, nil)
}

func (s *Store) append(at simtime.Time, doc *core.MapDocument, mx *traffic.Matrix, top *topology.Topology) (*Epoch, error) {
	if doc == nil {
		return nil, fmt.Errorf("mapstore: nil document")
	}
	doc.Normalize()

	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	e := &Epoch{ID: len(old.epochs), At: at, Doc: doc, mx: mx, top: top}
	if len(old.epochs) > 0 {
		// Epoch times must advance strictly: a sweep re-ingested at the
		// same simulated time is a caller bug, not a new epoch.
		prev := old.epochs[len(old.epochs)-1]
		if !prev.At.Before(at) {
			return nil, fmt.Errorf("mapstore: epoch time %v does not advance past %v", at, prev.At)
		}
		e.SharedSections = shareSections(doc, prev.Doc)
	}
	enc, err := EncodeDocument(doc)
	if err != nil {
		return nil, err
	}
	e.Encoded = enc
	users, err := core.ImportUsers(doc)
	if err != nil {
		return nil, err
	}
	e.users = users
	if err := e.buildIndexes(); err != nil {
		return nil, err
	}

	// Copy-on-write publish: readers holding the old list are untouched.
	next := &epochList{epochs: make([]*Epoch, len(old.epochs)+1)}
	copy(next.epochs, old.epochs)
	next.epochs[len(old.epochs)] = e
	s.cur.Store(next)

	sp := obs.StartSpan("mapstore.append", at).SetAttrInt("epoch", int64(e.ID))
	sp.SetAttrInt("shared_sections", int64(e.SharedSections)).
		SetAttrInt("encoded_bytes", int64(len(enc))).
		End(at)
	obs.C("itm_mapstore_epochs_total", "Epochs ingested into the map store.").Inc()
	obs.C("itm_mapstore_sections_shared_total", "Document sections structurally shared with the previous epoch.").Add(uint64(e.SharedSections))
	if e.ID > 0 {
		obs.C("itm_mapstore_sections_copied_total", "Document sections that changed and so kept their own storage.").Add(uint64(sectionCount - e.SharedSections))
	}
	obs.H("itm_mapstore_epoch_bytes", "Encoded (ITMB) size of ingested epochs, in bytes.", epochBytesBuckets).Observe(float64(len(enc)))
	return e, nil
}

// epochBytesBuckets spans tiny test worlds through full-scale documents.
var epochBytesBuckets = []float64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}

// shareSections replaces sections of doc that are equal to prev's with
// prev's backing arrays/maps, so consecutive epochs of a stable map share
// storage. Returns how many sections were shared.
func shareSections(doc, prev *core.MapDocument) int {
	shared := 0
	if slices.Equal(doc.ActivePrefixes, prev.ActivePrefixes) {
		doc.ActivePrefixes = prev.ActivePrefixes
		shared++
	}
	if maps.Equal(doc.PrefixHitRates, prev.PrefixHitRates) {
		doc.PrefixHitRates = prev.PrefixHitRates
		shared++
	}
	if maps.Equal(doc.ASActivity, prev.ASActivity) {
		doc.ASActivity = prev.ASActivity
		shared++
	}
	if maps.Equal(doc.Sources, prev.Sources) {
		doc.Sources = prev.Sources
		shared++
	}
	if maps.Equal(doc.Coverage, prev.Coverage) {
		doc.Coverage = prev.Coverage
		shared++
	}
	if maps.Equal(doc.ASConfidence, prev.ASConfidence) {
		doc.ASConfidence = prev.ASConfidence
		shared++
	}
	if slices.Equal(doc.Servers, prev.Servers) {
		doc.Servers = prev.Servers
		shared++
	}
	if slices.Equal(doc.Mappings, prev.Mappings) {
		doc.Mappings = prev.Mappings
		shared++
	}
	return shared
}
