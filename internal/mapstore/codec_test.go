package mapstore

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"itmap/internal/core"
)

// sampleDoc builds a small hand-written document covering every section.
func sampleDoc() *core.MapDocument {
	return &core.MapDocument{
		Version:        1,
		ActivePrefixes: []string{"1.0.0.0/24", "1.0.2.0/24", "203.0.113.0/24"},
		PrefixHitRates: map[string]float64{"1.0.0.0/24": 0.031, "1.0.2.0/24": 0.07},
		ASActivity:     map[string]float64{"64500": 123.5, "64501": 7, "65000": 0.25},
		Sources: map[string]string{
			"64500": "cache-probe",
			"64501": "root-logs",
			"65000": "cache-probe+root-logs",
		},
		Coverage:     map[string]string{"1.0.0.0/24": "probed-ok", "1.0.2.0/24": "stale"},
		ASConfidence: map[string]float64{"64500": 1, "64501": 0.5},
		Servers: []core.ServerDocument{
			{Prefix: "9.9.9.0/24", HostAS: 64500, OwnerAS: 64510, Org: "HyperGiant", City: "Paris", Country: "FR"},
			{Prefix: "9.9.8.0/24", HostAS: 64501, OwnerAS: 64510, Org: "HyperGiant", City: "Lagos", Country: "NG"},
		},
		Mappings: []core.MappingDocument{
			{Domain: "video.example", ClientAS: 64500, Serving: "9.9.9.0/24"},
			{Domain: "video.example", ClientAS: 64501, Serving: "9.9.8.0/24"},
			{Domain: "cdn.example", ClientAS: 64500, Serving: "9.9.9.0/24"},
		},
	}
}

func TestCodecRoundTripSample(t *testing.T) {
	doc := sampleDoc()
	enc, err := EncodeDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDocument(enc)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded document is the canonical (normalized) form.
	want := sampleDoc()
	want.Normalize()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("decoded document differs:\ngot  %+v\nwant %+v", got, want)
	}
	re, err := EncodeDocument(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Errorf("decode→re-encode changed bytes: %d vs %d", len(enc), len(re))
	}
}

func TestCodecEncodeDeterministic(t *testing.T) {
	a, err := EncodeDocument(sampleDoc())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeDocument(sampleDoc())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("encoding is not deterministic")
	}
}

func TestCodecEmptyDocument(t *testing.T) {
	doc := &core.MapDocument{Version: 1}
	enc, err := EncodeDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDocument(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || len(got.ActivePrefixes) != 0 || len(got.Servers) != 0 {
		t.Errorf("empty document mangled: %+v", got)
	}
	if got.Coverage != nil || got.ASConfidence != nil {
		t.Error("empty optional sections should decode to nil maps")
	}
	re, err := EncodeDocument(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Error("empty document round trip not byte-identical")
	}
}

func TestCodecRejectsUnencodableDocuments(t *testing.T) {
	cases := []*core.MapDocument{
		nil,
		{Version: 1, ActivePrefixes: []string{"not-a-prefix"}},
		{Version: 1, ActivePrefixes: []string{"1.0.0.0/24", "1.0.0.0/24"}},
		{Version: 1, ASActivity: map[string]float64{"not-a-number": 1}},
		{Version: 1, Sources: map[string]string{"64500": "carrier-pigeon"}},
		{Version: 1, Coverage: map[string]string{"1.0.0.0/24": "mystery"}},
		{Version: -1},
		{Version: 1, Mappings: []core.MappingDocument{
			{Domain: "a", ClientAS: 1, Serving: "1.0.0.0/24"},
			{Domain: "a", ClientAS: 1, Serving: "1.0.2.0/24"},
		}},
	}
	for i, doc := range cases {
		if _, err := EncodeDocument(doc); !errors.Is(err, ErrEncode) {
			t.Errorf("case %d: err = %v, want ErrEncode", i, err)
		}
	}
}

func TestCodecDecodeRejectsBadInput(t *testing.T) {
	enc, err := EncodeDocument(sampleDoc())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeDocument(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil input: %v", err)
	}
	if _, err := DecodeDocument([]byte("JSON")); !errors.Is(err, ErrMagic) {
		t.Errorf("bad magic: %v", err)
	}
	wrongVersion := append([]byte(nil), enc...)
	wrongVersion[4] = 99 // codec version varint
	if _, err := DecodeDocument(wrongVersion); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Every proper truncation point must fail cleanly (never panic, never
	// succeed: the format has no self-delimiting tail).
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeDocument(enc[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeDocument(append(append([]byte(nil), enc...), 0xff)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: %v", err)
	}
	// An oversized section count must be rejected before allocation.
	huge := append([]byte(nil), Magic[:]...)
	huge = append(huge, 1, 1)                         // codec + doc version
	huge = append(huge, 0)                            // empty string table
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f) // absurd active count
	if _, err := DecodeDocument(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized count: %v", err)
	}
}

func TestCodecSmallerThanJSON(t *testing.T) {
	doc := sampleDoc()
	enc, err := EncodeDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := doc.Export(&js); err != nil {
		t.Fatal(err)
	}
	if len(enc) >= js.Len() {
		t.Errorf("binary %dB not smaller than JSON %dB", len(enc), js.Len())
	}
}
