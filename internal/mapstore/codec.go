// Package mapstore is the serving layer over the toolkit's traffic maps:
// a compact deterministic binary codec for core.MapDocument, an in-memory
// epoch-versioned store with copy-on-write ingestion (readers never block
// writers), and a query engine (top-K activity, per-AS views, link loads,
// epoch-to-epoch diffs) that cmd/itm-serve exposes over HTTP.
package mapstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"itmap/internal/core"
	"itmap/internal/obs"
	"itmap/internal/topology"
)

// Wire format (all integers are unsigned varints unless noted; floats are
// 8-byte little-endian IEEE 754 bit patterns):
//
//	header    magic "ITMB" | codec version (1) | document version
//	strings   count | count × (len | raw bytes)      sorted unique strings
//	actives   count | delta-encoded sorted prefix IDs (first absolute,
//	          then strictly positive deltas)
//	hitrates  count | count × (prefix delta | float) sorted by prefix
//	activity  count | count × (ASN delta | float)    sorted by ASN
//	sources   count | count × (ASN delta | code byte)
//	coverage  count | count × (prefix delta | code byte)
//	confid    count | count × (ASN delta | float)
//	servers   count | count × (prefix | host AS | owner AS |
//	          org ref | city ref | country ref)      sorted by field tuple
//	mappings  count | count × (domain ref | client AS | serving prefix)
//	          sorted by (domain, client AS)
//
// Every section is sorted and every string interned through one sorted
// table, so the encoding of a document is a pure function of its content:
// decode followed by re-encode is byte-identical, which the store relies
// on for structural sharing and E25 relies on for cross-worker parity.

// Magic identifies an encoded map document.
var Magic = [4]byte{'I', 'T', 'M', 'B'}

// CodecVersion is the wire-format version this package reads and writes.
const CodecVersion = 1

// Typed decode errors. Decoding never panics: corrupted, truncated, or
// oversized inputs surface one of these (possibly wrapped with section
// context).
var (
	// ErrMagic: the input does not start with the ITMB magic.
	ErrMagic = errors.New("mapstore: bad magic")
	// ErrVersion: the codec or document version is unsupported.
	ErrVersion = errors.New("mapstore: unsupported version")
	// ErrTruncated: the input ends before a section completes.
	ErrTruncated = errors.New("mapstore: truncated input")
	// ErrCorrupt: the input decodes to something non-canonical (unsorted
	// entries, out-of-range values, dangling string refs, trailing bytes).
	ErrCorrupt = errors.New("mapstore: corrupt input")
	// ErrEncode: the document holds values the wire format cannot carry
	// (unparseable prefix/ASN keys, unknown source or coverage labels).
	ErrEncode = errors.New("mapstore: unencodable document")
)

// Source and coverage labels get one code byte each. Index = wire code.
var (
	sourceCodes   = []string{"unknown", "cache-probe", "root-logs", "cache-probe+root-logs"}
	coverageCodes = []string{"unknown", "probed-ok", "gave-up", "stale"}
)

func codeOf(table []string, s string) (byte, bool) {
	for i, v := range table {
		if v == s {
			return byte(i), true
		}
	}
	return 0, false
}

const maxPrefixID = 1<<24 - 1

// --- encoding ---------------------------------------------------------------

type encoder struct {
	buf []byte

	// Reusable scratch (pooled): sort staging for every section plus the
	// interned string table. Encoding a steady stream of epochs allocates
	// only the exact-size output slice once the pool is warm.
	actives  []topology.PrefixID
	pEntries []prefixEntry
	aEntries []asnEntry
	servers  []core.ServerDocument
	mappings []core.MappingDocument
	table    []string
	seen     map[string]bool
	ref      map[string]uint64
}

// encPool recycles encoder scratch across EncodeDocument calls. The output
// buffer is cloned to exact size before release, so pooled state never
// escapes.
var encPool = sync.Pool{New: func() any {
	return &encoder{seen: map[string]bool{}, ref: map[string]uint64{}}
}}

// reset clears the scratch for reuse, keeping capacity.
func (e *encoder) reset() {
	e.buf = e.buf[:0]
	e.actives = e.actives[:0]
	e.pEntries = e.pEntries[:0]
	e.aEntries = e.aEntries[:0]
	e.servers = e.servers[:0]
	e.mappings = e.mappings[:0]
	e.table = e.table[:0]
	clear(e.seen)
	clear(e.ref)
}

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *encoder) float(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}
func (e *encoder) raw(b []byte) { e.buf = append(e.buf, b...) }

// prefixEntry is one (prefix, payload) pair of a prefix-keyed section.
type prefixEntry struct {
	p topology.PrefixID
	f float64
	c byte
}

// asnEntry is one (ASN, payload) pair of an ASN-keyed section.
type asnEntry struct {
	asn uint32
	f   float64
	c   byte
}

func parseASN(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("%w: bad ASN key %q", ErrEncode, s)
	}
	return uint32(v), nil
}

func parseDocPrefix(s string) (topology.PrefixID, error) {
	p, err := core.ParsePrefix(s)
	if err != nil {
		return 0, fmt.Errorf("%w: bad prefix key %q", ErrEncode, s)
	}
	return p, nil
}

// EncodeDocument serializes a map document into the ITMB wire format. The
// input is not mutated; entries are sorted into canonical order during
// encoding, so the output bytes are a pure function of the document's
// content.
func EncodeDocument(doc *core.MapDocument) ([]byte, error) {
	if doc == nil {
		return nil, fmt.Errorf("%w: nil document", ErrEncode)
	}
	e := encPool.Get().(*encoder)
	defer encPool.Put(e)
	e.reset()
	e.raw(Magic[:])
	e.uvarint(CodecVersion)
	if doc.Version < 0 {
		return nil, fmt.Errorf("%w: negative document version", ErrEncode)
	}
	e.uvarint(uint64(doc.Version))

	// String table: every server org/city/country and mapping domain,
	// deduplicated and sorted. seen and table are pooled and pre-sized by
	// reuse, so steady-state interning allocates nothing.
	seen := e.seen
	for i := range doc.Servers {
		seen[doc.Servers[i].Org] = true
		seen[doc.Servers[i].City] = true
		seen[doc.Servers[i].Country] = true
	}
	for i := range doc.Mappings {
		seen[doc.Mappings[i].Domain] = true
	}
	if cap(e.table) < len(seen) {
		e.table = make([]string, 0, len(seen))
	}
	table := e.table
	for s := range seen {
		table = append(table, s)
	}
	sort.Strings(table)
	e.table = table
	ref := e.ref
	for i, s := range table {
		ref[s] = uint64(i)
	}
	e.uvarint(uint64(len(table)))
	for _, s := range table {
		e.uvarint(uint64(len(s)))
		e.raw([]byte(s))
	}

	// Active prefixes.
	if cap(e.actives) < len(doc.ActivePrefixes) {
		e.actives = make([]topology.PrefixID, 0, len(doc.ActivePrefixes))
	}
	actives := e.actives
	for _, s := range doc.ActivePrefixes {
		p, err := parseDocPrefix(s)
		if err != nil {
			return nil, err
		}
		actives = append(actives, p)
	}
	sort.Slice(actives, func(i, j int) bool { return actives[i] < actives[j] })
	e.actives = actives
	for i := 1; i < len(actives); i++ {
		if actives[i] == actives[i-1] {
			return nil, fmt.Errorf("%w: duplicate active prefix %v", ErrEncode, actives[i])
		}
	}
	e.uvarint(uint64(len(actives)))
	prev := topology.PrefixID(0)
	for i, p := range actives {
		if i == 0 {
			e.uvarint(uint64(p))
		} else {
			e.uvarint(uint64(p - prev))
		}
		prev = p
	}

	// Prefix-keyed float and code sections.
	if err := e.prefixFloats(doc.PrefixHitRates); err != nil {
		return nil, err
	}
	if err := e.asnFloats(doc.ASActivity); err != nil {
		return nil, err
	}
	if err := e.asnCodes(doc.Sources, sourceCodes, "source"); err != nil {
		return nil, err
	}
	if err := e.prefixCodes(doc.Coverage, coverageCodes, "coverage"); err != nil {
		return nil, err
	}
	if err := e.asnFloats(doc.ASConfidence); err != nil {
		return nil, err
	}

	// Servers, sorted by the full field tuple so ties on prefix still
	// have one canonical order.
	if cap(e.servers) < len(doc.Servers) {
		e.servers = make([]core.ServerDocument, len(doc.Servers))
	}
	servers := e.servers[:len(doc.Servers)]
	copy(servers, doc.Servers)
	sort.Slice(servers, func(i, j int) bool { return serverTupleLess(&servers[i], &servers[j]) })
	e.servers = servers
	e.uvarint(uint64(len(servers)))
	for i := range servers {
		s := &servers[i]
		p, err := parseDocPrefix(s.Prefix)
		if err != nil {
			return nil, err
		}
		e.uvarint(uint64(p))
		e.uvarint(uint64(s.HostAS))
		e.uvarint(uint64(s.OwnerAS))
		e.uvarint(ref[s.Org])
		e.uvarint(ref[s.City])
		e.uvarint(ref[s.Country])
	}

	// Mappings, sorted by (domain, client AS); the key is unique, so
	// canonical order is strictly ascending.
	if cap(e.mappings) < len(doc.Mappings) {
		e.mappings = make([]core.MappingDocument, len(doc.Mappings))
	}
	mappings := e.mappings[:len(doc.Mappings)]
	copy(mappings, doc.Mappings)
	sort.Slice(mappings, func(i, j int) bool {
		a, b := &mappings[i], &mappings[j]
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.ClientAS < b.ClientAS
	})
	for i := 1; i < len(mappings); i++ {
		if mappings[i].Domain == mappings[i-1].Domain && mappings[i].ClientAS == mappings[i-1].ClientAS {
			return nil, fmt.Errorf("%w: duplicate mapping key (%s, %d)", ErrEncode, mappings[i].Domain, mappings[i].ClientAS)
		}
	}
	e.uvarint(uint64(len(mappings)))
	for i := range mappings {
		m := &mappings[i]
		p, err := parseDocPrefix(m.Serving)
		if err != nil {
			return nil, err
		}
		e.uvarint(ref[m.Domain])
		e.uvarint(uint64(m.ClientAS))
		e.uvarint(uint64(p))
	}
	e.mappings = mappings
	obs.C("itm_codec_encoded_bytes_total", "ITMB bytes produced by document encodes.").Add(uint64(len(e.buf)))
	// Exact-size clone: the pooled buffer stays with the encoder; callers
	// retain only their own bytes.
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out, nil
}

func serverTupleLess(a, b *core.ServerDocument) bool {
	if a.Prefix != b.Prefix {
		pa, ea := core.ParsePrefix(a.Prefix)
		pb, eb := core.ParsePrefix(b.Prefix)
		if ea == nil && eb == nil {
			return pa < pb
		}
		return a.Prefix < b.Prefix
	}
	if a.HostAS != b.HostAS {
		return a.HostAS < b.HostAS
	}
	if a.OwnerAS != b.OwnerAS {
		return a.OwnerAS < b.OwnerAS
	}
	if a.Org != b.Org {
		return a.Org < b.Org
	}
	if a.City != b.City {
		return a.City < b.City
	}
	return a.Country < b.Country
}

// prefixScratch returns the pooled prefix-entry staging slice, emptied and
// grown to hold n entries.
func (e *encoder) prefixScratch(n int) []prefixEntry {
	if cap(e.pEntries) < n {
		e.pEntries = make([]prefixEntry, 0, n)
	}
	return e.pEntries[:0]
}

// asnScratch is prefixScratch for ASN-keyed sections.
func (e *encoder) asnScratch(n int) []asnEntry {
	if cap(e.aEntries) < n {
		e.aEntries = make([]asnEntry, 0, n)
	}
	return e.aEntries[:0]
}

func (e *encoder) prefixFloats(m map[string]float64) error {
	entries := e.prefixScratch(len(m))
	for s, v := range m {
		p, err := parseDocPrefix(s)
		if err != nil {
			return err
		}
		entries = append(entries, prefixEntry{p: p, f: v})
	}
	e.pEntries = entries
	sort.Slice(entries, func(i, j int) bool { return entries[i].p < entries[j].p })
	e.uvarint(uint64(len(entries)))
	prev := topology.PrefixID(0)
	for i, en := range entries {
		if i == 0 {
			e.uvarint(uint64(en.p))
		} else {
			e.uvarint(uint64(en.p - prev))
		}
		prev = en.p
		e.float(en.f)
	}
	return nil
}

func (e *encoder) prefixCodes(m map[string]string, table []string, what string) error {
	entries := e.prefixScratch(len(m))
	for s, v := range m {
		p, err := parseDocPrefix(s)
		if err != nil {
			return err
		}
		c, ok := codeOf(table, v)
		if !ok {
			return fmt.Errorf("%w: unknown %s label %q", ErrEncode, what, v)
		}
		entries = append(entries, prefixEntry{p: p, c: c})
	}
	e.pEntries = entries
	sort.Slice(entries, func(i, j int) bool { return entries[i].p < entries[j].p })
	e.uvarint(uint64(len(entries)))
	prev := topology.PrefixID(0)
	for i, en := range entries {
		if i == 0 {
			e.uvarint(uint64(en.p))
		} else {
			e.uvarint(uint64(en.p - prev))
		}
		prev = en.p
		e.byte(en.c)
	}
	return nil
}

func (e *encoder) asnFloats(m map[string]float64) error {
	entries := e.asnScratch(len(m))
	for s, v := range m {
		asn, err := parseASN(s)
		if err != nil {
			return err
		}
		entries = append(entries, asnEntry{asn: asn, f: v})
	}
	e.aEntries = entries
	sort.Slice(entries, func(i, j int) bool { return entries[i].asn < entries[j].asn })
	e.uvarint(uint64(len(entries)))
	prev := uint32(0)
	for i, en := range entries {
		if i == 0 {
			e.uvarint(uint64(en.asn))
		} else {
			e.uvarint(uint64(en.asn - prev))
		}
		prev = en.asn
		e.float(en.f)
	}
	return nil
}

func (e *encoder) asnCodes(m map[string]string, table []string, what string) error {
	entries := e.asnScratch(len(m))
	for s, v := range m {
		asn, err := parseASN(s)
		if err != nil {
			return err
		}
		c, ok := codeOf(table, v)
		if !ok {
			return fmt.Errorf("%w: unknown %s label %q", ErrEncode, what, v)
		}
		entries = append(entries, asnEntry{asn: asn, c: c})
	}
	e.aEntries = entries
	sort.Slice(entries, func(i, j int) bool { return entries[i].asn < entries[j].asn })
	e.uvarint(uint64(len(entries)))
	prev := uint32(0)
	for i, en := range entries {
		if i == 0 {
			e.uvarint(uint64(en.asn))
		} else {
			e.uvarint(uint64(en.asn - prev))
		}
		prev = en.asn
		e.byte(en.c)
	}
	return nil
}

// --- decoding ---------------------------------------------------------------

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		if n == 0 {
			return 0, fmt.Errorf("%w: %s", ErrTruncated, what)
		}
		return 0, fmt.Errorf("%w: %s varint overflows", ErrCorrupt, what)
	}
	// Reject non-minimal encodings (a trailing 0x00 continuation group):
	// the encoder always writes minimal varints, and accepting a redundant
	// form would break decode→re-encode byte-identity.
	if n > 1 && d.buf[d.pos+n-1] == 0 {
		return 0, fmt.Errorf("%w: %s varint not minimal", ErrCorrupt, what)
	}
	d.pos += n
	return v, nil
}

// count reads a section count and sanity-checks it against the bytes left:
// each entry occupies at least minEntry bytes, so a count larger than
// remaining/minEntry is an oversized-input attack, not a document.
func (d *decoder) count(what string, minEntry int) (int, error) {
	v, err := d.uvarint(what + " count")
	if err != nil {
		return 0, err
	}
	if minEntry < 1 {
		minEntry = 1
	}
	if v > uint64(d.remaining()/minEntry) {
		return 0, fmt.Errorf("%w: %s count %d exceeds input size", ErrCorrupt, what, v)
	}
	return int(v), nil
}

func (d *decoder) byteVal(what string) (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("%w: %s", ErrTruncated, what)
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) float(what string) (float64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("%w: %s", ErrTruncated, what)
	}
	bits := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return math.Float64frombits(bits), nil
}

func (d *decoder) str(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", fmt.Errorf("%w: %s", ErrTruncated, what)
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

// deltaSeq reads a strictly ascending prefix/ASN sequence: first value
// absolute, then positive deltas. max bounds the final values.
func (d *decoder) deltaSeq(what string, n int, max uint64, visit func(i int, v uint64) error) error {
	var cur uint64
	for i := 0; i < n; i++ {
		v, err := d.uvarint(what)
		if err != nil {
			return err
		}
		if i == 0 {
			cur = v
		} else {
			if v == 0 {
				return fmt.Errorf("%w: %s not strictly ascending", ErrCorrupt, what)
			}
			cur += v
		}
		if cur > max {
			return fmt.Errorf("%w: %s value %d out of range", ErrCorrupt, what, cur)
		}
		if err := visit(i, cur); err != nil {
			return err
		}
	}
	return nil
}

// DecodeDocument parses ITMB bytes back into a map document. The result is
// canonical (sorted sections, nil empty optional maps), so re-encoding it
// reproduces the input bytes exactly. Corrupted, truncated, or oversized
// inputs return a typed error; decoding never panics.
func DecodeDocument(data []byte) (*core.MapDocument, error) {
	d := &decoder{buf: data}
	if d.remaining() < len(Magic) {
		return nil, fmt.Errorf("%w: input shorter than magic", ErrTruncated)
	}
	if string(d.buf[:len(Magic)]) != string(Magic[:]) {
		return nil, ErrMagic
	}
	d.pos = len(Magic)
	cv, err := d.uvarint("codec version")
	if err != nil {
		return nil, err
	}
	if cv != CodecVersion {
		return nil, fmt.Errorf("%w: codec version %d", ErrVersion, cv)
	}
	dv, err := d.uvarint("document version")
	if err != nil {
		return nil, err
	}
	if dv > math.MaxInt32 {
		return nil, fmt.Errorf("%w: document version %d", ErrVersion, dv)
	}
	doc := &core.MapDocument{
		Version:        int(dv),
		PrefixHitRates: map[string]float64{},
		ASActivity:     map[string]float64{},
		Sources:        map[string]string{},
	}

	// String table.
	nStr, err := d.count("string table", 1)
	if err != nil {
		return nil, err
	}
	table := make([]string, nStr)
	for i := range table {
		s, err := d.str("string table entry")
		if err != nil {
			return nil, err
		}
		if i > 0 && s <= table[i-1] {
			return nil, fmt.Errorf("%w: string table not strictly sorted", ErrCorrupt)
		}
		table[i] = s
	}
	used := make([]bool, len(table))
	lookup := func(what string, idx uint64) (string, error) {
		if idx >= uint64(len(table)) {
			return "", fmt.Errorf("%w: %s string ref %d out of table", ErrCorrupt, what, idx)
		}
		used[idx] = true
		return table[idx], nil
	}

	// Active prefixes.
	n, err := d.count("active prefixes", 1)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		doc.ActivePrefixes = make([]string, 0, n)
	}
	err = d.deltaSeq("active prefix", n, maxPrefixID, func(_ int, v uint64) error {
		doc.ActivePrefixes = append(doc.ActivePrefixes, topology.PrefixID(v).String())
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Prefix hit rates.
	if n, err = d.count("prefix hit rates", 9); err != nil {
		return nil, err
	}
	err = d.deltaSeq("hit-rate prefix", n, maxPrefixID, func(_ int, v uint64) error {
		f, err := d.float("hit-rate value")
		if err != nil {
			return err
		}
		doc.PrefixHitRates[topology.PrefixID(v).String()] = f
		return nil
	})
	if err != nil {
		return nil, err
	}

	// AS activity.
	if n, err = d.count("AS activity", 9); err != nil {
		return nil, err
	}
	err = d.deltaSeq("activity ASN", n, math.MaxUint32, func(_ int, v uint64) error {
		f, err := d.float("activity value")
		if err != nil {
			return err
		}
		doc.ASActivity[strconv.FormatUint(v, 10)] = f
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Sources.
	if n, err = d.count("sources", 2); err != nil {
		return nil, err
	}
	err = d.deltaSeq("source ASN", n, math.MaxUint32, func(_ int, v uint64) error {
		c, err := d.byteVal("source code")
		if err != nil {
			return err
		}
		if int(c) >= len(sourceCodes) {
			return fmt.Errorf("%w: source code %d", ErrCorrupt, c)
		}
		doc.Sources[strconv.FormatUint(v, 10)] = sourceCodes[c]
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Coverage.
	if n, err = d.count("coverage", 2); err != nil {
		return nil, err
	}
	if n > 0 {
		doc.Coverage = make(map[string]string, n)
	}
	err = d.deltaSeq("coverage prefix", n, maxPrefixID, func(_ int, v uint64) error {
		c, err := d.byteVal("coverage code")
		if err != nil {
			return err
		}
		if int(c) >= len(coverageCodes) {
			return fmt.Errorf("%w: coverage code %d", ErrCorrupt, c)
		}
		doc.Coverage[topology.PrefixID(v).String()] = coverageCodes[c]
		return nil
	})
	if err != nil {
		return nil, err
	}

	// AS confidence.
	if n, err = d.count("AS confidence", 9); err != nil {
		return nil, err
	}
	if n > 0 {
		doc.ASConfidence = make(map[string]float64, n)
	}
	err = d.deltaSeq("confidence ASN", n, math.MaxUint32, func(_ int, v uint64) error {
		f, err := d.float("confidence value")
		if err != nil {
			return err
		}
		doc.ASConfidence[strconv.FormatUint(v, 10)] = f
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Servers.
	if n, err = d.count("servers", 6); err != nil {
		return nil, err
	}
	if n > 0 {
		doc.Servers = make([]core.ServerDocument, 0, n)
	}
	for i := 0; i < n; i++ {
		var s core.ServerDocument
		p, err := d.uvarint("server prefix")
		if err != nil {
			return nil, err
		}
		if p > maxPrefixID {
			return nil, fmt.Errorf("%w: server prefix %d out of range", ErrCorrupt, p)
		}
		s.Prefix = topology.PrefixID(p).String()
		host, err := d.uvarint("server host AS")
		if err != nil {
			return nil, err
		}
		owner, err := d.uvarint("server owner AS")
		if err != nil {
			return nil, err
		}
		if host > math.MaxUint32 || owner > math.MaxUint32 {
			return nil, fmt.Errorf("%w: server AS out of range", ErrCorrupt)
		}
		s.HostAS, s.OwnerAS = uint32(host), uint32(owner)
		for _, f := range []struct {
			what string
			dst  *string
		}{{"server org", &s.Org}, {"server city", &s.City}, {"server country", &s.Country}} {
			idx, err := d.uvarint(f.what)
			if err != nil {
				return nil, err
			}
			if *f.dst, err = lookup(f.what, idx); err != nil {
				return nil, err
			}
		}
		if i > 0 {
			prev := &doc.Servers[i-1]
			if serverTupleLess(&s, prev) {
				return nil, fmt.Errorf("%w: servers not in canonical order", ErrCorrupt)
			}
		}
		doc.Servers = append(doc.Servers, s)
	}

	// Mappings.
	if n, err = d.count("mappings", 3); err != nil {
		return nil, err
	}
	if n > 0 {
		doc.Mappings = make([]core.MappingDocument, 0, n)
	}
	var prevDom uint64
	var prevAS uint32
	for i := 0; i < n; i++ {
		var m core.MappingDocument
		dom, err := d.uvarint("mapping domain")
		if err != nil {
			return nil, err
		}
		if m.Domain, err = lookup("mapping domain", dom); err != nil {
			return nil, err
		}
		cas, err := d.uvarint("mapping client AS")
		if err != nil {
			return nil, err
		}
		if cas > math.MaxUint32 {
			return nil, fmt.Errorf("%w: mapping client AS out of range", ErrCorrupt)
		}
		m.ClientAS = uint32(cas)
		p, err := d.uvarint("mapping serving prefix")
		if err != nil {
			return nil, err
		}
		if p > maxPrefixID {
			return nil, fmt.Errorf("%w: mapping serving prefix out of range", ErrCorrupt)
		}
		m.Serving = topology.PrefixID(p).String()
		if i > 0 && (dom < prevDom || (dom == prevDom && m.ClientAS <= prevAS)) {
			return nil, fmt.Errorf("%w: mappings not in canonical order", ErrCorrupt)
		}
		prevDom, prevAS = dom, m.ClientAS
		doc.Mappings = append(doc.Mappings, m)
	}

	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	// An unreferenced table entry would vanish on re-encode, breaking the
	// decode→re-encode byte-identity the store's sharing checks rely on —
	// canonical inputs never carry one.
	for i, u := range used {
		if !u {
			return nil, fmt.Errorf("%w: unreferenced string table entry %d", ErrCorrupt, i)
		}
	}
	obs.C("itm_codec_decoded_bytes_total", "ITMB bytes consumed by successful document decodes.").Add(uint64(len(data)))
	return doc, nil
}
