package mapstore

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"itmap/internal/obs"
	"itmap/internal/obs/history"
	"itmap/internal/obs/slo"
)

// NewHandler exposes the store's query engine as an HTTP JSON API:
//
//	GET /healthz                  liveness + epoch count
//	GET /v1/epochs                epoch metadata, oldest first
//	GET /v1/map/{epoch}           full map document (?format=binary → ITMB)
//	GET /v1/top?epoch=&k=         top-K ASes by activity
//	GET /v1/as/{asn}?epoch=&k=    per-AS view + longitudinal series
//	GET /v1/diff/{a}/{b}?min_shift=  epoch-to-epoch diff
//	GET /v1/link/{a}/{b}?epoch=   ground-truth link load (if ingested)
//	GET /v1/path/{a}/{b}?epoch=   user↔user observed AS path (if meshed)
//	GET /v1/latency/{a}/{b}?epoch= user↔user RTT summary (if meshed)
//	GET /v1/latency/top?epoch=&k= worst mesh pairs by mean RTT
//	GET /v1/obs/history           telemetry history ring (stable families per sample)
//	GET /v1/obs/history/{family}  one family's series across the retained samples
//	GET /v1/slo                   SLO burn-rate report over the history ring
//
// The handler only reads store snapshots, so it serves concurrently with
// ingestion without locking; each request resolves one snapshot up front
// and answers entirely from it, so a concurrent append can never produce a
// half-old, half-new response. Responses are deterministic for a given
// store state — every slice the query layer returns is sorted — and flow
// through the epoch-keyed response cache (see cache.go): bodies encode
// once, revalidations answer 304 with zero body work.
func NewHandler(s *Store) http.Handler {
	h := &handler{s: s, eng: &slo.Engine{Objectives: slo.ServingObjectives()}}
	mux := http.NewServeMux()
	route := func(pattern string, fn http.HandlerFunc) {
		// Metrics label on the registered pattern, never the raw path:
		// cardinality stays bounded by the route table.
		mux.Handle(pattern, obs.InstrumentHandler(pattern, fn))
	}
	route("GET /healthz", h.healthz)
	route("GET /v1/epochs", h.epochs)
	route("GET /v1/map/{epoch}", h.mapDoc)
	route("GET /v1/top", h.top)
	route("GET /v1/as/{asn}", h.asView)
	route("GET /v1/diff/{a}/{b}", h.diff)
	route("GET /v1/link/{a}/{b}", h.link)
	route("GET /v1/path/{a}/{b}", h.meshPath)
	route("GET /v1/latency/{a}/{b}", h.meshLatency)
	route("GET /v1/latency/top", h.meshLatencyTop)
	route("GET /v1/obs/history", h.obsHistory)
	route("GET /v1/obs/history/{family}", h.obsHistoryFamily)
	route("GET /v1/slo", h.slo)
	return mux
}

type handler struct {
	s *Store
	// eng judges the serving objectives. Ring and registry resolve at
	// evaluation time, so the handler follows test-time obs/history swaps.
	eng *slo.Engine

	hmu sync.Mutex
	// History responses cache per ring generation: a new sample publishes a
	// new snapshot, so the cache swaps wholesale — the same
	// invalidate-by-construction scheme the store's epochList cache uses.
	//itm:guardedby hmu
	histGen int
	//itm:guardedby hmu
	histCache *responseCache
}

// historyCache returns the response cache for the snapshot's generation,
// replacing the previous generation's cache on first use.
func (h *handler) historyCache(snap *history.Snapshot) *responseCache {
	h.hmu.Lock()
	defer h.hmu.Unlock()
	if h.histCache == nil || h.histGen != snap.Gen {
		h.histGen = snap.Gen
		h.histCache = newResponseCache()
	}
	return h.histCache
}

// view resolves the request's store snapshot: one atomic load, then every
// lookup (epoch resolution, series, caching) answers from it.
func (h *handler) view() *epochList { return h.s.cur.Load() }

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // network write failures have no recovery path here
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// jsonBody renders a value exactly as writeJSON would put it on the wire
// (indented + trailing newline), as cacheable bytes.
func jsonBody(v any) ([]byte, string, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, "", err
	}
	return append(b, '\n'), "application/json", nil
}

// Default query parameters, shared with the append-time prebake so the
// first post-append request for the common shapes is already cached.
const (
	defaultTopK     = 10
	defaultMinShift = 0.01
)

// topResponse is the /v1/top body.
type topResponse struct {
	Epoch int      `json:"epoch"`
	Top   []ASRank `json:"top"`
}

// Cache keys are normalized query shapes, so "?k=10", "?k=10&epoch=2" on
// epoch 2, and the bare default all collapse to one entry per epoch.
func topKey(k int) string { return "top?k=" + strconv.Itoa(k) }

func diffKey(a, b int, minShift float64) string {
	return "diff?a=" + strconv.Itoa(a) + "&b=" + strconv.Itoa(b) +
		"&min_shift=" + strconv.FormatFloat(minShift, 'g', -1, 64)
}

// epochAt resolves an epoch ID inside one snapshot.
func epochAt(es []*Epoch, id int) (*Epoch, bool) {
	if id < 0 || id >= len(es) {
		return nil, false
	}
	return es[id], true
}

// epochIn resolves the optional ?epoch= selector (default: latest) against
// the request's snapshot.
func epochIn(v *epochList, r *http.Request) (*Epoch, error) {
	q := r.URL.Query().Get("epoch")
	if q == "" {
		if len(v.epochs) == 0 {
			return nil, fmt.Errorf("store has no epochs")
		}
		return v.epochs[len(v.epochs)-1], nil
	}
	id, err := strconv.Atoi(q)
	if err != nil {
		return nil, fmt.Errorf("bad epoch %q", q)
	}
	e, ok := epochAt(v.epochs, id)
	if !ok {
		return nil, fmt.Errorf("no epoch %d", id)
	}
	return e, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return def, nil
	}
	v, err := strconv.Atoi(q)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, q)
	}
	return v, nil
}

func pathASN(r *http.Request, name string) (uint32, error) {
	raw := r.PathValue(name)
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad ASN %q", raw)
	}
	return uint32(v), nil
}

// objectiveHealth is one objective's line in the deepened /healthz body.
type objectiveHealth struct {
	Name   string `json:"name"`
	Status string `json:"status"`
}

// healthz reports liveness plus per-objective SLO status: "ok" until an
// objective is violated, then "degraded" — liveness never turns into a
// crash-loop signal just because an SLO is burning.
func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	rep := h.eng.Evaluate()
	status := "ok"
	objs := make([]objectiveHealth, 0, len(rep.Objectives))
	for _, o := range rep.Objectives {
		if o.Status == slo.StatusViolated {
			status = "degraded"
		}
		objs = append(objs, objectiveHealth{Name: o.Name, Status: o.Status})
	}
	writeJSON(w, http.StatusOK, struct {
		Status string            `json:"status"`
		Epochs int               `json:"epochs"`
		SLO    []objectiveHealth `json:"slo"`
	}{Status: status, Epochs: h.s.Len(), SLO: objs})
}

// obsHistory serves the telemetry history ring through the response cache:
// the ring's ETag is content-derived, so revalidations 304 and the body
// encodes once per generation.
func (h *handler) obsHistory(w http.ResponseWriter, r *http.Request) {
	snap := history.Default().Snapshot()
	c := h.historyCache(snap)
	serveCached(w, r, "/v1/obs/history", c, "history", snap.ETag, func() ([]byte, string, error) {
		b, err := snap.MarshalBody()
		if err != nil {
			return nil, "", err
		}
		return b, "application/json", nil
	})
}

// obsHistoryFamily serves one family's values across the retained samples.
func (h *handler) obsHistoryFamily(w http.ResponseWriter, r *http.Request) {
	fam := r.PathValue("family")
	snap := history.Default().Snapshot()
	c := h.historyCache(snap)
	serveCached(w, r, "/v1/obs/history/{family}", c, "history/"+fam, snap.FamilyETag(fam),
		func() ([]byte, string, error) {
			b, ok, err := snap.MarshalFamilyBody(fam)
			if err != nil {
				return nil, "", err
			}
			if !ok {
				return nil, "", &statusErr{http.StatusNotFound,
					fmt.Sprintf("no family %q in history", fam)}
			}
			return b, "application/json", nil
		})
}

// slo serves the burn-rate report. The body depends on the live registry
// (the "now" point moves with every request served), so it is rendered
// fresh rather than cached — still byte-deterministic for a controlled
// request sequence, which the identity tests pin.
func (h *handler) slo(w http.ResponseWriter, r *http.Request) {
	b, err := h.eng.Evaluate().MarshalJSONBody()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (h *handler) epochs(w http.ResponseWriter, r *http.Request) {
	v := h.view()
	serveCached(w, r, "/v1/epochs", v.cache, "epochs", v.etag, func() ([]byte, string, error) {
		return jsonBody(struct {
			Epochs []Info `json:"epochs"`
		}{Epochs: infosIn(v.epochs)})
	})
}

func (h *handler) mapDoc(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("epoch"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad epoch %q", r.PathValue("epoch"))
		return
	}
	v := h.view()
	e, ok := epochAt(v.epochs, id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no epoch %d", id)
		return
	}
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		serveCached(w, r, "/v1/map/{epoch}", e.cache, "map.json", e.ETag, func() ([]byte, string, error) {
			return jsonBody(e.Doc)
		})
	case "binary":
		serveBinary(w, r, "/v1/map/{epoch}", e)
	default:
		writeErr(w, http.StatusBadRequest, "unknown format %q", f)
	}
}

func (h *handler) top(w http.ResponseWriter, r *http.Request) {
	v := h.view()
	e, err := epochIn(v, r)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	k, err := intParam(r, "k", defaultTopK)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	serveCached(w, r, "/v1/top", e.cache, topKey(k), e.ETag, func() ([]byte, string, error) {
		return jsonBody(topResponse{Epoch: e.ID, Top: e.TopASes(k)})
	})
}

func (h *handler) asView(w http.ResponseWriter, r *http.Request) {
	asn, err := pathASN(r, "asn")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	v := h.view()
	e, err := epochIn(v, r)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	k, err := intParam(r, "k", defaultTopK)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The response spans the whole store (the longitudinal series), so it
	// caches on the snapshot, keyed by the fully-resolved query shape, and
	// carries the store ETag — one append invalidates it wholesale.
	key := "as?asn=" + strconv.FormatUint(uint64(asn), 10) +
		"&epoch=" + strconv.Itoa(e.ID) + "&k=" + strconv.Itoa(k)
	serveCached(w, r, "/v1/as/{asn}", v.cache, key, v.etag, func() ([]byte, string, error) {
		av, ok := e.ASView(asn, k)
		if !ok {
			return nil, "", &statusErr{http.StatusNotFound,
				fmt.Sprintf("AS %d not in epoch %d", asn, e.ID)}
		}
		return jsonBody(struct {
			ASView
			Series []EpochValue `json:"series"`
		}{ASView: av, Series: seriesIn(v.epochs, asn)})
	})
}

func (h *handler) diff(w http.ResponseWriter, r *http.Request) {
	a, errA := strconv.Atoi(r.PathValue("a"))
	b, errB := strconv.Atoi(r.PathValue("b"))
	if errA != nil || errB != nil {
		writeErr(w, http.StatusBadRequest, "bad epoch pair %q/%q", r.PathValue("a"), r.PathValue("b"))
		return
	}
	minShift := defaultMinShift
	if q := r.URL.Query().Get("min_shift"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad min_shift %q", q)
			return
		}
		minShift = v
	}
	v := h.view()
	ea, okA := epochAt(v.epochs, a)
	if !okA {
		writeErr(w, http.StatusNotFound, "mapstore: no epoch %d", a)
		return
	}
	eb, okB := epochAt(v.epochs, b)
	if !okB {
		writeErr(w, http.StatusNotFound, "mapstore: no epoch %d", b)
		return
	}
	// A diff is pair-scoped and immutable; it caches on the newer epoch so
	// the entry ages out with the epochs themselves, never with appends.
	newer := ea
	if eb.ID > newer.ID {
		newer = eb
	}
	serveCached(w, r, "/v1/diff/{a}/{b}", newer.cache, diffKey(a, b, minShift), pairETag(ea, eb),
		func() ([]byte, string, error) {
			return jsonBody(diffEpochs(ea, eb, minShift))
		})
}

func (h *handler) link(w http.ResponseWriter, r *http.Request) {
	a, errA := pathASN(r, "a")
	b, errB := pathASN(r, "b")
	if errA != nil || errB != nil {
		writeErr(w, http.StatusBadRequest, "bad AS pair %q/%q", r.PathValue("a"), r.PathValue("b"))
		return
	}
	v := h.view()
	e, err := epochIn(v, r)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	key := "link?a=" + strconv.FormatUint(uint64(a), 10) + "&b=" + strconv.FormatUint(uint64(b), 10)
	serveCached(w, r, "/v1/link/{a}/{b}", e.cache, key, e.ETag, func() ([]byte, string, error) {
		load, ok := e.LinkLoad(a, b)
		if !ok {
			return nil, "", &statusErr{http.StatusNotFound,
				fmt.Sprintf("no link load for %d-%d in epoch %d", a, b, e.ID)}
		}
		return jsonBody(struct {
			Epoch      int     `json:"epoch"`
			A          uint32  `json:"a"`
			B          uint32  `json:"b"`
			DailyBytes float64 `json:"daily_bytes"`
		}{Epoch: e.ID, A: a, B: b, DailyBytes: load})
	})
}
