package mapstore

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"itmap/internal/obs"
)

// NewHandler exposes the store's query engine as an HTTP JSON API:
//
//	GET /healthz                  liveness + epoch count
//	GET /v1/epochs                epoch metadata, oldest first
//	GET /v1/map/{epoch}           full map document (?format=binary → ITMB)
//	GET /v1/top?epoch=&k=         top-K ASes by activity
//	GET /v1/as/{asn}?epoch=&k=    per-AS view + longitudinal series
//	GET /v1/diff/{a}/{b}?min_shift=  epoch-to-epoch diff
//	GET /v1/link/{a}/{b}?epoch=   ground-truth link load (if ingested)
//
// The handler only reads store snapshots, so it serves concurrently with
// ingestion without locking. Responses are deterministic for a given store
// state: every slice the query layer returns is sorted.
func NewHandler(s *Store) http.Handler {
	h := &handler{s: s}
	mux := http.NewServeMux()
	route := func(pattern string, fn http.HandlerFunc) {
		// Metrics label on the registered pattern, never the raw path:
		// cardinality stays bounded by the route table.
		mux.Handle(pattern, obs.InstrumentHandler(pattern, fn))
	}
	route("GET /healthz", h.healthz)
	route("GET /v1/epochs", h.epochs)
	route("GET /v1/map/{epoch}", h.mapDoc)
	route("GET /v1/top", h.top)
	route("GET /v1/as/{asn}", h.asView)
	route("GET /v1/diff/{a}/{b}", h.diff)
	route("GET /v1/link/{a}/{b}", h.link)
	return mux
}

type handler struct {
	s *Store
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // network write failures have no recovery path here
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// epochParam resolves the optional ?epoch= selector (default: latest).
func (h *handler) epochParam(r *http.Request) (*Epoch, error) {
	q := r.URL.Query().Get("epoch")
	if q == "" {
		e := h.s.Latest()
		if e == nil {
			return nil, fmt.Errorf("store has no epochs")
		}
		return e, nil
	}
	id, err := strconv.Atoi(q)
	if err != nil {
		return nil, fmt.Errorf("bad epoch %q", q)
	}
	e, ok := h.s.Epoch(id)
	if !ok {
		return nil, fmt.Errorf("no epoch %d", id)
	}
	return e, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return def, nil
	}
	v, err := strconv.Atoi(q)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, q)
	}
	return v, nil
}

func pathASN(r *http.Request, name string) (uint32, error) {
	raw := r.PathValue(name)
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad ASN %q", raw)
	}
	return uint32(v), nil
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Epochs int    `json:"epochs"`
	}{Status: "ok", Epochs: h.s.Len()})
}

func (h *handler) epochs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Epochs []Info `json:"epochs"`
	}{Epochs: h.s.Infos()})
}

func (h *handler) mapDoc(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("epoch"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad epoch %q", r.PathValue("epoch"))
		return
	}
	e, ok := h.s.Epoch(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no epoch %d", id)
		return
	}
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		writeJSON(w, http.StatusOK, e.Doc)
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(e.Encoded)
	default:
		writeErr(w, http.StatusBadRequest, "unknown format %q", f)
	}
}

func (h *handler) top(w http.ResponseWriter, r *http.Request) {
	e, err := h.epochParam(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Epoch int      `json:"epoch"`
		Top   []ASRank `json:"top"`
	}{Epoch: e.ID, Top: e.TopASes(k)})
}

func (h *handler) asView(w http.ResponseWriter, r *http.Request) {
	asn, err := pathASN(r, "asn")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := h.epochParam(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, ok := e.ASView(asn, k)
	if !ok {
		writeErr(w, http.StatusNotFound, "AS %d not in epoch %d", asn, e.ID)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ASView
		Series []EpochValue `json:"series"`
	}{ASView: v, Series: h.s.ASActivitySeries(asn)})
}

func (h *handler) diff(w http.ResponseWriter, r *http.Request) {
	a, errA := strconv.Atoi(r.PathValue("a"))
	b, errB := strconv.Atoi(r.PathValue("b"))
	if errA != nil || errB != nil {
		writeErr(w, http.StatusBadRequest, "bad epoch pair %q/%q", r.PathValue("a"), r.PathValue("b"))
		return
	}
	minShift := 0.01
	if q := r.URL.Query().Get("min_shift"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad min_shift %q", q)
			return
		}
		minShift = v
	}
	d, err := h.s.Diff(a, b, minShift)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (h *handler) link(w http.ResponseWriter, r *http.Request) {
	a, errA := pathASN(r, "a")
	b, errB := pathASN(r, "b")
	if errA != nil || errB != nil {
		writeErr(w, http.StatusBadRequest, "bad AS pair %q/%q", r.PathValue("a"), r.PathValue("b"))
		return
	}
	e, err := h.epochParam(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	load, ok := e.LinkLoad(a, b)
	if !ok {
		writeErr(w, http.StatusNotFound, "no link load for %d-%d in epoch %d", a, b, e.ID)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Epoch      int     `json:"epoch"`
		A          uint32  `json:"a"`
		B          uint32  `json:"b"`
		DailyBytes float64 `json:"daily_bytes"`
	}{Epoch: e.ID, A: a, B: b, DailyBytes: load})
}
