package mapstore

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"itmap/internal/simtime"
)

// meshStoreWith is storeWith plus the sample mesh attached to every epoch.
func meshStoreWith(t *testing.T, days int) *Store {
	t.Helper()
	s := NewStore()
	for d := 0; d < days; d++ {
		if _, err := s.AppendMesh(simtime.Time(d)*simtime.Day, docAt(d), sampleMesh()); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// meshGet wraps getFull (cache_test.go) and drains the body.
func meshGet(t *testing.T, srv *httptest.Server, path, inm string) (*http.Response, []byte) {
	t.Helper()
	resp := getFull(t, srv, path, inm)
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp, body
}

func TestMeshRoutes(t *testing.T) {
	srv := httptest.NewServer(NewHandler(meshStoreWith(t, 2)))
	defer srv.Close()

	var path meshPathResponse
	getJSON(t, srv, "/v1/path/3000/3001", &path)
	if path.Epoch != 1 || path.A != 3000 || path.B != 3001 || !path.Complete {
		t.Errorf("path %+v", path)
	}
	if len(path.Path) != 3 || path.Path[1] != 10 {
		t.Errorf("path hops %v", path.Path)
	}
	// The pair is canonical: querying in reverse order answers identically.
	_, fwd := get(t, srv, "/v1/path/3000/3001")
	_, rev := get(t, srv, "/v1/path/3001/3000")
	if !bytes.Equal(fwd, rev) {
		t.Error("pair lookup not symmetric")
	}

	var lat meshLatencyResponse
	getJSON(t, srv, "/v1/latency/3000/3005?epoch=0", &lat)
	if lat.Epoch != 0 || lat.Probes != 4 || lat.Lost != 2 || lat.Loss != 0.5 {
		t.Errorf("latency %+v", lat)
	}
	if lat.MinRTTms != 40 || lat.Complete {
		t.Errorf("latency summary %+v", lat)
	}

	var top meshTopResponse
	getJSON(t, srv, "/v1/latency/top?k=10", &top)
	// sampleMesh: pair (3000,3005) mean 41 > (3000,3001) mean 14.25; the
	// all-lost pair (3002,3007) is unrankable.
	if len(top.Top) != 2 || top.Top[0].A != 3000 || top.Top[0].B != 3005 {
		t.Errorf("latency top %+v", top.Top)
	}
	if top.Top[0].MeanRTTms < top.Top[1].MeanRTTms {
		t.Errorf("top not worst-first: %+v", top.Top)
	}
}

func TestMeshRouteErrors(t *testing.T) {
	srv := httptest.NewServer(NewHandler(meshStoreWith(t, 1)))
	defer srv.Close()
	for path, want := range map[string]int{
		"/v1/path/1/2":               http.StatusNotFound, // unknown ASN pair
		"/v1/path/3000/9999":         http.StatusNotFound,
		"/v1/path/x/3001":            http.StatusBadRequest,
		"/v1/path/3000/3001?epoch=9": http.StatusNotFound,
		"/v1/latency/1/2":            http.StatusNotFound,
		"/v1/latency/zzz/3001":       http.StatusBadRequest,
		"/v1/latency/top?k=x":        http.StatusBadRequest,
		"/v1/latency/top?epoch=9":    http.StatusNotFound,
	} {
		code, body := get(t, srv, path)
		if code != want {
			t.Errorf("GET %s: status %d, want %d (%s)", path, code, want, body)
		}
		var e errorBody
		if code != http.StatusOK {
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("GET %s: error body %q not structured", path, body)
			}
		}
	}

	// A store without mesh sections 404s all three routes.
	plain := httptest.NewServer(NewHandler(storeWith(t, 1)))
	defer plain.Close()
	for _, path := range []string{"/v1/path/3000/3001", "/v1/latency/3000/3001", "/v1/latency/top"} {
		if code, _ := get(t, plain, path); code != http.StatusNotFound {
			t.Errorf("GET %s on meshless store: status %d, want 404", path, code)
		}
	}
}

func TestMeshRoutesWrongMethodIs405(t *testing.T) {
	srv := httptest.NewServer(NewHandler(meshStoreWith(t, 1)))
	defer srv.Close()
	for _, path := range []string{"/v1/path/3000/3001", "/v1/latency/3000/3001", "/v1/latency/top"} {
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(nil))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
			t.Errorf("POST %s: Allow = %q, want \"GET, HEAD\"", path, allow)
		}
	}
}

// TestMeshRoutesCaching mirrors the PR 6 handler suite for the mesh routes:
// miss → hit with byte-equal bodies, strong mesh ETag, If-None-Match → 304,
// and cached negative lookups.
func TestMeshRoutesCaching(t *testing.T) {
	s := meshStoreWith(t, 1)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// top uses a non-default k: the default-k ranking is prebaked at append
	// time, so its first request is already a hit (checked below).
	for _, path := range []string{"/v1/path/3000/3001", "/v1/latency/3000/3001", "/v1/latency/top?k=3"} {
		first, a := meshGet(t, srv, path, "")
		second, b := meshGet(t, srv, path, "")
		if first.Header.Get("X-Cache") != "miss" || second.Header.Get("X-Cache") != "hit" {
			t.Errorf("%s: X-Cache %q then %q, want miss then hit", path,
				first.Header.Get("X-Cache"), second.Header.Get("X-Cache"))
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: cached body differs from streamed body", path)
		}
		etag := first.Header.Get("ETag")
		if etag == "" || etag != s.Latest().MeshETag {
			t.Errorf("%s: ETag %q, want mesh ETag %q", path, etag, s.Latest().MeshETag)
		}
		cond, _ := meshGet(t, srv, path, etag)
		if cond.StatusCode != http.StatusNotModified {
			t.Errorf("%s: conditional status %d, want 304", path, cond.StatusCode)
		}
		if cond.Header.Get("ETag") != etag {
			t.Errorf("%s: 304 lost the ETag", path)
		}
	}
	// The default-k worst-pairs ranking was prebaked by the append, so even
	// the very first request hits cached bytes.
	if baked, _ := meshGet(t, srv, "/v1/latency/top", ""); baked.Header.Get("X-Cache") != "hit" {
		t.Errorf("/v1/latency/top first request X-Cache %q, want prebaked hit", baked.Header.Get("X-Cache"))
	}
	// The mesh ETag is distinct from the map ETag: map-scoped validators
	// must not revalidate mesh responses.
	if s.Latest().MeshETag == s.Latest().ETag {
		t.Error("mesh ETag equals map ETag")
	}
	// Negative pair lookups cache with the epoch too: same 404, twice.
	n1, b1 := meshGet(t, srv, "/v1/path/3000/9999", "")
	n2, b2 := meshGet(t, srv, "/v1/path/3000/9999", "")
	if n1.StatusCode != http.StatusNotFound || n2.StatusCode != http.StatusNotFound || !bytes.Equal(b1, b2) {
		t.Error("negative pair lookup not stable")
	}
}

func TestMeshStructuralSharing(t *testing.T) {
	s := meshStoreWith(t, 3)
	es := s.Snapshot()
	if es[0].MeshShared {
		t.Error("first epoch cannot share its mesh")
	}
	for _, e := range es[1:] {
		if !e.MeshShared {
			t.Errorf("epoch %d: identical mesh not shared", e.ID)
		}
		if &e.MeshEncoded[0] != &es[0].MeshEncoded[0] {
			t.Errorf("epoch %d: mesh bytes copied, not shared", e.ID)
		}
		if e.MeshETag != es[0].MeshETag {
			t.Errorf("epoch %d: shared mesh changed ETag", e.ID)
		}
	}
	if got := es[0].Info().MeshPairs; got != 3 {
		t.Errorf("Info.MeshPairs = %d, want 3", got)
	}
	// A changed mesh breaks sharing and re-tags.
	mesh := sampleMesh()
	mesh.Pairs[0].Probes++
	e, err := s.AppendMesh(simtime.Time(3)*simtime.Day, docAt(3), mesh)
	if err != nil {
		t.Fatal(err)
	}
	if e.MeshShared || e.MeshETag == es[0].MeshETag {
		t.Errorf("changed mesh still shared: %+v", e.MeshETag)
	}
	// Round trip through the codec: the served binary form decodes back to
	// the stored document.
	dec, err := DecodeMeshDocument(e.MeshEncoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Pairs) != len(e.MeshDoc.Pairs) {
		t.Errorf("encoded mesh lost pairs: %d vs %d", len(dec.Pairs), len(e.MeshDoc.Pairs))
	}
}
