package mapstore

import (
	"bytes"
	"strconv"
	"sync"
	"testing"

	"itmap/internal/core"
	"itmap/internal/simtime"
)

// docAt derives a small per-day variant of the sample document: day 0 is
// the sample itself; later days add a prefix and shift one AS's activity,
// while servers and mappings stay identical (the shareable sections).
func docAt(day int) *core.MapDocument {
	doc := sampleDoc()
	for d := 1; d <= day; d++ {
		doc.ActivePrefixes = append(doc.ActivePrefixes, "10.0."+strconv.Itoa(d)+".0/24")
		doc.ASActivity["64500"] += 10
	}
	return doc
}

func TestStoreAppendAndLookup(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 || s.Latest() != nil {
		t.Fatal("new store not empty")
	}
	for day := 0; day < 3; day++ {
		e, err := s.Append(simtime.Time(day)*simtime.Day, docAt(day))
		if err != nil {
			t.Fatal(err)
		}
		if e.ID != day {
			t.Errorf("epoch ID %d, want %d", e.ID, day)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len %d, want 3", s.Len())
	}
	if s.Latest().ID != 2 {
		t.Errorf("latest ID %d", s.Latest().ID)
	}
	if _, ok := s.Epoch(3); ok {
		t.Error("out-of-range epoch found")
	}
	if _, ok := s.Epoch(-1); ok {
		t.Error("negative epoch found")
	}
	infos := s.Infos()
	if len(infos) != 3 || infos[1].ActivePrefixes != 4 || infos[1].EncodedBytes == 0 {
		t.Errorf("infos %+v", infos)
	}

	// Epoch time must advance strictly.
	if _, err := s.Append(2*simtime.Day, docAt(3)); err == nil {
		t.Error("non-advancing epoch time accepted")
	}
}

func TestStoreStructuralSharing(t *testing.T) {
	s := NewStore()
	if _, err := s.Append(0, docAt(0)); err != nil {
		t.Fatal(err)
	}
	e1, err := s.Append(simtime.Day, docAt(1))
	if err != nil {
		t.Fatal(err)
	}
	// Servers, mappings, hit rates, sources, coverage, and confidence are
	// unchanged day-over-day; actives and activity changed.
	if e1.SharedSections != sectionCount-2 {
		t.Errorf("shared %d sections, want %d", e1.SharedSections, sectionCount-2)
	}
	e0, _ := s.Epoch(0)
	if &e0.Doc.Servers[0] != &e1.Doc.Servers[0] {
		t.Error("servers section not structurally shared")
	}
	if &e0.Doc.Mappings[0] != &e1.Doc.Mappings[0] {
		t.Error("mappings section not structurally shared")
	}

	// An identical re-ingest shares every section.
	e2, err := s.Append(2*simtime.Day, docAt(1))
	if err != nil {
		t.Fatal(err)
	}
	if e2.SharedSections != sectionCount {
		t.Errorf("identical doc shared %d sections, want %d", e2.SharedSections, sectionCount)
	}
}

func TestStoreEncodedRoundTrip(t *testing.T) {
	s := NewStore()
	for day := 0; day < 3; day++ {
		if _, err := s.Append(simtime.Time(day)*simtime.Day, docAt(day)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range s.Snapshot() {
		doc, err := DecodeDocument(e.Encoded)
		if err != nil {
			t.Fatalf("epoch %d: %v", e.ID, err)
		}
		re, err := EncodeDocument(doc)
		if err != nil {
			t.Fatalf("epoch %d: %v", e.ID, err)
		}
		if !bytes.Equal(re, e.Encoded) {
			t.Errorf("epoch %d: decode→re-encode not byte-identical", e.ID)
		}
	}
}

func TestStoreRejectsBadDocuments(t *testing.T) {
	s := NewStore()
	if _, err := s.Append(0, nil); err == nil {
		t.Error("nil document accepted")
	}
	if _, err := s.Append(0, &core.MapDocument{Version: 1, ActivePrefixes: []string{"zzz"}}); err == nil {
		t.Error("unencodable document accepted")
	}
	if s.Len() != 0 {
		t.Error("failed appends left epochs behind")
	}
}

// TestStoreConcurrentReadersNeverBlock pins the copy-on-write contract:
// readers hammer queries on existing epochs while a writer ingests new
// ones; every read observes a consistent epoch list and the final state
// holds every appended epoch. Run under -race this also proves there is no
// unsynchronized access.
func TestStoreConcurrentReadersNeverBlock(t *testing.T) {
	s := NewStore()
	if _, err := s.Append(0, docAt(0)); err != nil {
		t.Fatal(err)
	}
	const days = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				es := s.Snapshot()
				if len(es) == 0 {
					t.Error("snapshot lost the seed epoch")
					return
				}
				e := es[len(es)-1]
				if e.ID != len(es)-1 {
					t.Errorf("epoch ID %d at position %d", e.ID, len(es)-1)
					return
				}
				if got := e.TopASes(2); len(got) == 0 {
					t.Error("latest epoch lost its ranking")
					return
				}
				if _, ok := e.ASView(64500, 3); !ok {
					t.Error("AS view vanished")
					return
				}
				if len(es) >= 2 {
					if _, err := s.Diff(0, len(es)-1, 0.01); err != nil {
						t.Errorf("diff: %v", err)
						return
					}
				}
			}
		}()
	}
	for day := 1; day <= days; day++ {
		if _, err := s.Append(simtime.Time(day)*simtime.Day, docAt(day)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if s.Len() != days+1 {
		t.Errorf("len %d, want %d", s.Len(), days+1)
	}
}
