package mapstore

import (
	"bytes"
	"sort"
	"strconv"

	"itmap/internal/core"
	"itmap/internal/obs"
)

// Mesh ingestion and the mesh query indexes. The mesh rides along with an
// epoch's map document: AppendMapMesh/AppendMesh hand ingestMesh the
// campaign's MeshDocument, which is encoded to canonical ITMB v2 bytes,
// structurally shared with the previous epoch when byte-equal (a stable
// mesh costs one encode per epoch and nothing else), and indexed for the
// /v1/path and /v1/latency routes.

// meshETag derives the strong validator for mesh-scoped responses from the
// canonical mesh encoding, byte-identical across runs and worker counts
// like every other store ETag.
func meshETag(id int, encoded []byte) string {
	return `"itm-m` + strconv.Itoa(id) + `-` + strconv.FormatUint(fingerprint(encoded), 16) + `"`
}

// ingestMesh attaches mesh (possibly nil) to the epoch being built. Runs
// under the store's append lock, before the epoch is published.
func (e *Epoch) ingestMesh(prev *Epoch, mesh *core.MeshDocument) error {
	if mesh == nil {
		return nil
	}
	mesh.Normalize()
	enc, err := EncodeMeshDocument(mesh)
	if err != nil {
		return err
	}
	if prev != nil && prev.MeshEncoded != nil && bytes.Equal(enc, prev.MeshEncoded) {
		// The encoding is a pure function of the document, so byte equality
		// proves the meshes are identical: share everything derived.
		e.MeshDoc = prev.MeshDoc
		e.MeshEncoded = prev.MeshEncoded
		e.MeshETag = prev.MeshETag
		e.MeshShared = true
		e.meshWorst = prev.meshWorst
		obs.C("itm_mapstore_mesh_shared_total", "Mesh sections structurally shared with the previous epoch.").Inc()
		return nil
	}
	e.MeshDoc = mesh
	e.MeshEncoded = enc
	e.MeshETag = meshETag(e.ID, enc)
	e.meshWorst = rankMeshPairs(mesh)
	obs.C("itm_mapstore_mesh_epochs_total", "Epochs ingested carrying a fresh mesh matrix.").Inc()
	obs.H("itm_mapstore_mesh_bytes", "Encoded (ITMB v2) size of ingested mesh matrices, in bytes.", epochBytesBuckets).Observe(float64(len(enc)))
	return nil
}

// MeshRank is one AS pair's position in the epoch's worst-latency ranking.
type MeshRank struct {
	A         uint32  `json:"a"`
	B         uint32  `json:"b"`
	MeanRTTms float64 `json:"mean_rtt_ms"`
	MinRTTms  float64 `json:"min_rtt_ms"`
	Loss      float64 `json:"loss"`
	Complete  bool    `json:"complete"`
}

// rankMeshPairs orders pairs worst-first: mean RTT descending, canonical
// key ascending on ties — one total order, so rankings are deterministic.
func rankMeshPairs(mesh *core.MeshDocument) []MeshRank {
	out := make([]MeshRank, 0, len(mesh.Pairs))
	for i := range mesh.Pairs {
		p := &mesh.Pairs[i]
		if p.Probes == p.Lost {
			continue // no surviving pings: nothing to rank
		}
		out = append(out, MeshRank{
			A: p.Lo, B: p.Hi,
			MeanRTTms: p.MeanRTT, MinRTTms: p.MinRTT,
			Loss: p.LossRate(), Complete: p.Complete,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanRTTms != out[j].MeanRTTms {
			return out[i].MeanRTTms > out[j].MeanRTTms
		}
		return core.MeshKey(out[i].A, out[i].B) < core.MeshKey(out[j].A, out[j].B)
	})
	return out
}

// RankMeshPairs returns mesh's k worst pairs by mean RTT, the same total
// order the /v1/latency/top route serves.
func RankMeshPairs(mesh *core.MeshDocument, k int) []MeshRank {
	ranked := rankMeshPairs(mesh)
	if k < 0 {
		k = 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k:k]
}

// MeshPair returns the epoch's entry for the (a, b) AS pair, either order.
func (e *Epoch) MeshPair(a, b uint32) (*core.MeshPairDocument, bool) {
	if e.MeshDoc == nil {
		return nil, false
	}
	return e.MeshDoc.PairAt(a, b)
}

// WorstMeshPairs returns the k highest-mean-RTT pairs of the epoch's mesh.
func (e *Epoch) WorstMeshPairs(k int) []MeshRank {
	if k < 0 {
		k = 0
	}
	if k > len(e.meshWorst) {
		k = len(e.meshWorst)
	}
	return e.meshWorst[:k:k]
}
