package mapstore

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
)

// OverloadResult is what one deterministic overload scenario produced.
// Conservation always holds: Issued == Admitted + Shed.
type OverloadResult struct {
	Capacity int `json:"capacity"`
	Queue    int `json:"queue"`
	Issued   int `json:"issued"`
	Admitted int `json:"admitted"`
	Shed     int `json:"shed"`
	// RetryAfterOK is true when every shed response carried a Retry-After
	// header (it must).
	RetryAfterOK bool `json:"retry_after_ok"`
}

// OverloadScenario drives an Admission valve to saturation with exactly
// reproducible counts, independent of scheduling and worker count. The
// trick is a gated handler plus phased arrival: first `capacity` requests
// occupy every execution slot (all parked on the gate), then `queue` more
// fill the wait queue, and only then `extra` requests arrive — each of
// which must shed, because nothing can leave the gate while they do.
// Opening the gate lets every admitted request finish with 200. So:
//
//	admitted = capacity + queue,  shed = extra  — always.
//
// itm-bench folds these counters into BENCH_serve.json, and the loadgen
// overload smoke asserts the same conservation law over real HTTP where
// the exact split is timing-dependent but the sum is not.
func OverloadScenario(capacity, queue, extra int) OverloadResult {
	adm := NewAdmission(AdmissionConfig{MaxInFlight: capacity, MaxQueue: queue})
	gate := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-gate
		w.WriteHeader(http.StatusOK)
	})
	h := adm.Wrap(inner)

	res := OverloadResult{Capacity: capacity, Queue: queue, RetryAfterOK: true}
	var mu sync.Mutex
	var wg sync.WaitGroup
	issue := func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/top", nil))
		mu.Lock()
		defer mu.Unlock()
		switch rec.Code {
		case http.StatusOK:
			res.Admitted++
		case http.StatusServiceUnavailable:
			res.Shed++
			if rec.Header().Get("Retry-After") == "" {
				res.RetryAfterOK = false
			}
		}
	}

	// Phase 1: occupy every slot. The spin on InFlight is pure scheduling —
	// no clocks — and terminates because each launched request either holds
	// a slot already or is runnable until it does.
	for i := 0; i < capacity; i++ {
		wg.Add(1)
		go issue()
	}
	for adm.InFlight() < capacity {
		runtime.Gosched()
	}
	// Phase 2: fill the wait queue behind the parked slots.
	for i := 0; i < queue; i++ {
		wg.Add(1)
		go issue()
	}
	for adm.QueueDepth() < queue {
		runtime.Gosched()
	}
	// Phase 3: every further arrival finds slots and queue full and sheds.
	// Serial issue keeps even the arrival order deterministic.
	for i := 0; i < extra; i++ {
		wg.Add(1)
		issue()
	}
	// Phase 4: open the gate; all admitted work completes with 200.
	close(gate)
	wg.Wait()
	res.Issued = capacity + queue + extra
	return res
}
