package dnssim

import (
	"fmt"

	"itmap/internal/geo"
	"itmap/internal/services"
	"itmap/internal/topology"
)

// Authoritative models the authoritative DNS of every service in a catalog:
// the redirection decision of §3.2. ECS-supporting services localize on the
// client's /24; others only see the recursive resolver.
type Authoritative struct {
	top *topology.Topology
	cat *services.Catalog
}

// NewAuthoritative wraps a catalog.
func NewAuthoritative(top *topology.Topology, cat *services.Catalog) *Authoritative {
	return &Authoritative{top: top, cat: cat}
}

// Answer is an authoritative response: the serving prefix handed to the
// client, and the site behind it (nil for anycast answers, where the
// landing site depends on BGP, not DNS).
type Answer struct {
	Prefix topology.PrefixID
	Site   *services.Site
}

// ResolveECS answers a query for domain carrying the client's /24 in ECS.
// Services without ECS support ignore the option and fall back to the
// resolver location (resolverAt), which callers must supply.
func (au *Authoritative) ResolveECS(domain string, client topology.PrefixID, resolverAt geo.Coord) (Answer, error) {
	svc, ok := au.cat.ByDomain(domain)
	if !ok {
		return Answer{}, fmt.Errorf("dnssim: NXDOMAIN %s", domain)
	}
	if svc.Kind == services.Anycast {
		d := au.cat.Deployments[svc.Owner]
		return Answer{Prefix: d.AnycastPrefix}, nil
	}
	at := resolverAt
	if svc.ECS {
		if city, ok := au.top.PrefixCity[client]; ok {
			at = city.Coord
		}
	}
	// In-network off-net caches win when the client's AS hosts one.
	if svc.ECS {
		if owner, ok := au.top.OwnerOf(client); ok {
			if site, has := au.cat.OffNetFor(svc.Owner, owner); has {
				return Answer{Prefix: site.Prefix, Site: site}, nil
			}
		}
	}
	site := au.cat.NearestSiteTo(svc.Owner, at)
	if site == nil {
		return Answer{}, fmt.Errorf("dnssim: %s has no deployment", domain)
	}
	return Answer{Prefix: site.Prefix, Site: site}, nil
}

// ResolveFrom answers a query arriving from a resolver at the given
// location with no usable ECS.
func (au *Authoritative) ResolveFrom(domain string, resolverAt geo.Coord) (Answer, error) {
	svc, ok := au.cat.ByDomain(domain)
	if !ok {
		return Answer{}, fmt.Errorf("dnssim: NXDOMAIN %s", domain)
	}
	if svc.Kind == services.Anycast {
		d := au.cat.Deployments[svc.Owner]
		return Answer{Prefix: d.AnycastPrefix}, nil
	}
	site := au.cat.NearestSiteTo(svc.Owner, resolverAt)
	if site == nil {
		return Answer{}, fmt.Errorf("dnssim: %s has no deployment", domain)
	}
	return Answer{Prefix: site.Prefix, Site: site}, nil
}
