package dnssim

import (
	"net"
	"net/netip"
	"testing"

	"itmap/internal/dnswire"
	"itmap/internal/faults"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

// wireSetup builds a frontend over a tiny world plus a constant rate table.
func wireSetup(t testing.TB, seed int64) (*topology.Topology, *WireFrontend, *constRate) {
	t.Helper()
	top, cat, pr := setup(t, seed)
	cr := &constRate{rates: map[string]map[topology.PrefixID]float64{}}
	pr.SetRateSource(cr)
	fe := &WireFrontend{PR: pr, Auth: NewAuthoritative(top, cat), PoP: 0}
	return top, fe, cr
}

func ecsSvc(t testing.TB, fe *WireFrontend) string {
	t.Helper()
	for _, s := range fe.PR.cat.Services {
		if s.ECS && s.Kind.String() != "anycast" {
			return s.Domain
		}
	}
	t.Fatal("no ECS service")
	return ""
}

// prefixHomedAt finds a user prefix homed at the frontend's PoP.
func prefixHomedAt(t testing.TB, top *topology.Topology, fe *WireFrontend) topology.PrefixID {
	t.Helper()
	for _, asn := range top.ASesOfType(topology.Eyeball) {
		for _, p := range top.ASes[asn].Prefixes {
			if fe.PR.HomePoP(p).ID == fe.PoP {
				return p
			}
		}
	}
	t.Skip("no prefix homed at PoP 0")
	return 0
}

func TestWireProbeHitAndMiss(t *testing.T) {
	top, fe, cr := wireSetup(t, 1)
	domain := ecsSvc(t, fe)
	p := prefixHomedAt(t, top, fe)
	netPrefix := netip.PrefixFrom(p.Addr(0), 24)

	// Idle prefix: probe misses (NOERROR, no answers).
	q := dnswire.NewQuery(42, domain, false).WithECS(netPrefix)
	raw, _ := q.Encode()
	resp, err := dnswire.Decode(fe.Handle(raw, 1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rcode != dnswire.RcodeNoError || len(resp.Answers) != 0 {
		t.Fatalf("idle probe: %+v", resp)
	}
	// Hot prefix: probe hits and returns the cached record with scope.
	cr.rates[domain] = map[topology.PrefixID]float64{p: 1e9}
	resp, err = dnswire.Decode(fe.Handle(raw, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("hot probe got %d answers", len(resp.Answers))
	}
	if resp.ECS == nil || resp.ECS.ScopePrefixLen != 24 {
		t.Errorf("scope not echoed: %+v", resp.ECS)
	}
	if resp.ID != 42 || !resp.QR {
		t.Errorf("header wrong: %+v", resp)
	}
}

func TestWireRecursiveResolution(t *testing.T) {
	top, fe, _ := wireSetup(t, 2)
	domain := ecsSvc(t, fe)
	p := top.ASes[top.ASesOfType(topology.Eyeball)[0]].Prefixes[0]
	q := dnswire.NewQuery(7, domain, true).WithECS(netip.PrefixFrom(p.Addr(0), 24))
	raw, _ := q.Encode()
	resp, err := dnswire.Decode(fe.Handle(raw, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("recursive got %d answers", len(resp.Answers))
	}
	// The answer matches the authoritative's direct resolution.
	ans, err := fe.Auth.ResolveECS(domain, p, fe.PR.PoPs[0].City.Coord)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answers[0] != ans.Prefix.Addr(1) {
		t.Errorf("wire answer %v != authoritative %v", resp.Answers[0], ans.Prefix)
	}
}

func TestWireErrorPaths(t *testing.T) {
	_, fe, _ := wireSetup(t, 3)
	// NXDOMAIN for unknown names.
	q := dnswire.NewQuery(1, "nope.example", true)
	raw, _ := q.Encode()
	resp, _ := dnswire.Decode(fe.Handle(raw, 1))
	if resp.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("unknown name rcode %d", resp.Rcode)
	}
	// RD=0 without ECS is refused (nothing to scope the probe to).
	domain := ecsSvc(t, fe)
	q = dnswire.NewQuery(2, domain, false)
	raw, _ = q.Encode()
	resp, _ = dnswire.Decode(fe.Handle(raw, 1))
	if resp.Rcode != dnswire.RcodeRefused {
		t.Errorf("scopeless probe rcode %d", resp.Rcode)
	}
	// Garbage is dropped.
	if fe.Handle([]byte{1, 2, 3}, 1) != nil {
		t.Error("garbage got a response")
	}
	// Responses are ignored (no loops).
	m := &dnswire.Message{ID: 3, QR: true, QName: domain, QType: dnswire.TypeA, QClass: dnswire.ClassIN}
	raw, _ = m.Encode()
	if fe.Handle(raw, 1) != nil {
		t.Error("response packet got a response")
	}
}

func TestWireOverUDP(t *testing.T) {
	top, fe, cr := wireSetup(t, 4)
	domain := ecsSvc(t, fe)
	p := prefixHomedAt(t, top, fe)
	cr.rates[domain] = map[topology.PrefixID]float64{p: 1e9}

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- fe.ServeUDP(conn, func() simtime.Time { return 1 }) }()

	client, err := DialWireClient(conn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	hit, err := client.Probe(domain, netip.PrefixFrom(p.Addr(0), 24))
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("UDP probe missed a hot prefix")
	}
	addrs, err := client.Resolve(domain, netip.PrefixFrom(p.Addr(0), 24))
	if err != nil || len(addrs) != 1 {
		t.Fatalf("UDP resolve: %v, %v", addrs, err)
	}
	if _, err := client.Resolve("nope.example", netip.PrefixFrom(p.Addr(0), 24)); err == nil {
		t.Error("NXDOMAIN not surfaced over UDP")
	}

	conn.Close()
	if err := <-done; err != nil {
		t.Fatalf("server exited with %v", err)
	}
}

// rawOptQuery appends an OPT record with the given rdata to an encoded
// query and bumps ARCOUNT (mirrors the dnswire fuzz corpus helper).
func rawOptQuery(base, rdata []byte) []byte {
	out := append([]byte(nil), base...)
	out[11]++ // ARCOUNT low byte (tests never exceed 255 additionals)
	out = append(out, 0)
	out = append(out, 0, 41, 0x10, 0, 0, 0, 0, 0)
	out = append(out, byte(len(rdata)>>8), byte(len(rdata)))
	return append(out, rdata...)
}

func TestWireMalformedECSAnsweredFormErr(t *testing.T) {
	_, fe, _ := wireSetup(t, 5)
	domain := ecsSvc(t, fe)
	base, _ := dnswire.NewQuery(91, domain, false).Encode()
	// Truncated ECS option: question parses, option does not.
	raw := rawOptQuery(base, []byte{0, 8, 0, 10, 0, 1})
	resp, err := dnswire.Decode(fe.Handle(raw, 1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rcode != dnswire.RcodeFormErr {
		t.Fatalf("malformed option rcode %d, want FORMERR", resp.Rcode)
	}
	if resp.ID != 91 || !resp.QR || resp.QName != domain {
		t.Fatalf("FORMERR response header wrong: %+v", resp)
	}
	// A malformed *response* stays dropped — FORMERR only answers queries.
	respBytes := rawOptQuery(func() []byte {
		m := &dnswire.Message{ID: 92, QR: true, QName: domain, QType: dnswire.TypeA, QClass: dnswire.ClassIN}
		b, _ := m.Encode()
		return b
	}(), []byte{0, 8, 0, 10, 0, 1})
	if fe.Handle(respBytes, 1) != nil {
		t.Error("malformed response packet got a reply")
	}
}

func TestWireFaultPlanPaths(t *testing.T) {
	top, fe, cr := wireSetup(t, 6)
	domain := ecsSvc(t, fe)
	p := prefixHomedAt(t, top, fe)
	cr.rates[domain] = map[topology.PrefixID]float64{p: 1e9}
	q := dnswire.NewQuery(31, domain, false).WithECS(netip.PrefixFrom(p.Addr(0), 24))
	raw, _ := q.Encode()

	// Sweep query IDs under a lossy plan: the per-datagram fault roll must
	// produce drops, and surviving answers must include SERVFAILs.
	fe.PR.SetFaultPlan(faults.NewPlan(faults.Hostile(), 7))
	defer fe.PR.SetFaultPlan(nil)
	drops, servfails, refused, answered := 0, 0, 0, 0
	for id := uint16(1); id <= 200; id++ {
		q := dnswire.NewQuery(id, domain, false).WithECS(netip.PrefixFrom(p.Addr(0), 24))
		raw, _ := q.Encode()
		respBytes := fe.Handle(raw, simtime.Time(float64(id)*0.1))
		if respBytes == nil {
			drops++
			continue
		}
		resp, err := dnswire.Decode(respBytes)
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Rcode {
		case dnswire.RcodeServfail:
			servfails++
		case dnswire.RcodeRefused:
			refused++
		default:
			answered++
		}
	}
	if drops == 0 || servfails == 0 || answered == 0 {
		t.Fatalf("hostile plan: drops=%d servfails=%d refused=%d answered=%d",
			drops, servfails, refused, answered)
	}

	// Clearing the plan restores byte-identical fault-free answers.
	fe.PR.SetFaultPlan(nil)
	clean := fe.Handle(raw, 1)
	if clean == nil {
		t.Fatal("fault-free probe dropped")
	}
	resp, err := dnswire.Decode(clean)
	if err != nil || resp.Rcode != dnswire.RcodeNoError {
		t.Fatalf("fault-free probe: %v rcode %d", err, resp.Rcode)
	}
}
