// Package dnssim models the DNS machinery the paper's measurement
// techniques exploit:
//
//   - a Google-Public-DNS-like public resolver with regional PoPs whose
//     caches are keyed by ⟨PoP, domain, ECS /24 scope⟩ and expire after the
//     record TTL — the substrate for §3.1.2 approach 1 (cache probing);
//   - the root server system with per-letter query logs capturing
//     Chromium's random-label interception probes — §3.1.2 approach 2;
//   - per-service authoritative behaviour (ECS-aware or resolver-based
//     redirection) — §3.2.
//
// Cache state is virtual: instead of materializing billions of cache
// entries, a probe consults the client query rate feeding that entry and
// draws a deterministic Bernoulli with p = 1 − exp(−rate·TTL), evaluated
// once per TTL window. This is exactly the occupancy distribution of a
// TTL cache under Poisson arrivals, at a millionth of the memory.
package dnssim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"itmap/internal/faults"
	"itmap/internal/geo"
	"itmap/internal/obs"
	"itmap/internal/randx"
	"itmap/internal/services"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

// PoP is one public-resolver point of presence.
type PoP struct {
	ID   int
	Name string
	City geo.City
}

// RateSource supplies client DNS query rates. The traffic model implements
// it; dnssim stays independent of demand modelling.
type RateSource interface {
	// PublicResolverQueryRate returns the rate (queries per simulated
	// hour) at which clients in the /24 scope query the public resolver
	// for domain, at time t.
	PublicResolverQueryRate(domain string, scope topology.PrefixID, t simtime.Time) float64
}

// PublicResolver models the public DNS service ("GPDNS" in comments).
type PublicResolver struct {
	top    *topology.Topology
	cat    *services.Catalog
	rates  RateSource
	seed   uint64
	faults *faults.Plan

	// Owner is the hypergiant operating the resolver; root-log entries
	// for its egress queries attribute to this AS.
	Owner topology.ASN
	PoPs  []*PoP

	homeMu sync.RWMutex
	//itm:guardedby homeMu
	home map[topology.PrefixID]int // prefix -> PoP ID
}

// NewPublicResolver places PoPs at every region hub and in every country
// with more than 60M Internet users present in the world.
func NewPublicResolver(top *topology.Topology, cat *services.Catalog, owner topology.ASN, seed int64) *PublicResolver {
	pr := &PublicResolver{
		top:   top,
		cat:   cat,
		seed:  uint64(seed),
		Owner: owner,
		home:  map[topology.PrefixID]int{},
	}
	seen := map[string]bool{}
	addPoP := func(city geo.City) {
		if seen[city.Name] {
			return
		}
		seen[city.Name] = true
		pr.PoPs = append(pr.PoPs, &PoP{ID: len(pr.PoPs), Name: city.Name, City: city})
	}
	for _, r := range geo.Regions() {
		if hub := geo.RegionHub(r); hub.Name != "" {
			addPoP(hub)
		}
	}
	// Countries actually present in the world (with eyeballs).
	present := map[string]bool{}
	for _, a := range top.ASes {
		if a.Type == topology.Eyeball {
			present[a.Country] = true
		}
	}
	var codes []string
	for c := range present {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, code := range codes {
		c, err := geo.CountryByCode(code)
		if err == nil && c.InternetUsersM > 60 {
			addPoP(c.Capital)
		}
	}
	// Declare the fault-outcome family up front so a fault-free run still
	// exposes its HELP/TYPE header.
	obs.Metrics().Declare(obs.KindCounter, "itm_dns_probe_errors_total",
		"Cache probes answered with an injected transient fault, by kind.", "kind")
	obs.G("itm_dns_pops", "Public-resolver points of presence.").Set(float64(len(pr.PoPs)))
	return pr
}

// SetRateSource wires in the demand model. Must be called before probing.
func (pr *PublicResolver) SetRateSource(rs RateSource) { pr.rates = rs }

// SetFaultPlan wires a fault-injection schedule into the probe-facing
// surfaces. A nil plan (the default) restores fault-free behaviour exactly.
// Like SetRateSource, call it between campaigns, not during one.
func (pr *PublicResolver) SetFaultPlan(pl *faults.Plan) { pr.faults = pl }

// FaultPlan returns the active fault schedule (possibly nil).
func (pr *PublicResolver) FaultPlan() *faults.Plan { return pr.faults }

// Catalog returns the service catalog the resolver serves (public
// knowledge: every record's TTL is visible in responses).
func (pr *PublicResolver) Catalog() *services.Catalog { return pr.cat }

// HomePoP returns the PoP that serves clients in the given prefix (the
// nearest PoP; clients reach the resolver via anycast). Safe for concurrent
// use: probing campaigns fan out across goroutines.
func (pr *PublicResolver) HomePoP(p topology.PrefixID) *PoP {
	pr.homeMu.RLock()
	id, ok := pr.home[p]
	pr.homeMu.RUnlock()
	if ok {
		return pr.PoPs[id]
	}
	city, ok := pr.top.PrefixCity[p]
	if !ok {
		return nil
	}
	best, bestDist := 0, math.Inf(1)
	for _, pop := range pr.PoPs {
		d := geo.DistanceKm(city.Coord, pop.City.Coord)
		if d < bestDist {
			best, bestDist = pop.ID, d
		}
	}
	pr.homeMu.Lock()
	pr.home[p] = best
	pr.homeMu.Unlock()
	return pr.PoPs[best]
}

// AdoptionShare returns the fraction of a country's DNS queries sent to the
// public resolver. Globally ~30-35% (the paper cites [16]), with per-country
// skew — one of the biases §3.1.3 says must be mitigated.
func (pr *PublicResolver) AdoptionShare(countryCode string) float64 {
	j := randx.HashLognormal(0, 0.30, pr.seed, 0xadf0, hashString(countryCode))
	s := 0.32 * j
	return math.Max(0.10, math.Min(0.55, s))
}

// ProbeCache issues a non-recursive (RD=0) query for domain with the given
// ECS prefix against a specific PoP at time t, reporting whether the record
// is cached there. Probes do not populate the cache. For ECS-supporting
// services the cache entry is scoped to the /24; for others the scope
// collapses to the whole PoP and per-prefix attribution is impossible —
// exactly the limitation the paper notes.
func (pr *PublicResolver) ProbeCache(popID int, domain string, ecs topology.PrefixID, t simtime.Time) (bool, error) {
	return pr.ProbeCacheOpts(popID, domain, ecs, t, ProbeOpts{})
}

// ProbeOpts identifies one probe to the fault layer.
type ProbeOpts struct {
	// Source is the probing host's identity — per-source throttling keys
	// on it, so campaigns with more probers spread the ban risk.
	Source uint64
	// Attempt numbers retries of the same logical probe; each attempt is
	// a fresh datagram and re-rolls per-packet faults.
	Attempt int
}

// ProbeCacheOpts is ProbeCache with an explicit probe identity. With a fault
// plan set it can return the typed transient errors faults.ErrTimeout,
// faults.ErrServfail, and faults.ErrThrottled instead of answering.
func (pr *PublicResolver) ProbeCacheOpts(popID int, domain string, ecs topology.PrefixID, t simtime.Time, opt ProbeOpts) (bool, error) {
	if pr.rates == nil {
		return false, fmt.Errorf("dnssim: no rate source wired")
	}
	if popID < 0 || popID >= len(pr.PoPs) {
		return false, fmt.Errorf("dnssim: unknown PoP %d", popID)
	}
	if err := pr.faults.ProbeFault(popID, opt.Source, probeKey(domain, ecs), opt.Attempt, t); err != nil {
		obs.C("itm_dns_probe_errors_total",
			"Cache probes answered with an injected transient fault, by kind.",
			obs.L("kind", faultKind(err))).Inc()
		return false, err
	}
	return pr.cacheLookup(popID, domain, ecs, t)
}

// faultKind names a transient fault for the error-kind metric label.
func faultKind(err error) string {
	switch {
	case errors.Is(err, faults.ErrTimeout):
		return "timeout"
	case errors.Is(err, faults.ErrServfail):
		return "servfail"
	case errors.Is(err, faults.ErrThrottled):
		return "throttled"
	}
	return "other"
}

// cacheLookup is the fault-free cache-occupancy check. The wire front end
// calls it directly: it evaluates faults itself, with per-datagram entropy,
// before consulting the cache.
func (pr *PublicResolver) cacheLookup(popID int, domain string, ecs topology.PrefixID, t simtime.Time) (bool, error) {
	if pr.rates == nil {
		return false, fmt.Errorf("dnssim: no rate source wired")
	}
	svc, ok := pr.cat.ByDomain(domain)
	if !ok {
		return false, fmt.Errorf("dnssim: NXDOMAIN %s", domain)
	}
	if !svc.ECS || svc.Kind == services.Anycast {
		return false, fmt.Errorf("dnssim: %s does not support per-prefix ECS scoping", domain)
	}
	// The entry exists only at the clients' home PoP.
	if home := pr.HomePoP(ecs); home == nil || home.ID != popID {
		return false, nil
	}
	ttl := simtime.Seconds(float64(svc.TTLSeconds))
	rate := pr.rates.PublicResolverQueryRate(domain, ecs, t)
	p := 1 - math.Exp(-rate*float64(ttl))
	window := uint64(math.Floor(float64(t / ttl)))
	hit := randx.HashBool(p, pr.seed, 0xcac4e, uint64(popID), hashString(domain), uint64(ecs), window)
	obs.C("itm_dns_probes_total", "Cache-occupancy lookups answered (hit or clean miss).").Inc()
	if hit {
		obs.C("itm_dns_cache_hits_total", "Cache-occupancy lookups that found the record cached.").Inc()
	}
	return hit, nil
}

// ResolverOfAS returns the prefix hosting an AS's ISP resolver (its first
// prefix; the resolver answers at .53). Root-log entries from clients using
// their ISP resolver carry this prefix.
func ResolverOfAS(top *topology.Topology, asn topology.ASN) (topology.PrefixID, bool) {
	a, ok := top.ASes[asn]
	if !ok || len(a.Prefixes) == 0 {
		return 0, false
	}
	return a.Prefixes[0], true
}

// probeKey identifies a (domain, target) pair to the fault layer.
func probeKey(domain string, ecs topology.PrefixID) uint64 {
	return randx.Hash64(hashString(domain), uint64(ecs))
}

func hashString(s string) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
