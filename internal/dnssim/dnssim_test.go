package dnssim

import (
	"math"
	"testing"

	"itmap/internal/geo"
	"itmap/internal/randx"
	"itmap/internal/services"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

func setup(t testing.TB, seed int64) (*topology.Topology, *services.Catalog, *PublicResolver) {
	t.Helper()
	top := topology.Generate(topology.TinyGenConfig(seed))
	cat := services.Build(top, services.DefaultConfig(), randx.New(seed))
	top.Freeze()
	hgs := top.ASesOfType(topology.Hypergiant)
	pr := NewPublicResolver(top, cat, hgs[0], seed)
	return top, cat, pr
}

// constRate is a RateSource with a fixed per-(domain, prefix) rate table.
type constRate struct {
	rates map[string]map[topology.PrefixID]float64
}

func (c *constRate) PublicResolverQueryRate(domain string, scope topology.PrefixID, _ simtime.Time) float64 {
	return c.rates[domain][scope]
}

func ecsDomain(t *testing.T, cat *services.Catalog) *services.Service {
	t.Helper()
	for _, s := range cat.Services {
		if s.ECS && s.Kind != services.Anycast {
			return s
		}
	}
	t.Fatal("no ECS service")
	return nil
}

func TestHomePoPIsNearest(t *testing.T) {
	top, _, pr := setup(t, 1)
	for _, p := range top.AllPrefixes()[:200] {
		home := pr.HomePoP(p)
		if home == nil {
			t.Fatalf("prefix %v has no home PoP", p)
		}
		city := top.PrefixCity[p]
		for _, pop := range pr.PoPs {
			if geo.DistanceKm(city.Coord, pop.City.Coord) <
				geo.DistanceKm(city.Coord, home.City.Coord)-1e-9 {
				t.Fatalf("prefix %v homed to %s but %s is closer", p, home.Name, pop.Name)
			}
		}
	}
}

func TestProbeCacheHitTracksRate(t *testing.T) {
	top, cat, pr := setup(t, 2)
	svc := ecsDomain(t, cat)
	// Two prefixes: one hot, one idle.
	eyeballs := top.ASesOfType(topology.Eyeball)
	hot := top.ASes[eyeballs[0]].Prefixes[0]
	cold := top.ASes[eyeballs[1]].Prefixes[0]
	cr := &constRate{rates: map[string]map[topology.PrefixID]float64{
		svc.Domain: {hot: 100000, cold: 0},
	}}
	pr.SetRateSource(cr)

	hotPop := pr.HomePoP(hot)
	hits := 0
	probes := 0
	for ti := 0; ti < 200; ti++ {
		tm := simtime.Time(float64(ti) * 0.11)
		h, err := pr.ProbeCache(hotPop.ID, svc.Domain, hot, tm)
		if err != nil {
			t.Fatal(err)
		}
		probes++
		if h {
			hits++
		}
	}
	if hits < probes*9/10 {
		t.Errorf("hot prefix hit %d/%d probes, want nearly all", hits, probes)
	}
	coldPop := pr.HomePoP(cold)
	for ti := 0; ti < 50; ti++ {
		h, err := pr.ProbeCache(coldPop.ID, svc.Domain, cold, simtime.Time(float64(ti)*0.13))
		if err != nil {
			t.Fatal(err)
		}
		if h {
			t.Fatal("idle prefix produced a cache hit")
		}
	}
}

func TestProbeWrongPoPMisses(t *testing.T) {
	top, cat, pr := setup(t, 3)
	svc := ecsDomain(t, cat)
	p := top.ASes[top.ASesOfType(topology.Eyeball)[0]].Prefixes[0]
	cr := &constRate{rates: map[string]map[topology.PrefixID]float64{
		svc.Domain: {p: 1e9},
	}}
	pr.SetRateSource(cr)
	home := pr.HomePoP(p)
	for _, pop := range pr.PoPs {
		if pop.ID == home.ID {
			continue
		}
		hit, err := pr.ProbeCache(pop.ID, svc.Domain, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("cache entry for %v leaked to PoP %s", p, pop.Name)
		}
	}
}

func TestProbeDeterministicWithinTTLWindow(t *testing.T) {
	top, cat, pr := setup(t, 4)
	svc := ecsDomain(t, cat)
	p := top.ASes[top.ASesOfType(topology.Eyeball)[0]].Prefixes[0]
	cr := &constRate{rates: map[string]map[topology.PrefixID]float64{
		svc.Domain: {p: 20}, // mid occupancy
	}}
	pr.SetRateSource(cr)
	home := pr.HomePoP(p)
	ttl := simtime.Seconds(float64(svc.TTLSeconds))
	base := simtime.Time(5)
	h1, _ := pr.ProbeCache(home.ID, svc.Domain, p, base)
	h2, _ := pr.ProbeCache(home.ID, svc.Domain, p, base+ttl/10)
	if h1 != h2 {
		t.Error("probe outcome changed within one TTL window")
	}
}

func TestProbeErrors(t *testing.T) {
	top, cat, pr := setup(t, 5)
	p := top.AllPrefixes()[0]
	if _, err := pr.ProbeCache(0, "x.example", p, 1); err == nil {
		t.Error("NXDOMAIN accepted")
	}
	svc := ecsDomain(t, cat)
	pr.SetRateSource(&constRate{})
	if _, err := pr.ProbeCache(999, svc.Domain, p, 1); err == nil {
		t.Error("unknown PoP accepted")
	}
	// Non-ECS domains cannot be probed per-prefix.
	for _, s := range cat.Services {
		if !s.ECS {
			if _, err := pr.ProbeCache(0, s.Domain, p, 1); err == nil {
				t.Errorf("non-ECS domain %s probe accepted", s.Domain)
			}
			break
		}
	}
}

func TestAdoptionShareBounded(t *testing.T) {
	_, _, pr := setup(t, 6)
	total, n := 0.0, 0
	for _, c := range geo.Countries() {
		s := pr.AdoptionShare(c.Code)
		if s < 0.10 || s > 0.55 {
			t.Fatalf("adoption share %f for %s out of bounds", s, c.Code)
		}
		total += s
		n++
	}
	mean := total / float64(n)
	if mean < 0.25 || mean < 0.2 || mean > 0.45 {
		t.Errorf("mean adoption %f, want ~0.32", mean)
	}
	if pr.AdoptionShare("FR") != pr.AdoptionShare("FR") {
		t.Error("adoption share not deterministic")
	}
}

func TestAuthoritativeECS(t *testing.T) {
	top, cat, _ := setup(t, 7)
	au := NewAuthoritative(top, cat)
	svc := ecsDomain(t, cat)
	for _, e := range top.ASesOfType(topology.Eyeball) {
		p := top.ASes[e].Prefixes[0]
		ans, err := au.ResolveECS(svc.Domain, p, geo.Coord{Lat: 0, Lon: 0})
		if err != nil {
			t.Fatal(err)
		}
		if ans.Site == nil {
			t.Fatal("DNS-unicast answer missing site")
		}
		if ans.Site.Owner != svc.Owner {
			t.Fatalf("answer site owned by %d, want %d", ans.Site.Owner, svc.Owner)
		}
		// If the client's AS hosts an off-net of the owner, it wins.
		if off, ok := cat.OffNetFor(svc.Owner, e); ok && ans.Site != off {
			t.Errorf("client in %d not mapped to its off-net", e)
		}
	}
	if _, err := au.ResolveECS("nope.example", 0, geo.Coord{}); err == nil {
		t.Error("NXDOMAIN accepted")
	}
}

func TestAuthoritativeAnycast(t *testing.T) {
	top, cat, _ := setup(t, 8)
	au := NewAuthoritative(top, cat)
	var any *services.Service
	for _, s := range cat.Services {
		if s.Kind == services.Anycast {
			any = s
			break
		}
	}
	if any == nil {
		t.Skip("no anycast service")
	}
	p1 := top.ASes[top.ASesOfType(topology.Eyeball)[0]].Prefixes[0]
	p2 := top.ASes[top.ASesOfType(topology.Eyeball)[1]].Prefixes[0]
	a1, err1 := au.ResolveECS(any.Domain, p1, geo.Coord{})
	a2, err2 := au.ResolveECS(any.Domain, p2, geo.Coord{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a1.Prefix != a2.Prefix {
		t.Error("anycast answers differ by client; should be one prefix")
	}
	if a1.Site != nil {
		t.Error("anycast answer carries a DNS-chosen site")
	}
}

func TestRootSystemLogs(t *testing.T) {
	rs := NewRootSystem(0.3)
	if len(rs.UsableLetters()) != 9 {
		t.Errorf("usable letters = %d, want 9 of 13", len(rs.UsableLetters()))
	}
	src := staticChromium{
		{ResolverPrefix: 100, ResolverASN: 3000, Queries: 1300},
		{ResolverPrefix: 200, ResolverASN: 3001, Queries: 2600},
	}
	logs := rs.DayLogs(0, src)
	if len(logs) != 13 {
		t.Fatalf("got logs for %d letters", len(logs))
	}
	for _, l := range rs.Letters {
		entries := logs[l.Letter]
		var sum float64
		for _, e := range entries {
			sum += e.Queries
			if l.Anonymized && e.ResolverASN != 0 {
				t.Errorf("letter %c leaks resolver identity", l.Letter)
			}
			if !l.Anonymized && e.ResolverASN == 0 {
				t.Errorf("letter %c lost resolver identity", l.Letter)
			}
		}
		if math.Abs(sum-300) > 1e-9 {
			t.Errorf("letter %c carries %f queries, want 300", l.Letter, sum)
		}
	}
}

type staticChromium []RootLogEntry

func (s staticChromium) ChromiumRootQueries(day int) []RootLogEntry { return s }

func TestResolverOfAS(t *testing.T) {
	top, _, _ := setup(t, 9)
	for _, asn := range top.ASNs()[:20] {
		p, ok := ResolverOfAS(top, asn)
		if !ok {
			t.Fatalf("AS %d has no resolver", asn)
		}
		if owner, _ := top.OwnerOf(p); owner != asn {
			t.Fatalf("resolver prefix %v not in AS %d", p, asn)
		}
	}
	if _, ok := ResolverOfAS(top, 999999); ok {
		t.Error("unknown AS resolved")
	}
}
