package dnssim

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"itmap/internal/dnswire"
	"itmap/internal/faults"
	"itmap/internal/randx"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

// WireFrontend answers DNS wire-format packets the way the public
// resolver's PoP front ends would: RD=0 queries with an ECS option are
// cache probes (answered from cache or empty), RD=1 queries resolve through
// the authoritative. It lets the measurement tools exercise the same bytes
// a real prober puts on the wire.
type WireFrontend struct {
	PR   *PublicResolver
	Auth *Authoritative
	// PoP is the front end's point of presence.
	PoP int
	// Source identifies the querying host to the fault layer (per-source
	// throttling); the demo front end serves one prober, so one id.
	Source uint64
}

// Handle processes one query packet and returns the response packet.
// Malformed queries yield a nil response (dropped), like real servers
// ignoring garbage — except a parseable question with a malformed EDNS0
// option, which is answered FORMERR so the prober can tell a codec bug
// from packet loss. With a fault plan set on the resolver, packets can
// also be dropped (nil), refused (throttled source), or answered SERVFAIL.
func (fe *WireFrontend) Handle(query []byte, t simtime.Time) []byte {
	q, err := dnswire.Decode(query)
	if err != nil {
		if q != nil && !q.QR && errors.Is(err, dnswire.ErrBadOption) {
			return mustEncode(&dnswire.Message{
				ID: q.ID, QR: true, RD: q.RD, RA: true,
				Rcode: dnswire.RcodeFormErr,
				QName: q.QName, QType: q.QType, QClass: q.QClass,
			})
		}
		return nil
	}
	if q.QR {
		return nil
	}
	resp := &dnswire.Message{
		ID: q.ID, QR: true, RD: q.RD, RA: true,
		QName: q.QName, QType: q.QType, QClass: q.QClass,
		ECS: q.ECS,
	}
	if pl := fe.PR.FaultPlan(); pl.Enabled() {
		// The query ID is the retry entropy: a retried probe is a new
		// datagram with a new ID and re-rolls per-packet faults.
		key := randx.Hash64(hashString(q.QName), uint64(q.ID))
		switch ferr := pl.ProbeFault(fe.PoP, fe.Source, key, 0, t); {
		case errors.Is(ferr, faults.ErrTimeout):
			return nil // dropped on the floor; the client's deadline fires
		case errors.Is(ferr, faults.ErrThrottled):
			resp.Rcode = dnswire.RcodeRefused
			return mustEncode(resp)
		case errors.Is(ferr, faults.ErrServfail):
			resp.Rcode = dnswire.RcodeServfail
			return mustEncode(resp)
		}
	}
	svc, known := fe.PR.cat.ByDomain(q.QName)
	if !known {
		resp.Rcode = dnswire.RcodeNXDomain
		return mustEncode(resp)
	}
	resp.AnswerTTL = uint32(svc.TTLSeconds)

	var ecsPrefix topology.PrefixID
	haveECS := false
	if q.ECS != nil && q.ECS.Prefix.Addr().Is4() && q.ECS.Prefix.Bits() >= 24 {
		if p, err := topology.PrefixFromAddr(q.ECS.Prefix.Addr()); err == nil {
			ecsPrefix = p
			haveECS = true
		}
	}

	if !q.RD {
		// Non-recursive: a cache probe. Only ECS-scoped entries can
		// be checked per prefix.
		if !haveECS {
			resp.Rcode = dnswire.RcodeRefused
			return mustEncode(resp)
		}
		hit, err := fe.PR.cacheLookup(fe.PoP, q.QName, ecsPrefix, t)
		if err != nil {
			resp.Rcode = dnswire.RcodeRefused
			return mustEncode(resp)
		}
		if hit {
			fe.answer(resp, q.QName, ecsPrefix, haveECS)
			if resp.ECS != nil {
				resp.ECS.ScopePrefixLen = 24
			}
		}
		// Miss: NOERROR with zero answers — the probe signal.
		return mustEncode(resp)
	}

	// Recursive query: resolve via the authoritative.
	fe.answer(resp, q.QName, ecsPrefix, haveECS)
	if resp.ECS != nil && svc.ECS {
		resp.ECS.ScopePrefixLen = 24
	}
	return mustEncode(resp)
}

func (fe *WireFrontend) answer(resp *dnswire.Message, domain string, client topology.PrefixID, haveECS bool) {
	popCity := fe.PR.PoPs[fe.PoP].City.Coord
	var ans Answer
	var err error
	if haveECS {
		ans, err = fe.Auth.ResolveECS(domain, client, popCity)
	} else {
		ans, err = fe.Auth.ResolveFrom(domain, popCity)
	}
	if err != nil {
		resp.Rcode = dnswire.RcodeNXDomain
		return
	}
	resp.Answers = append(resp.Answers, netipAddr(ans.Prefix))
}

func netipAddr(p topology.PrefixID) netip.Addr { return p.Addr(1) }

func mustEncode(m *dnswire.Message) []byte {
	b, err := m.Encode()
	if err != nil {
		// Responses are built from decoded queries plus fixed fields;
		// encoding cannot fail unless the decoder accepted a name the
		// encoder refuses, which would be a codec bug.
		panic("dnssim: response encode failed: " + err.Error())
	}
	return b
}

// ServeUDP answers queries on conn until the connection is closed or ctx
// semantics are simulated by closing. clock supplies the simulated time of
// each request. It returns the first non-timeout error, or nil when conn
// closes.
func (fe *WireFrontend) ServeUDP(conn net.PacketConn, clock func() simtime.Time) error {
	buf := make([]byte, 4096)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		resp := fe.Handle(buf[:n], clock())
		if resp == nil {
			continue
		}
		if _, err := conn.WriteTo(resp, addr); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
	}
}

// WireClient issues wire-format queries to a UDP resolver endpoint —
// what a real cache-probing tool does.
type WireClient struct {
	mu sync.Mutex
	//itm:guardedby mu
	conn net.Conn
	//itm:guardedby mu
	id uint16

	// Timeout bounds each round trip; a dropped datagram surfaces as
	// faults.ErrTimeout instead of blocking the exchange forever.
	// Zero means no deadline (the pre-fault-layer behaviour).
	Timeout time.Duration
}

// DialWireClient connects to a resolver front end.
func DialWireClient(addr string) (*WireClient, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &WireClient{conn: conn}, nil
}

// Close releases the client socket. It deliberately skips c.mu: Close
// must be able to interrupt a roundTrip blocked in conn.Read (which holds
// the lock), and net.Conn's Close is specified safe for concurrent use.
//itmlint:allow lockguard Close interrupts a blocked read; net.Conn.Close is concurrency-safe
func (c *WireClient) Close() error { return c.conn.Close() }

// rcodeError maps response codes onto the typed transient errors so wire
// clients can classify retryability the same way simulated probers do.
func rcodeError(context string, rcode uint8) error {
	switch rcode {
	case dnswire.RcodeServfail:
		return fmt.Errorf("dnssim: %s: %w", context, faults.ErrServfail)
	case dnswire.RcodeRefused:
		// Public resolvers refuse banned sources; retry after backoff.
		return fmt.Errorf("dnssim: %s: %w", context, faults.ErrThrottled)
	default:
		return fmt.Errorf("dnssim: %s: rcode %d", context, rcode)
	}
}

// Probe sends an RD=0 ECS query and reports whether the record was cached.
func (c *WireClient) Probe(domain string, prefix netip.Prefix) (bool, error) {
	resp, err := c.roundTrip(dnswire.NewQuery(c.nextID(), domain, false).WithECS(prefix))
	if err != nil {
		return false, err
	}
	if resp.Rcode != dnswire.RcodeNoError {
		return false, rcodeError("probe refused", resp.Rcode)
	}
	return len(resp.Answers) > 0, nil
}

// Resolve sends a recursive ECS query and returns the answer addresses.
func (c *WireClient) Resolve(domain string, prefix netip.Prefix) ([]netip.Addr, error) {
	resp, err := c.roundTrip(dnswire.NewQuery(c.nextID(), domain, true).WithECS(prefix))
	if err != nil {
		return nil, err
	}
	if resp.Rcode != dnswire.RcodeNoError {
		return nil, rcodeError("resolution failed", resp.Rcode)
	}
	return resp.Answers, nil
}

func (c *WireClient) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.id++
	return c.id
}

func (c *WireClient) roundTrip(q *dnswire.Message) (*dnswire.Message, error) {
	raw, err := q.Encode()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Timeout > 0 {
		// A kernel socket deadline is inherently wall-clock: this client
		// talks to a real UDP endpoint, not the simulated substrate.
		//itmlint:allow nodeterm real socket deadline needs the wall clock
		if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return nil, err
		}
	}
	if _, err := c.conn.Write(raw); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	n, err := c.conn.Read(buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			// The datagram (or its answer) was dropped.
			return nil, fmt.Errorf("dnssim: read: %w", faults.ErrTimeout)
		}
		return nil, err
	}
	resp, err := dnswire.Decode(buf[:n])
	if err != nil {
		return nil, err
	}
	if resp.ID != q.ID {
		return nil, errors.New("dnssim: response ID mismatch")
	}
	return resp, nil
}
