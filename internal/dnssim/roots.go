package dnssim

import (
	"sort"

	"itmap/internal/faults"
	"itmap/internal/topology"
)

// RootLetter is one of the 13 root server identities. Some operators
// anonymize resolver addresses in published logs (the paper notes "more and
// more root operators anonymize the data in ways that limit coverage");
// anonymized letters contribute nothing to the crawl.
type RootLetter struct {
	Letter     byte
	Operator   string
	Anonymized bool
	// ResearchAccess marks letters run by research organizations (ISI,
	// UMD in the paper) that could provide real-time access.
	ResearchAccess bool
}

// RootLogEntry aggregates one resolver's Chromium-probe queries at one
// letter over a day. Only the resolver (not the client) is visible —
// the core limitation of approach 2.
type RootLogEntry struct {
	ResolverPrefix topology.PrefixID
	ResolverASN    topology.ASN
	Queries        float64
}

// ChromiumSource supplies daily Chromium random-label query loads. The
// traffic model implements it.
type ChromiumSource interface {
	// ChromiumRootQueries returns, for the given day, the daily count of
	// Chromium interception-probe queries reaching the roots, broken
	// down by the resolver that forwarded them.
	ChromiumRootQueries(day int) []RootLogEntry
}

// RootSystem is the 13-letter root with per-letter anonymization policy.
type RootSystem struct {
	Letters []RootLetter

	faults *faults.Plan
}

// SetFaultPlan wires a fault schedule into the log pipeline: letters the
// plan marks down for a day publish nothing that day. Nil restores
// fault-free behaviour exactly.
func (rs *RootSystem) SetFaultPlan(pl *faults.Plan) { rs.faults = pl }

// NewRootSystem builds the root system; anonFrac of the 13 letters (rounded)
// publish only anonymized logs.
func NewRootSystem(anonFrac float64) *RootSystem {
	ops := []string{
		"VeriSign-A", "USC-ISI", "Cogent", "UMD", "NASA", "ISC",
		"DoD", "ARL", "Netnod", "VeriSign-J", "RIPE", "ICANN", "WIDE",
	}
	nAnon := int(anonFrac*13 + 0.5)
	rs := &RootSystem{}
	for i := 0; i < 13; i++ {
		rs.Letters = append(rs.Letters, RootLetter{
			Letter:         byte('A' + i),
			Operator:       ops[i],
			Anonymized:     i >= 13-nAnon,
			ResearchAccess: ops[i] == "USC-ISI" || ops[i] == "UMD",
		})
	}
	return rs
}

// DayLogs returns the per-letter logs for a day. Chromium queries have
// random labels, so they never hit resolver caches and spread uniformly
// across the 13 letters. Anonymized letters return entries with the
// resolver identity zeroed out. Letters the fault plan marks down for the
// day are absent from the map entirely — the crawl sees a missing pipeline,
// not an empty one.
func (rs *RootSystem) DayLogs(day int, src ChromiumSource) map[byte][]RootLogEntry {
	entries := src.ChromiumRootQueries(day)
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].ResolverPrefix < entries[j].ResolverPrefix
	})
	out := map[byte][]RootLogEntry{}
	for _, l := range rs.Letters {
		if rs.faults.LetterDown(l.Letter, day) {
			continue
		}
		logs := make([]RootLogEntry, 0, len(entries))
		for _, e := range entries {
			share := e
			share.Queries = e.Queries / 13
			if l.Anonymized {
				share.ResolverPrefix = 0
				share.ResolverASN = 0
			}
			logs = append(logs, share)
		}
		out[l.Letter] = logs
	}
	return out
}

// UsableLetters returns the letters whose logs identify resolvers.
func (rs *RootSystem) UsableLetters() []byte {
	var out []byte
	for _, l := range rs.Letters {
		if !l.Anonymized {
			out = append(out, l.Letter)
		}
	}
	return out
}
