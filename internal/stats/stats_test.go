package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedCDFBasics(t *testing.T) {
	var c WeightedCDF
	c.Add(1, 1)
	c.Add(2, 1)
	c.Add(3, 2)
	if c.N() != 3 || c.TotalWeight() != 4 {
		t.Fatalf("N=%d W=%f", c.N(), c.TotalWeight())
	}
	if got := c.FracAtMost(1); got != 0.25 {
		t.Errorf("FracAtMost(1) = %f", got)
	}
	if got := c.FracAtMost(2.5); got != 0.5 {
		t.Errorf("FracAtMost(2.5) = %f", got)
	}
	if got := c.FracAtMost(3); got != 1 {
		t.Errorf("FracAtMost(3) = %f", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("median = %f", got)
	}
	if got := c.Quantile(0.9); got != 3 {
		t.Errorf("p90 = %f", got)
	}
	if got := c.Mean(); got != 2.25 {
		t.Errorf("mean = %f", got)
	}
}

func TestWeightedCDFIgnoresNonPositiveWeights(t *testing.T) {
	var c WeightedCDF
	c.Add(5, 0)
	c.Add(6, -1)
	if c.N() != 0 {
		t.Error("non-positive weights admitted")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestWeightingChangesTheAnswer(t *testing.T) {
	// The paper's point: 2% of paths are short unweighted, but most
	// traffic takes them.
	var unweighted, weighted WeightedCDF
	// 98 long paths with tiny traffic, 2 short paths with huge traffic.
	for i := 0; i < 98; i++ {
		unweighted.Add(4, 1)
		weighted.Add(4, 1)
	}
	for i := 0; i < 2; i++ {
		unweighted.Add(1, 1)
		weighted.Add(1, 500)
	}
	if got := unweighted.FracAtMost(1); math.Abs(got-0.02) > 1e-9 {
		t.Errorf("unweighted short frac %f", got)
	}
	if got := weighted.FracAtMost(1); got < 0.9 {
		t.Errorf("weighted short frac %f, want > 0.9", got)
	}
}

func TestCDFPropertyMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		var c WeightedCDF
		for _, v := range vals {
			c.Add(math.Mod(math.Abs(v), 100), 1)
		}
		prev := -1.0
		for x := 0.0; x <= 100; x += 7 {
			cur := c.FracAtMost(x)
			if cur < prev-1e-12 || cur < 0 || cur > 1 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect linear corr = %f", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative corr = %f", got)
	}
	if got := Pearson(xs, []float64{1, 1, 1, 1, 1}); got != 0 {
		t.Errorf("zero-variance corr = %f", got)
	}
	if got := Pearson(xs, ys[:3]); got != 0 {
		t.Errorf("length mismatch should be 0, got %f", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 10, 100, 1000, 10000} // monotone, nonlinear
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone Spearman = %f", got)
	}
	// Ties handled via average ranks.
	tied := Spearman([]float64{1, 1, 2}, []float64{3, 3, 5})
	if tied <= 0.9 {
		t.Errorf("tied Spearman = %f", tied)
	}
}

func TestKendallTau(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := KendallTau(xs, []float64{10, 20, 30, 40}); got != 1 {
		t.Errorf("concordant tau = %f", got)
	}
	if got := KendallTau(xs, []float64{40, 30, 20, 10}); got != -1 {
		t.Errorf("discordant tau = %f", got)
	}
	mixed := KendallTau(xs, []float64{10, 30, 20, 40})
	if mixed <= 0 || mixed >= 1 {
		t.Errorf("mixed tau = %f", mixed)
	}
}
