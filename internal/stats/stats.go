// Package stats provides the weighted statistics the traffic map is built
// to enable — the paper's crusade against unweighted CDFs — plus the
// correlation measures its evaluations use (Pearson, Spearman, Kendall).
package stats

import (
	"math"
	"sort"
)

// WeightedCDF is an empirical CDF over weighted samples. With unit weights
// it is the classic unweighted CDF the paper rails against; with traffic or
// user weights it answers "what fraction of activity...".
type WeightedCDF struct {
	values  []float64
	weights []float64
	total   float64
	sorted  bool
}

// Add appends one weighted sample. Non-positive weights are ignored.
func (c *WeightedCDF) Add(value, weight float64) {
	if weight <= 0 {
		return
	}
	c.values = append(c.values, value)
	c.weights = append(c.weights, weight)
	c.total += weight
	c.sorted = false
}

// N returns the number of samples.
func (c *WeightedCDF) N() int { return len(c.values) }

// TotalWeight returns the sum of weights.
func (c *WeightedCDF) TotalWeight() float64 { return c.total }

func (c *WeightedCDF) sort() {
	if c.sorted {
		return
	}
	idx := make([]int, len(c.values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return c.values[idx[a]] < c.values[idx[b]] })
	nv := make([]float64, len(idx))
	nw := make([]float64, len(idx))
	for i, j := range idx {
		nv[i], nw[i] = c.values[j], c.weights[j]
	}
	c.values, c.weights = nv, nw
	c.sorted = true
}

// FracAtMost returns the weighted fraction of samples with value <= x.
func (c *WeightedCDF) FracAtMost(x float64) float64 {
	if c.total == 0 {
		return 0
	}
	c.sort()
	cum := 0.0
	for i, v := range c.values {
		if v > x {
			break
		}
		cum += c.weights[i]
	}
	return cum / c.total
}

// Quantile returns the smallest value v with FracAtMost(v) >= q.
func (c *WeightedCDF) Quantile(q float64) float64 {
	if len(c.values) == 0 {
		return math.NaN()
	}
	c.sort()
	target := q * c.total
	cum := 0.0
	for i, v := range c.values {
		cum += c.weights[i]
		if cum >= target {
			return v
		}
	}
	return c.values[len(c.values)-1]
}

// Mean returns the weighted mean.
func (c *WeightedCDF) Mean() float64 {
	if c.total == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i, v := range c.values {
		sum += v * c.weights[i]
	}
	return sum / c.total
}

// Pearson returns the Pearson correlation of paired samples. It returns 0
// for degenerate inputs (fewer than 2 points or zero variance).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ranks returns average ranks for ties.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Spearman returns the Spearman rank correlation of paired samples.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(ranks(xs), ranks(ys))
}

// KendallTau returns Kendall's tau-a over paired samples — the rank
// agreement statistic behind Figure 2's "cache hit rate correctly orders
// French ISPs".
func KendallTau(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a := (xs[i] - xs[j]) * (ys[i] - ys[j])
			switch {
			case a > 0:
				concordant++
			case a < 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs)
}
