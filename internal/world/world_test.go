package world

import (
	"math"
	"testing"

	"itmap/internal/topology"
)

func TestBuildTinyWorld(t *testing.T) {
	w := Build(Tiny(1))
	if err := w.Top.CheckInvariants(); err != nil {
		t.Fatalf("invariants after full build: %v", err)
	}
	if w.Traffic == nil || w.PR == nil || w.Auth == nil || w.Roots == nil {
		t.Fatal("world incompletely wired")
	}
	if len(w.PR.PoPs) < 4 {
		t.Errorf("public resolver has only %d PoPs", len(w.PR.PoPs))
	}
	if len(w.Roots.Letters) != 13 {
		t.Errorf("root system has %d letters", len(w.Roots.Letters))
	}
}

func TestWorldDeterministic(t *testing.T) {
	a := Build(Tiny(5))
	b := Build(Tiny(5))
	ma := a.Traffic.BuildMatrix()
	mb := b.Traffic.BuildMatrix()
	if ma.TotalBytes != mb.TotalBytes {
		t.Fatalf("same seed, different totals: %f vs %f", ma.TotalBytes, mb.TotalBytes)
	}
	if len(ma.Flows) != len(mb.Flows) {
		t.Fatalf("same seed, different flow counts: %d vs %d", len(ma.Flows), len(mb.Flows))
	}
}

func TestMatrixConsistency(t *testing.T) {
	w := Build(Tiny(3))
	mx := w.Traffic.BuildMatrix()
	if mx.TotalBytes <= 0 {
		t.Fatal("no traffic")
	}
	// Per-service and per-owner sums both equal the total.
	var svcSum, ownerSum, clientSum float64
	for _, b := range mx.PerService {
		svcSum += b
	}
	for _, b := range mx.PerOwner {
		ownerSum += b
	}
	for _, b := range mx.ClientASBytes {
		clientSum += b
	}
	catalogBytes := mx.TotalBytes - mx.TailBytes
	for _, name := range []struct {
		n          string
		v, against float64
	}{
		{"service", svcSum, catalogBytes},
		{"owner", ownerSum, mx.TotalBytes},
		{"client", clientSum, mx.TotalBytes},
	} {
		if rel := (name.v - name.against) / name.against; rel > 1e-9 || rel < -1e-9 {
			t.Errorf("%s sum %.0f != %.0f", name.n, name.v, name.against)
		}
	}
	// Tail share lands near its configured value.
	if ts := mx.TailBytes / mx.TotalBytes; math.Abs(ts-w.Traffic.TailShare) > 0.02 {
		t.Errorf("tail share %.3f, want %.2f", ts, w.Traffic.TailShare)
	}
	// Catalog flow bytes sum to catalog traffic (every flow routed).
	var flowSum float64
	for _, f := range mx.Flows {
		if f.Hops < 0 {
			t.Errorf("unrouted flow %+v", f)
		}
		flowSum += f.Bytes
	}
	if rel := (flowSum - catalogBytes) / catalogBytes; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("flow sum %.0f != catalog bytes %.0f", flowSum, catalogBytes)
	}
	// Reference CDN log is a subset of total and non-empty.
	var ref float64
	for _, b := range mx.RefCDNByPrefix {
		ref += b
	}
	if ref <= 0 || ref >= mx.TotalBytes {
		t.Errorf("reference CDN bytes %.0f out of range", ref)
	}
}

func TestTrafficConcentratedOnGiants(t *testing.T) {
	w := Build(Tiny(7))
	mx := w.Traffic.BuildMatrix()
	owners := mx.TopOwners()
	if len(owners) == 0 {
		t.Fatal("no owners")
	}
	// The heaviest owners are all giants; the tail is not.
	for _, o := range owners[:3] {
		ty := w.Top.ASes[o.ASN].Type
		if ty != topology.Hypergiant && ty != topology.Cloud {
			t.Errorf("top owner %d is %v", o.ASN, ty)
		}
	}
	// The paper's premise: a handful of providers carry most traffic,
	// but not literally all of it.
	if s := mx.CumulativeTopShare(5); s < 0.5 || s > 0.98 {
		t.Errorf("top-5 owners carry %.0f%%, want 50-98%%", s*100)
	}
	if s := mx.CumulativeTopShare(len(w.Cat.Owners())); s > 0.97 {
		t.Errorf("giants carry %.1f%%; tail missing", s*100)
	}
}

func TestOffNetsAbsorbTraffic(t *testing.T) {
	w := Build(Tiny(9))
	mx := w.Traffic.BuildMatrix()
	var offNetBytes float64
	for _, f := range mx.Flows {
		if f.Site.OffNet() {
			offNetBytes += f.Bytes
			if f.Site.HostAS != f.ClientAS && f.Hops < 0 {
				t.Errorf("off-net flow unrouted: %+v", f)
			}
		}
	}
	if offNetBytes == 0 {
		t.Error("no traffic served from off-net caches")
	}
}
