package world

import (
	"testing"
)

// TestCrossSeedRobustness asserts that the structural properties the
// experiments rely on hold across seeds, not just the tuned ones.
func TestCrossSeedRobustness(t *testing.T) {
	for seed := int64(101); seed <= 105; seed++ {
		w := Build(Tiny(seed))
		if err := w.Top.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: invariants: %v", seed, err)
		}
		mx := w.Traffic.BuildMatrix()
		if mx.TotalBytes <= 0 {
			t.Fatalf("seed %d: no traffic", seed)
		}
		// Concentration: giants dominate but the tail exists.
		if s := mx.CumulativeTopShare(5); s < 0.5 || s > 0.99 {
			t.Errorf("seed %d: top-5 share %.2f", seed, s)
		}
		// Flattening: most top-owner query volume within one hop.
		topOwner := mx.TopOwners()[0].ASN
		var short, total float64
		for _, f := range mx.Flows {
			svc := w.Cat.Services[f.Svc]
			if svc.Owner != topOwner || f.Hops < 0 {
				continue
			}
			q := f.Bytes / svc.BytesPerQuery
			total += q
			if f.Hops <= 1 {
				short += q
			}
		}
		if total == 0 || short/total < 0.5 {
			t.Errorf("seed %d: weighted short-path frac %.2f", seed, short/total)
		}
		// Root operators exist and peer widely.
		rootOps := 0
		for _, asn := range w.Top.ASNs() {
			a := w.Top.ASes[asn]
			if a.RootOperator {
				rootOps++
				if len(a.Peers()) < 3 {
					t.Errorf("seed %d: root op %d has %d peers", seed, asn, len(a.Peers()))
				}
			}
		}
		if rootOps == 0 {
			t.Errorf("seed %d: no root operators", seed)
		}
		// Off-nets exist for the reference CDN.
		if len(w.Cat.Deployments[w.Cat.ReferenceCDN].OffNetByHost) == 0 {
			t.Errorf("seed %d: reference CDN has no off-nets", seed)
		}
		// Anycast deployments announce from hub sites only.
		for owner, d := range w.Cat.Deployments {
			if d.HasAnycast && len(d.AnycastSites) == 0 {
				t.Errorf("seed %d: owner %d anycast without sites", seed, owner)
			}
		}
	}
}
