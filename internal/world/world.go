// Package world composes the substrates — topology, BGP, users, services,
// DNS, traffic — into one simulated Internet that measurement code can probe
// through public interfaces only.
package world

import (
	"itmap/internal/bgp"
	"itmap/internal/dnssim"
	"itmap/internal/randx"
	"itmap/internal/services"
	"itmap/internal/topology"
	"itmap/internal/traffic"
	"itmap/internal/users"
)

// Config selects the world's scale and seed.
type Config struct {
	Seed     int64
	Topology topology.GenConfig
	Users    users.Config
	Services services.Config
	// RootAnonFrac is the fraction of root letters with anonymized logs.
	RootAnonFrac float64
}

// Default returns the full-scale configuration.
func Default(seed int64) Config {
	return Config{
		Seed:         seed,
		Topology:     topology.DefaultGenConfig(seed),
		Users:        users.DefaultConfig(),
		Services:     services.DefaultConfig(),
		RootAnonFrac: 0.3,
	}
}

// Small returns the integration-test/example-scale configuration.
func Small(seed int64) Config {
	c := Default(seed)
	c.Topology = topology.SmallGenConfig(seed)
	return c
}

// Tiny returns the unit-test-scale configuration.
func Tiny(seed int64) Config {
	c := Default(seed)
	c.Topology = topology.TinyGenConfig(seed)
	return c
}

// World is a fully wired simulated Internet.
type World struct {
	Cfg     Config
	Top     *topology.Topology
	Paths   *bgp.AllPaths
	Users   *users.Model
	Cat     *services.Catalog
	PR      *dnssim.PublicResolver
	Auth    *dnssim.Authoritative
	Roots   *dnssim.RootSystem
	Traffic *traffic.Model
}

// Build constructs the world: generate topology, compute routes, place
// users and services, wire DNS and demand.
func Build(cfg Config) *World {
	rng := randx.New(cfg.Seed)
	top := topology.Generate(cfg.Topology)
	um := users.Build(top, cfg.Users, rng.Fork())
	cat := services.Build(top, cfg.Services, rng.Fork())
	// Service deployment allocated new prefixes; recompute dense index.
	top.Freeze()
	ap := bgp.ComputeAll(top)
	hgs := top.ASesOfType(topology.Hypergiant)
	pr := dnssim.NewPublicResolver(top, cat, hgs[0], cfg.Seed)
	tm := traffic.New(top, um, cat, ap, pr, cfg.Seed)
	return &World{
		Cfg:     cfg,
		Top:     top,
		Paths:   ap,
		Users:   um,
		Cat:     cat,
		PR:      pr,
		Auth:    dnssim.NewAuthoritative(top, cat),
		Roots:   dnssim.NewRootSystem(cfg.RootAnonFrac),
		Traffic: tm,
	}
}
