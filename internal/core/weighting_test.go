package core

import (
	"strings"
	"testing"

	"itmap/internal/world"
)

func TestWeightingReportShapes(t *testing.T) {
	w := world.Build(world.Tiny(61))
	mx := w.Traffic.BuildMatrix()
	rep := BuildWeightingReport(w.Top, mx)

	// The paper's thesis: weighting shortens paths dramatically.
	if rep.PathLen.FracShortWeighted <= rep.PathLen.FracShortUnweighted {
		t.Errorf("weighting did not shorten paths: %.2f vs %.2f",
			rep.PathLen.FracShortWeighted, rep.PathLen.FracShortUnweighted)
	}
	if rep.PathLen.WeightedMedian > rep.PathLen.UnweightedMedian {
		t.Errorf("weighted median %g > unweighted %g",
			rep.PathLen.WeightedMedian, rep.PathLen.UnweightedMedian)
	}
	// Degree and traffic rank ASes differently but not randomly.
	if rep.ASImportance.Spearman <= 0 || rep.ASImportance.Spearman >= 0.999 {
		t.Errorf("degree-vs-traffic Spearman %.3f implausible", rep.ASImportance.Spearman)
	}
	if rep.ASImportance.TopOverlap < 0 || rep.ASImportance.TopOverlap > 1 {
		t.Fatalf("overlap %f", rep.ASImportance.TopOverlap)
	}
	if rep.ASImportance.TopUnweighted == "" || rep.ASImportance.TopWeighted == "" {
		t.Error("missing leaders")
	}
	// Link importance under uniform weighting is meaningless by design:
	// overlap with load ranking should be low.
	if rep.LinkImportance.TopOverlap > 0.8 {
		t.Errorf("uniform link ranking matches load ranking at %.0f%%",
			rep.LinkImportance.TopOverlap*100)
	}
	out := rep.String()
	for _, want := range []string{"path length", "AS importance", "link importance"} {
		if !strings.Contains(out, want) {
			t.Errorf("report rendering missing %q", want)
		}
	}
}

func TestWeightingReportEmptyMatrix(t *testing.T) {
	w := world.Build(world.Tiny(62))
	mx := w.Traffic.BuildMatrix()
	mx.Flows = nil
	rep := BuildWeightingReport(w.Top, mx)
	_ = rep.String() // must not panic on NaN medians
}
