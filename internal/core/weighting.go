package core

import (
	"fmt"
	"sort"
	"strings"

	"itmap/internal/stats"
	"itmap/internal/topology"
	"itmap/internal/traffic"
)

// WeightingReport is the paper's thesis as a reusable analysis: for the
// metrics researchers habitually compute unweighted, show how the answer
// changes once each element is weighted by the traffic it actually
// carries. Feed it to reviewers of the next unweighted CDF.
type WeightingReport struct {
	// PathLen contrasts the AS-path-length distribution per route
	// (unweighted) against per byte carried (weighted).
	PathLen WeightingContrast
	// ASImportance contrasts two AS rankings: by degree (the classic
	// topology-paper metric) and by carried traffic.
	ASImportance RankContrast
	// LinkImportance contrasts link rankings: every link equal vs by
	// carried load.
	LinkImportance RankContrast
}

// WeightingContrast is one metric under both weightings.
type WeightingContrast struct {
	UnweightedMedian float64
	WeightedMedian   float64
	// FracShortUnweighted/Weighted: share with value <= 1 (the paper's
	// "one hop away" statistic).
	FracShortUnweighted float64
	FracShortWeighted   float64
}

// RankContrast compares two rankings of the same elements.
type RankContrast struct {
	// Spearman between the two rankings' scores.
	Spearman float64
	// TopOverlap is |top-10 ∩ top-10| / 10.
	TopOverlap float64
	// TopUnweighted / TopWeighted name the leaders under each ranking.
	TopUnweighted string
	TopWeighted   string
}

// BuildWeightingReport computes the report from ground truth (or from a
// map-estimated matrix — anything exposing flows and loads).
func BuildWeightingReport(top *topology.Topology, mx *traffic.Matrix) WeightingReport {
	var rep WeightingReport

	// Path lengths: per flow (route) vs per byte.
	var unweighted, weighted stats.WeightedCDF
	for _, f := range mx.Flows {
		if f.Hops < 0 {
			continue
		}
		unweighted.Add(float64(f.Hops), 1)
		weighted.Add(float64(f.Hops), f.Bytes)
	}
	rep.PathLen = WeightingContrast{
		UnweightedMedian:    unweighted.Quantile(0.5),
		WeightedMedian:      weighted.Quantile(0.5),
		FracShortUnweighted: unweighted.FracAtMost(1),
		FracShortWeighted:   weighted.FracAtMost(1),
	}

	// AS importance: degree vs carried traffic. Prefer the matrix's dense
	// load views (indexed by the topology's dense AS/link index) over the
	// map forms — no hashing in the scoring loops.
	// dense is only valid if the matrix was built on this very topology
	// (its link index is the one the dense slices are keyed by).
	dense := mx.ASLoadDense != nil && mx.Links == top.LinkIndex()
	all := top.ASNs()
	asns := make([]topology.ASN, 0, len(all))
	deg := make([]float64, 0, len(all))
	load := make([]float64, 0, len(all))
	for i, asn := range all {
		asns = append(asns, asn)
		deg = append(deg, float64(len(top.ASes[asn].Neighbors)))
		if dense {
			load = append(load, mx.ASLoadDense[i])
		} else {
			load = append(load, mx.ASLoad[asn])
		}
	}
	rep.ASImportance = rankContrast(asns, deg, load, func(a topology.ASN) string {
		return fmt.Sprintf("%s(AS%d)", top.ASes[a].Name, a)
	})

	// Link importance: uniform vs load.
	links := top.Links()
	var linkIdx []topology.ASN // reuse index slots; names built separately
	var uni, lload []float64
	names := make([]string, len(links))
	for i, l := range links {
		linkIdx = append(linkIdx, topology.ASN(i))
		uni = append(uni, 1)
		if dense {
			ia, _ := top.Index(l.A)
			ib, _ := top.Index(l.B)
			lload = append(lload, mx.LinkLoadDense[mx.Links.IDBetween(ia, ib)])
		} else {
			lload = append(lload, mx.LinkLoad[topology.MakeLinkKey(l.A, l.B)])
		}
		names[i] = fmt.Sprintf("%d-%d", l.A, l.B)
	}
	rep.LinkImportance = rankContrast(linkIdx, uni, lload, func(i topology.ASN) string {
		return names[int(i)]
	})
	return rep
}

// rankContrast builds the comparison between two scorings of elements.
func rankContrast[T comparable](elems []T, a, b []float64, name func(T) string) RankContrast {
	rc := RankContrast{Spearman: stats.Spearman(a, b)}
	topOf := func(scores []float64) ([]T, T) {
		idx := make([]int, len(elems))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool { return scores[idx[x]] > scores[idx[y]] })
		k := 10
		if k > len(idx) {
			k = len(idx)
		}
		out := make([]T, k)
		for i := 0; i < k; i++ {
			out[i] = elems[idx[i]]
		}
		var first T
		if len(out) > 0 {
			first = out[0]
		}
		return out, first
	}
	ta, fa := topOf(a)
	tb, fb := topOf(b)
	inA := map[T]bool{}
	for _, e := range ta {
		inA[e] = true
	}
	overlap := 0
	for _, e := range tb {
		if inA[e] {
			overlap++
		}
	}
	if len(tb) > 0 {
		rc.TopOverlap = float64(overlap) / float64(len(tb))
	}
	rc.TopUnweighted = name(fa)
	rc.TopWeighted = name(fb)
	return rc
}

// String renders the report for humans.
func (r WeightingReport) String() string {
	var b strings.Builder
	//itmlint:allow errdrop strings.Builder writes cannot fail
	fmt.Fprintf(&b, "path length: median %g hops per route vs %g per byte; <=1 hop: %.1f%% of routes vs %.1f%% of bytes\n",
		r.PathLen.UnweightedMedian, r.PathLen.WeightedMedian,
		r.PathLen.FracShortUnweighted*100, r.PathLen.FracShortWeighted*100)
	//itmlint:allow errdrop strings.Builder writes cannot fail
	fmt.Fprintf(&b, "AS importance: degree-vs-traffic Spearman %.2f, top-10 overlap %.0f%% (degree leader %s, traffic leader %s)\n",
		r.ASImportance.Spearman, r.ASImportance.TopOverlap*100,
		r.ASImportance.TopUnweighted, r.ASImportance.TopWeighted)
	//itmlint:allow errdrop strings.Builder writes cannot fail
	fmt.Fprintf(&b, "link importance: uniform-vs-load top-10 overlap %.0f%%\n",
		r.LinkImportance.TopOverlap*100)
	return b.String()
}
