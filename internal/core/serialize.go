package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"itmap/internal/topology"
)

// The JSON schema for a published traffic map. Maps are the artifact the
// paper wants the community to share ("we hope the research community both
// uses and encourages others to use the Internet traffic map"), so the
// export carries only measured estimates — never simulator ground truth.

// MapDocument is the serialized form of a TrafficMap.
type MapDocument struct {
	Version int `json:"version"`
	// Users component.
	ActivePrefixes []string           `json:"active_prefixes"`
	PrefixHitRates map[string]float64 `json:"prefix_hit_rates,omitempty"`
	ASActivity     map[string]float64 `json:"as_activity"`
	Sources        map[string]string  `json:"sources"`
	// Coverage/ASConfidence only appear for maps built from a resilient
	// sweep's stats — fault-free documents stay byte-identical to v1
	// exports thanks to omitempty.
	Coverage     map[string]string  `json:"coverage,omitempty"`
	ASConfidence map[string]float64 `json:"as_confidence,omitempty"`
	// Services component.
	Servers  []ServerDocument  `json:"servers"`
	Mappings []MappingDocument `json:"mappings"`
}

// ServerDocument is one discovered serving prefix.
type ServerDocument struct {
	Prefix  string `json:"prefix"`
	HostAS  uint32 `json:"host_as"`
	OwnerAS uint32 `json:"owner_as"`
	Org     string `json:"org"`
	City    string `json:"city"`
	Country string `json:"country"`
}

// MappingDocument is one measured user→host mapping entry.
type MappingDocument struct {
	Domain   string `json:"domain"`
	ClientAS uint32 `json:"client_as"`
	Serving  string `json:"serving_prefix"`
}

const mapDocVersion = 1

// Document builds the serialized form of the map's measured components.
// The result is already normalized (see Normalize), so exporting it is
// deterministic.
func (m *TrafficMap) Document() *MapDocument {
	doc := &MapDocument{
		Version:        mapDocVersion,
		PrefixHitRates: map[string]float64{},
		ASActivity:     map[string]float64{},
		Sources:        map[string]string{},
	}
	var actives []topology.PrefixID
	for p := range m.Users.ActivePrefixes {
		actives = append(actives, p)
	}
	sort.Slice(actives, func(i, j int) bool { return actives[i] < actives[j] })
	for _, p := range actives {
		doc.ActivePrefixes = append(doc.ActivePrefixes, p.String())
	}
	for p, hr := range m.Users.PrefixHitRate {
		if hr > 0 {
			doc.PrefixHitRates[p.String()] = hr
		}
	}
	for asn, act := range m.Users.ASActivity {
		doc.ASActivity[fmt.Sprintf("%d", asn)] = act
	}
	for asn, src := range m.Users.Sources {
		doc.Sources[fmt.Sprintf("%d", asn)] = sourceString(src)
	}
	if len(m.Users.Coverage) > 0 {
		doc.Coverage = map[string]string{}
		for p, c := range m.Users.Coverage {
			doc.Coverage[p.String()] = c.String()
		}
	}
	if len(m.Users.ASConfidence) > 0 {
		doc.ASConfidence = map[string]float64{}
		for asn, v := range m.Users.ASConfidence {
			doc.ASConfidence[fmt.Sprintf("%d", asn)] = v
		}
	}
	if m.Services.Scan != nil {
		for _, s := range m.Services.Scan.Servers {
			doc.Servers = append(doc.Servers, ServerDocument{
				Prefix:  s.Prefix.String(),
				HostAS:  uint32(s.HostAS),
				OwnerAS: uint32(s.OwnerASN),
				Org:     s.CertOrg,
				City:    s.City.Name,
				Country: s.City.Country,
			})
		}
	}
	var keys []MappingKey
	for k := range m.Services.Mapping {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	for _, k := range keys {
		doc.Mappings = append(doc.Mappings, MappingDocument{
			Domain:   k.Domain,
			ClientAS: uint32(k.ClientAS),
			Serving:  m.Services.Mapping[k].String(),
		})
	}
	doc.Normalize()
	return doc
}

// Export writes the map's measured components as JSON.
func (m *TrafficMap) Export(w io.Writer) error {
	return m.Document().Export(w)
}

// Normalize puts a document into its canonical form, so that two documents
// with the same content export byte-identically no matter how they were
// produced (built from a TrafficMap, imported from JSON, or decoded from
// the binary codec): required maps are non-nil, optional maps
// (Coverage/ASConfidence) are nil when empty — matching their omitempty
// export — and slices are sorted (prefixes numerically where parseable,
// servers by prefix then host AS, mappings by domain then client AS).
func (doc *MapDocument) Normalize() {
	if doc.PrefixHitRates == nil {
		doc.PrefixHitRates = map[string]float64{}
	}
	if doc.ASActivity == nil {
		doc.ASActivity = map[string]float64{}
	}
	if doc.Sources == nil {
		doc.Sources = map[string]string{}
	}
	if len(doc.Coverage) == 0 {
		doc.Coverage = nil
	}
	if len(doc.ASConfidence) == 0 {
		doc.ASConfidence = nil
	}
	sort.Slice(doc.ActivePrefixes, func(i, j int) bool {
		return prefixLess(doc.ActivePrefixes[i], doc.ActivePrefixes[j])
	})
	sort.Slice(doc.Servers, func(i, j int) bool {
		a, b := &doc.Servers[i], &doc.Servers[j]
		if a.Prefix != b.Prefix {
			return prefixLess(a.Prefix, b.Prefix)
		}
		if a.HostAS != b.HostAS {
			return a.HostAS < b.HostAS
		}
		return a.Org < b.Org
	})
	sort.Slice(doc.Mappings, func(i, j int) bool {
		a, b := &doc.Mappings[i], &doc.Mappings[j]
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.ClientAS < b.ClientAS
	})
}

// prefixLess orders CIDR strings by numeric prefix ID where both parse
// (lexicographic order would put 10.0.0.0/24 before 2.0.0.0/24), falling
// back to string order so unparseable inputs still sort deterministically.
func prefixLess(a, b string) bool {
	pa, ea := ParsePrefix(a)
	pb, eb := ParsePrefix(b)
	if ea == nil && eb == nil {
		return pa < pb
	}
	return a < b
}

// Export writes the document as indented JSON, normalizing first. JSON map
// keys are emitted in sorted order by encoding/json, so the bytes are a
// pure function of the document's content.
func (doc *MapDocument) Export(w io.Writer) error {
	doc.Normalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func sourceString(s ActivitySource) string {
	switch s {
	case FromCacheProbe:
		return "cache-probe"
	case FromRootLogs:
		return "root-logs"
	case FromCacheProbe | FromRootLogs:
		return "cache-probe+root-logs"
	default:
		return "unknown"
	}
}

func coverageFromString(s string) Coverage {
	switch s {
	case "probed-ok":
		return CoverageProbedOK
	case "gave-up":
		return CoverageGaveUp
	case "stale":
		return CoverageStale
	default:
		return CoverageUnknown
	}
}

func sourceFromString(s string) ActivitySource {
	switch s {
	case "cache-probe":
		return FromCacheProbe
	case "root-logs":
		return FromRootLogs
	case "cache-probe+root-logs":
		return FromCacheProbe | FromRootLogs
	default:
		return 0
	}
}

// ImportDocument parses a serialized map document.
func ImportDocument(r io.Reader) (*MapDocument, error) {
	var doc MapDocument
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decoding map document: %w", err)
	}
	if doc.Version != mapDocVersion {
		return nil, fmt.Errorf("core: unsupported map document version %d", doc.Version)
	}
	return &doc, nil
}

// ImportUsers reconstructs the users component from a document (the
// services/routes components need live scan objects and are not restored).
func ImportUsers(doc *MapDocument) (UsersComponent, error) {
	uc := UsersComponent{
		ActivePrefixes: make(map[topology.PrefixID]bool, len(doc.ActivePrefixes)),
		PrefixHitRate:  make(map[topology.PrefixID]float64, len(doc.PrefixHitRates)),
		ASActivity:     make(map[topology.ASN]float64, len(doc.ASActivity)),
		Sources:        make(map[topology.ASN]ActivitySource, len(doc.Sources)),
		Coverage:       make(map[topology.PrefixID]Coverage, len(doc.Coverage)),
		ASConfidence:   make(map[topology.ASN]float64, len(doc.ASConfidence)),
	}
	for _, s := range doc.ActivePrefixes {
		p, err := parsePrefix(s)
		if err != nil {
			return uc, err
		}
		uc.ActivePrefixes[p] = true
	}
	for s, hr := range doc.PrefixHitRates {
		p, err := parsePrefix(s)
		if err != nil {
			return uc, err
		}
		uc.PrefixHitRate[p] = hr
	}
	for s, act := range doc.ASActivity {
		asn, err := parseASNKey(s)
		if err != nil {
			return uc, err
		}
		uc.ASActivity[asn] = act
	}
	for s, src := range doc.Sources {
		asn, err := parseASNKey(s)
		if err != nil {
			return uc, err
		}
		uc.Sources[asn] = sourceFromString(src)
	}
	for s, cov := range doc.Coverage {
		p, err := parsePrefix(s)
		if err != nil {
			return uc, err
		}
		uc.Coverage[p] = coverageFromString(cov)
	}
	for s, v := range doc.ASConfidence {
		asn, err := parseASNKey(s)
		if err != nil {
			return uc, err
		}
		uc.ASConfidence[asn] = v
	}
	return uc, nil
}

// parseASNKey parses a decimal ASN document key without allocating on the
// success path (ingest parses tens of thousands per epoch).
func parseASNKey(s string) (topology.ASN, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("core: bad ASN %q: %w", s, err)
	}
	return topology.ASN(v), nil
}

// ParsePrefix parses a /24 in CIDR notation (the form PrefixID.String
// emits) back to its dense ID.
func ParsePrefix(s string) (topology.PrefixID, error) { return parsePrefix(s) }

// parsePrefix is hand-rolled rather than fmt.Sscanf-based: it sits under
// every document sort comparison, codec entry, and users-import key, so the
// success path must not allocate. Leading zeros are tolerated (as Sscanf
// did); trailing garbage is rejected.
func parsePrefix(s string) (topology.PrefixID, error) {
	bad := func() (topology.PrefixID, error) {
		return 0, fmt.Errorf("core: bad prefix %q", s)
	}
	i := 0
	octet := func() (int, bool) {
		start := i
		v := 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			v = v*10 + int(s[i]-'0')
			if v > 1<<24 { // cap far above any octet/mask; avoids overflow
				return 0, false
			}
			i++
		}
		return v, i > start
	}
	a, ok := octet()
	if !ok || i >= len(s) || s[i] != '.' {
		return bad()
	}
	i++
	b, ok := octet()
	if !ok || i >= len(s) || s[i] != '.' {
		return bad()
	}
	i++
	c, ok := octet()
	if !ok || i+1 >= len(s) || s[i] != '.' || s[i+1] != '0' {
		return bad()
	}
	i += 2
	if i >= len(s) || s[i] != '/' {
		return bad()
	}
	i++
	bits, ok := octet()
	if !ok || i != len(s) {
		return bad()
	}
	if bits != 24 {
		return 0, fmt.Errorf("core: prefix %q is not a /24", s)
	}
	if a > 255 || b > 255 || c > 255 {
		return 0, fmt.Errorf("core: prefix %q has an out-of-range octet", s)
	}
	return topology.PrefixID(a<<16 | b<<8 | c), nil
}
