package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"itmap/internal/topology"
)

// The JSON schema for a published traffic map. Maps are the artifact the
// paper wants the community to share ("we hope the research community both
// uses and encourages others to use the Internet traffic map"), so the
// export carries only measured estimates — never simulator ground truth.

// MapDocument is the serialized form of a TrafficMap.
type MapDocument struct {
	Version int `json:"version"`
	// Users component.
	ActivePrefixes []string           `json:"active_prefixes"`
	PrefixHitRates map[string]float64 `json:"prefix_hit_rates,omitempty"`
	ASActivity     map[string]float64 `json:"as_activity"`
	Sources        map[string]string  `json:"sources"`
	// Coverage/ASConfidence only appear for maps built from a resilient
	// sweep's stats — fault-free documents stay byte-identical to v1
	// exports thanks to omitempty.
	Coverage     map[string]string  `json:"coverage,omitempty"`
	ASConfidence map[string]float64 `json:"as_confidence,omitempty"`
	// Services component.
	Servers  []ServerDocument  `json:"servers"`
	Mappings []MappingDocument `json:"mappings"`
}

// ServerDocument is one discovered serving prefix.
type ServerDocument struct {
	Prefix  string `json:"prefix"`
	HostAS  uint32 `json:"host_as"`
	OwnerAS uint32 `json:"owner_as"`
	Org     string `json:"org"`
	City    string `json:"city"`
	Country string `json:"country"`
}

// MappingDocument is one measured user→host mapping entry.
type MappingDocument struct {
	Domain   string `json:"domain"`
	ClientAS uint32 `json:"client_as"`
	Serving  string `json:"serving_prefix"`
}

const mapDocVersion = 1

// Export writes the map's measured components as JSON.
func (m *TrafficMap) Export(w io.Writer) error {
	doc := MapDocument{
		Version:        mapDocVersion,
		PrefixHitRates: map[string]float64{},
		ASActivity:     map[string]float64{},
		Sources:        map[string]string{},
	}
	var actives []topology.PrefixID
	for p := range m.Users.ActivePrefixes {
		actives = append(actives, p)
	}
	sort.Slice(actives, func(i, j int) bool { return actives[i] < actives[j] })
	for _, p := range actives {
		doc.ActivePrefixes = append(doc.ActivePrefixes, p.String())
	}
	for p, hr := range m.Users.PrefixHitRate {
		if hr > 0 {
			doc.PrefixHitRates[p.String()] = hr
		}
	}
	for asn, act := range m.Users.ASActivity {
		doc.ASActivity[fmt.Sprintf("%d", asn)] = act
	}
	for asn, src := range m.Users.Sources {
		doc.Sources[fmt.Sprintf("%d", asn)] = sourceString(src)
	}
	if len(m.Users.Coverage) > 0 {
		doc.Coverage = map[string]string{}
		for p, c := range m.Users.Coverage {
			doc.Coverage[p.String()] = c.String()
		}
	}
	if len(m.Users.ASConfidence) > 0 {
		doc.ASConfidence = map[string]float64{}
		for asn, v := range m.Users.ASConfidence {
			doc.ASConfidence[fmt.Sprintf("%d", asn)] = v
		}
	}
	if m.Services.Scan != nil {
		for _, s := range m.Services.Scan.Servers {
			doc.Servers = append(doc.Servers, ServerDocument{
				Prefix:  s.Prefix.String(),
				HostAS:  uint32(s.HostAS),
				OwnerAS: uint32(s.OwnerASN),
				Org:     s.CertOrg,
				City:    s.City.Name,
				Country: s.City.Country,
			})
		}
	}
	var keys []MappingKey
	for k := range m.Services.Mapping {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Domain != keys[j].Domain {
			return keys[i].Domain < keys[j].Domain
		}
		return keys[i].ClientAS < keys[j].ClientAS
	})
	for _, k := range keys {
		doc.Mappings = append(doc.Mappings, MappingDocument{
			Domain:   k.Domain,
			ClientAS: uint32(k.ClientAS),
			Serving:  m.Services.Mapping[k].String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func sourceString(s ActivitySource) string {
	switch s {
	case FromCacheProbe:
		return "cache-probe"
	case FromRootLogs:
		return "root-logs"
	case FromCacheProbe | FromRootLogs:
		return "cache-probe+root-logs"
	default:
		return "unknown"
	}
}

func coverageFromString(s string) Coverage {
	switch s {
	case "probed-ok":
		return CoverageProbedOK
	case "gave-up":
		return CoverageGaveUp
	case "stale":
		return CoverageStale
	default:
		return CoverageUnknown
	}
}

func sourceFromString(s string) ActivitySource {
	switch s {
	case "cache-probe":
		return FromCacheProbe
	case "root-logs":
		return FromRootLogs
	case "cache-probe+root-logs":
		return FromCacheProbe | FromRootLogs
	default:
		return 0
	}
}

// ImportDocument parses a serialized map document.
func ImportDocument(r io.Reader) (*MapDocument, error) {
	var doc MapDocument
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decoding map document: %w", err)
	}
	if doc.Version != mapDocVersion {
		return nil, fmt.Errorf("core: unsupported map document version %d", doc.Version)
	}
	return &doc, nil
}

// ImportUsers reconstructs the users component from a document (the
// services/routes components need live scan objects and are not restored).
func ImportUsers(doc *MapDocument) (UsersComponent, error) {
	uc := UsersComponent{
		ActivePrefixes: map[topology.PrefixID]bool{},
		PrefixHitRate:  map[topology.PrefixID]float64{},
		ASActivity:     map[topology.ASN]float64{},
		Sources:        map[topology.ASN]ActivitySource{},
		Coverage:       map[topology.PrefixID]Coverage{},
		ASConfidence:   map[topology.ASN]float64{},
	}
	for _, s := range doc.ActivePrefixes {
		p, err := parsePrefix(s)
		if err != nil {
			return uc, err
		}
		uc.ActivePrefixes[p] = true
	}
	for s, hr := range doc.PrefixHitRates {
		p, err := parsePrefix(s)
		if err != nil {
			return uc, err
		}
		uc.PrefixHitRate[p] = hr
	}
	for s, act := range doc.ASActivity {
		var asn uint32
		if _, err := fmt.Sscanf(s, "%d", &asn); err != nil {
			return uc, fmt.Errorf("core: bad ASN %q: %w", s, err)
		}
		uc.ASActivity[topology.ASN(asn)] = act
	}
	for s, src := range doc.Sources {
		var asn uint32
		if _, err := fmt.Sscanf(s, "%d", &asn); err != nil {
			return uc, fmt.Errorf("core: bad ASN %q: %w", s, err)
		}
		uc.Sources[topology.ASN(asn)] = sourceFromString(src)
	}
	for s, cov := range doc.Coverage {
		p, err := parsePrefix(s)
		if err != nil {
			return uc, err
		}
		uc.Coverage[p] = coverageFromString(cov)
	}
	for s, v := range doc.ASConfidence {
		var asn uint32
		if _, err := fmt.Sscanf(s, "%d", &asn); err != nil {
			return uc, fmt.Errorf("core: bad ASN %q: %w", s, err)
		}
		uc.ASConfidence[topology.ASN(asn)] = v
	}
	return uc, nil
}

func parsePrefix(s string) (topology.PrefixID, error) {
	var a, b, c, bits int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.0/%d", &a, &b, &c, &bits); err != nil {
		return 0, fmt.Errorf("core: bad prefix %q: %w", s, err)
	}
	if bits != 24 {
		return 0, fmt.Errorf("core: prefix %q is not a /24", s)
	}
	return topology.PrefixID(a<<16 | b<<8 | c), nil
}
