package core

import (
	"itmap/internal/apnic"
	"itmap/internal/order"
	"itmap/internal/stats"
	"itmap/internal/topology"
	"itmap/internal/traffic"
)

// UsersValidation quantifies the users component against ground truth — the
// role Microsoft's CDN logs play in the paper's §3.1.2 validation.
type UsersValidation struct {
	// PrefixTrafficRecall: share of the reference CDN's traffic
	// originating in prefixes cache probing found ("95%").
	PrefixTrafficRecall float64
	// ASTrafficRecallRoots: share of reference-CDN traffic in ASes the
	// root-log crawl found ("60%").
	ASTrafficRecallRoots float64
	// ASTrafficRecallCombined: share in ASes found by either technique
	// ("99%").
	ASTrafficRecallCombined float64
	// FalseDiscoveryFrac: fraction of found prefixes with zero
	// reference-CDN traffic ("<1%" of identified prefixes).
	FalseDiscoveryFrac float64
	// APNICUserCoverage: share of published APNIC-style users living in
	// ASes cache probing identified ("98%").
	APNICUserCoverage float64
	// ActivityRankCorr is the Spearman correlation between the map's
	// per-AS activity estimate and true per-AS client traffic.
	ActivityRankCorr float64
}

// ValidateUsers scores the map's users component against the simulator's
// ground-truth matrix and the published APNIC-like estimates.
func ValidateUsers(m *TrafficMap, mx *traffic.Matrix, est *apnic.Estimates) UsersValidation {
	var v UsersValidation

	// Prefix-granularity traffic-weighted recall.
	var total, found float64
	for _, p := range order.Keys(mx.RefCDNByPrefix) {
		b := mx.RefCDNByPrefix[p]
		total += b
		if m.Users.ActivePrefixes[p] {
			found += b
		}
	}
	if total > 0 {
		v.PrefixTrafficRecall = found / total
	}

	// AS-granularity recall for root logs and for the combination.
	var rootsFound, combFound, asTotal float64
	for _, asn := range order.Keys(mx.RefCDNByAS) {
		b := mx.RefCDNByAS[asn]
		asTotal += b
		src := m.Users.Sources[asn]
		if src&FromRootLogs != 0 {
			rootsFound += b
		}
		if src != 0 {
			combFound += b
		}
	}
	if asTotal > 0 {
		v.ASTrafficRecallRoots = rootsFound / asTotal
		v.ASTrafficRecallCombined = combFound / asTotal
	}

	// False discoveries: found prefixes that never contacted the CDN.
	nFound, nFP := 0, 0
	for p := range m.Users.ActivePrefixes {
		nFound++
		if mx.RefCDNByPrefix[p] == 0 {
			nFP++
		}
	}
	if nFound > 0 {
		v.FalseDiscoveryFrac = float64(nFP) / float64(nFound)
	}

	// APNIC coverage: published users in identified ASes.
	if est != nil {
		var estTotal, estFound float64
		for _, asn := range order.Keys(est.ByAS) {
			u := est.ByAS[asn]
			estTotal += u
			if m.Users.Sources[asn]&FromCacheProbe != 0 {
				estFound += u
			}
		}
		if estTotal > 0 {
			v.APNICUserCoverage = estFound / estTotal
		}
	}

	// Rank agreement of activity estimates with true client traffic. The
	// pair order is pinned so Spearman's tie-breaking sees a stable input.
	var xs, ys []float64
	for _, asn := range order.Keys(m.Users.ASActivity) {
		truth := mx.ClientASBytes[asn]
		if truth == 0 {
			continue
		}
		xs = append(xs, m.Users.ASActivity[asn])
		ys = append(ys, truth)
	}
	v.ActivityRankCorr = stats.Spearman(xs, ys)
	return v
}

// MappingValidation scores the user→host mapping component.
type MappingValidation struct {
	// Checked is the number of (domain, clientAS) pairs compared.
	Checked int
	// Agreement is the fraction whose measured serving prefix matches
	// the ground-truth assignment.
	Agreement float64
}

// ValidateMapping compares the measured mapping against the traffic model's
// actual assignments for ECS DNS services.
func ValidateMapping(m *TrafficMap, tm *traffic.Model) MappingValidation {
	var val MappingValidation
	agree := 0
	for key, measured := range m.Services.Mapping {
		svc, ok := tm.Cat.ByDomain(key.Domain)
		if !ok {
			continue
		}
		shares := tm.Assign(svc, key.ClientAS)
		if len(shares) == 0 {
			continue
		}
		val.Checked++
		for _, ss := range shares {
			if ss.Site.Prefix == measured {
				agree++
				break
			}
		}
	}
	if val.Checked > 0 {
		val.Agreement = float64(agree) / float64(val.Checked)
	}
	return val
}

// CoverageSummary is a Table-1-style row: what a component covers now.
type CoverageSummary struct {
	ASesFound     int
	PrefixesFound int
	TotalASes     int
	TotalPrefixes int
}

// Coverage summarizes the users component's reach over networks that host
// users (eyeball/enterprise/academic).
func (m *TrafficMap) Coverage(userASes map[topology.ASN]bool, userPrefixes int) CoverageSummary {
	cs := CoverageSummary{TotalASes: len(userASes), TotalPrefixes: userPrefixes}
	for asn := range m.Users.Sources {
		if userASes[asn] {
			cs.ASesFound++
		}
	}
	cs.PrefixesFound = len(m.Users.ActivePrefixes)
	return cs
}
