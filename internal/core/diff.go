package core

import (
	"sort"

	"itmap/internal/order"
	"itmap/internal/topology"
)

// MapDiff summarizes how the users component changed between two map
// builds — the longitudinal view Table 1's "Daily" refresh target implies.
// Infrastructure churn (servers appearing/moving) is visible by diffing
// TLS scans; this diff covers the activity side.
type MapDiff struct {
	// PrefixesAppeared lists /24s active now but not before.
	PrefixesAppeared []topology.PrefixID
	// PrefixesVanished lists /24s active before but not now.
	PrefixesVanished []topology.PrefixID
	// StablePrefixes counts /24s active in both.
	StablePrefixes int
	// ActivityShifts lists ASes whose estimated activity share moved by
	// more than the threshold, largest shift first.
	ActivityShifts []ActivityShift
}

// ActivityShift is one AS's share change.
type ActivityShift struct {
	ASN    topology.ASN
	Before float64 // share of total activity before
	After  float64
}

// Delta returns the signed share change.
func (s ActivityShift) Delta() float64 { return s.After - s.Before }

// DiffMaps compares two maps' users components. minShift filters activity
// shifts (absolute share change) worth reporting.
func DiffMaps(before, after *TrafficMap, minShift float64) *MapDiff {
	d := &MapDiff{}
	for p := range after.Users.ActivePrefixes {
		if before.Users.ActivePrefixes[p] {
			d.StablePrefixes++
		} else {
			d.PrefixesAppeared = append(d.PrefixesAppeared, p)
		}
	}
	for p := range before.Users.ActivePrefixes {
		if !after.Users.ActivePrefixes[p] {
			d.PrefixesVanished = append(d.PrefixesVanished, p)
		}
	}
	sort.Slice(d.PrefixesAppeared, func(i, j int) bool { return d.PrefixesAppeared[i] < d.PrefixesAppeared[j] })
	sort.Slice(d.PrefixesVanished, func(i, j int) bool { return d.PrefixesVanished[i] < d.PrefixesVanished[j] })

	shares := func(m *TrafficMap) map[topology.ASN]float64 {
		total := order.SumValues(m.Users.ASActivity)
		out := map[topology.ASN]float64{}
		if total == 0 {
			return out
		}
		for asn, v := range m.Users.ASActivity {
			out[asn] = v / total
		}
		return out
	}
	sb, sa := shares(before), shares(after)
	seen := map[topology.ASN]bool{}
	for asn := range sb {
		seen[asn] = true
	}
	for asn := range sa {
		seen[asn] = true
	}
	for asn := range seen {
		shift := ActivityShift{ASN: asn, Before: sb[asn], After: sa[asn]}
		if shift.Delta() >= minShift || shift.Delta() <= -minShift {
			d.ActivityShifts = append(d.ActivityShifts, shift)
		}
	}
	sort.Slice(d.ActivityShifts, func(i, j int) bool {
		di, dj := abs(d.ActivityShifts[i].Delta()), abs(d.ActivityShifts[j].Delta())
		if di != dj {
			return di > dj
		}
		return d.ActivityShifts[i].ASN < d.ActivityShifts[j].ASN
	})
	return d
}

// Jaccard returns the active-prefix set similarity between the two maps.
func (d *MapDiff) Jaccard() float64 {
	union := d.StablePrefixes + len(d.PrefixesAppeared) + len(d.PrefixesVanished)
	if union == 0 {
		return 1
	}
	return float64(d.StablePrefixes) / float64(union)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
