package core

import "sort"

// MeshPairDocument is one AS pair's entry in the user↔user mesh matrix:
// the observed AS-level path between two eyeball networks, the RTT
// distribution the agents measured between them, and how much of the
// probing survived the fault substrate. The pair is canonical (Lo < Hi)
// and the recorded path runs Lo→Hi; holes (hops suppressed by ICMP rate
// limiting) appear as ASN 0.
type MeshPairDocument struct {
	// Lo and Hi are the pair's ASNs in canonical order (Lo < Hi).
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
	// Path is the observed AS path Lo→Hi (0 marks a hole). Nil when every
	// traceroute of the pair found it unreachable.
	Path []uint32 `json:"path,omitempty"`
	// Complete reports whether the recorded path has no holes.
	Complete bool `json:"complete"`
	// Probes counts RTT pings issued for the pair; Lost counts the ones
	// the fault substrate ate.
	Probes int `json:"probes"`
	Lost   int `json:"lost"`
	// MinRTT/MeanRTT/MaxRTT summarize the surviving pings, in
	// milliseconds. All zero when every ping was lost.
	MinRTT  float64 `json:"min_rtt_ms"`
	MeanRTT float64 `json:"mean_rtt_ms"`
	MaxRTT  float64 `json:"max_rtt_ms"`
	// Confidence is the coverage score: the answered fraction of pings,
	// halved when the recorded path never came back complete.
	Confidence float64 `json:"confidence"`
}

// Key folds the canonical pair into one ordered 64-bit key (Lo in the high
// word), the sort and wire order of the mesh sections.
func (p *MeshPairDocument) Key() uint64 { return MeshKey(p.Lo, p.Hi) }

// MeshKey builds the canonical pair key for two ASNs in either order.
func MeshKey(a, b uint32) uint64 {
	if b < a {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// MeshDocument is the serializable user↔user mesh matrix — the artifact a
// vantage-fleet campaign produces, the per-epoch payload mapstore encodes
// as ITMB v2 mesh sections, and the source the /v1/path and /v1/latency
// routes answer from.
type MeshDocument struct {
	// Version is the producer's document version (mirrors MapDocument).
	Version int `json:"version"`
	// Agents and Rounds record the campaign shape that produced the mesh.
	Agents int `json:"agents"`
	Rounds int `json:"rounds"`
	// Profile names the fault preset the campaign ran under.
	Profile string `json:"profile"`
	// Pairs holds the measured AS pairs, sorted by canonical key.
	Pairs []MeshPairDocument `json:"pairs"`
}

// Normalize sorts the pairs into canonical key order. Encoding requires
// it; the campaign builder already emits sorted pairs, so this is a cheap
// idempotent guard for hand-built documents.
func (m *MeshDocument) Normalize() {
	sort.Slice(m.Pairs, func(i, j int) bool { return m.Pairs[i].Key() < m.Pairs[j].Key() })
}

// PairAt returns the entry for the (a, b) pair in either order.
func (m *MeshDocument) PairAt(a, b uint32) (*MeshPairDocument, bool) {
	key := MeshKey(a, b)
	i := sort.Search(len(m.Pairs), func(i int) bool { return m.Pairs[i].Key() >= key })
	if i < len(m.Pairs) && m.Pairs[i].Key() == key {
		return &m.Pairs[i], true
	}
	return nil, false
}

// LossRate is the fraction of the pair's pings the substrate ate.
func (p *MeshPairDocument) LossRate() float64 {
	if p.Probes == 0 {
		return 0
	}
	return float64(p.Lost) / float64(p.Probes)
}
