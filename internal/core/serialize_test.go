package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	_, m := buildFullMap(t, 21)
	var buf bytes.Buffer
	if err := m.Export(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ImportDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.ActivePrefixes) != len(m.Users.ActivePrefixes) {
		t.Errorf("active prefixes %d vs %d", len(doc.ActivePrefixes), len(m.Users.ActivePrefixes))
	}
	if len(doc.Servers) != len(m.Services.Scan.Servers) {
		t.Errorf("servers %d vs %d", len(doc.Servers), len(m.Services.Scan.Servers))
	}
	if len(doc.Mappings) != len(m.Services.Mapping) {
		t.Errorf("mappings %d vs %d", len(doc.Mappings), len(m.Services.Mapping))
	}

	uc, err := ImportUsers(doc)
	if err != nil {
		t.Fatal(err)
	}
	for p := range m.Users.ActivePrefixes {
		if !uc.ActivePrefixes[p] {
			t.Fatalf("prefix %v lost in round trip", p)
		}
	}
	for asn, act := range m.Users.ASActivity {
		if got := uc.ASActivity[asn]; got != act {
			t.Fatalf("activity for AS %d: %f vs %f", asn, got, act)
		}
	}
	for asn, src := range m.Users.Sources {
		if uc.Sources[asn] != src {
			t.Fatalf("source for AS %d lost", asn)
		}
	}
}

func TestExportDeterministic(t *testing.T) {
	_, m := buildFullMap(t, 22)
	var a, b bytes.Buffer
	if err := m.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Export(&b); err != nil {
		t.Fatal(err)
	}
	// ASActivity/Sources are JSON maps (key-sorted by encoding/json), and
	// slices are explicitly sorted, so output is byte-identical.
	if a.String() != b.String() {
		t.Error("export is not deterministic")
	}
}

func TestImportRejectsBadInput(t *testing.T) {
	if _, err := ImportDocument(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ImportDocument(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
	doc := &MapDocument{Version: 1, ActivePrefixes: []string{"zzz"}}
	if _, err := ImportUsers(doc); err == nil {
		t.Error("bad prefix accepted")
	}
	doc = &MapDocument{Version: 1, ActivePrefixes: []string{"10.0.0.0/8"}}
	if _, err := ImportUsers(doc); err == nil {
		t.Error("non-/24 prefix accepted")
	}
}

// TestExportImportExportByteIdentical pins the normalization contract:
// export → import → re-export is byte-identical, including for maps whose
// Coverage/ASConfidence are empty but non-nil (the shape BuildMap produces
// without sweep stats — before Normalize, re-exporting an imported document
// could disagree with the original on which empty sections appear).
func TestExportImportExportByteIdentical(t *testing.T) {
	_, m := buildFullMap(t, 24)
	if m.Users.Coverage == nil || len(m.Users.Coverage) != 0 {
		t.Fatalf("fixture should have empty-but-non-nil coverage, got %v", m.Users.Coverage)
	}
	if m.Users.ASConfidence == nil || len(m.Users.ASConfidence) != 0 {
		t.Fatalf("fixture should have empty-but-non-nil confidence, got %v", m.Users.ASConfidence)
	}
	var first bytes.Buffer
	if err := m.Export(&first); err != nil {
		t.Fatal(err)
	}
	doc, err := ImportDocument(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := doc.Export(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("export→import→export changed bytes:\nfirst %d bytes, second %d bytes", first.Len(), second.Len())
	}
}

// TestNormalizeCanonicalizesDocuments covers the normalization rules
// directly: empty optional maps go nil, required maps come up non-nil, and
// slices sort numerically by prefix (not lexically).
func TestNormalizeCanonicalizesDocuments(t *testing.T) {
	doc := &MapDocument{
		Version:        1,
		ActivePrefixes: []string{"10.0.0.0/24", "2.0.0.0/24"},
		Coverage:       map[string]string{},
		ASConfidence:   map[string]float64{},
		Servers: []ServerDocument{
			{Prefix: "9.9.9.0/24", HostAS: 2},
			{Prefix: "1.1.1.0/24", HostAS: 1},
		},
		Mappings: []MappingDocument{
			{Domain: "b.example", ClientAS: 1, Serving: "1.1.1.0/24"},
			{Domain: "a.example", ClientAS: 9, Serving: "1.1.1.0/24"},
			{Domain: "a.example", ClientAS: 2, Serving: "1.1.1.0/24"},
		},
	}
	doc.Normalize()
	if doc.Coverage != nil || doc.ASConfidence != nil {
		t.Error("empty optional maps should normalize to nil")
	}
	if doc.PrefixHitRates == nil || doc.ASActivity == nil || doc.Sources == nil {
		t.Error("required maps should normalize to non-nil")
	}
	if doc.ActivePrefixes[0] != "2.0.0.0/24" {
		t.Errorf("prefixes not numerically sorted: %v", doc.ActivePrefixes)
	}
	if doc.Servers[0].Prefix != "1.1.1.0/24" {
		t.Errorf("servers not sorted: %+v", doc.Servers)
	}
	if doc.Mappings[0].Domain != "a.example" || doc.Mappings[0].ClientAS != 2 {
		t.Errorf("mappings not sorted: %+v", doc.Mappings)
	}
	var a, b bytes.Buffer
	if err := doc.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := doc.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("document export is not deterministic")
	}
}

func TestParsePrefixRejectsOutOfRangeOctets(t *testing.T) {
	for _, s := range []string{"300.0.0.0/24", "1.256.0.0/24", "-1.2.3.0/24"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) accepted an out-of-range octet", s)
		}
	}
	p, err := ParsePrefix("203.0.113.0/24")
	if err != nil || p.String() != "203.0.113.0/24" {
		t.Errorf("ParsePrefix(203.0.113.0/24) = %v, %v", p, err)
	}
}

func TestParsePrefixRoundTrip(t *testing.T) {
	_, m := buildFullMap(t, 23)
	for p := range m.Users.ActivePrefixes {
		got, err := parsePrefix(p.String())
		if err != nil || got != p {
			t.Fatalf("parsePrefix(%q) = %v, %v", p.String(), got, err)
		}
		break
	}
}
