package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	_, m := buildFullMap(t, 21)
	var buf bytes.Buffer
	if err := m.Export(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ImportDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.ActivePrefixes) != len(m.Users.ActivePrefixes) {
		t.Errorf("active prefixes %d vs %d", len(doc.ActivePrefixes), len(m.Users.ActivePrefixes))
	}
	if len(doc.Servers) != len(m.Services.Scan.Servers) {
		t.Errorf("servers %d vs %d", len(doc.Servers), len(m.Services.Scan.Servers))
	}
	if len(doc.Mappings) != len(m.Services.Mapping) {
		t.Errorf("mappings %d vs %d", len(doc.Mappings), len(m.Services.Mapping))
	}

	uc, err := ImportUsers(doc)
	if err != nil {
		t.Fatal(err)
	}
	for p := range m.Users.ActivePrefixes {
		if !uc.ActivePrefixes[p] {
			t.Fatalf("prefix %v lost in round trip", p)
		}
	}
	for asn, act := range m.Users.ASActivity {
		if got := uc.ASActivity[asn]; got != act {
			t.Fatalf("activity for AS %d: %f vs %f", asn, got, act)
		}
	}
	for asn, src := range m.Users.Sources {
		if uc.Sources[asn] != src {
			t.Fatalf("source for AS %d lost", asn)
		}
	}
}

func TestExportDeterministic(t *testing.T) {
	_, m := buildFullMap(t, 22)
	var a, b bytes.Buffer
	if err := m.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Export(&b); err != nil {
		t.Fatal(err)
	}
	// ASActivity/Sources are JSON maps (key-sorted by encoding/json), and
	// slices are explicitly sorted, so output is byte-identical.
	if a.String() != b.String() {
		t.Error("export is not deterministic")
	}
}

func TestImportRejectsBadInput(t *testing.T) {
	if _, err := ImportDocument(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ImportDocument(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
	doc := &MapDocument{Version: 1, ActivePrefixes: []string{"zzz"}}
	if _, err := ImportUsers(doc); err == nil {
		t.Error("bad prefix accepted")
	}
	doc = &MapDocument{Version: 1, ActivePrefixes: []string{"10.0.0.0/8"}}
	if _, err := ImportUsers(doc); err == nil {
		t.Error("non-/24 prefix accepted")
	}
}

func TestParsePrefixRoundTrip(t *testing.T) {
	_, m := buildFullMap(t, 23)
	for p := range m.Users.ActivePrefixes {
		got, err := parsePrefix(p.String())
		if err != nil || got != p {
			t.Fatalf("parsePrefix(%q) = %v, %v", p.String(), got, err)
		}
		break
	}
}
