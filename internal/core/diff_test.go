package core

import (
	"bytes"
	"testing"

	"itmap/internal/topology"
)

func mapWith(prefixes []topology.PrefixID, activity map[topology.ASN]float64) *TrafficMap {
	m := &TrafficMap{
		Users: UsersComponent{
			ActivePrefixes: map[topology.PrefixID]bool{},
			ASActivity:     activity,
		},
	}
	for _, p := range prefixes {
		m.Users.ActivePrefixes[p] = true
	}
	return m
}

func TestDiffMapsPrefixChurn(t *testing.T) {
	before := mapWith([]topology.PrefixID{1, 2, 3}, map[topology.ASN]float64{10: 1})
	after := mapWith([]topology.PrefixID{2, 3, 4, 5}, map[topology.ASN]float64{10: 1})
	d := DiffMaps(before, after, 0.01)
	if d.StablePrefixes != 2 {
		t.Errorf("stable %d, want 2", d.StablePrefixes)
	}
	if len(d.PrefixesAppeared) != 2 || d.PrefixesAppeared[0] != 4 {
		t.Errorf("appeared %v", d.PrefixesAppeared)
	}
	if len(d.PrefixesVanished) != 1 || d.PrefixesVanished[0] != 1 {
		t.Errorf("vanished %v", d.PrefixesVanished)
	}
	want := 2.0 / 5.0
	if got := d.Jaccard(); got != want {
		t.Errorf("jaccard %f, want %f", got, want)
	}
}

func TestDiffMapsActivityShifts(t *testing.T) {
	before := mapWith(nil, map[topology.ASN]float64{1: 50, 2: 50})
	after := mapWith(nil, map[topology.ASN]float64{1: 90, 2: 10})
	d := DiffMaps(before, after, 0.05)
	if len(d.ActivityShifts) != 2 {
		t.Fatalf("shifts %v", d.ActivityShifts)
	}
	// Largest first; AS1 gained 0.4.
	if d.ActivityShifts[0].ASN != 1 || d.ActivityShifts[0].Delta() < 0.39 {
		t.Errorf("top shift %+v", d.ActivityShifts[0])
	}
	if d.ActivityShifts[1].Delta() > -0.39 {
		t.Errorf("second shift %+v", d.ActivityShifts[1])
	}
	// High threshold filters everything.
	if got := DiffMaps(before, after, 0.9); len(got.ActivityShifts) != 0 {
		t.Errorf("threshold ignored: %v", got.ActivityShifts)
	}
}

func TestDiffMapsIdentical(t *testing.T) {
	m := mapWith([]topology.PrefixID{7}, map[topology.ASN]float64{3: 5})
	d := DiffMaps(m, m, 0.001)
	if d.Jaccard() != 1 || len(d.ActivityShifts) != 0 ||
		len(d.PrefixesAppeared)+len(d.PrefixesVanished) != 0 {
		t.Errorf("self-diff not empty: %+v", d)
	}
	empty := mapWith(nil, nil)
	if DiffMaps(empty, empty, 0.1).Jaccard() != 1 {
		t.Error("empty maps should be identical")
	}
}

func TestDiffMapsDisjoint(t *testing.T) {
	before := mapWith([]topology.PrefixID{1, 2}, map[topology.ASN]float64{10: 4})
	after := mapWith([]topology.PrefixID{3, 4, 5}, map[topology.ASN]float64{20: 4})
	d := DiffMaps(before, after, 0.01)
	if d.StablePrefixes != 0 {
		t.Errorf("stable %d, want 0", d.StablePrefixes)
	}
	if got := d.Jaccard(); got != 0 {
		t.Errorf("jaccard %f, want 0 for disjoint prefix sets", got)
	}
	if len(d.PrefixesAppeared) != 3 || len(d.PrefixesVanished) != 2 {
		t.Errorf("appeared %v vanished %v", d.PrefixesAppeared, d.PrefixesVanished)
	}
	// The whole share moved from AS 10 to AS 20.
	if len(d.ActivityShifts) != 2 {
		t.Fatalf("shifts %+v", d.ActivityShifts)
	}
	for _, s := range d.ActivityShifts {
		if abs(s.Delta()) != 1 {
			t.Errorf("shift %+v, want full share move", s)
		}
	}

	// One side empty: everything appears, nothing is stable.
	d = DiffMaps(mapWith(nil, nil), after, 0.01)
	if d.StablePrefixes != 0 || len(d.PrefixesAppeared) != 3 || d.Jaccard() != 0 {
		t.Errorf("empty-before diff %+v", d)
	}
}

// TestDiffMapsSelfEmptyProperty pins the property E25 and the store's diff
// endpoint rely on: for any map the measurement pipeline produces,
// Diff(a, a) is empty — even at the smallest reporting threshold — and an
// export→import round trip does not perturb the users component enough to
// register as a diff.
func TestDiffMapsSelfEmptyProperty(t *testing.T) {
	for _, seed := range []int64{1, 24, 31} {
		_, m := buildFullMap(t, seed)
		d := DiffMaps(m, m, 1e-12)
		if d.Jaccard() != 1 || len(d.PrefixesAppeared)+len(d.PrefixesVanished)+len(d.ActivityShifts) != 0 {
			t.Errorf("seed %d: self-diff not empty: %d appeared, %d vanished, %d shifts",
				seed, len(d.PrefixesAppeared), len(d.PrefixesVanished), len(d.ActivityShifts))
		}

		var buf bytes.Buffer
		if err := m.Export(&buf); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		doc, err := ImportDocument(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		users, err := ImportUsers(doc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d = DiffMaps(m, &TrafficMap{Users: users}, 1e-12)
		if d.Jaccard() != 1 || len(d.PrefixesAppeared)+len(d.PrefixesVanished)+len(d.ActivityShifts) != 0 {
			t.Errorf("seed %d: diff against re-imported map not empty", seed)
		}
	}
}

func TestDiffMapsEndToEnd(t *testing.T) {
	// Two maps from discovery sweeps on different days of the same
	// world: small churn, no large activity shifts.
	w, m1 := buildFullMap(t, 31)
	_ = w
	m2 := m1 // same session; a second day would come from a new sweep
	d := DiffMaps(m1, m2, 0.02)
	if d.Jaccard() != 1 {
		t.Errorf("same map diff jaccard %f", d.Jaccard())
	}
}
