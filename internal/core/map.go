// Package core assembles measurement outputs into the Internet traffic map
// — the paper's primary contribution — and provides the analyses the map
// enables: outage impact assessment, technique combination, and validation
// against ground truth.
package core

import (
	"sort"
	"strings"

	"itmap/internal/dnssim"
	"itmap/internal/geo"
	"itmap/internal/measure/cacheprobe"
	"itmap/internal/measure/rootlogs"
	"itmap/internal/measure/tlsscan"
	"itmap/internal/order"
	"itmap/internal/topology"
)

// ActivitySource records which techniques saw an AS.
type ActivitySource uint8

// Activity sources (bitmask).
const (
	FromCacheProbe ActivitySource = 1 << iota
	FromRootLogs
)

// Coverage grades the freshness of a prefix's activity signal when the
// sweep behind it ran against a faulty substrate.
type Coverage uint8

// Coverage grades. The zero value means the builder had no sweep stats —
// the pre-fault behaviour — so fault-free maps carry no annotations.
const (
	// CoverageUnknown: no resilient sweep ran; nothing to grade.
	CoverageUnknown Coverage = iota
	// CoverageProbedOK: the sweep got a definitive answer this window.
	CoverageProbedOK
	// CoverageGaveUp: every probe died on the retry budget; the cell's
	// signal is absence-of-evidence, not evidence-of-absence.
	CoverageGaveUp
	// CoverageStale: the PoP's breaker kept the target unprobed; any
	// value shown is carried over, not measured.
	CoverageStale
)

// String names the grade for reports.
func (c Coverage) String() string {
	switch c {
	case CoverageProbedOK:
		return "probed-ok"
	case CoverageGaveUp:
		return "gave-up"
	case CoverageStale:
		return "stale"
	}
	return "unknown"
}

// UsersComponent answers the map's first question: where are users, and
// what are their relative activity levels?
type UsersComponent struct {
	// ActivePrefixes marks prefixes where cache probing found clients.
	ActivePrefixes map[topology.PrefixID]bool
	// PrefixHitRate is the cache-probing hit rate per prefix (where a
	// hit-rate campaign ran).
	PrefixHitRate map[topology.PrefixID]float64
	// ASActivity is the combined relative-activity estimate per AS, in
	// root-log-query-equivalent units.
	ASActivity map[topology.ASN]float64
	// Sources says which techniques contributed per AS.
	Sources map[topology.ASN]ActivitySource
	// Coverage grades each swept prefix's signal (empty without sweep
	// stats — the map degrades gracefully instead of silently).
	Coverage map[topology.PrefixID]Coverage
	// ASConfidence is the fraction of an AS's swept prefixes that were
	// probed-ok (1 everywhere on a clean substrate; only ASes with swept
	// prefixes appear).
	ASConfidence map[topology.ASN]float64
}

// MappingKey indexes the user→host mapping component.
type MappingKey struct {
	Domain   string
	ClientAS topology.ASN
}

// Compare orders keys by domain then client AS, for deterministic
// iteration over the mapping component.
func (k MappingKey) Compare(o MappingKey) int {
	if k.Domain != o.Domain {
		return strings.Compare(k.Domain, o.Domain)
	}
	return int(k.ClientAS) - int(o.ClientAS)
}

// ServicesComponent answers the second question: where are services hosted,
// and what is the mapping from users to hosts?
type ServicesComponent struct {
	// Scan is the TLS/SNI-scan view of serving infrastructure.
	Scan *tlsscan.Scan
	// Mapping is the measured client-AS→serving-prefix mapping per
	// domain, from ECS queries.
	Mapping map[MappingKey]topology.PrefixID
}

// RoutesComponent answers the third question: what routes are commonly used
// between services and users?
type RoutesComponent struct {
	// Observed is the public-view topology (route collectors +
	// traceroute campaigns).
	Observed *topology.Topology
	// Augmented adds predicted/measured extra links (cloud campaigns,
	// peering recommendations).
	Augmented *topology.Topology
}

// PredictPath predicts src→dst on the best available topology.
func (rc *RoutesComponent) PredictPath(src, dst topology.ASN) []topology.ASN {
	top := rc.Augmented
	if top == nil {
		top = rc.Observed
	}
	if top == nil {
		return nil
	}
	rib := bgpCompute(top, dst)
	return rib.PathFrom(src)
}

// TrafficMap is the assembled Internet traffic map.
type TrafficMap struct {
	Top      *topology.Topology
	Users    UsersComponent
	Services ServicesComponent
	Routes   RoutesComponent
}

// BuildInputs carries every measurement output the map combines.
type BuildInputs struct {
	Top *topology.Topology
	// Discovery and HitRates come from cache probing.
	Discovery *cacheprobe.Discovery
	HitRates  *cacheprobe.HitRates
	// Sweep carries the resilient prober's per-target bookkeeping; when
	// set, the builder annotates coverage and per-AS confidence. Nil (the
	// naive prober) leaves the map exactly as before.
	Sweep *cacheprobe.SweepStats
	// RootCrawl comes from root-log crawling.
	RootCrawl *rootlogs.Crawl
	// PublicResolverOwner is excluded from resolver-based attribution.
	PublicResolverOwner topology.ASN
	// Scan is the TLS/SNI scan of the address space.
	Scan *tlsscan.Scan
	// Auth and PR let the builder measure user→host mappings with ECS
	// queries (public DNS interfaces only).
	Auth *dnssim.Authoritative
	PR   *dnssim.PublicResolver
	// MapDomains are the ECS domains to build mappings for.
	MapDomains []string
	// Observed/Augmented route topologies.
	Observed  *topology.Topology
	Augmented *topology.Topology
}

// BuildMap combines the measurement outputs into a traffic map, including
// the §3.1.3 technique combination: root-log activity (a volume proxy at AS
// grain) calibrated against cache hit rates (finer coverage), so ASes seen
// by either technique get a relative-activity estimate in common units.
func BuildMap(in BuildInputs) *TrafficMap {
	m := &TrafficMap{
		Top: in.Top,
		Users: UsersComponent{
			ActivePrefixes: map[topology.PrefixID]bool{},
			PrefixHitRate:  map[topology.PrefixID]float64{},
			ASActivity:     map[topology.ASN]float64{},
			Sources:        map[topology.ASN]ActivitySource{},
			Coverage:       map[topology.PrefixID]Coverage{},
			ASConfidence:   map[topology.ASN]float64{},
		},
		Services: ServicesComponent{
			Scan:    in.Scan,
			Mapping: map[MappingKey]topology.PrefixID{},
		},
		Routes: RoutesComponent{Observed: in.Observed, Augmented: in.Augmented},
	}

	// --- Users: cache probing ------------------------------------------
	asHit := map[topology.ASN]float64{}
	asHitN := map[topology.ASN]float64{}
	if in.Discovery != nil {
		for p := range in.Discovery.Found {
			m.Users.ActivePrefixes[p] = true
			if asn, ok := in.Top.OwnerOf(p); ok {
				m.Users.Sources[asn] |= FromCacheProbe
			}
		}
	}
	if in.HitRates != nil {
		// Sorted prefix order keeps the per-AS hit-rate folds bit-identical
		// across runs; map order would shuffle the float associations.
		for _, p := range order.Keys(in.HitRates.ByPrefix) {
			hr := in.HitRates.ByPrefix[p]
			m.Users.PrefixHitRate[p] = hr
			if asn, ok := in.Top.OwnerOf(p); ok {
				asHit[asn] += hr
				asHitN[asn]++
				if hr > 0 {
					m.Users.Sources[asn] |= FromCacheProbe
				}
			}
		}
	}

	// --- Users: coverage annotations -----------------------------------
	// A sweep that fought a faulty substrate grades every cell it touched;
	// downstream consumers can weight or discard gave-up/stale cells.
	if in.Sweep != nil {
		asOK := map[topology.ASN]float64{}
		asN := map[topology.ASN]float64{}
		for p, o := range in.Sweep.Outcome {
			var c Coverage
			switch o {
			case cacheprobe.TargetProbedOK:
				c = CoverageProbedOK
			case cacheprobe.TargetGaveUp:
				c = CoverageGaveUp
			default:
				c = CoverageStale
			}
			m.Users.Coverage[p] = c
			if asn, ok := in.Top.OwnerOf(p); ok {
				asN[asn]++
				if c == CoverageProbedOK {
					asOK[asn]++
				}
			}
		}
		for asn, n := range asN {
			m.Users.ASConfidence[asn] = asOK[asn] / n
		}
	}

	// --- Users: root logs ----------------------------------------------
	rootAct := map[topology.ASN]float64{}
	if in.RootCrawl != nil {
		for asn, q := range in.RootCrawl.ClientASes(in.PublicResolverOwner) {
			rootAct[asn] = q
			m.Users.Sources[asn] |= FromRootLogs
		}
	}

	// --- Combine: calibrate hit-rate sums into root-log units -----------
	// Using ASes covered by both, estimate queries-per-hit-rate-unit via
	// a median ratio, then fill cache-only ASes with calibrated values.
	var ratios []float64
	for asn, q := range rootAct {
		if h := asHit[asn]; h > 0 {
			ratios = append(ratios, q/h)
		}
	}
	calib := 0.0
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		calib = ratios[len(ratios)/2]
	}
	// Each technique under-counts in different places (root logs miss
	// outsourced-resolver networks and attribute their clients to the
	// provider; cache probing misses public-DNS opt-outs), so the
	// combined estimate takes the larger of the two signals.
	for asn, q := range rootAct {
		m.Users.ASActivity[asn] = q
	}
	if calib > 0 {
		for asn, h := range asHit {
			if v := h * calib; h > 0 && v > m.Users.ASActivity[asn] {
				m.Users.ASActivity[asn] = v
			}
		}
	}

	// --- Services: user→host mapping via ECS ----------------------------
	if in.Auth != nil && in.PR != nil {
		for _, dom := range in.MapDomains {
			for asn := range m.Users.Sources {
				a := in.Top.ASes[asn]
				if a == nil || len(a.Prefixes) == 0 {
					continue
				}
				rep := a.Prefixes[0]
				resolverAt := geo.Coord{}
				if pop := in.PR.HomePoP(rep); pop != nil {
					resolverAt = pop.City.Coord
				}
				ans, err := in.Auth.ResolveECS(dom, rep, resolverAt)
				if err != nil {
					continue
				}
				m.Services.Mapping[MappingKey{Domain: dom, ClientAS: asn}] = ans.Prefix
			}
		}
	}
	return m
}

// ActiveASes returns the ASes with any activity signal, ascending.
func (m *TrafficMap) ActiveASes() []topology.ASN {
	out := make([]topology.ASN, 0, len(m.Users.Sources))
	for asn := range m.Users.Sources {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CoverageSummary counts graded prefixes per coverage class. An empty map
// means the map was built without sweep stats.
func (m *TrafficMap) CoverageSummary() map[Coverage]int {
	out := map[Coverage]int{}
	for _, c := range m.Users.Coverage {
		out[c]++
	}
	return out
}

// ActivityShare returns an AS's share of the map's total estimated
// activity.
func (m *TrafficMap) ActivityShare(asn topology.ASN) float64 {
	total := order.SumValues(m.Users.ASActivity)
	if total == 0 {
		return 0
	}
	return m.Users.ASActivity[asn] / total
}
