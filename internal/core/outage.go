package core

import (
	"sort"

	"itmap/internal/geo"
	"itmap/internal/order"
	"itmap/internal/topology"
)

// OutageReport is the map-driven answer to "what would an outage of this
// network mean?" — the §2.1 use case: which popular services are affected,
// what share of activity, and where traffic could be served instead.
type OutageReport struct {
	AS      topology.ASN
	Name    string
	Country string
	// ActivityShare is the AS's share of the map's estimated activity.
	ActivityShare float64
	// ActivePrefixes counts the AS's prefixes with detected clients.
	ActivePrefixes int
	// AffectedServices lists domains whose measured mapping serves this
	// AS's users (they lose their usual serving site).
	AffectedServices []string
	// HostedServers counts serving prefixes (on-net or off-net caches)
	// inside the AS that disappear with it.
	HostedServers int
	// Fallbacks maps each affected domain to the nearest surviving
	// serving prefix the map predicts users would fall back to.
	Fallbacks map[string]topology.PrefixID
}

// OutageImpact assesses an outage of the given AS using only the map's own
// (measured) components.
func (m *TrafficMap) OutageImpact(asn topology.ASN) OutageReport {
	a := m.Top.ASes[asn]
	rep := OutageReport{
		AS:        asn,
		Fallbacks: map[string]topology.PrefixID{},
	}
	if a == nil {
		return rep
	}
	rep.Name = a.Name
	rep.Country = a.Country
	rep.ActivityShare = m.ActivityShare(asn)
	for _, p := range a.Prefixes {
		if m.Users.ActivePrefixes[p] {
			rep.ActivePrefixes++
		}
	}

	// Servers inside the AS (from the TLS scan).
	lostPrefixes := map[topology.PrefixID]bool{}
	if m.Services.Scan != nil {
		for _, srv := range m.Services.Scan.Servers {
			if srv.HostAS == asn {
				rep.HostedServers++
				lostPrefixes[srv.Prefix] = true
			}
		}
	}

	// Services whose measured mapping serves this AS, with fallbacks.
	// Sorted keys matter beyond the sorted output slice: when a domain has
	// several mapping entries, the first one seen picks the serving prefix
	// handed to fallbackFor.
	seen := map[string]bool{}
	for _, key := range order.KeysFunc(m.Services.Mapping, MappingKey.Compare) {
		if key.ClientAS != asn {
			continue
		}
		if !seen[key.Domain] {
			seen[key.Domain] = true
			rep.AffectedServices = append(rep.AffectedServices, key.Domain)
			if fb, ok := m.fallbackFor(key.Domain, asn, m.Services.Mapping[key], lostPrefixes); ok {
				rep.Fallbacks[key.Domain] = fb
			}
		}
	}
	sort.Strings(rep.AffectedServices)
	return rep
}

// fallbackFor finds the nearest surviving serving prefix for a domain,
// using the map's own footprint knowledge (SNI scan results through the
// measured mapping's owner).
func (m *TrafficMap) fallbackFor(domain string, clientAS topology.ASN, current topology.PrefixID, lost map[topology.PrefixID]bool) (topology.PrefixID, bool) {
	if m.Services.Scan == nil {
		return 0, false
	}
	// Identify the owner from the scan record of the current server.
	var owner topology.ASN
	found := false
	for _, srv := range m.Services.Scan.Servers {
		if srv.Prefix == current {
			owner = srv.OwnerASN
			found = true
			break
		}
	}
	if !found {
		return 0, false
	}
	at := m.Top.PrimaryCity(clientAS).Coord
	best := topology.PrefixID(0)
	bestDist := 0.0
	ok := false
	for _, srv := range m.Services.Scan.ByOwner[owner] {
		if srv.Prefix == current || lost[srv.Prefix] || srv.HostAS == clientAS {
			continue
		}
		d := geo.DistanceKm(at, srv.City.Coord)
		if !ok || d < bestDist || (d == bestDist && srv.Prefix < best) {
			best, bestDist, ok = srv.Prefix, d, true
		}
	}
	return best, ok
}

// CountryImpact aggregates outage impact over every active AS registered in
// a country — the ⟨region, AS⟩ view of §2.1.
type CountryImpact struct {
	Country string
	// ActivityShare is the country's share of estimated activity.
	ActivityShare float64
	// ActiveASes is how many of the country's ASes show activity.
	ActiveASes int
}

// CountryImpactOf sums per-AS activity for a country code.
func (m *TrafficMap) CountryImpactOf(code string) CountryImpact {
	ci := CountryImpact{Country: code}
	var total, mine float64
	for _, asn := range order.Keys(m.Users.ASActivity) {
		v := m.Users.ASActivity[asn]
		total += v
		if a := m.Top.ASes[asn]; a != nil && a.Country == code {
			mine += v
			ci.ActiveASes++
		}
	}
	if total > 0 {
		ci.ActivityShare = mine / total
	}
	return ci
}
