package core

import (
	"itmap/internal/order"
	"itmap/internal/topology"
)

// DebiasByCountry corrects a cache-probing-derived per-AS activity signal
// for uneven public-resolver adoption (§3.1.3): hit counts are proportional
// to a country's adoption share, so dividing them out makes cross-country
// comparisons meaningful. ASes in countries with unknown adoption keep
// their raw values.
func DebiasByCountry(byAS map[topology.ASN]float64, adoption map[string]float64, top *topology.Topology) map[topology.ASN]float64 {
	out := make(map[topology.ASN]float64, len(byAS))
	for asn, v := range byAS {
		a := top.ASes[asn]
		if a == nil {
			out[asn] = v
			continue
		}
		if share, ok := adoption[a.Country]; ok && share > 0.01 {
			out[asn] = v / share
		} else {
			out[asn] = v
		}
	}
	return out
}

// CountryShares normalizes a per-AS signal into per-country shares.
func CountryShares(byAS map[topology.ASN]float64, top *topology.Topology) map[string]float64 {
	out := map[string]float64{}
	total := 0.0
	for _, asn := range order.Keys(byAS) {
		v := byAS[asn]
		a := top.ASes[asn]
		if a == nil || a.Country == "ZZ" {
			continue
		}
		out[a.Country] += v
		total += v
	}
	if total > 0 {
		for c := range out {
			out[c] /= total
		}
	}
	return out
}

// TVDistance is the total-variation distance between two share maps.
func TVDistance(a, b map[string]float64) float64 {
	seen := map[string]bool{}
	total := 0.0
	for _, k := range order.Keys(a) {
		d := a[k] - b[k]
		if d < 0 {
			d = -d
		}
		total += d
		seen[k] = true
	}
	for _, k := range order.Keys(b) {
		if !seen[k] {
			total += b[k]
		}
	}
	return total / 2
}
