package core

import (
	"testing"

	"itmap/internal/apnic"
	"itmap/internal/bgp"
	"itmap/internal/measure/cacheprobe"
	"itmap/internal/measure/rootlogs"
	"itmap/internal/measure/tlsscan"
	"itmap/internal/randx"
	"itmap/internal/simtime"
	"itmap/internal/topology"
	"itmap/internal/world"
)

// buildFullMap runs the complete measurement pipeline on a tiny world.
func buildFullMap(t testing.TB, seed int64) (*world.World, *TrafficMap) {
	t.Helper()
	w := world.Build(world.Tiny(seed))
	pb := &cacheprobe.Prober{PR: w.PR, Domains: w.Cat.ECSDomains()[:8]}
	disc, err := pb.DiscoverPrefixes(w.Top, w.Top.AllPrefixes(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := pb.MeasureHitRates(w.Top, w.Top.AllPrefixes(), w.Cat.ECSDomains()[0], 0, 30*simtime.Minute)
	if err != nil {
		t.Fatal(err)
	}
	crawl := rootlogs.CrawlDay(w.Roots, w.Traffic, 0)
	scan := tlsscan.ScanAll(w.Top, w.Cat, w.Top.AllPrefixes())
	col := &bgp.Collector{Peers: bgp.DefaultCollectorPeers(w.Top, randx.New(seed))}
	observed := col.ObservedTopology(w.Paths)
	m := BuildMap(BuildInputs{
		Top:                 w.Top,
		Discovery:           disc,
		HitRates:            hr,
		RootCrawl:           crawl,
		PublicResolverOwner: w.PR.Owner,
		Scan:                scan,
		Auth:                w.Auth,
		PR:                  w.PR,
		MapDomains:          w.Cat.ECSDomains()[:5],
		Observed:            observed,
	})
	return w, m
}

func TestMapValidationMatchesPaperShape(t *testing.T) {
	w, m := buildFullMap(t, 1)
	mx := w.Traffic.BuildMatrix()
	est := apnic.Estimate(w.Top, w.Users, apnic.DefaultConfig(), randx.New(2))
	v := ValidateUsers(m, mx, est)

	// The §3.1.2 headline shapes (paper: 95%, 60%, 99%, <1%, 98%).
	if v.PrefixTrafficRecall < 0.85 {
		t.Errorf("prefix traffic recall %.2f, want >= 0.85", v.PrefixTrafficRecall)
	}
	if v.ASTrafficRecallRoots < 0.5 {
		t.Errorf("root-log AS recall %.2f, want >= 0.5", v.ASTrafficRecallRoots)
	}
	if v.ASTrafficRecallCombined < v.ASTrafficRecallRoots {
		t.Error("combined recall below root-only recall")
	}
	if v.ASTrafficRecallCombined < 0.9 {
		t.Errorf("combined AS recall %.2f, want >= 0.9", v.ASTrafficRecallCombined)
	}
	if v.FalseDiscoveryFrac > 0.05 {
		t.Errorf("false discovery %.3f, want small", v.FalseDiscoveryFrac)
	}
	if v.APNICUserCoverage < 0.9 {
		t.Errorf("APNIC coverage %.2f, want >= 0.9", v.APNICUserCoverage)
	}
	if v.ActivityRankCorr < 0.5 {
		t.Errorf("activity rank correlation %.2f, want >= 0.5", v.ActivityRankCorr)
	}
}

func TestMapCombinesSources(t *testing.T) {
	_, m := buildFullMap(t, 2)
	both, cacheOnly, rootOnly := 0, 0, 0
	for _, src := range m.Users.Sources {
		switch {
		case src == FromCacheProbe|FromRootLogs:
			both++
		case src == FromCacheProbe:
			cacheOnly++
		case src == FromRootLogs:
			rootOnly++
		}
	}
	if both == 0 {
		t.Error("no AS seen by both techniques")
	}
	if both+cacheOnly+rootOnly == 0 {
		t.Fatal("empty map")
	}
	// Activity estimates exist for ASes with signals.
	if len(m.Users.ASActivity) == 0 {
		t.Fatal("no activity estimates")
	}
	for asn, v := range m.Users.ASActivity {
		if v <= 0 {
			t.Fatalf("non-positive activity for AS %d", asn)
		}
	}
}

func TestMappingAgreement(t *testing.T) {
	w, m := buildFullMap(t, 3)
	if len(m.Services.Mapping) == 0 {
		t.Fatal("no mappings measured")
	}
	val := ValidateMapping(m, w.Traffic)
	if val.Checked == 0 {
		t.Fatal("no mappings validated")
	}
	if val.Agreement < 0.9 {
		t.Errorf("mapping agreement %.2f, want >= 0.9 for ECS services", val.Agreement)
	}
}

func TestOutageImpact(t *testing.T) {
	w, m := buildFullMap(t, 4)
	// Biggest eyeball: outage must show meaningful activity share and
	// affected services.
	var target topology.ASN
	best := 0.0
	for _, asn := range w.Top.ASesOfType(topology.Eyeball) {
		if u := w.Users.ASUsers(asn); u > best {
			best, target = u, asn
		}
	}
	rep := m.OutageImpact(target)
	if rep.ActivityShare <= 0 {
		t.Error("no activity share for the biggest eyeball")
	}
	if rep.ActivePrefixes == 0 {
		t.Error("no active prefixes detected")
	}
	if len(rep.AffectedServices) == 0 {
		t.Error("no affected services")
	}
	// If the AS hosts off-net caches, the report must notice and offer
	// fallbacks elsewhere.
	hostsOffNet := false
	for _, d := range w.Cat.Deployments {
		if _, ok := d.OffNetByHost[target]; ok {
			hostsOffNet = true
		}
	}
	if hostsOffNet && rep.HostedServers == 0 {
		t.Error("report missed hosted off-net servers")
	}
	for dom, fb := range rep.Fallbacks {
		if owner, ok := w.Top.OwnerOf(fb); ok && owner == target {
			t.Errorf("fallback for %s is inside the failed AS", dom)
		}
	}
	// Unknown AS yields an empty but safe report.
	empty := m.OutageImpact(999999)
	if empty.ActivityShare != 0 || len(empty.AffectedServices) != 0 {
		t.Error("unknown AS produced a non-empty report")
	}
}

func TestCountryImpact(t *testing.T) {
	w, m := buildFullMap(t, 5)
	total := 0.0
	seen := map[string]bool{}
	for _, asn := range m.ActiveASes() {
		a := w.Top.ASes[asn]
		if a.Country != "ZZ" {
			seen[a.Country] = true
		}
	}
	for code := range seen {
		ci := m.CountryImpactOf(code)
		if ci.ActivityShare < 0 || ci.ActivityShare > 1 {
			t.Fatalf("country %s share %f", code, ci.ActivityShare)
		}
		total += ci.ActivityShare
	}
	if total < 0.95 || total > 1.001 {
		t.Errorf("country shares sum to %.3f", total)
	}
}

func TestRoutesComponentPrediction(t *testing.T) {
	w, m := buildFullMap(t, 6)
	// Prediction on the observed graph should succeed for some pairs and
	// fail for pairs relying on invisible peerings.
	hg := w.Top.ASesOfType(topology.Hypergiant)[0]
	okCount, failCount := 0, 0
	for _, e := range w.Top.ASesOfType(topology.Eyeball) {
		if p := m.Routes.PredictPath(e, hg); p != nil {
			okCount++
		} else {
			failCount++
		}
	}
	if okCount == 0 {
		t.Error("no path predicted at all")
	}
	_ = failCount // may be zero in tiny worlds; E4 tests the real shape
}

func TestCoverageSummary(t *testing.T) {
	w, m := buildFullMap(t, 7)
	userASes := map[topology.ASN]bool{}
	for _, asn := range w.Top.ASNs() {
		if w.Users.ASUsers(asn) > 0 {
			userASes[asn] = true
		}
	}
	cs := m.Coverage(userASes, len(w.Users.UserPrefixes()))
	if cs.ASesFound == 0 || cs.ASesFound > cs.TotalASes {
		t.Fatalf("bad AS coverage %d/%d", cs.ASesFound, cs.TotalASes)
	}
	if cs.PrefixesFound == 0 || cs.PrefixesFound > cs.TotalPrefixes {
		t.Fatalf("bad prefix coverage %d/%d", cs.PrefixesFound, cs.TotalPrefixes)
	}
}
