package core

import (
	"itmap/internal/bgp"
	"itmap/internal/topology"
)

// bgpCompute is a seam for route computation on (partial) topologies, kept
// separate so tests can count invocations if needed.
func bgpCompute(top *topology.Topology, dst topology.ASN) *bgp.RIB {
	return bgp.ComputeRIB(top, dst)
}
