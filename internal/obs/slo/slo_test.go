package slo

import (
	"encoding/json"
	"strings"
	"testing"

	"itmap/internal/obs"
	"itmap/internal/obs/history"
)

func near(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }

// regAt builds a registry whose counters reflect "total requests served so
// far = total, of which bad failed" — the monotonic shape Record samples.
func regAt(bad, total uint64) *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("itm_req_total", "req.", obs.L("class", "5xx")).Add(bad)
	r.Counter("itm_req_total", "req.", obs.L("class", "2xx")).Add(total - bad)
	return r
}

func availObjective(windows ...int) Objective {
	return Objective{
		Name:    "availability",
		Bad:     []Metric{{Family: "itm_req_total", Match: `class="5xx"`}},
		Total:   []Metric{{Family: "itm_req_total"}},
		Target:  0.99,
		Windows: windows,
	}
}

func TestEvaluateBurnMath(t *testing.T) {
	ring := history.NewRing(8)
	// Sample trail: after epoch 1 (0 bad / 100 total), after epoch 2
	// (1 bad / 200 total). Now: 3 bad / 300 total.
	ring.Record("epoch", "e1", 24, regAt(0, 100))
	ring.Record("epoch", "e2", 48, regAt(1, 200))
	e := &Engine{Ring: ring, Reg: regAt(3, 300), Objectives: []Objective{availObjective(1, 0)}}
	rep := e.Evaluate()
	if rep.Generation != 2 || len(rep.Objectives) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	o := rep.Objectives[0]
	if len(o.Windows) != 2 {
		t.Fatalf("windows = %+v", o.Windows)
	}
	// Window of 1 sample: delta vs e2 = 2 bad / 100 total → error rate
	// 0.02, burn = 0.02 / (1-0.99) = 2.
	w1 := o.Windows[0]
	if w1.Bad != 2 || w1.Total != 100 || !near(w1.BurnRate, 2) {
		t.Fatalf("w1 = %+v, want bad 2 total 100 burn ≈2", w1)
	}
	if w1.SLI != 0.98 {
		t.Fatalf("w1.SLI = %v", w1.SLI)
	}
	// Lifetime window: 3 bad / 300 total → error rate 0.01, burn 1.
	w0 := o.Windows[1]
	if w0.Bad != 3 || w0.Total != 300 || !near(w0.BurnRate, 1) {
		t.Fatalf("w0 = %+v, want bad 3 total 300 burn ≈1", w0)
	}
	// Max burn ≈2 ∈ (BurnWarn, BurnCritical): at_risk, and AllMet clears.
	if !near(o.MaxBurnRate, 2) || o.Status != StatusAtRisk || rep.AllMet {
		t.Fatalf("objective = %+v allMet=%v", o, rep.AllMet)
	}
}

func TestStatusThresholds(t *testing.T) {
	cases := []struct {
		name   string
		bad    uint64
		status string
		allMet bool
	}{
		// burn = (bad/1000) / 0.01; thresholds compare in floats, so the
		// boundary cases sit clearly on one side.
		{"met at sustainable burn", 10, StatusMet, true},      // burn ≈1.0
		{"at risk past warn", 20, StatusAtRisk, false},        // burn ≈2
		{"violated past critical", 70, StatusViolated, false}, // burn ≈7
	}
	for _, tc := range cases {
		e := &Engine{Ring: history.NewRing(4), Reg: regAt(tc.bad, 1000),
			Objectives: []Objective{availObjective(0)}}
		rep := e.Evaluate()
		if got := rep.Objectives[0].Status; got != tc.status {
			t.Errorf("%s: status = %q, want %q", tc.name, got, tc.status)
		}
		if rep.AllMet != tc.allMet {
			t.Errorf("%s: allMet = %v, want %v", tc.name, rep.AllMet, tc.allMet)
		}
	}
}

func TestNoDataStatus(t *testing.T) {
	e := &Engine{Ring: history.NewRing(4), Reg: obs.NewRegistry(),
		Objectives: []Objective{availObjective(1, 0)}}
	rep := e.Evaluate()
	o := rep.Objectives[0]
	if o.Status != StatusNoData || o.MaxBurnRate != 0 {
		t.Fatalf("objective = %+v, want no_data", o)
	}
	// no_data is absence, not failure: it must not clear AllMet.
	if !rep.AllMet {
		t.Fatal("no_data must not clear AllMet")
	}
	for _, w := range o.Windows {
		if w.SLI != 1 || w.BurnRate != 0 {
			t.Fatalf("empty window = %+v, want SLI 1 burn 0", w)
		}
	}
}

// A window wider than the ring clamps to "since process start" instead of
// failing or reading garbage.
func TestWindowClampsToRing(t *testing.T) {
	ring := history.NewRing(8)
	ring.Record("epoch", "e1", 24, regAt(0, 100))
	e := &Engine{Ring: ring, Reg: regAt(1, 200), Objectives: []Objective{availObjective(50)}}
	w := e.Evaluate().Objectives[0].Windows[0]
	if w.Samples != 1 {
		t.Fatalf("samples = %d, want clamp to ring length 1", w.Samples)
	}
	if w.Bad != 1 || w.Total != 200 {
		t.Fatalf("clamped window = %+v, want lifetime totals", w)
	}
}

func TestMetricSelectors(t *testing.T) {
	vals := []history.KV{
		{Key: `itm_req_total{class="2xx",route="a"}`, Value: 5},
		{Key: `itm_req_total{class="5xx",route="a"}`, Value: 3},
		{Key: `itm_req_total{class="5xx",route="b"}`, Value: 2},
		{Key: "itm_other_total", Value: 100},
	}
	if got := sumMetrics([]Metric{{Family: "itm_req_total"}}, vals); got != 10 {
		t.Fatalf("family sum = %v, want 10", got)
	}
	if got := sumMetrics([]Metric{{Family: "itm_req_total", Match: `class="5xx"`}}, vals); got != 5 {
		t.Fatalf("match sum = %v, want 5", got)
	}
	if got := sumMetrics([]Metric{{Family: "itm_req_total", Match: `class="5xx"`, Exclude: `route="b"`}}, vals); got != 3 {
		t.Fatalf("exclude sum = %v, want 3", got)
	}
	// Family match is exact on the name, not a substring of the key.
	if got := sumMetrics([]Metric{{Family: "itm_req"}}, vals); got != 0 {
		t.Fatalf("prefix family must not match, got %v", got)
	}
}

func TestTargetOneEdge(t *testing.T) {
	o := availObjective(0)
	o.Target = 1 // zero error budget: any bad event is an instant violation
	e := &Engine{Ring: history.NewRing(4), Reg: regAt(1, 1000), Objectives: []Objective{o}}
	if got := e.Evaluate().Objectives[0].Status; got != StatusViolated {
		t.Fatalf("status = %q, want violated on zero budget", got)
	}
	e = &Engine{Ring: history.NewRing(4), Reg: regAt(0, 1000), Objectives: []Objective{o}}
	if got := e.Evaluate().Objectives[0].Status; got != StatusMet {
		t.Fatalf("status = %q, want met with zero bad", got)
	}
}

func TestMarshalJSONBodyDeterministic(t *testing.T) {
	build := func() []byte {
		ring := history.NewRing(8)
		ring.Record("epoch", "e1", 24, regAt(1, 100))
		e := &Engine{Ring: ring, Reg: regAt(2, 200), Objectives: []Objective{availObjective(1, 0)}}
		b, err := e.Evaluate().MarshalJSONBody()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := build(), build()
	if string(b1) != string(b2) {
		t.Fatal("report bodies differ across identical runs")
	}
	if b1[len(b1)-1] != '\n' {
		t.Fatal("body must end with a newline")
	}
	var rep Report
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].Name != "availability" {
		t.Fatalf("round-trip = %+v", rep)
	}
}

// The default objective set must only reference families the serving stack
// actually declares — guarded here by name so a rename cannot silently
// disconnect an objective.
func TestServingObjectivesShape(t *testing.T) {
	objs := ServingObjectives()
	if len(objs) != 4 {
		t.Fatalf("objectives = %d, want 4", len(objs))
	}
	wantNames := []string{"availability", "latency_p99_proxy", "cache_hit_rate", "mesh_path_completeness"}
	for i, o := range objs {
		if o.Name != wantNames[i] {
			t.Fatalf("objective %d = %q, want %q", i, o.Name, wantNames[i])
		}
		if o.Target <= 0 || o.Target > 1 {
			t.Fatalf("%s: target %v out of range", o.Name, o.Target)
		}
		if len(o.Windows) == 0 || o.Windows[len(o.Windows)-1] != 0 {
			t.Fatalf("%s: windows %v must end with the lifetime window", o.Name, o.Windows)
		}
		for _, m := range append(append([]Metric{}, o.Bad...), o.Total...) {
			if !strings.HasPrefix(m.Family, "itm_") {
				t.Fatalf("%s selects non-itm family %q", o.Name, m.Family)
			}
		}
	}
}
