// Package slo evaluates declarative service-level objectives over the
// telemetry history ring with multi-window burn-rate math, turning the
// ROADMAP's "serves heavy traffic" claim into a queryable, alertable
// judgment instead of a benchmark footnote.
//
// Every input is a deterministic counter — availability from the HTTP
// status classes, the p99 latency proxy from the admission valve's
// queue/shed counters (virtual congestion, not wall time), cache hit-rate
// from the response-cache ledger, mesh path-completeness from the vantage
// fleet — and windows are measured in history samples (campaign epochs),
// not wall-clock minutes. A same-seed run therefore produces a
// byte-identical /v1/slo body: the SLO surface obeys the same determinism
// contract as the metrics it judges (DESIGN.md §15).
package slo

import (
	"encoding/json"
	"strings"

	"itmap/internal/obs"
	"itmap/internal/obs/history"
)

// Burn-rate thresholds. burn = errorRate / (1 - target): burning budget
// exactly at the sustainable pace is 1.0; Google's SRE-workbook fast-burn
// pager threshold is ~6–14, and 6 is the conservative end.
const (
	BurnWarn     = 1.0
	BurnCritical = 6.0
)

// Objective statuses, from healthy to paging.
const (
	StatusNoData   = "no_data"
	StatusMet      = "met"
	StatusAtRisk   = "at_risk"
	StatusViolated = "violated"
)

// Metric selects a slice of the flattened telemetry: every series of
// Family whose key contains Match (if non-empty) and not Exclude (if
// non-empty), summed.
type Metric struct {
	Family  string
	Match   string
	Exclude string
}

// Objective is one declarative SLO: Bad/Total event selectors, a target
// success ratio, and the sample-count windows to judge burn over.
type Objective struct {
	Name        string
	Description string
	Bad         []Metric // error events
	Total       []Metric // all events
	Target      float64  // e.g. 0.999
	Windows     []int    // in history samples; 0 = since process start
}

// WindowReport is one window's burn-rate evaluation.
type WindowReport struct {
	Samples   int     `json:"samples"`
	Bad       float64 `json:"bad"`
	Total     float64 `json:"total"`
	SLI       float64 `json:"sli"`
	ErrorRate float64 `json:"error_rate"`
	BurnRate  float64 `json:"burn_rate"`
}

// ObjectiveReport is one objective's evaluation across its windows.
type ObjectiveReport struct {
	Name        string         `json:"name"`
	Description string         `json:"description"`
	Target      float64        `json:"target"`
	Status      string         `json:"status"`
	MaxBurnRate float64        `json:"max_burn_rate"`
	Windows     []WindowReport `json:"windows"`
}

// Report is the full /v1/slo body.
type Report struct {
	Generation int               `json:"generation"` // history samples ever recorded
	AllMet     bool              `json:"all_met"`
	Objectives []ObjectiveReport `json:"objectives"`
}

// Engine evaluates objectives against a history ring plus the live
// registry as the "now" point. Zero-value fields fall back to the process
// defaults at evaluation time, so a handler-held engine follows test-time
// obs/history swaps.
type Engine struct {
	Ring       *history.Ring // nil → history.Default()
	Reg        *obs.Registry // nil → obs.Metrics()
	Objectives []Objective
}

// Evaluate runs every objective over (ring samples + now) and returns the
// report. Points are the retained samples oldest-first with the live
// flattened registry appended; a window of w samples compares now against
// the point w back, clamped to "since process start" when the ring is
// shorter.
func (e *Engine) Evaluate() *Report {
	ring := e.Ring
	if ring == nil {
		ring = history.Default()
	}
	reg := e.Reg
	if reg == nil {
		reg = obs.Metrics()
	}
	snap := ring.Snapshot()
	now := history.Flatten(reg)

	rep := &Report{Generation: snap.Gen, AllMet: true, Objectives: []ObjectiveReport{}}
	for _, o := range e.Objectives {
		or := evalObjective(o, snap.Samples, now)
		if or.Status == StatusAtRisk || or.Status == StatusViolated {
			rep.AllMet = false
		}
		rep.Objectives = append(rep.Objectives, or)
	}
	return rep
}

// MarshalJSONBody renders the report as indented JSON with a trailing
// newline, matching the serving layer's body convention.
func (r *Report) MarshalJSONBody() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func evalObjective(o Objective, samples []*history.Sample, now []history.KV) ObjectiveReport {
	or := ObjectiveReport{Name: o.Name, Description: o.Description,
		Target: o.Target, Windows: []WindowReport{}}
	badNow, totalNow := sumMetrics(o.Bad, now), sumMetrics(o.Total, now)
	sawData := false
	for _, w := range o.Windows {
		var badBase, totalBase float64
		used := w
		if w <= 0 || w > len(samples) {
			// Window reaches past the ring: judge since process start
			// (all counters began at zero).
			used = len(samples)
		} else {
			base := samples[len(samples)-w]
			badBase = sumMetrics(o.Bad, base.Values)
			totalBase = sumMetrics(o.Total, base.Values)
		}
		bad := badNow - badBase
		total := totalNow - totalBase
		if bad < 0 {
			bad = 0
		}
		if total < 0 {
			total = 0
		}
		wr := WindowReport{Samples: used, Bad: bad, Total: total, SLI: 1, BurnRate: 0}
		if total > 0 {
			sawData = true
			wr.ErrorRate = bad / total
			wr.SLI = 1 - wr.ErrorRate
			if o.Target < 1 {
				wr.BurnRate = wr.ErrorRate / (1 - o.Target)
			} else if bad > 0 {
				wr.BurnRate = BurnCritical
			}
		}
		if wr.BurnRate > or.MaxBurnRate {
			or.MaxBurnRate = wr.BurnRate
		}
		or.Windows = append(or.Windows, wr)
	}
	switch {
	case !sawData:
		or.Status = StatusNoData
	case or.MaxBurnRate >= BurnCritical:
		or.Status = StatusViolated
	case or.MaxBurnRate > BurnWarn:
		or.Status = StatusAtRisk
	default:
		or.Status = StatusMet
	}
	return or
}

// sumMetrics folds the selected series. Values are sorted by key, so the
// float fold order is deterministic (itm-lint floatfold would flag an
// unsorted fold here).
func sumMetrics(ms []Metric, values []history.KV) float64 {
	var sum float64
	for _, m := range ms {
		for _, kv := range values {
			if history.KeyFamily(kv.Key) != m.Family {
				continue
			}
			if m.Match != "" && !strings.Contains(kv.Key, m.Match) {
				continue
			}
			if m.Exclude != "" && strings.Contains(kv.Key, m.Exclude) {
				continue
			}
			sum += kv.Value
		}
	}
	return sum
}

// ServingObjectives is the serving stack's default objective set. Windows
// are in history samples: 1 ≈ the latest campaign step, 8 ≈ a working set
// of recent epochs, 0 = lifetime.
func ServingObjectives() []Objective {
	windows := []int{1, 8, 0}
	return []Objective{
		{
			Name:        "availability",
			Description: "Non-5xx responses over all HTTP requests.",
			Bad:         []Metric{{Family: "itm_http_requests_total", Match: `class="5xx"`}},
			Total:       []Metric{{Family: "itm_http_requests_total"}},
			Target:      0.999,
			Windows:     windows,
		},
		{
			Name: "latency_p99_proxy",
			Description: "Requests admitted without queueing over admitted+shed — the " +
				"deterministic stand-in for tail latency (queue depth and shed are " +
				"virtual congestion, not wall time).",
			Bad: []Metric{
				{Family: "itm_admission_queued_total"},
				{Family: "itm_admission_shed_total"},
			},
			Total: []Metric{
				{Family: "itm_admission_admitted_total"},
				{Family: "itm_admission_shed_total"},
			},
			Target:  0.99,
			Windows: windows,
		},
		{
			Name: "cache_hit_rate",
			Description: "Response-cache hits plus 304 revalidations over all caching-path " +
				"lookups; cold fills spend the budget.",
			Bad: []Metric{
				{Family: "itm_cache_misses_total"},
				{Family: "itm_cache_bypass_total"},
			},
			Total: []Metric{
				{Family: "itm_cache_hits_total"},
				{Family: "itm_cache_misses_total"},
				{Family: "itm_cache_bypass_total"},
				{Family: "itm_cache_not_modified_total"},
			},
			Target:  0.25,
			Windows: windows,
		},
		{
			Name: "mesh_path_completeness",
			Description: "Vantage mesh pairs whose campaign yielded both a path and RTT " +
				"samples, over all scheduled pairs.",
			Bad:     []Metric{{Family: "itm_mesh_pairs_incomplete_total"}},
			Total:   []Metric{{Family: "itm_mesh_pairs_total"}},
			Target:  0.95,
			Windows: windows,
		},
	}
}
