package obs

import (
	"strings"
	"testing"
)

func TestFormatTraceparentShape(t *testing.T) {
	h := FormatTraceparent(0xdeadbeef01020304, 0x1122334455667788, 0x0102030405060708)
	if len(h) != traceparentLen {
		t.Fatalf("len = %d, want %d", len(h), traceparentLen)
	}
	want := "00-deadbeef010203041122334455667788-0102030405060708-01"
	if h != want {
		t.Fatalf("header = %q, want %q", h, want)
	}
	traceID, parentID, ok := ParseTraceparent(h)
	if !ok {
		t.Fatal("formatted header must parse")
	}
	if traceID != "deadbeef010203041122334455667788" || parentID != "0102030405060708" {
		t.Fatalf("round-trip = (%q, %q)", traceID, parentID)
	}
}

// All-zero trace or parent IDs are invalid per W3C; the formatter nudges
// them instead of emitting an unparseable header.
func TestFormatTraceparentNudgesZeroIDs(t *testing.T) {
	h := FormatTraceparent(0, 0, 0)
	if _, _, ok := ParseTraceparent(h); !ok {
		t.Fatalf("zero-input header %q must still parse", h)
	}
	if strings.Contains(h, "-0000000000000000-") {
		t.Fatalf("parent ID not nudged: %q", h)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-deadbeef010203041122334455667788-0102030405060708-01"
	if _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatal("control header must parse")
	}
	bad := []struct{ name, h string }{
		{"empty", ""},
		{"short", valid[:54]},
		{"long", valid + "0"},
		{"version", "99" + valid[2:]},
		{"dash", strings.Replace(valid, "-", "_", 1)},
		{"uppercase", strings.Replace(valid, "deadbeef", "DEADBEEF", 1)},
		{"nonhex", strings.Replace(valid, "deadbeef", "deadbeeg", 1)},
		{"zero trace", "00-00000000000000000000000000000000-0102030405060708-01"},
		{"zero parent", "00-deadbeef010203041122334455667788-0000000000000000-01"},
	}
	for _, tc := range bad {
		if _, _, ok := ParseTraceparent(tc.h); ok {
			t.Errorf("%s: %q should be rejected", tc.name, tc.h)
		}
	}
}
