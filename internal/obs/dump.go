package obs

import "os"

// WriteMetricsFile writes the default registry's stable exposition to path —
// the -metrics-out flag's format. Volatile families are excluded, so two
// runs of the same seeded campaign produce byte-identical files.
func WriteMetricsFile(path string) error {
	return os.WriteFile(path, []byte(Metrics().StableExposition()), 0o644)
}

// WriteTraceFile writes every recorded trace to path as indented JSON — the
// -trace-out flag's format. Span timestamps are virtual and the tree is
// structurally sorted, so the bytes share the metrics file's determinism.
func WriteTraceFile(path string) error {
	b, err := Tracing().ExportAll()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
