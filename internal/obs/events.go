package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"itmap/internal/simtime"
)

// Level is an event severity.
type Level uint8

// Severities, lowest first.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return "unknown"
}

// Logger is the structured event log: leveled key=value lines replacing
// ad-hoc prints. Events carry no wall-clock timestamp — callers that care
// about *when* pass a simulated time via T — so a seeded run's event stream
// is reproducible byte for byte as long as events are emitted from serial
// points (stage boundaries, process startup/shutdown), which is the
// convention throughout this repo.
type Logger struct {
	mu sync.Mutex
	//itm:guardedby mu
	w io.Writer
	//itm:guardedby mu
	min Level
	//itm:guardedby mu
	reg *Registry
}

// NewLogger returns a logger writing events at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min}
}

// SetOutput redirects the event stream.
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

// SetMin sets the minimum level emitted.
func (l *Logger) SetMin(min Level) {
	l.mu.Lock()
	l.min = min
	l.mu.Unlock()
}

// setRegistry wires the registry the itm_events_total counter lives in.
func (l *Logger) setRegistry(r *Registry) {
	l.mu.Lock()
	l.reg = r
	l.mu.Unlock()
}

// T renders a simulated time for an event value.
func T(t simtime.Time) string { return formatFloat(float64(t)) + "h" }

// Event emits one structured event: `level=info event=<name> k=v ...`.
// kv is alternating keys and values; values are formatted with %v and
// quoted when they contain spaces, quotes, or '='. Every emitted event
// (and every suppressed one) increments itm_events_total{level}.
func (l *Logger) Event(level Level, event string, kv ...any) {
	l.mu.Lock()
	w, min, reg := l.w, l.min, l.reg
	l.mu.Unlock()
	if reg != nil {
		reg.Counter("itm_events_total", "Structured events emitted, by level.",
			L("level", level.String())).Inc()
	}
	if level < min || w == nil {
		return
	}
	var b strings.Builder
	b.WriteString("level=")
	b.WriteString(level.String())
	b.WriteString(" event=")
	b.WriteString(eventValue(event))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		b.WriteString(eventValue(fmt.Sprintf("%v", kv[i+1])))
	}
	if len(kv)%2 == 1 {
		b.WriteString(" !odd_kv=")
		b.WriteString(eventValue(fmt.Sprintf("%v", kv[len(kv)-1])))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.w, b.String())
}

// eventValue quotes a value when the bare form would be ambiguous in a
// key=value stream.
func eventValue(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
