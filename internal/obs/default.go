package obs

import (
	"io"
	"sync/atomic"

	"itmap/internal/simtime"
)

// Set bundles one registry, tracer, and event logger — the observability
// world one process (or one golden-test run) instruments into.
type Set struct {
	Reg *Registry
	Trc *Tracer
	Log *Logger
}

// NewSet returns a fresh observability world. The logger starts discarded
// at Info; commands point it at stderr.
func NewSet() *Set {
	s := &Set{Reg: NewRegistry(), Trc: NewTracer(), Log: NewLogger(io.Discard, Info)}
	s.Log.setRegistry(s.Reg)
	return s
}

var def atomic.Pointer[Set]

func init() { def.Store(NewSet()) }

// Default returns the process-wide observability set instrumented code
// reports into.
func Default() *Set { return def.Load() }

// Swap replaces the default set and returns the previous one. Byte-identity
// tests swap in a fresh set per run so two runs of the same seeded campaign
// start from identical (empty) state.
func Swap(s *Set) *Set { return def.Swap(s) }

// Metrics returns the default registry.
func Metrics() *Registry { return Default().Reg }

// Tracing returns the default tracer.
func Tracing() *Tracer { return Default().Trc }

// Events returns the default event logger.
func Events() *Logger { return Default().Log }

// C is shorthand for a counter in the default registry.
func C(name, help string, labels ...Label) *Counter {
	return Default().Reg.Counter(name, help, labels...)
}

// G is shorthand for a gauge in the default registry.
func G(name, help string, labels ...Label) *Gauge {
	return Default().Reg.Gauge(name, help, labels...)
}

// H is shorthand for a histogram in the default registry.
func H(name, help string, bounds []float64, labels ...Label) *Histogram {
	return Default().Reg.Histogram(name, help, bounds, labels...)
}

// Event emits a structured event through the default logger.
func Event(level Level, event string, kv ...any) {
	Default().Log.Event(level, event, kv...)
}

// ActivateTrace switches the default tracer's active trace — call at
// campaign (stage) boundaries.
func ActivateTrace(name string) *Trace { return Default().Trc.Activate(name) }

// StartSpan opens a root span in the default tracer's active trace.
func StartSpan(name string, at simtime.Time) *Span {
	return Default().Trc.Active().Start(name, at)
}
