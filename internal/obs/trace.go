package obs

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"

	"itmap/internal/simtime"
)

// Tracer records spans grouped into named traces — one trace per campaign
// (epoch day), so a multi-epoch serve run exposes each day's span tree
// under /v1/trace/{campaign}. Spans carry virtual-clock timestamps; wall
// time never enters a trace, so exports are byte-identical across runs of
// the same seeded campaign.
type Tracer struct {
	mu sync.Mutex
	//itm:guardedby mu
	traces map[string]*Trace
	//itm:guardedby mu
	active *Trace
	cap    int
}

// DefaultTraceCap bounds how many spans one trace retains. Spans past the
// cap are counted as dropped instead of evicting earlier spans: eviction
// order under concurrent arrival would be scheduler-dependent, and a
// deterministic tail beats a nondeterministic window.
const DefaultTraceCap = 16384

// NewTracer returns a tracer whose traces hold up to DefaultTraceCap spans.
func NewTracer() *Tracer {
	return &Tracer{traces: map[string]*Trace{}, cap: DefaultTraceCap}
}

// Trace returns (creating if needed) the named trace.
func (t *Tracer) Trace(name string) *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.traces[name]
	if tr == nil {
		tr = &Trace{name: name, cap: t.cap}
		t.traces[name] = tr
	}
	return tr
}

// Activate makes the named trace the destination for spans started via the
// package-level StartSpan, and returns it. Campaign drivers call this at
// stage boundaries (serial points), so span attribution is deterministic.
func (t *Tracer) Activate(name string) *Trace {
	tr := t.Trace(name)
	t.mu.Lock()
	t.active = tr
	t.mu.Unlock()
	return tr
}

// Active returns the currently active trace (the trace named "default"
// until Activate is called).
func (t *Tracer) Active() *Trace {
	t.mu.Lock()
	tr := t.active
	t.mu.Unlock()
	if tr == nil {
		return t.Trace("default")
	}
	return tr
}

// Lookup returns the named trace without creating it.
func (t *Tracer) Lookup(name string) (*Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[name]
	return tr, ok
}

// Names returns the existing trace names, sorted.
func (t *Tracer) Names() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.traces))
	for n := range t.traces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Trace is one campaign's span collection.
type Trace struct {
	name string
	cap  int

	mu sync.Mutex
	//itm:guardedby mu
	spans []*Span
	//itm:guardedby mu
	dropped int
}

// Name returns the trace's name.
func (tr *Trace) Name() string { return tr.name }

// Start opens a root span at simulated time at.
func (tr *Trace) Start(name string, at simtime.Time) *Span {
	return tr.add(&Span{tr: tr, name: name, start: at, end: at})
}

func (tr *Trace) add(sp *Span) *Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) >= tr.cap {
		tr.dropped++
		sp.dropped = true
		// Tail drop: arrivals past the cap are rejected in order, never
		// evicting retained spans, so under serial recording the surviving
		// prefix is deterministic. The counter lands in the default
		// registry — sets are swapped as (registry, tracer) pairs.
		C("itm_trace_dropped_total", "Spans dropped past a trace's span cap, by trace name.",
			L("trace", tr.name)).Inc()
		return sp
	}
	tr.spans = append(tr.spans, sp)
	return sp
}

// Attr is one span attribute. Attributes keep the order they were set in
// (program order, hence deterministic).
type Attr struct {
	Key   string
	Value string
}

// Span is one unit of pipeline work: a name, virtual start/end times, an
// order hint for deterministic sibling sorting, and attributes. A span is
// mutated only by the goroutine that started it, then frozen by End.
type Span struct {
	tr      *Trace
	parent  *Span
	name    string
	start   simtime.Time
	end     simtime.Time
	order   int
	attrs   []Attr
	dropped bool
}

// Child opens a span nested under sp at simulated time at.
func (sp *Span) Child(name string, at simtime.Time) *Span {
	return sp.tr.add(&Span{tr: sp.tr, parent: sp, name: name, start: at, end: at})
}

// SetOrder sets the deterministic sibling sort hint (e.g. the shard index);
// siblings sort by (start, order, name, attrs).
func (sp *Span) SetOrder(n int) *Span {
	sp.order = n
	return sp
}

// SetAttr attaches a string attribute.
func (sp *Span) SetAttr(key, value string) *Span {
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
	return sp
}

// SetAttrInt attaches an integer attribute.
func (sp *Span) SetAttrInt(key string, v int64) *Span {
	return sp.SetAttr(key, itoa(v))
}

// SetAttrFloat attaches a float attribute (shortest round-trip form).
func (sp *Span) SetAttrFloat(key string, v float64) *Span {
	return sp.SetAttr(key, formatFloat(v))
}

// End closes the span at simulated time at.
func (sp *Span) End(at simtime.Time) { sp.end = at }

func itoa(v int64) string {
	var b [20]byte
	n := len(b)
	neg := v < 0
	if neg {
		v = -v
	}
	for {
		n--
		b[n] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		n--
		b[n] = '-'
	}
	return string(b[n:])
}

// SpanJSON is one exported span node.
type SpanJSON struct {
	ID       int               `json:"id"`
	Name     string            `json:"name"`
	StartH   float64           `json:"start_h"`
	EndH     float64           `json:"end_h"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanJSON       `json:"children,omitempty"`
}

// TraceJSON is one exported trace: the span forest plus bookkeeping.
type TraceJSON struct {
	Name    string      `json:"name"`
	Spans   int         `json:"spans"`
	Dropped int         `json:"dropped"`
	Roots   []*SpanJSON `json:"roots"`
}

// Export snapshots the trace as a sorted tree. Sibling spans sort by
// (start, order, name, attribute signature) and IDs are assigned in
// depth-first order over the sorted tree, so the export is independent of
// the goroutine interleaving that recorded the spans.
func (tr *Trace) Export() *TraceJSON {
	tr.mu.Lock()
	spans := make([]*Span, len(tr.spans))
	copy(spans, tr.spans)
	dropped := tr.dropped
	tr.mu.Unlock()

	children := make(map[*Span][]*Span, len(spans))
	var roots []*Span
	for _, sp := range spans {
		if sp.parent == nil || sp.parent.dropped {
			roots = append(roots, sp)
		} else {
			children[sp.parent] = append(children[sp.parent], sp)
		}
	}
	out := &TraceJSON{Name: tr.name, Spans: len(spans), Dropped: dropped, Roots: []*SpanJSON{}}
	nextID := 0
	var build func(list []*Span) []*SpanJSON
	build = func(list []*Span) []*SpanJSON {
		sortSpans(list)
		nodes := make([]*SpanJSON, 0, len(list))
		for _, sp := range list {
			node := &SpanJSON{ID: nextID, Name: sp.name,
				StartH: float64(sp.start), EndH: float64(sp.end)}
			nextID++
			if len(sp.attrs) > 0 {
				node.Attrs = make(map[string]string, len(sp.attrs))
				for _, a := range sp.attrs {
					node.Attrs[a.Key] = a.Value
				}
			}
			if kids := children[sp]; len(kids) > 0 {
				node.Children = build(kids)
			}
			nodes = append(nodes, node)
		}
		return nodes
	}
	out.Roots = build(roots)
	return out
}

// ExportJSON returns the indented JSON encoding of Export.
func (tr *Trace) ExportJSON() ([]byte, error) {
	return json.MarshalIndent(tr.Export(), "", "  ")
}

func sortSpans(list []*Span) {
	sort.SliceStable(list, func(i, j int) bool {
		a, b := list[i], list[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.order != b.order {
			return a.order < b.order
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return attrSig(a.attrs) < attrSig(b.attrs)
	})
}

func attrSig(attrs []Attr) string {
	var b strings.Builder
	for _, a := range attrs {
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
		b.WriteByte('\xff')
	}
	return b.String()
}

// ExportAll renders every trace in the tracer, sorted by name — the
// -trace-out file format.
func (t *Tracer) ExportAll() ([]byte, error) {
	names := t.Names()
	out := make([]*TraceJSON, 0, len(names))
	for _, n := range names {
		tr, _ := t.Lookup(n)
		out = append(out, tr.Export())
	}
	return json.MarshalIndent(struct {
		Traces []*TraceJSON `json:"traces"`
	}{Traces: out}, "", "  ")
}
