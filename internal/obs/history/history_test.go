package history

import (
	"encoding/json"
	"strings"
	"testing"

	"itmap/internal/obs"
	"itmap/internal/simtime"
)

func testReg(n uint64) *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("itm_x_total", "x.", obs.L("k", "a")).Add(n)
	r.Counter("itm_y_total", "y.").Add(2 * n)
	r.VolatileCounter("itm_wall_total", "never sampled.").Add(99)
	return r
}

func TestRecordAndSnapshot(t *testing.T) {
	ring := NewRing(4)
	reg := testReg(3)
	s := ring.Record("epoch", "epoch-1", 24, reg)
	if s.Index != 0 || s.Source != "epoch" || s.AtH != 24 {
		t.Fatalf("sample = %+v", s)
	}
	want := []KV{{`itm_x_total{k="a"}`, 3}, {"itm_y_total", 6}}
	if len(s.Values) != len(want) {
		t.Fatalf("values = %+v, want %+v", s.Values, want)
	}
	for i := range want {
		if s.Values[i] != want[i] {
			t.Fatalf("values[%d] = %+v, want %+v", i, s.Values[i], want[i])
		}
	}
	snap := ring.Snapshot()
	if snap.Gen != 1 || snap.Dropped != 0 || len(snap.Samples) != 1 {
		t.Fatalf("snapshot = gen %d dropped %d len %d", snap.Gen, snap.Dropped, len(snap.Samples))
	}
	// Bookkeeping counters land after the capture: sample 0 must not see
	// its own itm_history_samples_total increment.
	for _, kv := range s.Values {
		if strings.HasPrefix(kv.Key, "itm_history_") {
			t.Fatalf("sample 0 saw its own bookkeeping: %+v", kv)
		}
	}
	if got := reg.Counter("itm_history_samples_total",
		"Telemetry history samples recorded, by capture source.",
		obs.L("source", "epoch")).Value(); got != 1 {
		t.Fatalf("samples_total = %d, want 1", got)
	}
}

func TestRingEvictsOldestAndCounts(t *testing.T) {
	ring := NewRing(2)
	reg := testReg(1)
	for i := 0; i < 5; i++ {
		ring.Record("epoch", "e", 0, reg)
	}
	snap := ring.Snapshot()
	if snap.Gen != 5 || snap.Dropped != 3 || len(snap.Samples) != 2 {
		t.Fatalf("snapshot = gen %d dropped %d len %d, want 5/3/2", snap.Gen, snap.Dropped, len(snap.Samples))
	}
	// Oldest-first retention: indices are the newest two, in order.
	if snap.Samples[0].Index != 3 || snap.Samples[1].Index != 4 {
		t.Fatalf("retained indices = %d, %d, want 3, 4", snap.Samples[0].Index, snap.Samples[1].Index)
	}
	if got := reg.Counter("itm_history_evicted_total",
		"Telemetry history samples aged out of the ring.").Value(); got != 3 {
		t.Fatalf("evicted_total = %d, want 3", got)
	}
	if ring.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ring.Len())
	}
}

// A snapshot taken before later Records must not change under them: readers
// hold immutable views.
func TestSnapshotImmutableUnderLaterRecords(t *testing.T) {
	ring := NewRing(2)
	reg := testReg(1)
	ring.Record("epoch", "first", 1, reg)
	snap := ring.Snapshot()
	before, err := snap.MarshalBody()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ring.Record("epoch", "later", 2, reg)
	}
	after, err := snap.MarshalBody()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("held snapshot changed under later Records")
	}
}

func TestETagChangesWithContent(t *testing.T) {
	ring := NewRing(8)
	reg := testReg(1)
	empty := ring.Snapshot().ETag
	ring.Record("epoch", "a", 1, reg)
	one := ring.Snapshot().ETag
	ring.Record("epoch", "b", 2, reg)
	two := ring.Snapshot().ETag
	if empty == one || one == two {
		t.Fatalf("ETags must churn with content: %q %q %q", empty, one, two)
	}
	for _, tag := range []string{empty, one, two} {
		if !strings.HasPrefix(tag, `"itm-h`) || !strings.HasSuffix(tag, `"`) {
			t.Fatalf("malformed ETag %q", tag)
		}
	}
}

// Same sample sequence → same ETag and same body bytes: the determinism
// contract the serving layer's cache leans on.
func TestRingDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]byte, string) {
		ring := NewRing(3)
		for i := 1; i <= 5; i++ {
			ring.Record("epoch", "e-"+strings.Repeat("x", i), simtime.Time(i), testReg(uint64(i)))
		}
		snap := ring.Snapshot()
		b, err := snap.MarshalBody()
		if err != nil {
			t.Fatal(err)
		}
		return b, snap.ETag
	}
	b1, e1 := run()
	b2, e2 := run()
	if e1 != e2 {
		t.Fatalf("ETags differ: %q vs %q", e1, e2)
	}
	if string(b1) != string(b2) {
		t.Fatal("bodies differ across identical runs")
	}
}

func TestMarshalBodyShape(t *testing.T) {
	ring := NewRing(4)
	ring.Record("mesh", "mesh-consumer", 48, testReg(2))
	snap := ring.Snapshot()
	b, err := snap.MarshalBody()
	if err != nil {
		t.Fatal(err)
	}
	if b[len(b)-1] != '\n' {
		t.Fatal("body must end with a newline")
	}
	var body struct {
		ETag       string    `json:"etag"`
		Generation int       `json:"generation"`
		Dropped    int       `json:"dropped"`
		Samples    []*Sample `json:"samples"`
	}
	if err := json.Unmarshal(b, &body); err != nil {
		t.Fatal(err)
	}
	if body.ETag != snap.ETag || body.Generation != 1 || len(body.Samples) != 1 {
		t.Fatalf("body = %+v", body)
	}
	if body.Samples[0].Label != "mesh-consumer" {
		t.Fatalf("label = %q", body.Samples[0].Label)
	}
}

func TestMarshalFamilyBodyFiltersAnd404s(t *testing.T) {
	ring := NewRing(4)
	ring.Record("epoch", "e1", 24, testReg(1))
	ring.Record("epoch", "e2", 48, testReg(5))
	snap := ring.Snapshot()

	b, ok, err := snap.MarshalFamilyBody("itm_x_total")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	var body struct {
		Family  string    `json:"family"`
		Samples []*Sample `json:"samples"`
	}
	if err := json.Unmarshal(b, &body); err != nil {
		t.Fatal(err)
	}
	if body.Family != "itm_x_total" || len(body.Samples) != 2 {
		t.Fatalf("body = %+v", body)
	}
	for _, s := range body.Samples {
		if len(s.Values) != 1 || KeyFamily(s.Values[0].Key) != "itm_x_total" {
			t.Fatalf("unfiltered sample: %+v", s)
		}
	}

	if _, ok, err := snap.MarshalFamilyBody("itm_absent_total"); err != nil || ok {
		t.Fatalf("absent family: ok=%v err=%v, want miss", ok, err)
	}

	if snap.FamilyETag("itm_x_total") == snap.FamilyETag("itm_y_total") {
		t.Fatal("distinct families must not share an ETag")
	}
}

func TestSeriesKeyAndKeyFamily(t *testing.T) {
	got := SeriesKey("itm_x_total", []obs.Label{{Key: "a", Value: "1"}, {Key: "b", Value: "2"}})
	if got != `itm_x_total{a="1",b="2"}` {
		t.Fatalf("SeriesKey = %q", got)
	}
	if KeyFamily(got) != "itm_x_total" {
		t.Fatalf("KeyFamily = %q", KeyFamily(got))
	}
	if KeyFamily("bare") != "bare" {
		t.Fatalf("KeyFamily(bare) = %q", KeyFamily("bare"))
	}
}

func TestDefaultSwap(t *testing.T) {
	fresh := NewRing(4)
	prev := Swap(fresh)
	defer Swap(prev)
	if Default() != fresh {
		t.Fatal("Default must follow Swap")
	}
	obsPrev := obs.Swap(obs.NewSet())
	defer obs.Swap(obsPrev)
	obs.C("itm_z_total", "z.").Add(7)
	s := Observe("sweep", "sweep-discover", 24)
	if s.Source != "sweep" || fresh.Len() != 1 {
		t.Fatalf("Observe did not land in the default ring: %+v len=%d", s, fresh.Len())
	}
}
