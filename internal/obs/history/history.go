// Package history is the deterministic telemetry history store: an
// epoch-sampled ring that snapshots every stable metric family at serial
// campaign points — each mapstore append, each vantage mesh campaign, each
// cacheprobe sweep — so the serving stack can answer "what did cache
// hit-rate look like over the last 50 epochs?" instead of only "what is it
// now".
//
// Determinism is inherited, not re-derived: samples are taken only at
// serial points (under the store's append lock, or on the post-merge path
// of a campaign), the flattened values come from the registry's stable
// families via the deterministically-ordered Visit, and the ring's
// tail-drop eviction is a pure function of the sample sequence. With a
// fixed seed, the full history body — samples, generation, ETag — is
// byte-identical across runs and worker counts. No wall clocks: sample
// timestamps are the campaign's simulated times (DESIGN.md §15).
package history

import (
	"encoding/json"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"itmap/internal/obs"
	"itmap/internal/simtime"
)

// DefaultCap bounds how many samples the default ring retains. Past it the
// oldest samples age out (counted, never silently), keeping the serving
// surface and its ETag churn bounded for day-scale campaigns.
const DefaultCap = 512

// KV is one flattened metric series: the Prometheus-style series key
// (name{k="v",...}) and its reduced value (counter count, gauge value,
// histogram observation count).
type KV struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// Sample is one point-in-time capture of the registry's stable families.
type Sample struct {
	Index  int     `json:"index"`  // global sample number, never reused
	Source string  `json:"source"` // capture point: epoch | mesh | sweep
	Label  string  `json:"label"`  // e.g. "epoch-3", "sweep-discover"
	AtH    float64 `json:"at_h"`   // simulated capture time, hours
	Values []KV    `json:"values"`
}

// Snapshot is an immutable view of the ring: the retained samples (oldest
// first) plus the bookkeeping the serving layer needs for caching.
type Snapshot struct {
	Gen     int       // samples ever recorded
	Dropped int       // samples aged out of the ring
	ETag    string    // strong validator over the retained content
	Samples []*Sample // oldest first; samples are immutable once recorded
}

// Ring is the bounded sample store. Records serialize on the mutex;
// readers take lock-free snapshots.
type Ring struct {
	capacity int

	mu sync.Mutex
	//itm:guardedby mu
	samples []*Sample
	//itm:guardedby mu
	gen int
	//itm:guardedby mu
	dropped int

	snap atomic.Pointer[Snapshot]
}

// NewRing returns an empty ring retaining up to capacity samples
// (DefaultCap when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	r := &Ring{capacity: capacity}
	r.snap.Store(&Snapshot{ETag: etagFor(0, nil)})
	return r
}

// Record flattens reg's stable families into a new sample and appends it,
// aging out the oldest sample when the ring is full. Call only from serial
// points — the capture is atomic with respect to other Records, but a
// sample taken mid-parallel-stage would see a scheduling-dependent partial
// state and break byte-identity.
func (r *Ring) Record(source, label string, at simtime.Time, reg *obs.Registry) *Sample {
	vals := Flatten(reg)
	r.mu.Lock()
	s := &Sample{Index: r.gen, Source: source, Label: label, AtH: float64(at), Values: vals}
	r.gen++
	evicted := false
	if len(r.samples) >= r.capacity {
		n := copy(r.samples, r.samples[1:])
		r.samples = r.samples[:n]
		r.dropped++
		evicted = true
	}
	r.samples = append(r.samples, s)
	snap := &Snapshot{Gen: r.gen, Dropped: r.dropped,
		Samples: append([]*Sample(nil), r.samples...)}
	snap.ETag = etagFor(snap.Gen, snap.Samples)
	r.snap.Store(snap)
	r.mu.Unlock()
	// Counted after the capture: sample N carries the totals as of N-1, so
	// the sample never depends on its own bookkeeping.
	reg.Counter("itm_history_samples_total",
		"Telemetry history samples recorded, by capture source.",
		obs.L("source", source)).Inc()
	if evicted {
		reg.Counter("itm_history_evicted_total",
			"Telemetry history samples aged out of the ring.").Inc()
	}
	return s
}

// Snapshot returns the current immutable view.
func (r *Ring) Snapshot() *Snapshot { return r.snap.Load() }

// Len reports the retained sample count.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Flatten reduces reg's stable families to sorted (series key, value)
// pairs — the sample payload, and the SLO engine's "now" point.
func Flatten(reg *obs.Registry) []KV {
	var out []KV
	reg.Visit(func(name string, labels []obs.Label, value float64) {
		out = append(out, KV{Key: SeriesKey(name, labels), Value: value})
	})
	return out
}

// SeriesKey renders the canonical flattened key: name{k="v",...}, label
// keys in the registry's sorted order, or the bare name when unlabeled.
func SeriesKey(name string, labels []obs.Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// KeyFamily extracts the family name from a flattened series key.
func KeyFamily(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// etagFor derives the ring's strong validator: generation plus an FNV-1a
// fingerprint of the retained content. Content is deterministic, so the
// tag is too.
func etagFor(gen int, samples []*Sample) string {
	h := fnv.New64a()
	var scratch [8]byte
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			scratch[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(scratch[:])
	}
	for _, s := range samples {
		u64(uint64(s.Index))
		u64(math.Float64bits(s.AtH))
		_, _ = h.Write([]byte(s.Source))
		_, _ = h.Write([]byte{0xff})
		_, _ = h.Write([]byte(s.Label))
		_, _ = h.Write([]byte{0xff})
		for _, kv := range s.Values {
			_, _ = h.Write([]byte(kv.Key))
			u64(math.Float64bits(kv.Value))
		}
	}
	return `"itm-h` + strconv.Itoa(gen) + `-` + strconv.FormatUint(h.Sum64(), 16) + `"`
}

// listingBody is the GET /v1/obs/history response shape.
type listingBody struct {
	ETag       string    `json:"etag"`
	Generation int       `json:"generation"`
	Dropped    int       `json:"dropped"`
	Samples    []*Sample `json:"samples"`
}

// familyBody is the GET /v1/obs/history/{family} response shape.
type familyBody struct {
	ETag       string    `json:"etag"`
	Generation int       `json:"generation"`
	Family     string    `json:"family"`
	Samples    []*Sample `json:"samples"`
}

// MarshalBody renders the full history listing as indented JSON with a
// trailing newline (the serving layer's cacheable-body convention).
func (s *Snapshot) MarshalBody() ([]byte, error) {
	samples := s.Samples
	if samples == nil {
		samples = []*Sample{}
	}
	b, err := json.MarshalIndent(listingBody{
		ETag: s.ETag, Generation: s.Gen, Dropped: s.Dropped, Samples: samples}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// MarshalFamilyBody renders the per-family view: every sample, with values
// filtered to the requested family's series. ok is false when the family
// appears in no retained sample (a 404 to the serving layer).
func (s *Snapshot) MarshalFamilyBody(family string) ([]byte, bool, error) {
	found := false
	filtered := make([]*Sample, 0, len(s.Samples))
	for _, sm := range s.Samples {
		vals := []KV{}
		for _, kv := range sm.Values {
			if KeyFamily(kv.Key) == family {
				vals = append(vals, kv)
			}
		}
		if len(vals) > 0 {
			found = true
		}
		filtered = append(filtered, &Sample{Index: sm.Index, Source: sm.Source,
			Label: sm.Label, AtH: sm.AtH, Values: vals})
	}
	if !found {
		return nil, false, nil
	}
	b, err := json.MarshalIndent(familyBody{
		ETag: s.FamilyETag(family), Generation: s.Gen, Family: family, Samples: filtered}, "", "  ")
	if err != nil {
		return nil, false, err
	}
	return append(b, '\n'), true, nil
}

// FamilyETag derives the per-family route's validator from the ring tag
// plus the family name — distinct families never share a validator.
func (s *Snapshot) FamilyETag(family string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s.ETag))
	_, _ = h.Write([]byte{0xff})
	_, _ = h.Write([]byte(family))
	return `"itm-hf` + strconv.Itoa(s.Gen) + `-` + strconv.FormatUint(h.Sum64(), 16) + `"`
}

// DeclareMetrics registers the history bookkeeping families up front.
func DeclareMetrics(r *obs.Registry) {
	r.Declare(obs.KindCounter, "itm_history_samples_total",
		"Telemetry history samples recorded, by capture source.", "source")
	r.Counter("itm_history_evicted_total",
		"Telemetry history samples aged out of the ring.").Add(0)
}

var def atomic.Pointer[Ring]

func init() { def.Store(NewRing(DefaultCap)) }

// Default returns the process-wide history ring campaign code records into.
func Default() *Ring { return def.Load() }

// Swap replaces the default ring and returns the previous one —
// byte-identity tests swap in a fresh ring per run, mirroring obs.Swap.
func Swap(r *Ring) *Ring { return def.Swap(r) }

// Observe records a sample of the default registry into the default ring.
func Observe(source, label string, at simtime.Time) *Sample {
	return Default().Record(source, label, at, obs.Metrics())
}
