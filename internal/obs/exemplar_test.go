package obs

import (
	"strconv"
	"strings"
	"testing"
)

// Exemplar selection is a commutative min-fold on (traceID, value): any
// arrival order of the same observation set yields the same winner, so
// concurrent workers cannot perturb the exposition.
func TestExemplarMinFoldOrderIndependent(t *testing.T) {
	obsv := []struct {
		v  float64
		id string
	}{
		{5, "cccc"}, {7, "aaaa"}, {3, "bbbb"}, {7, "aaaa"},
	}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}}
	var first exemplar
	for k, order := range orders {
		r := NewRegistry()
		h := r.Histogram("h", "h.", []float64{10})
		for _, i := range order {
			h.ObserveExemplar(obsv[i].v, obsv[i].id)
		}
		ex, ok := h.exemplarAt(0)
		if !ok {
			t.Fatal("bucket 0 should hold an exemplar")
		}
		if k == 0 {
			first = ex
			// Min by (traceID, value): "aaaa" beats later IDs, 7 is the
			// only value "aaaa" observed.
			if ex.traceID != "aaaa" || ex.value != 7 {
				t.Fatalf("winner = %+v, want {aaaa 7}", ex)
			}
			continue
		}
		if ex != first {
			t.Fatalf("order %v changed the exemplar: %+v vs %+v", order, ex, first)
		}
	}
}

func TestExemplarTiesBreakOnValue(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h.", []float64{10})
	h.ObserveExemplar(9, "same")
	h.ObserveExemplar(2, "same")
	ex, _ := h.exemplarAt(0)
	if ex.value != 2 {
		t.Fatalf("equal trace IDs should keep the smaller value, got %v", ex.value)
	}
}

func TestExemplarBucketPlacement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h.", []float64{1, 2})
	h.ObserveExemplar(1, "edge")  // le="1" is inclusive: bucket 0, not 1
	h.ObserveExemplar(99, "huge") // +Inf bucket (index len(bounds))
	if ex, ok := h.exemplarAt(0); !ok || ex.traceID != "edge" {
		t.Fatalf("boundary observation should land in the inclusive bucket, got %+v ok=%v", ex, ok)
	}
	if _, ok := h.exemplarAt(1); ok {
		t.Fatal("bucket 1 saw no observation, must hold no exemplar")
	}
	if ex, ok := h.exemplarAt(2); !ok || ex.traceID != "huge" {
		t.Fatalf("+Inf bucket exemplar = %+v ok=%v", ex, ok)
	}
}

func TestExemplarEmptyTraceIDIgnored(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h.", []float64{1})
	h.ObserveExemplar(0.5, "")
	if h.Count() != 1 {
		t.Fatal("observation must still count")
	}
	if _, ok := h.exemplarAt(0); ok {
		t.Fatal("empty trace ID must not become an exemplar")
	}
}

func TestExpositionRendersExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("itm_rt_bytes", "Response bytes.", []float64{10, 100})
	h.ObserveExemplar(4, "0af7651916cd43dd8448eb211c80319c")
	h.ObserveExemplar(5000, "b7ad6b7169203331")
	h.Observe(50) // plain observation: middle bucket counts, no exemplar
	text := r.StableExposition()
	for _, line := range []string{
		`itm_rt_bytes_bucket{le="10"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 4`,
		`itm_rt_bytes_bucket{le="100"} 2`,
		`itm_rt_bytes_bucket{le="+Inf"} 3 # {trace_id="b7ad6b7169203331"} 5000`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, text)
		}
	}
	if strings.Contains(text, `le="100"} 2 #`) {
		t.Errorf("exemplar leaked onto an unobserved bucket:\n%s", text)
	}
}

// Zero-observation families: a histogram declared via DeclareHistogram
// exposes HELP/TYPE only (like declared counters — the shape contract
// without phantom series); one instantiated but never observed exposes its
// full zero bucket ladder. Neither carries exemplar suffixes.
func TestZeroObservationHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.DeclareHistogram("itm_idle_bytes", "Declared, never observed.", []float64{1, 2})
	r.Histogram("itm_quiet_bytes", "Instantiated, never observed.", []float64{1, 2})
	text := r.StableExposition()
	for _, line := range []string{
		"# HELP itm_idle_bytes Declared, never observed.",
		"# TYPE itm_idle_bytes histogram",
		"# TYPE itm_quiet_bytes histogram",
		`itm_quiet_bytes_bucket{le="1"} 0`,
		`itm_quiet_bytes_bucket{le="+Inf"} 0`,
		"itm_quiet_bytes_sum 0",
		"itm_quiet_bytes_count 0",
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, text)
		}
	}
	if strings.Contains(text, "itm_idle_bytes_bucket") {
		t.Errorf("declared-only histogram must expose no series:\n%s", text)
	}
	if strings.Contains(text, "trace_id") {
		t.Errorf("zero-observation histograms must carry no exemplars:\n%s", text)
	}
}

// Over-cap span drops must be visible in metrics: serial drops produce an
// exact deterministic count in itm_trace_dropped_total.
func TestTraceCapDropCounter(t *testing.T) {
	prev := Swap(NewSet())
	defer Swap(prev)
	tc := NewTracer()
	tc.cap = 3
	tr := tc.Trace("capped")
	for i := 0; i < 10; i++ {
		tr.Start("s", 0).SetOrder(i).SetAttrInt("i", int64(i))
	}
	out := tr.Export()
	if out.Spans != 3 || out.Dropped != 7 {
		t.Fatalf("spans=%d dropped=%d, want 3/7", out.Spans, out.Dropped)
	}
	got := Metrics().Counter("itm_trace_dropped_total",
		"Spans dropped past a trace's span cap, by trace name.",
		L("trace", "capped")).Value()
	if got != 7 {
		t.Fatalf("itm_trace_dropped_total = %d, want 7", got)
	}
	// The surviving prefix is the first cap arrivals, in order.
	for i, root := range out.Roots {
		if want := strconv.Itoa(i); root.Attrs["i"] != want {
			t.Fatalf("root %d carries i=%q: tail drop must keep the first arrivals", i, root.Attrs["i"])
		}
	}
}
