package obs

import (
	"strings"
	"testing"
)

func TestEventFormatting(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, Info)
	l.Event(Info, "serve.listening", "addr", "127.0.0.1:8411", "epochs", 3)
	l.Event(Warn, "probe.weird", "msg", "has spaces", "eq", "k=v", "empty", "")
	l.Event(Debug, "suppressed")
	l.Event(Error, "odd", "only-key")
	got := b.String()
	want := []string{
		"level=info event=serve.listening addr=127.0.0.1:8411 epochs=3\n",
		`level=warn event=probe.weird msg="has spaces" eq="k=v" empty=""` + "\n",
		`level=error event=odd !odd_kv=only-key` + "\n",
	}
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("missing %q in:\n%s", w, got)
		}
	}
	if strings.Contains(got, "suppressed") {
		t.Errorf("debug event should be suppressed at Info:\n%s", got)
	}
}

func TestEventCountsEvenWhenSuppressed(t *testing.T) {
	s := NewSet()
	s.Log.Event(Debug, "quiet")
	s.Log.Event(Info, "loud")
	if got := s.Reg.Counter("itm_events_total", "Structured events emitted, by level.", L("level", "debug")).Value(); got != 1 {
		t.Fatalf("debug count = %d, want 1", got)
	}
	if got := s.Reg.Counter("itm_events_total", "Structured events emitted, by level.", L("level", "info")).Value(); got != 1 {
		t.Fatalf("info count = %d, want 1", got)
	}
}

func TestT(t *testing.T) {
	if got := T(1.5); got != "1.5h" {
		t.Fatalf("T(1.5) = %q", got)
	}
}
