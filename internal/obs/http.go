package obs

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// HTTPDurationBuckets are the wall-clock request-duration bounds, in
// seconds. Tuned for an in-memory store: most answers are sub-millisecond,
// full-document encodes reach tens of milliseconds.
var HTTPDurationBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// HTTPBytesBuckets are the response-size bounds, in bytes. Sizes are a
// function of the served document, not the host, so this histogram is
// stable — and the family whose exemplars link buckets back to trace IDs.
var HTTPBytesBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576}

// statusWriter captures the status code and body size a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

type ctxKey int

const traceIDKey ctxKey = iota

// TraceIDFromContext returns the propagated trace ID of a traced request,
// or "" when the request carried no valid traceparent.
func TraceIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}

// DeclareHTTPMetrics registers HELP/TYPE for the serving-stack HTTP
// families up front, so they appear in the stable exposition even before
// (or without) traffic.
func DeclareHTTPMetrics(r *Registry) {
	r.Declare(KindCounter, "itm_http_requests_total",
		"HTTP requests served, by route pattern and status class.", "class", "route")
	r.Declare(KindCounter, "itm_http_traced_requests_total",
		"HTTP requests carrying a valid traceparent, by route pattern and status class.", "class", "route")
	r.DeclareHistogram("itm_http_response_bytes",
		"Response body bytes for traced requests, by route pattern; bucket exemplars carry trace IDs.",
		HTTPBytesBuckets, "route")
	r.Declare(KindCounter, "itm_trace_dropped_total",
		"Spans dropped past a trace's span cap, by trace name.", "trace")
}

// InstrumentHandler wraps h with request counting, wall-duration
// observation, and W3C traceparent acceptance under the given route label
// (use the route *pattern*, never the raw path — label cardinality must
// stay bounded).
//
// A request carrying a valid traceparent additionally: exposes its trace ID
// via TraceIDFromContext, lands a root span in the "http" trace (virtual
// times; ordering is by route + trace ID, both deterministic), observes the
// stable itm_http_response_bytes histogram with the trace ID as the bucket
// exemplar, and emits an http.access debug event. Untraced requests
// (health polls, manual curls) never touch those deterministic surfaces.
//
// The wall-duration observation is the obs layer's only wall-clock use:
// request latency is a property of the serving host, not the simulation, so
// it cannot come from simtime. The two reads below are the documented
// bridges (DESIGN.md §10); the duration histogram is registered volatile so
// wall time never reaches a stable (golden-testable) dump.
func InstrumentHandler(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID, parentID, traced := ParseTraceparent(r.Header.Get("traceparent"))
		if traced {
			r = r.WithContext(context.WithValue(r.Context(), traceIDKey, traceID))
		}
		//itmlint:allow nodeterm HTTP wall-duration bridge, DESIGN.md §10
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		//itmlint:allow nodeterm HTTP wall-duration bridge, DESIGN.md §10
		elapsed := time.Since(start)
		class := strconv.Itoa(sw.status/100) + "xx"
		C("itm_http_requests_total", "HTTP requests served, by route pattern and status class.",
			L("route", route), L("class", class)).Inc()
		Default().Reg.VolatileHistogram("itm_http_request_seconds",
			"Wall-clock request duration by route pattern (volatile: excluded from stable dumps).",
			HTTPDurationBuckets, L("route", route)).ObserveExemplar(elapsed.Seconds(), traceID)
		if !traced {
			return
		}
		C("itm_http_traced_requests_total",
			"HTTP requests carrying a valid traceparent, by route pattern and status class.",
			L("route", route), L("class", class)).Inc()
		Default().Reg.Histogram("itm_http_response_bytes",
			"Response body bytes for traced requests, by route pattern; bucket exemplars carry trace IDs.",
			HTTPBytesBuckets, L("route", route)).ObserveExemplar(float64(sw.bytes), traceID)
		cache := sw.Header().Get("X-Cache")
		sp := Default().Trc.Trace("http").Start(route, 0)
		sp.SetAttr("trace_id", traceID)
		sp.SetAttr("parent_id", parentID)
		sp.SetAttrInt("status", int64(sw.status))
		sp.SetAttrInt("bytes", int64(sw.bytes))
		if cache != "" {
			sp.SetAttr("cache", cache)
		}
		sp.End(0)
		Event(Debug, "http.access", "trace_id", traceID, "route", route,
			"status", sw.status, "bytes", sw.bytes, "cache", cache)
	})
}

// MetricsHandler serves the registry in Prometheus text format 0.0.4,
// volatile families included.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w, true)
	})
}
