package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPDurationBuckets are the wall-clock request-duration bounds, in
// seconds. Tuned for an in-memory store: most answers are sub-millisecond,
// full-document encodes reach tens of milliseconds.
var HTTPDurationBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// InstrumentHandler wraps h with request counting and wall-duration
// observation under the given route label (use the route *pattern*, never
// the raw path — label cardinality must stay bounded).
//
// This is the observability layer's only wall-clock use: request latency is
// a property of the serving host, not the simulation, so it cannot come
// from simtime. The two reads below are the documented bridges (DESIGN.md
// §10); the duration histogram is registered volatile so wall time never
// reaches a stable (golden-testable) dump.
func InstrumentHandler(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		//itmlint:allow nodeterm HTTP wall-duration bridge, DESIGN.md §10
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		//itmlint:allow nodeterm HTTP wall-duration bridge, DESIGN.md §10
		elapsed := time.Since(start)
		class := strconv.Itoa(sw.status/100) + "xx"
		C("itm_http_requests_total", "HTTP requests served, by route pattern and status class.",
			L("route", route), L("class", class)).Inc()
		Default().Reg.VolatileHistogram("itm_http_request_seconds",
			"Wall-clock request duration by route pattern (volatile: excluded from stable dumps).",
			HTTPDurationBuckets, L("route", route)).Observe(elapsed.Seconds())
	})
}

// MetricsHandler serves the registry in Prometheus text format 0.0.4,
// volatile families included.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w, true)
	})
}
