// Package obs is the toolkit's stdlib-only observability layer: a metrics
// registry (atomic counters, gauges, fixed-bucket histograms with labeled
// families and deterministically sorted Prometheus exposition), span tracing
// over simulated time with a compact JSON export, and a structured leveled
// event log replacing ad-hoc prints.
//
// The layer inherits the repo's determinism contract (DESIGN.md §8): with a
// fixed seed and a fixed worker count, the stable metrics dump and the trace
// export are byte-identical across runs. Three rules make that hold:
//
//   - counter deltas and histogram bucket increments are integer atomic
//     adds, which commute, so per-probe increments from parallel shards
//     total identically regardless of scheduling;
//   - histogram sums accumulate in fixed-point nanounits (integer adds)
//     instead of racing float adds, so summation order cannot leak;
//   - the few genuinely wall-clock or scheduler-dependent families (HTTP
//     request durations, sync.Pool reuse counts) are registered as
//     *volatile* and excluded from the stable exposition golden tests and
//     file dumps use; /metrics serves everything.
//
// Spans carry virtual-clock timestamps and are sorted structurally at
// export, so goroutine interleaving never reaches the exported bytes.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind uint8

// Metric family kinds, matching the Prometheus TYPE keywords.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one key=value pair attached to a metric series.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. Safe for concurrent use;
// concurrent adds commute, so totals are deterministic.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if n != 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; prefer Set at serial points for determinism).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// sumScale is the fixed-point denominator histogram sums accumulate in.
// Integer adds commute, so the sum — unlike a float fold — is independent
// of observation order and worker scheduling.
const sumScale = 1e9

// Histogram is a fixed-bucket histogram. Buckets are cumulative upper
// bounds; observations beyond the last bound land in the implicit +Inf
// bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64    // fixed-point, sumScale units
	n      atomic.Uint64

	emu sync.Mutex
	//itm:guardedby emu
	exemplars []exemplar // lazily len(bounds)+1; empty traceID = unset
}

// exemplar links one bucket to a trace that landed in it. The kept exemplar
// is the minimum by (traceID, value), a commutative fold, so concurrent
// observation order never reaches the exposition.
type exemplar struct {
	traceID string
	value   float64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(int64(math.Round(v * sumScale)))
	h.n.Add(1)
}

// ObserveExemplar records v and, when traceID is non-empty, offers it as
// the bucket's exemplar. Exemplar selection keeps the smallest
// (traceID, value) pair seen, so the winning exemplar depends only on the
// set of observations, not their arrival order.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.emu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]exemplar, len(h.bounds)+1)
	}
	e := &h.exemplars[i]
	if e.traceID == "" || traceID < e.traceID || (traceID == e.traceID && v < e.value) {
		*e = exemplar{traceID: traceID, value: v}
	}
	h.emu.Unlock()
}

// exemplarAt returns bucket i's exemplar, if one was recorded.
func (h *Histogram) exemplarAt(i int) (exemplar, bool) {
	h.emu.Lock()
	defer h.emu.Unlock()
	if h.exemplars == nil || i >= len(h.exemplars) || h.exemplars[i].traceID == "" {
		return exemplar{}, false
	}
	return h.exemplars[i], true
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the (fixed-point accumulated) sum of observations.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / sumScale }

// family is one named metric family: a kind, a help string, a fixed label
// key set, and the series instantiated so far.
type family struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string
	volatile  bool
	bounds    []float64 // histograms only

	mu sync.Mutex
	//itm:guardedby mu
	series map[string]*series // by label-value signature
	bare   atomic.Pointer[series]
}

type series struct {
	labelValues []string // aligned with family.labelKeys
	c           *Counter
	g           *Gauge
	h           *Histogram
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu sync.RWMutex
	//itm:guardedby mu
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family returns the named family, creating it with the given shape on
// first use. Shape mismatches (kind or label keys) panic: they are
// programming errors, like registering two Prometheus collectors under one
// name.
func (r *Registry) family(name, help string, kind Kind, bounds []float64, labels []Label, volatile bool) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		keys := make([]string, len(labels))
		for i, l := range labels {
			keys[i] = l.Key
		}
		sort.Strings(keys)
		f = &family{name: name, help: help, kind: kind, labelKeys: keys,
			volatile: volatile, bounds: bounds, series: map[string]*series{}}
		r.mu.Lock()
		if prior := r.families[name]; prior != nil {
			f = prior
		} else {
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	if len(labels) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: %s wants labels %v, got %d labels", name, f.labelKeys, len(labels)))
	}
	return f
}

// get returns the series for the given label values, creating it on first
// use. labels need not be sorted.
func (f *family) get(labels []Label) *series {
	if len(f.labelKeys) == 0 {
		if s := f.bare.Load(); s != nil {
			return s
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		if s := f.bare.Load(); s != nil {
			return s
		}
		s := f.newSeries(nil)
		f.series[""] = s
		f.bare.Store(s)
		return s
	}
	vals := make([]string, len(f.labelKeys))
	for _, l := range labels {
		i := sort.SearchStrings(f.labelKeys, l.Key)
		if i >= len(f.labelKeys) || f.labelKeys[i] != l.Key {
			panic(fmt.Sprintf("obs: %s has no label key %q (keys %v)", f.name, l.Key, f.labelKeys))
		}
		vals[i] = l.Value
	}
	sig := strings.Join(vals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[sig]
	if s == nil {
		s = f.newSeries(vals)
		f.series[sig] = s
	}
	return s
}

func (f *family) newSeries(vals []string) *series {
	s := &series{labelValues: vals}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}
	return s
}

// Counter returns (creating on first use) the counter series for the given
// labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, KindCounter, nil, labels, false).get(labels).c
}

// VolatileCounter is Counter for run-to-run unstable values (e.g.
// sync.Pool reuse counts): the family is excluded from StableExposition.
func (r *Registry) VolatileCounter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, KindCounter, nil, labels, true).get(labels).c
}

// Gauge returns the gauge series for the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.family(name, help, KindGauge, nil, labels, false).get(labels).g
}

// Histogram returns the histogram series for the given labels. bounds must
// be ascending; only the first registration's bounds are kept.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.family(name, help, KindHistogram, bounds, labels, false).get(labels).h
}

// VolatileHistogram is Histogram for wall-clock-fed families (the HTTP
// request-duration bridge): excluded from StableExposition.
func (r *Registry) VolatileHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.family(name, help, KindHistogram, bounds, labels, true).get(labels).h
}

// Declare registers a labeled family with no series yet, so its HELP/TYPE
// header appears in the exposition before (or without) any increment —
// e.g. the fault-injection counters of a fault-free run.
func (r *Registry) Declare(kind Kind, name, help string, labelKeys ...string) {
	labels := make([]Label, len(labelKeys))
	for i, k := range labelKeys {
		labels[i] = Label{Key: k}
	}
	r.family(name, help, kind, nil, labels, false)
}

// DeclareHistogram is Declare for histogram families, which additionally
// need their bucket bounds fixed up front.
func (r *Registry) DeclareHistogram(name, help string, bounds []float64, labelKeys ...string) {
	labels := make([]Label, len(labelKeys))
	for i, k := range labelKeys {
		labels[i] = Label{Key: k}
	}
	r.family(name, help, KindHistogram, bounds, labels, false)
}

// Families returns the registered family names, sorted.
func (r *Registry) Families() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WritePrometheus writes the registry in Prometheus text exposition format
// 0.0.4: families sorted by name, series sorted by label values, label
// values escaped per the spec. includeVolatile selects whether wall-clock
// and scheduler-dependent families are emitted.
func (r *Registry) WritePrometheus(w io.Writer, includeVolatile bool) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.volatile && !includeVolatile {
			continue
		}
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Exposition returns the full Prometheus text dump, volatile families
// included — what /metrics serves.
func (r *Registry) Exposition() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b, true)
	return b.String()
}

// StableExposition returns the deterministic subset of the dump: with a
// fixed seed and worker count it is byte-identical across runs, so it can
// be diffed, golden-tested, and committed.
func (r *Registry) StableExposition() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b, false)
	return b.String()
}

// Visit calls fn for every series of every non-volatile family, in
// deterministic order, with the series reduced to a single value (counter
// count, gauge value, histogram observation count). Used by itm-bench to
// distill campaign counters.
func (r *Registry) Visit(fn func(name string, labels []Label, value float64)) {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.volatile {
			continue
		}
		for _, s := range f.sortedSeries() {
			labels := make([]Label, len(f.labelKeys))
			for i, k := range f.labelKeys {
				labels[i] = Label{Key: k, Value: s.labelValues[i]}
			}
			var v float64
			switch f.kind {
			case KindCounter:
				v = float64(s.c.Value())
			case KindGauge:
				v = s.g.Value()
			case KindHistogram:
				v = float64(s.h.Count())
			}
			fn(f.name, labels, v)
		}
	}
}

func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	ss := make([]*series, 0, len(f.series))
	sigs := make([]string, 0, len(f.series))
	for sig := range f.series {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		ss = append(ss, f.series[sig])
	}
	f.mu.Unlock()
	return ss
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range f.sortedSeries() {
		switch f.kind {
		case KindCounter:
			b.WriteString(f.name)
			writeLabels(b, f.labelKeys, s.labelValues, "", 0)
			fmt.Fprintf(b, " %d\n", s.c.Value())
		case KindGauge:
			b.WriteString(f.name)
			writeLabels(b, f.labelKeys, s.labelValues, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.g.Value()))
			b.WriteByte('\n')
		case KindHistogram:
			h := s.h
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, f.labelKeys, s.labelValues, "le", bound)
				fmt.Fprintf(b, " %d", cum)
				writeExemplar(b, h, i)
				b.WriteByte('\n')
			}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labelKeys, s.labelValues, "le", math.Inf(1))
			fmt.Fprintf(b, " %d", h.Count())
			writeExemplar(b, h, len(h.bounds))
			b.WriteByte('\n')
			fmt.Fprintf(b, "%s_sum", f.name)
			writeLabels(b, f.labelKeys, s.labelValues, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatFloat(h.Sum()))
			b.WriteByte('\n')
			fmt.Fprintf(b, "%s_count", f.name)
			writeLabels(b, f.labelKeys, s.labelValues, "", 0)
			fmt.Fprintf(b, " %d\n", h.Count())
		}
	}
}

// writeExemplar appends an OpenMetrics-style exemplar suffix
// (` # {trace_id="..."} <value>`) when bucket i has one.
func writeExemplar(b *strings.Builder, h *Histogram, i int) {
	ex, ok := h.exemplarAt(i)
	if !ok {
		return
	}
	b.WriteString(` # {trace_id="`)
	b.WriteString(escapeLabel(ex.traceID))
	b.WriteString(`"} `)
	b.WriteString(formatFloat(ex.value))
}

// writeLabels emits {k="v",...}; leKey non-empty appends the histogram
// bucket bound as a trailing le label.
func writeLabels(b *strings.Builder, keys, vals []string, leKey string, le float64) {
	if len(keys) == 0 && leKey == "" {
		return
	}
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		if math.IsInf(le, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(le))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatFloat renders a float the way the text format expects: shortest
// round-trip representation, deterministic for a given bit pattern.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the 0.0.4 text format: backslash
// and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
