package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExpositionGolden locks the Prometheus text-format rendering: HELP/TYPE
// ordering, family sorting, series sorting, label escaping, histogram
// cumulative buckets. Regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/obs -run Golden
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("itm_zeta_total", "Sorted last by name.").Add(3)
	r.Counter("itm_alpha_total", `Help with backslash \ and
newline.`).Inc()
	c := r.Counter("itm_requests_total", "Requests by route and class.",
		L("route", "GET /v1/top"), L("class", "2xx"))
	c.Add(7)
	r.Counter("itm_requests_total", "Requests by route and class.",
		L("route", "GET /v1/top"), L("class", "5xx")).Inc()
	r.Counter("itm_escapes_total", "Label-value escaping.",
		L("v", "quote\" backslash\\ newline\n")).Inc()
	r.Gauge("itm_level", "A gauge.").Set(-2.5)
	h := r.Histogram("itm_sizes_bytes", "A histogram.", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	hx := r.Histogram("itm_traced_bytes", "A histogram with exemplars.", []float64{16, 256})
	hx.ObserveExemplar(12, "0af7651916cd43dd8448eb211c80319c")
	hx.ObserveExemplar(1024, "b7ad6b7169203331")
	hx.Observe(64) // no exemplar on the middle bucket
	r.Declare(KindCounter, "itm_declared_total", "Declared but never incremented.", "kind")
	r.DeclareHistogram("itm_declared_bytes", "Declared histogram, never observed.", []float64{1, 2})
	r.VolatileCounter("itm_volatile_total", "Excluded from the stable dump.").Add(99)

	got := r.StableExposition()
	golden := filepath.Join("testdata", "exposition.golden")
	if update() {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("stable exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	full := r.Exposition()
	if !strings.Contains(full, "itm_volatile_total 99") {
		t.Errorf("full exposition should include volatile families:\n%s", full)
	}
	if strings.Contains(got, "itm_volatile_total") {
		t.Errorf("stable exposition must exclude volatile families:\n%s", got)
	}
}

func update() bool { return os.Getenv("UPDATE_GOLDEN") != "" }

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1)   // le="1" is inclusive
	h.Observe(1.5)
	h.Observe(3)   // +Inf bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 6.0; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	text := r.Exposition()
	for _, line := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="2"} 3`,
		`h_bucket{le="+Inf"} 4`,
		`h_sum 6`,
		`h_count 4`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, text)
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x", "x.")
}

func TestVisitIsSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b.", L("k", "2")).Add(2)
	r.Counter("b_total", "b.", L("k", "1")).Add(1)
	r.Counter("a_total", "a.").Add(5)
	r.VolatileCounter("v_total", "v.").Inc()
	var keys []string
	r.Visit(func(name string, labels []Label, v float64) {
		k := name
		for _, l := range labels {
			k += "{" + l.Key + "=" + l.Value + "}"
		}
		keys = append(keys, k)
	})
	want := []string{"a_total", "b_total{k=1}", "b_total{k=2}"}
	if len(keys) != len(want) {
		t.Fatalf("visited %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("visited %v, want %v", keys, want)
		}
	}
}
