package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentHandlerCountsByClass(t *testing.T) {
	prev := Swap(NewSet())
	defer Swap(prev)
	h := InstrumentHandler("GET /v1/top", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("boom") != "" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, path := range []string{"/", "/", "/?boom=1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	reg := Metrics()
	if got := reg.Counter("itm_http_requests_total", "HTTP requests served, by route pattern and status class.",
		L("route", "GET /v1/top"), L("class", "2xx")).Value(); got != 2 {
		t.Fatalf("2xx count = %d, want 2", got)
	}
	if got := reg.Counter("itm_http_requests_total", "HTTP requests served, by route pattern and status class.",
		L("route", "GET /v1/top"), L("class", "4xx")).Value(); got != 1 {
		t.Fatalf("4xx count = %d, want 1", got)
	}
	// The wall-duration histogram is volatile: on /metrics, never in the
	// stable dump.
	if !strings.Contains(reg.Exposition(), "itm_http_request_seconds_bucket") {
		t.Error("full exposition missing duration histogram")
	}
	if strings.Contains(reg.StableExposition(), "itm_http_request_seconds") {
		t.Error("stable exposition must exclude the wall-clock histogram")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("itm_x_total", "x.").Inc()
	r.VolatileCounter("itm_v_total", "v.").Inc()
	srv := httptest.NewServer(MetricsHandler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "itm_x_total 1") || !strings.Contains(body, "itm_v_total 1") {
		t.Fatalf("metrics body missing families (volatile must be served):\n%s", body)
	}
}
