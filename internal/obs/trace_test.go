package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExportSortsInterleavedSpans records shard spans from goroutines in a
// scrambled order and checks the export is the same tree a serial run would
// produce: siblings sorted by (start, order, name), IDs depth-first.
func TestExportSortsInterleavedSpans(t *testing.T) {
	tc := NewTracer()
	tr := tc.Trace("campaign")
	root := tr.Start("build", 0)
	var wg sync.WaitGroup
	for _, i := range []int{3, 0, 2, 1} {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			root.Child("shard", 0).SetOrder(i).SetAttrInt("shard", int64(i)).End(1)
		}(i)
	}
	wg.Wait()
	root.End(1)

	out := tr.Export()
	if len(out.Roots) != 1 || out.Roots[0].Name != "build" {
		t.Fatalf("roots = %+v", out.Roots)
	}
	kids := out.Roots[0].Children
	if len(kids) != 4 {
		t.Fatalf("children = %d, want 4", len(kids))
	}
	for i, k := range kids {
		if k.Attrs["shard"] != itoa(int64(i)) {
			t.Errorf("child %d has shard attr %q", i, k.Attrs["shard"])
		}
		if k.ID != i+1 {
			t.Errorf("child %d has ID %d, want DFS order %d", i, k.ID, i+1)
		}
	}
}

func TestTraceCapDropsInsteadOfEvicting(t *testing.T) {
	tc := NewTracer()
	tc.cap = 2
	tr := tc.Trace("tiny")
	a := tr.Start("a", 0)
	tr.Start("b", 1)
	tr.Start("c", 2) // over cap: dropped, not evicting a
	a.Child("under-dropped", 3)
	out := tr.Export()
	if out.Spans != 2 || out.Dropped != 2 {
		t.Fatalf("spans=%d dropped=%d, want 2/2", out.Spans, out.Dropped)
	}
	if out.Roots[0].Name != "a" {
		t.Fatalf("first span should survive, got %q", out.Roots[0].Name)
	}
}

func TestChildOfDroppedSpanBecomesRootless(t *testing.T) {
	tc := NewTracer()
	tc.cap = 1
	tr := tc.Trace("tiny")
	tr.Start("kept", 0)
	dropped := tr.Start("dropped", 1)
	dropped.Child("orphan", 2) // also over cap: dropped too
	out := tr.Export()
	if out.Spans != 1 || out.Dropped != 2 {
		t.Fatalf("spans=%d dropped=%d, want 1/2", out.Spans, out.Dropped)
	}
}

func TestExportAllSortedByName(t *testing.T) {
	tc := NewTracer()
	tc.Trace("zeta").Start("z", 0)
	tc.Trace("alpha").Start("a", 0)
	b, err := tc.ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if strings.Index(s, `"alpha"`) > strings.Index(s, `"zeta"`) {
		t.Fatalf("traces not sorted by name:\n%s", s)
	}
}

func TestActivateRoutesPackageSpans(t *testing.T) {
	prev := Swap(NewSet())
	defer Swap(prev)
	ActivateTrace("day-1")
	StartSpan("sweep", 5).End(6)
	tr, ok := Tracing().Lookup("day-1")
	if !ok {
		t.Fatal("day-1 trace missing")
	}
	out := tr.Export()
	if out.Spans != 1 || out.Roots[0].Name != "sweep" {
		t.Fatalf("export = %+v", out)
	}
	if out.Roots[0].StartH != 5 || out.Roots[0].EndH != 6 {
		t.Fatalf("span times = %v..%v", out.Roots[0].StartH, out.Roots[0].EndH)
	}
}
