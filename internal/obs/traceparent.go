package obs

// W3C trace-context (traceparent) helpers. The serving stack propagates
// request causality with the standard 55-byte header form
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// but mints the IDs deterministically: loadgen derives trace and parent IDs
// from (seed, request index) via randx.Hash64, so a same-seed replay
// produces a byte-identical trace corpus. The helpers here are pure
// string-shuffling — no randomness, no clocks — which keeps the obs layer
// inside the determinism contract (DESIGN.md §15).

// traceparentLen is the exact length of a version-00 traceparent header.
const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

const hexDigits = "0123456789abcdef"

// FormatTraceparent renders a version-00 traceparent header from a 128-bit
// trace ID (hi, lo) and a 64-bit parent span ID, with the sampled flag set.
// All-zero IDs are invalid per the spec, so zero inputs are nudged to 1.
func FormatTraceparent(traceHi, traceLo, parent uint64) string {
	if traceHi == 0 && traceLo == 0 {
		traceLo = 1
	}
	if parent == 0 {
		parent = 1
	}
	b := make([]byte, 0, traceparentLen)
	b = append(b, '0', '0', '-')
	b = appendHex64(b, traceHi)
	b = appendHex64(b, traceLo)
	b = append(b, '-')
	b = appendHex64(b, parent)
	b = append(b, '-', '0', '1')
	return string(b)
}

func appendHex64(b []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, hexDigits[(v>>uint(shift))&0xf])
	}
	return b
}

// ParseTraceparent validates a version-00 traceparent header and returns
// its trace ID and parent span ID as lowercase hex strings. ok is false for
// anything malformed: wrong length, unknown version, bad separators,
// non-hex digits, or the spec's forbidden all-zero IDs. Absent or invalid
// headers make a request untraced — it is still served and counted, but
// never reaches the deterministic trace/exemplar surfaces.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	if len(h) != traceparentLen {
		return "", "", false
	}
	if h[0] != '0' || h[1] != '0' {
		return "", "", false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	traceID, parentID = h[3:35], h[36:52]
	flags := h[53:]
	if !isLowerHex(traceID) || !isLowerHex(parentID) || !isLowerHex(flags) {
		return "", "", false
	}
	if allZero(traceID) || allZero(parentID) {
		return "", "", false
	}
	return traceID, parentID, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
