package vantage

import (
	"encoding/json"
	"testing"

	"itmap/internal/core"
	"itmap/internal/faults"
	"itmap/internal/obs"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func tinyWorld(t *testing.T, seed int64) *world.World {
	t.Helper()
	return world.Build(world.Tiny(seed))
}

// runMesh runs one campaign against a fresh obs set and returns the
// document's canonical JSON plus the stable metrics dump.
func runMesh(t *testing.T, w *world.World, cfg Config) (*core.MeshDocument, []byte, string) {
	t.Helper()
	prev := obs.Swap(obs.NewSet())
	defer obs.Swap(prev)
	obs.ActivateTrace("vantage.mesh_round")
	doc, st := New(w.Top, w.Paths, w.Users, cfg).Run()
	if st.Scheduled == 0 || st.Pings == 0 {
		t.Fatalf("campaign did no work: %+v", st)
	}
	js, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return doc, js, obs.Metrics().StableExposition()
}

func TestFleetPlacement(t *testing.T) {
	w := tinyWorld(t, 11)
	f := NewFleet(w.Top, w.Users, 32, 11)
	if len(f.Agents) != 32 {
		t.Fatalf("placed %d agents, want 32", len(f.Agents))
	}
	for _, a := range f.Agents {
		as, ok := w.Top.ASes[a.AS]
		if !ok || as.Type != topology.Eyeball {
			t.Fatalf("agent %d placed in non-eyeball AS %d", a.ID, a.AS)
		}
		if owner, ok := w.Top.OwnerOf(a.Prefix); !ok || owner != a.AS {
			t.Fatalf("agent %d prefix %v not owned by its AS %d", a.ID, a.Prefix, a.AS)
		}
	}
	// Identity stability: growing the fleet must not move existing agents.
	big := NewFleet(w.Top, w.Users, 64, 11)
	for i, a := range f.Agents {
		if big.Agents[i] != a {
			t.Fatalf("agent %d moved when fleet grew: %+v vs %+v", i, a, big.Agents[i])
		}
	}
	asns := f.ASNs()
	for i := 1; i < len(asns); i++ {
		if asns[i] <= asns[i-1] {
			t.Fatalf("ASNs not strictly ascending: %v", asns)
		}
	}
}

func TestCampaignDocumentShape(t *testing.T) {
	w := tinyWorld(t, 5)
	doc, _, _ := runMesh(t, w, Config{Agents: 24, Rounds: 2, Workers: 2, Seed: 5})
	if len(doc.Pairs) == 0 {
		t.Fatal("campaign produced no pairs")
	}
	var prev uint64
	for i := range doc.Pairs {
		p := &doc.Pairs[i]
		if p.Lo >= p.Hi {
			t.Fatalf("pair %d not canonical: lo=%d hi=%d", i, p.Lo, p.Hi)
		}
		if i > 0 && p.Key() <= prev {
			t.Fatalf("pairs not sorted at %d", i)
		}
		prev = p.Key()
		if p.Lost > p.Probes {
			t.Fatalf("pair %d lost %d > probes %d", i, p.Lost, p.Probes)
		}
		if p.Confidence < 0 || p.Confidence > 1 {
			t.Fatalf("pair %d confidence %v out of range", i, p.Confidence)
		}
		if p.Complete {
			for _, hop := range p.Path {
				if hop == 0 {
					t.Fatalf("pair %d complete but path has a hole", i)
				}
			}
		}
		if p.Probes > p.Lost && (p.MinRTT <= 0 || p.MinRTT > p.MeanRTT || p.MeanRTT > p.MaxRTT) {
			t.Fatalf("pair %d RTT summary inconsistent: %v/%v/%v", i, p.MinRTT, p.MeanRTT, p.MaxRTT)
		}
	}
}

// TestCampaignDeterministic is the mesh determinism contract: same seed ⇒
// byte-identical MeshMatrix and stable obs dump, across runs AND across
// worker counts 1 vs 4.
func TestCampaignDeterministic(t *testing.T) {
	w := tinyWorld(t, 9)
	prof, _ := faults.ByName("lossy")
	cfg := Config{Agents: 24, Rounds: 2, Seed: 9, Profile: prof}

	c1 := cfg
	c1.Workers = 1
	_, js1a, obs1a := runMesh(t, w, c1)
	_, js1b, obs1b := runMesh(t, w, c1)
	if string(js1a) != string(js1b) {
		t.Fatal("same-seed runs produced different mesh documents")
	}
	if obs1a != obs1b {
		t.Fatal("same-seed runs produced different obs dumps")
	}

	c4 := cfg
	c4.Workers = 4
	_, js4, obs4 := runMesh(t, w, c4)
	if string(js1a) != string(js4) {
		t.Fatal("mesh document depends on worker count")
	}
	if obs1a != obs4 {
		t.Fatal("obs dump depends on worker count")
	}
}

// TestCampaignFaultsBite checks the hostile preset actually costs coverage
// relative to calm — the substrate is wired through, not bypassed.
func TestCampaignFaultsBite(t *testing.T) {
	w := tinyWorld(t, 3)
	calmProf, _ := faults.ByName("calm")
	hostProf, _ := faults.ByName("hostile")
	calm, _, _ := runMesh(t, w, Config{Agents: 24, Rounds: 2, Seed: 3, Profile: calmProf})
	hostile, _, _ := runMesh(t, w, Config{Agents: 24, Rounds: 2, Seed: 3, Profile: hostProf})
	lost := func(d *core.MeshDocument) (n int) {
		for i := range d.Pairs {
			n += d.Pairs[i].Lost
		}
		return n
	}
	if lost(hostile) <= lost(calm) {
		t.Fatalf("hostile lost %d pings, calm lost %d — faults not biting", lost(hostile), lost(calm))
	}
	if calm.Profile != "calm" || hostile.Profile != "hostile" {
		t.Fatalf("profiles not recorded: %q / %q", calm.Profile, hostile.Profile)
	}
}
