package vantage

import (
	"errors"

	"itmap/internal/bgp"
	"itmap/internal/core"
	"itmap/internal/faults"
	"itmap/internal/latency"
	"itmap/internal/measure/tracer"
	"itmap/internal/obs"
	"itmap/internal/obs/history"
	"itmap/internal/order"
	"itmap/internal/parallel"
	"itmap/internal/randx"
	"itmap/internal/resilience"
	"itmap/internal/simtime"
	"itmap/internal/topology"
	"itmap/internal/users"
)

// meshShards is the fixed shard count for mesh campaigns. Agents are
// assigned to shards by ID (never by worker count), each shard's probing
// runs serially in agent order, and shard tallies merge in shard order —
// so the MeshMatrix is byte-identical for any -workers setting, the same
// contract traffic.BuildMatrixWorkers holds.
const meshShards = 32

// Config shapes one mesh campaign.
type Config struct {
	// Agents is the fleet size (default 64).
	Agents int
	// Rounds is how many scheduled sweeps the campaign runs (default 2).
	Rounds int
	// Start is the simulated time of round 0.
	Start simtime.Time
	// Interval separates consecutive rounds (default 1 simulated hour).
	Interval simtime.Time
	// TargetsPerAgent is how many peer agents each agent probes per round
	// (default 4). Targets are drawn per (agent, round) from the identity
	// hash, so the pair schedule is a pure function of the seed.
	TargetsPerAgent int
	// PingsPerPair is the RTT probe count per measured pair (default 4).
	PingsPerPair int
	// RetryBudget bounds traceroute attempts per pair, including the
	// first (default 3).
	RetryBudget int
	// QPS is each agent's token-bucket pacing budget in probes per
	// simulated second (default 2; <= 0 disables pacing).
	QPS float64
	// Burst is the pacer's bucket size (default 8).
	Burst int
	// RoundBudget caps probe sends (traceroute attempts + pings) per
	// agent per round; pairs whose worst case does not fit are skipped
	// deterministically (default 64).
	RoundBudget int
	// Workers bounds the goroutines running shards (0 = one per CPU).
	// Results are identical for every setting.
	Workers int
	// Seed drives placement, schedules, faults, and jitter.
	Seed int64
	// Profile is the fault preset the campaign runs under (zero = none).
	Profile faults.Profile
}

func (c *Config) fill() {
	if c.Agents <= 0 {
		c.Agents = 64
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.Interval <= 0 {
		c.Interval = simtime.Hour
	}
	if c.TargetsPerAgent <= 0 {
		c.TargetsPerAgent = 4
	}
	if c.PingsPerPair <= 0 {
		c.PingsPerPair = 4
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 3
	}
	if c.QPS == 0 {
		c.QPS = 2
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	if c.RoundBudget <= 0 {
		c.RoundBudget = 64
	}
}

// Stats is the campaign ledger: scheduling, probing, and casualty totals.
// Every field is an order-independent sum, so it is identical across runs
// and worker counts.
type Stats struct {
	// Agents is the fleet size; Rounds the sweeps run.
	Agents int
	Rounds int
	// Scheduled and Completed count per-round agent activations.
	Scheduled int
	Completed int
	// PairsMeasured counts (agent, target) probings (a pair measured by
	// both sides or in several rounds counts each time); SkippedBudget
	// counts probings dropped because the agent's round budget was spent,
	// SkippedSameAS target draws landing in the agent's own AS.
	PairsMeasured int
	SkippedBudget int
	SkippedSameAS int
	// Traceroutes, TraceRetries, Incomplete count path measurement work.
	Traceroutes  int
	TraceRetries int
	Incomplete   int
	// Pings and PingsLost count RTT probes and their casualties.
	Pings     int
	PingsLost int
}

// Campaign is a scheduled mesh sweep over a placed fleet.
type Campaign struct {
	top   *topology.Topology
	ap    *bgp.AllPaths
	lat   *latency.Model
	plan  *faults.Plan
	fleet *Fleet
	cfg   Config
}

// New assembles a campaign: places the fleet, derives the fault plan, and
// builds the RTT model, all from cfg.Seed.
func New(top *topology.Topology, ap *bgp.AllPaths, um *users.Model, cfg Config) *Campaign {
	cfg.fill()
	return &Campaign{
		top:   top,
		ap:    ap,
		lat:   latency.New(top, ap, cfg.Seed),
		plan:  faults.NewPlan(cfg.Profile, cfg.Seed),
		fleet: NewFleet(top, um, cfg.Agents, cfg.Seed),
		cfg:   cfg,
	}
}

// Fleet exposes the campaign's placed agents.
func (c *Campaign) Fleet() *Fleet { return c.fleet }

// pairAgg accumulates one AS pair's measurements inside one shard.
type pairAgg struct {
	path     []topology.ASN
	holes    int // holes in path; -1 = no path seen yet
	probes   int
	lost     int
	sumRTT   float64
	minRTT   float64
	maxRTT   float64
	samples  int
	complete bool
}

// better reports whether candidate (path, holes) beats the current best:
// fewer holes first, then lexicographically smaller hops — a total order,
// so the winner is independent of observation order.
func (a *pairAgg) better(path []topology.ASN, holes int) bool {
	if a.holes < 0 {
		return path != nil
	}
	if path == nil {
		return false
	}
	if holes != a.holes {
		return holes < a.holes
	}
	if len(path) != len(a.path) {
		return len(path) < len(a.path)
	}
	for i := range path {
		if path[i] != a.path[i] {
			return path[i] < a.path[i]
		}
	}
	return false
}

func (a *pairAgg) observePath(path []topology.ASN, holes int) {
	if a.better(path, holes) {
		a.path, a.holes = path, holes
	}
	if path != nil && holes == 0 {
		a.complete = true
	}
}

func (a *pairAgg) observeRTT(ms float64) {
	if a.samples == 0 || ms < a.minRTT {
		a.minRTT = ms
	}
	if a.samples == 0 || ms > a.maxRTT {
		a.maxRTT = ms
	}
	a.sumRTT += ms
	a.samples++
}

// mergeFrom folds o into a. Called in shard order only.
func (a *pairAgg) mergeFrom(o *pairAgg) {
	a.observePath(o.path, o.holes)
	if o.complete {
		a.complete = true
	}
	a.probes += o.probes
	a.lost += o.lost
	if o.samples > 0 {
		if a.samples == 0 || o.minRTT < a.minRTT {
			a.minRTT = o.minRTT
		}
		if a.samples == 0 || o.maxRTT > a.maxRTT {
			a.maxRTT = o.maxRTT
		}
		a.sumRTT += o.sumRTT
		a.samples += o.samples
	}
}

// shardState is one shard's private world: its agents' pacers and its
// tally map. Only the shard's goroutine touches it during a round, and
// rounds are separated by the worker pool's barrier, so no locks.
type shardState struct {
	agents []int // agent IDs owned by this shard, ascending
	pacers map[int]*resilience.Pacer
	aggs   map[uint64]*pairAgg
	stats  Stats
}

// Metric help strings.
const (
	helpAgents    = "Mesh agents placed into eyeball ASes across campaigns."
	helpScheduled = "Per-round mesh agent activations scheduled."
	helpCompleted = "Per-round mesh agent activations completed."
	helpRounds    = "Mesh campaign rounds run."
	helpPings     = "Mesh RTT pings issued, by outcome."
	helpTraces    = "Mesh traceroutes issued (including retries)."
	helpPairs      = "AS pairs materialized into mesh matrices."
	helpIncomplete = "AS pairs materialized without a complete traceroute path."
)

// RegisterMetrics declares the fleet's metric families so a process that
// never runs a campaign (itm-serve in snapshot mode) still exposes their
// HELP/TYPE headers.
func RegisterMetrics() {
	m := obs.Metrics()
	m.Declare(obs.KindCounter, "itm_mesh_agents_total", helpAgents)
	m.Declare(obs.KindCounter, "itm_mesh_agents_scheduled_total", helpScheduled)
	m.Declare(obs.KindCounter, "itm_mesh_agents_completed_total", helpCompleted)
	m.Declare(obs.KindCounter, "itm_mesh_rounds_total", helpRounds)
	m.Declare(obs.KindCounter, "itm_mesh_pings_total", helpPings, "outcome")
	m.Declare(obs.KindCounter, "itm_mesh_traceroutes_total", helpTraces)
	m.Declare(obs.KindCounter, "itm_mesh_pairs_total", helpPairs)
	m.Declare(obs.KindCounter, "itm_mesh_pairs_incomplete_total", helpIncomplete)
}

// pingOutcome maps a probe fault to its bounded outcome label.
func pingOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, faults.ErrTimeout):
		return "timeout"
	case errors.Is(err, faults.ErrServfail):
		return "servfail"
	case errors.Is(err, faults.ErrThrottled):
		return "throttled"
	default:
		return "unreachable"
	}
}

// Run executes the campaign and returns the assembled mesh matrix plus the
// ledger. The document (and therefore its canonical ITMB encoding) is a
// pure function of (world, Config minus Workers).
func (c *Campaign) Run() (*core.MeshDocument, *Stats) {
	n := len(c.fleet.Agents)
	shards := make([]*shardState, meshShards)
	for s := range shards {
		shards[s] = &shardState{pacers: map[int]*resilience.Pacer{}, aggs: map[uint64]*pairAgg{}}
	}
	for id := 0; id < n; id++ {
		s := id % meshShards
		shards[s].agents = append(shards[s].agents, id)
		shards[s].pacers[id] = resilience.NewPacer(c.cfg.QPS, c.cfg.Burst)
	}
	obs.C("itm_mesh_agents_total", helpAgents).Add(uint64(n))

	for r := 0; r < c.cfg.Rounds; r++ {
		at := c.cfg.Start + simtime.Time(r)*c.cfg.Interval
		root := obs.StartSpan("vantage.mesh_round", at).
			SetAttrInt("round", int64(r)).SetAttrInt("agents", int64(n)).
			SetAttrInt("shards", meshShards)
		parallel.ForEach(meshShards, c.cfg.Workers, func(s int) {
			sh := shards[s]
			sp := root.Child("shard", at).SetOrder(s).SetAttrInt("shard", int64(s))
			before := sh.stats.PairsMeasured
			for _, id := range sh.agents {
				c.runAgentRound(sh, id, r, at)
			}
			sp.SetAttrInt("pairs_measured", int64(sh.stats.PairsMeasured-before)).End(at)
		})
		root.End(at)
		obs.C("itm_mesh_rounds_total", helpRounds).Inc()
	}

	// Shard-ordered fold into one tally, then the canonical document.
	total := map[uint64]*pairAgg{}
	st := &Stats{Agents: n, Rounds: c.cfg.Rounds}
	for _, sh := range shards {
		for _, key := range order.Keys(sh.aggs) {
			if agg, ok := total[key]; ok {
				agg.mergeFrom(sh.aggs[key])
			} else {
				total[key] = sh.aggs[key]
			}
		}
		st.Scheduled += sh.stats.Scheduled
		st.Completed += sh.stats.Completed
		st.PairsMeasured += sh.stats.PairsMeasured
		st.SkippedBudget += sh.stats.SkippedBudget
		st.SkippedSameAS += sh.stats.SkippedSameAS
		st.Traceroutes += sh.stats.Traceroutes
		st.TraceRetries += sh.stats.TraceRetries
		st.Incomplete += sh.stats.Incomplete
		st.Pings += sh.stats.Pings
		st.PingsLost += sh.stats.PingsLost
	}

	doc := &core.MeshDocument{
		Version: 1,
		Agents:  n,
		Rounds:  c.cfg.Rounds,
		Profile: c.plan.Profile().Name,
	}
	if doc.Profile == "" {
		doc.Profile = "none"
	}
	doc.Pairs = make([]core.MeshPairDocument, 0, len(total))
	for _, key := range order.Keys(total) {
		agg := total[key]
		p := core.MeshPairDocument{
			Lo:       uint32(key >> 32),
			Hi:       uint32(key & 0xffffffff),
			Complete: agg.complete,
			Probes:   agg.probes,
			Lost:     agg.lost,
		}
		if agg.path != nil {
			p.Path = make([]uint32, len(agg.path))
			for i, hop := range agg.path {
				p.Path[i] = uint32(hop)
			}
		}
		if agg.samples > 0 {
			p.MinRTT = agg.minRTT
			p.MeanRTT = agg.sumRTT / float64(agg.samples)
			p.MaxRTT = agg.maxRTT
		}
		if agg.probes > 0 {
			p.Confidence = float64(agg.probes-agg.lost) / float64(agg.probes)
			if !agg.complete {
				p.Confidence *= 0.5
			}
		}
		doc.Pairs = append(doc.Pairs, p)
	}
	incomplete := 0
	for _, p := range doc.Pairs {
		if !p.Complete {
			incomplete++
		}
	}
	obs.C("itm_mesh_pairs_total", helpPairs).Add(uint64(len(doc.Pairs)))
	obs.C("itm_mesh_pairs_incomplete_total", helpIncomplete).Add(uint64(incomplete))
	// Fleet-health history sample at the campaign's last round — a serial
	// point after the shard fold, so the capture is deterministic.
	end := c.cfg.Start
	if c.cfg.Rounds > 0 {
		end += simtime.Time(c.cfg.Rounds-1) * c.cfg.Interval
	}
	history.Observe("mesh", "mesh-"+doc.Profile, end)
	return doc, st
}

// runAgentRound fires one agent's probes for one round.
func (c *Campaign) runAgentRound(sh *shardState, id, round int, at simtime.Time) {
	sh.stats.Scheduled++
	obs.C("itm_mesh_agents_scheduled_total", helpScheduled).Inc()
	agent := &c.fleet.Agents[id]
	n := len(c.fleet.Agents)
	budget := c.cfg.RoundBudget
	// Worst case per pair: every traceroute attempt plus every ping.
	pairCost := c.cfg.RetryBudget + c.cfg.PingsPerPair
	for j := 0; j < c.cfg.TargetsPerAgent && n > 1; j++ {
		pick := int(randx.Hash64(c.fleet.Seed, tagTarget, uint64(id), uint64(round), uint64(j)) % uint64(n-1))
		if pick >= id {
			pick++
		}
		target := &c.fleet.Agents[pick]
		if target.AS == agent.AS {
			sh.stats.SkippedSameAS++
			continue
		}
		if budget < pairCost {
			sh.stats.SkippedBudget++
			continue
		}
		budget -= c.measurePair(sh, agent, target, round, at)
		sh.stats.PairsMeasured++
	}
	sh.stats.Completed++
	obs.C("itm_mesh_agents_completed_total", helpCompleted).Inc()
}

// measurePair probes one AS pair from agent toward target: a resilient
// traceroute of the canonical direction plus a burst of paced RTT pings.
// Returns the probe sends consumed.
func (c *Campaign) measurePair(sh *shardState, agent, target *Agent, round int, at simtime.Time) int {
	lo, hi := agent.AS, target.AS
	if hi < lo {
		lo, hi = hi, lo
	}
	key := core.MeshKey(uint32(lo), uint32(hi))
	agg := sh.aggs[key]
	if agg == nil {
		agg = &pairAgg{holes: -1}
		sh.aggs[key] = agg
	}
	pacer := sh.pacers[agent.ID]
	spent := 0

	// Path: the canonical direction lo→hi (measurable from either side, as
	// with Reverse Traceroute), re-measured with backoff while holed.
	retry := resilience.Retryer{
		Budget:    c.cfg.RetryBudget,
		Backoff:   resilience.Backoff{Seed: c.fleet.Seed, Jitter: 0.5},
		Retryable: faults.IsTransient,
	}
	var best []topology.ASN
	bestHoles := -1
	out := retry.Do(pacer.Next(at), key, func(attempt int, t simtime.Time) error {
		path := tracer.TracerouteFaulty(c.ap, lo, hi, c.plan, attempt, t)
		sh.stats.Traceroutes++
		if attempt > 0 {
			sh.stats.TraceRetries++
		}
		obs.C("itm_mesh_traceroutes_total", helpTraces).Inc()
		if path == nil {
			return nil // unreachable is an answer, not a fault
		}
		holes := 0
		for _, hop := range path {
			if hop == tracer.Hole {
				holes++
			}
		}
		if bestHoles < 0 || holes < bestHoles {
			best, bestHoles = path, holes
		}
		if holes > 0 {
			return faults.ErrTimeout
		}
		return nil
	})
	spent += out.Attempts
	if out.Err != nil {
		sh.stats.Incomplete++
	}
	agg.observePath(best, bestHoles)

	// RTT pings: paced, symmetric in the pair, each one a fresh datagram
	// against the fault substrate.
	pop := int(key % 61)
	source := randx.Hash64(c.fleet.Seed, tagAgent, uint64(agent.ID))
	t := out.End
	for i := 0; i < c.cfg.PingsPerPair; i++ {
		t = pacer.Next(t)
		spent++
		sh.stats.Pings++
		agg.probes++
		err := c.plan.ProbeFault(pop, source, randx.Hash64(key, uint64(round), uint64(i)), i, t)
		if err == nil {
			seq := int(randx.Hash64(c.fleet.Seed, tagSeq, key, uint64(round), uint64(agent.ID), uint64(i)) >> 34)
			if ms, ok := c.lat.PairRTTms(agent.Prefix, target.Prefix, seq); ok {
				agg.observeRTT(ms)
			} else {
				err = errors.New("vantage: no latency path")
			}
		}
		obs.C("itm_mesh_pings_total", helpPings, obs.L("outcome", pingOutcome(err))).Inc()
		if err != nil {
			sh.stats.PingsLost++
			agg.lost++
		}
	}
	return spent
}
