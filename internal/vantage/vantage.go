// Package vantage simulates a distributed fleet of lightweight measurement
// agents — the DIMES/RIPE-Atlas shape: thousands of cheap probes seeded
// into eyeball networks, where the users are. The fleet runs scheduled
// mesh campaigns (traceroutes and RTT pings between agent pairs) through
// the tracer/latency/faults/resilience stack and aggregates them into the
// user↔user MeshMatrix (core.MeshDocument): per AS pair, the observed AS
// path, an RTT distribution summary, and how much probing survived the
// fault substrate.
//
// Everything is deterministic. Agent identity is a seed: agent i draws its
// placement from its own hash-derived randx fork, so the same agent lands
// in the same prefix no matter how large the fleet or how many workers
// run. The O(n²) mesh is sharded by agent ID into a fixed number of shards
// (never by worker count); shards run on a bounded worker pool and their
// tallies merge in shard order, so the MeshMatrix — and its canonical
// encoding — is byte-identical across worker counts, like the traffic
// matrix build it mirrors.
package vantage

import (
	"itmap/internal/randx"
	"itmap/internal/topology"
	"itmap/internal/users"
)

// Domain-separation tags for the fleet's hash streams.
const (
	tagAgent uint64 = 0x3e5a01 + iota
	tagTarget
	tagSeq
)

// Agent is one measurement vantage: a lightweight probe process inside a
// user prefix of an eyeball AS.
type Agent struct {
	// ID is the agent's stable identity (0-based, dense). Everything the
	// agent does — placement, target choices, probe jitter — derives from
	// hash(fleet seed, ID), so an agent's behavior is a pure function of
	// its identity.
	ID int
	// AS is the eyeball network hosting the agent.
	AS topology.ASN
	// Prefix is the user prefix the agent probes from.
	Prefix topology.PrefixID
}

// Fleet is a deterministically placed set of agents.
type Fleet struct {
	Agents []Agent
	// Seed is the fleet's identity seed (placement and campaign hashes).
	Seed uint64
}

// NewFleet seeds n agents into the topology's eyeball ASes. Placement is
// weighted by the users model — populous ISPs host proportionally more
// agents, the way volunteer probe fleets skew — and the prefix within the
// chosen AS is weighted by per-prefix users. Each agent draws from its own
// randx fork keyed by (seed, ID): growing the fleet appends agents without
// moving existing ones.
func NewFleet(top *topology.Topology, um *users.Model, n int, seed int64) *Fleet {
	f := &Fleet{Seed: uint64(seed)}
	eyeballs := top.ASesOfType(topology.Eyeball)
	if len(eyeballs) == 0 || n <= 0 {
		return f
	}
	weights := make([]float64, len(eyeballs))
	for i, asn := range eyeballs {
		weights[i] = um.ASUsers(asn)
	}
	f.Agents = make([]Agent, 0, n)
	for id := 0; id < n; id++ {
		//itmlint:allow seedflow identity-keyed seeding: each agent's source derives from hash(seed, id), so placements are independent of fleet size and iteration order (Fork would couple agent id to stream position)
		rng := randx.New(int64(randx.Hash64(f.Seed, tagAgent, uint64(id))))
		asn := eyeballs[rng.WeightedChoice(weights)]
		prefixes := top.ASes[asn].Prefixes
		pw := make([]float64, len(prefixes))
		for i, p := range prefixes {
			pw[i] = um.UsersIn(p)
		}
		f.Agents = append(f.Agents, Agent{
			ID:     id,
			AS:     asn,
			Prefix: prefixes[rng.WeightedChoice(pw)],
		})
	}
	return f
}

// ASNs returns the distinct ASes hosting at least one agent, ascending.
func (f *Fleet) ASNs() []topology.ASN {
	seen := map[topology.ASN]bool{}
	var out []topology.ASN
	for _, a := range f.Agents {
		if !seen[a.AS] {
			seen[a.AS] = true
			out = append(out, a.AS)
		}
	}
	// Agents are placed independently, so first-seen order is arbitrary;
	// sort for a canonical answer.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
