// Package traffic is the simulator's ground truth for "relative activity
// levels" — the quantity the paper's ITM estimates. Demand follows a
// product model: volume(prefix, service) = users(prefix) × Zipf popularity ×
// per-prefix affinity jitter × diurnal(local time). Flows are assigned to
// serving sites through the same redirection machinery real clients use
// (off-net caches, ECS/resolver-based DNS mapping, anycast catchments,
// custom URLs), then routed over BGP paths to produce per-AS and per-link
// loads. Demand functions are pure (hash-based jitter), so the model needs
// no per-flow storage and any slice of it can be recomputed on demand.
package traffic

import (
	"math"
	"sync"

	"itmap/internal/bgp"
	"itmap/internal/dnssim"
	"itmap/internal/randx"
	"itmap/internal/services"
	"itmap/internal/simtime"
	"itmap/internal/topology"
	"itmap/internal/users"
)

// QueriesPerUserPerDay is the total DNS-visible interactions one user makes
// per day, split across services by popularity.
const QueriesPerUserPerDay = 120.0

// diurnalMean is the day-average of users.DiurnalFactor.
const diurnalMean = 0.65

// Model computes demand, assigns flows to sites, and feeds the DNS
// simulator. It implements dnssim.RateSource and dnssim.ChromiumSource.
type Model struct {
	Top   *topology.Topology
	Users *users.Model
	Cat   *services.Catalog
	Paths *bgp.AllPaths
	PR    *dnssim.PublicResolver

	seed uint64

	// TailShare is the fraction of total demand going to the long tail
	// of self-hosted destinations (enterprise/academic servers) outside
	// the popular-service catalog. It keeps the owner-concentration
	// curve realistic: the giants carry ~90%, not 100%.
	TailShare float64
	// TailFanout is how many distinct tail destinations each client AS
	// talks to.
	TailFanout int

	// CustomURLSpill is the share of custom-URL traffic a load balancer
	// sends to the second-closest site (capacity overflow); the §3.2.3
	// intuition is that the "vast majority" — not all — of such bytes
	// come from the optimal site.
	CustomURLSpill float64

	// ChromiumShare is the fraction of users running Chromium-based
	// browsers (whose interception probes reach the roots).
	ChromiumShare float64
	// ChromiumProbesPerUserDay is how many random-label probes one
	// Chromium user generates daily.
	ChromiumProbesPerUserDay float64

	// assignMemo caches assignments under memoMu: the matrix build
	// queries it from many goroutines at once.
	memoMu sync.RWMutex
	//itm:guardedby memoMu
	assignMemo map[assignKey][]SiteShare
}

type assignKey struct {
	svc services.ServiceID
	as  topology.ASN
}

// New builds a traffic model and wires it into the public resolver.
func New(top *topology.Topology, um *users.Model, cat *services.Catalog,
	ap *bgp.AllPaths, pr *dnssim.PublicResolver, seed int64) *Model {
	m := &Model{
		Top: top, Users: um, Cat: cat, Paths: ap, PR: pr,
		seed:                     uint64(seed),
		TailShare:                0.10,
		TailFanout:               5,
		CustomURLSpill:           0.12,
		ChromiumShare:            0.65,
		ChromiumProbesPerUserDay: 6,
		assignMemo:               map[assignKey][]SiteShare{},
	}
	pr.SetRateSource(m)
	return m
}

// usageProb is the chance a prefix's population uses a given service at
// all; tiny populations skip many services. This is what produces the
// <1% traffic-weighted false-positive behaviour of cache probing (§3.1.2):
// a small office prefix may query some popular domain yet exchange no bytes
// with the reference CDN.
func (m *Model) usageProb(p topology.PrefixID) float64 {
	return 1 - math.Exp(-m.Users.UsersIn(p)/300)
}

// affinity is the per-(prefix, service) demand multiplier: zero if the
// population skips the service, else lognormal jitter around 1.
func (m *Model) affinity(p topology.PrefixID, svc *services.Service) float64 {
	if randx.HashFloat(m.seed, 0x05e, uint64(p), uint64(svc.ID)) > m.usageProb(p) {
		return 0
	}
	return randx.HashLognormal(0, 0.5, m.seed, 0xaff, uint64(p), uint64(svc.ID))
}

// QueriesPerDay returns the prefix's daily DNS-visible interactions with a
// service.
func (m *Model) QueriesPerDay(p topology.PrefixID, svc *services.Service) float64 {
	u := m.Users.UsersIn(p)
	if u == 0 {
		return 0
	}
	return u * QueriesPerUserPerDay * m.Cat.Popularity.Weight(svc.Rank) * m.affinity(p, svc)
}

// DailyBytes returns the prefix's daily traffic volume with a service.
func (m *Model) DailyBytes(p topology.PrefixID, svc *services.Service) float64 {
	return m.QueriesPerDay(p, svc) * svc.BytesPerQuery
}

// BotFarmProb is the chance an enterprise prefix hosts automation
// (crawlers, scanners, monitoring agents) rather than people. Bots query
// around the clock — no diurnal signature — which is the §3.1.2 challenge
// of "finding Internet users (as opposed to bots and other non-human
// clients)" and the signal the bot filter keys on.
const BotFarmProb = 0.15

// IsBotPrefix reports whether a prefix's DNS activity comes from
// automation instead of people (ground truth; deterministic).
func (m *Model) IsBotPrefix(p topology.PrefixID) bool {
	owner, ok := m.Top.OwnerOf(p)
	if !ok || m.Top.ASes[owner].Type != topology.Enterprise {
		return false
	}
	return randx.HashBool(BotFarmProb, m.seed, 0xb07, uint64(p))
}

// diurnalAt returns the instantaneous activity multiplier (mean 1) for a
// prefix at time t. Bot prefixes are flat: automation does not sleep.
func (m *Model) diurnalAt(p topology.PrefixID, t simtime.Time) float64 {
	if m.IsBotPrefix(p) {
		return 1
	}
	a := m.Users.ActivityAt(p, t)
	u := m.Users.UsersIn(p)
	if u == 0 {
		return 0
	}
	return a / u / diurnalMean
}

// PublicDNSOptOutProb is the chance a prefix's network blocks or simply
// never uses the public resolver (enterprise policy, ISP hijacking, etc.).
// Opted-out prefixes are invisible to cache probing no matter how active
// they are — the residual ~5% of CDN traffic the technique misses (§3.1.2).
const PublicDNSOptOutProb = 0.08

// UsesPublicResolver reports whether any client in the prefix ever talks
// to the public resolver.
func (m *Model) UsesPublicResolver(p topology.PrefixID) bool {
	return !randx.HashBool(PublicDNSOptOutProb, m.seed, 0x90d5, uint64(p))
}

// PublicResolverQueryRate implements dnssim.RateSource: queries/hour for
// domain from clients in scope that use the public resolver.
func (m *Model) PublicResolverQueryRate(domain string, scope topology.PrefixID, t simtime.Time) float64 {
	svc, ok := m.Cat.ByDomain(domain)
	if !ok {
		return 0
	}
	city, ok := m.Top.PrefixCity[scope]
	if !ok {
		return 0
	}
	if !m.UsesPublicResolver(scope) {
		return 0
	}
	share := m.PR.AdoptionShare(city.Country)
	return m.QueriesPerDay(scope, svc) / 24 * share * m.diurnalAt(scope, t)
}

// OutsourcesResolver reports whether an AS runs no resolver of its own and
// instead points clients at its transit provider's resolver (common for
// small networks). Root-log crawling then attributes those clients to the
// provider — the reason approach 2 tops out near 60% of CDN traffic.
func (m *Model) OutsourcesResolver(asn topology.ASN) bool {
	u := m.Users.ASUsers(asn)
	p := math.Exp(-u / 2e7) // only the largest ISPs reliably run their own
	return randx.HashBool(p, m.seed, 0x0475, uint64(asn))
}

// ChromiumRootQueries implements dnssim.ChromiumSource: the day's
// interception-probe load on the roots, by forwarding resolver. Queries
// from clients using the public resolver egress from the resolver's owner
// and are useless for locating eyeballs — the paper's resolver-visibility
// limitation.
func (m *Model) ChromiumRootQueries(day int) []dnssim.RootLogEntry {
	var out []dnssim.RootLogEntry
	viaPublic := 0.0
	for _, asn := range m.Top.ASNs() {
		a := m.Top.ASes[asn]
		u := m.Users.ASUsers(asn)
		if u == 0 {
			continue
		}
		probes := u * m.ChromiumShare * m.ChromiumProbesPerUserDay *
			randx.HashLognormal(0, 0.05, m.seed, 0xc42, uint64(day), uint64(asn))
		share := m.PR.AdoptionShare(a.Country)
		viaPublic += probes * share
		viaISP := probes * (1 - share)
		if viaISP <= 0 {
			continue
		}
		resolverAS := asn
		if m.OutsourcesResolver(asn) {
			if provs := a.Providers(); len(provs) > 0 {
				resolverAS = provs[0]
			}
		}
		rp, ok := dnssim.ResolverOfAS(m.Top, resolverAS)
		if !ok {
			continue
		}
		out = append(out, dnssim.RootLogEntry{
			ResolverPrefix: rp, ResolverASN: resolverAS, Queries: viaISP,
		})
	}
	if rp, ok := dnssim.ResolverOfAS(m.Top, m.PR.Owner); ok && viaPublic > 0 {
		out = append(out, dnssim.RootLogEntry{
			ResolverPrefix: rp, ResolverASN: m.PR.Owner, Queries: viaPublic,
		})
	}
	return out
}

// SiteShare is one component of a flow's ground-truth serving assignment.
type SiteShare struct {
	Site  *services.Site
	Share float64
}

// Assign returns where clients in clientAS are actually served for a
// service, with volume shares. Memoized; deterministic; safe for
// concurrent use (assign is pure, so racing goroutines compute — and
// cache — the same value).
func (m *Model) Assign(svc *services.Service, clientAS topology.ASN) []SiteShare {
	key := assignKey{svc.ID, clientAS}
	m.memoMu.RLock()
	got, ok := m.assignMemo[key]
	m.memoMu.RUnlock()
	if ok {
		return got
	}
	out := m.assign(svc, clientAS)
	m.memoMu.Lock()
	m.assignMemo[key] = out
	m.memoMu.Unlock()
	return out
}

func (m *Model) assign(svc *services.Service, clientAS topology.ASN) []SiteShare {
	clientCity := m.Top.PrimaryCity(clientAS)
	switch svc.Kind {
	case services.Anycast:
		site := m.Cat.AnycastCatchment(m.Paths, svc.Owner, clientAS)
		if site == nil {
			return nil
		}
		return []SiteShare{{Site: site, Share: 1}}
	case services.CustomURL:
		// Bulk bytes flow from the optimal site — the in-network cache
		// if present, else the closest site (§3.2.3: custom URLs
		// enable very precise redirection) — except for the load
		// balancer's overflow spill to the runner-up.
		if site, ok := m.Cat.OffNetFor(svc.Owner, clientAS); ok {
			spill := m.Cat.NearestOnNetSiteTo(svc.Owner, clientCity.Coord)
			if m.CustomURLSpill > 0 && spill != nil {
				return []SiteShare{
					{Site: site, Share: 1 - m.CustomURLSpill},
					{Site: spill, Share: m.CustomURLSpill},
				}
			}
			return []SiteShare{{Site: site, Share: 1}}
		}
		site, second := m.Cat.TwoNearestSitesTo(svc.Owner, clientCity.Coord)
		if site == nil {
			return nil
		}
		if m.CustomURLSpill > 0 && second != nil {
			return []SiteShare{
				{Site: site, Share: 1 - m.CustomURLSpill},
				{Site: second, Share: m.CustomURLSpill},
			}
		}
		return []SiteShare{{Site: site, Share: 1}}
	default: // DNS-based redirection
		if site, ok := m.Cat.OffNetFor(svc.Owner, clientAS); ok && svc.ECS {
			return []SiteShare{{Site: site, Share: 1}}
		}
		if svc.ECS {
			site := m.Cat.NearestSiteTo(svc.Owner, clientCity.Coord)
			if site == nil {
				return nil
			}
			return []SiteShare{{Site: site, Share: 1}}
		}
		// Without ECS the mapping depends on the resolver: ISP
		// resolvers sit with the client (and get the off-net), public
		// resolver users are mapped to the site nearest their PoP.
		country := m.Top.ASes[clientAS].Country
		pubShare := m.PR.AdoptionShare(country)
		var ispSite *services.Site
		if s, ok := m.Cat.OffNetFor(svc.Owner, clientAS); ok {
			ispSite = s
		} else {
			ispSite = m.Cat.NearestSiteTo(svc.Owner, clientCity.Coord)
		}
		var popSite *services.Site
		if a := m.Top.ASes[clientAS]; len(a.Prefixes) > 0 {
			if pop := m.PR.HomePoP(a.Prefixes[0]); pop != nil {
				popSite = m.Cat.NearestSiteTo(svc.Owner, pop.City.Coord)
			}
		}
		var out []SiteShare
		if ispSite != nil {
			out = append(out, SiteShare{Site: ispSite, Share: 1 - pubShare})
		}
		if popSite != nil {
			out = append(out, SiteShare{Site: popSite, Share: pubShare})
		}
		return out
	}
}
