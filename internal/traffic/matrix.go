package traffic

import (
	"sort"

	"itmap/internal/obs"
	"itmap/internal/parallel"
	"itmap/internal/randx"
	"itmap/internal/services"
	"itmap/internal/topology"
)

// Flow is one aggregated ground-truth flow: all traffic from one client AS
// to one serving site for one service.
type Flow struct {
	ClientAS topology.ASN
	Svc      services.ServiceID
	Site     *services.Site
	Bytes    float64
	// Hops is the AS-path length from the client AS to the AS hosting
	// the serving site (0 = served inside the client's own network).
	Hops int
}

// Matrix is the materialized ground-truth traffic map the ITM tries to
// estimate: who talks to whom, how much, and over which links.
type Matrix struct {
	// PerService indexes daily bytes by ServiceID.
	PerService []float64
	// PerOwner is daily bytes by service-owner AS.
	PerOwner map[topology.ASN]float64
	// ClientASBytes is daily bytes by client AS.
	ClientASBytes map[topology.ASN]float64
	// ASLoad is the daily bytes carried by (originating at, terminating
	// at, or transiting) each AS.
	ASLoad map[topology.ASN]float64
	// LinkLoad is daily bytes per inter-AS link.
	LinkLoad map[topology.LinkKey]float64
	// RefCDNByPrefix is the reference CDN's "server log": daily bytes
	// per client prefix — the validation ground truth of §3.1.2.
	RefCDNByPrefix map[topology.PrefixID]float64
	// RefCDNByAS aggregates the server log by client AS.
	RefCDNByAS map[topology.ASN]float64
	// Flows lists every aggregated flow, ordered by ascending client ASN
	// (the order the build visits client ASes).
	Flows []Flow
	// TailBytes is the volume to long-tail self-hosted destinations
	// (counted in TotalBytes, PerOwner, ASLoad, LinkLoad but not
	// PerService).
	TailBytes float64
	// TotalBytes is the world's daily traffic volume.
	TotalBytes float64

	// ASLoadDense is ASLoad indexed by the topology's dense AS index,
	// and LinkLoadDense is LinkLoad indexed by Links' dense link ID —
	// the allocation-free views hot analyses should prefer over the
	// map forms above.
	ASLoadDense   []float64
	LinkLoadDense []float64
	// Links is the dense link index LinkLoadDense is keyed by.
	Links *topology.LinkIndex
}

// matrixShards is the number of client-AS shards the build fans out. It is
// a fixed constant — NOT tied to GOMAXPROCS — so the shard boundaries and
// the left-to-right merge order (and therefore every floating-point sum)
// are identical no matter how many workers execute the shards.
const matrixShards = 32

// shardAcc is one shard's private accumulator: dense slices indexed by the
// topology's AS/link indices, so the per-flow hot path touches no maps and
// allocates nothing.
type shardAcc struct {
	perService     []float64
	perOwner       []float64 // by dense AS index
	clientASBytes  []float64 // by dense AS index
	asLoad         []float64 // by dense AS index
	refCDNByAS     []float64 // by dense AS index
	linkLoad       []float64 // by dense link ID
	refCDNByPrefix map[topology.PrefixID]float64
	flows          []Flow
	tailBytes      float64
	totalBytes     float64
	pathBuf        []int32 // reusable AppendIndexPath scratch
}

func newShardAcc(nSvc, nAS, nLink int) *shardAcc {
	return &shardAcc{
		perService:     make([]float64, nSvc),
		perOwner:       make([]float64, nAS),
		clientASBytes:  make([]float64, nAS),
		asLoad:         make([]float64, nAS),
		refCDNByAS:     make([]float64, nAS),
		linkLoad:       make([]float64, nLink),
		refCDNByPrefix: map[topology.PrefixID]float64{},
	}
}

// mergeFrom folds src into dst. Called in ascending shard order, so the
// summation order per cell is a fixed left fold over shards.
func (dst *shardAcc) mergeFrom(src *shardAcc) {
	addSlice(dst.perService, src.perService)
	addSlice(dst.perOwner, src.perOwner)
	addSlice(dst.clientASBytes, src.clientASBytes)
	addSlice(dst.asLoad, src.asLoad)
	addSlice(dst.refCDNByAS, src.refCDNByAS)
	addSlice(dst.linkLoad, src.linkLoad)
	for p, b := range src.refCDNByPrefix {
		dst.refCDNByPrefix[p] += b
	}
	dst.tailBytes += src.tailBytes
	dst.totalBytes += src.totalBytes
}

func addSlice(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// BuildMatrix materializes the ground truth for one average day, using one
// worker per available CPU.
func (m *Model) BuildMatrix() *Matrix { return m.BuildMatrixWorkers(0) }

// BuildMatrixWorkers is BuildMatrix with an explicit worker count
// (<= 0 means GOMAXPROCS). Client ASes are partitioned into matrixShards
// contiguous dense-index ranges; workers claim shards, accumulate into
// private dense partials, and the partials are merged in shard order — so
// the result is byte-identical for a given seed regardless of worker count.
func (m *Model) BuildMatrixWorkers(workers int) *Matrix {
	top := m.Top
	asns := top.ASNs()
	li := top.LinkIndex() // built before fan-out; lazy build is not thread-safe
	n := len(asns)
	nSvc := len(m.Cat.Services)

	// Tail destinations: every enterprise and academic AS self-hosts a
	// little content.
	var tailHosts []topology.ASN
	tailHosts = append(tailHosts, top.ASesOfType(topology.Enterprise)...)
	tailHosts = append(tailHosts, top.ASesOfType(topology.Academic)...)

	// Hoist the owner-ASN → dense-index lookups out of the per-AS loop.
	ownerIdx := make([]int32, nSvc)
	for i, svc := range m.Cat.Services {
		oi, _ := top.Index(svc.Owner)
		ownerIdx[i] = int32(oi)
	}

	shards := matrixShards
	if shards > n {
		shards = n
	}
	root := obs.StartSpan("traffic.build_matrix", 0).
		SetAttrInt("client_ases", int64(n)).SetAttrInt("shards", int64(shards))
	accs := make([]*shardAcc, shards)
	if shards > 0 {
		per := (n + shards - 1) / shards
		parallel.ForEach(shards, workers, func(s int) {
			sp := root.Child("shard", 0).SetOrder(s).SetAttrInt("shard", int64(s))
			lo, hi := s*per, (s+1)*per
			if hi > n {
				hi = n
			}
			acc := newShardAcc(nSvc, n, li.NumLinks())
			for ci := lo; ci < hi; ci++ {
				m.accumulateClientAS(acc, li, ci, asns[ci], ownerIdx, tailHosts)
			}
			accs[s] = acc
			sp.SetAttrInt("flows", int64(len(acc.flows))).End(0)
		})
	}

	merge := root.Child("merge", 0).SetOrder(shards)
	var total *shardAcc
	if shards > 0 {
		total = accs[0]
		for s := 1; s < shards; s++ {
			total.mergeFrom(accs[s])
		}
	} else {
		total = newShardAcc(nSvc, 0, 0)
	}
	merge.SetAttrInt("shards_merged", int64(shards)).End(0)

	mx := &Matrix{
		PerService:     total.perService,
		PerOwner:       map[topology.ASN]float64{},
		ClientASBytes:  map[topology.ASN]float64{},
		ASLoad:         map[topology.ASN]float64{},
		LinkLoad:       map[topology.LinkKey]float64{},
		RefCDNByPrefix: total.refCDNByPrefix,
		RefCDNByAS:     map[topology.ASN]float64{},
		TailBytes:      total.tailBytes,
		TotalBytes:     total.totalBytes,
		ASLoadDense:    total.asLoad,
		LinkLoadDense:  total.linkLoad,
		Links:          li,
	}
	// Materialize the map views from the dense forms (zero cells stay
	// absent, matching the serial build's sparse maps).
	for i, asn := range asns {
		if v := total.perOwner[i]; v != 0 {
			mx.PerOwner[asn] = v
		}
		if v := total.clientASBytes[i]; v != 0 {
			mx.ClientASBytes[asn] = v
		}
		if v := total.asLoad[i]; v != 0 {
			mx.ASLoad[asn] = v
		}
		if v := total.refCDNByAS[i]; v != 0 {
			mx.RefCDNByAS[asn] = v
		}
	}
	for id, v := range total.linkLoad {
		if v != 0 {
			mx.LinkLoad[li.Key(int32(id))] = v
		}
	}
	nFlows := 0
	for _, acc := range accs {
		nFlows += len(acc.flows)
	}
	mx.Flows = make([]Flow, 0, nFlows)
	for _, acc := range accs {
		mx.Flows = append(mx.Flows, acc.flows...)
	}
	obs.C("itm_traffic_matrix_builds_total", "Ground-truth traffic-matrix builds.").Inc()
	obs.C("itm_traffic_matrix_shards_total", "Matrix build shards accumulated (fixed layout, never worker-count dependent).").Add(uint64(shards))
	obs.C("itm_traffic_flows_total", "Aggregated client-to-site flows materialized across all builds.").Add(uint64(len(mx.Flows)))
	obs.G("itm_traffic_total_bytes", "Daily traffic volume of the most recently built matrix, in bytes.").Set(mx.TotalBytes)
	root.SetAttrInt("flows", int64(len(mx.Flows))).End(0)
	return mx
}

// accumulateClientAS adds one client AS's demand — catalog services plus
// the self-hosted long tail — into the shard accumulator. ci is the
// client's dense index and clientAS == asns[ci].
func (m *Model) accumulateClientAS(acc *shardAcc, li *topology.LinkIndex,
	ci int, clientAS topology.ASN, ownerIdx []int32, tailHosts []topology.ASN) {
	a := m.Top.ASes[clientAS]
	if m.Users.ASUsers(clientAS) == 0 {
		return
	}
	for _, svc := range m.Cat.Services {
		// Per-AS volume: sum of the pure per-prefix function.
		bytes := 0.0
		for _, p := range a.Prefixes {
			b := m.DailyBytes(p, svc)
			bytes += b
			if svc.Owner == m.Cat.ReferenceCDN && b > 0 {
				acc.refCDNByPrefix[p] += b
			}
		}
		if bytes == 0 {
			continue
		}
		if svc.Owner == m.Cat.ReferenceCDN {
			acc.refCDNByAS[ci] += bytes
		}
		acc.perService[svc.ID] += bytes
		acc.perOwner[ownerIdx[svc.ID]] += bytes
		acc.clientASBytes[ci] += bytes
		acc.totalBytes += bytes
		for _, ss := range m.Assign(svc, clientAS) {
			fb := bytes * ss.Share
			if fb == 0 {
				continue
			}
			hops := m.routeFlow(acc, li, ci, clientAS, ss.Site.HostAS, fb)
			acc.flows = append(acc.flows, Flow{
				ClientAS: clientAS, Svc: svc.ID, Site: ss.Site,
				Bytes: fb, Hops: hops,
			})
		}
	}
	// Long-tail demand to self-hosted destinations.
	catBytes := acc.clientASBytes[ci]
	if catBytes == 0 || len(tailHosts) == 0 || m.TailShare <= 0 {
		return
	}
	tailBytes := catBytes * m.TailShare / (1 - m.TailShare)
	weights := make([]float64, m.TailFanout)
	var wsum float64
	for i := range weights {
		weights[i] = randx.HashLognormal(0, 0.8, m.seed, 0x7a11, uint64(clientAS), uint64(i))
		wsum += weights[i]
	}
	for i := 0; i < m.TailFanout; i++ {
		host := tailHosts[randx.Hash64(m.seed, 0x7a12, uint64(clientAS), uint64(i))%uint64(len(tailHosts))]
		b := tailBytes * weights[i] / wsum
		m.routeFlow(acc, li, ci, clientAS, host, b)
		hostIdx, _ := m.Top.Index(host)
		acc.perOwner[hostIdx] += b
		acc.clientASBytes[ci] += b
		acc.tailBytes += b
		acc.totalBytes += b
	}
}

// routeFlow adds a flow's bytes to the AS and link loads along its BGP
// path and returns the hop count (-1 if unrouted). The path is streamed
// from the RIB's NextHop array into a reusable dense-index buffer — no
// per-flow allocation.
func (m *Model) routeFlow(acc *shardAcc, li *topology.LinkIndex,
	fromIdx int, from, to topology.ASN, bytes float64) int {
	if from == to {
		acc.asLoad[fromIdx] += bytes
		return 0
	}
	rib := m.Paths.RIBFor(to)
	if rib == nil {
		return -1
	}
	buf, ok := rib.AppendIndexPath(acc.pathBuf[:0], fromIdx)
	acc.pathBuf = buf
	if !ok {
		return -1
	}
	prev := int(buf[0])
	acc.asLoad[prev] += bytes
	for _, v := range buf[1:] {
		i := int(v)
		acc.asLoad[i] += bytes
		acc.linkLoad[li.IDBetween(prev, i)] += bytes
		prev = i
	}
	return len(buf) - 1
}

// TopOwners returns service owners by descending traffic share.
func (mx *Matrix) TopOwners() []OwnerShare {
	out := make([]OwnerShare, 0, len(mx.PerOwner))
	for asn, b := range mx.PerOwner {
		out = append(out, OwnerShare{ASN: asn, Bytes: b, Share: b / mx.TotalBytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// OwnerShare is one service owner's traffic share.
type OwnerShare struct {
	ASN   topology.ASN
	Bytes float64
	Share float64
}

// CumulativeTopShare returns the traffic share of the top-k owners.
func (mx *Matrix) CumulativeTopShare(k int) float64 {
	owners := mx.TopOwners()
	if k > len(owners) {
		k = len(owners)
	}
	total := 0.0
	for _, o := range owners[:k] {
		total += o.Share
	}
	return total
}
