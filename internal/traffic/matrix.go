package traffic

import (
	"sort"

	"itmap/internal/randx"
	"itmap/internal/services"
	"itmap/internal/topology"
)

// Flow is one aggregated ground-truth flow: all traffic from one client AS
// to one serving site for one service.
type Flow struct {
	ClientAS topology.ASN
	Svc      services.ServiceID
	Site     *services.Site
	Bytes    float64
	// Hops is the AS-path length from the client AS to the AS hosting
	// the serving site (0 = served inside the client's own network).
	Hops int
}

// Matrix is the materialized ground-truth traffic map the ITM tries to
// estimate: who talks to whom, how much, and over which links.
type Matrix struct {
	// PerService indexes daily bytes by ServiceID.
	PerService []float64
	// PerOwner is daily bytes by service-owner AS.
	PerOwner map[topology.ASN]float64
	// ClientASBytes is daily bytes by client AS.
	ClientASBytes map[topology.ASN]float64
	// ASLoad is the daily bytes carried by (originating at, terminating
	// at, or transiting) each AS.
	ASLoad map[topology.ASN]float64
	// LinkLoad is daily bytes per inter-AS link.
	LinkLoad map[topology.LinkKey]float64
	// RefCDNByPrefix is the reference CDN's "server log": daily bytes
	// per client prefix — the validation ground truth of §3.1.2.
	RefCDNByPrefix map[topology.PrefixID]float64
	// RefCDNByAS aggregates the server log by client AS.
	RefCDNByAS map[topology.ASN]float64
	// Flows lists every aggregated flow.
	Flows []Flow
	// TailBytes is the volume to long-tail self-hosted destinations
	// (counted in TotalBytes, PerOwner, ASLoad, LinkLoad but not
	// PerService).
	TailBytes float64
	// TotalBytes is the world's daily traffic volume.
	TotalBytes float64
}

// BuildMatrix materializes the ground truth for one average day.
func (m *Model) BuildMatrix() *Matrix {
	top := m.Top
	mx := &Matrix{
		PerService:     make([]float64, len(m.Cat.Services)),
		PerOwner:       map[topology.ASN]float64{},
		ClientASBytes:  map[topology.ASN]float64{},
		ASLoad:         map[topology.ASN]float64{},
		LinkLoad:       map[topology.LinkKey]float64{},
		RefCDNByPrefix: map[topology.PrefixID]float64{},
		RefCDNByAS:     map[topology.ASN]float64{},
	}
	// Tail destinations: every enterprise and academic AS self-hosts a
	// little content.
	var tailHosts []topology.ASN
	tailHosts = append(tailHosts, top.ASesOfType(topology.Enterprise)...)
	tailHosts = append(tailHosts, top.ASesOfType(topology.Academic)...)

	for _, clientAS := range top.ASNs() {
		a := top.ASes[clientAS]
		if m.Users.ASUsers(clientAS) == 0 {
			continue
		}
		for _, svc := range m.Cat.Services {
			// Per-AS volume: sum of the pure per-prefix function.
			bytes := 0.0
			for _, p := range a.Prefixes {
				b := m.DailyBytes(p, svc)
				bytes += b
				if svc.Owner == m.Cat.ReferenceCDN && b > 0 {
					mx.RefCDNByPrefix[p] += b
				}
			}
			if bytes == 0 {
				continue
			}
			if svc.Owner == m.Cat.ReferenceCDN {
				mx.RefCDNByAS[clientAS] += bytes
			}
			mx.PerService[svc.ID] += bytes
			mx.PerOwner[svc.Owner] += bytes
			mx.ClientASBytes[clientAS] += bytes
			mx.TotalBytes += bytes
			for _, ss := range m.Assign(svc, clientAS) {
				fb := bytes * ss.Share
				if fb == 0 {
					continue
				}
				hops := m.routeFlow(mx, clientAS, ss.Site.HostAS, fb)
				mx.Flows = append(mx.Flows, Flow{
					ClientAS: clientAS, Svc: svc.ID, Site: ss.Site,
					Bytes: fb, Hops: hops,
				})
			}
		}
		// Long-tail demand to self-hosted destinations.
		catBytes := mx.ClientASBytes[clientAS]
		if catBytes == 0 || len(tailHosts) == 0 || m.TailShare <= 0 {
			continue
		}
		tailBytes := catBytes * m.TailShare / (1 - m.TailShare)
		weights := make([]float64, m.TailFanout)
		var wsum float64
		for i := range weights {
			weights[i] = randx.HashLognormal(0, 0.8, m.seed, 0x7a11, uint64(clientAS), uint64(i))
			wsum += weights[i]
		}
		for i := 0; i < m.TailFanout; i++ {
			host := tailHosts[randx.Hash64(m.seed, 0x7a12, uint64(clientAS), uint64(i))%uint64(len(tailHosts))]
			b := tailBytes * weights[i] / wsum
			m.routeFlow(mx, clientAS, host, b)
			mx.PerOwner[host] += b
			mx.ClientASBytes[clientAS] += b
			mx.TailBytes += b
			mx.TotalBytes += b
		}
	}
	return mx
}

// routeFlow adds a flow's bytes to the AS and link loads along its BGP path
// and returns the hop count (-1 if unrouted).
func (m *Model) routeFlow(mx *Matrix, from, to topology.ASN, bytes float64) int {
	if from == to {
		mx.ASLoad[from] += bytes
		return 0
	}
	path := m.Paths.Path(from, to)
	if path == nil {
		return -1
	}
	for i, asn := range path {
		mx.ASLoad[asn] += bytes
		if i+1 < len(path) {
			mx.LinkLoad[topology.MakeLinkKey(asn, path[i+1])] += bytes
		}
	}
	return len(path) - 1
}

// TopOwners returns service owners by descending traffic share.
func (mx *Matrix) TopOwners() []OwnerShare {
	var out []OwnerShare
	for asn, b := range mx.PerOwner {
		out = append(out, OwnerShare{ASN: asn, Bytes: b, Share: b / mx.TotalBytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// OwnerShare is one service owner's traffic share.
type OwnerShare struct {
	ASN   topology.ASN
	Bytes float64
	Share float64
}

// CumulativeTopShare returns the traffic share of the top-k owners.
func (mx *Matrix) CumulativeTopShare(k int) float64 {
	owners := mx.TopOwners()
	if k > len(owners) {
		k = len(owners)
	}
	total := 0.0
	for _, o := range owners[:k] {
		total += o.Share
	}
	return total
}
