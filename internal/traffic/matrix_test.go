package traffic

import (
	"runtime"
	"sort"
	"testing"

	"itmap/internal/topology"
)

// canonFlows returns a canonically sorted copy of a flow list so builds
// can be compared independent of shard concatenation order.
func canonFlows(fs []Flow) []Flow {
	out := append([]Flow(nil), fs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ClientAS != b.ClientAS {
			return a.ClientAS < b.ClientAS
		}
		if a.Svc != b.Svc {
			return a.Svc < b.Svc
		}
		if a.Site != b.Site {
			return a.Site.Prefix < b.Site.Prefix
		}
		return a.Bytes < b.Bytes
	})
	return out
}

func sameASMap(t *testing.T, name string, a, b map[topology.ASN]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d entries", name, len(a), len(b))
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			t.Fatalf("%s[%v]: %v vs %v", name, k, va, vb)
		}
	}
}

// TestBuildMatrixDeterministicAcrossWorkers guards the shard-and-merge
// pipeline: the matrix must be bit-identical whether it is built by one
// worker or many (shard boundaries and merge order are fixed, so no
// float is ever summed in a schedule-dependent order).
func TestBuildMatrixDeterministicAcrossWorkers(t *testing.T) {
	m := setup(t, 11)
	serial := m.BuildMatrixWorkers(1)
	wide := m.BuildMatrixWorkers(8)

	// Also exercise the default (GOMAXPROCS-driven) entry point under a
	// restricted scheduler, as a real single-core run would hit it.
	old := runtime.GOMAXPROCS(1)
	one := m.BuildMatrix()
	runtime.GOMAXPROCS(old)

	for _, mx := range []*Matrix{wide, one} {
		if mx.TotalBytes != serial.TotalBytes {
			t.Fatalf("TotalBytes differ: %v vs %v", mx.TotalBytes, serial.TotalBytes)
		}
		if mx.TailBytes != serial.TailBytes {
			t.Fatalf("TailBytes differ: %v vs %v", mx.TailBytes, serial.TailBytes)
		}
		for i, v := range serial.PerService {
			if mx.PerService[i] != v {
				t.Fatalf("PerService[%d]: %v vs %v", i, mx.PerService[i], v)
			}
		}
		sameASMap(t, "ASLoad", serial.ASLoad, mx.ASLoad)
		sameASMap(t, "PerOwner", serial.PerOwner, mx.PerOwner)
		sameASMap(t, "ClientASBytes", serial.ClientASBytes, mx.ClientASBytes)
		sameASMap(t, "RefCDNByAS", serial.RefCDNByAS, mx.RefCDNByAS)
		if len(serial.LinkLoad) != len(mx.LinkLoad) {
			t.Fatalf("LinkLoad sizes: %d vs %d", len(serial.LinkLoad), len(mx.LinkLoad))
		}
		for k, v := range serial.LinkLoad {
			if mx.LinkLoad[k] != v {
				t.Fatalf("LinkLoad[%v]: %v vs %v", k, mx.LinkLoad[k], v)
			}
		}
		fa, fb := canonFlows(serial.Flows), canonFlows(mx.Flows)
		if len(fa) != len(fb) {
			t.Fatalf("flow counts: %d vs %d", len(fa), len(fb))
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("flow %d differs: %+v vs %+v", i, fa[i], fb[i])
			}
		}
	}
}

// TestMatrixDenseViewsMatchMaps checks the dense accumulators the build
// exposes agree with the exported map views.
func TestMatrixDenseViewsMatchMaps(t *testing.T) {
	m := setup(t, 12)
	mx := m.BuildMatrix()
	asns := m.Top.ASNs()
	for i, asn := range asns {
		if mx.ASLoadDense[i] != mx.ASLoad[asn] {
			t.Fatalf("ASLoadDense[%d]=%v, ASLoad[%v]=%v", i, mx.ASLoadDense[i], asn, mx.ASLoad[asn])
		}
	}
	if mx.Links.NumLinks() != m.Top.NumLinks() {
		t.Fatalf("link index has %d links, topology %d", mx.Links.NumLinks(), m.Top.NumLinks())
	}
	for id, v := range mx.LinkLoadDense {
		if v != mx.LinkLoad[mx.Links.Key(int32(id))] {
			t.Fatalf("LinkLoadDense[%d]=%v, map=%v", id, v, mx.LinkLoad[mx.Links.Key(int32(id))])
		}
	}
}

// TestCumulativeTopShareOverflowK: k beyond the owner count must clamp to
// the full share, not panic or extrapolate.
func TestCumulativeTopShareOverflowK(t *testing.T) {
	m := setup(t, 13)
	mx := m.BuildMatrix()
	all := mx.CumulativeTopShare(len(mx.PerOwner))
	over := mx.CumulativeTopShare(len(mx.PerOwner) + 1000)
	if over != all {
		t.Fatalf("overflow k changed the share: %v vs %v", over, all)
	}
	if over < 0.999 || over > 1.001 {
		t.Fatalf("total share %v, want ~1 (tail + catalog cover everything)", over)
	}
}
