package traffic

import (
	"math"
	"testing"

	"itmap/internal/bgp"
	"itmap/internal/dnssim"
	"itmap/internal/randx"
	"itmap/internal/services"
	"itmap/internal/simtime"
	"itmap/internal/topology"
	"itmap/internal/users"
)

func setup(t testing.TB, seed int64) *Model {
	t.Helper()
	top := topology.Generate(topology.TinyGenConfig(seed))
	rng := randx.New(seed)
	um := users.Build(top, users.DefaultConfig(), rng.Fork())
	cat := services.Build(top, services.DefaultConfig(), rng.Fork())
	top.Freeze()
	ap := bgp.ComputeAll(top)
	pr := dnssim.NewPublicResolver(top, cat, top.ASesOfType(topology.Hypergiant)[0], seed)
	return New(top, um, cat, ap, pr, seed)
}

func TestDemandPure(t *testing.T) {
	m := setup(t, 1)
	p := m.Users.UserPrefixes()[0]
	svc := m.Cat.Top(0)
	a := m.DailyBytes(p, svc)
	b := m.DailyBytes(p, svc)
	if a != b {
		t.Fatal("DailyBytes not pure")
	}
	if a < 0 {
		t.Fatal("negative demand")
	}
}

func TestDemandScalesWithUsersAndRank(t *testing.T) {
	m := setup(t, 2)
	// Aggregate demand across many prefixes to wash out jitter.
	top1, top20 := 0.0, 0.0
	s1 := m.Cat.Top(0)
	s20 := m.Cat.Top(19)
	for _, p := range m.Users.UserPrefixes() {
		top1 += m.DailyBytes(p, s1) / s1.BytesPerQuery
		top20 += m.DailyBytes(p, s20) / s20.BytesPerQuery
	}
	if top1 <= top20 {
		t.Errorf("rank-1 queries (%.0f) should exceed rank-20 (%.0f)", top1, top20)
	}
}

func TestQueryRateDiurnal(t *testing.T) {
	m := setup(t, 3)
	svc := m.Cat.Top(0)
	if !svc.ECS {
		for _, s := range m.Cat.Services {
			if s.ECS && s.Kind != services.Anycast {
				svc = s
				break
			}
		}
	}
	// Pick a busy prefix.
	var p topology.PrefixID
	for _, cand := range m.Users.UserPrefixes() {
		if m.QueriesPerDay(cand, svc) > 0 {
			p = cand
			break
		}
	}
	// Rate integrates to roughly daily count × adoption share.
	city := m.Top.PrefixCity[p]
	want := m.QueriesPerDay(p, svc) * m.PR.AdoptionShare(city.Country)
	got := 0.0
	const step = 0.25
	simtime.Range(0, 24, step, func(tm simtime.Time) {
		got += m.PublicResolverQueryRate(svc.Domain, p, tm) * step
	})
	if math.Abs(got-want) > 0.02*want {
		t.Errorf("integrated rate %.1f vs daily %.1f", got, want)
	}
	// And it varies over the day.
	lo, hi := math.Inf(1), 0.0
	simtime.Range(0, 24, 1, func(tm simtime.Time) {
		r := m.PublicResolverQueryRate(svc.Domain, p, tm)
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	})
	if hi <= lo*1.5 {
		t.Errorf("rate not diurnal: lo=%f hi=%f", lo, hi)
	}
}

func TestChromiumRootQueries(t *testing.T) {
	m := setup(t, 4)
	entries := m.ChromiumRootQueries(0)
	if len(entries) == 0 {
		t.Fatal("no root queries")
	}
	var viaPublic, viaISP float64
	for _, e := range entries {
		if e.Queries <= 0 {
			t.Fatalf("non-positive query count: %+v", e)
		}
		if e.ResolverASN == m.PR.Owner {
			viaPublic += e.Queries
		} else {
			viaISP += e.Queries
			if m.Users.ASUsers(e.ResolverASN) == 0 &&
				m.Top.ASes[e.ResolverASN].Type != topology.Transit {
				t.Errorf("AS %d in root logs is neither user-hosting nor a provider resolver", e.ResolverASN)
			}
		}
	}
	if viaPublic <= 0 {
		t.Error("no public-resolver egress in root logs")
	}
	share := viaPublic / (viaPublic + viaISP)
	if share < 0.15 || share > 0.55 {
		t.Errorf("public resolver share of root queries %.2f, want ~0.3", share)
	}
	// Day-to-day jitter is small but non-zero.
	e2 := m.ChromiumRootQueries(1)
	if len(e2) != len(entries) {
		t.Fatal("entry counts differ across days")
	}
	if e2[0].Queries == entries[0].Queries {
		t.Error("no day jitter")
	}
}

func TestAssignConsistency(t *testing.T) {
	m := setup(t, 5)
	for _, svc := range m.Cat.Services[:10] {
		for _, e := range m.Top.ASesOfType(topology.Eyeball) {
			shares := m.Assign(svc, e)
			if len(shares) == 0 {
				t.Fatalf("no assignment for svc %d client %d", svc.ID, e)
			}
			total := 0.0
			for _, ss := range shares {
				if ss.Site.Owner != svc.Owner {
					t.Fatalf("assigned to foreign site")
				}
				total += ss.Share
			}
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("shares sum to %f", total)
			}
		}
	}
}

func TestAssignOffNetPreferred(t *testing.T) {
	m := setup(t, 6)
	// Find an ECS DNS service and a client hosting its owner's off-net.
	for _, svc := range m.Cat.Services {
		if svc.Kind != services.DNSUnicast || !svc.ECS {
			continue
		}
		d := m.Cat.Deployments[svc.Owner]
		for host := range d.OffNetByHost {
			shares := m.Assign(svc, host)
			if len(shares) != 1 || !shares[0].Site.OffNet() || shares[0].Site.HostAS != host {
				t.Fatalf("client %d not served by its off-net: %+v", host, shares)
			}
			return
		}
	}
	t.Skip("no ECS service with off-nets")
}

func TestAnycastAssignment(t *testing.T) {
	m := setup(t, 7)
	for _, svc := range m.Cat.Services {
		if svc.Kind != services.Anycast {
			continue
		}
		for _, e := range m.Top.ASesOfType(topology.Eyeball)[:10] {
			shares := m.Assign(svc, e)
			if len(shares) != 1 {
				t.Fatalf("anycast split: %+v", shares)
			}
			if shares[0].Site.OffNet() {
				t.Fatal("anycast landed off-net")
			}
		}
		return
	}
	t.Skip("no anycast service")
}

func TestMatrixLinkLoadsOnRealLinks(t *testing.T) {
	m := setup(t, 8)
	mx := m.BuildMatrix()
	for lk, load := range mx.LinkLoad {
		if load <= 0 {
			t.Fatalf("non-positive link load on %v", lk)
		}
		if !m.Top.HasLink(lk.Lo, lk.Hi) {
			t.Fatalf("load on nonexistent link %v", lk)
		}
	}
	// Hypergiant PNIs should carry substantial load (the flattening).
	var pniLoad, totalLoad float64
	for lk, load := range mx.LinkLoad {
		totalLoad += load
		ta, tb := m.Top.ASes[lk.Lo].Type, m.Top.ASes[lk.Hi].Type
		if ta == topology.Hypergiant || tb == topology.Hypergiant {
			pniLoad += load
		}
	}
	if pniLoad < 0.2*totalLoad {
		t.Errorf("hypergiant links carry %.0f%% of load; expected dominant", 100*pniLoad/totalLoad)
	}
}

func TestUsageDropoutCreatesZeroDemand(t *testing.T) {
	m := setup(t, 9)
	// Small enterprise prefixes should skip at least one service.
	skipped := false
	for _, asn := range m.Top.ASesOfType(topology.Enterprise) {
		p := m.Top.ASes[asn].Prefixes[0]
		for _, svc := range m.Cat.Services {
			if m.Users.UsersIn(p) > 0 && m.QueriesPerDay(p, svc) == 0 {
				skipped = true
				break
			}
		}
		if skipped {
			break
		}
	}
	if !skipped {
		t.Error("no (small prefix, service) pair with zero usage; FP mechanism dead")
	}
}
