// Package users models where Internet users are and how active they are:
// the ground truth the paper's ITM component 1 ("Where are users? What are
// their relative activity levels?") tries to estimate. Users live in eyeball
// prefixes (plus small office populations in enterprise/academic prefixes);
// activity follows a diurnal curve phased by the prefix's country timezone.
package users

import (
	"math"

	"itmap/internal/geo"
	"itmap/internal/order"
	"itmap/internal/randx"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

// Model holds per-prefix user populations and activity parameters.
type Model struct {
	top *topology.Topology

	// PrefixUsers is the number of people using each /24. Prefixes
	// absent from the map host no users (infrastructure, server space).
	PrefixUsers map[topology.PrefixID]float64

	// asUsers caches the per-AS totals.
	asUsers map[topology.ASN]float64
}

// Config tunes the user model.
type Config struct {
	// EnterpriseOfficeUsers is the mean number of office users in an
	// enterprise prefix. They browse (so they appear in DNS) but are a
	// tiny share of activity.
	EnterpriseOfficeUsers float64
	// AcademicUsers is the mean user population of an academic prefix.
	AcademicUsers float64
	// Jitter is the lognormal sigma applied to per-prefix populations.
	Jitter float64
}

// DefaultConfig returns the standard user-model parameters.
func DefaultConfig() Config {
	return Config{EnterpriseOfficeUsers: 60, AcademicUsers: 300, Jitter: 0.6}
}

// Build distributes each eyeball AS's subscribers over its prefixes with
// lognormal jitter and adds small office/campus populations elsewhere.
func Build(top *topology.Topology, cfg Config, rng *randx.Source) *Model {
	m := &Model{
		top:         top,
		PrefixUsers: make(map[topology.PrefixID]float64),
		asUsers:     make(map[topology.ASN]float64),
	}
	for _, asn := range top.ASNs() {
		a := top.ASes[asn]
		switch a.Type {
		case topology.Eyeball:
			if len(a.Prefixes) == 0 {
				continue
			}
			weights := make([]float64, len(a.Prefixes))
			total := 0.0
			for i := range weights {
				weights[i] = rng.Lognormal(0, cfg.Jitter)
				total += weights[i]
			}
			subs := a.SubscribersK * 1000
			for i, p := range a.Prefixes {
				u := subs * weights[i] / total
				m.PrefixUsers[p] = u
				m.asUsers[asn] += u
			}
		case topology.Enterprise:
			for _, p := range a.Prefixes {
				u := cfg.EnterpriseOfficeUsers * rng.Lognormal(0, cfg.Jitter)
				m.PrefixUsers[p] = u
				m.asUsers[asn] += u
			}
		case topology.Academic:
			for _, p := range a.Prefixes {
				u := cfg.AcademicUsers * rng.Lognormal(0, cfg.Jitter)
				m.PrefixUsers[p] = u
				m.asUsers[asn] += u
			}
		}
	}
	return m
}

// UsersIn returns the user population of a prefix (0 for infrastructure).
func (m *Model) UsersIn(p topology.PrefixID) float64 { return m.PrefixUsers[p] }

// ASUsers returns the total users in an AS.
func (m *Model) ASUsers(asn topology.ASN) float64 { return m.asUsers[asn] }

// TotalUsers returns the world user population.
func (m *Model) TotalUsers() float64 {
	return order.SumValues(m.asUsers)
}

// UserPrefixes returns all prefixes with non-zero users, in PrefixID order.
func (m *Model) UserPrefixes() []topology.PrefixID {
	var out []topology.PrefixID
	for _, p := range m.top.AllPrefixes() {
		if m.PrefixUsers[p] > 0 {
			out = append(out, p)
		}
	}
	return out
}

// DiurnalFactor returns the activity multiplier at a local hour-of-day:
// 1.0 at the evening peak (20:00), ~0.3 at the 08:00-12h-opposite trough.
// Router traffic, DNS query rates, and demand all follow this curve, which
// is what makes IP-ID velocities diurnal (§3.1.3).
func DiurnalFactor(localHour float64) float64 {
	s := (1 + math.Cos(2*math.Pi*(localHour-20)/24)) / 2
	return 0.3 + 0.7*s
}

// ActivityAt returns the instantaneous activity level (active users) of a
// prefix at simulated time t, phased by the prefix's country timezone.
func (m *Model) ActivityAt(p topology.PrefixID, t simtime.Time) float64 {
	u := m.PrefixUsers[p]
	if u == 0 {
		return 0
	}
	city := m.top.PrefixCity[p]
	c, err := geo.CountryByCode(city.Country)
	if err != nil {
		return u * DiurnalFactor(t.UTCHour())
	}
	return u * DiurnalFactor(geo.LocalHourAt(c, t.UTCHour()))
}

// CountryUsers sums users over each country code.
func (m *Model) CountryUsers() map[string]float64 {
	out := map[string]float64{}
	for _, asn := range m.top.ASNs() {
		a := m.top.ASes[asn]
		if a.Country == "ZZ" {
			continue
		}
		out[a.Country] += m.asUsers[asn]
	}
	return out
}
