package users

import (
	"math"
	"testing"

	"itmap/internal/randx"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

func build(t testing.TB) (*topology.Topology, *Model) {
	t.Helper()
	top := topology.Generate(topology.TinyGenConfig(1))
	return top, Build(top, DefaultConfig(), randx.New(2))
}

func TestUsersMatchSubscribers(t *testing.T) {
	top, m := build(t)
	for _, asn := range top.ASesOfType(topology.Eyeball) {
		a := top.ASes[asn]
		want := a.SubscribersK * 1000
		got := m.ASUsers(asn)
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("AS %d users %.0f != subscribers %.0f", asn, got, want)
		}
		for _, p := range a.Prefixes {
			if m.UsersIn(p) <= 0 {
				t.Fatalf("eyeball prefix %v has no users", p)
			}
		}
	}
}

func TestInfrastructureHasNoUsers(t *testing.T) {
	top, m := build(t)
	for _, ty := range []topology.ASType{topology.Tier1, topology.Hypergiant, topology.Cloud} {
		for _, asn := range top.ASesOfType(ty) {
			if u := m.ASUsers(asn); u != 0 {
				t.Fatalf("%v AS %d has %f users", ty, asn, u)
			}
		}
	}
}

func TestEnterprisesSmall(t *testing.T) {
	top, m := build(t)
	var entTotal, eyeballTotal float64
	for _, asn := range top.ASesOfType(topology.Enterprise) {
		entTotal += m.ASUsers(asn)
	}
	for _, asn := range top.ASesOfType(topology.Eyeball) {
		eyeballTotal += m.ASUsers(asn)
	}
	if entTotal <= 0 {
		t.Fatal("enterprises should host some office users")
	}
	if entTotal > 0.05*eyeballTotal {
		t.Errorf("enterprise users (%.0f) not small vs eyeballs (%.0f)", entTotal, eyeballTotal)
	}
}

func TestDiurnalFactorShape(t *testing.T) {
	peak := DiurnalFactor(20)
	trough := DiurnalFactor(8)
	if math.Abs(peak-1.0) > 1e-9 {
		t.Errorf("peak = %f, want 1", peak)
	}
	if math.Abs(trough-0.3) > 1e-9 {
		t.Errorf("trough = %f, want 0.3", trough)
	}
	// Mean over the day is 0.65.
	total := 0.0
	n := 2400
	for i := 0; i < n; i++ {
		total += DiurnalFactor(24 * float64(i) / float64(n))
	}
	if mean := total / float64(n); math.Abs(mean-0.65) > 0.001 {
		t.Errorf("diurnal mean = %f, want 0.65", mean)
	}
}

func TestActivityPhasedByTimezone(t *testing.T) {
	top, m := build(t)
	// Find a Japanese prefix (UTC+9): peak activity at 11:00 UTC.
	var jp topology.PrefixID
	found := false
	for _, asn := range top.ASesOfType(topology.Eyeball) {
		a := top.ASes[asn]
		if a.Country == "JP" {
			jp = a.Prefixes[0]
			found = true
			break
		}
	}
	if !found {
		t.Skip("no JP eyeball in tiny world")
	}
	atPeak := m.ActivityAt(jp, simtime.Time(11))
	atTrough := m.ActivityAt(jp, simtime.Time(23))
	if atPeak <= atTrough {
		t.Errorf("JP activity at 11 UTC (%f) should exceed 23 UTC (%f)", atPeak, atTrough)
	}
	if math.Abs(atPeak-m.UsersIn(jp)) > 1e-6*atPeak {
		t.Errorf("peak activity %f != population %f", atPeak, m.UsersIn(jp))
	}
}

func TestUserPrefixesAndTotals(t *testing.T) {
	top, m := build(t)
	ps := m.UserPrefixes()
	if len(ps) == 0 {
		t.Fatal("no user prefixes")
	}
	total := 0.0
	for _, p := range ps {
		total += m.UsersIn(p)
	}
	if math.Abs(total-m.TotalUsers()) > 1e-6*total {
		t.Errorf("prefix sum %f != total %f", total, m.TotalUsers())
	}
	cu := m.CountryUsers()
	ctotal := 0.0
	for _, v := range cu {
		ctotal += v
	}
	if math.Abs(ctotal-total) > 1e-6*total {
		t.Errorf("country sum %f != total %f", ctotal, total)
	}
	_ = top
}
