package toplist

import (
	"math"
	"testing"

	"itmap/internal/world"
)

func TestListsRankPopularFirst(t *testing.T) {
	w := world.Build(world.Tiny(1))
	for _, provider := range []Provider{PanelProvider, ResolverProvider} {
		l := Generate(w.Traffic, provider, 0, 0)
		if len(l.Domains) < 20 {
			t.Fatalf("%s list too short: %d", provider, len(l.Domains))
		}
		// The true rank-1 service should place near the top.
		top := w.Cat.Top(0)
		if top.Kind.String() == "anycast" && provider == PanelProvider {
			continue
		}
		if r := l.Rank(top.Domain); r == 0 || r > 5 {
			t.Errorf("%s ranks the most popular service at %d", provider, r)
		}
	}
}

func TestPanelExcludesAnycast(t *testing.T) {
	w := world.Build(world.Tiny(2))
	l := Generate(w.Traffic, PanelProvider, 0, 0)
	for _, svc := range w.Cat.Services {
		if svc.Kind.String() == "anycast" && l.Rank(svc.Domain) != 0 {
			t.Errorf("panel list includes anycast service %s", svc.Domain)
		}
	}
	lr := Generate(w.Traffic, ResolverProvider, 0, 0)
	found := false
	for _, svc := range w.Cat.Services {
		if svc.Kind.String() == "anycast" && lr.Rank(svc.Domain) != 0 {
			found = true
		}
	}
	if !found {
		t.Error("resolver list should include anycast services")
	}
}

func TestChurnGrowsWithDepthAndNoise(t *testing.T) {
	w := world.Build(world.Tiny(3))
	p1 := Generate(w.Traffic, PanelProvider, 1, 0)
	p2 := Generate(w.Traffic, PanelProvider, 2, 0)
	r1 := Generate(w.Traffic, ResolverProvider, 1, 0)
	r2 := Generate(w.Traffic, ResolverProvider, 2, 0)
	// The [54] finding: deeper ranks churn more, and panel-style lists
	// churn more than resolver-style lists.
	churnTop5 := TopKChurn(p1, p2, 5)
	churnTop30 := TopKChurn(p1, p2, 30)
	if churnTop30 < churnTop5 {
		t.Errorf("deep churn %.2f < shallow churn %.2f", churnTop30, churnTop5)
	}
	if TopKChurn(r1, r2, 30) > churnTop30+0.05 {
		t.Errorf("resolver list churns more than panel list")
	}
	// Same-day lists are identical.
	if TopKChurn(p1, Generate(w.Traffic, PanelProvider, 1, 0), 30) != 0 {
		t.Error("same-day list not deterministic")
	}
}

func TestRankWeightingMisestimatesTraffic(t *testing.T) {
	w := world.Build(world.Tiny(4))
	mx := w.Traffic.BuildMatrix()
	truth := TrueByteShares(w.Traffic, mx)
	l := Generate(w.Traffic, ResolverProvider, 0, 0)
	err := ShareError(l.WeightBy(), truth)
	// The paper's point: rank position is a poor stand-in for traffic.
	// 1/rank weighting should be visibly wrong (video services carry
	// outsized bytes per query)...
	if err < 0.1 {
		t.Errorf("rank weighting suspiciously accurate: TV distance %.3f", err)
	}
	// ...but not pure noise either.
	if err > 0.9 {
		t.Errorf("rank weighting worse than plausible: %.3f", err)
	}
}

func TestShareError(t *testing.T) {
	a := map[string]float64{"x": 0.5, "y": 0.5}
	if got := ShareError(a, a); got != 0 {
		t.Errorf("identical shares error %f", got)
	}
	b := map[string]float64{"x": 1.0}
	if got := ShareError(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("disjoint-half error %f, want 0.5", got)
	}
}

func TestDepthCap(t *testing.T) {
	w := world.Build(world.Tiny(5))
	l := Generate(w.Traffic, ResolverProvider, 0, 10)
	if len(l.Domains) != 10 {
		t.Errorf("depth cap ignored: %d", len(l.Domains))
	}
	if l.Rank("not-a-domain") != 0 {
		t.Error("unknown domain has a rank")
	}
}
