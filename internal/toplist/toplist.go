// Package toplist generates Alexa/Umbrella-style ranked domain lists from
// the simulated Internet's query volumes, with provider-specific sampling
// noise. The paper's related work ([54], "A long way to the top") found
// such lists unstable and coarse — "top lists capture aspects of site
// popularity, but do not provide a fine-grained understanding of which or
// how users are being served" — and this package makes those limitations
// measurable against ground truth.
package toplist

import (
	"sort"

	"itmap/internal/order"
	"itmap/internal/randx"
	"itmap/internal/services"
	"itmap/internal/traffic"
)

// Provider styles with different measurement bases and noise levels.
type Provider string

// Provider values.
const (
	// PanelProvider ranks by a browser-panel sample (web services only,
	// noisy — the Alexa style).
	PanelProvider Provider = "panel"
	// ResolverProvider ranks by DNS query counts at a public resolver
	// (all query-generating services, less noisy — the Umbrella style).
	ResolverProvider Provider = "resolver"
)

// List is one day's ranked list.
type List struct {
	Provider Provider
	Day      int
	// Domains in rank order (Domains[0] is rank 1).
	Domains []string
}

// Generate builds the provider's list for a day. Noise is deterministic per
// (provider, day, service).
func Generate(tm *traffic.Model, provider Provider, day int, depth int) *List {
	type scored struct {
		domain string
		volume float64
	}
	var rows []scored
	sigma := 0.10
	if provider == PanelProvider {
		sigma = 0.35
	}
	for _, svc := range tm.Cat.Services {
		if provider == PanelProvider && svc.Kind == services.Anycast {
			// Panels observe page loads; infrastructure anycast
			// services are under-represented.
			continue
		}
		// Daily query volume across all prefixes, sampled with
		// provider noise.
		volume := 0.0
		for _, asn := range tm.Top.ASNs() {
			for _, p := range tm.Top.ASes[asn].Prefixes {
				volume += tm.QueriesPerDay(p, svc)
			}
		}
		noise := randx.HashLognormal(0, sigma,
			uint64(day), providerSeed(provider), uint64(svc.ID))
		rows = append(rows, scored{svc.Domain, volume * noise})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].volume != rows[j].volume {
			return rows[i].volume > rows[j].volume
		}
		return rows[i].domain < rows[j].domain
	})
	if depth > 0 && len(rows) > depth {
		rows = rows[:depth]
	}
	l := &List{Provider: provider, Day: day}
	for _, r := range rows {
		l.Domains = append(l.Domains, r.domain)
	}
	return l
}

func providerSeed(p Provider) uint64 {
	if p == PanelProvider {
		return 0x9a9e1
	}
	return 0x4e501
}

// Rank returns a domain's 1-based rank, or 0 if absent.
func (l *List) Rank(domain string) int {
	for i, d := range l.Domains {
		if d == domain {
			return i + 1
		}
	}
	return 0
}

// TopKChurn returns the fraction of the top-k entries that differ between
// two days' lists (0 = identical, 1 = disjoint).
func TopKChurn(a, b *List, k int) float64 {
	if k > len(a.Domains) {
		k = len(a.Domains)
	}
	if k > len(b.Domains) {
		k = len(b.Domains)
	}
	if k == 0 {
		return 0
	}
	inA := map[string]bool{}
	for _, d := range a.Domains[:k] {
		inA[d] = true
	}
	same := 0
	for _, d := range b.Domains[:k] {
		if inA[d] {
			same++
		}
	}
	return 1 - float64(same)/float64(k)
}

// WeightBy assigns each listed domain a rank-derived weight (the common
// research hack the paper criticizes: using list rank as a traffic proxy).
// Weights follow the standard 1/rank heuristic, normalized.
func (l *List) WeightBy() map[string]float64 {
	out := map[string]float64{}
	total := 0.0
	for i := range l.Domains {
		w := 1 / float64(i+1)
		out[l.Domains[i]] = w
		total += w
	}
	for d := range out {
		out[d] /= total
	}
	return out
}

// TrueByteShares returns each domain's true share of catalog traffic — the
// quantity rank-weighting tries to proxy.
func TrueByteShares(tm *traffic.Model, mx *traffic.Matrix) map[string]float64 {
	out := map[string]float64{}
	catalogTotal := mx.TotalBytes - mx.TailBytes
	if catalogTotal <= 0 {
		return out
	}
	for _, svc := range tm.Cat.Services {
		out[svc.Domain] = mx.PerService[svc.ID] / catalogTotal
	}
	return out
}

// shareError sums |proxy − truth| over domains (total variation distance).
func ShareError(proxy, truth map[string]float64) float64 {
	seen := map[string]bool{}
	total := 0.0
	for _, d := range order.Keys(proxy) {
		total += abs(proxy[d] - truth[d])
		seen[d] = true
	}
	for _, d := range order.Keys(truth) {
		if !seen[d] {
			total += truth[d]
		}
	}
	return total / 2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
