package faults

import "itmap/internal/simtime"

// Profile parameterizes one fault regime. The zero Profile injects nothing.
type Profile struct {
	Name string

	// PacketLoss is the per-probe drop probability at a healthy PoP
	// (either direction; the prober only sees silence).
	PacketLoss float64
	// ServfailRate is the per-query probability of a SERVFAIL answer.
	ServfailRate float64

	// ThrottleWindow is the rate limiter's accounting window (default 1h).
	ThrottleWindow simtime.Time
	// ThrottleTripProb is the probability a probing source trips the
	// per-source limiter in one accounting window.
	ThrottleTripProb float64
	// BanDuration is how long a tripped source stays banned.
	BanDuration simtime.Time

	// PoPOutageProb is the per-PoP, per-day probability of one transient
	// outage of PoPOutageDuration.
	PoPOutageProb     float64
	PoPOutageDuration simtime.Time

	// LetterOutageProb is the per-root-letter, per-day probability the
	// letter's log pipeline publishes nothing.
	LetterOutageProb float64

	// ICMPDropProb is the per-hop probability a router's ICMP rate
	// limiter drops the TTL-exceeded reply to a traceroute probe.
	ICMPDropProb float64
}

// None is the zero profile: no faults, byte-identical behaviour.
func None() Profile { return Profile{Name: "none"} }

// Calm models a good day on the real Internet: sub-percent loss, rare
// SERVFAILs, limiters that only notice genuinely abusive sources.
func Calm() Profile {
	return Profile{
		Name:              "calm",
		PacketLoss:        0.01,
		ServfailRate:      0.003,
		ThrottleWindow:    2 * simtime.Hour,
		ThrottleTripProb:  0.02,
		BanDuration:       10 * simtime.Minute,
		PoPOutageProb:     0.02,
		PoPOutageDuration: 20 * simtime.Minute,
		LetterOutageProb:  0.01,
		ICMPDropProb:      0.03,
	}
}

// Lossy models a congested or flaky substrate: double-digit loss, visible
// throttling, occasional PoP flaps.
func Lossy() Profile {
	return Profile{
		Name:              "lossy",
		PacketLoss:        0.12,
		ServfailRate:      0.03,
		ThrottleWindow:    2 * simtime.Hour,
		ThrottleTripProb:  0.18,
		BanDuration:       45 * simtime.Minute,
		PoPOutageProb:     0.15,
		PoPOutageDuration: 90 * simtime.Minute,
		LetterOutageProb:  0.08,
		ICMPDropProb:      0.15,
	}
}

// Hostile models the substrate actively fighting a naive prober: heavy
// loss, aggressive per-source bans covering much of the day, multi-hour PoP
// outages, frequent SERVFAILs.
func Hostile() Profile {
	return Profile{
		Name:              "hostile",
		PacketLoss:        0.30,
		ServfailRate:      0.10,
		ThrottleWindow:    2 * simtime.Hour,
		ThrottleTripProb:  0.50,
		BanDuration:       90 * simtime.Minute,
		PoPOutageProb:     0.50,
		PoPOutageDuration: 3 * simtime.Hour,
		LetterOutageProb:  0.25,
		ICMPDropProb:      0.35,
	}
}

// Presets returns the named regimes in increasing severity.
func Presets() []Profile { return []Profile{Calm(), Lossy(), Hostile()} }

// ByName resolves a preset name ("none", "calm", "lossy", "hostile").
func ByName(name string) (Profile, bool) {
	switch name {
	case "none", "":
		return None(), true
	case "calm":
		return Calm(), true
	case "lossy":
		return Lossy(), true
	case "hostile":
		return Hostile(), true
	}
	return Profile{}, false
}
