// Package faults is the simulator's deterministic fault-injection layer.
// The paper's techniques run against a hostile substrate — public resolvers
// throttle and SERVFAIL single sources (§3.1.2), routers rate-limit ICMP
// (§3.3.2), PoPs and root letters flap — yet a simulated probe that always
// succeeds hides the measurement error the map inherits from that substrate.
// A Plan injects those failures as pure functions of (seed, identity, time):
// per-PoP packet loss, SERVFAIL rates, per-source throttling with temporary
// ban windows, transient PoP and root-letter outages, and per-router ICMP
// rate limiting. Because every decision is a hash — never a shared mutable
// RNG stream — outcomes are identical across runs and across worker counts,
// and retries (which carry a fresh attempt number) re-roll honestly.
package faults

import (
	"errors"
	"math"

	"itmap/internal/obs"
	"itmap/internal/randx"
	"itmap/internal/simtime"
)

// Typed transient errors the probe-facing surfaces return instead of always
// answering. All are retryable; resilience layers classify on these.
var (
	// ErrTimeout is a dropped datagram or dead PoP: the prober hears
	// nothing until its read deadline fires.
	ErrTimeout = errors.New("faults: probe timed out")
	// ErrServfail is the resolver answering SERVFAIL — common when a
	// public resolver throttles or its backend lookup fails.
	ErrServfail = errors.New("faults: resolver answered SERVFAIL")
	// ErrThrottled is the resolver refusing a banned source: the
	// per-source rate limiter tripped and the ban window is still open.
	ErrThrottled = errors.New("faults: source throttled")
)

// IsTransient reports whether err is one of the injected transient faults —
// the class a resilient prober retries rather than aborting the sweep.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrServfail) || errors.Is(err, ErrThrottled)
}

// Domain-separation tags keep the per-concern hash streams independent.
const (
	tagLoss uint64 = 0xfa01 + iota
	tagServfail
	tagBanTrip
	tagBanOff
	tagPoPOutage
	tagPoPStart
	tagLetter
	tagICMP
)

// Plan is a seeded fault schedule over one simulated world. A nil *Plan (or
// one built from the zero Profile) injects nothing and is safe to query —
// the zero-fault fast path is a single nil/flag check, so wiring a plan
// through a surface cannot perturb fault-free behaviour.
type Plan struct {
	seed uint64
	prof Profile
	live bool
}

// NewPlan derives a fault schedule from a profile and a seed. The same
// (profile, seed) pair always yields the same faults.
func NewPlan(prof Profile, seed int64) *Plan {
	return &Plan{seed: uint64(seed), prof: prof, live: prof != (Profile{Name: prof.Name})}
}

// Enabled reports whether the plan injects any faults. Nil-safe.
func (pl *Plan) Enabled() bool { return pl != nil && pl.live }

// Profile returns the plan's parameters (zero Profile for a nil plan).
func (pl *Plan) Profile() Profile {
	if pl == nil {
		return Profile{}
	}
	return pl.prof
}

// timeBits folds a simulated time into the hash input.
func timeBits(t simtime.Time) uint64 { return math.Float64bits(float64(t)) }

// Metric help strings, shared by the inject sites and RegisterMetrics.
const (
	helpInjected = "Faults injected into probe traffic, by kind."
	helpRolls    = "Probe-fault evaluations against an enabled plan."
	helpICMP     = "Traceroute replies eaten by router ICMP rate limiting."
	helpLetters  = "Root-letter log outage days drawn."
)

// RegisterMetrics declares the fault-layer families so a fault-free process
// (itm-serve never injects) still exposes their HELP/TYPE headers.
func RegisterMetrics() {
	m := obs.Metrics()
	m.Declare(obs.KindCounter, "itm_faults_injected_total", helpInjected, "kind")
	m.Declare(obs.KindCounter, "itm_faults_rolls_total", helpRolls)
	m.Declare(obs.KindCounter, "itm_faults_icmp_drops_total", helpICMP)
	m.Declare(obs.KindCounter, "itm_faults_letter_outages_total", helpLetters)
}

func countInjected(kind string) {
	obs.C("itm_faults_injected_total", helpInjected, obs.L("kind", kind)).Inc()
}

// PoPDown reports whether the PoP is inside a transient outage at t.
// Each PoP suffers at most one outage per simulated day, scheduled
// deterministically from the seed.
func (pl *Plan) PoPDown(pop int, t simtime.Time) bool {
	if !pl.Enabled() || pl.prof.PoPOutageProb <= 0 || pl.prof.PoPOutageDuration <= 0 {
		return false
	}
	day := t.DayIndex()
	if !randx.HashBool(pl.prof.PoPOutageProb, pl.seed, tagPoPOutage, uint64(pop), uint64(day)) {
		return false
	}
	span := float64(24 - pl.prof.PoPOutageDuration)
	if span < 0 {
		span = 0
	}
	start := simtime.Time(day)*24 + simtime.Time(span*randx.HashFloat(pl.seed, tagPoPStart, uint64(pop), uint64(day)))
	return t >= start && t < start+pl.prof.PoPOutageDuration
}

// SourceBanned reports whether the per-source rate limiter has the source in
// a ban window at t. The limiter trips with ThrottleTripProb once per
// accounting window; a trip opens a ban of BanDuration starting at a
// deterministic offset inside the window (bans may spill into the next).
func (pl *Plan) SourceBanned(source uint64, t simtime.Time) bool {
	if !pl.Enabled() || pl.prof.ThrottleTripProb <= 0 || pl.prof.BanDuration <= 0 {
		return false
	}
	w := pl.prof.ThrottleWindow
	if w <= 0 {
		w = simtime.Hour
	}
	k := int64(math.Floor(float64(t / w)))
	// A ban opened in the current or the previous window can cover t.
	for _, win := range [2]int64{k, k - 1} {
		if win < 0 {
			continue
		}
		if !randx.HashBool(pl.prof.ThrottleTripProb, pl.seed, tagBanTrip, source, uint64(win)) {
			continue
		}
		start := simtime.Time(win)*w + w*simtime.Time(randx.HashFloat(pl.seed, tagBanOff, source, uint64(win)))
		if t >= start && t < start+pl.prof.BanDuration {
			return true
		}
	}
	return false
}

// LetterDown reports whether a root letter's log pipeline is out for the
// whole day — the transient analogue of permanent anonymization.
func (pl *Plan) LetterDown(letter byte, day int) bool {
	if !pl.Enabled() || pl.prof.LetterOutageProb <= 0 {
		return false
	}
	down := randx.HashBool(pl.prof.LetterOutageProb, pl.seed, tagLetter, uint64(letter), uint64(day))
	if down {
		obs.C("itm_faults_letter_outages_total", helpLetters).Inc()
	}
	return down
}

// ICMPDropped reports whether a router's ICMP rate limiter ate the
// TTL-exceeded reply for one traceroute probe. key identifies the probe
// (src, dst, hop); attempt re-rolls on retry.
func (pl *Plan) ICMPDropped(router uint64, key uint64, attempt int, t simtime.Time) bool {
	if !pl.Enabled() || pl.prof.ICMPDropProb <= 0 {
		return false
	}
	dropped := randx.HashBool(pl.prof.ICMPDropProb, pl.seed, tagICMP, router, key, uint64(attempt), timeBits(t))
	if dropped {
		obs.C("itm_faults_icmp_drops_total", helpICMP).Inc()
	}
	return dropped
}

// ProbeFault evaluates every fault class for one DNS probe against a PoP and
// returns the first applicable typed error, or nil. key identifies the
// (domain, target) pair; attempt re-rolls per-packet faults on retry, so a
// retried probe is a genuinely new datagram, not a replay of the same coin.
//
// Order mirrors reality: a dead PoP times out before any limiter is
// consulted; a banned source is refused before its packet could be lost.
func (pl *Plan) ProbeFault(pop int, source, key uint64, attempt int, t simtime.Time) error {
	if !pl.Enabled() {
		return nil
	}
	obs.C("itm_faults_rolls_total", helpRolls).Inc()
	if pl.PoPDown(pop, t) {
		countInjected("pop-outage")
		return ErrTimeout
	}
	if pl.SourceBanned(source, t) {
		countInjected("throttle")
		return ErrThrottled
	}
	if pl.prof.PacketLoss > 0 &&
		randx.HashBool(pl.prof.PacketLoss, pl.seed, tagLoss, uint64(pop), source, key, uint64(attempt), timeBits(t)) {
		countInjected("packet-loss")
		return ErrTimeout
	}
	if pl.prof.ServfailRate > 0 &&
		randx.HashBool(pl.prof.ServfailRate, pl.seed, tagServfail, uint64(pop), source, key, uint64(attempt), timeBits(t)) {
		countInjected("servfail")
		return ErrServfail
	}
	return nil
}
