package faults

import (
	"testing"

	"itmap/internal/simtime"
)

func TestNilAndZeroPlansInjectNothing(t *testing.T) {
	var nilPlan *Plan
	zero := NewPlan(None(), 1)
	for _, pl := range []*Plan{nilPlan, zero} {
		if pl.Enabled() {
			t.Fatal("inert plan reports enabled")
		}
		for hour := 0; hour < 48; hour++ {
			tm := simtime.Time(hour)
			if err := pl.ProbeFault(3, 7, 11, 0, tm); err != nil {
				t.Fatalf("inert plan injected %v", err)
			}
			if pl.PoPDown(0, tm) || pl.SourceBanned(9, tm) ||
				pl.LetterDown('a', hour) || pl.ICMPDropped(1, 2, 0, tm) {
				t.Fatal("inert plan injected a fault")
			}
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	a := NewPlan(Hostile(), 42)
	b := NewPlan(Hostile(), 42)
	other := NewPlan(Hostile(), 43)
	diverged := false
	for i := 0; i < 2000; i++ {
		tm := simtime.Time(float64(i) * 0.017)
		pop := i % 8
		src := uint64(i % 5)
		key := uint64(i * 2654435761)
		ea := a.ProbeFault(pop, src, key, i%4, tm)
		eb := b.ProbeFault(pop, src, key, i%4, tm)
		if (ea == nil) != (eb == nil) || (ea != nil && ea.Error() != eb.Error()) {
			t.Fatalf("same (plan, inputs) diverged: %v vs %v", ea, eb)
		}
		if eo := other.ProbeFault(pop, src, key, i%4, tm); (ea == nil) != (eo == nil) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds never diverged")
	}
}

func TestAttemptRerollsFaults(t *testing.T) {
	pl := NewPlan(Profile{Name: "loss", PacketLoss: 0.5}, 9)
	// With 50% loss, some key must fail on attempt 0 and pass on a retry —
	// the retry is a fresh datagram, not a replay of the same coin.
	recovered := false
	for key := uint64(0); key < 64 && !recovered; key++ {
		if pl.ProbeFault(0, 1, key, 0, 5) == nil {
			continue
		}
		for attempt := 1; attempt < 8; attempt++ {
			if pl.ProbeFault(0, 1, key, attempt, 5) == nil {
				recovered = true
				break
			}
		}
	}
	if !recovered {
		t.Error("no retry ever re-rolled a lost probe")
	}
}

func TestBanWindowsAreIntervals(t *testing.T) {
	pl := NewPlan(Hostile(), 11)
	w := pl.Profile().ThrottleWindow
	// Find a banned instant, then check the ban is a contiguous window of
	// the configured duration (scanning at fine resolution).
	var bannedAt simtime.Time = -1
	for i := 0; i < 10000; i++ {
		tm := simtime.Time(float64(i) * 0.01)
		if pl.SourceBanned(1, tm) {
			bannedAt = tm
			break
		}
	}
	if bannedAt < 0 {
		t.Fatal("hostile profile never banned the source")
	}
	// Walk left and right to the edges; total extent must be close to
	// BanDuration (never exceeding it plus scan resolution).
	step := simtime.Time(0.002)
	lo, hi := bannedAt, bannedAt
	for lo > 0 && pl.SourceBanned(1, lo-step) {
		lo -= step
	}
	for pl.SourceBanned(1, hi+step) {
		hi += step
	}
	extent := hi - lo
	// Adjacent windows can chain bans back-to-back, so allow up to two.
	if extent < simtime.Time(0.5)*pl.Profile().BanDuration || extent > 2*pl.Profile().BanDuration+w {
		t.Errorf("ban extent %.3fh outside plausible range (ban %.3fh)",
			float64(extent), float64(pl.Profile().BanDuration))
	}
}

func TestPoPOutagesBoundedPerDay(t *testing.T) {
	pl := NewPlan(Hostile(), 3)
	dur := pl.Profile().PoPOutageDuration
	for pop := 0; pop < 10; pop++ {
		down := 0
		const step = 0.01
		for i := 0; i < int(24/step); i++ {
			if pl.PoPDown(pop, simtime.Time(float64(i)*step)) {
				down++
			}
		}
		if got := simtime.Time(float64(down) * step); got > dur+simtime.Time(2*step) {
			t.Errorf("pop %d down %.2fh in one day, max %.2fh", pop, float64(got), float64(dur))
		}
	}
}

func TestProfilesMonotoneInSeverity(t *testing.T) {
	c, l, h := Calm(), Lossy(), Hostile()
	if !(c.PacketLoss < l.PacketLoss && l.PacketLoss < h.PacketLoss) {
		t.Error("packet loss not increasing across presets")
	}
	if !(c.ThrottleTripProb < l.ThrottleTripProb && l.ThrottleTripProb < h.ThrottleTripProb) {
		t.Error("throttle trip prob not increasing across presets")
	}
	for _, name := range []string{"none", "calm", "lossy", "hostile"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown profile")
	}
}

func TestIsTransient(t *testing.T) {
	for _, err := range []error{ErrTimeout, ErrServfail, ErrThrottled} {
		if !IsTransient(err) {
			t.Errorf("%v not transient", err)
		}
	}
	if IsTransient(nil) {
		t.Error("nil transient")
	}
}
