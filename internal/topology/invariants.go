package topology

import (
	"fmt"
	"slices"
)

// CheckInvariants validates structural properties every generated topology
// must satisfy. It returns the first violation found, or nil.
func (t *Topology) CheckInvariants() error {
	// Symmetric, relationship-consistent adjacency.
	for asn, a := range t.ASes {
		seen := map[ASN]bool{}
		for _, n := range a.Neighbors {
			if n.ASN == asn {
				return fmt.Errorf("AS %d has a self link", asn)
			}
			if seen[n.ASN] {
				return fmt.Errorf("AS %d has duplicate neighbor %d", asn, n.ASN)
			}
			seen[n.ASN] = true
			b, ok := t.ASes[n.ASN]
			if !ok {
				return fmt.Errorf("AS %d has unknown neighbor %d", asn, n.ASN)
			}
			rel, ok := b.HasNeighbor(asn)
			if !ok {
				return fmt.Errorf("link %d->%d is not symmetric", asn, n.ASN)
			}
			if rel != n.Rel.Invert() {
				return fmt.Errorf("link %d-%d relationship mismatch: %v vs %v", asn, n.ASN, n.Rel, rel)
			}
		}
	}
	// Tier-1s have no providers; hypergiants/clouds have no providers but
	// peer with every tier-1 (global reachability); all other ASes have
	// at least one provider.
	var tier1s []ASN
	for asn, a := range t.ASes {
		if a.Type == Tier1 {
			tier1s = append(tier1s, asn)
		}
	}
	// Sorted so the first violation reported is stable across runs.
	slices.Sort(tier1s)
	for asn, a := range t.ASes {
		provs := a.Providers()
		switch a.Type {
		case Tier1:
			if len(provs) != 0 {
				return fmt.Errorf("tier-1 AS %d has providers %v", asn, provs)
			}
		case Hypergiant, Cloud:
			if len(provs) != 0 {
				return fmt.Errorf("giant AS %d has providers %v", asn, provs)
			}
			for _, t1 := range tier1s {
				if rel, ok := a.HasNeighbor(t1); !ok || rel != RelPeer {
					return fmt.Errorf("giant AS %d does not peer with tier-1 %d", asn, t1)
				}
			}
		default:
			if len(provs) == 0 {
				return fmt.Errorf("AS %d (%v) has no provider", asn, a.Type)
			}
		}
	}
	// No customer-provider cycles (provider DAG must be acyclic).
	if err := t.checkProviderDAG(); err != nil {
		return err
	}
	// Prefix ownership is consistent and unique.
	seenPfx := map[PrefixID]ASN{}
	for asn, a := range t.ASes {
		for _, p := range a.Prefixes {
			if prev, dup := seenPfx[p]; dup {
				return fmt.Errorf("prefix %v owned by both %d and %d", p, prev, asn)
			}
			seenPfx[p] = asn
			if owner, ok := t.PrefixOwner[p]; !ok || owner != asn {
				return fmt.Errorf("prefix %v owner map inconsistent", p)
			}
			if _, ok := t.PrefixCity[p]; !ok {
				return fmt.Errorf("prefix %v has no city", p)
			}
		}
	}
	if len(seenPfx) != len(t.PrefixOwner) {
		return fmt.Errorf("PrefixOwner has %d entries, ASes own %d", len(t.PrefixOwner), len(seenPfx))
	}
	// Every IXP member exists and is present at the IXP facility.
	for _, ix := range t.IXPs {
		if int(ix.Facility) >= len(t.Facilities) {
			return fmt.Errorf("IXP %s has unknown facility %d", ix.Name, ix.Facility)
		}
		for _, m := range ix.Members {
			a, ok := t.ASes[m]
			if !ok {
				return fmt.Errorf("IXP %s member %d unknown", ix.Name, m)
			}
			found := false
			for _, f := range a.Facilities {
				if f == ix.Facility {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("IXP %s member %d not present at its facility", ix.Name, m)
			}
		}
	}
	return nil
}

// checkProviderDAG verifies the customer→provider graph is acyclic.
func (t *Topology) checkProviderDAG() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[ASN]uint8, len(t.ASes))
	var visit func(asn ASN) error
	visit = func(asn ASN) error {
		color[asn] = grey
		for _, p := range t.ASes[asn].Providers() {
			switch color[p] {
			case grey:
				return fmt.Errorf("customer-provider cycle through AS %d and %d", asn, p)
			case white:
				if err := visit(p); err != nil {
					return err
				}
			}
		}
		color[asn] = black
		return nil
	}
	for _, asn := range t.ASNs() {
		if color[asn] == white {
			if err := visit(asn); err != nil {
				return err
			}
		}
	}
	return nil
}

// TotalSubscribersK sums eyeball subscribers (thousands) across the world.
func (t *Topology) TotalSubscribersK() float64 {
	total := 0.0
	for _, asn := range t.ASNs() {
		total += t.ASes[asn].SubscribersK
	}
	return total
}
