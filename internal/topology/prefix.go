package topology

import (
	"fmt"
	"net/netip"
)

// PrefixID identifies one /24 of IPv4 address space: the top 24 bits of the
// network address (i.e. addr>>8). Dense numeric IDs keep the simulator's
// per-prefix maps compact; convert to netip.Prefix at the API edge.
type PrefixID uint32

// PrefixFromAddr returns the /24 containing an IPv4 address.
func PrefixFromAddr(a netip.Addr) (PrefixID, error) {
	if !a.Is4() {
		return 0, fmt.Errorf("topology: %v is not IPv4", a)
	}
	b := a.As4()
	return PrefixID(uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])), nil
}

// Prefix returns the /24 as a netip.Prefix.
func (p PrefixID) Prefix() netip.Prefix {
	return netip.PrefixFrom(p.Addr(0), 24)
}

// Addr returns the address with the given host byte inside this /24.
func (p PrefixID) Addr(host byte) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(p >> 16), byte(p >> 8), byte(p), host})
}

// String formats the prefix in CIDR notation.
func (p PrefixID) String() string { return p.Prefix().String() }

// PrefixAllocator hands out contiguous runs of /24s. Allocation starts at
// 1.0.0.0/24 and skips the blocks reserved in the real Internet so that
// rendered addresses look plausible.
type PrefixAllocator struct {
	next PrefixID
}

// NewPrefixAllocator returns an allocator positioned at 1.0.0.0/24.
func NewPrefixAllocator() *PrefixAllocator {
	return &PrefixAllocator{next: 1 << 16} // 1.0.0.0/24
}

// reserved reports whether the /24 falls in space we should not allocate
// (loopback, RFC1918, multicast and beyond, 0/8).
func reserved(p PrefixID) bool {
	firstOctet := uint32(p) >> 16
	switch {
	case firstOctet == 0, firstOctet == 10, firstOctet == 127:
		return true
	case firstOctet >= 224: // multicast + reserved
		return true
	case firstOctet == 172 && (uint32(p)>>8)&0xff >= 16 && (uint32(p)>>8)&0xff < 32:
		return true
	case firstOctet == 192 && (uint32(p)>>8)&0xff == 168:
		return true
	case firstOctet == 169 && (uint32(p)>>8)&0xff == 254:
		return true
	default:
		return false
	}
}

// Alloc returns n consecutive allocatable /24s.
func (al *PrefixAllocator) Alloc(n int) []PrefixID {
	out := make([]PrefixID, 0, n)
	for len(out) < n {
		for reserved(al.next) {
			al.next++
		}
		out = append(out, al.next)
		al.next++
	}
	return out
}

// Allocated returns how far allocation has progressed (exclusive upper
// bound on handed-out PrefixIDs).
func (al *PrefixAllocator) Allocated() PrefixID { return al.next }
