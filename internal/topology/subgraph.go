package topology

// Subgraph returns a copy of the topology that keeps only the links for
// which keep returns true. ASes, facilities, IXPs, and prefix ownership are
// preserved. The result is what a researcher reconstructs from partial
// observations (route collectors, traceroutes): relationships on kept links
// are the true ones, modelling accurate relationship inference on observed
// links, while unobserved links are simply absent.
func (t *Topology) Subgraph(keep func(LinkInfo) bool) *Topology {
	sub := NewTopology()
	sub.Allocator = t.Allocator
	sub.Facilities = t.Facilities
	sub.IXPs = t.IXPs
	sub.PrefixOwner = t.PrefixOwner
	sub.PrefixCity = t.PrefixCity
	for _, asn := range t.ASNs() {
		a := t.ASes[asn]
		cp := *a
		cp.Neighbors = nil
		sub.AddAS(&cp)
	}
	for _, l := range t.Links() {
		if keep(l) {
			sub.AddLink(l.A, l.B, l.RelAB, l.Kind, l.Facility)
		}
	}
	sub.Freeze()
	return sub
}

// SubgraphWithLinks keeps exactly the given undirected link set.
func (t *Topology) SubgraphWithLinks(links map[LinkKey]bool) *Topology {
	return t.Subgraph(func(l LinkInfo) bool {
		return links[MakeLinkKey(l.A, l.B)]
	})
}
