package topology

import "sort"

// LinkIndex is the dense companion of the link-keyed maps: every undirected
// adjacency gets a small integer ID, and the adjacency lists are laid out in
// CSR form aligned with each AS's Neighbors slice. Hot paths (BGP
// propagation, traffic-matrix routing) accumulate into []float64 indexed by
// link ID instead of map[LinkKey]float64, and resolve neighbor dense AS
// indices without a map lookup.
type LinkIndex struct {
	// off[i]..off[i+1] bounds AS i's row in nbr/link; rows are aligned
	// with ASAt(i).Neighbors (both sorted by neighbor ASN, and dense AS
	// index order equals ASN order).
	off []int32
	// nbr holds the dense AS index of each neighbor.
	nbr []int32
	// link holds the dense link ID of each adjacency; the two directed
	// rows of one undirected link share an ID.
	link []int32
	// keys maps link ID back to the canonical map key.
	keys []LinkKey
}

// buildLinkIndex assigns link IDs in ascending (Lo, Hi) dense order:
// iterating ASes by dense index and neighbors by ASN, the lower endpoint
// mints the ID and the upper endpoint finds it in the (already built) lower
// row. Deterministic for a given topology.
func buildLinkIndex(t *Topology) *LinkIndex {
	n := t.NumASes()
	asns := t.ASNs()
	li := &LinkIndex{off: make([]int32, n+1)}
	total := 0
	for i := 0; i < n; i++ {
		total += len(t.ASes[asns[i]].Neighbors)
		li.off[i+1] = int32(total)
	}
	li.nbr = make([]int32, total)
	li.link = make([]int32, total)
	li.keys = make([]LinkKey, 0, total/2)
	for i := 0; i < n; i++ {
		a := t.ASes[asns[i]]
		row := li.off[i]
		for k, nb := range a.Neighbors {
			j, ok := t.Index(nb.ASN)
			if !ok {
				panic("topology: neighbor outside topology")
			}
			li.nbr[row+int32(k)] = int32(j)
			if i < j {
				li.link[row+int32(k)] = int32(len(li.keys))
				li.keys = append(li.keys, MakeLinkKey(asns[i], asns[j]))
			} else {
				id := li.idBetween(j, i)
				if id < 0 {
					panic("topology: asymmetric adjacency")
				}
				li.link[row+int32(k)] = id
			}
		}
	}
	return li
}

// LinkIndex returns the dense link index, building it on first use. Like
// ASNs/Index it is invalidated by AddAS/AddLink; build it (by calling any
// accessor) before sharing the topology across goroutines.
func (t *Topology) LinkIndex() *LinkIndex {
	if t.linkIdx == nil {
		t.linkIdx = buildLinkIndex(t)
	}
	return t.linkIdx
}

// NumLinks returns the number of undirected links (IDs run [0, NumLinks)).
func (li *LinkIndex) NumLinks() int { return len(li.keys) }

// Key returns the canonical map key of a link ID.
func (li *LinkIndex) Key(id int32) LinkKey { return li.keys[id] }

// Row returns AS i's neighbor dense indices and link IDs, aligned with
// ASAt(i).Neighbors. Callers must not modify the returned slices.
func (li *LinkIndex) Row(i int) (nbrs, links []int32) {
	lo, hi := li.off[i], li.off[i+1]
	return li.nbr[lo:hi], li.link[lo:hi]
}

// IDBetween returns the link ID connecting dense AS indices i and j, or -1
// if they are not adjacent. O(log deg(i)).
func (li *LinkIndex) IDBetween(i, j int) int32 { return li.idBetween(i, j) }

func (li *LinkIndex) idBetween(i, j int) int32 {
	lo, hi := li.off[i], li.off[i+1]
	row := li.nbr[lo:hi]
	k := sort.Search(len(row), func(x int) bool { return row[x] >= int32(j) })
	if k < len(row) && row[k] == int32(j) {
		return li.link[lo+int32(k)]
	}
	return -1
}
