package topology

import (
	"fmt"
	"math"
	"sort"

	"itmap/internal/geo"
	"itmap/internal/randx"
)

// GenConfig parameterizes the synthetic Internet generator.
type GenConfig struct {
	// Seed drives all randomness; identical (config, seed) pairs yield
	// identical topologies.
	Seed int64

	// Scale multiplies AS counts and prefix counts. 1.0 is the Default
	// world (~2.5k ASes, ~45k /24s).
	Scale float64

	// CountryLimit keeps only the top-N countries by Internet users
	// (0 = all).
	CountryLimit int

	// NTier1 is the size of the tier-1 clique.
	NTier1 int

	// NHypergiants is how many content hypergiant ASes exist.
	NHypergiants int

	// NClouds is how many cloud-provider ASes exist.
	NClouds int

	// PrefixPer100kUsers sets address-space density: /24s allocated per
	// 100k eyeball subscribers.
	PrefixPer100kUsers float64

	// HypergiantEyeballPeering is the probability that a hypergiant
	// establishes a PNI with one of the large eyeballs it targets.
	HypergiantEyeballPeering float64
}

// DefaultGenConfig returns the Default world configuration.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:                     seed,
		Scale:                    1.0,
		CountryLimit:             0,
		NTier1:                   12,
		NHypergiants:             8,
		NClouds:                  3,
		PrefixPer100kUsers:       1.0,
		HypergiantEyeballPeering: 0.85,
	}
}

// SmallGenConfig returns a ~600-AS world for integration tests and examples.
func SmallGenConfig(seed int64) GenConfig {
	c := DefaultGenConfig(seed)
	c.Scale = 0.3
	c.CountryLimit = 20
	c.NTier1 = 8
	c.NHypergiants = 6
	c.NClouds = 2
	return c
}

// TinyGenConfig returns a ~120-AS world for unit tests.
func TinyGenConfig(seed int64) GenConfig {
	c := DefaultGenConfig(seed)
	c.Scale = 0.08
	c.CountryLimit = 8
	c.NTier1 = 4
	c.NHypergiants = 3
	c.NClouds = 1
	return c
}

// ASN ranges per role keep generated ASNs recognizable in output.
const (
	asnTier1Base      ASN = 1000
	asnTransitBase    ASN = 2000
	asnEyeballBase    ASN = 3000
	asnHypergiantBase ASN = 15000
	asnCloudBase      ASN = 16000
	asnAcademicBase   ASN = 40000
	asnEnterpriseBase ASN = 50000
)

// frenchISPs name the large French eyeballs so Figure 2's case study reads
// like the paper's.
var frenchISPs = []struct {
	name string
	// subscriber share of the country's users
	share float64
}{
	{"Orange", 0.31}, {"SFR", 0.20}, {"Free", 0.19},
	{"Bouygues", 0.12}, {"Free_M", 0.07}, {"El_tele", 0.04},
}

// Generate builds a synthetic AS-level Internet per the config.
func Generate(cfg GenConfig) *Topology {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.NTier1 < 2 {
		cfg.NTier1 = 2
	}
	if cfg.PrefixPer100kUsers <= 0 {
		cfg.PrefixPer100kUsers = 1.0
	}
	rng := randx.New(cfg.Seed)
	t := NewTopology()
	alloc := NewPrefixAllocator()

	countries := geo.Countries()
	if cfg.CountryLimit > 0 && cfg.CountryLimit < len(countries) {
		countries = countries[:cfg.CountryLimit]
	}

	// --- Facilities -------------------------------------------------
	// Two per region hub, one per country capital.
	facByCity := map[string][]FacilityID{} // city name -> facility IDs
	addFacility := func(name string, city geo.City) FacilityID {
		id := FacilityID(len(t.Facilities))
		t.Facilities = append(t.Facilities, Facility{ID: id, Name: name, City: city})
		facByCity[city.Name] = append(facByCity[city.Name], id)
		return id
	}
	regionHubFacs := map[geo.Region][]FacilityID{}
	for _, r := range geo.Regions() {
		hub := geo.RegionHub(r)
		if hub.Name == "" {
			continue
		}
		f1 := addFacility(fmt.Sprintf("%s-DC1", hub.Name), hub)
		f2 := addFacility(fmt.Sprintf("%s-DC2", hub.Name), hub)
		regionHubFacs[r] = []FacilityID{f1, f2}
	}
	countryFac := map[string]FacilityID{}
	for _, c := range countries {
		if len(facByCity[c.Capital.Name]) > 0 {
			countryFac[c.Code] = facByCity[c.Capital.Name][0]
			continue
		}
		countryFac[c.Code] = addFacility(fmt.Sprintf("%s-IX-DC", c.Capital.Name), c.Capital)
	}

	// --- Tier-1 clique ----------------------------------------------
	var tier1s []ASN
	for i := 0; i < cfg.NTier1; i++ {
		asn := asnTier1Base + ASN(i)
		region := geo.Regions()[i%len(geo.Regions())]
		if _, ok := regionHubFacs[region]; !ok {
			region = countries[0].Region
		}
		a := &AS{
			ASN:     asn,
			Name:    fmt.Sprintf("Backbone-%d", i+1),
			Type:    Tier1,
			Country: "ZZ",
			Region:  region,
			Policy:  PolicyRestrictive,
		}
		// Tier-1s are present at every region hub.
		for _, r := range geo.Regions() {
			a.Facilities = append(a.Facilities, regionHubFacs[r]...)
		}
		// Small infrastructure address space.
		a.Prefixes = alloc.Alloc(2)
		registerPrefixes(t, a, geo.RegionHub(region))
		t.AddAS(a)
		tier1s = append(tier1s, asn)
	}
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			fac := regionHubFacs[geo.Regions()[0]][0]
			t.AddLink(tier1s[i], tier1s[j], RelPeer, PrivatePeering, fac)
		}
	}

	// --- Transit per region ------------------------------------------
	regionCountries := map[geo.Region][]geo.Country{}
	for _, c := range countries {
		regionCountries[c.Region] = append(regionCountries[c.Region], c)
	}
	transitByRegion := map[geo.Region][]ASN{}
	var allTransit []ASN
	nextTransit := asnTransitBase
	for _, r := range geo.Regions() {
		cs := regionCountries[r]
		if len(cs) == 0 {
			continue
		}
		regionUsers := 0.0
		for _, c := range cs {
			regionUsers += c.InternetUsersM
		}
		n := int(math.Max(2, math.Round((2+regionUsers/90)*cfg.Scale*2)))
		for i := 0; i < n; i++ {
			home := cs[rng.WeightedChoice(countryWeights(cs))]
			asn := nextTransit
			nextTransit++
			a := &AS{
				ASN:     asn,
				Name:    fmt.Sprintf("Transit-%s-%d", r, i+1),
				Type:    Transit,
				Country: home.Code,
				Region:  r,
				Policy:  PolicySelective,
			}
			a.Facilities = append(a.Facilities, countryFac[home.Code])
			a.Facilities = append(a.Facilities, regionHubFacs[r]...)
			// A slice of transit providers are also present at one
			// foreign hub (remote peering, cross-region reach).
			if rng.Bool(0.3) {
				other := geo.Regions()[rng.Intn(len(geo.Regions()))]
				if fs, ok := regionHubFacs[other]; ok && other != r {
					a.Facilities = append(a.Facilities, fs[0])
				}
			}
			a.Prefixes = alloc.Alloc(1 + rng.Intn(3))
			registerPrefixes(t, a, home.Capital)
			t.AddAS(a)
			// 1-3 tier-1 providers.
			nProv := rng.IntBetween(1, min(3, len(tier1s)))
			for _, pi := range rng.Perm(len(tier1s))[:nProv] {
				t.AddLink(asn, tier1s[pi], RelProvider, TransitLink, regionHubFacs[r][0])
			}
			transitByRegion[r] = append(transitByRegion[r], asn)
			allTransit = append(allTransit, asn)
		}
	}
	// Transit-to-transit peering inside regions (and a little across).
	for _, r := range geo.Regions() {
		ts := transitByRegion[r]
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				if rng.Bool(0.35) && !t.HasLink(ts[i], ts[j]) {
					t.AddLink(ts[i], ts[j], RelPeer, PrivatePeering, regionHubFacs[r][0])
				}
			}
		}
	}
	for i := 0; i < len(allTransit); i++ {
		for j := i + 1; j < len(allTransit); j++ {
			if t.ASes[allTransit[i]].Region == t.ASes[allTransit[j]].Region {
				continue
			}
			if rng.Bool(0.04) && !t.HasLink(allTransit[i], allTransit[j]) {
				shared := t.SharedFacilities(allTransit[i], allTransit[j])
				fac := regionHubFacs[t.ASes[allTransit[i]].Region][0]
				if len(shared) > 0 {
					fac = shared[0]
				}
				t.AddLink(allTransit[i], allTransit[j], RelPeer, PrivatePeering, fac)
			}
		}
	}

	// --- Eyeball ISPs per country -------------------------------------
	eyeballsByCountry := map[string][]ASN{}
	var allEyeballs []ASN
	nextEyeball := asnEyeballBase
	for _, c := range countries {
		n := int(math.Max(2, math.Round((2+math.Sqrt(c.InternetUsersM)*2.0)*cfg.Scale)))
		// Subscriber shares: named French ISPs use fixed shares so the
		// Figure 2 case study is stable; everyone else draws Pareto.
		shares := make([]float64, n)
		names := make([]string, n)
		if c.Code == "FR" {
			rest := 1.0
			for i := 0; i < n; i++ {
				if i < len(frenchISPs) {
					names[i] = frenchISPs[i].name
					shares[i] = frenchISPs[i].share
					rest -= frenchISPs[i].share
				} else {
					names[i] = fmt.Sprintf("FR-ISP-%d", i+1)
					shares[i] = math.Max(0.002, rest/float64(n-len(frenchISPs)+1))
				}
			}
		} else {
			total := 0.0
			raw := make([]float64, n)
			for i := range raw {
				raw[i] = rng.Pareto(1, 1.1)
				total += raw[i]
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(raw)))
			for i := range raw {
				shares[i] = raw[i] / total
				names[i] = fmt.Sprintf("%s-ISP-%d", c.Code, i+1)
			}
		}
		region := c.Region
		for i := 0; i < n; i++ {
			asn := nextEyeball
			nextEyeball++
			subsK := shares[i] * c.InternetUsersM * 1000
			a := &AS{
				ASN:          asn,
				Name:         names[i],
				Type:         Eyeball,
				Country:      c.Code,
				Region:       region,
				Policy:       PolicyOpen,
				SubscribersK: subsK,
			}
			if rng.Bool(0.4) {
				a.Policy = PolicySelective
			}
			a.Facilities = append(a.Facilities, countryFac[c.Code])
			if i < 3 { // the country's largest ISPs reach the region hub
				a.Facilities = append(a.Facilities, regionHubFacs[region][0])
			}
			nPfx := int(math.Max(1, math.Round(subsK/100*cfg.PrefixPer100kUsers)))
			a.Prefixes = alloc.Alloc(nPfx)
			registerPrefixes(t, a, c.Capital)
			t.AddAS(a)
			// Providers: 1-2 regional transit, preferring home country.
			ts := transitByRegion[region]
			if len(ts) == 0 {
				ts = allTransit
			}
			nProv := rng.IntBetween(1, min(2, len(ts)))
			for _, pi := range rng.Perm(len(ts))[:nProv] {
				t.AddLink(asn, ts[pi], RelProvider, TransitLink, countryFac[c.Code])
			}
			// The very largest eyeballs buy a tier-1 upstream too.
			if i == 0 && c.InternetUsersM > 50 {
				p := tier1s[rng.Intn(len(tier1s))]
				if !t.HasLink(asn, p) {
					t.AddLink(asn, p, RelProvider, TransitLink, regionHubFacs[region][0])
				}
			}
			eyeballsByCountry[c.Code] = append(eyeballsByCountry[c.Code], asn)
			allEyeballs = append(allEyeballs, asn)
		}
	}

	// --- Hypergiants and clouds ---------------------------------------
	hgNames := []string{"Vortex", "FaceSpace", "MegaCDN", "StreamFlix", "ShopGiant", "ClipShare", "EdgeWave", "MetaCast"}
	var hypergiants []ASN
	for i := 0; i < cfg.NHypergiants; i++ {
		asn := asnHypergiantBase + ASN(i)
		name := fmt.Sprintf("Hypergiant-%d", i+1)
		if i < len(hgNames) {
			name = hgNames[i]
		}
		a := &AS{
			ASN:     asn,
			Name:    name,
			Type:    Hypergiant,
			Country: "ZZ",
			Region:  geo.Regions()[i%len(geo.Regions())],
			Policy:  PolicySelective,
		}
		for _, r := range geo.Regions() {
			a.Facilities = append(a.Facilities, regionHubFacs[r]...)
		}
		// Hypergiants are also present in most large countries' facilities.
		for _, c := range countries {
			if c.InternetUsersM > 20 || rng.Bool(0.4) {
				a.Facilities = appendUniqueFacility(a.Facilities, countryFac[c.Code])
			}
		}
		a.Prefixes = alloc.Alloc(8 + rng.Intn(8))
		registerPrefixes(t, a, geo.RegionHub(a.Region))
		t.AddAS(a)
		hypergiants = append(hypergiants, asn)
		for _, t1 := range tier1s {
			t.AddLink(asn, t1, RelPeer, PrivatePeering, regionHubFacs[geo.Regions()[0]][0])
		}
		for _, tr := range allTransit {
			if rng.Bool(0.6) {
				shared := t.SharedFacilities(asn, tr)
				if len(shared) > 0 {
					t.AddLink(asn, tr, RelPeer, PrivatePeering, shared[0])
				}
			}
		}
	}
	var clouds []ASN
	cloudNames := []string{"Nimbus", "Stratus", "Cumulus"}
	for i := 0; i < cfg.NClouds; i++ {
		asn := asnCloudBase + ASN(i)
		name := fmt.Sprintf("Cloud-%d", i+1)
		if i < len(cloudNames) {
			name = cloudNames[i]
		}
		a := &AS{
			ASN:     asn,
			Name:    name,
			Type:    Cloud,
			Country: "ZZ",
			Region:  geo.Regions()[i%len(geo.Regions())],
			Policy:  PolicyOpen,
		}
		for _, r := range geo.Regions() {
			a.Facilities = append(a.Facilities, regionHubFacs[r]...)
		}
		a.Prefixes = alloc.Alloc(6 + rng.Intn(6))
		registerPrefixes(t, a, geo.RegionHub(a.Region))
		t.AddAS(a)
		clouds = append(clouds, asn)
		for _, t1 := range tier1s {
			t.AddLink(asn, t1, RelPeer, PrivatePeering, regionHubFacs[geo.Regions()[0]][0])
		}
		for _, tr := range allTransit {
			if rng.Bool(0.45) {
				shared := t.SharedFacilities(asn, tr)
				if len(shared) > 0 {
					t.AddLink(asn, tr, RelPeer, PrivatePeering, shared[0])
				}
			}
		}
	}

	// Giants peer with each other at the major hubs (in the real
	// Internet, hypergiants and clouds interconnect directly; without
	// this, peer-route export rules would leave them mutually
	// unreachable, which never happens in practice).
	giantsAll := append(append([]ASN{}, hypergiants...), clouds...)
	for i := 0; i < len(giantsAll); i++ {
		for j := i + 1; j < len(giantsAll); j++ {
			if !t.HasLink(giantsAll[i], giantsAll[j]) {
				t.AddLink(giantsAll[i], giantsAll[j], RelPeer, PrivatePeering,
					regionHubFacs[geo.Regions()[0]][0])
			}
		}
	}

	// Private peering between hypergiants/clouds and large eyeballs.
	// This is the Internet flattening the paper leans on: most user
	// traffic takes these direct (publicly invisible) links.
	giants := append(append([]ASN{}, hypergiants...), clouds...)
	for _, g := range giants {
		for _, e := range allEyeballs {
			ea := t.ASes[e]
			// Target eyeballs large enough to justify a PNI: big
			// ISPs almost always get one, mid-size sometimes, small
			// ones reach the giants over transit.
			p := 0.0
			switch {
			case ea.SubscribersK >= 3000:
				p = cfg.HypergiantEyeballPeering
			case ea.SubscribersK >= 800:
				p = cfg.HypergiantEyeballPeering * 0.35
			}
			if p > 0 && rng.Bool(p) && !t.HasLink(g, e) {
				fac := countryFac[ea.Country]
				t.AddLink(g, e, RelPeer, PrivatePeering, fac)
			}
		}
	}

	// --- Enterprises and academic stubs -------------------------------
	nextEnterprise := asnEnterpriseBase
	nextAcademic := asnAcademicBase
	var allAcademics []ASN
	for _, c := range countries {
		nEnt := int(math.Max(1, math.Round(math.Pow(c.InternetUsersM, 0.62)*1.3*cfg.Scale)))
		for i := 0; i < nEnt; i++ {
			asn := nextEnterprise
			nextEnterprise++
			a := &AS{
				ASN:     asn,
				Name:    fmt.Sprintf("%s-Corp-%d", c.Code, i+1),
				Type:    Enterprise,
				Country: c.Code,
				Region:  c.Region,
				Policy:  PolicyRestrictive,
			}
			a.Facilities = []FacilityID{countryFac[c.Code]}
			a.Prefixes = alloc.Alloc(1)
			registerPrefixes(t, a, c.Capital)
			t.AddAS(a)
			// Customer of a regional transit or a large eyeball.
			if rng.Bool(0.75) || len(eyeballsByCountry[c.Code]) == 0 {
				ts := transitByRegion[c.Region]
				if len(ts) == 0 {
					ts = allTransit
				}
				t.AddLink(asn, ts[rng.Intn(len(ts))], RelProvider, TransitLink, countryFac[c.Code])
			} else {
				es := eyeballsByCountry[c.Code]
				t.AddLink(asn, es[rng.Intn(min(3, len(es)))], RelProvider, TransitLink, countryFac[c.Code])
			}
		}
		nAcad := 1
		if c.InternetUsersM > 60 {
			nAcad = 2
		}
		for i := 0; i < nAcad; i++ {
			asn := nextAcademic
			nextAcademic++
			a := &AS{
				ASN:     asn,
				Name:    fmt.Sprintf("%s-EDU-%d", c.Code, i+1),
				Type:    Academic,
				Country: c.Code,
				Region:  c.Region,
				Policy:  PolicyOpen,
			}
			a.Facilities = []FacilityID{countryFac[c.Code]}
			a.Prefixes = alloc.Alloc(1 + rng.Intn(2))
			registerPrefixes(t, a, c.Capital)
			t.AddAS(a)
			ts := transitByRegion[c.Region]
			if len(ts) == 0 {
				ts = allTransit
			}
			t.AddLink(asn, ts[rng.Intn(len(ts))], RelProvider, TransitLink, countryFac[c.Code])
			allAcademics = append(allAcademics, asn)
		}
	}

	// --- Root DNS operators ---------------------------------------------
	// Up to 13 academic networks operate root letters. Real root
	// operators host anycast instances at IXPs around the planet and
	// peer extremely widely; those peerings rarely show up in public
	// topologies. This is what makes Atlas->root paths hard to predict.
	nRoots := min(13, len(allAcademics))
	for i := 0; i < nRoots; i++ {
		// Spread across countries: academics were appended per country.
		op := allAcademics[(i*7)%len(allAcademics)]
		a := t.ASes[op]
		if a.RootOperator {
			continue
		}
		a.RootOperator = true
		a.Policy = PolicyOpen
		for _, e := range allEyeballs {
			if rng.Bool(0.6) && !t.HasLink(op, e) {
				fac := countryFac[t.ASes[e].Country]
				a.Facilities = appendUniqueFacility(a.Facilities, fac)
				t.AddLink(op, e, RelPeer, IXPPeering, fac)
			}
		}
		for _, tr := range allTransit {
			if rng.Bool(0.5) && !t.HasLink(op, tr) {
				fac := regionHubFacs[t.ASes[tr].Region][0]
				a.Facilities = appendUniqueFacility(a.Facilities, fac)
				t.AddLink(op, tr, RelPeer, IXPPeering, fac)
			}
		}
	}
	for i := 0; i < nRoots; i++ {
		op := allAcademics[(i*7)%len(allAcademics)]
		if !t.ASes[op].RootOperator {
			continue
		}
		for _, ac := range allAcademics {
			if ac != op && rng.Bool(0.5) && !t.HasLink(op, ac) {
				fac := countryFac[t.ASes[ac].Country]
				t.ASes[op].Facilities = appendUniqueFacility(t.ASes[op].Facilities, fac)
				t.AddLink(op, ac, RelPeer, IXPPeering, fac)
			}
		}
	}

	// --- IXPs ----------------------------------------------------------
	// One IXP per region hub plus one per very large country.
	addIXP := func(name string, fac FacilityID, scopeASes []ASN, memberProb map[ASType]float64) {
		ixp := IXP{ID: IXPID(len(t.IXPs)), Name: name, Facility: fac}
		for _, asn := range scopeASes {
			p, ok := memberProb[t.ASes[asn].Type]
			if !ok {
				continue
			}
			if rng.Bool(p) {
				ixp.Members = append(ixp.Members, asn)
				t.ASes[asn].Facilities = appendUniqueFacility(t.ASes[asn].Facilities, fac)
			}
		}
		sort.Slice(ixp.Members, func(i, j int) bool { return ixp.Members[i] < ixp.Members[j] })
		t.IXPs = append(t.IXPs, ixp)
		// Public peering on the fabric: giants peer openly with
		// eyeballs; some eyeball-eyeball and transit-eyeball peering.
		for i := 0; i < len(ixp.Members); i++ {
			for j := i + 1; j < len(ixp.Members); j++ {
				a, b := ixp.Members[i], ixp.Members[j]
				if t.HasLink(a, b) {
					continue
				}
				ta, tb := t.ASes[a].Type, t.ASes[b].Type
				p := 0.0
				switch {
				case isGiant(ta) && tb == Eyeball, isGiant(tb) && ta == Eyeball:
					p = 0.7
				case isGiant(ta) && tb == Enterprise, isGiant(tb) && ta == Enterprise:
					p = 0.25
				case ta == Eyeball && tb == Eyeball:
					p = 0.18
				case (ta == Transit && tb == Eyeball) || (tb == Transit && ta == Eyeball):
					p = 0.08
				case ta == Academic || tb == Academic:
					p = 0.3
				}
				if p > 0 && rng.Bool(p) {
					t.AddLink(a, b, RelPeer, IXPPeering, fac)
				}
			}
		}
	}
	memberProb := map[ASType]float64{
		Eyeball: 0.65, Transit: 0.5, Hypergiant: 0.95, Cloud: 0.9,
		Enterprise: 0.08, Academic: 0.5,
	}
	for _, r := range geo.Regions() {
		cs := regionCountries[r]
		if len(cs) == 0 {
			continue
		}
		var scope []ASN
		for _, asn := range sortedASNs(t) {
			a := t.ASes[asn]
			if a.Region == r || a.Country == "ZZ" {
				scope = append(scope, asn)
			}
		}
		addIXP(fmt.Sprintf("%s-IX", geo.RegionHub(r).Name), regionHubFacs[r][1], scope, memberProb)
	}
	for _, c := range countries {
		if c.InternetUsersM < 55 {
			continue
		}
		var scope []ASN
		for _, asn := range sortedASNs(t) {
			a := t.ASes[asn]
			if a.Country == c.Code || a.Country == "ZZ" {
				scope = append(scope, asn)
			}
		}
		addIXP(fmt.Sprintf("%s-IX", c.Capital.Name), countryFac[c.Code], scope, memberProb)
	}

	// Facility lists accumulated from several phases; deduplicate while
	// preserving order (country facilities can coincide with region-hub
	// facilities for hub countries).
	for _, a := range t.ASes {
		seen := map[FacilityID]bool{}
		uniq := a.Facilities[:0]
		for _, f := range a.Facilities {
			if !seen[f] {
				seen[f] = true
				uniq = append(uniq, f)
			}
		}
		a.Facilities = uniq
	}
	t.Allocator = alloc
	t.Freeze()
	return t
}

// registerPrefixes records ownership and city for an AS's prefixes.
func registerPrefixes(t *Topology, a *AS, city geo.City) {
	for _, p := range a.Prefixes {
		t.PrefixOwner[p] = a.ASN
		t.PrefixCity[p] = city
	}
}

func appendUniqueFacility(fs []FacilityID, f FacilityID) []FacilityID {
	for _, x := range fs {
		if x == f {
			return fs
		}
	}
	return append(fs, f)
}

func countryWeights(cs []geo.Country) []float64 {
	w := make([]float64, len(cs))
	for i, c := range cs {
		w[i] = c.InternetUsersM
	}
	return w
}

func isGiant(t ASType) bool { return t == Hypergiant || t == Cloud }

func sortedASNs(t *Topology) []ASN {
	out := make([]ASN, 0, len(t.ASes))
	for asn := range t.ASes {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountryUsers returns the Internet users (millions) of a country code.
func CountryUsers(code string) (float64, error) {
	c, err := geo.CountryByCode(code)
	return c.InternetUsersM, err
}

// PrimaryCity returns a representative location for an AS: its home
// country's capital, or its first facility's city for global networks.
func (t *Topology) PrimaryCity(asn ASN) geo.City {
	a := t.ASes[asn]
	if a == nil {
		return geo.City{}
	}
	if a.Country != "ZZ" {
		if c, err := geo.CountryByCode(a.Country); err == nil {
			return c.Capital
		}
	}
	if len(a.Facilities) > 0 {
		return t.Facility(a.Facilities[0]).City
	}
	return geo.City{}
}
