package topology

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestGenerateTinyInvariants(t *testing.T) {
	top := Generate(TinyGenConfig(1))
	if err := top.CheckInvariants(); err != nil {
		t.Fatalf("tiny world invariants: %v", err)
	}
	if n := top.NumASes(); n < 50 || n > 400 {
		t.Errorf("tiny world has %d ASes, want 50-400", n)
	}
}

func TestGenerateSmallInvariants(t *testing.T) {
	top := Generate(SmallGenConfig(7))
	if err := top.CheckInvariants(); err != nil {
		t.Fatalf("small world invariants: %v", err)
	}
	if n := top.NumASes(); n < 300 || n > 1500 {
		t.Errorf("small world has %d ASes, want 300-1500", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TinyGenConfig(42))
	b := Generate(TinyGenConfig(42))
	if a.NumASes() != b.NumASes() || a.NumLinks() != b.NumLinks() {
		t.Fatalf("same seed gave different worlds: %d/%d ASes, %d/%d links",
			a.NumASes(), b.NumASes(), a.NumLinks(), b.NumLinks())
	}
	for _, asn := range a.ASNs() {
		aa, ba := a.ASes[asn], b.ASes[asn]
		if ba == nil {
			t.Fatalf("AS %d missing from second world", asn)
		}
		if aa.Name != ba.Name || aa.SubscribersK != ba.SubscribersK ||
			len(aa.Neighbors) != len(ba.Neighbors) || len(aa.Prefixes) != len(ba.Prefixes) {
			t.Fatalf("AS %d differs between same-seed worlds", asn)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(TinyGenConfig(1))
	b := Generate(TinyGenConfig(2))
	if a.NumLinks() == b.NumLinks() && a.NumASes() == b.NumASes() {
		// Link counts could coincide; check a finer signal.
		same := true
		for _, asn := range a.ASNs() {
			if bb, ok := b.ASes[asn]; !ok || len(bb.Neighbors) != len(a.ASes[asn].Neighbors) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical-looking worlds")
		}
	}
}

func TestHypergiantsPeerWithLargeEyeballs(t *testing.T) {
	top := Generate(SmallGenConfig(3))
	hgs := top.ASesOfType(Hypergiant)
	if len(hgs) == 0 {
		t.Fatal("no hypergiants generated")
	}
	// Count how many of the largest eyeballs have a direct hypergiant
	// peering; flattening requires most of them to.
	eyeballs := top.ASesOfType(Eyeball)
	withPNI, large := 0, 0
	for _, e := range eyeballs {
		if top.ASes[e].SubscribersK < 5000 {
			continue
		}
		large++
		for _, hg := range hgs {
			if top.HasLink(e, hg) {
				withPNI++
				break
			}
		}
	}
	if large == 0 {
		t.Fatal("no large eyeballs in small world")
	}
	if frac := float64(withPNI) / float64(large); frac < 0.5 {
		t.Errorf("only %.0f%% of large eyeballs peer directly with a hypergiant, want >50%%", frac*100)
	}
}

func TestFrenchISPsNamed(t *testing.T) {
	top := Generate(SmallGenConfig(5))
	fr := top.EyeballsInCountry("FR")
	if len(fr) == 0 {
		t.Skip("no FR in this config")
	}
	names := map[string]bool{}
	for _, asn := range fr {
		names[top.ASes[asn].Name] = true
	}
	for _, want := range []string{"Orange", "SFR", "Free", "Bouygues"} {
		if !names[want] {
			t.Errorf("missing named French ISP %q", want)
		}
	}
	// Orange must be the biggest.
	var orange, sfr *AS
	for _, asn := range fr {
		switch top.ASes[asn].Name {
		case "Orange":
			orange = top.ASes[asn]
		case "SFR":
			sfr = top.ASes[asn]
		}
	}
	if orange != nil && sfr != nil && orange.SubscribersK <= sfr.SubscribersK {
		t.Errorf("Orange (%f) should have more subscribers than SFR (%f)",
			orange.SubscribersK, sfr.SubscribersK)
	}
}

func TestPrefixAllocatorSkipsReserved(t *testing.T) {
	al := NewPrefixAllocator()
	got := al.Alloc(300 * 256) // spans several /8s
	seen := map[PrefixID]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatalf("duplicate prefix %v", p)
		}
		seen[p] = true
		first := uint32(p) >> 16
		if first == 0 || first == 10 || first == 127 || first >= 224 {
			t.Fatalf("allocated reserved prefix %v", p)
		}
	}
}

func TestPrefixIDRoundTrip(t *testing.T) {
	f := func(a, b, c byte) bool {
		addr := netip.AddrFrom4([4]byte{a, b, c, 77})
		p, err := PrefixFromAddr(addr)
		if err != nil {
			return false
		}
		return p.Prefix().Contains(addr) && p.Addr(77) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelationshipInvert(t *testing.T) {
	cases := []struct{ in, want Relationship }{
		{RelProvider, RelCustomer},
		{RelCustomer, RelProvider},
		{RelPeer, RelPeer},
	}
	for _, c := range cases {
		if got := c.in.Invert(); got != c.want {
			t.Errorf("%v.Invert() = %v, want %v", c.in, got, c.want)
		}
		if got := c.in.Invert().Invert(); got != c.in {
			t.Errorf("double invert of %v = %v", c.in, got)
		}
	}
}

func TestSharedFacilities(t *testing.T) {
	top := Generate(TinyGenConfig(9))
	hgs := top.ASesOfType(Hypergiant)
	t1s := top.ASesOfType(Tier1)
	if len(hgs) == 0 || len(t1s) == 0 {
		t.Fatal("missing giants or tier-1s")
	}
	// Hypergiants and tier-1s are both at all region hubs.
	if len(top.SharedFacilities(hgs[0], t1s[0])) == 0 {
		t.Error("hypergiant and tier-1 share no facilities")
	}
}

func TestLinksEnumeration(t *testing.T) {
	top := Generate(TinyGenConfig(11))
	links := top.Links()
	if len(links) != top.NumLinks() {
		t.Fatalf("Links() returned %d, NumLinks()=%d", len(links), top.NumLinks())
	}
	for _, l := range links {
		if l.A >= l.B {
			t.Fatalf("link %d-%d not canonically ordered", l.A, l.B)
		}
		if !top.HasLink(l.A, l.B) {
			t.Fatalf("enumerated link %d-%d not in adjacency", l.A, l.B)
		}
	}
}

func TestSubscriberMassMatchesCountries(t *testing.T) {
	top := Generate(SmallGenConfig(13))
	// Sum of eyeball subscribers should be within 20% of the covered
	// countries' user population (shares are normalized).
	perCountry := map[string]float64{}
	for _, a := range top.ASes {
		if a.Type == Eyeball {
			perCountry[a.Country] += a.SubscribersK
		}
	}
	for code, subsK := range perCountry {
		c, err := CountryUsers(code)
		if err != nil {
			t.Fatalf("country %s: %v", code, err)
		}
		if subsK < 0.5*c*1000 || subsK > 1.5*c*1000 {
			t.Errorf("country %s subscribers %.0fk vs users %.0fk out of range", code, subsK, c*1000)
		}
	}
}
