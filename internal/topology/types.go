// Package topology models the AS-level Internet: autonomous systems,
// business relationships (customer-to-provider and settlement-free peering),
// colocation facilities, IXPs, and address space. A synthetic generator
// (gen.go) produces topologies with the structural properties the paper's
// measurement techniques depend on: a flattened core where content
// hypergiants peer directly with eyeball networks, a transit hierarchy with
// a tier-1 clique, and heavy-tailed address-space and customer-cone sizes.
package topology

import (
	"fmt"
	"sort"

	"itmap/internal/geo"
)

// ASN identifies an autonomous system.
type ASN uint32

// ASType classifies an AS by its business role.
type ASType uint8

// AS roles in the simulated Internet.
const (
	// Tier1 ASes form a full-mesh peering clique at the top of the
	// transit hierarchy and have no providers.
	Tier1 ASType = iota
	// Transit ASes sell transit regionally; customers of tier-1s.
	Transit
	// Eyeball ASes are access ISPs hosting end users.
	Eyeball
	// Hypergiant ASes are large content/CDN providers (the paper's
	// "popular services" owners).
	Hypergiant
	// Cloud ASes host third-party services on shared infrastructure.
	Cloud
	// Enterprise ASes are stub business networks with few users.
	Enterprise
	// Academic ASes host research networks and measurement vantage
	// points (the simulator's RIPE-Atlas/PlanetLab stand-ins).
	Academic
)

// String returns the lower-case name of the AS type.
func (t ASType) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Transit:
		return "transit"
	case Eyeball:
		return "eyeball"
	case Hypergiant:
		return "hypergiant"
	case Cloud:
		return "cloud"
	case Enterprise:
		return "enterprise"
	case Academic:
		return "academic"
	default:
		return fmt.Sprintf("astype(%d)", uint8(t))
	}
}

// Relationship describes how a neighbor relates to this AS, from this AS's
// point of view.
type Relationship uint8

// Relationship values.
const (
	// RelProvider: the neighbor is my transit provider (I pay them).
	RelProvider Relationship = iota
	// RelCustomer: the neighbor is my customer (they pay me).
	RelCustomer
	// RelPeer: settlement-free peering.
	RelPeer
)

// String returns a short name for the relationship.
func (r Relationship) String() string {
	switch r {
	case RelProvider:
		return "provider"
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	default:
		return fmt.Sprintf("rel(%d)", uint8(r))
	}
}

// Invert returns the relationship from the neighbor's point of view.
func (r Relationship) Invert() Relationship {
	switch r {
	case RelProvider:
		return RelCustomer
	case RelCustomer:
		return RelProvider
	default:
		return RelPeer
	}
}

// LinkKind describes where/how an interconnection is realized. The paper's
// §3.3 revolves around the visibility difference between transit links
// (mostly visible in public topologies) and private/IXP peerings of content
// providers (mostly invisible).
type LinkKind uint8

// Link kinds.
const (
	// TransitLink is a paid customer-provider connection.
	TransitLink LinkKind = iota
	// PrivatePeering is a PNI in a shared facility.
	PrivatePeering
	// IXPPeering is public peering over an IXP fabric.
	IXPPeering
)

// String returns a short name for the link kind.
func (k LinkKind) String() string {
	switch k {
	case TransitLink:
		return "transit"
	case PrivatePeering:
		return "pni"
	case IXPPeering:
		return "ixp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// FacilityID identifies a colocation facility.
type FacilityID int32

// Facility is a colocation facility where ASes interconnect.
type Facility struct {
	ID   FacilityID
	Name string
	City geo.City
}

// IXPID identifies an Internet exchange point.
type IXPID int32

// IXP is an Internet exchange point with a member set. IXP peerings are
// realized at the IXP's facility.
type IXP struct {
	ID       IXPID
	Name     string
	Facility FacilityID
	Members  []ASN
}

// Neighbor is one adjacency of an AS.
type Neighbor struct {
	ASN ASN
	// Rel is the relationship from the owning AS's point of view.
	Rel Relationship
	// Kind says how the link is realized.
	Kind LinkKind
	// Facility is where the interconnection happens.
	Facility FacilityID
}

// PeeringPolicy is an AS's published willingness to peer, mirroring the
// PeeringDB field the paper's §3.3.3 proposes feeding a recommender.
type PeeringPolicy uint8

// Peering policies.
const (
	PolicyOpen PeeringPolicy = iota
	PolicySelective
	PolicyRestrictive
)

// String returns a short name for the peering policy.
func (p PeeringPolicy) String() string {
	switch p {
	case PolicyOpen:
		return "open"
	case PolicySelective:
		return "selective"
	default:
		return "restrictive"
	}
}

// AS is one autonomous system.
type AS struct {
	ASN     ASN
	Name    string
	Type    ASType
	Country string // country code; hypergiants/tier1s use "ZZ" (global)
	Region  geo.Region

	// Prefixes is the address space originated by this AS, as /24 IDs.
	// Contiguous per AS.
	Prefixes []PrefixID

	// Facilities lists colocation facilities where the AS is present.
	Facilities []FacilityID

	// Policy is the published peering policy.
	Policy PeeringPolicy

	// Neighbors lists adjacencies, sorted by neighbor ASN.
	Neighbors []Neighbor

	// SubscribersK is the eyeball subscriber count in thousands
	// (ground truth for Figure 2); zero for non-eyeballs.
	SubscribersK float64

	// RootOperator marks networks operating root DNS letters. Like the
	// real operators, they maintain anycast instances at IXPs worldwide
	// and peer very widely — peerings that are mostly invisible in
	// public topologies, which is why Atlas→root paths resist
	// prediction (§3.3.1).
	RootOperator bool
}

// Providers returns the ASNs of this AS's providers.
func (a *AS) Providers() []ASN { return a.neighborsByRel(RelProvider) }

// Customers returns the ASNs of this AS's customers.
func (a *AS) Customers() []ASN { return a.neighborsByRel(RelCustomer) }

// Peers returns the ASNs of this AS's peers.
func (a *AS) Peers() []ASN { return a.neighborsByRel(RelPeer) }

func (a *AS) neighborsByRel(rel Relationship) []ASN {
	var out []ASN
	for _, n := range a.Neighbors {
		if n.Rel == rel {
			out = append(out, n.ASN)
		}
	}
	return out
}

// HasNeighbor reports whether b is a neighbor, and with what relationship.
func (a *AS) HasNeighbor(b ASN) (Relationship, bool) {
	for _, n := range a.Neighbors {
		if n.ASN == b {
			return n.Rel, true
		}
	}
	return 0, false
}

// Topology is the complete AS-level map of the simulated Internet.
type Topology struct {
	// ASes maps ASN to AS. Use Index/ASAt for dense iteration.
	ASes map[ASN]*AS

	// Facilities by ID.
	Facilities []Facility

	// IXPs by ID.
	IXPs []IXP

	// PrefixOwner maps every allocated /24 to its origin AS.
	PrefixOwner map[PrefixID]ASN

	// PrefixCity maps every allocated /24 to the city its users (or
	// servers) are in.
	PrefixCity map[PrefixID]geo.City

	// Allocator continues /24 allocation after generation, so later
	// stages (e.g. off-net cache deployment) can extend address space.
	Allocator *PrefixAllocator

	asns    []ASN // sorted, dense index
	idx     map[ASN]int
	linkIdx *LinkIndex // dense link index; see linkindex.go
}

// AllocPrefixes allocates n fresh /24s, assigns them to owner, and places
// them in city. Used by the services layer to carve out server/off-net
// address space after the base topology exists.
func (t *Topology) AllocPrefixes(owner ASN, n int, city geo.City) []PrefixID {
	a, ok := t.ASes[owner]
	if !ok {
		panic(fmt.Sprintf("topology: AllocPrefixes for unknown AS %d", owner))
	}
	if t.Allocator == nil {
		t.Allocator = NewPrefixAllocator()
	}
	ps := t.Allocator.Alloc(n)
	for _, p := range ps {
		a.Prefixes = append(a.Prefixes, p)
		t.PrefixOwner[p] = owner
		t.PrefixCity[p] = city
	}
	return ps
}

// NewTopology builds an empty topology.
func NewTopology() *Topology {
	return &Topology{
		ASes:        make(map[ASN]*AS),
		PrefixOwner: make(map[PrefixID]ASN),
		PrefixCity:  make(map[PrefixID]geo.City),
		idx:         make(map[ASN]int),
	}
}

// AddAS inserts an AS. It panics if the ASN is already present.
func (t *Topology) AddAS(a *AS) {
	if _, ok := t.ASes[a.ASN]; ok {
		panic(fmt.Sprintf("topology: duplicate ASN %d", a.ASN))
	}
	t.ASes[a.ASN] = a
	t.asns = nil // invalidate dense index
	t.linkIdx = nil
}

// Freeze finalizes the dense AS index and sorts neighbor lists. Call after
// all ASes and links are added and before running BGP.
func (t *Topology) Freeze() {
	t.linkIdx = nil // neighbor rows may re-sort below
	t.asns = make([]ASN, 0, len(t.ASes))
	for asn := range t.ASes {
		t.asns = append(t.asns, asn)
	}
	sort.Slice(t.asns, func(i, j int) bool { return t.asns[i] < t.asns[j] })
	t.idx = make(map[ASN]int, len(t.asns))
	for i, asn := range t.asns {
		t.idx[asn] = i
	}
	for _, a := range t.ASes {
		sort.Slice(a.Neighbors, func(i, j int) bool {
			return a.Neighbors[i].ASN < a.Neighbors[j].ASN
		})
	}
}

// NumASes returns the number of ASes.
func (t *Topology) NumASes() int { return len(t.ASes) }

// ASNs returns all ASNs in ascending order. The returned slice is shared;
// callers must not modify it.
func (t *Topology) ASNs() []ASN {
	if t.asns == nil {
		t.Freeze()
	}
	return t.asns
}

// Index returns the dense index of an ASN, for use with per-AS arrays.
func (t *Topology) Index(asn ASN) (int, bool) {
	if t.asns == nil {
		t.Freeze()
	}
	i, ok := t.idx[asn]
	return i, ok
}

// ASAt returns the AS at dense index i.
func (t *Topology) ASAt(i int) *AS { return t.ASes[t.ASNs()[i]] }

// AddLink connects a and b with the given relationship (rel is a's view of
// b), kind, and facility. It panics on unknown ASes or a pre-existing link.
func (t *Topology) AddLink(a, b ASN, rel Relationship, kind LinkKind, fac FacilityID) {
	asA, okA := t.ASes[a]
	asB, okB := t.ASes[b]
	if !okA || !okB {
		panic(fmt.Sprintf("topology: AddLink unknown AS %d or %d", a, b))
	}
	if a == b {
		panic(fmt.Sprintf("topology: self link at AS %d", a))
	}
	if _, dup := asA.HasNeighbor(b); dup {
		panic(fmt.Sprintf("topology: duplicate link %d-%d", a, b))
	}
	asA.Neighbors = append(asA.Neighbors, Neighbor{ASN: b, Rel: rel, Kind: kind, Facility: fac})
	asB.Neighbors = append(asB.Neighbors, Neighbor{ASN: a, Rel: rel.Invert(), Kind: kind, Facility: fac})
	t.linkIdx = nil // adjacency changed; dense link IDs must be re-minted
}

// HasLink reports whether a and b are directly connected.
func (t *Topology) HasLink(a, b ASN) bool {
	asA, ok := t.ASes[a]
	if !ok {
		return false
	}
	_, has := asA.HasNeighbor(b)
	return has
}

// NumLinks returns the number of undirected adjacencies.
func (t *Topology) NumLinks() int {
	total := 0
	for _, a := range t.ASes {
		total += len(a.Neighbors)
	}
	return total / 2
}

// LinkKey canonically orders an undirected AS pair for use as a map key.
type LinkKey struct{ Lo, Hi ASN }

// MakeLinkKey returns the canonical key for the pair (a, b).
func MakeLinkKey(a, b ASN) LinkKey {
	if a > b {
		a, b = b, a
	}
	return LinkKey{Lo: a, Hi: b}
}

// Compare orders link keys by (Lo, Hi), for deterministic iteration over
// link-keyed maps.
func (k LinkKey) Compare(o LinkKey) int {
	if k.Lo != o.Lo {
		return int(k.Lo) - int(o.Lo)
	}
	return int(k.Hi) - int(o.Hi)
}

// Links returns every undirected link exactly once.
func (t *Topology) Links() []LinkInfo {
	var out []LinkInfo
	for asn, a := range t.ASes {
		for _, n := range a.Neighbors {
			if asn < n.ASN {
				out = append(out, LinkInfo{
					A: asn, B: n.ASN, RelAB: n.Rel,
					Kind: n.Kind, Facility: n.Facility,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// LinkInfo describes one undirected link; RelAB is A's view of B.
type LinkInfo struct {
	A, B     ASN
	RelAB    Relationship
	Kind     LinkKind
	Facility FacilityID
}

// ASesOfType returns all ASNs with the given type, ascending.
func (t *Topology) ASesOfType(ty ASType) []ASN {
	var out []ASN
	for _, asn := range t.ASNs() {
		if t.ASes[asn].Type == ty {
			out = append(out, asn)
		}
	}
	return out
}

// EyeballsInCountry returns the eyeball ASes registered in a country code,
// ascending by ASN.
func (t *Topology) EyeballsInCountry(code string) []ASN {
	var out []ASN
	for _, asn := range t.ASNs() {
		a := t.ASes[asn]
		if a.Type == Eyeball && a.Country == code {
			out = append(out, asn)
		}
	}
	return out
}

// Facility returns the facility with the given ID.
func (t *Topology) Facility(id FacilityID) Facility {
	return t.Facilities[int(id)]
}

// SharedFacilities returns the facilities where both a and b are present.
func (t *Topology) SharedFacilities(a, b ASN) []FacilityID {
	asA, asB := t.ASes[a], t.ASes[b]
	if asA == nil || asB == nil {
		return nil
	}
	set := make(map[FacilityID]bool, len(asA.Facilities))
	for _, f := range asA.Facilities {
		set[f] = true
	}
	var out []FacilityID
	for _, f := range asB.Facilities {
		if set[f] {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OwnerOf returns the AS originating the prefix.
func (t *Topology) OwnerOf(p PrefixID) (ASN, bool) {
	asn, ok := t.PrefixOwner[p]
	return asn, ok
}

// AllPrefixes returns every allocated /24, ascending. This is the
// "routable prefix list" measurement tools iterate over.
func (t *Topology) AllPrefixes() []PrefixID {
	out := make([]PrefixID, 0, len(t.PrefixOwner))
	for p := range t.PrefixOwner {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
