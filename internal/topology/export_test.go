package topology

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestExportJSON(t *testing.T) {
	top := Generate(TinyGenConfig(1))
	var buf bytes.Buffer
	if err := top.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc TopologyDocument
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.ASes) != top.NumASes() {
		t.Errorf("exported %d ASes, world has %d", len(doc.ASes), top.NumASes())
	}
	if len(doc.Links) != top.NumLinks() {
		t.Errorf("exported %d links, world has %d", len(doc.Links), top.NumLinks())
	}
	rootOps := 0
	for _, a := range doc.ASes {
		if a.RootOperator {
			rootOps++
		}
		if a.Type == "" || a.Name == "" {
			t.Fatalf("incomplete AS export %+v", a)
		}
	}
	if rootOps == 0 {
		t.Error("root operators lost in export")
	}
}

func TestExportDOT(t *testing.T) {
	top := Generate(TinyGenConfig(2))
	var buf bytes.Buffer
	if err := top.ExportDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph itmap {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("not a DOT graph")
	}
	if strings.Count(out, " -- ") != top.NumLinks() {
		t.Errorf("DOT has %d edges, world has %d links", strings.Count(out, " -- "), top.NumLinks())
	}
	for _, want := range []string{"doubleoctagon", "style=dashed", "style=dotted"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := top.ExportDOT(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("DOT export not deterministic")
	}
}
