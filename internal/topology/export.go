package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Export formats for inspecting generated worlds with standard tools.

// TopologyDocument is the JSON form of an AS-level topology.
type TopologyDocument struct {
	ASes  []ASDocument   `json:"ases"`
	Links []LinkDocument `json:"links"`
}

// ASDocument is one AS in the export.
type ASDocument struct {
	ASN          uint32  `json:"asn"`
	Name         string  `json:"name"`
	Type         string  `json:"type"`
	Country      string  `json:"country"`
	Prefixes     int     `json:"prefixes"`
	SubscribersK float64 `json:"subscribers_k,omitempty"`
	RootOperator bool    `json:"root_operator,omitempty"`
}

// LinkDocument is one undirected link in the export.
type LinkDocument struct {
	A    uint32 `json:"a"`
	B    uint32 `json:"b"`
	Rel  string `json:"rel_a_to_b"`
	Kind string `json:"kind"`
}

// ExportJSON writes the topology as JSON.
func (t *Topology) ExportJSON(w io.Writer) error {
	doc := TopologyDocument{}
	for _, asn := range t.ASNs() {
		a := t.ASes[asn]
		doc.ASes = append(doc.ASes, ASDocument{
			ASN:          uint32(asn),
			Name:         a.Name,
			Type:         a.Type.String(),
			Country:      a.Country,
			Prefixes:     len(a.Prefixes),
			SubscribersK: a.SubscribersK,
			RootOperator: a.RootOperator,
		})
	}
	for _, l := range t.Links() {
		doc.Links = append(doc.Links, LinkDocument{
			A: uint32(l.A), B: uint32(l.B),
			Rel: l.RelAB.String(), Kind: l.Kind.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ExportDOT writes the topology as a GraphViz digraph-free graph: node
// shape/color by role, edge style by link kind. Large worlds render best
// with sfdp.
func (t *Topology) ExportDOT(w io.Writer) error {
	var b []byte
	app := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	app("graph itmap {\n  overlap=false;\n  node [style=filled, fontsize=8];\n")
	styles := map[ASType]string{
		Tier1:      `shape=hexagon, fillcolor="#ffd966"`,
		Transit:    `shape=box, fillcolor="#d9d2e9"`,
		Eyeball:    `shape=ellipse, fillcolor="#c9daf8"`,
		Hypergiant: `shape=doubleoctagon, fillcolor="#f4cccc"`,
		Cloud:      `shape=octagon, fillcolor="#fce5cd"`,
		Enterprise: `shape=ellipse, fillcolor="#eeeeee"`,
		Academic:   `shape=ellipse, fillcolor="#d9ead3"`,
	}
	// Stable order for byte-identical exports.
	var types []ASType
	for ty := range styles {
		types = append(types, ty)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, ty := range types {
		for _, asn := range t.ASesOfType(ty) {
			a := t.ASes[asn]
			app("  %d [label=\"%s\\nAS%d\", %s];\n", asn, a.Name, asn, styles[ty])
		}
	}
	for _, l := range t.Links() {
		style := "solid"
		switch l.Kind {
		case PrivatePeering:
			style = "dashed"
		case IXPPeering:
			style = "dotted"
		}
		app("  %d -- %d [style=%s];\n", l.A, l.B, style)
	}
	app("}\n")
	_, err := w.Write(b)
	return err
}
