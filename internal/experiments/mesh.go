package experiments

import (
	"strconv"

	"itmap/internal/core"
	"itmap/internal/faults"
	"itmap/internal/mapstore"
	obspkg "itmap/internal/obs"
	"itmap/internal/simtime"
	"itmap/internal/vantage"
	"itmap/internal/world"
)

// MeshSpec configures the vantage-fleet campaigns a mesh-enabled epoch
// build runs alongside the per-day map sweeps.
type MeshSpec struct {
	// Agents and Rounds shape each day's campaign (vantage.Config defaults
	// apply when zero).
	Agents int
	Rounds int
	// Profile is the fault preset the fleet probes under.
	Profile faults.Profile
}

// RunMeshCampaign runs one day's mesh campaign over w: the fleet is placed
// from the world's seed, round 0 starts at the given time.
func RunMeshCampaign(w *world.World, spec MeshSpec, start simtime.Time, workers int) (*core.MeshDocument, *vantage.Stats) {
	c := vantage.New(w.Top, w.Paths, w.Users, vantage.Config{
		Agents:  spec.Agents,
		Rounds:  spec.Rounds,
		Start:   start,
		Workers: workers,
		Seed:    w.Cfg.Seed,
		Profile: spec.Profile,
	})
	return c.Run()
}

// BuildEpochStoreMeshInto is BuildEpochStoreInto plus a per-day vantage
// mesh campaign: day d's fleet sweep starts at d·24h and its MeshMatrix is
// ingested with that day's map, so /v1/path and /v1/latency resolve on
// every epoch. Like the map build, the resulting store — mesh bytes, mesh
// ETags, worst-pair rankings — is identical for every workers setting.
func BuildEpochStoreMeshInto(st *mapstore.Store, w *world.World, days, workers int, spec MeshSpec) error {
	if days < 1 {
		days = 1
	}
	vantage.RegisterMetrics()
	envs := EpochEnvs(w, days, workers)
	obspkg.ActivateTrace("epoch-0")
	mx := envs[0].Matrix()
	for d, e := range envs {
		obspkg.ActivateTrace("epoch-" + strconv.Itoa(d))
		at := simtime.Time(d) * simtime.Day
		mesh, _ := RunMeshCampaign(w, spec, at, workers)
		if _, err := st.AppendMapMesh(at, e.Map(), mx, mesh); err != nil {
			return err
		}
	}
	return nil
}
