package experiments

import (
	"fmt"

	"itmap/internal/faults"
	"itmap/internal/measure/cacheprobe"
	"itmap/internal/resilience"
	"itmap/internal/simtime"
)

// RunE24 measures what the map inherits from a misbehaving substrate. The
// paper's campaigns fight throttling resolvers, lossy paths, and flapping
// PoPs (§3.1.2); this experiment sweeps the fault presets and compares a
// naive single-source prober against the resilient client (retry/backoff,
// per-PoP breakers, sharded sources) on how much of the fault-free
// discovery coverage each recovers, and at what wasted-probe overhead.
func (e *Env) RunE24() *Result {
	r := &Result{ID: "E24", Title: "Measurement resilience under substrate faults"}
	w := e.W
	// A budget-constrained campaign: one domain, two rounds. The full
	// discovery sweep's 8×4 redundancy shrugs off even heavy loss (any
	// surviving probe finds the prefix); a realistic per-window budget is
	// where substrate faults actually cost coverage.
	domains := w.Cat.ECSDomains()[:1]
	const rounds = 2
	prefixes := w.Top.AllPrefixes()

	w.PR.SetFaultPlan(nil)
	defer w.PR.SetFaultPlan(nil)
	basePB := &cacheprobe.Prober{PR: w.PR, Domains: domains, Source: 0x5eed}
	base, err := basePB.DiscoverPrefixes(w.Top, prefixes, e.DiscoveryStart, rounds)
	if err != nil || len(base.Found) == 0 {
		r.Values = append(r.Values, Value{Name: "baseline", Paper: "n/a", Measured: fmt.Sprintf("no fault-free coverage (%v)", err), Pass: false})
		return r
	}

	for _, prof := range faults.Presets() {
		plan := faults.NewPlan(prof, w.Cfg.Seed+404)
		w.PR.SetFaultPlan(plan)

		naivePB := &cacheprobe.Prober{PR: w.PR, Domains: domains, Source: 0x5eed}
		nd, err := naivePB.DiscoverPrefixes(w.Top, prefixes, e.DiscoveryStart, rounds)
		if err != nil {
			r.Values = append(r.Values, Value{Name: prof.Name, Paper: "n/a", Measured: err.Error(), Pass: false})
			return r
		}

		rp := &cacheprobe.ResilientProber{
			PR:      w.PR,
			Domains: domains,
			Retry: resilience.Retryer{
				Budget: 6,
				Backoff: resilience.Backoff{
					Base:   4 * simtime.Minute,
					Factor: 3,
					Cap:    2 * simtime.Hour,
					Jitter: 0.5,
					Seed:   uint64(w.Cfg.Seed) + 404,
				},
			},
			// A deliberately low per-source budget spreads each shard's
			// sweep across hours (the schedule package's interleaving
			// advice), so a ban or outage window only covers a slice of
			// the shard's targets instead of a whole probing round.
			QPS:        0.05,
			Burst:      4,
			BaseSource: 0x7e50,
		}
		rd, stats, err := rp.DiscoverPrefixes(w.Top, prefixes, e.DiscoveryStart, rounds)
		if err != nil {
			r.Values = append(r.Values, Value{Name: prof.Name, Paper: "n/a", Measured: err.Error(), Pass: false})
			return r
		}

		naiveCov := float64(len(nd.Found)) / float64(len(base.Found))
		resCov := float64(len(rd.Found)) / float64(len(base.Found))
		naiveWaste := 0.0
		if nd.Probes > 0 {
			naiveWaste = float64(nd.Failed) / float64(nd.Probes)
		}
		resWaste := 0.0
		if rd.Probes > 0 {
			resWaste = float64(rd.Failed) / float64(rd.Probes)
		}
		// Resilience must not lose to the naive client (modulo the cache
		// occupancy drift retries introduce by probing at shifted times),
		// and under the hostile regime it must hold ≥90% of fault-free
		// coverage while the naive prober measurably cannot.
		pass := resCov >= naiveCov-0.02
		if prof.Name == "hostile" {
			pass = resCov >= 0.90 && naiveCov <= resCov-0.05
		}
		r.Values = append(r.Values, Value{
			Name:     fmt.Sprintf("%s: coverage naive vs resilient", prof.Name),
			Paper:    "n/a (robustness extension)",
			Measured: fmt.Sprintf("%s vs %s of fault-free (waste %s vs %s)", pct(naiveCov), pct(resCov), pct(naiveWaste), pct(resWaste)),
			Pass:     pass,
		})
		if prof.Name == "hostile" {
			r.Values = append(r.Values, Value{
				Name:  "hostile: sweep ledger",
				Paper: "n/a (robustness extension)",
				Measured: fmt.Sprintf("%d probes, %d retries, %d gave-up, %d breaker-opens",
					stats.Probes, stats.Retries, stats.GiveUps, stats.BreakerOpens),
				Pass: stats.Retries > 0,
			})
		}
	}
	return r
}
