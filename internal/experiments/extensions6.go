package experiments

import (
	"fmt"
	"sort"

	"itmap/internal/toplist"
	"itmap/internal/topology"
	"itmap/internal/volreports"
)

// RunE19 quantifies the related-work critique of top lists ([54] and §1):
// they churn day to day, and rank position is a poor stand-in for traffic
// volume — which is why the map weighs by measured activity instead.
func (e *Env) RunE19() *Result {
	r := &Result{ID: "E19", Title: "Top lists: churn and rank-as-traffic-proxy error"}
	tm := e.W.Traffic
	// Average churn over several consecutive day pairs: a single pair of
	// 60-service lists quantizes churn in steps of 1/k.
	const pairs = 4
	var panelDeep, panelTop, resolverDeep float64
	for day := 1; day <= pairs; day++ {
		p1 := toplist.Generate(tm, toplist.PanelProvider, day, 0)
		p2 := toplist.Generate(tm, toplist.PanelProvider, day+1, 0)
		q1 := toplist.Generate(tm, toplist.ResolverProvider, day, 0)
		q2 := toplist.Generate(tm, toplist.ResolverProvider, day+1, 0)
		panelDeep += toplist.TopKChurn(p1, p2, 30) / pairs
		panelTop += toplist.TopKChurn(p1, p2, 5) / pairs
		resolverDeep += toplist.TopKChurn(q1, q2, 30) / pairs
	}
	r1 := toplist.Generate(tm, toplist.ResolverProvider, 1, 0)
	r.Values = append(r.Values, Value{
		Name:     "day-over-day churn grows with list depth",
		Paper:    "[54]: top lists are unstable, especially deeper ranks",
		Measured: fmt.Sprintf("panel churn top-5 %s vs top-30 %s; resolver top-30 %s (mean of %d day pairs)", pct(panelTop), pct(panelDeep), pct(resolverDeep), pairs),
		Pass:     panelDeep >= panelTop-0.05 && resolverDeep <= panelDeep+0.05,
	})

	truth := toplist.TrueByteShares(tm, e.Matrix())
	rankErr := toplist.ShareError(r1.WeightBy(), truth)
	r.Values = append(r.Values, Value{
		Name:     "1/rank weighting vs true traffic shares (TV distance)",
		Paper:    "lists 'do not provide a fine-grained understanding' [54]",
		Measured: pct(rankErr),
		Pass:     rankErr > 0.1,
	})
	return r
}

// RunE20 implements the §4 call to action: operators contribute aggregated
// volume reports, and a handful of reports calibrates the map's relative
// activity into absolute volumes for everyone.
func (e *Env) RunE20() *Result {
	r := &Result{ID: "E20", Title: "Absolute calibration from contributed volume reports"}
	mx := e.Matrix()
	m := e.Map()

	// Contributors: the largest client networks.
	type row struct {
		asn topology.ASN
		b   float64
	}
	var rows []row
	for asn, b := range mx.ClientASBytes {
		if m.Users.ASActivity[asn] > 0 {
			rows = append(rows, row{asn, b})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].b != rows[j].b {
			return rows[i].b > rows[j].b
		}
		return rows[i].asn < rows[j].asn
	})
	evalWith := func(n int) volreports.Eval {
		var reports []volreports.Report
		for i := 0; i < n && i < len(rows); i++ {
			reports = append(reports, volreports.Contribute(mx, rows[i].asn, 0, 0.15, e.W.Cfg.Seed))
		}
		c := volreports.Calibrate(m.Users.ASActivity, reports)
		return volreports.Evaluate(c, m.Users.ASActivity, mx)
	}
	with3 := evalWith(3)
	with10 := evalWith(10)
	r.Values = append(r.Values, Value{
		Name:     "median absolute error with 3 contributing networks",
		Paper:    "§4: 'aggregated volume reports of networks'",
		Measured: fmt.Sprintf("%s over %d ASes", pct(with3.MedianAPE), with3.Covered),
		Pass:     with3.Covered > 50 && with3.MedianAPE < 1.0,
	})
	r.Values = append(r.Values, Value{
		Name:     "with 10 contributors",
		Paper:    "more contributions, better calibration",
		Measured: pct(with10.MedianAPE),
		Pass:     with10.MedianAPE <= with3.MedianAPE+0.1,
	})
	return r
}
