package experiments

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"itmap/internal/loadgen"
	"itmap/internal/mapstore"
	"itmap/internal/obs"
	"itmap/internal/obs/history"
	"itmap/internal/vantage"
	"itmap/internal/world"
)

// serveDump is everything the obs v2 serving surface exposes for one
// seeded campaign: the history ring body, the SLO report, the propagated
// request trace, and the stable metrics (exemplars included).
type serveDump struct {
	historyBody string
	historyETag string
	sloBody     string
	httpTrace   string
	metrics     string
	traced      uint64
}

// runServeStack builds a mesh-enabled 3-epoch store, replays the seeded
// consumer mix against its handler with traceparent propagation, and
// captures the serving surfaces — all against fresh obs + history state.
func runServeStack(t *testing.T, seed int64, buildWorkers, lgWorkers int) serveDump {
	t.Helper()
	prevObs := obs.Swap(obs.NewSet())
	defer obs.Swap(prevObs)
	prevRing := history.Swap(history.NewRing(0))
	defer history.Swap(prevRing)

	st := mapstore.NewStore()
	if err := BuildEpochStoreMeshInto(st, world.Build(world.Tiny(seed)), 3, buildWorkers,
		MeshSpec{Agents: 48, Rounds: 2}); err != nil {
		t.Fatal(err)
	}
	h := mapstore.NewHandler(st)
	res, err := loadgen.Run(loadgen.Config{Seed: seed, Requests: 600, Workers: lgWorkers},
		loadgen.HandlerDoer{Handler: h})
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) (string, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body.String())
		}
		return rec.Body.String(), rec.Header().Get("ETag")
	}
	histBody, histETag := get("/v1/obs/history")
	sloBody, _ := get("/v1/slo")

	tr, ok := obs.Tracing().Lookup("http")
	if !ok {
		t.Fatal("no http trace: traceparent propagation did not reach the tracer")
	}
	spans, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	return serveDump{
		historyBody: histBody,
		historyETag: histETag,
		sloBody:     sloBody,
		httpTrace:   string(spans),
		metrics:     obs.Metrics().StableExposition(),
		traced:      res.Counters.Traced,
	}
}

// TestServeSurfacesByteIdentical is the obs v2 determinism contract:
// /v1/obs/history bodies and ETags, /v1/slo reports, the propagated "http"
// trace, and the stable exposition (exemplars included) are byte-identical
// across runs AND across worker counts — both the store build's and the
// load generator's.
func TestServeSurfacesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds mesh-enabled epoch stores and replays 600 requests")
	}
	d1 := runServeStack(t, 13, 1, 1)
	d2 := runServeStack(t, 13, 1, 1)
	d4 := runServeStack(t, 13, 4, 4)

	check := func(name, a, b, tag string) {
		t.Helper()
		if a != b {
			t.Errorf("%s differs %s:\n%s", name, tag, firstDiff(a, b))
		}
	}
	check("history body", d1.historyBody, d2.historyBody, "between identical runs")
	check("history ETag", d1.historyETag, d2.historyETag, "between identical runs")
	check("slo body", d1.sloBody, d2.sloBody, "between identical runs")
	check("http trace", d1.httpTrace, d2.httpTrace, "between identical runs")
	check("stable metrics", d1.metrics, d2.metrics, "between identical runs")

	check("history body", d1.historyBody, d4.historyBody, "by worker count")
	check("history ETag", d1.historyETag, d4.historyETag, "by worker count")
	check("slo body", d1.sloBody, d4.sloBody, "by worker count")
	check("http trace", d1.httpTrace, d4.httpTrace, "by worker count")
	check("stable metrics", d1.metrics, d4.metrics, "by worker count")

	if d1.traced != 600 {
		t.Errorf("traced = %d, want every planned request to carry a traceparent", d1.traced)
	}
	if !strings.Contains(d1.metrics, "trace_id=") {
		t.Error("stable exposition carries no exemplars")
	}
	if !strings.Contains(d1.sloBody, `"all_met"`) || !strings.Contains(d1.historyBody, `"samples"`) {
		t.Error("serving bodies missing expected fields")
	}
	if !strings.Contains(d1.httpTrace, "trace_id") {
		t.Error("http trace spans carry no propagated trace IDs")
	}
}

// TestHistoryFamilyRouteConsistent pins the per-family view against the
// full listing: same samples, filtered values, its own ETag, and a 404 for
// families the ring never saw.
func TestHistoryFamilyRouteConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a mesh-enabled epoch store")
	}
	prevObs := obs.Swap(obs.NewSet())
	defer obs.Swap(prevObs)
	prevRing := history.Swap(history.NewRing(0))
	defer history.Swap(prevRing)

	st := mapstore.NewStore()
	if err := BuildEpochStoreMeshInto(st, world.Build(world.Tiny(13)), 2, 0,
		MeshSpec{Agents: 32, Rounds: 2}); err != nil {
		t.Fatal(err)
	}
	h := mapstore.NewHandler(st)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/obs/history/itm_mapstore_epochs_total", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("family route = %d: %s", rec.Code, rec.Body.String())
	}
	etag := rec.Header().Get("ETag")
	if !strings.HasPrefix(etag, `"itm-hf`) {
		t.Fatalf("family ETag = %q", etag)
	}
	if !strings.Contains(rec.Body.String(), `"family": "itm_mapstore_epochs_total"`) {
		t.Fatalf("family body:\n%s", rec.Body.String())
	}

	// Conditional revalidation answers 304 with no body.
	req := httptest.NewRequest(http.MethodGet, "/v1/obs/history/itm_mapstore_epochs_total", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("revalidation = %d, body %d bytes, want 304 empty", rec.Code, rec.Body.Len())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/obs/history/itm_never_seen_total", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown family = %d, want 404", rec.Code)
	}
}

// stableFamilies extracts the family names in a stable exposition from its
// TYPE headers, filtered to the audited prefixes.
func stableFamilies(exposition string, prefixes []string) []string {
	var out []string
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line[len("# TYPE "):])[0]
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				out = append(out, name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestServingFamiliesDeclaredUpFront is the exposition audit: every stable
// family the serving stack can emit under traffic must already be declared
// (HELP/TYPE present) by the declare-only construction path — NewStore plus
// the vantage campaign registration — so scrapers see the full schema
// before the first request, and a new family cannot ship undeclared.
func TestServingFamiliesDeclaredUpFront(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a mesh campaign and a loadgen replay")
	}
	prefixes := []string{
		"itm_mapstore_", "itm_codec_", "itm_cache_", "itm_admission_",
		"itm_mesh_", "itm_http_", "itm_trace_", "itm_history_",
	}

	// Declare-only: construct the serving pieces, serve nothing.
	prevObs := obs.Swap(obs.NewSet())
	prevRing := history.Swap(history.NewRing(0))
	mapstore.NewHandler(mapstore.NewStore())
	mapstore.NewAdmission(mapstore.AdmissionConfig{})
	vantage.RegisterMetrics()
	declared := stableFamilies(obs.Metrics().StableExposition(), prefixes)
	obs.Swap(prevObs)
	history.Swap(prevRing)

	// Full traffic: mesh campaign build + loadgen replay.
	d := runServeStack(t, 17, 0, 2)
	emitted := stableFamilies(d.metrics, prefixes)

	if len(emitted) == 0 {
		t.Fatal("traffic run emitted no audited families")
	}
	have := map[string]bool{}
	for _, f := range declared {
		have[f] = true
	}
	for _, f := range emitted {
		if !have[f] {
			t.Errorf("family %s appears under traffic but is not declared at construction "+
				"time — add it to the owning package's declare path", f)
		}
	}
}
