package experiments

import (
	"testing"

	"itmap/internal/faults"
	"itmap/internal/measure/cacheprobe"
	"itmap/internal/obs"
	"itmap/internal/resilience"
	"itmap/internal/simtime"
	"itmap/internal/world"
)

// runObsCampaign runs a mini measurement campaign — a 2-epoch store build
// plus a faulted resilient discovery sweep — against a fresh observability
// set and returns the stable metrics dump and the trace export.
func runObsCampaign(t *testing.T, workers int) (string, string) {
	t.Helper()
	prev := obs.Swap(obs.NewSet())
	defer obs.Swap(prev)

	w := world.Build(world.Tiny(7))
	if _, err := BuildEpochStore(w, 2, workers); err != nil {
		t.Fatal(err)
	}

	prof, ok := faults.ByName("lossy")
	if !ok {
		t.Fatal("no lossy fault preset")
	}
	w.PR.SetFaultPlan(faults.NewPlan(prof, 7))
	defer w.PR.SetFaultPlan(nil)
	obs.ActivateTrace("sweep")
	rp := &cacheprobe.ResilientProber{
		PR:      w.PR,
		Domains: w.Cat.ECSDomains()[:1],
		Retry: resilience.Retryer{
			Budget:  3,
			Backoff: resilience.Backoff{Base: 4 * simtime.Minute, Factor: 2, Jitter: 0.4, Seed: 7},
		},
		Breaker: resilience.BreakerConfig{FailThreshold: 3, Cooldown: simtime.Hour},
		QPS:     50,
		Shards:  4,
		Workers: workers,
	}
	if _, _, err := rp.DiscoverPrefixes(w.Top, w.Top.AllPrefixes(), 0, 2); err != nil {
		t.Fatal(err)
	}

	metrics := obs.Metrics().StableExposition()
	traces, err := obs.Tracing().ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	return metrics, string(traces)
}

// TestObsDumpsByteIdentical is the observability determinism contract: two
// runs of the same seeded campaign — even at different worker counts, since
// shard counts are fixed — produce byte-identical stable metrics dumps and
// trace exports.
func TestObsDumpsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs a full tiny-world build")
	}
	m1, t1 := runObsCampaign(t, 1)
	m2, t2 := runObsCampaign(t, 1)
	if m1 != m2 {
		t.Errorf("stable metrics dumps differ between identical runs:\n%s", firstDiff(m1, m2))
	}
	if t1 != t2 {
		t.Errorf("trace exports differ between identical runs:\n%s", firstDiff(t1, t2))
	}
	m4, t4 := runObsCampaign(t, 4)
	if m1 != m4 {
		t.Errorf("stable metrics dump depends on worker count:\n%s", firstDiff(m1, m4))
	}
	if t1 != t4 {
		t.Errorf("trace export depends on worker count:\n%s", firstDiff(t1, t4))
	}
	if m1 == "" || t1 == "" {
		t.Fatal("campaign produced empty dumps")
	}
}

// firstDiff renders the first differing region of two dumps, for a readable
// failure instead of two multi-kilobyte blobs.
func firstDiff(a, b string) string {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := max(0, i-120)
	end := func(s string) int { return min(len(s), i+120) }
	return "…" + a[lo:end(a)] + "…\nvs\n…" + b[lo:end(b)] + "…"
}
