package experiments

// E14 and E15 continue the extension series: §3.2.3 approach 3 (fine-grained
// server geolocation) and the related-work traffic-matrix-completion line
// [30, 31] driven by the map's own marginals.

import (
	"fmt"

	"itmap/internal/geo"
	"itmap/internal/gravity"
	"itmap/internal/latency"
	"itmap/internal/measure/geoloc"
	"itmap/internal/order"
	"itmap/internal/topology"
)

// RunE14 implements §3.2.3 approach 3: "many use cases need to know the
// city/facility of serving infrastructure. Starting points may be
// client-centric geolocation and constraint-based localization from
// in-facility vantage points."
func (e *Env) RunE14() *Result {
	r := &Result{ID: "E14", Title: "Constraint-based geolocation of serving infrastructure"}
	w := e.W
	lm := latency.New(w.Top, w.Paths, w.Cfg.Seed+707)
	atlas := geoloc.AtlasVPSet(w.Top)
	owner := w.Cat.ReferenceCDN

	// Targets: the reference CDN's serving prefixes (found via TLS scans
	// in practice; here straight from the scan).
	targets := map[topology.PrefixID]geo.City{}
	for _, srv := range e.Scan().ByOwner[owner] {
		targets[srv.Prefix] = srv.City
	}

	// In-facility VPs: another giant's on-net sites.
	var other topology.ASN
	for _, hg := range w.Top.ASesOfType(topology.Hypergiant) {
		if hg != owner {
			other = hg
			break
		}
	}
	facTargets := map[topology.PrefixID]geo.City{}
	if other != 0 {
		for _, s := range w.Cat.Deployments[other].OnNetSites() {
			facTargets[s.Prefix] = s.City
		}
	}
	facility := geoloc.FacilityVPSet(w.Top, facTargets)

	var atlasErrs, combinedErrs []float64
	combined := append(append([]geoloc.VantagePoint{}, atlas...), facility...)
	for _, p := range order.Keys(targets) {
		city := targets[p]
		if est, ok := geoloc.Localize(lm, atlas, p, 5); ok {
			atlasErrs = append(atlasErrs, est.ErrorKm(city.Coord))
		}
		if est, ok := geoloc.Localize(lm, combined, p, 5); ok {
			combinedErrs = append(combinedErrs, est.ErrorKm(city.Coord))
		}
	}
	a := geoloc.Summarize(atlasErrs)
	c := geoloc.Summarize(combinedErrs)
	r.Values = append(r.Values, Value{
		Name:     "median localization error, Atlas VPs",
		Paper:    "proposed: client-centric geolocation",
		Measured: fmt.Sprintf("%.0f km (p90 %.0f km) over %d servers", a.MedianKm, a.P90Km, a.Targets),
		Pass:     a.Targets > 0 && a.MedianKm < 2500,
	})
	r.Values = append(r.Values, Value{
		Name:     "median error with in-facility VPs added",
		Paper:    "proposed: constraint-based localization from in-facility vantage points",
		Measured: fmt.Sprintf("%.0f km (p90 %.0f km)", c.MedianKm, c.P90Km),
		Pass:     c.Targets > 0 && c.MedianKm <= a.MedianKm,
	})
	return r
}

// RunE15 drives traffic-matrix completion [30, 31] with the map's own
// marginals: per-client activity estimates and per-owner footprint volumes.
func (e *Env) RunE15() *Result {
	r := &Result{ID: "E15", Title: "Traffic-matrix completion from the map's marginals"}
	w := e.W
	mx := e.Matrix()
	m := e.Map()

	// Ground-truth pairwise matrix at (client AS, owner AS) grain.
	truth := map[gravity.Pair]float64{}
	trueRows := map[topology.ASN]float64{}
	trueCols := map[topology.ASN]float64{}
	for _, f := range mx.Flows {
		owner := w.Cat.Services[f.Svc].Owner
		truth[gravity.Pair{Client: f.ClientAS, Owner: owner}] += f.Bytes
		trueRows[f.ClientAS] += f.Bytes
		trueCols[owner] += f.Bytes
	}

	// Upper bound: gravity from true marginals.
	oracle := gravity.Evaluate(gravity.Complete(trueRows, trueCols), truth)

	// The map's version: client marginals from measured activity
	// (rescaled to bytes), owner marginals from ground-truth service
	// volumes' published rank shares (the map knows footprints and
	// popularity ranks; absolute volume calibration uses the catalog's
	// Zipf law).
	mapRows := map[topology.ASN]float64{}
	actTotal := order.SumValues(m.Users.ASActivity)
	bytesTotal := order.SumValues(trueRows)
	for asn, act := range m.Users.ASActivity {
		mapRows[asn] = act / actTotal * bytesTotal
	}
	mapCols := map[topology.ASN]float64{}
	for _, svc := range w.Cat.Services {
		mapCols[svc.Owner] += w.Cat.Popularity.Weight(svc.Rank) * svc.BytesPerQuery
	}
	mapEv := gravity.Evaluate(gravity.Complete(mapRows, mapCols), truth)

	r.Values = append(r.Values, Value{
		Name:     "gravity from true marginals (oracle)",
		Paper:    "traffic matrices are completable [30,31]",
		Measured: fmt.Sprintf("rank corr %.2f, weighted MAPE %s", oracle.RankCorr, pct(oracle.WeightedMAPE)),
		Pass:     oracle.RankCorr > 0.8,
	})
	r.Values = append(r.Values, Value{
		Name:     "gravity from the map's measured marginals",
		Paper:    "the ITM supplies the marginals",
		Measured: fmt.Sprintf("rank corr %.2f, weighted MAPE %s (%d cells)", mapEv.RankCorr, pct(mapEv.WeightedMAPE), mapEv.Cells),
		Pass:     mapEv.RankCorr > 0.6,
	})
	return r
}
