package experiments

import (
	"fmt"
	"sort"

	"itmap/internal/core"
	"itmap/internal/geo"
	"itmap/internal/order"
	"itmap/internal/stats"
	"itmap/internal/topology"
)

// RunTable1 reproduces Table 1: for each ITM component, the precision and
// coverage achieved by the current techniques, next to the paper's desired
// granularities.
func (e *Env) RunTable1() *Result {
	r := &Result{ID: "T1", Title: "ITM components: desired vs achieved precision & coverage"}
	w := e.W
	disc := e.Discovery()
	hr := e.HitRates()
	crawl := e.Crawl()
	scan := e.Scan()
	m := e.Map()

	// Component 1a: finding prefixes with users.
	userPrefixes := w.Users.UserPrefixes()
	foundUser := 0
	for _, p := range userPrefixes {
		if disc.Found[p] {
			foundUser++
		}
	}
	userASes := map[topology.ASN]bool{}
	for _, asn := range w.Top.ASNs() {
		if w.Users.ASUsers(asn) > 0 {
			userASes[asn] = true
		}
	}
	foundASes := 0
	for asn := range disc.FoundASes {
		if userASes[asn] {
			foundASes++
		}
	}
	r.Values = append(r.Values, Value{
		Name:  "finding prefixes with users (network coverage)",
		Paper: "50K of 65K ASes, 6.6M of 8.8M /24s",
		Measured: fmt.Sprintf("%d of %d user ASes, %d of %d user /24s",
			foundASes, len(userASes), foundUser, len(userPrefixes)),
		Pass: float64(foundUser) > 0.5*float64(len(userPrefixes)),
	})
	r.Values = append(r.Values, Value{
		Name:     "finding prefixes with users (precision)",
		Paper:    "/24 prefix, weekly",
		Measured: "/24 prefix, per-TTL-window (sub-daily)",
		Pass:     true,
	})

	// Component 1b: relative activity.
	withRate := 0
	for _, v := range hr.ByPrefix {
		if v > 0 {
			withRate++
		}
	}
	r.Values = append(r.Values, Value{
		Name:  "estimating relative activity",
		Paper: "now: yearly, AS grain, 40K ASes",
		Measured: fmt.Sprintf("hit-rate for %d /24s (hourly-capable), root-log volume for %d ASes",
			withRate, len(crawl.ActivityByResolverAS)),
		Pass: withRate > 0 && len(crawl.ActivityByResolverAS) > 0,
	})

	// Component 2a: mapping services.
	ref := w.Cat.ReferenceCDN
	r.Values = append(r.Values, Value{
		Name:  "mapping services (TLS scans)",
		Paper: "monthly, server-owner grain",
		Measured: fmt.Sprintf("%d serving prefixes, %d owners, reference CDN in %d cities / %d off-net hosts",
			len(scan.Servers), len(scan.ByOwner), len(scan.Locations(ref)), len(scan.OffNetHosts(ref))),
		Pass: len(scan.Servers) > 0 && len(scan.OffNetHosts(ref)) > 0,
	})

	// Component 2b: mapping users to hosts.
	val := core.ValidateMapping(m, w.Traffic)
	r.Values = append(r.Values, Value{
		Name:  "mapping users to hosts (ECS probing)",
		Paper: "monthly/daily, prefix grain, ECS services",
		Measured: fmt.Sprintf("%d (domain, client-AS) pairs, %.0f%% agree with ground truth",
			val.Checked, val.Agreement*100),
		Pass: val.Checked > 0 && val.Agreement > 0.8,
	})

	// Component 3: routes.
	pp := e.pathPrediction()
	r.Values = append(r.Values, Value{
		Name:  "routes between users and services",
		Paper: "desired daily at <city,AS>; now N/A",
		Measured: fmt.Sprintf("public view predicts %.0f%% of VP→root paths; giant-link visibility %.0f%%→%.0f%% with cloud campaigns",
			pp.publicCorrect*100, (1-pp.giantInvisible)*100, pp.augmentedGiantVisible*100),
		Pass: pp.augmentedGiantVisible > 1-pp.giantInvisible,
	})
	return r
}

// RunFigure1a reproduces Figure 1a: prefixes discovered per public-resolver
// PoP by cache probing.
func (e *Env) RunFigure1a() *Result {
	r := &Result{ID: "F1a", Title: "Clients detected via cache probing, per resolver PoP"}
	disc := e.Discovery()
	counts := disc.PoPCounts(e.W.PR)
	s := Series{Name: "prefixes per PoP"}
	maxC, minC := 0, 1<<30
	for _, pc := range counts {
		s.Labels = append(s.Labels, pc.PoP.Name)
		s.Values = append(s.Values, float64(pc.Prefixes))
		if pc.Prefixes > maxC {
			maxC = pc.Prefixes
		}
		if pc.Prefixes < minC {
			minC = pc.Prefixes
		}
	}
	r.Series = append(r.Series, s)
	r.Values = append(r.Values, Value{
		Name:     "per-PoP prefix counts span orders of magnitude",
		Paper:    "counts from ~10^1 to ~10^5 across PoPs",
		Measured: fmt.Sprintf("%d PoPs, counts %d..%d", len(counts), minC, maxC),
		Pass:     len(counts) > 3 && maxC >= 10*max(minC, 1),
	})
	return r
}

// RunFigure1b reproduces Figure 1b: per-country share of (APNIC-estimated)
// users inside ASes cache probing identified, plus the reference CDN's
// server map from TLS scans.
func (e *Env) RunFigure1b() *Result {
	r := &Result{ID: "F1b", Title: "Country coverage of cache probing + CDN server locations"}
	w := e.W
	disc := e.Discovery()
	est := e.APNIC()
	scan := e.Scan()

	perCountryTotal := map[string]float64{}
	perCountryFound := map[string]float64{}
	for _, asn := range order.Keys(est.ByAS) {
		a := w.Top.ASes[asn]
		if a == nil || a.Country == "ZZ" {
			continue
		}
		u := est.ByAS[asn]
		perCountryTotal[a.Country] += u
		if disc.FoundASes[asn] {
			perCountryFound[a.Country] += u
		}
	}
	var codes []string
	for c := range perCountryTotal {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	s := Series{Name: "% of country's APNIC users covered"}
	var totalU, foundU float64
	lowCountries := 0
	for _, c := range codes {
		frac := perCountryFound[c] / perCountryTotal[c]
		s.Labels = append(s.Labels, c)
		s.Values = append(s.Values, frac*100)
		totalU += perCountryTotal[c]
		foundU += perCountryFound[c]
		if frac < 0.8 {
			lowCountries++
		}
	}
	r.Series = append(r.Series, s)
	overall := foundU / totalU
	r.Values = append(r.Values, Value{
		Name:     "share of APNIC users in identified ASes",
		Paper:    "98%",
		Measured: pct(overall),
		Pass:     overall > 0.9,
	})
	locs := scan.Locations(w.Cat.ReferenceCDN)
	r.Values = append(r.Values, Value{
		Name:     "CDN server locations found via TLS scans",
		Paper:    "global Facebook footprint (dots)",
		Measured: fmt.Sprintf("%d cities across %d countries", len(locs), countriesOf(locs)),
		Pass:     countriesOf(locs) >= 5,
	})
	r.Notes = fmt.Sprintf("%d of %d countries below 80%% coverage", lowCountries, len(codes))
	return r
}

func countriesOf(cities []geo.City) int {
	seen := map[string]bool{}
	for _, c := range cities {
		seen[c.Country] = true
	}
	return len(seen)
}

// RunFigure2 reproduces Figure 2: ISP subscriber counts vs cache hit rate
// and vs APNIC estimates, with the French-ISP case study.
func (e *Env) RunFigure2() *Result {
	r := &Result{ID: "F2", Title: "Subscribers vs cache hit rate and APNIC estimates"}
	w := e.W
	hr := e.HitRates()
	est := e.APNIC()

	// Panel data: the largest eyeballs worldwide (the paper uses FR, JP,
	// KR, UK, US eyeballs).
	type isp struct {
		name          string
		country       string
		subsK         float64
		hitRate       float64
		apnicM        float64
		hasAPNIC      bool
		isCaseCountry bool
	}
	var isps []isp
	for _, asn := range w.Top.ASesOfType(topology.Eyeball) {
		a := w.Top.ASes[asn]
		rate, ok := hr.ByAS[asn]
		if !ok {
			continue
		}
		row := isp{
			name: a.Name, country: a.Country, subsK: a.SubscribersK,
			hitRate: rate, isCaseCountry: a.Country == "FR",
		}
		if u, ok := est.Users(asn); ok {
			row.apnicM, row.hasAPNIC = u/1e6, true
		}
		isps = append(isps, row)
	}
	sort.Slice(isps, func(i, j int) bool { return isps[i].subsK > isps[j].subsK })

	// Global correlations over large ISPs.
	var subs, rates, apnicX, apnicY []float64
	for _, x := range isps {
		if x.subsK < 500 {
			continue
		}
		subs = append(subs, x.subsK)
		rates = append(rates, x.hitRate)
		if x.hasAPNIC {
			apnicX = append(apnicX, x.subsK)
			apnicY = append(apnicY, x.apnicM)
		}
	}
	rhoHit := stats.Spearman(subs, rates)
	rhoAPNIC := stats.Spearman(apnicX, apnicY)
	r.Values = append(r.Values, Value{
		Name:     "cache hit rate correlates with subscribers",
		Paper:    "visible correlation (fitted line)",
		Measured: fmt.Sprintf("Spearman %.2f over %d large ISPs", rhoHit, len(subs)),
		Pass:     rhoHit > 0.5,
	})
	r.Values = append(r.Values, Value{
		Name:     "APNIC estimates correlate with subscribers",
		Paper:    "visible correlation (fitted line)",
		Measured: fmt.Sprintf("Spearman %.2f over %d ISPs", rhoAPNIC, len(apnicX)),
		Pass:     rhoAPNIC > 0.5,
	})

	// French case study: hit rate must order the named ISPs by
	// subscribers.
	var frSubs, frRates []float64
	var frNames []string
	for _, x := range isps {
		if x.country != "FR" {
			continue
		}
		switch x.name {
		case "Orange", "SFR", "Free", "Bouygues", "Free_M", "El_tele":
			frSubs = append(frSubs, x.subsK)
			frRates = append(frRates, x.hitRate)
			frNames = append(frNames, x.name)
		}
	}
	tau := stats.KendallTau(frSubs, frRates)
	r.Values = append(r.Values, Value{
		Name:     "hit rate orders French ISPs by subscribers",
		Paper:    "correct ordering",
		Measured: fmt.Sprintf("Kendall tau %.2f over %v", tau, frNames),
		Pass:     tau >= 0.7,
	})
	fr := Series{Name: "FR ISP cache-hit counts"}
	for i, n := range frNames {
		fr.Labels = append(fr.Labels, fmt.Sprintf("%s (%.1fM subs)", n, frSubs[i]/1000))
		fr.Values = append(fr.Values, frRates[i])
	}
	r.Series = append(r.Series, fr)
	return r
}
