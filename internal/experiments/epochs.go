package experiments

import (
	"strconv"

	"itmap/internal/mapstore"
	obspkg "itmap/internal/obs"
	"itmap/internal/simtime"
	"itmap/internal/world"
)

// EpochEnvs prepares one measurement environment per simulated day. Day d's
// discovery sweep starts at d·24h and its root-log crawl covers day d, so
// consecutive maps see the world's diurnal drift. Campaigns whose outputs
// are time-invariant (TLS scan, hit rates, collector view, observed
// topology) are computed once on day 0 and shared, mirroring how a real
// operator would reuse an Internet-wide scan across daily map refreshes.
func EpochEnvs(w *world.World, days, workers int) []*Env {
	if days < 1 {
		days = 1
	}
	envs := make([]*Env, days)
	base := NewEnvFromWorld(w)
	base.MatrixWorkers = workers
	envs[0] = base
	if days == 1 {
		return envs
	}
	for d := 1; d < days; d++ {
		e := NewEnvFromWorld(w)
		e.MatrixWorkers = workers
		e.DiscoveryStart = simtime.Time(d) * simtime.Day
		e.CrawlDayIndex = d
		e.shareInvariants(base)
		envs[d] = e
	}
	return envs
}

// BuildEpochStore runs a multi-day measurement campaign over w and ingests
// each day's assembled map into an epoch-versioned store, attaching the
// ground-truth matrix so link-load queries resolve. workers bounds the
// matrix build's parallelism; the resulting store (epoch bytes, diffs,
// rankings) is identical for every setting.
func BuildEpochStore(w *world.World, days, workers int) (*mapstore.Store, error) {
	st := mapstore.NewStore()
	if err := BuildEpochStoreInto(st, w, days, workers); err != nil {
		return nil, err
	}
	return st, nil
}

// BuildEpochStoreInto runs the campaign into a caller-provided store, so
// the caller can configure it first — itm-serve attaches the write-ahead
// log before the first append, making the initial build durable too.
func BuildEpochStoreInto(st *mapstore.Store, w *world.World, days, workers int) error {
	envs := EpochEnvs(w, days, workers)
	// One trace per campaign day; Activate happens at serial points, so every
	// span a day's sweeps record lands in that day's tree.
	obspkg.ActivateTrace("epoch-0")
	mx := envs[0].Matrix()
	for d, e := range envs {
		obspkg.ActivateTrace("epoch-" + strconv.Itoa(d))
		if _, err := st.AppendMap(simtime.Time(d)*simtime.Day, e.Map(), mx); err != nil {
			return err
		}
	}
	return nil
}
