package experiments

import (
	"fmt"

	"itmap/internal/measure/cacheprobe"
	"itmap/internal/order"
)

// RunE16 probes Table 1's desired "Daily" temporal precision for finding
// prefixes with users: re-running discovery on consecutive days should be
// stable for the prefixes that matter (traffic-weighted) while the
// low-activity tail churns — quantifying how often the map must be
// refreshed and how much of each refresh is signal versus flicker.
func (e *Env) RunE16() *Result {
	r := &Result{ID: "E16", Title: "Day-over-day stability of client discovery"}
	w := e.W
	day1 := e.Discovery()
	domains := w.Cat.ECSDomains()
	if len(domains) > e.ProbeDomains {
		domains = domains[:e.ProbeDomains]
	}
	pb := &cacheprobe.Prober{PR: w.PR, Domains: domains}
	day2, err := pb.DiscoverPrefixesParallel(w.Top, w.Top.AllPrefixes(), 24, e.DiscoveryRounds)
	if err != nil {
		r.Values = append(r.Values, Value{Name: "second-day sweep", Paper: "n/a", Measured: err.Error(), Pass: false})
		return r
	}

	inter, union := 0, 0
	for p := range day1.Found {
		union++
		if day2.Found[p] {
			inter++
		}
	}
	for p := range day2.Found {
		if !day1.Found[p] {
			union++
		}
	}
	jaccard := 0.0
	if union > 0 {
		jaccard = float64(inter) / float64(union)
	}

	// Traffic-weighted stability: of the reference-CDN traffic in
	// prefixes discovered at all, how much sits in prefixes found on
	// both days? (Prefixes never found — the public-DNS opt-outs — are a
	// coverage gap, not churn.)
	mx := e.Matrix()
	var everFound, stable float64
	for _, p := range order.Keys(mx.RefCDNByPrefix) {
		if !day1.Found[p] && !day2.Found[p] {
			continue
		}
		b := mx.RefCDNByPrefix[p]
		everFound += b
		if day1.Found[p] && day2.Found[p] {
			stable += b
		}
	}
	stableShare := 0.0
	if everFound > 0 {
		stableShare = stable / everFound
	}
	r.Values = append(r.Values, Value{
		Name:     "prefix-set Jaccard across consecutive days",
		Paper:    "desired: daily refresh (Table 1)",
		Measured: pct(jaccard),
		Pass:     jaccard > 0.7,
	})
	r.Values = append(r.Values, Value{
		Name:     "discovered CDN traffic found on both days",
		Paper:    "the prefixes that matter should be stable",
		Measured: fmt.Sprintf("%s (set churn %s)", pct(stableShare), pct(1-jaccard)),
		Pass:     stableShare > 0.95,
	})
	return r
}
