package experiments

import (
	"strings"
	"testing"

	"itmap/internal/world"
)

// envSmall is shared across tests in this package; experiments are
// read-only over it.
var envSmall = NewEnv(world.Small(1))

func TestRunAllShapesHold(t *testing.T) {
	results := envSmall.RunAll()
	if len(results) != 30 {
		t.Fatalf("expected 30 experiments, got %d", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if len(r.Values) == 0 {
			t.Errorf("%s has no values", r.ID)
		}
		if !r.Pass() {
			t.Errorf("%s failed:\n%s", r.ID, Format([]*Result{r}))
		}
	}
	ids := []string{"T1", "F1a", "F1b", "F2", "E1", "E2", "E3", "E4", "E5",
		"E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24", "E25"}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestEnvCachesArtifacts(t *testing.T) {
	if envSmall.Discovery() != envSmall.Discovery() {
		t.Error("discovery not cached")
	}
	if envSmall.Matrix() != envSmall.Matrix() {
		t.Error("matrix not cached")
	}
	if envSmall.Map() != envSmall.Map() {
		t.Error("map not cached")
	}
}

func TestFigure1aSeriesSorted(t *testing.T) {
	r := envSmall.RunFigure1a()
	if len(r.Series) != 1 {
		t.Fatalf("F1a has %d series", len(r.Series))
	}
	s := r.Series[0]
	if len(s.Labels) != len(s.Values) {
		t.Fatal("labels/values mismatch")
	}
	for i := 1; i < len(s.Values); i++ {
		if s.Values[i] > s.Values[i-1] {
			t.Fatal("PoP series not descending")
		}
	}
}

func TestE2WeightingContrast(t *testing.T) {
	r := envSmall.RunE2()
	// The CDF series must show weighted >> unweighted at <=1 hop.
	var unw, w float64
	for _, s := range r.Series {
		for i, lbl := range s.Labels {
			switch lbl {
			case "unweighted ≤1":
				unw = s.Values[i]
			case "query-weighted ≤1":
				w = s.Values[i]
			}
		}
	}
	if w < 3*unw {
		t.Errorf("weighted short-path frac %.3f not >> unweighted %.3f", w, unw)
	}
}

func TestFormatAndMarkdown(t *testing.T) {
	r := &Result{
		ID: "X1", Title: "test",
		Values: []Value{
			{Name: "a", Paper: "1", Measured: "2", Pass: true},
			{Name: "b", Paper: "3", Measured: "4", Pass: false},
		},
		Series: []Series{{Name: "s", Labels: []string{"l"}, Values: []float64{5}}},
		Notes:  "note here",
	}
	txt := Format([]*Result{r})
	for _, want := range []string{"X1", "FAIL", "!! ", "note here", "series s"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Format output missing %q", want)
		}
	}
	md := Markdown([]*Result{r})
	for _, want := range []string{"### X1", "| a | 1 | 2 | yes |", "| b | 3 | 4 | NO |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown output missing %q", want)
		}
	}
	r.Values = r.Values[:1]
	if !strings.Contains(Format([]*Result{r}), "PASS") {
		t.Error("all-pass result not marked PASS")
	}
}

// TestRunAllSecondSeed guards against the suite being tuned to one seed.
func TestRunAllSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	env := NewEnv(world.Small(99))
	for _, r := range env.RunAll() {
		if !r.Pass() {
			t.Errorf("seed 99: %s failed:\n%s", r.ID, Format([]*Result{r}))
		}
	}
}
