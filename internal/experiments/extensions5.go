package experiments

import (
	"fmt"
	"sort"

	"itmap/internal/measure/tlsscan"
	"itmap/internal/services"
	"itmap/internal/topology"
)

// RunE18 reconstructs the off-net rollout longitudinally: yearly TLS scans
// of the same address space show hypergiant caches spreading through
// eyeball networks, biggest hosts first — the "seven years in the life of
// hypergiants' off-nets" result [25] behind Figure 1b's server map.
func (e *Env) RunE18() *Result {
	r := &Result{ID: "E18", Title: "Off-net footprint growth from yearly TLS scans"}
	w := e.W
	owner := w.Cat.ReferenceCDN
	prefixes := w.Top.AllPrefixes()

	s := Series{Name: fmt.Sprintf("%s off-net host networks by year", w.Top.ASes[owner].Name)}
	prev := -1
	monotone := true
	var first, last int
	var firstMedian, lastMedian float64
	for year := services.FirstOffNetYear; year <= services.LastOffNetYear; year++ {
		scan := tlsscan.ScanAtYear(w.Top, w.Cat, prefixes, year)
		hosts := scan.OffNetHosts(owner)
		n := len(hosts)
		s.Labels = append(s.Labels, fmt.Sprintf("%d", year))
		s.Values = append(s.Values, float64(n))
		if prev >= 0 && n < prev {
			monotone = false
		}
		prev = n
		if year == services.FirstOffNetYear {
			first = n
			firstMedian = medianHostSubs(e, hosts)
		}
		if year == services.LastOffNetYear {
			last = n
			lastMedian = medianHostSubs(e, hosts)
		}
	}
	r.Series = append(r.Series, s)
	r.Values = append(r.Values, Value{
		Name:     "off-net hosts grow monotonically over the window",
		Paper:    "[25]: off-net footprints grew substantially over seven years",
		Measured: fmt.Sprintf("%d (%d) → %d (%d) host networks", first, services.FirstOffNetYear, last, services.LastOffNetYear),
		Pass:     monotone && last >= 3*max(first, 1),
	})
	r.Values = append(r.Values, Value{
		Name:     "rollout reaches smaller hosts over time",
		Paper:    "[25]: expansion beyond the largest eyeballs",
		Measured: fmt.Sprintf("median host size %.0fk → %.0fk subscribers", firstMedian, lastMedian),
		Pass:     last <= first || lastMedian <= firstMedian,
	})
	return r
}

func medianHostSubs(e *Env, hosts []topology.ASN) float64 {
	if len(hosts) == 0 {
		return 0
	}
	subs := make([]float64, 0, len(hosts))
	for _, h := range hosts {
		subs = append(subs, e.W.Top.ASes[h].SubscribersK)
	}
	sort.Float64s(subs)
	return subs[len(subs)/2]
}
