package experiments

// Extension experiments E10-E13 implement the paper's proposed-but-unbuilt
// directions (§3.1.3 resolver-client association and hourly activity,
// §3.2.3 cache efficacy) and its named baseline (§1's traceroute-based
// traffic estimation [53]). They extend the paper's evaluation rather than
// reproduce a printed artifact, so "Paper" columns quote the proposal text.

import (
	"fmt"
	"math"

	"itmap/internal/cachesim"
	"itmap/internal/geo"
	"itmap/internal/measure/cacheprobe"
	"itmap/internal/measure/resolvermap"
	"itmap/internal/measure/tracer"
	"itmap/internal/measure/trafest"
	"itmap/internal/order"
	"itmap/internal/randx"
	"itmap/internal/simtime"
	"itmap/internal/stats"
	"itmap/internal/topology"
)

// RunE10 implements the §3.1.3 open question: "deploy techniques to
// associate recursive resolvers with their clients ... Such an association
// would enable joining of resolver-based techniques with client-based
// techniques."
func (e *Env) RunE10() *Result {
	r := &Result{ID: "E10", Title: "Resolver-client association joins resolver- and client-based techniques"}
	w := e.W
	assoc := resolvermap.Collect(w.Top, w.Users, w.Traffic, w.PR, resolvermap.DefaultConfig())
	crawl := e.Crawl()

	naive := crawl.ClientASes(w.PR.Owner)
	corrected := assoc.Reattribute(w.Top, crawl.ActivityByResolverPrefix)

	var nx, ny, cx, cy []float64
	for _, asn := range w.Top.ASNs() {
		u := w.Users.ASUsers(asn)
		if u == 0 {
			continue
		}
		nx = append(nx, naive[asn])
		ny = append(ny, u)
		cx = append(cx, corrected[asn])
		cy = append(cy, u)
	}
	rhoNaive := stats.Spearman(nx, ny)
	rhoCorrected := stats.Spearman(cx, cy)
	r.Values = append(r.Values, Value{
		Name:     "per-AS activity rank corr, naive vs association-corrected",
		Paper:    "proposed: association would enable joining techniques",
		Measured: fmt.Sprintf("Spearman %.2f → %.2f", rhoNaive, rhoCorrected),
		Pass:     rhoCorrected > rhoNaive,
	})

	// Traffic-weighted recall of the reference CDN with corrected
	// attribution: outsourced-resolver networks come back.
	mx := e.Matrix()
	var total, naiveFound, corrFound float64
	for _, asn := range order.Keys(mx.RefCDNByAS) {
		b := mx.RefCDNByAS[asn]
		total += b
		if naive[asn] > 0 {
			naiveFound += b
		}
		if corrected[asn] > 0 {
			corrFound += b
		}
	}
	r.Values = append(r.Values, Value{
		Name:     "CDN traffic in root-log-identified ASes after correction",
		Paper:    "60% before joining (paper's approach-2 ceiling)",
		Measured: fmt.Sprintf("%s → %s", pct(naiveFound/total), pct(corrFound/total)),
		Pass:     corrFound > naiveFound,
	})
	r.Values = append(r.Values, Value{
		Name:     "client ASes associated with a resolver",
		Paper:    "n/a (proposed)",
		Measured: fmt.Sprintf("%d", assoc.AssociatedClientASes()),
		Pass:     assoc.AssociatedClientASes() > 0,
	})
	return r
}

// RunE11 evaluates the paper's named baseline: estimating inter-domain
// traffic from traceroute crossings "does not apply to the vast majority of
// traffic on today's Internet that crosses private interconnects or flows
// from caches".
func (e *Env) RunE11() *Result {
	r := &Result{ID: "E11", Title: "Traceroute-based traffic estimation misses the modern Internet"}
	w := e.W
	vps := tracer.AtlasVPs(w.Top, randx.New(w.Cfg.Seed+505))
	var targets []topology.ASN
	targets = append(targets, w.Top.ASesOfType(topology.Hypergiant)...)
	targets = append(targets, w.Top.ASesOfType(topology.Cloud)...)
	targets = append(targets, w.Top.ASesOfType(topology.Tier1)...)
	est := trafest.EstimateLinkActivity(w.Paths, vps, targets)
	ev := trafest.Evaluate(w.Top, e.Matrix(), est)

	r.Values = append(r.Values, Value{
		Name:     "traffic served in-network (no inter-AS link at all)",
		Paper:    "flows from caches are invisible to the approach",
		Measured: pct(ev.OffNetShare),
		Pass:     ev.OffNetShare > 0.2,
	})
	r.Values = append(r.Values, Value{
		Name:     "link traffic on links no traceroute crossed",
		Paper:    "private interconnects are invisible",
		Measured: fmt.Sprintf("%s overall; %s of PNI traffic", pct(ev.TrafficOnUnseenLinks), pct(ev.PNITrafficUnseen)),
		Pass:     ev.PNITrafficUnseen > 0.1,
	})
	r.Values = append(r.Values, Value{
		Name:     "rank corr on links it does see",
		Paper:    "works for IXP links it samples [53]",
		Measured: fmt.Sprintf("Spearman %.2f over %d observed links", ev.RankCorrObservedLinks, est.Paths),
		Pass:     ev.RankCorrObservedLinks > 0,
	})
	return r
}

// RunE12 implements the §3.2.3 community-cache proposal: measure off-net
// cache hit rates under normal operation and during flash events.
func (e *Env) RunE12() *Result {
	r := &Result{ID: "E12", Title: "Edge-cache efficacy: normal operation vs flash events"}
	rng := randx.New(e.W.Cfg.Seed + 606)
	const catalog = 20000
	base := cachesim.NewZipfWorkload(catalog, 0.9)

	// Capacity sweep under normal operation, cross-checked against the
	// Che approximation (the simulator is not free to be wrong).
	s := Series{Name: "hit rate vs cache capacity (simulated | Che)"}
	maxDev := 0.0
	for _, capacity := range []int{200, 1000, 5000} {
		sim := cachesim.MeasureHitRate(cachesim.NewLRU(capacity), base, rng, 60000, 200000)
		che := cachesim.CheHitRate(capacity, base.Weights())
		if d := math.Abs(sim - che); d > maxDev {
			maxDev = d
		}
		s.Labels = append(s.Labels, fmt.Sprintf("cap %d sim", capacity))
		s.Values = append(s.Values, sim)
		s.Labels = append(s.Labels, fmt.Sprintf("cap %d che", capacity))
		s.Values = append(s.Values, che)
	}
	r.Series = append(r.Series, s)
	r.Values = append(r.Values, Value{
		Name:     "LRU model agrees with Che approximation",
		Paper:    "n/a (model validation)",
		Measured: fmt.Sprintf("max deviation %.3f", maxDev),
		Pass:     maxDev < 0.03,
	})

	normal := cachesim.MeasureHitRate(cachesim.NewLRU(1000), base, rng, 60000, 200000)
	flash := &cachesim.FlashWorkload{Base: base, HotKey: catalog + 1, HotShare: 0.5}
	during := cachesim.MeasureHitRate(cachesim.NewLRU(1000), flash, rng, 60000, 200000)
	r.Values = append(r.Values, Value{
		Name:     "hit rate normal vs flash event",
		Paper:    "proposed: measure hit rate under normal operation and during flash events",
		Measured: fmt.Sprintf("%s normal → %s during flash", pct(normal), pct(during)),
		Pass:     during > normal,
	})
	return r
}

// RunE13 pushes the users component to Table 1's desired "Hourly" temporal
// precision: per-hour cache hit rates recover each network's diurnal
// activity curve, with the peak at the users' local evening.
func (e *Env) RunE13() *Result {
	r := &Result{ID: "E13", Title: "Hourly activity curves recovered from cache probing"}
	w := e.W
	// High-population prefixes keep the top domains cached around the
	// clock (saturated hit rate, no curve); small office/campus prefixes
	// sit in the informative mid-range where cache occupancy follows
	// instantaneous demand. Probe those, grouped by country (= timezone).
	domain := w.Cat.ECSDomains()[0]
	pb := &cacheprobe.Prober{PR: w.PR}
	byCountry := map[string][]topology.PrefixID{}
	for _, ty := range []topology.ASType{topology.Enterprise, topology.Academic} {
		for _, asn := range w.Top.ASesOfType(ty) {
			a := w.Top.ASes[asn]
			byCountry[a.Country] = append(byCountry[a.Country], a.Prefixes...)
		}
	}
	checked, close, diurnal := 0, 0, 0
	for _, c := range geo.Countries() {
		prefixes := byCountry[c.Code]
		if len(prefixes) < 8 {
			continue
		}
		hp := &cacheprobe.HourlyProfile{}
		ok := true
		for day := 0; day < 3; day++ {
			d, err := pb.MeasureHourlyProfile(w.Top, prefixes, domain,
				simtime.Time(24*day), 5*simtime.Minute)
			if err != nil {
				ok = false
				break
			}
			for h := 0; h < 24; h++ {
				hp.Hits[h] += d.Hits[h]
				hp.Probes[h] += d.Probes[h]
			}
		}
		if !ok {
			continue
		}
		if hp.Swing() < 0.2 {
			continue // saturated or empty signal
		}
		diurnal++
		truePeakUTC := int(math.Round(20-c.UTCOffsetHours+24)) % 24
		checked++
		if cacheprobe.HourDistance(hp.PeakUTCHour(), truePeakUTC) <= 3 {
			close++
		}
	}
	frac := 0.0
	if checked > 0 {
		frac = float64(close) / float64(checked)
	}
	r.Values = append(r.Values, Value{
		Name:     "networks whose recovered peak hour matches local evening (±3h)",
		Paper:    "desired: hourly precision (Table 1)",
		Measured: fmt.Sprintf("%s of %d countries' largest ISPs (%d diurnal)", pct0(frac), checked, diurnal),
		Pass:     checked > 0 && frac > 0.7,
	})
	return r
}
