// Package experiments reproduces every table, figure, and in-text
// quantitative claim of the paper's evaluation: Table 1, Figures 1a, 1b
// and 2, plus the claims catalogued as E1–E9 in DESIGN.md. Each runner
// returns a structured Result carrying paper-reported values next to
// measured ones so EXPERIMENTS.md can be regenerated mechanically.
package experiments

import (
	"bytes"
	"sync"

	"itmap/internal/apnic"
	"itmap/internal/bgp"
	"itmap/internal/core"
	"itmap/internal/measure/cacheprobe"
	"itmap/internal/measure/rootlogs"
	"itmap/internal/measure/tlsscan"
	"itmap/internal/mrt"
	"itmap/internal/randx"
	"itmap/internal/simtime"
	"itmap/internal/topology"
	"itmap/internal/traffic"
	"itmap/internal/world"
)

// Env shares the expensive artifacts (world, matrix, measurement campaigns)
// across experiment runners. Everything is built lazily and cached.
type Env struct {
	W *world.World

	mu sync.Mutex
	//itm:guardedby mu
	mx *traffic.Matrix
	//itm:guardedby mu
	est *apnic.Estimates
	//itm:guardedby mu
	discovery *cacheprobe.Discovery
	//itm:guardedby mu
	hitRates *cacheprobe.HitRates
	//itm:guardedby mu
	crawl *rootlogs.Crawl
	//itm:guardedby mu
	scan *tlsscan.Scan
	//itm:guardedby mu
	collector *bgp.Collector
	//itm:guardedby mu
	obsLinks map[topology.LinkKey]bool
	//itm:guardedby mu
	observed *topology.Topology
	//itm:guardedby mu
	trafMap *core.TrafficMap

	// ProbeDomains caps the domain list for discovery sweeps.
	ProbeDomains int
	// DiscoveryStart is the simulated time the discovery sweep begins
	// (shift by 24h increments for day-over-day comparisons).
	DiscoveryStart simtime.Time
	// DiscoveryRounds is how many times per day discovery re-probes.
	DiscoveryRounds int
	// CrawlDayIndex selects which simulated day the root-log crawl
	// covers (shift together with DiscoveryStart for multi-epoch runs).
	CrawlDayIndex int
	// HitRateInterval is the Figure 2 probing cadence.
	HitRateInterval simtime.Time
	// MatrixWorkers bounds the goroutines building the ground-truth
	// matrix (0 = one per CPU). The result is identical either way —
	// the shard-and-merge build is deterministic across worker counts —
	// so this only trades wall clock for CPU when experiments share a
	// machine.
	MatrixWorkers int
}

// NewEnv builds the world for an experiment run.
func NewEnv(cfg world.Config) *Env {
	return NewEnvFromWorld(world.Build(cfg))
}

// NewEnvFromWorld wraps an existing world (e.g. one the caller also probes
// directly) in an experiment environment.
func NewEnvFromWorld(w *world.World) *Env {
	return &Env{
		W:               w,
		ProbeDomains:    8,
		DiscoveryRounds: 4,
		HitRateInterval: 15 * simtime.Minute,
	}
}

// Matrix returns the ground-truth traffic matrix.
func (e *Env) Matrix() *traffic.Matrix {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mx == nil {
		e.mx = e.W.Traffic.BuildMatrixWorkers(e.MatrixWorkers)
	}
	return e.mx
}

// APNIC returns the published user estimates.
func (e *Env) APNIC() *apnic.Estimates {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.est == nil {
		e.est = apnic.Estimate(e.W.Top, e.W.Users, apnic.DefaultConfig(), randx.New(e.W.Cfg.Seed+101))
	}
	return e.est
}

// Discovery returns the cache-probing discovery sweep.
func (e *Env) Discovery() *cacheprobe.Discovery {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.discovery == nil {
		domains := e.W.Cat.ECSDomains()
		if len(domains) > e.ProbeDomains {
			domains = domains[:e.ProbeDomains]
		}
		pb := &cacheprobe.Prober{PR: e.W.PR, Domains: domains}
		d, err := pb.DiscoverPrefixesParallel(e.W.Top, e.W.Top.AllPrefixes(), e.DiscoveryStart, e.DiscoveryRounds)
		if err != nil {
			panic(err) // programming error: domains come from the catalog
		}
		e.discovery = d
	}
	return e.discovery
}

// HitRates returns the Figure 2 hit-rate campaign.
func (e *Env) HitRates() *cacheprobe.HitRates {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hitRates == nil {
		pb := &cacheprobe.Prober{PR: e.W.PR}
		// A mid-popularity domain keeps hit rates in the low-percent
		// range (the paper's Figure 2 shows 0-8%) instead of
		// saturating: the very top domains are nearly always cached
		// for any large ISP.
		domains := e.W.Cat.ECSDomains()
		domain := domains[len(domains)/2]
		hr, err := pb.MeasureHitRatesParallel(e.W.Top, e.W.Top.AllPrefixes(),
			domain, 0, e.HitRateInterval)
		if err != nil {
			panic(err)
		}
		e.hitRates = hr
	}
	return e.hitRates
}

// Crawl returns the root-log crawl.
func (e *Env) Crawl() *rootlogs.Crawl {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crawl == nil {
		e.crawl = rootlogs.CrawlDay(e.W.Roots, e.W.Traffic, e.CrawlDayIndex)
	}
	return e.crawl
}

// Scan returns the Internet-wide TLS scan.
func (e *Env) Scan() *tlsscan.Scan {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scan == nil {
		e.scan = tlsscan.ScanAll(e.W.Top, e.W.Cat, e.W.Top.AllPrefixes())
	}
	return e.scan
}

// Collector returns the route-collector vantage.
func (e *Env) Collector() *bgp.Collector {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.collector == nil {
		e.collector = &bgp.Collector{
			Peers: bgp.DefaultCollectorPeers(e.W.Top, randx.New(e.W.Cfg.Seed+202)),
		}
	}
	return e.collector
}

// ObservedLinks returns the links visible to the collectors, derived the
// way a researcher derives them: the collector exports an MRT TABLE_DUMP_V2
// file, and the link set is parsed back out of those bytes.
func (e *Env) ObservedLinks() map[topology.LinkKey]bool {
	col := e.Collector()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.obsLinks == nil {
		var buf bytes.Buffer
		if err := col.ExportMRT(&buf, e.W.Paths, 0); err != nil {
			panic(err) // collector peers come from the topology
		}
		dump, err := mrt.Read(&buf)
		if err != nil {
			panic(err) // we just wrote these bytes
		}
		e.obsLinks = bgp.ObservedLinksFromDump(dump)
	}
	return e.obsLinks
}

// Observed returns the public-view topology.
func (e *Env) Observed() *topology.Topology {
	links := e.ObservedLinks()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.observed == nil {
		e.observed = e.W.Top.SubgraphWithLinks(links)
	}
	return e.observed
}

// shareInvariants copies the time-invariant campaign artifacts (TLS scan,
// hit rates, collector view, observed topology) from base, computing them
// there first if needed. Later-day epoch environments call this instead of
// re-running Internet-wide sweeps; the artifacts are immutable once built,
// so sharing the pointers is safe.
func (e *Env) shareInvariants(base *Env) {
	scan := base.Scan()
	hr := base.HitRates()
	col := base.Collector()
	links := base.ObservedLinks()
	obs := base.Observed()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.scan = scan
	e.hitRates = hr
	e.collector = col
	e.obsLinks = links
	e.observed = obs
}

// Map returns the fully assembled traffic map.
func (e *Env) Map() *core.TrafficMap {
	disc := e.Discovery()
	hr := e.HitRates()
	crawl := e.Crawl()
	scan := e.Scan()
	obs := e.Observed()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.trafMap == nil {
		domains := e.W.Cat.ECSDomains()
		if len(domains) > 5 {
			domains = domains[:5]
		}
		e.trafMap = core.BuildMap(core.BuildInputs{
			Top:                 e.W.Top,
			Discovery:           disc,
			HitRates:            hr,
			RootCrawl:           crawl,
			PublicResolverOwner: e.W.PR.Owner,
			Scan:                scan,
			Auth:                e.W.Auth,
			PR:                  e.W.PR,
			MapDomains:          domains,
			Observed:            obs,
		})
	}
	return e.trafMap
}
