package experiments

import (
	"testing"

	"itmap/internal/world"
)

// TestETagsWorkerCountStable is the validator half of the determinism
// contract: ETags derive from each epoch's canonical ITMB encoding, so a
// store built with 1 worker and one built with 4 must issue identical tags
// for every epoch. A client that cached against one replica then revalidates
// correctly against any other.
func TestETagsWorkerCountStable(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two tiny-world epoch stores")
	}
	build := func(workers int) []string {
		s, err := BuildEpochStore(world.Build(world.Tiny(11)), 3, workers)
		if err != nil {
			t.Fatalf("BuildEpochStore(workers=%d): %v", workers, err)
		}
		var tags []string
		for _, e := range s.Snapshot() {
			if e.ETag == "" {
				t.Fatalf("epoch %d has no ETag", e.ID)
			}
			tags = append(tags, e.ETag)
		}
		return tags
	}
	one := build(1)
	four := build(4)
	if len(one) != 3 || len(four) != 3 {
		t.Fatalf("epoch counts: %d vs %d, want 3", len(one), len(four))
	}
	for i := range one {
		if one[i] != four[i] {
			t.Errorf("epoch %d ETag differs by worker count: %q vs %q", i, one[i], four[i])
		}
	}
	// Distinct epochs carry distinct tags (the generation is in the tag).
	for i := 1; i < len(one); i++ {
		if one[i] == one[i-1] {
			t.Errorf("epochs %d and %d share ETag %q", i-1, i, one[i])
		}
	}
}
