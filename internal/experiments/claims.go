package experiments

import (
	"fmt"

	"itmap/internal/bgp"
	"itmap/internal/core"
	"itmap/internal/measure/catchment"
	"itmap/internal/measure/ipid"
	"itmap/internal/measure/tracer"
	"itmap/internal/peering"
	"itmap/internal/randx"
	"itmap/internal/services"
	"itmap/internal/simtime"
	"itmap/internal/stats"
	"itmap/internal/topology"
)

// RunE1 reproduces the traffic-concentration premise: most traffic flows
// between a small number of content providers and user networks
// (Labovitz 2010; Gigis 2021's "responsible for 90%").
func (e *Env) RunE1() *Result {
	r := &Result{ID: "E1", Title: "Traffic concentration on a handful of providers"}
	mx := e.Matrix()
	top5 := mx.CumulativeTopShare(5)
	top10 := mx.CumulativeTopShare(10)
	giants := mx.CumulativeTopShare(len(e.W.Cat.Owners()))
	r.Values = append(r.Values, Value{
		Name:     "top-10 origin owners' traffic share",
		Paper:    "~90% from a few giants [25,40]",
		Measured: fmt.Sprintf("top5 %s, top10 %s, all giants %s", pct0(top5), pct0(top10), pct0(giants)),
		Pass:     top10 > 0.7 && giants < 0.99,
	})
	s := Series{Name: "cumulative owner traffic share"}
	for _, k := range []int{1, 2, 3, 5, 10, 20} {
		s.Labels = append(s.Labels, fmt.Sprintf("top-%d", k))
		s.Values = append(s.Values, mx.CumulativeTopShare(k))
	}
	r.Series = append(r.Series, s)
	return r
}

// RunE2 reproduces the §2.1 weighting contrast: in an academic topology
// almost no paths are short, yet most query volume to a hypergiant comes
// from ASes at most one hop away.
func (e *Env) RunE2() *Result {
	r := &Result{ID: "E2", Title: "Unweighted vs query-weighted path lengths"}
	w := e.W
	mx := e.Matrix()

	// Unweighted view: paths from academic vantage points (the iPlane/
	// PlanetLab analogue) to every AS, one count each.
	var unweighted stats.WeightedCDF
	for _, vp := range w.Top.ASesOfType(topology.Academic) {
		if w.Top.ASes[vp].RootOperator {
			continue // PlanetLab hosts were plain campus networks
		}
		for _, dst := range w.Top.ASNs() {
			if dst == vp {
				continue
			}
			if h := w.Paths.Hops(vp, dst); h >= 0 {
				unweighted.Add(float64(h), 1)
			}
		}
	}
	shortUnweighted := unweighted.FracAtMost(1)

	// Weighted view: query volume to the largest hypergiant by hops from
	// the client AS to its serving site's host.
	topOwner := mx.TopOwners()[0].ASN
	var weighted stats.WeightedCDF
	for _, f := range mx.Flows {
		svc := w.Cat.Services[f.Svc]
		if svc.Owner != topOwner || f.Hops < 0 {
			continue
		}
		weighted.Add(float64(f.Hops), f.Bytes/svc.BytesPerQuery)
	}
	shortWeighted := weighted.FracAtMost(1)

	r.Values = append(r.Values, Value{
		Name:     "paths ≤1 AS hop, unweighted academic view",
		Paper:    "2% of iPlane paths were two ASes long",
		Measured: pct(shortUnweighted),
		Pass:     shortUnweighted < 0.25,
	})
	r.Values = append(r.Values, Value{
		Name:     "queries from ASes ≤1 hop from the top hypergiant",
		Paper:    "73% of Google queries",
		Measured: pct(shortWeighted),
		Pass:     shortWeighted > 0.5 && shortWeighted > 2*shortUnweighted,
	})
	s := Series{Name: "CDF of AS-path hops"}
	for h := 0; h <= 4; h++ {
		s.Labels = append(s.Labels, fmt.Sprintf("unweighted ≤%d", h))
		s.Values = append(s.Values, unweighted.FracAtMost(float64(h)))
	}
	for h := 0; h <= 4; h++ {
		s.Labels = append(s.Labels, fmt.Sprintf("query-weighted ≤%d", h))
		s.Values = append(s.Values, weighted.FracAtMost(float64(h)))
	}
	r.Series = append(r.Series, s)
	return r
}

// RunE3 reproduces the anycast-in-context result (Koch 2021): few routes
// are optimal but most users are, and most users land near their closest
// site.
func (e *Env) RunE3() *Result {
	r := &Result{ID: "E3", Title: "Anycast catchment optimality (routes vs users)"}
	w := e.W
	var owner topology.ASN
	for _, s := range w.Cat.Services {
		if s.Kind == services.Anycast {
			owner = s.Owner
			break
		}
	}
	if owner == 0 {
		r.Values = append(r.Values, Value{Name: "anycast service present", Paper: "n/a", Measured: "none", Pass: false})
		return r
	}
	var clients []topology.ASN
	clients = append(clients, w.Top.ASesOfType(topology.Eyeball)...)
	clients = append(clients, w.Top.ASesOfType(topology.Enterprise)...)
	clients = append(clients, w.Top.ASesOfType(topology.Academic)...)
	m := catchment.Measure(w.Cat, w.Paths, owner, clients)
	an := catchment.Analyze(m, w.Cat, w.Top, w.Users)

	r.Values = append(r.Values, Value{
		Name:     "routes landing at the closest site",
		Paper:    "31% of routes",
		Measured: pct(an.RouteOptimalFrac),
		Pass:     an.RouteOptimalFrac < an.UserOptimalFrac,
	})
	r.Values = append(r.Values, Value{
		Name:     "users landing at the optimal site",
		Paper:    "60% of users",
		Measured: pct(an.UserOptimalFrac),
		Pass:     an.UserOptimalFrac > 0.5,
	})
	within := an.UserFracWithinKm(500)
	r.Values = append(r.Values, Value{
		Name:     "users directed within 500 km of closest site",
		Paper:    "80% of clients",
		Measured: pct(within),
		Pass:     within > 0.6,
	})
	s := Series{Name: "user-weighted catchment proximity CDF"}
	for _, km := range []float64{0, 100, 250, 500, 1000, 2500, 5000} {
		s.Labels = append(s.Labels, fmt.Sprintf("≤%.0f km", km))
		s.Values = append(s.Values, an.UserFracWithinKm(km))
	}
	r.Series = append(r.Series, s)
	return r
}

type pathPredictionStats struct {
	publicCorrect         float64 // exact-path prediction rate on public view
	publicNoRoute         float64
	augmentedCorrect      float64
	giantInvisible        float64
	augmentedGiantVisible float64
	pairs                 int
}

// pathPrediction quantifies §3.3.1/§3.3.2: predicting Atlas→root-host
// paths on the public topology, then after adding cloud-VM measurements.
func (e *Env) pathPrediction() pathPredictionStats {
	w := e.W
	obs := e.Observed()
	vis := bgp.MeasureVisibility(w.Top, e.ObservedLinks())

	// Root DNS hosts: the topology's root-operator networks (academic
	// ASes with anycast instances at IXPs worldwide, like the real
	// letters' operators).
	var hosts []topology.ASN
	for _, asn := range w.Top.ASNs() {
		if w.Top.ASes[asn].RootOperator {
			hosts = append(hosts, asn)
		}
	}
	hgs := w.Top.ASesOfType(topology.Hypergiant)
	if len(hosts) == 0 {
		hosts = append(hosts, hgs[0])
	}

	vps := tracer.AtlasVPs(w.Top, randx.New(w.Cfg.Seed+303))

	// Augmented topology: public links plus campaigns from cloud VMs.
	giants := append(append([]topology.ASN{}, w.Top.ASesOfType(topology.Cloud)...), hgs...)
	cloudLinks := tracer.CloudCampaign(w.Paths, giants, w.Top.ASNs())
	augLinks := tracer.Union(e.ObservedLinks(), cloudLinks)
	augmented := w.Top.SubgraphWithLinks(augLinks)

	var st pathPredictionStats
	st.giantInvisible = 1 - vis.FracGiantPeeringsVisible()
	st.augmentedGiantVisible = bgp.MeasureVisibility(w.Top, augLinks).FracGiantPeeringsVisible()
	var okPub, noRoute, okAug, total float64
	for _, host := range hosts {
		pubRIB := bgp.ComputeRIB(obs, host)
		augRIB := bgp.ComputeRIB(augmented, host)
		truthRIB := w.Paths.RIBFor(host)
		for _, vp := range vps {
			truth := truthRIB.PathFrom(vp.AS)
			if truth == nil {
				continue
			}
			total++
			pub := pubRIB.PathFrom(vp.AS)
			if pub == nil {
				noRoute++
			} else if tracer.PathsEqual(pub, truth) {
				okPub++
			}
			if aug := augRIB.PathFrom(vp.AS); tracer.PathsEqual(aug, truth) {
				okAug++
			}
		}
	}
	if total > 0 {
		st.publicCorrect = okPub / total
		st.publicNoRoute = noRoute / total
		st.augmentedCorrect = okAug / total
		st.pairs = int(total)
	}
	return st
}

// RunE4 reproduces the path-prediction gap: public topologies miss most
// giant peerings, so most VP→root paths cannot be predicted; cloud
// campaigns close much of the gap.
func (e *Env) RunE4() *Result {
	r := &Result{ID: "E4", Title: "Path prediction on public vs augmented topologies"}
	st := e.pathPrediction()
	r.Values = append(r.Values, Value{
		Name:     "giant peering links invisible to collectors",
		Paper:    ">90% of IXP/hypergiant peerings [4,48]",
		Measured: pct(st.giantInvisible),
		Pass:     st.giantInvisible > 0.7,
	})
	r.Values = append(r.Values, Value{
		Name:     "VP→root paths predicted wrong or unroutable (public)",
		Paper:    ">50% could not be predicted",
		Measured: fmt.Sprintf("%s (of %d pairs; %s had no route)", pct(1-st.publicCorrect), st.pairs, pct(st.publicNoRoute)),
		Pass:     1-st.publicCorrect > 0.3,
	})
	r.Values = append(r.Values, Value{
		Name:  "giant peerings visible after cloud-VM campaigns",
		Paper: "cloud VPs uncover most cloud peerings [7]",
		Measured: fmt.Sprintf("%s visible (vs %s from collectors); prediction %s→%s",
			pct(st.augmentedGiantVisible), pct(1-st.giantInvisible),
			pct(st.publicCorrect), pct(st.augmentedCorrect)),
		Pass: st.augmentedGiantVisible > 0.85,
	})
	return r
}

// RunE5 reproduces the §3.1.2 client-discovery validation against the
// reference CDN's server logs.
func (e *Env) RunE5() *Result {
	r := &Result{ID: "E5", Title: "Client discovery validated against reference-CDN logs"}
	v := core.ValidateUsers(e.Map(), e.Matrix(), e.APNIC())
	r.Values = append(r.Values, Value{
		Name:     "CDN traffic in prefixes found by cache probing",
		Paper:    "95%",
		Measured: pct(v.PrefixTrafficRecall),
		Pass:     v.PrefixTrafficRecall > 0.85,
	})
	r.Values = append(r.Values, Value{
		Name:     "CDN traffic in ASes found by root-log crawling",
		Paper:    "60%",
		Measured: pct(v.ASTrafficRecallRoots),
		Pass:     v.ASTrafficRecallRoots > 0.4,
	})
	r.Values = append(r.Values, Value{
		Name:     "CDN traffic in ASes found by either technique",
		Paper:    "99%",
		Measured: pct(v.ASTrafficRecallCombined),
		Pass:     v.ASTrafficRecallCombined > 0.9,
	})
	r.Values = append(r.Values, Value{
		Name:     "found prefixes that never contacted the CDN",
		Paper:    "<1%",
		Measured: pct(v.FalseDiscoveryFrac),
		Pass:     v.FalseDiscoveryFrac < 0.05,
	})
	r.Values = append(r.Values, Value{
		Name:     "APNIC-estimated users in identified ASes",
		Paper:    "98%",
		Measured: pct(v.APNICUserCoverage),
		Pass:     v.APNICUserCoverage > 0.9,
	})
	r.Values = append(r.Values, Value{
		Name:     "activity estimate vs truth (rank corr)",
		Paper:    "n/a (proposed)",
		Measured: fmt.Sprintf("Spearman %.2f", v.ActivityRankCorr),
		Pass:     v.ActivityRankCorr > 0.5,
	})
	return r
}

// RunE6 reproduces the IP-ID velocity intuition: router counters are
// diurnal and proportional to forwarded traffic.
func (e *Env) RunE6() *Result {
	r := &Result{ID: "E6", Title: "IP-ID velocities are diurnal and track traffic"}
	w := e.W
	mx := e.Matrix()
	meter := ipid.NewMeter(w.Top, mx, w.Cfg.Seed+404)

	var xs, ys []float64
	diurnal, loaded := 0, 0
	for _, asn := range w.Top.ASNs() {
		if mx.ASLoad[asn] == 0 {
			continue
		}
		samples := ipid.ProbeVelocity(meter, asn, 0, 48, 30*simtime.Minute)
		mean := ipid.MeanRate(samples)
		xs = append(xs, mean)
		ys = append(ys, mx.ASLoad[asn])
		if mean < 100 {
			continue
		}
		loaded++
		if ipid.DiurnalitySwing(samples) > 0.4 {
			diurnal++
		}
	}
	rho := stats.Spearman(xs, ys)
	fracDiurnal := 0.0
	if loaded > 0 {
		fracDiurnal = float64(diurnal) / float64(loaded)
	}
	r.Values = append(r.Values, Value{
		Name:     "loaded routers with diurnal IP-ID velocity",
		Paper:    "most routers display diurnal patterns",
		Measured: fmt.Sprintf("%s of %d loaded routers", pct0(fracDiurnal), loaded),
		Pass:     fracDiurnal > 0.8,
	})
	r.Values = append(r.Values, Value{
		Name:     "velocity vs forwarded traffic (rank corr)",
		Paper:    "proportional to forwarded traffic",
		Measured: fmt.Sprintf("Spearman %.2f over %d routers", rho, len(xs)),
		Pass:     rho > 0.8,
	})
	return r
}

// RunE7 reproduces the ECS-adoption accounting of §3.2.3.
func (e *Env) RunE7() *Result {
	r := &Result{ID: "E7", Title: "ECS adoption among top services"}
	w := e.W
	mx := e.Matrix()
	ecsTop, top20Bytes, ecsTop20Bytes, ecsBytes := 0, 0.0, 0.0, 0.0
	for _, svc := range w.Cat.Services {
		b := mx.PerService[svc.ID]
		if svc.ECS {
			ecsBytes += b
		}
		if svc.Rank <= 20 {
			top20Bytes += b
			if svc.ECS {
				ecsTop++
				ecsTop20Bytes += b
			}
		}
	}
	r.Values = append(r.Values, Value{
		Name:     "top-20 services supporting ECS",
		Paper:    "15 of 20",
		Measured: fmt.Sprintf("%d of 20", ecsTop),
		Pass:     ecsTop >= 12 && ecsTop <= 16,
	})
	shareOfTop20 := ecsTop20Bytes / top20Bytes
	r.Values = append(r.Values, Value{
		Name:     "ECS top-20 share of top-20 traffic",
		Paper:    "91%",
		Measured: pct(shareOfTop20),
		Pass:     shareOfTop20 > 0.75,
	})
	shareOfAll := ecsTop20Bytes / mx.TotalBytes
	r.Values = append(r.Values, Value{
		Name:     "ECS top-20 share of all traffic",
		Paper:    "35% (of the whole Internet)",
		Measured: pct(shareOfAll),
		Pass:     shareOfAll > 0.25,
	})
	r.Notes = "the catalog holds 60 services vs the Internet's millions, so overall shares run higher than the paper's 35%; the within-top-20 ratio is the comparable number"
	_ = ecsBytes
	return r
}

// RunE8 reproduces the §3.3.3 feasibility claim: a recommender over public
// peering profiles predicts hidden links far better than chance.
func (e *Env) RunE8() *Result {
	r := &Result{ID: "E8", Title: "Peering-link prediction as a recommendation system"}
	w := e.W
	reg := peering.BuildRegistry(w.Top, e.APNIC())
	rec := peering.NewRecommender(w.Top, reg, e.ObservedLinks())
	cands := rec.Recommend(0)
	ev50 := peering.Evaluate(w.Top, e.ObservedLinks(), cands, 50)
	kBig := len(cands) / 10
	evBig := peering.Evaluate(w.Top, e.ObservedLinks(), cands, kBig)
	randomPrec := 0.0
	if len(cands) > 0 {
		randomPrec = float64(ev50.HiddenLinks) / float64(len(cands))
	}
	r.Values = append(r.Values, Value{
		Name:     "precision@50 vs random",
		Paper:    "n/a (proposed direction)",
		Measured: fmt.Sprintf("%.2f vs %.2f random (%d hidden links, %d candidates)", ev50.PrecisionK, randomPrec, ev50.HiddenLinks, len(cands)),
		Pass:     ev50.PrecisionK > 2*randomPrec,
	})
	// Recall lift: the top decile of recommendations must capture far
	// more hidden links than a random decile would.
	randomRecall := float64(kBig) / float64(max(len(cands), 1))
	r.Values = append(r.Values, Value{
		Name:     fmt.Sprintf("recall@top-decile (%d) vs random", kBig),
		Paper:    "n/a (proposed direction)",
		Measured: fmt.Sprintf("%s vs %s random", pct(evBig.RecallK), pct(randomRecall)),
		Pass:     evBig.RecallK > 1.5*randomRecall,
	})
	return r
}

// RunE9 reproduces the public-resolver query-share figure the cache-probing
// technique leans on.
func (e *Env) RunE9() *Result {
	r := &Result{ID: "E9", Title: "Public resolver share of DNS queries"}
	w := e.W
	var total, viaPublic float64
	for _, asn := range w.Top.ASNs() {
		u := w.Users.ASUsers(asn)
		if u == 0 {
			continue
		}
		share := w.PR.AdoptionShare(w.Top.ASes[asn].Country)
		total += u
		viaPublic += u * share
	}
	share := viaPublic / total
	r.Values = append(r.Values, Value{
		Name:     "queries via the public resolver",
		Paper:    "30-35% (Google Public DNS [16])",
		Measured: pct(share),
		Pass:     share > 0.25 && share < 0.45,
	})
	return r
}

// RunAll executes every experiment in catalogue order.
func (e *Env) RunAll() []*Result {
	return []*Result{
		e.RunTable1(),
		e.RunFigure1a(),
		e.RunFigure1b(),
		e.RunFigure2(),
		e.RunE1(),
		e.RunE2(),
		e.RunE3(),
		e.RunE4(),
		e.RunE5(),
		e.RunE6(),
		e.RunE7(),
		e.RunE8(),
		e.RunE9(),
		e.RunE10(),
		e.RunE11(),
		e.RunE12(),
		e.RunE13(),
		e.RunE14(),
		e.RunE15(),
		e.RunE16(),
		e.RunE17(),
		e.RunE18(),
		e.RunE19(),
		e.RunE20(),
		e.RunE21(),
		e.RunE22(),
		e.RunE23(),
		e.RunE24(),
		e.RunE25(),
		e.RunE26(),
	}
}
