package experiments

import (
	"fmt"

	"itmap/internal/bgp"
	"itmap/internal/measure/tracer"
	"itmap/internal/topology"
)

// RunE17 validates the §2.1 outage use case end to end: fail a transit
// provider, and check that the map's routes component — built from the
// public view plus cloud campaigns — predicts where client→service routes
// actually move. The simulator can compute the true post-outage routes; a
// real operator cannot, which is exactly why the map matters.
func (e *Env) RunE17() *Result {
	r := &Result{ID: "E17", Title: "Outage reroute prediction with the routes component"}
	w := e.W

	// Fail the transit AS carrying the most client→service routes (the
	// outage with the widest blast radius on the paths the map tracks).
	owners := w.Cat.Owners()
	clients := w.Top.ASesOfType(topology.Eyeball)
	usage := map[topology.ASN]int{}
	for _, owner := range owners {
		rib := w.Paths.RIBFor(owner)
		for _, c := range clients {
			path := rib.PathFrom(c)
			for _, asn := range path[1:] {
				if w.Top.ASes[asn].Type == topology.Transit {
					usage[asn]++
				}
			}
		}
	}
	var target topology.ASN
	best := 0
	for _, asn := range w.Top.ASesOfType(topology.Transit) {
		if usage[asn] > best {
			best, target = usage[asn], asn
		}
	}
	if target == 0 {
		r.Values = append(r.Values, Value{Name: "transit AS present", Paper: "n/a", Measured: "none", Pass: false})
		return r
	}
	avoid := func(l topology.LinkInfo) bool { return l.A != target && l.B != target }

	// Truth: the world without the failed AS's links.
	truthAfter := w.Top.Subgraph(avoid)

	// Prediction: public view + cloud campaigns, minus the failed AS.
	giants := append(w.Top.ASesOfType(topology.Cloud), w.Top.ASesOfType(topology.Hypergiant)...)
	cloudLinks := tracer.CloudCampaign(w.Paths, giants, w.Top.ASNs())
	augLinks := tracer.Union(e.ObservedLinks(), cloudLinks)
	predictedAfter := w.Top.SubgraphWithLinks(augLinks).Subgraph(avoid)

	// The map's refresh loop, two channels: (a) cloud-VM campaigns
	// re-measure out to the client networks (forward + reverse
	// traceroute), revealing each client's newly-active backup provider
	// chain; (b) the collectors' BGP UPDATE stream carries the new AS
	// paths within minutes of the event.
	truthAfterPaths := bgp.ComputeAll(truthAfter)
	postLinks := tracer.CloudCampaign(truthAfterPaths, giants, clients)
	updates := e.Collector().ComputeUpdates(w.Paths, truthAfterPaths)
	updateLinks := bgp.LinksFromUpdates(updates)
	refreshed := truthAfter.SubgraphWithLinks(
		tracer.Union(augLinks, postLinks, updateLinks)).Subgraph(avoid)

	var affected, disconnected, disconnectedPredicted float64
	var reroutable, exact, ingressOK, refreshedOK, reachableAgreement, pairs float64
	for _, owner := range owners {
		truthRIB := truthAfterPaths.RIBFor(owner)
		predRIB := bgp.ComputeRIB(predictedAfter, owner)
		refreshedRIB := bgp.ComputeRIB(refreshed, owner)
		beforeRIB := w.Paths.RIBFor(owner)
		for _, c := range clients {
			if c == target {
				continue
			}
			pairs++
			before := beforeRIB.PathFrom(c)
			truth := truthRIB.PathFrom(c)
			pred := predRIB.PathFrom(c)
			if (truth == nil) == (pred == nil) {
				reachableAgreement++
			}
			if !pathUses(before, target) {
				continue
			}
			affected++
			if truth == nil {
				// Single-homed through the failed provider:
				// the client goes dark. Predicting that is
				// itself the §2.1 answer.
				disconnected++
				if pred == nil {
					disconnectedPredicted++
				}
				continue
			}
			reroutable++
			if tracer.PathsEqual(pred, truth) {
				exact++
			}
			// The operationally decisive fact is where the traffic
			// re-enters the service's network (the new ingress
			// neighbor), which fixes the landing site.
			ingress := func(p []topology.ASN) topology.ASN {
				if len(p) < 2 {
					return 0
				}
				return p[len(p)-2]
			}
			if pred != nil && ingress(truth) == ingress(pred) {
				ingressOK++
			}
			if ref := refreshedRIB.PathFrom(c); ref != nil &&
				ingress(truth) == ingress(ref) {
				refreshedOK++
			}
		}
	}
	r.Values = append(r.Values, Value{
		Name:     "post-outage reachability agreement",
		Paper:    "n/a (map use case §2.1: 'where the prefixes may be routed instead')",
		Measured: fmt.Sprintf("%s of %d (client, owner) pairs", pct(reachableAgreement/pairs), int(pairs)),
		Pass:     reachableAgreement/pairs > 0.95,
	})
	fracDisc := 0.0
	if disconnected > 0 {
		fracDisc = disconnectedPredicted / disconnected
	}
	r.Values = append(r.Values, Value{
		Name:  "clients predicted to go dark (single-homed on the failed AS)",
		Paper: "§2.1: 'what fraction of traffic or users are affected'",
		Measured: fmt.Sprintf("%s of %d disconnections predicted (failed AS%d, %s; %d affected pairs)",
			pct(fracDisc), int(disconnected), target, w.Top.ASes[target].Name, int(affected)),
		Pass: disconnected == 0 || fracDisc > 0.9,
	})
	fracIngress, fracExact, fracRefreshed := 0.0, 0.0, 0.0
	if reroutable > 0 {
		fracIngress = ingressOK / reroutable
		fracExact = exact / reroutable
		fracRefreshed = refreshedOK / reroutable
	}
	r.Values = append(r.Values, Value{
		Name:  "new service ingress predicted for reroutable pairs",
		Paper: "§3.3: backup links are partly invisible in public topologies",
		Measured: fmt.Sprintf("%s ingress-correct (%s exact-path) over %d reroutable pairs",
			pct(fracIngress), pct(fracExact), int(reroutable)),
		Pass: reroutable == 0 || fracIngress > 0.5,
	})
	r.Values = append(r.Values, Value{
		Name:  "after post-event refresh (cloud campaigns + collector updates)",
		Paper: "the map is maintainable: updates arrive within minutes, campaigns within hours",
		Measured: fmt.Sprintf("%s ingress-correct (vs %s pre-event; %d UPDATE messages observed)",
			pct(fracRefreshed), pct(fracIngress), len(updates)),
		Pass: fracRefreshed >= fracIngress && (reroutable == 0 || fracRefreshed > 0.5),
	})
	return r
}

func pathUses(path []topology.ASN, asn topology.ASN) bool {
	for _, a := range path {
		if a == asn {
			return true
		}
	}
	return false
}
