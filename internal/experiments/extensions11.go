package experiments

import (
	"bytes"
	"fmt"

	"itmap/internal/core"
	"itmap/internal/faults"
	"itmap/internal/mapstore"
)

// RunE26 exercises the user↔user mesh layer: a vantage fleet probing AS
// pairs through the fault substrate under the calm and hostile presets.
// Gigis et al. measure user-to-user connectivity with RIPE Atlas probes in
// eyeball ASes; the claim here is the simulation analogue — a hostile
// network visibly costs the mesh coverage (fewer complete paths, more lost
// pings) while the campaign itself stays deterministic: byte-identical
// MeshMatrix encodings across worker counts 1 vs 4, and decode→re-encode
// byte-identity through the ITMB v2 mesh codec.
func (e *Env) RunE26() *Result {
	r := &Result{ID: "E26", Title: "Vantage-fleet mesh coverage, calm vs hostile"}
	calmProf, _ := faults.ByName("calm")
	hostProf, _ := faults.ByName("hostile")
	spec := func(p faults.Profile) MeshSpec { return MeshSpec{Agents: 48, Rounds: 2, Profile: p} }

	calm, calmStats := RunMeshCampaign(e.W, spec(calmProf), 0, 1)
	host, hostStats := RunMeshCampaign(e.W, spec(hostProf), 0, 1)

	coverage := func(d *core.MeshDocument) (complete, loss float64) {
		probes, lost, done := 0, 0, 0
		for i := range d.Pairs {
			p := &d.Pairs[i]
			probes += p.Probes
			lost += p.Lost
			if p.Complete {
				done++
			}
		}
		if len(d.Pairs) > 0 {
			complete = float64(done) / float64(len(d.Pairs))
		}
		if probes > 0 {
			loss = float64(lost) / float64(probes)
		}
		return complete, loss
	}
	calmDone, calmLoss := coverage(calm)
	hostDone, hostLoss := coverage(host)

	r.Values = append(r.Values, Value{
		Name:     "complete-path coverage, calm vs hostile",
		Paper:    "hostile networks cost coverage (Atlas-style mesh)",
		Measured: fmt.Sprintf("calm %.2f vs hostile %.2f over %d/%d pairs", calmDone, hostDone, len(calm.Pairs), len(host.Pairs)),
		Pass:     len(calm.Pairs) > 0 && calmDone > hostDone,
	})
	r.Values = append(r.Values, Value{
		Name:     "ping loss rate, calm vs hostile",
		Paper:    "fault presets order loss rates",
		Measured: fmt.Sprintf("calm %.3f vs hostile %.3f (%d vs %d pings)", calmLoss, hostLoss, calmStats.Pings, hostStats.Pings),
		Pass:     hostLoss > calmLoss,
	})

	// Worker invariance: the same hostile campaign at workers=4 must encode
	// byte-identically, and the bytes must round-trip through the codec.
	host4, _ := RunMeshCampaign(e.W, spec(hostProf), 0, 4)
	enc1, err1 := mapstore.EncodeMeshDocument(host)
	enc4, err4 := mapstore.EncodeMeshDocument(host4)
	parity := err1 == nil && err4 == nil && bytes.Equal(enc1, enc4)
	r.Values = append(r.Values, Value{
		Name:     "mesh worker invariance (1 vs 4)",
		Paper:    "n/a (determinism contract)",
		Measured: fmt.Sprintf("encoded mesh %d bytes, byte-identical: %v", len(enc1), parity),
		Pass:     parity,
	})
	roundTrips := false
	if err1 == nil {
		if dec, err := mapstore.DecodeMeshDocument(enc1); err == nil {
			if re, err := mapstore.EncodeMeshDocument(dec); err == nil {
				roundTrips = bytes.Equal(re, enc1)
			}
		}
	}
	r.Values = append(r.Values, Value{
		Name:     "mesh codec round-trip",
		Paper:    "n/a (serving extension)",
		Measured: fmt.Sprintf("decode→re-encode byte-identical: %v", roundTrips),
		Pass:     roundTrips,
	})
	return r
}
