package experiments

import (
	"fmt"

	"itmap/internal/core"
	"itmap/internal/dnssim"
	"itmap/internal/measure/cacheprobe"
	"itmap/internal/measure/resolvermap"
	"itmap/internal/order"
	"itmap/internal/services"
	"itmap/internal/simtime"
	"itmap/internal/stats"
	"itmap/internal/topology"
)

// RunE21 implements the §3.1.3 combination question: "How can techniques be
// combined to best overcome biases ...? Usage of both Google Public DNS and
// Chromium may be skewed." Adoption skew is *measured* with the
// resolver-client association, then divided out of the cache-probing
// signal; country-level activity shares move toward the truth.
func (e *Env) RunE21() *Result {
	r := &Result{ID: "E21", Title: "De-biasing cache probing for public-DNS adoption skew"}
	w := e.W
	// The signal must sit in the linear regime: for high-population
	// prefixes cache occupancy saturates (a hit regardless of adoption),
	// so adoption skew drops out on its own. Small office/campus
	// prefixes have hit probability ∝ rate·TTL ∝ users × adoption — the
	// regime where the skew bites and de-biasing matters. Probe those.
	var smallPrefixes []topology.PrefixID
	truthUsers := map[topology.ASN]float64{}
	for _, ty := range []topology.ASType{topology.Enterprise, topology.Academic} {
		for _, asn := range w.Top.ASesOfType(ty) {
			a := w.Top.ASes[asn]
			smallPrefixes = append(smallPrefixes, a.Prefixes...)
			if u := w.Users.ASUsers(asn); u > 0 {
				truthUsers[asn] = u
			}
		}
	}
	// Small samples are noisy (a country may have a handful of office
	// prefixes, each using only some services), so aggregate inverted
	// query rates over several popular domains: independent usage draws
	// average out and the adoption bias, common to all of them, remains.
	pb := &cacheprobe.Prober{PR: w.PR}
	domains := w.Cat.ECSDomains()
	if len(domains) > 8 {
		domains = domains[:8]
	}
	rateByAS := map[topology.ASN]float64{}
	for _, domain := range domains {
		hr, err := pb.MeasureHitRatesParallel(w.Top, smallPrefixes,
			domain, 0, 15*simtime.Minute)
		if err != nil {
			r.Values = append(r.Values, Value{Name: "campaign", Paper: "n/a", Measured: err.Error(), Pass: false})
			return r
		}
		// Invert cache occupancy into query-rate estimates (the TTL
		// is public: it is in every DNS response).
		svcTTL := 60
		if svc, ok := w.Cat.ByDomain(domain); ok {
			svcTTL = svc.TTLSeconds
		}
		for _, p := range order.Keys(hr.ByPrefix) {
			if asn, ok := w.Top.OwnerOf(p); ok {
				rateByAS[asn] += cacheprobe.RateFromHitRate(hr.ByPrefix[p], hr.ProbesPerPrefix, svcTTL)
			}
		}
	}

	// Measure adoption from the instrumented-page association.
	assoc := resolvermap.Collect(w.Top, w.Users, w.Traffic, w.PR, resolvermap.DefaultConfig())
	prPrefix, ok := dnssim.ResolverOfAS(w.Top, w.PR.Owner)
	if !ok {
		r.Values = append(r.Values, Value{Name: "public resolver prefix", Paper: "n/a", Measured: "missing", Pass: false})
		return r
	}
	adoption := assoc.EstimateAdoption(w.Top, prPrefix)

	// The adoption estimate itself should track the (hidden) truth.
	var ax, ay []float64
	for _, c := range order.Keys(adoption) {
		ax = append(ax, adoption[c])
		ay = append(ay, w.PR.AdoptionShare(c))
	}
	rhoAdoption := stats.Spearman(ax, ay)
	r.Values = append(r.Values, Value{
		Name:     "measured vs true per-country adoption (rank corr)",
		Paper:    "'usage of Google Public DNS may be skewed' (unknown skew)",
		Measured: fmt.Sprintf("Spearman %.2f over %d countries", rhoAdoption, len(adoption)),
		Pass:     rhoAdoption > 0.8,
	})

	// Country activity shares from raw vs de-biased hit counts, against
	// the true user shares of the probed population.
	truthShares := core.CountryShares(truthUsers, w.Top)
	rawShares := core.CountryShares(rateByAS, w.Top)
	debiased := core.DebiasByCountry(rateByAS, adoption, w.Top)
	debiasedShares := core.CountryShares(debiased, w.Top)
	tvRaw := core.TVDistance(rawShares, truthShares)
	tvDebiased := core.TVDistance(debiasedShares, truthShares)
	r.Values = append(r.Values, Value{
		Name:     "country activity shares vs truth (TV distance)",
		Paper:    "combining techniques should mitigate the bias",
		Measured: fmt.Sprintf("raw %s → de-biased %s", pct(tvRaw), pct(tvDebiased)),
		Pass:     tvDebiased < tvRaw,
	})
	return r
}

// RunE22 validates the §3.2.3 intuition "the vast majority of bytes served
// from sites reached via custom URLs are likely from the optimal site" the
// way the paper proposes — "via instrumentation from available vantage
// points and networks" — and checks that the biased vantage sample
// estimates the population truth.
func (e *Env) RunE22() *Result {
	r := &Result{ID: "E22", Title: "Custom-URL redirection optimality via vantage instrumentation"}
	w := e.W
	mx := e.Matrix()

	isOptimal := func(clientAS topology.ASN, svc *services.Service, site *services.Site) bool {
		if site.HostAS == clientAS {
			return true // in-network cache: optimal by definition
		}
		at := w.Top.PrimaryCity(clientAS).Coord
		best := w.Cat.NearestSiteTo(svc.Owner, at)
		return best != nil && best.Prefix == site.Prefix
	}

	// Population truth: byte-weighted optimality over all custom-URL
	// flows.
	var optBytes, totBytes float64
	for _, f := range mx.Flows {
		svc := w.Cat.Services[f.Svc]
		if svc.Kind != services.CustomURL {
			continue
		}
		totBytes += f.Bytes
		if isOptimal(f.ClientAS, svc, f.Site) {
			optBytes += f.Bytes
		}
	}
	truth := 0.0
	if totBytes > 0 {
		truth = optBytes / totBytes
	}

	// Vantage estimate: instrument players in academic + volunteer
	// eyeball networks; each vantage AS samples its own assignment.
	var vps []topology.ASN
	vps = append(vps, w.Top.ASesOfType(topology.Academic)...)
	for i, asn := range w.Top.ASesOfType(topology.Eyeball) {
		if i%4 == 0 {
			vps = append(vps, asn)
		}
	}
	var optW, totW float64
	for _, vp := range vps {
		for _, svc := range w.Cat.Services {
			if svc.Kind != services.CustomURL {
				continue
			}
			for _, ss := range w.Traffic.Assign(svc, vp) {
				totW += ss.Share
				if isOptimal(vp, svc, ss.Site) {
					optW += ss.Share
				}
			}
		}
	}
	estimate := 0.0
	if totW > 0 {
		estimate = optW / totW
	}

	r.Values = append(r.Values, Value{
		Name:     "custom-URL bytes served from the optimal site (truth)",
		Paper:    "'the vast majority of bytes ... are likely from the optimal site'",
		Measured: pct(truth),
		Pass:     truth > 0.8 && truth < 0.999,
	})
	r.Values = append(r.Values, Value{
		Name:     "vantage-instrumented estimate of the same",
		Paper:    "'validating this intuition via instrumentation from available vantage points'",
		Measured: fmt.Sprintf("%s from %d vantage networks (truth %s)", pct(estimate), len(vps), pct(truth)),
		Pass:     estimate > 0.8 && abs64(estimate-truth) < 0.15,
	})
	return r
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
