package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"

	"itmap/internal/mapstore"
)

// RunE25 exercises the serving layer end to end: a three-day measurement
// campaign (the paper's "daily refresh" cadence, §3.1.2) ingested into the
// epoch-versioned store. It checks the properties the store is built on —
// the binary codec round-trips every campaign-produced map byte-identically
// and beats the JSON export by a wide margin, consecutive epochs of a
// slowly-drifting Internet share document sections structurally, the
// day-over-day prefix churn is small (high Jaccard), and the whole
// campaign — epoch bytes, diffs, link loads — is invariant under the
// matrix build's -workers setting.
func (e *Env) RunE25() *Result {
	r := &Result{ID: "E25", Title: "Epoch-versioned map store over a multi-day campaign"}
	const days = 3
	st, err := BuildEpochStore(e.W, days, 1)
	if err != nil {
		r.Values = append(r.Values, Value{Name: "campaign", Paper: "n/a", Measured: err.Error(), Pass: false})
		return r
	}

	// Codec: every epoch decodes back to a document that re-encodes to the
	// same bytes, and the binary form is far smaller than the JSON export.
	encTotal, jsonTotal := 0, 0
	roundTrips := true
	for _, ep := range st.Snapshot() {
		doc, derr := mapstore.DecodeDocument(ep.Encoded)
		if derr != nil {
			roundTrips = false
			continue
		}
		re, eerr := mapstore.EncodeDocument(doc)
		if eerr != nil || !bytes.Equal(re, ep.Encoded) {
			roundTrips = false
		}
		var buf bytes.Buffer
		if err := ep.Doc.Export(&buf); err != nil {
			roundTrips = false
			continue
		}
		encTotal += len(ep.Encoded)
		jsonTotal += buf.Len()
	}
	r.Values = append(r.Values, Value{
		Name:     "binary codec round-trip",
		Paper:    "n/a (serving extension)",
		Measured: fmt.Sprintf("decode→re-encode byte-identical for %d epochs", st.Len()),
		Pass:     roundTrips && st.Len() == days,
	})
	ratio := 0.0
	if encTotal > 0 {
		ratio = float64(jsonTotal) / float64(encTotal)
	}
	r.Values = append(r.Values, Value{
		Name:     "codec size vs JSON export",
		Paper:    "n/a (serving extension)",
		Measured: fmt.Sprintf("%.1fx smaller (%d vs %d bytes over %d epochs)", ratio, encTotal, jsonTotal, st.Len()),
		Pass:     ratio >= 3,
	})

	// Structural sharing: a slowly-drifting world keeps most document
	// sections identical day over day, so later epochs alias them.
	sharing := make([]string, 0, days-1)
	minShared := -1
	for _, ep := range st.Snapshot()[1:] {
		sharing = append(sharing, fmt.Sprintf("%d/8", ep.SharedSections))
		if minShared < 0 || ep.SharedSections < minShared {
			minShared = ep.SharedSections
		}
	}
	r.Values = append(r.Values, Value{
		Name:     "structural sharing across epochs",
		Paper:    "n/a (serving extension)",
		Measured: fmt.Sprintf("sections shared with previous epoch: %v", sharing),
		Pass:     minShared >= 1,
	})

	// Day-over-day churn: the users component should be mostly stable —
	// the paper's premise that a daily refresh suffices.
	jaccards := make([]float64, 0, days-1)
	minJac := 1.0
	for d := 1; d < st.Len(); d++ {
		dd, err := st.Diff(d-1, d, 0.001)
		if err != nil {
			r.Values = append(r.Values, Value{Name: "diff", Paper: "n/a", Measured: err.Error(), Pass: false})
			return r
		}
		jaccards = append(jaccards, dd.Jaccard)
		if dd.Jaccard < minJac {
			minJac = dd.Jaccard
		}
	}
	r.Values = append(r.Values, Value{
		Name:     "day-over-day prefix Jaccard",
		Paper:    "maps change slowly day to day",
		Measured: fmt.Sprintf("%v", jaccards),
		Pass:     minJac >= 0.9,
	})

	// Worker invariance: rebuilding the whole campaign with a different
	// matrix parallelism must reproduce every epoch's encoded bytes, the
	// serialized diff, and the matrix-backed link loads exactly.
	st4, err := BuildEpochStore(e.W, days, 4)
	if err != nil {
		r.Values = append(r.Values, Value{Name: "workers=4 campaign", Paper: "n/a", Measured: err.Error(), Pass: false})
		return r
	}
	parity := st4.Len() == st.Len()
	for d := 0; parity && d < st.Len(); d++ {
		a, _ := st.Epoch(d)
		b, _ := st4.Epoch(d)
		parity = bytes.Equal(a.Encoded, b.Encoded)
	}
	d1, err1 := st.Diff(0, days-1, 0.001)
	d4, err4 := st4.Diff(0, days-1, 0.001)
	if err1 != nil || err4 != nil {
		parity = false
	} else {
		j1, _ := json.Marshal(d1)
		j4, _ := json.Marshal(d4)
		parity = parity && bytes.Equal(j1, j4)
	}
	// Link loads come straight from the worker-sharded matrix build — the
	// part -workers actually touches — so sample real topology links.
	links := 0
	for i, li := range e.W.Top.Links() {
		if i >= 32 {
			break
		}
		v1, ok1 := st.Latest().LinkLoad(uint32(li.A), uint32(li.B))
		v4, ok4 := st4.Latest().LinkLoad(uint32(li.A), uint32(li.B))
		if ok1 != ok4 || v1 != v4 {
			parity = false
		}
		if ok1 && v1 > 0 {
			links++
		}
	}
	r.Values = append(r.Values, Value{
		Name:     "campaign invariant under -workers",
		Paper:    "n/a (determinism contract)",
		Measured: fmt.Sprintf("epoch bytes, diff JSON, and %d link loads identical for workers 1 vs 4", links),
		Pass:     parity && links > 0,
	})
	return r
}
