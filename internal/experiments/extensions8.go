package experiments

import (
	"fmt"

	"itmap/internal/measure/botfilter"
	"itmap/internal/measure/cacheprobe"
	"itmap/internal/topology"
)

// RunE23 tackles the §3.1.2 open challenge verbatim: "A key challenge is
// extending them to find Internet users (as opposed to bots and other
// non-human clients)." Enterprise space hides automation farms; the filter
// separates them from office populations purely by the rhythm of their
// cache-occupancy profiles.
func (e *Env) RunE23() *Result {
	r := &Result{ID: "E23", Title: "Separating users from bots by activity rhythm"}
	w := e.W
	pb := &cacheprobe.Prober{PR: w.PR}
	domains := w.Cat.ECSDomains()
	if len(domains) > 10 {
		domains = domains[:10]
	}
	c := botfilter.NewClassifier(pb, domains)

	// Classify the ambiguous population: enterprise space (offices and
	// bot farms look identical to discovery sweeps).
	var verdicts []botfilter.Verdict
	bots := 0
	total := 0
	for _, asn := range w.Top.ASesOfType(topology.Enterprise) {
		for _, p := range w.Top.ASes[asn].Prefixes {
			total++
			if w.Traffic.IsBotPrefix(p) {
				bots++
			}
			v, err := c.Classify(w.Top, p)
			if err != nil {
				r.Values = append(r.Values, Value{Name: "campaign", Paper: "n/a", Measured: err.Error(), Pass: false})
				return r
			}
			verdicts = append(verdicts, v)
		}
	}
	ev := botfilter.Evaluate(verdicts, w.Traffic.IsBotPrefix)
	r.Values = append(r.Values, Value{
		Name:     "classifiable share of enterprise prefixes",
		Paper:    "open challenge: users vs bots (§3.1.2)",
		Measured: fmt.Sprintf("%d of %d observed (%d true bot farms)", ev.Observed, total, bots),
		Pass:     ev.Observed > total/3,
	})
	r.Values = append(r.Values, Value{
		Name:     "human-prefix precision / recall",
		Paper:    "n/a (proposed direction)",
		Measured: fmt.Sprintf("%s / %s", pct(ev.Precision), pct(ev.Recall)),
		Pass:     ev.Precision > 0.85 && ev.Recall > 0.6,
	})
	r.Values = append(r.Values, Value{
		Name:     "bot-farm recall",
		Paper:    "n/a (proposed direction)",
		Measured: pct(ev.BotRecall),
		Pass:     ev.BotRecall > 0.6,
	})
	return r
}
