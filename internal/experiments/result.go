package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Value is one paper-vs-measured comparison line.
type Value struct {
	Name     string
	Paper    string // what the paper reports
	Measured string // what this reproduction measures
	Pass     bool   // does the qualitative shape hold?
}

// Series is one numeric series backing a figure.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Result is one experiment's outcome.
type Result struct {
	ID     string
	Title  string
	Values []Value
	Series []Series
	Notes  string
}

// Pass reports whether every value's shape held.
func (r *Result) Pass() bool {
	for _, v := range r.Values {
		if !v.Pass {
			return false
		}
	}
	return true
}

// Format renders results as a plain-text report.
func Format(results []*Result) string {
	var b strings.Builder
	for _, r := range results {
		status := "PASS"
		if !r.Pass() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
		for _, v := range r.Values {
			mark := "ok "
			if !v.Pass {
				mark = "!! "
			}
			fmt.Fprintf(&b, "  %s%-44s paper: %-28s measured: %s\n", mark, v.Name, v.Paper, v.Measured)
		}
		for _, s := range r.Series {
			fmt.Fprintf(&b, "  series %s:\n", s.Name)
			for i, lbl := range s.Labels {
				fmt.Fprintf(&b, "    %-24s %12.4g\n", lbl, s.Values[i])
			}
		}
		if r.Notes != "" {
			fmt.Fprintf(&b, "  note: %s\n", r.Notes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders results as the EXPERIMENTS.md body.
func Markdown(results []*Result) string {
	var b strings.Builder
	for _, r := range results {
		status := "PASS"
		if !r.Pass() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "### %s — %s (%s)\n\n", r.ID, r.Title, status)
		b.WriteString("| Quantity | Paper | Measured | Shape holds |\n|---|---|---|---|\n")
		for _, v := range r.Values {
			mark := "yes"
			if !v.Pass {
				mark = "NO"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", v.Name, v.Paper, v.Measured, mark)
		}
		if r.Notes != "" {
			fmt.Fprintf(&b, "\n%s\n", r.Notes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteSeriesCSV writes every result's series as CSV files under dir
// (<id>-<series-index>.csv with label,value rows) so figures can be
// re-plotted with standard tools. Returns the files written.
func WriteSeriesCSV(results []*Result, dir string) ([]string, error) {
	var files []string
	for _, r := range results {
		for si, s := range r.Series {
			name := filepath.Join(dir, fmt.Sprintf("%s-%d.csv", strings.ToLower(r.ID), si))
			var b strings.Builder
			fmt.Fprintf(&b, "# %s: %s — %s\nlabel,value\n", r.ID, r.Title, s.Name)
			for i, lbl := range s.Labels {
				fmt.Fprintf(&b, "%q,%g\n", lbl, s.Values[i])
			}
			if err := os.WriteFile(name, []byte(b.String()), 0o644); err != nil {
				return files, err
			}
			files = append(files, name)
		}
	}
	return files, nil
}

func pct(f float64) string  { return fmt.Sprintf("%.1f%%", 100*f) }
func pct0(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }
