package latency_test

import (
	"testing"

	"itmap/internal/geo"
	"itmap/internal/latency"
	"itmap/internal/topology"
	"itmap/internal/world"
)

// The mesh layer's property contract on the RTT model: pair measurements
// are exactly symmetric, noise never beats the speed of light, and the
// triangle-inequality violation rate is a pure function of the seed.

func modelAndPrefixes(t *testing.T, seed int64) (*latency.Model, *world.World, []topology.PrefixID) {
	t.Helper()
	w := world.Build(world.Tiny(seed))
	m := latency.New(w.Top, w.Paths, seed)
	// Even the tiny world has tens of thousands of eyeball prefixes and the
	// properties are quadratic/cubic in the sample, so take a deterministic
	// stride: one prefix per eyeball AS, capped.
	const maxSample = 24
	var prefixes []topology.PrefixID
	for _, asn := range w.Top.ASesOfType(topology.Eyeball) {
		if ps := w.Top.ASes[asn].Prefixes; len(ps) > 0 {
			prefixes = append(prefixes, ps[0])
		}
		if len(prefixes) == maxSample {
			break
		}
	}
	if len(prefixes) < 4 {
		t.Fatalf("tiny world has only %d sampled prefixes", len(prefixes))
	}
	return m, w, prefixes
}

// TestPairRTTSymmetry: a round trip has no direction, so the canonicalized
// pair measurement must be bit-for-bit equal in either argument order, for
// every probe sequence number.
func TestPairRTTSymmetry(t *testing.T) {
	m, _, prefixes := modelAndPrefixes(t, 21)
	pairs := 0
	for i, a := range prefixes {
		for _, b := range prefixes[i+1:] {
			for seq := 0; seq < 4; seq++ {
				ab, okAB := m.PairRTTms(a, b, seq)
				ba, okBA := m.PairRTTms(b, a, seq)
				if okAB != okBA || ab != ba {
					t.Fatalf("PairRTTms(%v,%v,%d)=%v,%v but reversed %v,%v", a, b, seq, ab, okAB, ba, okBA)
				}
				if okAB {
					pairs++
				}
			}
			mab, _ := m.MinPairRTTms(a, b, 3)
			mba, _ := m.MinPairRTTms(b, a, 3)
			if mab != mba {
				t.Fatalf("MinPairRTTms(%v,%v) asymmetric: %v vs %v", a, b, mab, mba)
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no reachable pairs exercised")
	}
}

// TestRTTNoiseFloor: jitter is strictly additive, so no measurement —
// however many probes — dips below the jitter-free base RTT, and the base
// never beats great-circle light propagation in fiber.
func TestRTTNoiseFloor(t *testing.T) {
	m, w, prefixes := modelAndPrefixes(t, 22)
	checked := 0
	for i, a := range prefixes {
		for _, b := range prefixes[i+1:] {
			base, ok := m.BaseRTTms(a, b)
			if !ok {
				continue
			}
			light := geo.DistanceKm(w.Top.PrefixCity[a].Coord, w.Top.PrefixCity[b].Coord) / latency.KmPerMsRTT
			if base < light {
				t.Fatalf("base RTT %v beats light floor %v for %v-%v", base, light, a, b)
			}
			for seq := 0; seq < 16; seq++ {
				rtt, ok := m.PairRTTms(a, b, seq)
				if !ok || rtt < base {
					t.Fatalf("probe %d of %v-%v: rtt %v below base %v", seq, a, b, rtt, base)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no reachable pairs exercised")
	}
}

// TestTriangleViolationRateDeterministic: the violation rate is a pure
// function of (world, seed) — identical across runs and worker counts —
// and the model does violate the triangle inequality somewhere (detour
// routing guarantees real-Internet-shaped non-metric structure).
func TestTriangleViolationRateDeterministic(t *testing.T) {
	m, _, prefixes := modelAndPrefixes(t, 23)
	r1, c1 := m.TriangleViolationRate(prefixes, 3, 1)
	r1b, c1b := m.TriangleViolationRate(prefixes, 3, 1)
	if r1 != r1b || c1 != c1b {
		t.Fatalf("violation rate not deterministic: %v/%d vs %v/%d", r1, c1, r1b, c1b)
	}
	r4, c4 := m.TriangleViolationRate(prefixes, 3, 4)
	if r1 != r4 || c1 != c4 {
		t.Fatalf("violation rate depends on workers: %v/%d vs %v/%d", r1, c1, r4, c4)
	}
	if c1 == 0 {
		t.Fatal("no triples checked")
	}
	if r1 < 0 || r1 > 1 {
		t.Fatalf("violation rate %v out of range", r1)
	}
}
