package latency

import (
	"itmap/internal/parallel"
	"itmap/internal/topology"
)

// PairRTTms returns one measured RTT between the two prefixes, symmetric
// in its arguments: the pair is canonicalized (lower prefix first) before
// the path and the jitter hash are derived, so PairRTTms(a, b, seq) ==
// PairRTTms(b, a, seq) exactly. This is the entry point mesh campaigns
// use — a round trip has no direction, so the user↔user matrix must not
// depend on which agent of a pair fired the ping.
func (m *Model) PairRTTms(a, b topology.PrefixID, seq int) (float64, bool) {
	if b < a {
		a, b = b, a
	}
	return m.RTTms(a, b, seq)
}

// MinPairRTTms is MinRTTms over the canonicalized pair: the minimum of n
// symmetric probes, approaching the propagation floor from above.
func (m *Model) MinPairRTTms(a, b topology.PrefixID, n int) (float64, bool) {
	if b < a {
		a, b = b, a
	}
	return m.MinRTTms(a, b, n)
}

// TriangleViolationRate measures how often the model's minimum RTTs
// violate the triangle inequality: for ordered triples (i, j, k) over the
// prefix slice, whether minRTT(i,k) > minRTT(i,j) + minRTT(j,k). Real
// Internet latencies violate it routinely (detour routing), and the rate
// is a useful fingerprint of how much structure the model injects.
//
// The computation is deterministic across worker counts: the outer index
// owns a private tally slot and the slots are folded in index order, so
// no float is ever accumulated in scheduling order.
func (m *Model) TriangleViolationRate(prefixes []topology.PrefixID, probes, workers int) (rate float64, checked int) {
	n := len(prefixes)
	if n < 3 {
		return 0, 0
	}
	if probes < 1 {
		probes = 1
	}
	// Pairwise minima first (i < k ordered pairs; the model is symmetric
	// under canonicalization, so one triangle suffices).
	min := make([][]float64, n)
	reach := make([][]bool, n)
	parallel.ForEach(n, workers, func(i int) {
		min[i] = make([]float64, n)
		reach[i] = make([]bool, n)
		for k := i + 1; k < n; k++ {
			v, ok := m.MinPairRTTms(prefixes[i], prefixes[k], probes)
			min[i][k], reach[i][k] = v, ok
		}
	})
	at := func(i, k int) (float64, bool) {
		if k < i {
			i, k = k, i
		}
		return min[i][k], reach[i][k]
	}
	viols := make([]int, n)
	counts := make([]int, n)
	parallel.ForEach(n, workers, func(i int) {
		for k := i + 1; k < n; k++ {
			ik, ok := at(i, k)
			if !ok {
				continue
			}
			for j := 0; j < n; j++ {
				if j == i || j == k {
					continue
				}
				ij, ok1 := at(i, j)
				jk, ok2 := at(j, k)
				if !ok1 || !ok2 {
					continue
				}
				counts[i]++
				if ik > ij+jk {
					viols[i]++
				}
			}
		}
	})
	// Index-ordered fold: identical for every worker count.
	v, c := 0, 0
	for i := 0; i < n; i++ {
		v += viols[i]
		c += counts[i]
	}
	if c == 0 {
		return 0, 0
	}
	return float64(v) / float64(c), c
}
