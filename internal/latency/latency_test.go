package latency

import (
	"math"
	"testing"

	"itmap/internal/bgp"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func model(t testing.TB, seed int64) (*world.World, *Model) {
	t.Helper()
	w := world.Build(world.Tiny(seed))
	return w, New(w.Top, w.Paths, seed)
}

func TestRTTGrowsWithDistance(t *testing.T) {
	w, m := model(t, 1)
	// Two eyeballs in the same country vs different regions.
	var us1, us2, jp topology.PrefixID
	for _, asn := range w.Top.ASesOfType(topology.Eyeball) {
		a := w.Top.ASes[asn]
		switch a.Country {
		case "US":
			if us1 == 0 {
				us1 = a.Prefixes[0]
			} else if us2 == 0 {
				us2 = a.Prefixes[0]
			}
		case "JP", "CN", "IN", "ID":
			if jp == 0 {
				jp = a.Prefixes[0]
			}
		}
	}
	if us1 == 0 || us2 == 0 || jp == 0 {
		t.Skip("world lacks the test countries")
	}
	near, ok1 := m.BaseRTTms(us1, us2)
	far, ok2 := m.BaseRTTms(us1, jp)
	if !ok1 || !ok2 {
		t.Fatal("unreachable prefixes")
	}
	if far <= near {
		t.Errorf("cross-region RTT %.1f <= in-country RTT %.1f", far, near)
	}
	// Transpacific should be in a plausible absolute range at the
	// modelled fiber speed (order 100+ ms).
	if far < 60 || far > 400 {
		t.Errorf("cross-region RTT %.1f ms implausible", far)
	}
}

func TestRTTBoundsDistance(t *testing.T) {
	w, m := model(t, 2)
	ps := w.Top.AllPrefixes()
	checked := 0
	for i := 0; i < len(ps) && checked < 300; i += 97 {
		for j := i + 1; j < len(ps) && checked < 300; j += 193 {
			base, ok := m.BaseRTTms(ps[i], ps[j])
			if !ok {
				continue
			}
			checked++
			kmBound := base * KmPerMsRTT
			trueKm := distKm(w, ps[i], ps[j])
			if trueKm > kmBound {
				t.Fatalf("true distance %.0f km exceeds RTT bound %.0f km", trueKm, kmBound)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no pairs checked")
	}
}

func distKm(w *world.World, a, b topology.PrefixID) float64 {
	ca := w.Top.PrefixCity[a]
	cb := w.Top.PrefixCity[b]
	return geoDist(ca.Coord.Lat, ca.Coord.Lon, cb.Coord.Lat, cb.Coord.Lon)
}

// geoDist duplicates the haversine independently so the RTT-bound check
// does not rely on the same code under test.
func geoDist(lat1, lon1, lat2, lon2 float64) float64 {
	const r = 6371.0
	toRad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := toRad(lat2 - lat1)
	dLon := toRad(lon2 - lon1)
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	a := s1*s1 + math.Cos(toRad(lat1))*math.Cos(toRad(lat2))*s2*s2
	return 2 * r * math.Asin(math.Min(1, math.Sqrt(a)))
}

func TestMinRTTConverges(t *testing.T) {
	w, m := model(t, 3)
	ps := w.Top.AllPrefixes()
	src, dst := ps[0], ps[len(ps)-1]
	base, ok := m.BaseRTTms(src, dst)
	if !ok {
		t.Fatal("unreachable")
	}
	one, _ := m.MinRTTms(src, dst, 1)
	many, _ := m.MinRTTms(src, dst, 30)
	if many > one {
		t.Error("min over more probes increased")
	}
	// Noise is additive, so no probe can beat the floor; with 30 probes
	// the min should be within a few percent of it.
	if many < base || many > base*1.10 {
		t.Errorf("min RTT %.2f vs base %.2f out of range", many, base)
	}
}

func TestRTTUnreachable(t *testing.T) {
	w := world.Build(world.Tiny(4))
	// Routing over a peering-free subgraph leaves giants unreachable.
	sub := w.Top.Subgraph(func(l topology.LinkInfo) bool {
		return l.Kind == topology.TransitLink
	})
	ap := bgp.ComputeAll(sub)
	m := New(sub, ap, 4)
	hg := sub.ASesOfType(topology.Hypergiant)[0]
	eyeball := sub.ASesOfType(topology.Eyeball)[0]
	if _, ok := m.BaseRTTms(sub.ASes[eyeball].Prefixes[0], sub.ASes[hg].Prefixes[0]); ok {
		t.Error("RTT computed across unreachable pair")
	}
}
