// Package latency models round-trip times between points in the simulated
// Internet. RTT is what constraint-based geolocation (§3.2.3 approach 3)
// measures: propagation delay bounds how far a target can be from a vantage
// point. The model combines great-circle propagation at fiber speed with a
// path-length detour factor, per-hop processing delay, and jitter — enough
// structure that naive geolocation is wrong in the ways it is wrong on the
// real Internet (detours inflate RTT, so pure speed-of-light inversion
// over-estimates distance).
package latency

import (
	"math"

	"itmap/internal/bgp"
	"itmap/internal/geo"
	"itmap/internal/randx"
	"itmap/internal/topology"
)

// Speed of light in fiber: ~200 km/ms one way, so RTT accrues at ~100 km/ms
// of geographic distance.
const (
	// KmPerMsRTT is the distance covered per millisecond of RTT under
	// ideal great-circle fiber: c/1.5 / 2 ≈ 100 km per RTT-ms.
	KmPerMsRTT = 100.0
	// perHopMs is queueing/processing delay per AS hop, each way.
	perHopMs = 0.35
	// detourFactor inflates geographic distance: fiber does not follow
	// great circles.
	detourFactor = 1.25
)

// Model computes RTTs over a topology and its routing.
type Model struct {
	top  *topology.Topology
	ap   *bgp.AllPaths
	seed uint64
	// JitterMean is the mean of the additive queueing-delay noise, as a
	// fraction of the propagation floor. Noise is strictly additive:
	// no measurement can beat the speed of light, which is what makes
	// RTT a sound geolocation constraint.
	JitterMean float64
}

// New builds an RTT model.
func New(top *topology.Topology, ap *bgp.AllPaths, seed int64) *Model {
	return &Model{top: top, ap: ap, seed: uint64(seed), JitterMean: 0.08}
}

// RTTms returns one measured round-trip time in milliseconds between an
// address in prefix src and one in prefix dst, for the probe sequence
// number seq (distinct seq values give independent jitter; the minimum over
// several probes approaches the propagation floor, as with real pings).
func (m *Model) RTTms(src, dst topology.PrefixID, seq int) (float64, bool) {
	base, ok := m.BaseRTTms(src, dst)
	if !ok {
		return 0, false
	}
	u := randx.HashFloat(m.seed, 0x277, uint64(src), uint64(dst), uint64(seq))
	if u < 1e-12 {
		u = 1e-12
	}
	extra := -math.Log(u) * m.JitterMean * base // exponential queueing delay
	return base + extra, true
}

// BaseRTTms returns the jitter-free propagation+processing RTT.
func (m *Model) BaseRTTms(src, dst topology.PrefixID) (float64, bool) {
	sCity, okS := m.top.PrefixCity[src]
	dCity, okD := m.top.PrefixCity[dst]
	if !okS || !okD {
		return 0, false
	}
	sAS, _ := m.top.OwnerOf(src)
	dAS, _ := m.top.OwnerOf(dst)
	hops := 0
	if sAS != dAS {
		h := m.ap.Hops(sAS, dAS)
		if h < 0 {
			return 0, false
		}
		hops = h
	}
	km := geo.DistanceKm(sCity.Coord, dCity.Coord) * detourFactor
	return km/KmPerMsRTT + 2*perHopMs*float64(hops) + 0.2, true
}

// MinRTTms returns the minimum of n probe RTTs — the standard way to
// approach the propagation floor.
func (m *Model) MinRTTms(src, dst topology.PrefixID, n int) (float64, bool) {
	if n < 1 {
		n = 1
	}
	best := 0.0
	ok := false
	for i := 0; i < n; i++ {
		rtt, valid := m.RTTms(src, dst, i)
		if !valid {
			return 0, false
		}
		if !ok || rtt < best {
			best, ok = rtt, true
		}
	}
	return best, ok
}
