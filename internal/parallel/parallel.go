// Package parallel provides the worker-pool primitive shared by the
// simulator's sweep-style computations (the BGP origin sweep, the traffic
// matrix shard build, measurement campaigns). Work items are claimed with a
// single atomic counter instead of a channel: on large topologies the
// per-item channel send/receive dominates small work items, while an
// atomic fetch-add is a few nanoseconds and scales with core count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 mean "one per
// available CPU", and the result never exceeds n (no idle goroutines when
// there are fewer items than cores).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) across workers goroutines
// (Workers(workers, n) of them). Items are claimed via an atomic counter,
// so callers pay no per-item synchronization beyond one fetch-add. fn must
// be safe for concurrent invocation on distinct i; ForEach returns after
// every item has completed.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
