package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 1000
		var hits [n]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ForEach(-5, 4, func(int) { t.Fatal("fn called for n<0") })
}

func TestWorkersClamps(t *testing.T) {
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8,3)=%d, want 3", w)
	}
	if w := Workers(-1, 1000); w < 1 {
		t.Fatalf("Workers(-1,1000)=%d, want >=1", w)
	}
	if w := Workers(0, 0); w != 1 {
		t.Fatalf("Workers(0,0)=%d, want 1", w)
	}
}
