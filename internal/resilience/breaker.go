package resilience

import "itmap/internal/simtime"

// BreakerConfig parameterizes a circuit breaker.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailThreshold int
	// Cooldown is how long an open breaker rejects before allowing a
	// half-open trial probe (default 30 simulated minutes).
	Cooldown simtime.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold < 1 {
		c.FailThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * simtime.Minute
	}
	return c
}

// Breaker is a circuit breaker over simulated time, one per dependency
// (e.g. per resolver PoP). Closed: requests flow. Open: requests are
// rejected until Cooldown elapses. Half-open: one trial flows; success
// closes the breaker, failure re-opens it. Not safe for concurrent use —
// sweeps keep one breaker set per shard.
type Breaker struct {
	cfg         BreakerConfig
	consecFails int
	open        bool
	openSince   simtime.Time
	// Opens counts transitions to open, for sweep stats.
	Opens int
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed at t. An open breaker allows
// exactly the half-open trial once the cooldown has elapsed.
func (b *Breaker) Allow(t simtime.Time) bool {
	if !b.open {
		return true
	}
	return t >= b.openSince+b.cfg.Cooldown
}

// Record feeds the outcome of an allowed request back at time t.
func (b *Breaker) Record(t simtime.Time, ok bool) {
	if ok {
		b.open = false
		b.consecFails = 0
		return
	}
	if b.open {
		// Failed half-open trial: restart the cooldown.
		b.openSince = t
		b.Opens++
		return
	}
	b.consecFails++
	if b.consecFails >= b.cfg.FailThreshold {
		b.open = true
		b.openSince = t
		b.Opens++
	}
}

// OpenAt reports whether the breaker is open and still cooling down at t.
func (b *Breaker) OpenAt(t simtime.Time) bool { return b.open && !b.Allow(t) }
