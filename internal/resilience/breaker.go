package resilience

import "itmap/internal/simtime"

// BreakerConfig parameterizes a circuit breaker.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailThreshold int
	// Cooldown is how long an open breaker rejects before allowing a
	// half-open trial probe (default 30 simulated minutes).
	Cooldown simtime.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold < 1 {
		c.FailThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * simtime.Minute
	}
	return c
}

// State is a breaker's position in the closed → open → half-open cycle.
type State uint8

// Breaker states.
const (
	// StateClosed: requests flow.
	StateClosed State = iota
	// StateOpen: requests are rejected until the cooldown elapses.
	StateOpen
	// StateHalfOpen: the cooldown elapsed and one trial request was let
	// through; its outcome decides between closed and open.
	StateHalfOpen
)

// String names the state for events and metrics labels.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a circuit breaker over simulated time, one per dependency
// (e.g. per resolver PoP). Closed: requests flow. Open: requests are
// rejected until Cooldown elapses. Half-open: one trial flows; success
// closes the breaker, failure re-opens it. Not safe for concurrent use —
// sweeps keep one breaker set per shard.
type Breaker struct {
	cfg         BreakerConfig
	consecFails int
	open        bool
	halfOpen    bool
	openSince   simtime.Time
	// Opens counts transitions to open, for sweep stats.
	Opens int
	// OnStateChange, if set, observes every state transition exactly once:
	// closed→open, open→half-open (when Allow grants the trial), and
	// half-open→closed / half-open→open (when the trial's outcome is
	// recorded). Observability instrumentation hangs off this hook; the
	// hook must not call back into the breaker.
	OnStateChange func(from, to State, at simtime.Time)
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

func (b *Breaker) transition(from, to State, at simtime.Time) {
	if b.OnStateChange != nil {
		b.OnStateChange(from, to, at)
	}
}

// State returns the breaker's current state.
func (b *Breaker) State() State {
	switch {
	case b.halfOpen:
		return StateHalfOpen
	case b.open:
		return StateOpen
	}
	return StateClosed
}

// Allow reports whether a request may proceed at t. An open breaker allows
// exactly the half-open trial once the cooldown has elapsed; granting that
// trial is the open→half-open transition.
func (b *Breaker) Allow(t simtime.Time) bool {
	if !b.open {
		return true
	}
	if t < b.openSince+b.cfg.Cooldown {
		return false
	}
	if !b.halfOpen {
		b.halfOpen = true
		b.transition(StateOpen, StateHalfOpen, t)
	}
	return true
}

// Record feeds the outcome of an allowed request back at time t.
func (b *Breaker) Record(t simtime.Time, ok bool) {
	if ok {
		if b.open {
			// Successful half-open trial: the dependency recovered.
			b.transition(b.State(), StateClosed, t)
		}
		b.open = false
		b.halfOpen = false
		b.consecFails = 0
		return
	}
	if b.open {
		// Failed half-open trial: restart the cooldown.
		from := b.State()
		b.halfOpen = false
		b.openSince = t
		b.Opens++
		b.transition(from, StateOpen, t)
		return
	}
	b.consecFails++
	if b.consecFails >= b.cfg.FailThreshold {
		b.open = true
		b.openSince = t
		b.Opens++
		b.transition(StateClosed, StateOpen, t)
	}
}

// OpenAt reports whether the breaker is open and still cooling down at t.
func (b *Breaker) OpenAt(t simtime.Time) bool {
	return b.open && t < b.openSince+b.cfg.Cooldown
}
