// Package resilience gives the measurement clients the machinery real
// probers need against an unreliable substrate: capped exponential backoff
// with deterministic jitter, a bounded retry loop, a per-dependency circuit
// breaker, and a token-bucket pacer that keeps a source under its
// schedule.Campaign.QPSPerProber budget. Everything is parameterized by
// simulated time so campaigns stay reproducible; AsDuration and DoSleep
// bridge to wall-clock clients like cmd/itm-probe.
package resilience

import (
	"math"
	"time"

	"itmap/internal/randx"
	"itmap/internal/simtime"
)

// Backoff is a capped exponential backoff schedule with deterministic
// jitter: Delay(key, attempt) is a pure function, so two runs (or two worker
// layouts) retry at identical simulated times.
type Backoff struct {
	// Base is the delay before the first retry (default 1 simulated
	// second).
	Base simtime.Time
	// Factor multiplies the delay per attempt (default 2, min 1).
	Factor float64
	// Cap bounds the delay (0 = uncapped).
	Cap simtime.Time
	// Jitter spreads each delay uniformly over ±Jitter of itself.
	Jitter float64
	// Seed feeds the jitter hash.
	Seed uint64
}

// Delay returns the pause before retry number attempt (0-based) of the
// operation identified by key.
func (b Backoff) Delay(key uint64, attempt int) simtime.Time {
	base := b.Base
	if base <= 0 {
		base = simtime.Seconds(1)
	}
	f := b.Factor
	if f < 1 {
		f = 2
	}
	d := float64(base) * math.Pow(f, float64(attempt))
	if b.Cap > 0 && d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if b.Jitter > 0 {
		u := randx.HashFloat(b.Seed, 0xbac0ff, key, uint64(attempt))
		d *= 1 + b.Jitter*(2*u-1)
	}
	return simtime.Time(d)
}

// AsDuration converts a simulated delay to wall-clock time (1 simulated
// hour = 1 real hour; callers usually scale down first).
func AsDuration(d simtime.Time) time.Duration {
	return time.Duration(float64(d) * float64(time.Hour))
}

// Retryer bounds how hard a client fights a failing operation.
type Retryer struct {
	// Budget is the maximum total attempts, including the first
	// (default 1: no retries).
	Budget int
	// Backoff schedules the pauses between attempts.
	Backoff Backoff
	// Retryable classifies errors; nil retries everything.
	Retryable func(error) bool
}

// Outcome reports how a retried operation ended.
type Outcome struct {
	// Attempts is how many times op ran.
	Attempts int
	// End is the simulated time of the final attempt (start plus all
	// backoff waits).
	End simtime.Time
	// Err is nil on success, the last error when the budget was spent,
	// or the first non-retryable error.
	Err error
}

// Do runs op at start, retrying with backoff until success, a non-retryable
// error, or the budget is spent. op receives the attempt number and the
// simulated time at which it fires.
func (r Retryer) Do(start simtime.Time, key uint64, op func(attempt int, at simtime.Time) error) Outcome {
	budget := r.Budget
	if budget < 1 {
		budget = 1
	}
	t := start
	var err error
	for a := 0; a < budget; a++ {
		err = op(a, t)
		if err == nil {
			return Outcome{Attempts: a + 1, End: t}
		}
		if r.Retryable != nil && !r.Retryable(err) {
			return Outcome{Attempts: a + 1, End: t, Err: err}
		}
		if a+1 < budget {
			t = t.Add(r.Backoff.Delay(key, a))
		}
	}
	return Outcome{Attempts: budget, End: t, Err: err}
}

// DoSleep is Do for wall-clock clients: backoff delays become real sleeps
// (scaled by perHour, e.g. 0.0001 turns a 1-simulated-hour delay into
// 360ms). Returns attempts used and the final error.
func (r Retryer) DoSleep(key uint64, perHour float64, op func(attempt int) error) (int, error) {
	budget := r.Budget
	if budget < 1 {
		budget = 1
	}
	var err error
	for a := 0; a < budget; a++ {
		err = op(a)
		if err == nil {
			return a + 1, nil
		}
		if r.Retryable != nil && !r.Retryable(err) {
			return a + 1, err
		}
		if a+1 < budget {
			//itmlint:allow nodeterm DoSleep is the documented wall-clock bridge
			time.Sleep(time.Duration(float64(AsDuration(r.Backoff.Delay(key, a))) * perHour))
		}
	}
	return budget, err
}
