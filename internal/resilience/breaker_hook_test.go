package resilience

import (
	"testing"

	"itmap/internal/simtime"
)

type transition struct {
	from, to State
	at       simtime.Time
}

func hooked(cfg BreakerConfig) (*Breaker, *[]transition) {
	b := NewBreaker(cfg)
	var seen []transition
	b.OnStateChange = func(from, to State, at simtime.Time) {
		seen = append(seen, transition{from, to, at})
	}
	return b, &seen
}

// tripOpen drives a closed breaker to open with consecutive failures.
func tripOpen(b *Breaker, at simtime.Time, threshold int) {
	for i := 0; i < threshold; i++ {
		b.Record(at, false)
	}
}

func TestBreakerHookHalfOpenToClosedFiresOnce(t *testing.T) {
	cfg := BreakerConfig{FailThreshold: 2, Cooldown: simtime.Hour}
	b, seen := hooked(cfg)
	tripOpen(b, 0, 2)
	if b.State() != StateOpen {
		t.Fatalf("state after trip = %v", b.State())
	}
	if !b.Allow(2) { // cooldown elapsed: half-open trial granted
		t.Fatal("trial not granted after cooldown")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state after trial grant = %v", b.State())
	}
	b.Record(2, true) // trial succeeds
	if b.State() != StateClosed {
		t.Fatalf("state after successful trial = %v", b.State())
	}
	// A later success while closed must not re-fire the hook.
	b.Record(3, true)
	want := []transition{
		{StateClosed, StateOpen, 0},
		{StateOpen, StateHalfOpen, 2},
		{StateHalfOpen, StateClosed, 2},
	}
	assertTransitions(t, *seen, want)
	if countEdge(*seen, StateHalfOpen, StateClosed) != 1 {
		t.Fatalf("half-open→closed fired %d times, want exactly 1", countEdge(*seen, StateHalfOpen, StateClosed))
	}
}

func TestBreakerHookHalfOpenToOpenFiresOnce(t *testing.T) {
	cfg := BreakerConfig{FailThreshold: 2, Cooldown: simtime.Hour}
	b, seen := hooked(cfg)
	tripOpen(b, 0, 2)
	if !b.Allow(2) {
		t.Fatal("trial not granted after cooldown")
	}
	b.Record(2, false) // trial fails: re-open, cooldown restarts at 2
	if b.State() != StateOpen {
		t.Fatalf("state after failed trial = %v", b.State())
	}
	if b.Allow(2.5) { // still cooling down from the re-open
		t.Fatal("request allowed during restarted cooldown")
	}
	want := []transition{
		{StateClosed, StateOpen, 0},
		{StateOpen, StateHalfOpen, 2},
		{StateHalfOpen, StateOpen, 2},
	}
	assertTransitions(t, *seen, want)
	if countEdge(*seen, StateHalfOpen, StateOpen) != 1 {
		t.Fatalf("half-open→open fired %d times, want exactly 1", countEdge(*seen, StateHalfOpen, StateOpen))
	}
}

func TestBreakerRepeatedAllowGrantsOneHalfOpenTransition(t *testing.T) {
	cfg := BreakerConfig{FailThreshold: 1, Cooldown: simtime.Hour}
	b, seen := hooked(cfg)
	tripOpen(b, 0, 1)
	b.Allow(2)
	b.Allow(2.1) // still half-open: no second open→half-open edge
	if got := countEdge(*seen, StateOpen, StateHalfOpen); got != 1 {
		t.Fatalf("open→half-open fired %d times, want 1", got)
	}
}

func TestBreakerNilHookBehaviorUnchanged(t *testing.T) {
	cfg := BreakerConfig{FailThreshold: 2, Cooldown: simtime.Hour}
	a := NewBreaker(cfg)
	b, _ := hooked(cfg)
	script := []struct {
		at simtime.Time
		ok bool
	}{{0, false}, {0.1, false}, {2, true}, {3, false}, {3.1, false}, {5.5, false}}
	for _, s := range script {
		if ga, gb := a.Allow(s.at), b.Allow(s.at); ga != gb {
			t.Fatalf("Allow(%v) diverges with hook: %v vs %v", s.at, ga, gb)
		}
		a.Record(s.at, s.ok)
		b.Record(s.at, s.ok)
	}
	if a.Opens != b.Opens || a.State() != b.State() {
		t.Fatalf("hooked breaker diverged: opens %d/%d state %v/%v",
			a.Opens, b.Opens, a.State(), b.State())
	}
}

func assertTransitions(t *testing.T, got, want []transition) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func countEdge(ts []transition, from, to State) int {
	n := 0
	for _, tr := range ts {
		if tr.from == from && tr.to == to {
			n++
		}
	}
	return n
}
