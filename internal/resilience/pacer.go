package resilience

import "itmap/internal/simtime"

// Pacer is a token-bucket rate limiter over simulated time: the client-side
// discipline that keeps one probing source under its
// schedule.Campaign.QPSPerProber budget so the server-side limiter never
// trips on a well-behaved prober. Not safe for concurrent use — one pacer
// per probing source (shard).
type Pacer struct {
	qps    float64
	burst  float64
	tokens float64
	last   simtime.Time
	primed bool
}

// NewPacer returns a pacer allowing qps queries per (simulated) second with
// the given burst size (min 1). qps <= 0 disables pacing.
func NewPacer(qps float64, burst int) *Pacer {
	if burst < 1 {
		burst = 1
	}
	return &Pacer{qps: qps, burst: float64(burst), tokens: float64(burst)}
}

// Next consumes one token and returns the earliest time >= t the query may
// fire. The pacer never travels back in time: requests scheduled before a
// previously returned instant are pushed after it, which is exactly how a
// single serial prober behaves.
func (p *Pacer) Next(t simtime.Time) simtime.Time {
	if p == nil || p.qps <= 0 {
		return t
	}
	if !p.primed {
		p.last = t
		p.primed = true
	}
	if t < p.last {
		t = p.last
	}
	// Refill for the time elapsed since the last grant.
	p.tokens += p.qps * float64(t-p.last) * 3600
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	if p.tokens >= 1 {
		p.tokens--
		p.last = t
		return t
	}
	wait := simtime.Seconds((1 - p.tokens) / p.qps)
	t += wait
	p.tokens = 0
	p.last = t
	return t
}
