package resilience

import (
	"errors"
	"testing"

	"itmap/internal/simtime"
)

var errBoom = errors.New("boom")

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: simtime.Minute, Factor: 3, Cap: 10 * simtime.Minute}
	prev := simtime.Time(0)
	for a := 0; a < 6; a++ {
		d := b.Delay(1, a)
		if d < prev {
			t.Fatalf("delay shrank at attempt %d: %v < %v", a, d, prev)
		}
		if d > 10*simtime.Minute {
			t.Fatalf("delay %v exceeds cap", d)
		}
		prev = d
	}
	if b.Delay(1, 5) != 10*simtime.Minute {
		t.Errorf("deep attempt not capped: %v", b.Delay(1, 5))
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	b := Backoff{Base: simtime.Minute, Factor: 2, Jitter: 0.5, Seed: 7}
	if b.Delay(3, 2) != b.Delay(3, 2) {
		t.Fatal("jittered delay not reproducible")
	}
	if b.Delay(3, 2) == b.Delay(4, 2) {
		t.Error("different keys share identical jitter (suspicious)")
	}
	// Jitter stays within ±50%.
	raw := 4 * simtime.Minute
	for key := uint64(0); key < 100; key++ {
		d := b.Delay(key, 2)
		if d < simtime.Time(0.5)*raw || d > simtime.Time(1.5)*raw {
			t.Fatalf("jittered delay %v outside ±50%% of %v", d, raw)
		}
	}
}

func TestRetryerStopsOnSuccessAndBudget(t *testing.T) {
	r := Retryer{Budget: 4, Backoff: Backoff{Base: simtime.Minute}}
	calls := 0
	out := r.Do(0, 1, func(attempt int, at simtime.Time) error {
		calls++
		if attempt == 2 {
			return nil
		}
		return errBoom
	})
	if out.Err != nil || out.Attempts != 3 || calls != 3 {
		t.Fatalf("success path: %+v, calls %d", out, calls)
	}
	if out.End <= 0 {
		t.Error("End did not advance through backoff")
	}

	calls = 0
	out = r.Do(0, 1, func(int, simtime.Time) error { calls++; return errBoom })
	if !errors.Is(out.Err, errBoom) || calls != 4 {
		t.Fatalf("budget path: %+v, calls %d", out, calls)
	}
}

func TestRetryerNonRetryable(t *testing.T) {
	r := Retryer{Budget: 5, Retryable: func(err error) bool { return !errors.Is(err, errBoom) }}
	out := r.Do(0, 1, func(int, simtime.Time) error { return errBoom })
	if out.Attempts != 1 || !errors.Is(out.Err, errBoom) {
		t.Fatalf("non-retryable error retried: %+v", out)
	}
}

func TestRetryerTimesAreDeterministic(t *testing.T) {
	r := Retryer{Budget: 5, Backoff: Backoff{Base: simtime.Minute, Factor: 2, Jitter: 0.4, Seed: 3}}
	run := func() []simtime.Time {
		var at []simtime.Time
		r.Do(7, 99, func(_ int, t simtime.Time) error {
			at = append(at, t)
			return errBoom
		})
		return at
	}
	a, b := run(), run()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("attempts %d/%d, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d fired at %v then %v", i, a[i], b[i])
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailThreshold: 3, Cooldown: simtime.Hour})
	now := simtime.Time(0)
	for i := 0; i < 3; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Record(now, false)
	}
	if b.Opens != 1 {
		t.Fatalf("Opens = %d after threshold failures", b.Opens)
	}
	if b.Allow(now.Add(30 * simtime.Minute)) {
		t.Fatal("open breaker allowed during cooldown")
	}
	if !b.OpenAt(now.Add(30 * simtime.Minute)) {
		t.Fatal("OpenAt false during cooldown")
	}
	trial := now.Add(simtime.Hour)
	if !b.Allow(trial) {
		t.Fatal("half-open trial rejected after cooldown")
	}
	// Failed trial restarts the cooldown from the trial time.
	b.Record(trial, false)
	if b.Allow(trial.Add(30 * simtime.Minute)) {
		t.Fatal("failed trial did not restart cooldown")
	}
	trial2 := trial.Add(simtime.Hour)
	if !b.Allow(trial2) {
		t.Fatal("second trial rejected")
	}
	b.Record(trial2, true)
	if !b.Allow(trial2) || b.OpenAt(trial2) {
		t.Fatal("successful trial did not close the breaker")
	}
}

func TestPacerEnforcesRate(t *testing.T) {
	// 10 qps, burst 2: the first two fire immediately, the rest space out
	// at 100ms of simulated time.
	p := NewPacer(10, 2)
	start := simtime.Time(1)
	var grants []simtime.Time
	for i := 0; i < 6; i++ {
		grants = append(grants, p.Next(start))
	}
	if grants[0] != start || grants[1] != start {
		t.Fatalf("burst not honoured: %v", grants[:2])
	}
	gap := simtime.Seconds(0.1)
	for i := 2; i < len(grants); i++ {
		if grants[i] <= grants[i-1] {
			t.Fatalf("grants not monotone: %v", grants)
		}
		d := grants[i] - grants[i-1]
		if d < gap*simtime.Time(0.99) || d > gap*simtime.Time(1.01) {
			t.Fatalf("grant gap %v, want ~%v", d, gap)
		}
	}
	// Idle time refills the bucket.
	later := grants[len(grants)-1] + simtime.Hour
	if p.Next(later) != later {
		t.Error("refilled pacer delayed an idle-period request")
	}
}

func TestPacerDisabled(t *testing.T) {
	p := NewPacer(0, 1)
	for i := 0; i < 5; i++ {
		if p.Next(2) != 2 {
			t.Fatal("disabled pacer delayed a request")
		}
	}
	var nilPacer *Pacer
	if nilPacer.Next(3) != 3 {
		t.Fatal("nil pacer delayed a request")
	}
}

func TestDoSleepRetries(t *testing.T) {
	r := Retryer{Budget: 3, Backoff: Backoff{Base: simtime.Seconds(1)}}
	calls := 0
	attempts, err := r.DoSleep(1, 1e-9, func(int) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("DoSleep: attempts=%d err=%v calls=%d", attempts, err, calls)
	}
}
