package mrt

import (
	"bytes"
	"net/netip"
	"testing"
)

func mustAddr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// FuzzRead exercises the MRT reader with arbitrary bytes: no panics, and
// accepted dumps must be internally consistent (entries reference known
// peers).
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	_ = w.WritePeerIndexTable(1, "v", []Peer{{ASN: 65001, Addr: mustAddr("192.0.2.1")}})
	_ = w.WriteRIB(mustPrefix("198.51.100.0/24"), []RIBEntry{{PeerIndex: 0, ASPath: []uint32{65001, 64500}}})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 13, 0, 1, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Read(bytes.NewReader(data))
		if err != nil || d == nil {
			return
		}
		for _, rib := range d.RIBs {
			for _, e := range rib.Entries {
				if int(e.PeerIndex) >= len(d.Peers) {
					t.Fatalf("accepted dump with dangling peer index %d", e.PeerIndex)
				}
			}
		}
	})
}
