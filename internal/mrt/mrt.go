// Package mrt reads and writes the subset of the MRT format (RFC 6396)
// that public route collectors publish: TABLE_DUMP_V2 PEER_INDEX_TABLE and
// RIB_IPV4_UNICAST records with AS_PATH attributes. RouteViews and RIPE RIS
// dumps are exactly these bytes; the simulator's collectors export them so
// the "public topology" used by §3.3 is derived from the same artifact real
// researchers download.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
)

// MRT constants for the records we handle.
const (
	typeTableDumpV2 uint16 = 13

	subtypePeerIndexTable uint16 = 1
	subtypeRIBIPv4Unicast uint16 = 2

	bgpAttrASPath     = 2
	bgpAttrFlagTrans  = 0x40
	asPathSegSequence = 2
)

// Errors returned by the reader.
var (
	ErrTruncated   = errors.New("mrt: truncated record")
	ErrUnsupported = errors.New("mrt: unsupported record")
)

// Peer identifies one collector peer (vantage point).
type Peer struct {
	ASN  uint32
	Addr netip.Addr
}

// RIBEntry is one peer's route to a prefix.
type RIBEntry struct {
	PeerIndex uint16
	// ASPath is the AS_PATH as a flat AS_SEQUENCE (collector-peer
	// first, origin last).
	ASPath []uint32
	// OriginatedAt is the route's origination timestamp.
	OriginatedAt uint32
}

// RIB is one prefix's RIB_IPV4_UNICAST record.
type RIB struct {
	Sequence uint32
	Prefix   netip.Prefix
	Entries  []RIBEntry
}

// Dump is a complete parsed table dump.
type Dump struct {
	CollectorID uint32
	ViewName    string
	Peers       []Peer
	RIBs        []RIB
}

// Writer emits a TABLE_DUMP_V2 stream.
type Writer struct {
	w         *bufio.Writer
	timestamp uint32
	seq       uint32
	wrotePIT  bool
	nPeers    int
}

// NewWriter wraps w. The timestamp stamps every record header.
func NewWriter(w io.Writer, timestamp uint32) *Writer {
	return &Writer{w: bufio.NewWriter(w), timestamp: timestamp}
}

func (wr *Writer) record(subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], wr.timestamp)
	binary.BigEndian.PutUint16(hdr[4:], typeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:], subtype)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	if _, err := wr.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := wr.w.Write(body)
	return err
}

// WritePeerIndexTable emits the peer table; it must precede RIB records.
func (wr *Writer) WritePeerIndexTable(collectorID uint32, viewName string, peers []Peer) error {
	if wr.wrotePIT {
		return errors.New("mrt: peer index table already written")
	}
	body := make([]byte, 0, 8+len(viewName)+len(peers)*13)
	body = binary.BigEndian.AppendUint32(body, collectorID)
	body = binary.BigEndian.AppendUint16(body, uint16(len(viewName)))
	body = append(body, viewName...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(peers)))
	for _, p := range peers {
		if !p.Addr.Is4() {
			return fmt.Errorf("mrt: peer address %v is not IPv4", p.Addr)
		}
		// Peer type 0x02: AS number is 32 bits, address IPv4.
		body = append(body, 0x02)
		body = binary.BigEndian.AppendUint32(body, 0) // BGP ID (unused)
		a4 := p.Addr.As4()
		body = append(body, a4[:]...)
		body = binary.BigEndian.AppendUint32(body, p.ASN)
	}
	wr.wrotePIT = true
	wr.nPeers = len(peers)
	return wr.record(subtypePeerIndexTable, body)
}

// WriteRIB emits one prefix's routes.
func (wr *Writer) WriteRIB(prefix netip.Prefix, entries []RIBEntry) error {
	if !wr.wrotePIT {
		return errors.New("mrt: peer index table not written")
	}
	if !prefix.Addr().Is4() {
		return fmt.Errorf("mrt: prefix %v is not IPv4", prefix)
	}
	body := make([]byte, 0, 64)
	body = binary.BigEndian.AppendUint32(body, wr.seq)
	wr.seq++
	bits := prefix.Bits()
	body = append(body, byte(bits))
	a4 := prefix.Addr().As4()
	body = append(body, a4[:(bits+7)/8]...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(entries)))
	for _, e := range entries {
		if int(e.PeerIndex) >= wr.nPeers {
			return fmt.Errorf("mrt: peer index %d out of range", e.PeerIndex)
		}
		body = binary.BigEndian.AppendUint16(body, e.PeerIndex)
		body = binary.BigEndian.AppendUint32(body, e.OriginatedAt)
		attr := encodeASPath(e.ASPath)
		body = binary.BigEndian.AppendUint16(body, uint16(len(attr)))
		body = append(body, attr...)
	}
	return wr.record(subtypeRIBIPv4Unicast, body)
}

// Flush completes the dump.
func (wr *Writer) Flush() error { return wr.w.Flush() }

func encodeASPath(path []uint32) []byte {
	// One transitive AS_PATH attribute with a single AS_SEQUENCE.
	segLen := 2 + 4*len(path)
	attr := make([]byte, 0, 3+segLen)
	attr = append(attr, bgpAttrFlagTrans, bgpAttrASPath, byte(segLen))
	attr = append(attr, asPathSegSequence, byte(len(path)))
	for _, asn := range path {
		attr = binary.BigEndian.AppendUint32(attr, asn)
	}
	return attr
}

// Read parses a complete TABLE_DUMP_V2 stream.
func Read(r io.Reader) (*Dump, error) {
	br := bufio.NewReader(r)
	d := &Dump{}
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return d, nil
			}
			return nil, ErrTruncated
		}
		typ := binary.BigEndian.Uint16(hdr[4:])
		subtype := binary.BigEndian.Uint16(hdr[6:])
		length := binary.BigEndian.Uint32(hdr[8:])
		if length > 1<<24 {
			return nil, fmt.Errorf("%w: record length %d", ErrUnsupported, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, ErrTruncated
		}
		if typ != typeTableDumpV2 {
			return nil, fmt.Errorf("%w: type %d", ErrUnsupported, typ)
		}
		switch subtype {
		case subtypePeerIndexTable:
			if err := d.parsePeerIndexTable(body); err != nil {
				return nil, err
			}
		case subtypeRIBIPv4Unicast:
			if err := d.parseRIB(body); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: subtype %d", ErrUnsupported, subtype)
		}
	}
}

func (d *Dump) parsePeerIndexTable(b []byte) error {
	if len(b) < 8 {
		return ErrTruncated
	}
	d.CollectorID = binary.BigEndian.Uint32(b)
	nameLen := int(binary.BigEndian.Uint16(b[4:]))
	if len(b) < 8+nameLen {
		return ErrTruncated
	}
	d.ViewName = string(b[6 : 6+nameLen])
	off := 6 + nameLen
	nPeers := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	for i := 0; i < nPeers; i++ {
		if off+13 > len(b) {
			return ErrTruncated
		}
		if b[off] != 0x02 {
			return fmt.Errorf("%w: peer type %d", ErrUnsupported, b[off])
		}
		var a4 [4]byte
		copy(a4[:], b[off+5:off+9])
		d.Peers = append(d.Peers, Peer{
			Addr: netip.AddrFrom4(a4),
			ASN:  binary.BigEndian.Uint32(b[off+9:]),
		})
		off += 13
	}
	return nil
}

func (d *Dump) parseRIB(b []byte) error {
	if len(b) < 7 {
		return ErrTruncated
	}
	rib := RIB{Sequence: binary.BigEndian.Uint32(b)}
	bits := int(b[4])
	nBytes := (bits + 7) / 8
	if len(b) < 5+nBytes+2 || bits > 32 {
		return ErrTruncated
	}
	var a4 [4]byte
	copy(a4[:], b[5:5+nBytes])
	p, err := netip.AddrFrom4(a4).Prefix(bits)
	if err != nil {
		return fmt.Errorf("mrt: bad prefix: %w", err)
	}
	rib.Prefix = p
	off := 5 + nBytes
	n := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	for i := 0; i < n; i++ {
		if off+8 > len(b) {
			return ErrTruncated
		}
		e := RIBEntry{
			PeerIndex:    binary.BigEndian.Uint16(b[off:]),
			OriginatedAt: binary.BigEndian.Uint32(b[off+2:]),
		}
		attrLen := int(binary.BigEndian.Uint16(b[off+6:]))
		off += 8
		if off+attrLen > len(b) {
			return ErrTruncated
		}
		path, err := parseASPath(b[off : off+attrLen])
		if err != nil {
			return err
		}
		e.ASPath = path
		off += attrLen
		if int(e.PeerIndex) >= len(d.Peers) {
			return fmt.Errorf("mrt: RIB entry references unknown peer %d", e.PeerIndex)
		}
		rib.Entries = append(rib.Entries, e)
	}
	d.RIBs = append(d.RIBs, rib)
	return nil
}

func parseASPath(b []byte) ([]uint32, error) {
	off := 0
	for off+3 <= len(b) {
		flags := b[off]
		typ := b[off+1]
		var alen int
		var dataOff int
		if flags&0x10 != 0 { // extended length
			if off+4 > len(b) {
				return nil, ErrTruncated
			}
			alen = int(binary.BigEndian.Uint16(b[off+2:]))
			dataOff = off + 4
		} else {
			alen = int(b[off+2])
			dataOff = off + 3
		}
		if dataOff+alen > len(b) {
			return nil, ErrTruncated
		}
		if typ == bgpAttrASPath {
			return parseASSequence(b[dataOff : dataOff+alen])
		}
		off = dataOff + alen
	}
	return nil, nil
}

func parseASSequence(b []byte) ([]uint32, error) {
	var path []uint32
	off := 0
	for off+2 <= len(b) {
		segType := b[off]
		count := int(b[off+1])
		off += 2
		if off+4*count > len(b) {
			return nil, ErrTruncated
		}
		if segType != asPathSegSequence {
			return nil, fmt.Errorf("%w: AS_PATH segment type %d", ErrUnsupported, segType)
		}
		for i := 0; i < count; i++ {
			path = append(path, binary.BigEndian.Uint32(b[off:]))
			off += 4
		}
	}
	return path, nil
}
