package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
)

// BGP4MP support: the MRT encapsulation RouteViews/RIS use for live BGP
// UPDATE streams (RFC 6396 §4.4, BGP4MP_MESSAGE_AS4 with RFC 4271 UPDATE
// bodies). Table dumps say where routes are; update streams say where they
// move — the post-event signal an outage analysis consumes.

const (
	typeBGP4MP          uint16 = 16
	subtypeBGP4MPMsgAS4 uint16 = 4
	bgpMsgUpdate        byte   = 2
	bgpAttrOrigin       byte   = 1
	bgpAttrNextHop      byte   = 3
	bgpOriginIGP        byte   = 0
)

// Update is one BGP UPDATE observed from a collector peer.
type Update struct {
	PeerASN  uint32
	PeerAddr netip.Addr
	// Withdrawn prefixes lost their route at this peer.
	Withdrawn []netip.Prefix
	// Announced prefixes are reachable via ASPath.
	Announced []netip.Prefix
	// ASPath is the announcement's path (empty for pure withdrawals).
	ASPath []uint32
}

var bgpMarker = [16]byte{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

// WriteUpdate appends one BGP4MP_MESSAGE_AS4 record carrying an UPDATE.
func (wr *Writer) WriteUpdate(u Update) error {
	if !u.PeerAddr.Is4() {
		return fmt.Errorf("mrt: peer address %v is not IPv4", u.PeerAddr)
	}
	bgp, err := encodeBGPUpdate(u)
	if err != nil {
		return err
	}
	body := make([]byte, 0, 20+len(bgp))
	body = binary.BigEndian.AppendUint32(body, u.PeerASN)
	body = binary.BigEndian.AppendUint32(body, 0) // local AS (collector)
	body = binary.BigEndian.AppendUint16(body, 0) // interface index
	body = binary.BigEndian.AppendUint16(body, 1) // AFI IPv4
	a4 := u.PeerAddr.As4()
	body = append(body, a4[:]...)
	body = append(body, 0, 0, 0, 0) // local address (collector)
	body = append(body, bgp...)
	return wr.record2(typeBGP4MP, subtypeBGP4MPMsgAS4, body)
}

// record2 is record with an explicit MRT type.
func (wr *Writer) record2(typ, subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], wr.timestamp)
	binary.BigEndian.PutUint16(hdr[4:], typ)
	binary.BigEndian.PutUint16(hdr[6:], subtype)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(body)))
	if _, err := wr.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := wr.w.Write(body)
	return err
}

func appendPrefixes(b []byte, ps []netip.Prefix) ([]byte, error) {
	for _, p := range ps {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("mrt: prefix %v is not IPv4", p)
		}
		bits := p.Bits()
		b = append(b, byte(bits))
		a4 := p.Addr().As4()
		b = append(b, a4[:(bits+7)/8]...)
	}
	return b, nil
}

func encodeBGPUpdate(u Update) ([]byte, error) {
	withdrawn, err := appendPrefixes(nil, u.Withdrawn)
	if err != nil {
		return nil, err
	}
	var attrs []byte
	if len(u.Announced) > 0 {
		// ORIGIN, AS_PATH, NEXT_HOP — the mandatory attributes.
		attrs = append(attrs, bgpAttrFlagTrans, bgpAttrOrigin, 1, bgpOriginIGP)
		attrs = append(attrs, encodeASPath(u.ASPath)...)
		attrs = append(attrs, bgpAttrFlagTrans, bgpAttrNextHop, 4)
		a4 := u.PeerAddr.As4()
		attrs = append(attrs, a4[:]...)
	}
	nlri, err := appendPrefixes(nil, u.Announced)
	if err != nil {
		return nil, err
	}
	bodyLen := 2 + len(withdrawn) + 2 + len(attrs) + len(nlri)
	msg := make([]byte, 0, 19+bodyLen)
	msg = append(msg, bgpMarker[:]...)
	msg = binary.BigEndian.AppendUint16(msg, uint16(19+bodyLen))
	msg = append(msg, bgpMsgUpdate)
	msg = binary.BigEndian.AppendUint16(msg, uint16(len(withdrawn)))
	msg = append(msg, withdrawn...)
	msg = binary.BigEndian.AppendUint16(msg, uint16(len(attrs)))
	msg = append(msg, attrs...)
	msg = append(msg, nlri...)
	return msg, nil
}

// ReadUpdates parses a BGP4MP stream (records of other types are rejected,
// matching this package's explicit-scope policy).
func ReadUpdates(r io.Reader) ([]Update, error) {
	var out []Update
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, ErrTruncated
		}
		typ := binary.BigEndian.Uint16(hdr[4:])
		subtype := binary.BigEndian.Uint16(hdr[6:])
		length := binary.BigEndian.Uint32(hdr[8:])
		if typ != typeBGP4MP || subtype != subtypeBGP4MPMsgAS4 {
			return nil, fmt.Errorf("%w: type %d subtype %d", ErrUnsupported, typ, subtype)
		}
		if length > 1<<24 {
			return nil, fmt.Errorf("%w: record length %d", ErrUnsupported, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, ErrTruncated
		}
		u, err := parseBGP4MP(body)
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
}

func parseBGP4MP(b []byte) (Update, error) {
	var u Update
	if len(b) < 20 {
		return u, ErrTruncated
	}
	u.PeerASN = binary.BigEndian.Uint32(b)
	afi := binary.BigEndian.Uint16(b[10:])
	if afi != 1 {
		return u, fmt.Errorf("%w: AFI %d", ErrUnsupported, afi)
	}
	var a4 [4]byte
	copy(a4[:], b[12:16])
	u.PeerAddr = netip.AddrFrom4(a4)
	msg := b[20:]
	if len(msg) < 19 || msg[18] != bgpMsgUpdate {
		return u, fmt.Errorf("%w: not a BGP UPDATE", ErrUnsupported)
	}
	msgLen := int(binary.BigEndian.Uint16(msg[16:]))
	if msgLen != len(msg) {
		return u, ErrTruncated
	}
	body := msg[19:]
	if len(body) < 2 {
		return u, ErrTruncated
	}
	wlen := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+wlen+2 {
		return u, ErrTruncated
	}
	var err error
	u.Withdrawn, err = parsePrefixList(body[2 : 2+wlen])
	if err != nil {
		return u, err
	}
	alen := int(binary.BigEndian.Uint16(body[2+wlen:]))
	attrStart := 2 + wlen + 2
	if len(body) < attrStart+alen {
		return u, ErrTruncated
	}
	u.ASPath, err = parseASPath(body[attrStart : attrStart+alen])
	if err != nil {
		return u, err
	}
	u.Announced, err = parsePrefixList(body[attrStart+alen:])
	if err != nil {
		return u, err
	}
	return u, nil
}

func parsePrefixList(b []byte) ([]netip.Prefix, error) {
	var out []netip.Prefix
	off := 0
	for off < len(b) {
		bits := int(b[off])
		off++
		nBytes := (bits + 7) / 8
		if bits > 32 || off+nBytes > len(b) {
			return nil, ErrTruncated
		}
		var a4 [4]byte
		copy(a4[:], b[off:off+nBytes])
		p, err := netip.AddrFrom4(a4).Prefix(bits)
		if err != nil {
			return nil, fmt.Errorf("mrt: bad prefix: %w", err)
		}
		out = append(out, p)
		off += nBytes
	}
	return out, nil
}
