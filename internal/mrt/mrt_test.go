package mrt

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func sampleDump(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, 1700000000)
	peers := []Peer{
		{ASN: 65001, Addr: netip.MustParseAddr("192.0.2.1")},
		{ASN: 65002, Addr: netip.MustParseAddr("192.0.2.2")},
	}
	if err := w.WritePeerIndexTable(42, "test-view", peers); err != nil {
		t.Fatal(err)
	}
	err := w.WriteRIB(netip.MustParsePrefix("198.51.100.0/24"), []RIBEntry{
		{PeerIndex: 0, ASPath: []uint32{65001, 64512, 64500}, OriginatedAt: 1699999999},
		{PeerIndex: 1, ASPath: []uint32{65002, 64500}, OriginatedAt: 1699999998},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(netip.MustParsePrefix("203.0.113.0/25"), []RIBEntry{
		{PeerIndex: 1, ASPath: []uint32{65002, 64501}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRoundTrip(t *testing.T) {
	buf := sampleDump(t)
	d, err := Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.CollectorID != 42 || d.ViewName != "test-view" {
		t.Errorf("header lost: %+v", d)
	}
	if len(d.Peers) != 2 || d.Peers[0].ASN != 65001 || d.Peers[1].Addr != netip.MustParseAddr("192.0.2.2") {
		t.Errorf("peers lost: %+v", d.Peers)
	}
	if len(d.RIBs) != 2 {
		t.Fatalf("got %d RIBs", len(d.RIBs))
	}
	r0 := d.RIBs[0]
	if r0.Prefix != netip.MustParsePrefix("198.51.100.0/24") || r0.Sequence != 0 {
		t.Errorf("rib0: %+v", r0)
	}
	if len(r0.Entries) != 2 || len(r0.Entries[0].ASPath) != 3 ||
		r0.Entries[0].ASPath[1] != 64512 || r0.Entries[0].OriginatedAt != 1699999999 {
		t.Errorf("entries lost: %+v", r0.Entries)
	}
	if d.RIBs[1].Prefix.Bits() != 25 {
		t.Errorf("non-octet prefix length lost: %v", d.RIBs[1].Prefix)
	}
}

func TestWriterOrderEnforced(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WriteRIB(netip.MustParsePrefix("10.0.0.0/24"), nil); err == nil {
		t.Error("RIB before peer table accepted")
	}
	if err := w.WritePeerIndexTable(1, "v", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePeerIndexTable(1, "v", nil); err == nil {
		t.Error("duplicate peer table accepted")
	}
	if err := w.WriteRIB(netip.MustParsePrefix("10.0.0.0/24"),
		[]RIBEntry{{PeerIndex: 5}}); err == nil {
		t.Error("out-of-range peer index accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	full := sampleDump(t).Bytes()
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			// Cuts at record boundaries parse as shorter valid
			// dumps; cuts inside a record must fail. Detect
			// boundary cuts by re-parsing: they yield fewer RIBs.
			d, _ := Read(bytes.NewReader(full[:cut]))
			if d != nil && len(d.RIBs) < 2 {
				continue
			}
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadFuzzNoPanic(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Read(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestRejectsNonV4(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	err := w.WritePeerIndexTable(1, "v", []Peer{{ASN: 1, Addr: netip.MustParseAddr("2001:db8::1")}})
	if err == nil {
		t.Error("IPv6 peer accepted")
	}
	if err := w.WritePeerIndexTable(1, "v", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(netip.MustParsePrefix("2001:db8::/32"), nil); err == nil {
		t.Error("IPv6 prefix accepted")
	}
}

func TestUnsupportedRecords(t *testing.T) {
	// A TABLE_DUMP_V2 record with unknown subtype must be rejected, not
	// silently skipped (we only claim the RIB subset).
	raw := []byte{
		0, 0, 0, 0, // ts
		0, 13, // type
		0, 9, // subtype 9
		0, 0, 0, 0, // len
	}
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("unknown subtype: %v", err)
	}
}
