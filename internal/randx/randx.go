// Package randx provides deterministic, seedable random distributions used
// throughout the simulator: Zipf ranks, lognormal jitter, power-law degrees,
// and weighted choice. All simulator randomness flows through a *Source so
// that a world is fully reproducible from (config, seed).
package randx

import (
	"math"
	"math/rand"
	"sort"
)

// Source wraps math/rand with the distribution helpers the simulator needs.
// It is NOT safe for concurrent use; derive per-goroutine sources with Fork.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Fork derives a new independent Source from this one. Forking is
// deterministic: the child's seed is drawn from the parent's stream.
func (s *Source) Fork() *Source {
	return New(s.r.Int63())
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// IntBetween returns a pseudo-random int in [lo, hi]. It panics if hi < lo.
func (s *Source) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("randx: IntBetween with hi < lo")
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// NormFloat64 returns a standard normal variate.
func (s *Source) NormFloat64() float64 { return s.r.NormFloat64() }

// Lognormal returns exp(N(mu, sigma)). With mu=0 this is a multiplicative
// jitter centred on 1 (median 1, mean exp(sigma^2/2)).
func (s *Source) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// Pareto returns a Pareto(xm, alpha) variate: xm * U^(-1/alpha). Heavy-tailed
// for small alpha; used for user-population and prefix-count draws.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Poisson returns a Poisson variate with the given mean using Knuth's
// algorithm for small means and a normal approximation for large ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*s.r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf holds a finite Zipf distribution over ranks 1..N with exponent alpha:
// P(rank=k) ∝ k^(-alpha). Used for service popularity.
type Zipf struct {
	weights []float64 // cumulative
	total   float64
}

// NewZipf builds a Zipf distribution over n ranks with exponent alpha > 0.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with n <= 0")
	}
	z := &Zipf{weights: make([]float64, n)}
	cum := 0.0
	for k := 1; k <= n; k++ {
		cum += math.Pow(float64(k), -alpha)
		z.weights[k-1] = cum
	}
	z.total = cum
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.weights) }

// Weight returns the normalized probability mass of rank k (1-based).
func (z *Zipf) Weight(k int) float64 {
	if k < 1 || k > len(z.weights) {
		return 0
	}
	prev := 0.0
	if k > 1 {
		prev = z.weights[k-2]
	}
	return (z.weights[k-1] - prev) / z.total
}

// Sample draws a rank in [1, N].
func (z *Zipf) Sample(s *Source) int {
	u := s.Float64() * z.total
	i := sort.SearchFloat64s(z.weights, u)
	if i >= len(z.weights) {
		i = len(z.weights) - 1
	}
	return i + 1
}

// CumWeight returns the normalized cumulative mass of ranks 1..k.
func (z *Zipf) CumWeight(k int) float64 {
	if k < 1 {
		return 0
	}
	if k > len(z.weights) {
		k = len(z.weights)
	}
	return z.weights[k-1] / z.total
}

// WeightedChoice selects an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero total weight selects uniformly.
func (s *Source) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return s.Intn(len(weights))
	}
	u := s.Float64() * total
	cum := 0.0
	for i, w := range weights {
		cum += w
		if u < cum {
			return i
		}
	}
	return len(weights) - 1
}

// PowerLawDegrees draws n integer degrees from a discrete power law with
// exponent gamma and minimum degree minDeg, capped at maxDeg. The result is
// sorted descending so callers can assign the heaviest degrees first.
func (s *Source) PowerLawDegrees(n int, gamma float64, minDeg, maxDeg int) []int {
	if maxDeg < minDeg {
		maxDeg = minDeg
	}
	out := make([]int, n)
	for i := range out {
		d := int(s.Pareto(float64(minDeg), gamma-1))
		if d > maxDeg {
			d = maxDeg
		}
		if d < minDeg {
			d = minDeg
		}
		out[i] = d
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
