package randx

import "math"

// Hash-based deterministic "randomness": pure functions of their inputs,
// used where the simulator needs stable per-entity draws (per-prefix
// affinities, per-probe cache outcomes) without storing them. Based on
// splitmix64 finalization.

// Hash64 mixes the parts into a single 64-bit hash.
func Hash64(parts ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = splitmix(h)
	}
	return h
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashFloat returns a deterministic uniform draw in [0, 1) from the parts.
func HashFloat(parts ...uint64) float64 {
	return float64(Hash64(parts...)>>11) / float64(1<<53)
}

// HashBool returns a deterministic Bernoulli(p) draw from the parts.
func HashBool(p float64, parts ...uint64) bool {
	return HashFloat(parts...) < p
}

// HashNorm returns a deterministic standard normal draw via Box–Muller on
// two derived uniforms.
func HashNorm(parts ...uint64) float64 {
	h := Hash64(parts...)
	u1 := float64(h>>11) / float64(1<<53)
	u2 := float64(splitmix(h)>>11) / float64(1<<53)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// HashLognormal returns a deterministic exp(N(mu, sigma)) draw.
func HashLognormal(mu, sigma float64, parts ...uint64) float64 {
	return math.Exp(mu + sigma*HashNorm(parts...))
}
