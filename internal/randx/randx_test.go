package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(1)
	c1 := parent.Fork()
	c2 := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Int63() == c2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked sources produced %d/100 identical draws", same)
	}
}

func TestIntBetweenBounds(t *testing.T) {
	f := func(lo int8, span uint8) bool {
		s := New(3)
		hi := int(lo) + int(span)
		v := s.IntBetween(int(lo), hi)
		return v >= int(lo) && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLognormalMedian(t *testing.T) {
	s := New(7)
	n := 20000
	above := 0
	for i := 0; i < n; i++ {
		if s.Lognormal(0, 0.5) > 1 {
			above++
		}
	}
	frac := float64(above) / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("lognormal(0,.5) median fraction above 1 = %.3f, want ~0.5", frac)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(11)
	n := 50000
	min, big := math.Inf(1), 0
	for i := 0; i < n; i++ {
		v := s.Pareto(2, 1.5)
		if v < min {
			min = v
		}
		if v > 20 {
			big++
		}
	}
	if min < 2 {
		t.Errorf("Pareto(2,1.5) produced value %f below xm", min)
	}
	// P(X>20) = (2/20)^1.5 ≈ 0.0316
	frac := float64(big) / float64(n)
	if frac < 0.02 || frac > 0.05 {
		t.Errorf("Pareto tail mass %.4f, want ≈0.032", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(13)
	for _, mean := range []float64{0.5, 4, 50} {
		total := 0
		n := 20000
		for i := 0; i < n; i++ {
			total += s.Poisson(mean)
		}
		got := float64(total) / float64(n)
		if math.Abs(got-mean) > 0.1*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean %.3f", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestZipfWeights(t *testing.T) {
	z := NewZipf(100, 1.0)
	total := 0.0
	for k := 1; k <= 100; k++ {
		w := z.Weight(k)
		if w <= 0 {
			t.Fatalf("weight(%d) = %f", k, w)
		}
		total += w
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("weights sum to %f", total)
	}
	if z.Weight(1) <= z.Weight(2) {
		t.Error("Zipf weights not decreasing")
	}
	if math.Abs(z.CumWeight(100)-1) > 1e-9 {
		t.Errorf("CumWeight(N) = %f", z.CumWeight(100))
	}
	if z.Weight(0) != 0 || z.Weight(101) != 0 {
		t.Error("out-of-range weights should be 0")
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	s := New(17)
	z := NewZipf(50, 1.2)
	counts := make([]int, 51)
	n := 50000
	for i := 0; i < n; i++ {
		k := z.Sample(s)
		if k < 1 || k > 50 {
			t.Fatalf("sample out of range: %d", k)
		}
		counts[k]++
	}
	// Empirical mass of rank 1 should be near its analytic weight.
	want := z.Weight(1)
	got := float64(counts[1]) / float64(n)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("rank-1 mass %.3f, want %.3f", got, want)
	}
	if counts[1] <= counts[10] {
		t.Error("rank 1 not more popular than rank 10")
	}
}

func TestWeightedChoice(t *testing.T) {
	s := New(19)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.WeightedChoice(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weight ratio %.2f, want ~3", ratio)
	}
	// All-zero weights fall back to uniform without panicking.
	_ = s.WeightedChoice([]float64{0, 0})
}

func TestPowerLawDegrees(t *testing.T) {
	s := New(23)
	d := s.PowerLawDegrees(1000, 2.2, 1, 64)
	if len(d) != 1000 {
		t.Fatalf("got %d degrees", len(d))
	}
	for i, v := range d {
		if v < 1 || v > 64 {
			t.Fatalf("degree %d out of bounds", v)
		}
		if i > 0 && d[i] > d[i-1] {
			t.Fatal("degrees not sorted descending")
		}
	}
}
