package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2, 3) != Hash64(1, 2, 3) {
		t.Fatal("hash not deterministic")
	}
	if Hash64(1, 2, 3) == Hash64(1, 2, 4) {
		t.Error("hash ignores last part")
	}
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Error("hash ignores order")
	}
	if Hash64() == Hash64(0) {
		t.Error("empty vs zero-part collide")
	}
}

func TestHashFloatUniform(t *testing.T) {
	n := 50000
	var buckets [10]int
	sum := 0.0
	for i := 0; i < n; i++ {
		u := HashFloat(uint64(i), 0xabc)
		if u < 0 || u >= 1 {
			t.Fatalf("HashFloat out of range: %f", u)
		}
		buckets[int(u*10)]++
		sum += u
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %f, want 0.5", mean)
	}
	for b, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d has %d of %d", b, c, n)
		}
	}
}

func TestHashBoolRate(t *testing.T) {
	n := 40000
	hits := 0
	for i := 0; i < n; i++ {
		if HashBool(0.3, uint64(i), 0xdef) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("HashBool(0.3) rate %f", rate)
	}
	if HashBool(0, 1) {
		t.Error("p=0 fired")
	}
	if !HashBool(1.1, 1) {
		t.Error("p>1 did not fire")
	}
}

func TestHashNormMoments(t *testing.T) {
	n := 60000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := HashNorm(uint64(i), 0x123)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %f", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %f", variance)
	}
}

func TestHashLognormalMedian(t *testing.T) {
	n := 40000
	above := 0
	for i := 0; i < n; i++ {
		if HashLognormal(0, 0.4, uint64(i), 0x77) > 1 {
			above++
		}
	}
	frac := float64(above) / float64(n)
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("lognormal median fraction %f", frac)
	}
	// mu shifts the median.
	if HashLognormal(5, 0.0001, 1, 2) < 100 {
		t.Error("mu=5 lognormal too small")
	}
}

func TestHashPropertyStable(t *testing.T) {
	f := func(a, b uint64) bool {
		return HashFloat(a, b) == HashFloat(a, b) &&
			HashNorm(a, b) == HashNorm(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSourceMiscHelpers(t *testing.T) {
	s := New(5)
	if v := s.Exp(2); v < 0 {
		t.Errorf("Exp negative: %f", v)
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if s.Bool(0.5) {
			trues++
		}
	}
	if trues < 4700 || trues > 5300 {
		t.Errorf("Bool(0.5) fired %d/10000", trues)
	}
	_ = s.NormFloat64()
	if got := s.IntBetween(7, 7); got != 7 {
		t.Errorf("IntBetween(7,7) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("IntBetween(5,3) did not panic")
		}
	}()
	s.IntBetween(5, 3)
}
