package services

import (
	"itmap/internal/bgp"
	"itmap/internal/geo"
	"itmap/internal/topology"
)

// NearestSiteTo returns the owner's serving site nearest to a location
// (considering both on-net and off-net sites), or nil if the owner has no
// deployment. Deterministic: distance ties break on lower site prefix.
func (c *Catalog) NearestSiteTo(owner topology.ASN, at geo.Coord) *Site {
	d := c.Deployments[owner]
	if d == nil || len(d.Sites) == 0 {
		return nil
	}
	var best *Site
	bestDist := 0.0
	for _, s := range d.Sites {
		dist := geo.DistanceKm(at, s.City.Coord)
		if best == nil || dist < bestDist ||
			(dist == bestDist && s.Prefix < best.Prefix) {
			best, bestDist = s, dist
		}
	}
	return best
}

// NearestOnNetSiteTo is NearestSiteTo restricted to owner-hosted sites.
func (c *Catalog) NearestOnNetSiteTo(owner topology.ASN, at geo.Coord) *Site {
	d := c.Deployments[owner]
	if d == nil {
		return nil
	}
	return nearestOf(onNet(d.Sites), at)
}

// NearestAnycastSiteTo is the closest site announcing the owner's anycast
// prefix — the "closest serving site" of the paper's anycast analysis.
func (c *Catalog) NearestAnycastSiteTo(owner topology.ASN, at geo.Coord) *Site {
	d := c.Deployments[owner]
	if d == nil {
		return nil
	}
	sites := d.AnycastSites
	if len(sites) == 0 {
		sites = onNet(d.Sites)
	}
	return nearestOf(sites, at)
}

func onNet(sites []*Site) []*Site {
	var out []*Site
	for _, s := range sites {
		if !s.OffNet() {
			out = append(out, s)
		}
	}
	return out
}

func nearestOf(sites []*Site, at geo.Coord) *Site {
	var best *Site
	bestDist := 0.0
	for _, s := range sites {
		dist := geo.DistanceKm(at, s.City.Coord)
		if best == nil || dist < bestDist ||
			(dist == bestDist && s.Prefix < best.Prefix) {
			best, bestDist = s, dist
		}
	}
	return best
}

// TwoNearestSitesTo returns the owner's two closest sites to a location
// (second is nil with fewer than two sites). Load balancers spill overflow
// to the runner-up, which is what makes custom-URL redirection *almost*
// always optimal (§3.2.3).
func (c *Catalog) TwoNearestSitesTo(owner topology.ASN, at geo.Coord) (*Site, *Site) {
	d := c.Deployments[owner]
	if d == nil || len(d.Sites) == 0 {
		return nil, nil
	}
	var best, second *Site
	bestDist, secondDist := 0.0, 0.0
	for _, s := range d.Sites {
		dist := geo.DistanceKm(at, s.City.Coord)
		switch {
		case best == nil || dist < bestDist || (dist == bestDist && s.Prefix < best.Prefix):
			second, secondDist = best, bestDist
			best, bestDist = s, dist
		case second == nil || dist < secondDist || (dist == secondDist && s.Prefix < second.Prefix):
			second, secondDist = s, dist
		}
	}
	return best, second
}

// OffNetFor returns the owner's off-net cache inside hostAS, if deployed.
func (c *Catalog) OffNetFor(owner, hostAS topology.ASN) (*Site, bool) {
	d := c.Deployments[owner]
	if d == nil {
		return nil, false
	}
	s, ok := d.OffNetByHost[hostAS]
	return s, ok
}

// AnycastCatchment returns the on-net site where traffic from clientAS
// lands for the owner's anycast prefix. BGP routes the client's traffic to
// the owner AS; the landing site is the owner site nearest to the facility
// where the traffic enters the owner's network (ingress-based catchments).
// Returns nil if the client has no route.
func (c *Catalog) AnycastCatchment(ap *bgp.AllPaths, owner, clientAS topology.ASN) *Site {
	top := c.top
	if clientAS == owner {
		return c.NearestAnycastSiteTo(owner, top.PrimaryCity(owner).Coord)
	}
	path := ap.Path(clientAS, owner)
	if len(path) < 2 {
		return nil
	}
	ingressFrom := path[len(path)-2] // last AS before the owner
	ownerAS := top.ASes[owner]
	var fac topology.FacilityID = -1
	for _, nb := range ownerAS.Neighbors {
		if nb.ASN == ingressFrom {
			fac = nb.Facility
			break
		}
	}
	at := top.PrimaryCity(ingressFrom).Coord
	if fac >= 0 {
		at = top.Facility(fac).City.Coord
	}
	return c.NearestAnycastSiteTo(owner, at)
}

// CertInfo is what a TLS handshake with a serving IP reveals: the resource
// owner (certificate subject organization) — the signal behind the paper's
// §3.2 approach 1 (identifying infrastructure via TLS scans).
type CertInfo struct {
	// Org is the certificate's subject organization: the owner's name.
	Org string
	// OwnerASN is the owning network (not directly in a real cert, but
	// recoverable from Org; exposed for convenience).
	OwnerASN topology.ASN
}

// CertAt performs a simulated TLS handshake against an address in prefix p.
// It returns the certificate info and true if a server answers, or false
// for non-serving address space.
func (c *Catalog) CertAt(p topology.PrefixID) (CertInfo, bool) {
	site, ok := c.siteByPrefix[p]
	if !ok {
		if owner, isAnycast := c.anycastOwner[p]; isAnycast {
			return CertInfo{Org: c.top.ASes[owner].Name, OwnerASN: owner}, true
		}
		return CertInfo{}, false
	}
	return CertInfo{Org: c.top.ASes[site.Owner].Name, OwnerASN: site.Owner}, true
}

// ServesSNI reports whether an address in prefix p answers a TLS handshake
// for the given hostname — the §3.2 approach 2 (SNI scans for service
// footprints). A site serves a hostname iff the site owner owns the service.
func (c *Catalog) ServesSNI(p topology.PrefixID, domain string) bool {
	svc, ok := c.byDomain[domain]
	if !ok {
		return false
	}
	if owner, isAnycast := c.anycastOwner[p]; isAnycast {
		return owner == svc.Owner && svc.Kind == Anycast
	}
	site, ok := c.siteByPrefix[p]
	if !ok {
		return false
	}
	return site.Owner == svc.Owner
}
